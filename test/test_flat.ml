(* The whole-suite flat engine: deterministic pins for the packed
   memory layout, counter-slot overflow, deadline firing order through
   the engine-direct hosted path, and the state-blob codec (roundtrip,
   version rejection, wrong-suite rejection, truncation).  Cross-backend
   verdict agreement on random inputs lives in test_backend. *)

open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_testutil

let ev t nm = Trace.event ~time:t (name nm)

let demo_entries () =
  [
    ("c0", pat "{a, b} <<! go");
    ("c1", pat "start => read[2,3] < irq within 50");
  ]

(* ---- packing layout ---------------------------------------------------- *)

(* The slab is [ctrl | states | counters] per checker, checkers
   back-to-back.  c0 ({a,b} <<! go) has 2 recognizers, c1 has 3, so
   with 13 control slots the bases and per-recognizer slots are fully
   determined.  These pins freeze the layout: a change here is a blob
   format break and must bump Flat.blob_version. *)
let test_layout_pins () =
  let eng = Flat.compile (demo_entries ()) in
  let l = Flat.layout eng in
  Alcotest.(check int) "ctrl slots" 13 Flat.ctrl_slots;
  Alcotest.(check int) "total slots" 36 l.Flat.total_slots;
  Alcotest.(check (array int)) "checker bases" [| 0; 17 |] l.Flat.checker_base;
  Alcotest.(check (array int))
    "state slots" [| 13; 14; 30; 31; 32 |] l.Flat.state_slot;
  Alcotest.(check (array int))
    "counter slots" [| 15; 16; 33; 34; 35 |] l.Flat.counter_slot;
  Alcotest.(check (list string))
    "interning order" [ "a"; "b"; "go"; "irq"; "read"; "start" ]
    (Array.to_list (Array.map Name.to_string (Flat.names eng)))

let test_dispatch_table () =
  let eng = Flat.compile (demo_entries ()) in
  Alcotest.(check int) "size" 2 (Flat.size eng);
  Alcotest.(check string) "label 0" "c0" (Flat.label eng 0);
  Alcotest.(check string) "label 1" "c1" (Flat.label eng 1);
  (* every interned name resolves; locals only where the checker listens *)
  Array.iter
    (fun nm ->
      Alcotest.(check bool) "gid" true (Flat.gid_of_name eng nm <> None))
    (Flat.names eng);
  Alcotest.(check bool) "c0 hears a" true
    (Flat.local_of_name eng 0 (name "a") >= 0);
  Alcotest.(check int) "c0 does not hear irq" (-1)
    (Flat.local_of_name eng 0 (name "irq"));
  Alcotest.(check bool) "c1 hears irq" true
    (Flat.local_of_name eng 1 (name "irq") >= 0)

(* step_name (CSR row), step_event (per-checker resolve) and
   step_checker must drive the same machine to the same verdicts. *)
let test_dispatch_paths_agree () =
  let trace =
    [ ev 0 "a"; ev 1 "b"; ev 2 "go"; ev 3 "start"; ev 4 "read"; ev 5 "read" ]
  in
  let by_name = Flat.compile (demo_entries ()) in
  List.iter
    (fun (e : Trace.event) ->
      match Flat.gid_of_name by_name e.name with
      | None -> ()
      | Some gid -> Flat.step_name by_name ~gid ~time:e.time)
    trace;
  let by_event = Flat.compile (demo_entries ()) in
  List.iter (fun e -> Flat.step_event by_event e) trace;
  for ck = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "checker %d verdict" ck)
      (Flat.verdict_code by_name ck)
      (Flat.verdict_code by_event ck);
    Alcotest.(check int)
      (Printf.sprintf "checker %d index" ck)
      (Flat.index by_name ck) (Flat.index by_event ck)
  done

(* ---- counter slots ----------------------------------------------------- *)

let test_counter_overflow () =
  let eng = Flat.compile [ ("p", pat "a[2,3] <<! i") ] in
  let feed t = Flat.step_event eng (ev t "a") in
  feed 0;
  feed 1;
  feed 2;
  Alcotest.(check int) "3 repetitions still running" 0 (Flat.verdict_code eng 0);
  feed 3;
  Alcotest.(check int) "4th overflows" 2 (Flat.verdict_code eng 0);
  match Flat.verdict eng 0 with
  | Compiled.Violated { reason = Diag.Overflow r; time; index } ->
      Alcotest.(check string) "range name" "a" (Name.to_string r.Pattern.name);
      Alcotest.(check int) "range hi" 3 r.Pattern.hi;
      Alcotest.(check int) "at time" 3 time;
      Alcotest.(check int) "at index" 3 index
  | _ -> Alcotest.fail "expected overflow"

let test_counter_underflow () =
  let eng = Flat.compile [ ("p", pat "a[2,3] <<! i") ] in
  Flat.step_event eng (ev 0 "a");
  Flat.step_event eng (ev 1 "i");
  Alcotest.(check int) "1 repetition underflows at terminator" 2
    (Flat.verdict_code eng 0);
  match Flat.verdict eng 0 with
  | Compiled.Violated { reason = Diag.Underflow r; _ } ->
      Alcotest.(check int) "range lo" 2 r.Pattern.lo
  | _ -> Alcotest.fail "expected underflow"

(* ---- deadline wheel firing order --------------------------------------- *)

(* Two timed checkers armed at the same instant with different
   deadlines, nothing else ever happens: the hub's wheel (driven by
   the engine's deadline table) must fire them earliest first, each at
   its own deadline. *)
let test_deadline_firing_order () =
  let source = "fast: a => b within 10\nslow: c => d within 100\n" in
  let suite =
    match Suite.parse source with
    | Ok s -> s
    | Error e -> Alcotest.failf "suite: %a" Suite.pp_error e
  in
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub, eng = Suite.attach_hub_flat tap suite in
  let fired = ref [] in
  List.iter
    (fun c ->
      Checker.on_violation c (fun v ->
          fired := (Checker.name c, v.Diag.time) :: !fired))
    (Hub.checkers hub);
  Kernel.run ~until:(Time.ps 5) kernel;
  Tap.emit_name tap (name "a");
  Tap.emit_name tap (name "c");
  Alcotest.(check (option int)) "engine's next deadline" (Some 15)
    (Flat.next_deadline eng);
  Kernel.run ~until:(Time.ps 1_000) kernel;
  Alcotest.(check (list (pair string int)))
    "earliest deadline fires first, at its own deadline"
    [ ("fast", 15); ("slow", 105) ]
    (List.rev !fired)

(* ---- state blob -------------------------------------------------------- *)

let test_blob_roundtrip () =
  let eng = Flat.compile (demo_entries ()) in
  List.iter
    (fun e -> Flat.step_event eng e)
    [ ev 0 "a"; ev 2 "go"; ev 5 "start"; ev 6 "read" ];
  let blob = Flat.save_blob eng in
  let fresh = Flat.compile (demo_entries ()) in
  (match Flat.load_blob fresh blob with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  for ck = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "verdict %d" ck)
      (Flat.verdict_code eng ck)
      (Flat.verdict_code fresh ck);
    Alcotest.(check int)
      (Printf.sprintf "index %d" ck)
      (Flat.index eng ck) (Flat.index fresh ck)
  done;
  Alcotest.(check (option int)) "deadline carried"
    (Flat.next_deadline eng) (Flat.next_deadline fresh);
  (* the loaded engine keeps running identically *)
  Flat.step_event eng (ev 7 "read");
  Flat.step_event fresh (ev 7 "read");
  Alcotest.(check int) "post-load step agrees" (Flat.verdict_code eng 1)
    (Flat.verdict_code fresh 1)

let expect_error label result needle =
  match result with
  | Ok () -> Alcotest.failf "%s: blob accepted" label
  | Error msg ->
      let contains hay n =
        let nh = String.length hay and nn = String.length n in
        let rec at i = i + nn <= nh && (String.sub hay i nn = n || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" label msg needle)
        true (contains msg needle)

let test_blob_rejections () =
  let eng = Flat.compile (demo_entries ()) in
  let blob = Flat.save_blob eng in
  (* bad magic *)
  expect_error "magic"
    (Flat.load_blob eng ("XXXX" ^ String.sub blob 4 (String.length blob - 4)))
    "magic";
  (* bumped version byte *)
  let tampered = Bytes.of_string blob in
  Bytes.set tampered 4 (Char.chr (Char.code (Bytes.get tampered 4) + 1));
  expect_error "version"
    (Flat.load_blob eng (Bytes.to_string tampered))
    "version";
  (* a different suite's engine: slot count mismatch *)
  let other = Flat.compile [ ("p", pat "a << b") ] in
  expect_error "wrong suite" (Flat.load_blob other blob) "different suite";
  (* truncation *)
  expect_error "truncated"
    (Flat.load_blob eng (String.sub blob 0 (String.length blob - 1)))
    "truncated";
  (* and a truncated load must not have corrupted the engine *)
  match Flat.load_blob eng blob with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "pristine blob after failures: %s" msg

let test_reset () =
  let eng = Flat.compile [ ("p", pat "a <<! i") ] in
  Flat.step_event eng (ev 0 "i");
  Alcotest.(check int) "violated" 2 (Flat.verdict_code eng 0);
  Flat.reset eng;
  Alcotest.(check int) "running again" 0 (Flat.verdict_code eng 0);
  Flat.step_event eng (ev 1 "a");
  Flat.step_event eng (ev 2 "i");
  Alcotest.(check int) "clean rerun still running" 0 (Flat.verdict_code eng 0);
  Alcotest.(check int) "round counted" 1 (Flat.rounds_completed eng 0)

let () =
  Alcotest.run "flat"
    [
      ( "layout",
        [
          Alcotest.test_case "packing pins" `Quick test_layout_pins;
          Alcotest.test_case "dispatch table" `Quick test_dispatch_table;
          Alcotest.test_case "dispatch paths agree" `Quick
            test_dispatch_paths_agree;
        ] );
      ( "counters",
        [
          Alcotest.test_case "overflow" `Quick test_counter_overflow;
          Alcotest.test_case "underflow" `Quick test_counter_underflow;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "wheel firing order" `Quick
            test_deadline_firing_order;
        ] );
      ( "blob",
        [
          Alcotest.test_case "roundtrip" `Quick test_blob_roundtrip;
          Alcotest.test_case "rejections" `Quick test_blob_rejections;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
    ]
