(* Checkpoint/resume: killing a streaming session at ANY prefix and
   resuming from the checkpoint must be observationally identical to
   the uninterrupted run — same rendered verdicts, same violation
   de-duplication, same pending reorder buffer. *)

open Loseq_core
open Loseq_verif
open Loseq_ingest
open Loseq_testutil

let ev t nm = Trace.event ~time:t (name nm)

let entry label src : Suite.entry =
  { Suite.label; pattern = pat src; line = 1 }

let demo_suite =
  [
    entry "config" "{set_imgAddr, set_glAddr, set_glSize} <<! start";
    entry "bounded" "start => read_img[1,3] < set_irq within 50";
    entry "order" "take_lock < release_lock <<! bus_idle";
  ]

let offer_all session trace = List.iter (Session.offer_force session) trace

let summary_of session trace =
  offer_all session trace;
  Report.summary_strings (Session.finalize session)

(* Run to [cut], checkpoint through the JSON codec, resume a fresh
   session from it, feed the rest. *)
let resumed_summary ?lateness suite trace cut =
  let first = Session.create ?lateness suite in
  let before, after =
    List.filteri (fun i _ -> i < cut) trace,
    List.filteri (fun i _ -> i >= cut) trace
  in
  offer_all first before;
  let json = Checkpoint.capture first in
  (* through the wire format: render + reparse *)
  let json =
    match Json.of_string (Json.to_string json) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "checkpoint JSON invalid: %s" msg
  in
  let second = Session.create ?lateness suite in
  (match Checkpoint.restore second json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "restore at cut %d: %s" cut msg);
  offer_all second after;
  Report.summary_strings (Session.finalize second)

let check_every_prefix ?lateness suite trace =
  let baseline =
    summary_of (Session.create ?lateness suite) trace
  in
  for cut = 0 to List.length trace do
    let resumed = resumed_summary ?lateness suite trace cut in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "cut at %d" cut)
      baseline resumed
  done

let passing_trace =
  [
    ev 0 "set_imgAddr"; ev 2 "set_glAddr"; ev 3 "set_glSize"; ev 10 "start";
    ev 15 "read_img"; ev 40 "set_irq"; ev 45 "take_lock"; ev 50 "release_lock";
    ev 60 "bus_idle";
  ]

let failing_trace =
  [
    ev 0 "set_imgAddr"; ev 2 "set_glAddr"; ev 3 "start" (* missing size *);
    ev 15 "read_img"; ev 100 "set_irq" (* past the deadline *);
    ev 110 "release_lock"; ev 120 "bus_idle" (* lock order broken *);
  ]

let test_every_prefix_passing () = check_every_prefix demo_suite passing_trace
let test_every_prefix_failing () = check_every_prefix demo_suite failing_trace

let test_every_prefix_with_pending_reorder () =
  (* lateness > 0 keeps events parked in the reorder buffer: a
     checkpoint in that state must carry them, not flush them. *)
  let disordered =
    [
      ev 2 "set_glAddr"; ev 0 "set_imgAddr"; ev 3 "set_glSize"; ev 10 "start";
      ev 15 "read_img"; ev 40 "set_irq"; ev 47 "take_lock"; ev 45 "other";
      ev 50 "release_lock"; ev 60 "bus_idle";
    ]
  in
  check_every_prefix ~lateness:5 demo_suite disordered

let test_violation_not_rereported () =
  let suite = [ entry "p" "a <<! go" ] in
  let trace = [ ev 0 "go"; ev 1 "go" ] in
  let first = Session.create suite in
  Session.offer_force first (List.hd trace);
  (* violated and reported before the checkpoint *)
  let json = Checkpoint.capture first in
  let second = Session.create suite in
  let hits = ref 0 in
  Session.on_violation second (fun ~name:_ _ -> incr hits);
  (match Checkpoint.restore second json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  offer_all second (List.tl trace);
  ignore (Session.finalize second);
  Alcotest.(check int) "already-reported violation stays reported" 0 !hits

let test_file_roundtrip () =
  let session = Session.create demo_suite in
  offer_all session (List.filteri (fun i _ -> i < 5) passing_trace);
  let path = Filename.temp_file "loseq" ".ckpt" in
  (match Checkpoint.save ~path session with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let resumed = Checkpoint.resume ~path demo_suite in
  Sys.remove path;
  match resumed with
  | Error msg -> Alcotest.fail msg
  | Ok second ->
      Alcotest.(check int) "position preserved" (Session.position session)
        (Session.position second);
      offer_all second (List.filteri (fun i _ -> i >= 5) passing_trace);
      let baseline = summary_of (Session.create demo_suite) passing_trace in
      Alcotest.(check (list (pair string string)))
        "verdicts equal" baseline
        (Report.summary_strings (Session.finalize second))

(* A restore moves [events_seen] to the checkpoint's historical total
   without executing any monitor step in this process; the hub's
   read-time delta into [loseq_backend_steps_total] must re-baseline
   (Hub.resync) so the counter reflects only post-resume steps. *)
let test_resume_rebases_step_counters () =
  let module Obs = Loseq_obs.Metrics in
  let steps m =
    match
      Obs.read_counter m ~name:"loseq_backend_steps_total"
        ~labels:[ ("backend", "compiled") ] ()
    with
    | Some n -> n
    | None -> Alcotest.fail "loseq_backend_steps_total not registered"
  in
  let cut = 5 in
  let full = Obs.create () in
  offer_all (Session.create ~metrics:full demo_suite) passing_trace;
  let prefix = Obs.create () in
  let first = Session.create ~metrics:prefix demo_suite in
  offer_all first (List.filteri (fun i _ -> i < cut) passing_trace);
  let json = Checkpoint.capture first in
  let live = Obs.create () in
  let second = Session.create ~metrics:live demo_suite in
  (match Checkpoint.restore second json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "no steps counted for pre-resume history" 0
    (steps live);
  offer_all second (List.filteri (fun i _ -> i >= cut) passing_trace);
  ignore (Session.finalize second);
  Alcotest.(check int) "post-resume steps = full run minus prefix"
    (steps full - steps prefix) (steps live)

let test_restore_refuses_mismatches () =
  let session = Session.create demo_suite in
  offer_all session passing_trace;
  let json = Checkpoint.capture session in
  (* different suite *)
  let other = Session.create [ entry "p" "a << b" ] in
  (match Checkpoint.restore other json with
  | Ok () -> Alcotest.fail "restored into a different suite"
  | Error _ -> ());
  (* non-fresh session *)
  let used = Session.create demo_suite in
  Session.offer_force used (ev 0 "set_imgAddr");
  (match Checkpoint.restore used json with
  | Ok () -> Alcotest.fail "restored into a used session"
  | Error _ -> ());
  (* malformed document *)
  let fresh = Session.create demo_suite in
  match Checkpoint.restore fresh (Json.Obj [ ("format", Json.String "x") ]) with
  | Ok () -> Alcotest.fail "restored from garbage"
  | Error _ -> ()

(* Property: random pattern, random chronological trace, random kill
   point — rendered verdicts are identical to the uninterrupted run. *)
let gen_case =
  QCheck2.Gen.(
    let* p, trace = gen_pattern_and_trace in
    let* cut_frac = int_bound 100 in
    return (p, trace, cut_frac))

let prop_resume_equivalence =
  qtest ~count:300 "resume at any prefix = uninterrupted"
    gen_case
    (fun (p, trace, cut_frac) ->
      Printf.sprintf "%s (cut %d%%)"
        (print_pattern_and_trace (p, trace))
        cut_frac)
    (fun (p, trace, cut_frac) ->
      let trace =
        List.stable_sort
          (fun (a : Trace.event) (b : Trace.event) -> compare a.time b.time)
          trace
      in
      let suite = [ { Suite.label = "p"; pattern = p; line = 1 } ] in
      let cut = List.length trace * cut_frac / 100 in
      let baseline = summary_of (Session.create suite) trace in
      resumed_summary suite trace cut = baseline)

let () =
  Alcotest.run "checkpoint"
    [
      ( "equivalence",
        [
          Alcotest.test_case "every prefix, passing" `Quick
            test_every_prefix_passing;
          Alcotest.test_case "every prefix, failing" `Quick
            test_every_prefix_failing;
          Alcotest.test_case "every prefix, pending reorder" `Quick
            test_every_prefix_with_pending_reorder;
          Alcotest.test_case "violation de-dup" `Quick
            test_violation_not_rereported;
        ] );
      ( "files",
        [
          Alcotest.test_case "save/resume" `Quick test_file_roundtrip;
          Alcotest.test_case "step counters rebased" `Quick
            test_resume_rebases_step_counters;
          Alcotest.test_case "mismatches refused" `Quick
            test_restore_refuses_mismatches;
        ] );
      ("properties", [ prop_resume_equivalence ]);
    ]
