(* Checkpoint/resume: killing a streaming session at ANY prefix and
   resuming from the checkpoint must be observationally identical to
   the uninterrupted run — same rendered verdicts, same violation
   de-duplication, same pending reorder buffer. *)

open Loseq_core
open Loseq_verif
open Loseq_ingest
open Loseq_testutil

let ev t nm = Trace.event ~time:t (name nm)

let entry label src : Suite.entry =
  { Suite.label; pattern = pat src; line = 1 }

let demo_suite =
  [
    entry "config" "{set_imgAddr, set_glAddr, set_glSize} <<! start";
    entry "bounded" "start => read_img[1,3] < set_irq within 50";
    entry "order" "take_lock < release_lock <<! bus_idle";
  ]

let offer_all session trace = List.iter (Session.offer_force session) trace

let summary_of session trace =
  offer_all session trace;
  Report.summary_strings (Session.finalize session)

(* Run to [cut] under [src] hosting, checkpoint through the JSON
   codec, resume a fresh [dst]-hosted session from it, feed the rest.
   The hostings are independent: a compiled-written (v1) checkpoint
   must restore under the flat suite engine and a flat-written (v2)
   blob under per-checker compiled monitors. *)
let resumed_summary ?lateness ?src ?dst suite trace cut =
  let first = Session.create ?lateness ?suite_backend:src suite in
  let before, after =
    List.filteri (fun i _ -> i < cut) trace,
    List.filteri (fun i _ -> i >= cut) trace
  in
  offer_all first before;
  let json = Checkpoint.capture first in
  (* through the wire format: render + reparse *)
  let json =
    match Json.of_string (Json.to_string json) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "checkpoint JSON invalid: %s" msg
  in
  let second = Session.create ?lateness ?suite_backend:dst suite in
  (match Checkpoint.restore second json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "restore at cut %d: %s" cut msg);
  offer_all second after;
  Report.summary_strings (Session.finalize second)

let check_every_prefix ?lateness ?src ?dst suite trace =
  let baseline =
    summary_of (Session.create ?lateness suite) trace
  in
  for cut = 0 to List.length trace do
    let resumed = resumed_summary ?lateness ?src ?dst suite trace cut in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "cut at %d" cut)
      baseline resumed
  done

let passing_trace =
  [
    ev 0 "set_imgAddr"; ev 2 "set_glAddr"; ev 3 "set_glSize"; ev 10 "start";
    ev 15 "read_img"; ev 40 "set_irq"; ev 45 "take_lock"; ev 50 "release_lock";
    ev 60 "bus_idle";
  ]

let failing_trace =
  [
    ev 0 "set_imgAddr"; ev 2 "set_glAddr"; ev 3 "start" (* missing size *);
    ev 15 "read_img"; ev 100 "set_irq" (* past the deadline *);
    ev 110 "release_lock"; ev 120 "bus_idle" (* lock order broken *);
  ]

let test_every_prefix_passing () = check_every_prefix demo_suite passing_trace
let test_every_prefix_failing () = check_every_prefix demo_suite failing_trace

let flat = Backend.flat_views

(* Cross-backend resume, both directions and flat-to-flat, every cut,
   passing and failing traces. *)
let test_cross_backend_resume () =
  List.iter
    (fun trace ->
      check_every_prefix ~src:flat ~dst:flat demo_suite trace;
      check_every_prefix ~src:flat demo_suite trace;
      check_every_prefix ~dst:flat demo_suite trace)
    [ passing_trace; failing_trace ]

let test_cross_backend_resume_with_pending_reorder () =
  let disordered =
    [
      ev 2 "set_glAddr"; ev 0 "set_imgAddr"; ev 3 "set_glSize"; ev 10 "start";
      ev 15 "read_img"; ev 40 "set_irq"; ev 47 "take_lock"; ev 45 "other";
      ev 50 "release_lock"; ev 60 "bus_idle";
    ]
  in
  check_every_prefix ~lateness:5 ~src:flat demo_suite disordered;
  check_every_prefix ~lateness:5 ~dst:flat demo_suite disordered

(* A flat-hosted session writes version 2: blob + interning table. *)
let test_flat_checkpoint_is_v2 () =
  let session = Session.create ~suite_backend:flat demo_suite in
  offer_all session (List.filteri (fun i _ -> i < 5) passing_trace);
  let json = Checkpoint.capture session in
  let int_field k =
    match Json.member k json with Some (Json.Int n) -> n | _ -> -1
  in
  Alcotest.(check int) "version" 2 (int_field "version");
  Alcotest.(check int) "blob_version" Flat.blob_version
    (int_field "blob_version");
  (match Json.member "blob" json with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "no blob field");
  match Json.member "names" json with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "no interning table"

(* A tampered blob version must surface as a clear error, not a decode
   exception. *)
let test_blob_version_mismatch_refused () =
  let session = Session.create ~suite_backend:flat demo_suite in
  offer_all session (List.filteri (fun i _ -> i < 5) passing_trace);
  let json = Checkpoint.capture session in
  let bump = function
    | ("blob_version", Json.Int v) -> ("blob_version", Json.Int (v + 1))
    | kv -> kv
  in
  let tampered =
    match json with
    | Json.Obj fields -> Json.Obj (List.map bump fields)
    | _ -> Alcotest.fail "checkpoint is not an object"
  in
  let fresh = Session.create ~suite_backend:flat demo_suite in
  match Checkpoint.restore fresh tampered with
  | Ok () -> Alcotest.fail "restored a mismatched blob version"
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error names the version: %s" msg)
        true (contains msg "version")

(* At 64 checkers the single-blob checkpoint must be smaller than 64
   per-checker JSON states. *)
let test_v2_smaller_at_64 () =
  let big_suite =
    List.init 64 (fun i ->
        entry
          (Printf.sprintf "p%d" i)
          (Printf.sprintf "{a%d, b%d} <<! go%d" i i i))
  in
  let feed session =
    for i = 0 to 63 do
      Session.offer_force session (ev (2 * i) (Printf.sprintf "a%d" i))
    done
  in
  let size suite_backend =
    let session = Session.create ?suite_backend big_suite in
    feed session;
    String.length (Json.to_string (Checkpoint.capture session))
  in
  let v1 = size None and v2 = size (Some flat) in
  Alcotest.(check bool)
    (Printf.sprintf "flat blob (%d B) < per-checker JSON (%d B)" v2 v1)
    true (v2 < v1)

let test_every_prefix_with_pending_reorder () =
  (* lateness > 0 keeps events parked in the reorder buffer: a
     checkpoint in that state must carry them, not flush them. *)
  let disordered =
    [
      ev 2 "set_glAddr"; ev 0 "set_imgAddr"; ev 3 "set_glSize"; ev 10 "start";
      ev 15 "read_img"; ev 40 "set_irq"; ev 47 "take_lock"; ev 45 "other";
      ev 50 "release_lock"; ev 60 "bus_idle";
    ]
  in
  check_every_prefix ~lateness:5 demo_suite disordered

let test_violation_not_rereported () =
  let suite = [ entry "p" "a <<! go" ] in
  let trace = [ ev 0 "go"; ev 1 "go" ] in
  let first = Session.create suite in
  Session.offer_force first (List.hd trace);
  (* violated and reported before the checkpoint *)
  let json = Checkpoint.capture first in
  let second = Session.create suite in
  let hits = ref 0 in
  Session.on_violation second (fun ~name:_ _ -> incr hits);
  (match Checkpoint.restore second json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  offer_all second (List.tl trace);
  ignore (Session.finalize second);
  Alcotest.(check int) "already-reported violation stays reported" 0 !hits

let test_file_roundtrip () =
  let session = Session.create demo_suite in
  offer_all session (List.filteri (fun i _ -> i < 5) passing_trace);
  let path = Filename.temp_file "loseq" ".ckpt" in
  (match Checkpoint.save ~path session with
  | Ok bytes -> Alcotest.(check bool) "byte count positive" true (bytes > 0)
  | Error msg -> Alcotest.fail msg);
  let resumed = Checkpoint.resume ~path demo_suite in
  Sys.remove path;
  match resumed with
  | Error msg -> Alcotest.fail msg
  | Ok second ->
      Alcotest.(check int) "position preserved" (Session.position session)
        (Session.position second);
      offer_all second (List.filteri (fun i _ -> i >= 5) passing_trace);
      let baseline = summary_of (Session.create demo_suite) passing_trace in
      Alcotest.(check (list (pair string string)))
        "verdicts equal" baseline
        (Report.summary_strings (Session.finalize second))

(* A restore moves [events_seen] to the checkpoint's historical total
   without executing any monitor step in this process; the hub's
   read-time delta into [loseq_backend_steps_total] must re-baseline
   (Hub.resync) so the counter reflects only post-resume steps. *)
let test_resume_rebases_step_counters () =
  let module Obs = Loseq_obs.Metrics in
  let steps m =
    match
      Obs.read_counter m ~name:"loseq_backend_steps_total"
        ~labels:[ ("backend", "compiled") ] ()
    with
    | Some n -> n
    | None -> Alcotest.fail "loseq_backend_steps_total not registered"
  in
  let cut = 5 in
  let full = Obs.create () in
  offer_all (Session.create ~metrics:full demo_suite) passing_trace;
  let prefix = Obs.create () in
  let first = Session.create ~metrics:prefix demo_suite in
  offer_all first (List.filteri (fun i _ -> i < cut) passing_trace);
  let json = Checkpoint.capture first in
  let live = Obs.create () in
  let second = Session.create ~metrics:live demo_suite in
  (match Checkpoint.restore second json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "no steps counted for pre-resume history" 0
    (steps live);
  offer_all second (List.filteri (fun i _ -> i >= cut) passing_trace);
  ignore (Session.finalize second);
  Alcotest.(check int) "post-resume steps = full run minus prefix"
    (steps full - steps prefix) (steps live)

let test_restore_refuses_mismatches () =
  let session = Session.create demo_suite in
  offer_all session passing_trace;
  let json = Checkpoint.capture session in
  (* different suite *)
  let other = Session.create [ entry "p" "a << b" ] in
  (match Checkpoint.restore other json with
  | Ok () -> Alcotest.fail "restored into a different suite"
  | Error _ -> ());
  (* non-fresh session *)
  let used = Session.create demo_suite in
  Session.offer_force used (ev 0 "set_imgAddr");
  (match Checkpoint.restore used json with
  | Ok () -> Alcotest.fail "restored into a used session"
  | Error _ -> ());
  (* malformed document *)
  let fresh = Session.create demo_suite in
  match Checkpoint.restore fresh (Json.Obj [ ("format", Json.String "x") ]) with
  | Ok () -> Alcotest.fail "restored from garbage"
  | Error _ -> ()

(* Property: random pattern, random chronological trace, random kill
   point — rendered verdicts are identical to the uninterrupted run. *)
let gen_case =
  QCheck2.Gen.(
    let* p, trace = gen_pattern_and_trace in
    let* cut_frac = int_bound 100 in
    return (p, trace, cut_frac))

let prop_resume_equivalence =
  qtest ~count:300 "resume at any prefix = uninterrupted"
    gen_case
    (fun (p, trace, cut_frac) ->
      Printf.sprintf "%s (cut %d%%)"
        (print_pattern_and_trace (p, trace))
        cut_frac)
    (fun (p, trace, cut_frac) ->
      let trace =
        List.stable_sort
          (fun (a : Trace.event) (b : Trace.event) -> compare a.time b.time)
          trace
      in
      let suite = [ { Suite.label = "p"; pattern = p; line = 1 } ] in
      let cut = List.length trace * cut_frac / 100 in
      let baseline = summary_of (Session.create suite) trace in
      resumed_summary suite trace cut = baseline)

let () =
  Alcotest.run "checkpoint"
    [
      ( "equivalence",
        [
          Alcotest.test_case "every prefix, passing" `Quick
            test_every_prefix_passing;
          Alcotest.test_case "every prefix, failing" `Quick
            test_every_prefix_failing;
          Alcotest.test_case "every prefix, pending reorder" `Quick
            test_every_prefix_with_pending_reorder;
          Alcotest.test_case "violation de-dup" `Quick
            test_violation_not_rereported;
          Alcotest.test_case "cross-backend resume" `Quick
            test_cross_backend_resume;
          Alcotest.test_case "cross-backend resume, pending reorder" `Quick
            test_cross_backend_resume_with_pending_reorder;
        ] );
      ( "blob format",
        [
          Alcotest.test_case "flat hosting writes v2" `Quick
            test_flat_checkpoint_is_v2;
          Alcotest.test_case "blob version mismatch refused" `Quick
            test_blob_version_mismatch_refused;
          Alcotest.test_case "v2 smaller at 64 checkers" `Quick
            test_v2_smaller_at_64;
        ] );
      ( "files",
        [
          Alcotest.test_case "save/resume" `Quick test_file_roundtrip;
          Alcotest.test_case "step counters rebased" `Quick
            test_resume_rebases_step_counters;
          Alcotest.test_case "mismatches refused" `Quick
            test_restore_refuses_mismatches;
        ] );
      ("properties", [ prop_resume_equivalence ]);
    ]
