open Loseq_core
open Loseq_verif

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else loop (i + 1)
  in
  loop 0

let sample_trace =
  [
    Trace.event ~time:0 (Name.v "req");
    Trace.event ~time:5 (Name.v "beat");
    Trace.event ~time:6 (Name.v "beat");
    Trace.event ~time:9 (Name.v "dma_done");
  ]

let test_header () =
  let vcd = Vcd.of_trace sample_trace in
  Alcotest.(check bool) "timescale" true (contains vcd "$timescale 1ps $end");
  Alcotest.(check bool) "scope" true (contains vcd "$scope module loseq $end");
  Alcotest.(check bool) "enddefinitions" true
    (contains vcd "$enddefinitions $end")

let test_declares_each_name_once () =
  let vcd = Vcd.of_trace sample_trace in
  List.iter
    (fun nm ->
      Alcotest.(check bool) nm true (contains vcd (" " ^ nm ^ " $end")))
    [ "req"; "beat"; "dma_done" ]

let test_timestamps_present () =
  let vcd = Vcd.of_trace sample_trace in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "#%d" t)
        true
        (contains vcd (Printf.sprintf "#%d\n" t)))
    [ 0; 5; 6; 9 ]

let test_pulse_shape () =
  (* A lone event pulses 1 then 0 one unit later. *)
  let vcd = Vcd.of_trace [ Trace.event ~time:3 (Name.v "x") ] in
  Alcotest.(check bool) "rise at 3" true (contains vcd "#3\n1!");
  Alcotest.(check bool) "fall at 4" true (contains vcd "#4\n0!")

let test_burst_stays_high () =
  (* Adjacent occurrences merge: no falling edge between 5 and 6. *)
  let vcd =
    Vcd.of_trace
      [ Trace.event ~time:5 (Name.v "x"); Trace.event ~time:6 (Name.v "x") ]
  in
  Alcotest.(check bool) "rise" true (contains vcd "#5\n1!");
  Alcotest.(check bool) "no fall at 6" false (contains vcd "#6\n0!");
  Alcotest.(check bool) "fall at 7" true (contains vcd "#7\n0!")

let test_custom_scope_and_timescale () =
  let vcd = Vcd.of_trace ~timescale:"1ns" ~scope:"soc" sample_trace in
  Alcotest.(check bool) "timescale" true (contains vcd "$timescale 1ns $end");
  Alcotest.(check bool) "scope" true (contains vcd "$scope module soc $end")

let test_write_roundtrip () =
  let path = Filename.temp_file "loseq" ".vcd" in
  Vcd.write ~path sample_trace;
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" (Vcd.of_trace sample_trace) contents

let test_soc_trace_dumps () =
  let soc = Loseq_platform.Soc.create () in
  Loseq_platform.Soc.run soc;
  let vcd = Vcd.of_trace (Tap.trace (Loseq_platform.Soc.tap soc)) in
  List.iter
    (fun nm -> Alcotest.(check bool) nm true (contains vcd nm))
    [ "set_imgAddr"; "read_img"; "set_irq"; "lock_open" ]

let () =
  Alcotest.run "vcd"
    [
      ( "format",
        [
          Alcotest.test_case "header" `Quick test_header;
          Alcotest.test_case "declarations" `Quick
            test_declares_each_name_once;
          Alcotest.test_case "timestamps" `Quick test_timestamps_present;
          Alcotest.test_case "pulse" `Quick test_pulse_shape;
          Alcotest.test_case "burst" `Quick test_burst_stays_high;
          Alcotest.test_case "custom options" `Quick
            test_custom_scope_and_timescale;
          Alcotest.test_case "write" `Quick test_write_roundtrip;
          Alcotest.test_case "platform trace" `Slow test_soc_trace_dumps;
        ] );
    ]
