(* Transition-level tests of the Fig. 5 elementary recognizer. *)

open Loseq_core
open Loseq_testutil

let n = name

(* Build a recognizer for n[u,v] in a two-range fragment so that all
   categories are meaningful. *)
let make ?(u = 2) ?(v = 4) ?(connective = Pattern.All) () =
  let ordering =
    [
      Pattern.fragment ~connective
        [ Pattern.range ~lo:u ~hi:v (n "x"); Pattern.range (n "y") ];
      Pattern.single (n "z");
    ]
  in
  let contexts =
    Context.of_ordering ~terminators:(Name.Set.singleton (n "i")) ordering
  in
  match contexts with
  | [ [ ctx_x; _ ]; _ ] ->
      let r = Recognizer.create ctx_x in
      Recognizer.start r;
      r
  | _ -> assert false

let state_testable =
  Alcotest.testable Recognizer.pp_state (fun a b -> a = b)

let is_quiet = function Recognizer.Quiet -> true | _ -> false
let is_err = function Recognizer.Err _ -> true | _ -> false
let is_ok = function Recognizer.Ok -> true | _ -> false
let is_nok = function Recognizer.Nok -> true | _ -> false

let test_initial_state () =
  let r = make () in
  Alcotest.check state_testable "waiting" Recognizer.Waiting
    (Recognizer.state r)

let test_s1_self_starts_counting () =
  let r = make () in
  Alcotest.(check bool) "quiet" true (is_quiet (Recognizer.step r Context.Self));
  Alcotest.check state_testable "counting 1" (Recognizer.Counting 1)
    (Recognizer.state r)

let test_s1_current_moves_to_s2 () =
  let r = make () in
  ignore (Recognizer.step r Context.Current);
  Alcotest.check state_testable "s2" Recognizer.Waiting_started
    (Recognizer.state r)

let test_s1_before_errs () =
  let r = make () in
  Alcotest.(check bool) "err" true (is_err (Recognizer.step r Context.Before));
  Alcotest.check state_testable "failed" Recognizer.Failed (Recognizer.state r)

let test_s1_after_errs () =
  let r = make () in
  Alcotest.(check bool) "err" true (is_err (Recognizer.step r Context.After))

let test_s1_accept_conjunctive_errs () =
  let r = make ~connective:Pattern.All () in
  Alcotest.(check bool) "err (missing range)" true
    (is_err (Recognizer.step r Context.Accept))

let test_s1_accept_disjunctive_noks () =
  let r = make ~connective:Pattern.Any () in
  Alcotest.(check bool) "nok" true (is_nok (Recognizer.step r Context.Accept));
  Alcotest.check state_testable "idle again" Recognizer.Idle
    (Recognizer.state r)

let test_s2_self_starts_counting () =
  let r = make () in
  ignore (Recognizer.step r Context.Current);
  ignore (Recognizer.step r Context.Self);
  Alcotest.check state_testable "counting" (Recognizer.Counting 1)
    (Recognizer.state r)

let test_counting_increments () =
  let r = make ~u:2 ~v:4 () in
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Self);
  Alcotest.check state_testable "counting 2" (Recognizer.Counting 2)
    (Recognizer.state r)

let test_counting_overflow () =
  let r = make ~u:2 ~v:3 () in
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Self);
  let out = Recognizer.step r Context.Self in
  Alcotest.(check bool) "overflow err" true (is_err out);
  match out with
  | Recognizer.Err (Diag.Overflow _) -> ()
  | _ -> Alcotest.fail "expected Overflow"

let test_counting_current_below_min_errs () =
  let r = make ~u:2 () in
  ignore (Recognizer.step r Context.Self);
  let out = Recognizer.step r Context.Current in
  match out with
  | Recognizer.Err (Diag.Underflow _) -> ()
  | _ -> Alcotest.fail "expected Underflow"

let test_counting_current_at_min_done () =
  let r = make ~u:2 () in
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Current);
  Alcotest.check state_testable "done" (Recognizer.Done_counting 2)
    (Recognizer.state r)

let test_counting_accept_at_min_ok () =
  let r = make ~u:2 () in
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Self);
  Alcotest.(check bool) "ok" true (is_ok (Recognizer.step r Context.Accept));
  Alcotest.check state_testable "idle" Recognizer.Idle (Recognizer.state r)

let test_counting_accept_below_min_errs () =
  let r = make ~u:2 () in
  ignore (Recognizer.step r Context.Self);
  Alcotest.(check bool) "err" true (is_err (Recognizer.step r Context.Accept))

let test_done_reenter_errs () =
  let r = make ~u:1 () in
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Current);
  let out = Recognizer.step r Context.Self in
  match out with
  | Recognizer.Err (Diag.Reentered _) -> ()
  | _ -> Alcotest.fail "expected Reentered"

let test_done_accept_ok () =
  let r = make ~u:1 () in
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Current);
  Alcotest.(check bool) "ok" true (is_ok (Recognizer.step r Context.Accept))

let test_done_current_quiet () =
  let r = make ~u:1 () in
  ignore (Recognizer.step r Context.Self);
  ignore (Recognizer.step r Context.Current);
  Alcotest.(check bool) "quiet" true
    (is_quiet (Recognizer.step r Context.Current))

let test_outside_is_quiet_everywhere () =
  let r = make () in
  Alcotest.(check bool) "s1" true (is_quiet (Recognizer.step r Context.Outside));
  ignore (Recognizer.step r Context.Self);
  Alcotest.(check bool) "s3" true (is_quiet (Recognizer.step r Context.Outside))

let test_step_idle_raises () =
  let r = make () in
  Recognizer.reset r;
  match Recognizer.step r Context.Self with
  | (_ : Recognizer.output) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_start_with_self () =
  let r = make () in
  Recognizer.reset r;
  Recognizer.start_with r Context.Self;
  Alcotest.check state_testable "counting" (Recognizer.Counting 1)
    (Recognizer.state r)

let test_start_with_current () =
  let r = make () in
  Recognizer.reset r;
  Recognizer.start_with r Context.Current;
  Alcotest.check state_testable "s2" Recognizer.Waiting_started
    (Recognizer.state r)

let test_would_accept_matches_step () =
  (* would_accept must predict step's Accept answer without mutating. *)
  let scenarios = [ []; [ Context.Self ]; [ Context.Self; Context.Self ];
                    [ Context.Current ];
                    [ Context.Self; Context.Self; Context.Current ] ] in
  List.iter
    (fun prefix ->
      let r1 = make ~u:2 ~v:3 () in
      let r2 = make ~u:2 ~v:3 () in
      List.iter (fun c -> ignore (Recognizer.step r1 c)) prefix;
      List.iter (fun c -> ignore (Recognizer.step r2 c)) prefix;
      let predicted = Recognizer.would_accept r1 in
      let state_before = Recognizer.state r1 in
      Alcotest.(check bool) "no mutation" true
        (Recognizer.state r1 = state_before);
      let actual = Recognizer.step r2 Context.Accept in
      let same =
        match (predicted, actual) with
        | Recognizer.Ok, Recognizer.Ok -> true
        | Recognizer.Nok, Recognizer.Nok -> true
        | Recognizer.Err _, Recognizer.Err _ -> true
        | _ -> false
      in
      Alcotest.(check bool) "prediction" true same)
    scenarios

let test_ops_counted () =
  let ops = ref 0 in
  let ordering = [ Pattern.single (n "x") ] in
  let contexts =
    Context.of_ordering ~terminators:(Name.Set.singleton (n "i")) ordering
  in
  let ctx = List.hd (List.hd contexts) in
  let r = Recognizer.create ~ops ctx in
  Recognizer.start r;
  ignore (Recognizer.step r Context.Self);
  Alcotest.(check bool) "ops counted" true (!ops > 0)

let test_space_bits_sane () =
  let r = make ~u:2 ~v:4 () in
  let bits = Recognizer.space_bits r in
  Alcotest.(check bool) "positive" true (bits > 0);
  (* 3 state bits + 3 counter bits (hi=4) + context names. *)
  Alcotest.(check bool) "at least state+counter" true (bits >= 6)

let () =
  Alcotest.run "recognizer"
    [
      ( "waiting (s1/s2)",
        [
          Alcotest.test_case "initial" `Quick test_initial_state;
          Alcotest.test_case "self -> counting" `Quick
            test_s1_self_starts_counting;
          Alcotest.test_case "current -> s2" `Quick test_s1_current_moves_to_s2;
          Alcotest.test_case "before errs" `Quick test_s1_before_errs;
          Alcotest.test_case "after errs" `Quick test_s1_after_errs;
          Alcotest.test_case "accept/conj errs" `Quick
            test_s1_accept_conjunctive_errs;
          Alcotest.test_case "accept/disj noks" `Quick
            test_s1_accept_disjunctive_noks;
          Alcotest.test_case "s2 self -> counting" `Quick
            test_s2_self_starts_counting;
        ] );
      ( "counting (s3/s4)",
        [
          Alcotest.test_case "increments" `Quick test_counting_increments;
          Alcotest.test_case "overflow" `Quick test_counting_overflow;
          Alcotest.test_case "current below min" `Quick
            test_counting_current_below_min_errs;
          Alcotest.test_case "current at min" `Quick
            test_counting_current_at_min_done;
          Alcotest.test_case "accept at min" `Quick
            test_counting_accept_at_min_ok;
          Alcotest.test_case "accept below min" `Quick
            test_counting_accept_below_min_errs;
          Alcotest.test_case "reenter errs" `Quick test_done_reenter_errs;
          Alcotest.test_case "done accept ok" `Quick test_done_accept_ok;
          Alcotest.test_case "done current quiet" `Quick
            test_done_current_quiet;
        ] );
      ( "api",
        [
          Alcotest.test_case "outside quiet" `Quick
            test_outside_is_quiet_everywhere;
          Alcotest.test_case "idle step raises" `Quick test_step_idle_raises;
          Alcotest.test_case "start with self" `Quick test_start_with_self;
          Alcotest.test_case "start with current" `Quick
            test_start_with_current;
          Alcotest.test_case "would_accept" `Quick
            test_would_accept_matches_step;
          Alcotest.test_case "ops counter" `Quick test_ops_counted;
          Alcotest.test_case "space bits" `Quick test_space_bits_sane;
        ] );
    ]
