open Loseq_sim
open Loseq_platform

let test_payload_words () =
  let p = Tlm.payload Tlm.Write ~address:0 ~length:4 in
  Tlm.set_word p 0xdeadbeef;
  Alcotest.(check int) "round trip" 0xdeadbeef (Tlm.get_word p)

let test_unbound_initiator_raises () =
  let ini = Tlm.initiator () in
  let p = Tlm.payload Tlm.Read ~address:0 ~length:4 in
  match Tlm.transport ini p Time.zero with
  | (_ : Time.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_double_bind_raises () =
  let ini = Tlm.initiator () in
  let mem = Memory.create ~size:64 () in
  Tlm.bind ini (Memory.target mem);
  match Tlm.bind ini (Memory.target mem) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_memory_read_write () =
  let mem = Memory.create ~size:256 () in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Memory.target mem);
  let (_ : Time.t) = Tlm.write_word ini 16 0x12345678 in
  let v, delay = Tlm.read_word ini 16 in
  Alcotest.(check int) "value" 0x12345678 v;
  Alcotest.(check bool) "latency charged" true (Time.to_ps delay > 0);
  (* Backdoor agrees with TLM path. *)
  Alcotest.(check int) "backdoor" 0x12345678 (Memory.read_word mem 16)

let test_memory_out_of_range () =
  let mem = Memory.create ~size:32 () in
  let p = Tlm.payload Tlm.Read ~address:30 ~length:4 in
  let (_ : Time.t) = (Memory.target mem).Tlm.b_transport p Time.zero in
  Alcotest.(check bool) "address error" true
    (p.Tlm.response = Tlm.Address_error)

let test_memory_fill () =
  let mem = Memory.create ~size:16 () in
  Memory.fill mem ~pos:4 ~len:4 (fun i -> i + 1);
  Alcotest.(check int) "byte 4" 1 (Memory.read_byte mem 4);
  Alcotest.(check int) "byte 7" 4 (Memory.read_byte mem 7)

let test_bus_routing () =
  let bus = Bus.create () in
  let m1 = Memory.create ~name:"m1" ~size:64 () in
  let m2 = Memory.create ~name:"m2" ~size:64 () in
  Bus.map bus ~base:0x1000 ~size:64 (Memory.target m1);
  Bus.map bus ~base:0x2000 ~size:64 (Memory.target m2);
  let ini = Tlm.initiator () in
  Tlm.bind ini (Bus.target bus);
  let (_ : Time.t) = Tlm.write_word ini 0x1004 111 in
  let (_ : Time.t) = Tlm.write_word ini 0x2004 222 in
  Alcotest.(check int) "m1 local" 111 (Memory.read_word m1 4);
  Alcotest.(check int) "m2 local" 222 (Memory.read_word m2 4)

let test_bus_unmapped () =
  let bus = Bus.create () in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Bus.target bus);
  let p = Tlm.payload Tlm.Read ~address:0x9999 ~length:4 in
  let (_ : Time.t) = Tlm.transport ini p Time.zero in
  Alcotest.(check bool) "address error" true
    (p.Tlm.response = Tlm.Address_error)

let test_bus_overlap_rejected () =
  let bus = Bus.create () in
  let mem = Memory.create ~size:64 () in
  Bus.map bus ~base:0x1000 ~size:0x100 (Memory.target mem);
  match Bus.map bus ~base:0x10f0 ~size:0x100 (Memory.target mem) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_bus_mappings_listed () =
  let bus = Bus.create () in
  let mem = Memory.create ~size:64 () in
  Bus.map bus ~base:0x2000 ~size:64 (Memory.target mem);
  Bus.map bus ~base:0x1000 ~size:64 (Memory.target mem);
  Alcotest.(check (list int)) "sorted bases" [ 0x1000; 0x2000 ]
    (List.map (fun (b, _, _) -> b) (Bus.mappings bus))

let test_bus_decode () =
  let bus = Bus.create () in
  let mem = Memory.create ~size:64 () in
  Bus.map bus ~base:0x1000 ~size:64 (Memory.target mem);
  (match Bus.decode bus 0x1010 with
  | Some (_, local) -> Alcotest.(check int) "local" 0x10 local
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "miss" true (Bus.decode bus 0x3000 = None)

let test_mmio_registers () =
  let stored = ref 0 in
  let target =
    Mmio.target ~name:"dev"
      [
        Mmio.reg ~offset:0x0 ~read:(fun () -> !stored)
          ~write:(fun v -> stored := v)
          "VALUE";
        Mmio.reg ~offset:0x4 ~read:(fun () -> 42) "RO";
        Mmio.reg ~offset:0x8 ~write:(fun _ -> ()) "WO";
      ]
  in
  let ini = Tlm.initiator () in
  Tlm.bind ini target;
  let (_ : Time.t) = Tlm.write_word ini 0x0 7 in
  Alcotest.(check int) "stored" 7 !stored;
  let v, _ = Tlm.read_word ini 0x0 in
  Alcotest.(check int) "read back" 7 v;
  let v, _ = Tlm.read_word ini 0x4 in
  Alcotest.(check int) "ro" 42 v;
  (* Writing a read-only register is a command error. *)
  let p = Tlm.payload Tlm.Write ~address:0x4 ~length:4 in
  let (_ : Time.t) = Tlm.transport ini p Time.zero in
  Alcotest.(check bool) "command error" true
    (p.Tlm.response = Tlm.Command_error);
  (* Unknown offset is an address error. *)
  let p = Tlm.payload Tlm.Read ~address:0x40 ~length:4 in
  let (_ : Time.t) = Tlm.transport ini p Time.zero in
  Alcotest.(check bool) "address error" true
    (p.Tlm.response = Tlm.Address_error)

let test_mmio_rejects_unaligned () =
  let target = Mmio.target ~name:"dev" [ Mmio.reg ~offset:0 "R" ] in
  let p = Tlm.payload Tlm.Read ~address:2 ~length:4 in
  let (_ : Time.t) = target.Tlm.b_transport p Time.zero in
  Alcotest.(check bool) "unaligned" true (p.Tlm.response = Tlm.Command_error);
  let p = Tlm.payload Tlm.Read ~address:0 ~length:2 in
  let (_ : Time.t) = target.Tlm.b_transport p Time.zero in
  Alcotest.(check bool) "narrow" true (p.Tlm.response = Tlm.Command_error)

let test_delay_accumulates_through_bus () =
  let bus = Bus.create ~latency:(Time.ns 5) () in
  let mem = Memory.create ~latency:(Time.ns 20) ~size:64 () in
  Bus.map bus ~base:0 ~size:64 (Memory.target mem);
  let ini = Tlm.initiator () in
  Tlm.bind ini (Bus.target bus);
  let p = Tlm.payload Tlm.Read ~address:0 ~length:4 in
  let delay = Tlm.transport ini p (Time.ns 1) in
  Alcotest.(check int) "1 + 5 + 20 ns" 26_000 (Time.to_ps delay)

let () =
  Alcotest.run "tlm"
    [
      ( "payload",
        [
          Alcotest.test_case "words" `Quick test_payload_words;
          Alcotest.test_case "unbound" `Quick test_unbound_initiator_raises;
          Alcotest.test_case "double bind" `Quick test_double_bind_raises;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_read_write;
          Alcotest.test_case "out of range" `Quick test_memory_out_of_range;
          Alcotest.test_case "fill" `Quick test_memory_fill;
        ] );
      ( "bus",
        [
          Alcotest.test_case "routing" `Quick test_bus_routing;
          Alcotest.test_case "unmapped" `Quick test_bus_unmapped;
          Alcotest.test_case "overlap" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "mappings" `Quick test_bus_mappings_listed;
          Alcotest.test_case "decode" `Quick test_bus_decode;
          Alcotest.test_case "delay accumulation" `Quick
            test_delay_accumulates_through_bus;
        ] );
      ( "mmio",
        [
          Alcotest.test_case "registers" `Quick test_mmio_registers;
          Alcotest.test_case "alignment" `Quick test_mmio_rejects_unaligned;
        ] );
    ]
