open Loseq_core
open Loseq_testutil

let rng seed = Random.State.make [| seed |]

let test_fragment_word_conjunctive () =
  let f =
    Pattern.fragment
      [ Pattern.range (name "a"); Pattern.range ~lo:2 ~hi:3 (name "b") ]
  in
  for seed = 0 to 30 do
    let w = Generate.fragment_word (rng seed) f in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d matches" seed)
      true
      (Semantics.match_fragment f w)
  done

let test_fragment_word_disjunctive () =
  let f =
    Pattern.fragment ~connective:Pattern.Any
      [ Pattern.range (name "a"); Pattern.range ~lo:2 ~hi:3 (name "b") ]
  in
  for seed = 0 to 30 do
    let w = Generate.fragment_word (rng seed) f in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d matches" seed)
      true
      (Semantics.match_fragment f w)
  done

let test_ordering_word_matches () =
  let p = pat "{a, b[2,4]} < {c | d} < e <<! i" in
  let ordering = Pattern.body_ordering p in
  for seed = 0 to 50 do
    let w = Generate.ordering_word (rng seed) ordering in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true
      (Semantics.match_ordering ordering w)
  done

let test_max_run_caps_huge_ranges () =
  let p = pat "a[100,60000] <<! i" in
  let w = Generate.ordering_word ~max_run:5 (rng 1) (Pattern.body_ordering p) in
  let len = List.length w in
  Alcotest.(check bool) "capped" true (len >= 100 && len <= 105)

let test_valid_rounds_counted () =
  let p = pat "a <<! i" in
  let trace = Generate.valid ~rounds:4 (rng 3) p in
  let triggers =
    List.length
      (List.filter
         (fun (e : Trace.event) -> Name.equal e.Trace.name (name "i"))
         trace)
  in
  Alcotest.(check int) "4 rounds" 4 triggers

let test_valid_nonrepeated_single_round () =
  let p = pat "a << i" in
  let trace = Generate.valid ~rounds:5 (rng 3) p in
  let triggers =
    List.filter (fun (e : Trace.event) -> Name.equal e.Trace.name (name "i")) trace
  in
  Alcotest.(check int) "one round" 1 (List.length triggers)

let test_valid_timed_meets_deadline () =
  let p = pat "a => b[2,4] < c within 50" in
  for seed = 0 to 30 do
    let trace = Generate.valid ~rounds:2 (rng seed) p in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d holds" seed)
      true
      (Semantics.holds p trace)
  done

let test_valid_timed_zero_deadline () =
  let p = pat "a => b within 0" in
  let trace = Generate.valid ~rounds:2 (rng 9) p in
  Alcotest.(check bool) "holds" true (Semantics.holds p trace)

let test_mutations_listed_by_kind () =
  let ant = Generate.mutations (pat "a << i") in
  let timed = Generate.mutations (pat "a => b within 5") in
  Alcotest.(check bool) "antecedent has Inject_trigger" true
    (List.mem Generate.Inject_trigger ant);
  Alcotest.(check bool) "timed has Delay_conclusion" true
    (List.mem Generate.Delay_conclusion timed);
  Alcotest.(check bool) "timed has no Inject_trigger" false
    (List.mem Generate.Inject_trigger timed)

let test_violating_finds_counterexamples () =
  List.iter
    (fun src ->
      let p = pat src in
      match Generate.violating (rng 7) p with
      | Some trace ->
          Alcotest.(check bool) (src ^ " violates") false
            (Semantics.holds p trace)
      | None -> Alcotest.failf "no violating trace found for %s" src)
    [
      "a << i";
      "{a, b} <<! i";
      "{a | b[2,3]} < c <<! i";
      "a => b within 10";
      "a => b[2,4] < c within 100";
    ]

let test_mutate_preserves_chronology_for_delay () =
  let p = pat "a => b within 10" in
  let base = Generate.valid ~rounds:1 (rng 5) p in
  let mutated = Generate.mutate (rng 6) Generate.Delay_conclusion p base in
  Alcotest.(check bool) "chronological" true (Trace.is_chronological mutated)

let qcheck_valid_always_holds =
  qtest ~count:800 "valid traces always satisfy their pattern"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* seed = int_bound 1_000_000 in
      return (p, seed))
    (fun (p, seed) -> Printf.sprintf "%s seed=%d" (Pattern.to_string p) seed)
    (fun (p, seed) ->
      Semantics.holds p (Generate.valid (Random.State.make [| seed |]) p))

let () =
  Alcotest.run "generate"
    [
      ( "words",
        [
          Alcotest.test_case "conjunctive fragment" `Quick
            test_fragment_word_conjunctive;
          Alcotest.test_case "disjunctive fragment" `Quick
            test_fragment_word_disjunctive;
          Alcotest.test_case "ordering" `Quick test_ordering_word_matches;
          Alcotest.test_case "max_run cap" `Quick
            test_max_run_caps_huge_ranges;
        ] );
      ( "traces",
        [
          Alcotest.test_case "repeated rounds" `Quick test_valid_rounds_counted;
          Alcotest.test_case "non-repeated" `Quick
            test_valid_nonrepeated_single_round;
          Alcotest.test_case "timed deadlines" `Quick
            test_valid_timed_meets_deadline;
          Alcotest.test_case "zero deadline" `Quick
            test_valid_timed_zero_deadline;
          qcheck_valid_always_holds;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "kinds" `Quick test_mutations_listed_by_kind;
          Alcotest.test_case "violating search" `Quick
            test_violating_finds_counterexamples;
          Alcotest.test_case "delay stays chronological" `Quick
            test_mutate_preserves_chronology_for_delay;
        ] );
    ]
