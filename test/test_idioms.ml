open Loseq_core
open Loseq_testutil

let test_config_before_commit () =
  let p =
    Idioms.config_before_commit
      ~registers:[ "set_imgAddr"; "set_glAddr"; "set_glSize" ]
      ~commit:"start" ()
  in
  Alcotest.check pattern_testable "matches the case-study property"
    (pat "{set_imgAddr, set_glAddr, set_glSize} << start")
    p;
  check_accepts p [ "set_glSize"; "set_imgAddr"; "set_glAddr"; "start" ];
  check_rejects p [ "set_imgAddr"; "start" ]

let test_config_repeated () =
  let p =
    Idioms.config_before_commit ~repeated:true ~registers:[ "a"; "b" ]
      ~commit:"go" ()
  in
  check_accepts p [ "a"; "b"; "go"; "b"; "a"; "go" ];
  check_rejects p [ "a"; "b"; "go"; "go" ]

let test_handshake () =
  let p = Idioms.handshake ~req:"req" ~ack:"ack" ~within:10 in
  Alcotest.check pattern_testable "shape" (pat "req => ack within 10") p;
  Alcotest.(check bool) "late nack" false
    (Monitor.accepts p
       [ Trace.event ~time:0 (name "req"); Trace.event ~time:50 (name "ack") ])

let test_burst () =
  let p =
    Idioms.burst ~trigger:"start" ~beat:"read_img" ~lo:100 ~hi:60000
      ~done_:"set_irq" ~within:60000
  in
  Alcotest.check pattern_testable "matches Example 3"
    (pat "start => read_img[100,60000] < set_irq within 60000")
    p

let test_any_of_before () =
  let p =
    Idioms.any_of_before ~choices:[ "key"; "badge"; "pin" ] ~trigger:"unlock" ()
  in
  check_accepts p [ "badge"; "unlock" ];
  check_accepts p [ "pin"; "key"; "unlock" ];
  check_rejects p [ "unlock" ]

let test_staged_startup () =
  let p =
    Idioms.staged_startup
      ~stages:[ [ "pll_en" ]; [ "clk_a"; "clk_b" ] ]
      ~go:"release_reset"
  in
  check_accepts p [ "pll_en"; "clk_b"; "clk_a"; "release_reset" ];
  check_rejects p [ "clk_a"; "pll_en"; "clk_b"; "release_reset" ];
  check_rejects p [ "pll_en"; "clk_a"; "release_reset" ]

let test_axi_write () =
  let p = Idioms.axi_write ~within:100 () in
  let ev t nm = Trace.event ~time:t (name nm) in
  (* Address and data in either order, response in time. *)
  Alcotest.(check bool) "aw w b" true
    (Monitor.accepts p [ ev 0 "aw_valid"; ev 5 "w_valid"; ev 50 "b_valid" ]);
  Alcotest.(check bool) "w aw b" true
    (Monitor.accepts p [ ev 0 "w_valid"; ev 5 "aw_valid"; ev 50 "b_valid" ]);
  (* Response before both channels is a protocol violation. *)
  Alcotest.(check bool) "early b" false
    (Monitor.accepts p [ ev 0 "aw_valid"; ev 5 "b_valid" ]);
  (* Late response violates the deadline. *)
  Alcotest.(check bool) "late b" false
    (Monitor.accepts p [ ev 0 "aw_valid"; ev 5 "w_valid"; ev 200 "b_valid" ])

let test_axi_write_custom_names () =
  let p = Idioms.axi_write ~aw:"awv" ~w:"wv" ~b:"bv" ~within:10 () in
  Alcotest.(check bool) "alpha uses custom names" true
    (Name.Set.mem (name "awv") (Pattern.alpha p)
    && Name.Set.mem (name "bv") (Pattern.alpha p))

let test_producer_consumer () =
  let p = Idioms.producer_consumer ~push:"push" ~pop:"pop" ~depth:3 in
  check_accepts p [ "push"; "pop"; "push"; "push"; "push"; "pop" ];
  (* A fourth push without a pop overflows the FIFO. *)
  check_rejects p [ "push"; "push"; "push"; "push"; "pop" ];
  (* Popping an empty FIFO. *)
  check_rejects p [ "push"; "pop"; "pop" ]

let test_producer_consumer_bad_depth () =
  match Idioms.producer_consumer ~push:"a" ~pop:"b" ~depth:0 with
  | (_ : Pattern.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_all_idioms_well_formed () =
  List.iter
    (fun p -> Alcotest.(check bool) "well formed" true (Wellformed.is_well_formed p))
    [
      Idioms.config_before_commit ~registers:[ "a"; "b" ] ~commit:"c" ();
      Idioms.handshake ~req:"r" ~ack:"a" ~within:1;
      Idioms.burst ~trigger:"t" ~beat:"b" ~lo:1 ~hi:2 ~done_:"d" ~within:1;
      Idioms.any_of_before ~choices:[ "x"; "y" ] ~trigger:"z" ();
      Idioms.staged_startup ~stages:[ [ "a" ]; [ "b" ] ] ~go:"g";
      Idioms.axi_write ~within:1 ();
      Idioms.producer_consumer ~push:"p" ~pop:"q" ~depth:2;
    ]

let () =
  Alcotest.run "idioms"
    [
      ( "shapes",
        [
          Alcotest.test_case "config before commit" `Quick
            test_config_before_commit;
          Alcotest.test_case "config repeated" `Quick test_config_repeated;
          Alcotest.test_case "handshake" `Quick test_handshake;
          Alcotest.test_case "burst" `Quick test_burst;
          Alcotest.test_case "any-of" `Quick test_any_of_before;
          Alcotest.test_case "staged startup" `Quick test_staged_startup;
          Alcotest.test_case "axi write" `Quick test_axi_write;
          Alcotest.test_case "axi custom names" `Quick
            test_axi_write_custom_names;
          Alcotest.test_case "producer/consumer" `Quick
            test_producer_consumer;
          Alcotest.test_case "bad depth" `Quick
            test_producer_consumer_bad_depth;
          Alcotest.test_case "all well-formed" `Quick
            test_all_idioms_well_formed;
        ] );
    ]
