open Loseq_core
open Loseq_testutil

let n = name

let violated_with m pred =
  match Monitor.verdict m with
  | Monitor.Violated v -> pred v
  | Monitor.Running | Monitor.Satisfied -> false

let reason_is m expected =
  violated_with m (fun v -> Diag.equal_reason v.Diag.reason expected)

(* ---- Example 2 (the case study's antecedent) -------------------------- *)

let example2 = pat "{set_imgAddr, set_glAddr, set_glSize} << start"

let test_example2_orders () =
  (* All 6 orders of the three writes are correct. *)
  let writes = [ "set_imgAddr"; "set_glAddr"; "set_glSize" ] in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) l in
            List.map (fun p -> x :: p) (permutations rest))
          l
  in
  List.iter
    (fun perm -> check_accepts example2 (perm @ [ "start" ]))
    (permutations writes)

let test_example2_early_start () =
  check_rejects example2 [ "set_imgAddr"; "start" ]

let test_example2_nonrepeated_satisfied () =
  let m = Monitor.create example2 in
  List.iter
    (fun nm -> ignore (Monitor.step_name m (n nm)))
    [ "set_glSize"; "set_glAddr"; "set_imgAddr"; "start" ];
  Alcotest.check verdict_testable "satisfied" Monitor.Satisfied
    (Monitor.verdict m);
  (* And sticky: absurd traffic afterwards stays satisfied. *)
  List.iter
    (fun nm -> ignore (Monitor.step_name m (n nm)))
    [ "start"; "start"; "set_glAddr" ];
  Alcotest.check verdict_testable "still satisfied" Monitor.Satisfied
    (Monitor.verdict m)

(* ---- Example 3 (the case study's timed implication) ------------------- *)

let example3 = pat "start => read_img[100,60000] < set_irq within 60000"

let reads k from gap = List.init k (fun i -> Trace.event ~time:(from + (i * gap)) (n "read_img"))

let test_example3_pass () =
  let trace =
    (Trace.event ~time:0 (n "start") :: reads 150 10 100)
    @ [ Trace.event ~time:20000 (n "set_irq") ]
  in
  Alcotest.(check bool) "pass" true (Monitor.accepts example3 trace)

let test_example3_too_few_reads () =
  let trace =
    (Trace.event ~time:0 (n "start") :: reads 99 10 100)
    @ [ Trace.event ~time:20000 (n "set_irq") ]
  in
  Alcotest.(check bool) "fail" false (Monitor.accepts example3 trace)

let test_example3_deadline_miss () =
  let m = Monitor.create example3 in
  ignore (Monitor.step m (Trace.event ~time:0 (n "start")));
  List.iter (fun e -> ignore (Monitor.step m e)) (reads 100 10 100);
  (* No set_irq; time passes the deadline. *)
  (match Monitor.finalize m ~now:70000 with
  | Monitor.Violated { reason = Diag.Deadline_miss _; _ } -> ()
  | _ -> Alcotest.fail "expected Deadline_miss");
  ()

let test_example3_next_deadline () =
  let m = Monitor.create example3 in
  Alcotest.(check (option int)) "unarmed" None (Monitor.next_deadline m);
  ignore (Monitor.step m (Trace.event ~time:123 (n "start")));
  Alcotest.(check (option int)) "armed at start+T" (Some 60123)
    (Monitor.next_deadline m)

let test_example3_deadline_disarmed_after_completion () =
  let m = Monitor.create example3 in
  ignore (Monitor.step m (Trace.event ~time:0 (n "start")));
  List.iter (fun e -> ignore (Monitor.step m e)) (reads 100 10 10);
  ignore (Monitor.step m (Trace.event ~time:2000 (n "set_irq")));
  Alcotest.(check (option int)) "disarmed" None (Monitor.next_deadline m);
  Alcotest.check verdict_testable "running" Monitor.Running
    (Monitor.finalize m ~now:1_000_000)

(* ---- diagnostics ------------------------------------------------------ *)

let test_diag_trigger_early () =
  let m = Monitor.create (pat "a < b << i") in
  ignore (Monitor.step_name m (n "a"));
  ignore (Monitor.step_name m (n "i"));
  Alcotest.(check bool) "trigger early" true
    (reason_is m Diag.Trigger_early)

let test_diag_overflow () =
  let m = Monitor.create (pat "a[1,2] << i") in
  List.iter (fun _ -> ignore (Monitor.step_name m (n "a"))) [ (); (); () ];
  Alcotest.(check bool) "overflow" true
    (violated_with m (fun v ->
         match v.Diag.reason with Diag.Overflow _ -> true | _ -> false))

let test_diag_indices () =
  let m = Monitor.create (pat "a << i") in
  ignore (Monitor.step m (Trace.event ~time:5 (n "a")));
  ignore (Monitor.step m (Trace.event ~time:9 (n "a")));
  Alcotest.(check bool) "index and time recorded" true
    (violated_with m (fun v -> v.Diag.index = 1 && v.Diag.time = 9))

let test_verdict_sticky_after_violation () =
  let m = Monitor.create (pat "a << i") in
  ignore (Monitor.step_name m (n "i"));
  let v1 = Monitor.verdict m in
  ignore (Monitor.step_name m (n "a"));
  Alcotest.check verdict_testable "sticky" v1 (Monitor.verdict m)

(* ---- modes ------------------------------------------------------------ *)

let test_lenient_ignores_foreign () =
  let m = Monitor.create (pat "a << i") in
  ignore (Monitor.step_name m (n "zzz"));
  Alcotest.check verdict_testable "running" Monitor.Running (Monitor.verdict m)

let test_strict_rejects_foreign () =
  let m = Monitor.create ~mode:Monitor.Strict (pat "a << i") in
  ignore (Monitor.step_name m (n "zzz"));
  Alcotest.(check bool) "foreign" true
    (violated_with m (fun v ->
         match v.Diag.reason with Diag.Foreign _ -> true | _ -> false))

(* ---- repeated antecedents --------------------------------------------- *)

let test_repeated_rounds () =
  let p = pat "{a, b} <<! i" in
  check_accepts p [ "a"; "b"; "i"; "b"; "a"; "i"; "a"; "b"; "i" ];
  check_rejects p [ "a"; "b"; "i"; "a"; "i" ];
  check_rejects p [ "a"; "b"; "i"; "i" ]

let test_repeated_trailing_partial_ok () =
  check_accepts (pat "{a, b} <<! i") [ "a"; "b"; "i"; "a" ]

(* ---- instrumentation --------------------------------------------------- *)

let test_ops_scale_with_active_fragment () =
  (* Drct time is Θ(max |α(F)|): a 6-name fragment costs more per event
     than a 1-name fragment, but 5 extra inactive fragments cost
     nothing. *)
  let measure src trace =
    let ops = ref 0 in
    let m = Monitor.create ~ops src in
    List.iter (fun e -> ignore (Monitor.step m e)) trace;
    !ops / max 1 (List.length trace)
  in
  let small = measure (pat "a << i") (tr [ "a" ]) in
  let chain = measure (pat "a < b < c < d < e << i") (tr [ "a" ]) in
  let wide = measure (pat "{a, b, c, d, e} << i") (tr [ "a" ]) in
  Alcotest.(check int) "chain same as small" small chain;
  Alcotest.(check bool) "wide costs more" true (wide > small)

let test_space_bits_positive_and_monotone () =
  let bits src = Monitor.space_bits (Monitor.create (pat src)) in
  Alcotest.(check bool) "monotone in names" true
    (bits "{a, b, c} << i" > bits "a << i")

let test_acceptable_basic () =
  let m = Monitor.create (pat "{a, b[2,3]} << go") in
  let names_of set =
    List.map Name.to_string (Name.Set.elements set)
  in
  Alcotest.(check (list string)) "initially" [ "a"; "b" ]
    (names_of (Monitor.acceptable m));
  ignore (Monitor.step_name m (n "a"));
  (* a is done-able only via b now; go needs b[2,3] first. *)
  Alcotest.(check (list string)) "after a" [ "b" ]
    (names_of (Monitor.acceptable m));
  ignore (Monitor.step_name m (n "b"));
  Alcotest.(check (list string)) "b underflow: only b" [ "b" ]
    (names_of (Monitor.acceptable m));
  ignore (Monitor.step_name m (n "b"));
  Alcotest.(check (list string)) "complete: b or go" [ "b"; "go" ]
    (names_of (Monitor.acceptable m));
  ignore (Monitor.step_name m (n "go"));
  Alcotest.(check int) "satisfied: everything" 3
    (Name.Set.cardinal (Monitor.acceptable m))

let test_acceptable_empty_after_violation () =
  let m = Monitor.create (pat "a << go") in
  ignore (Monitor.step_name m (n "go"));
  Alcotest.(check int) "nothing" 0 (Name.Set.cardinal (Monitor.acceptable m))

let qcheck_acceptable_is_exact =
  qtest ~count:800 "acceptable = exactly the non-violating next events"
    gen_pattern_and_trace print_pattern_and_trace
    (fun (p, trace) ->
      if not (Trace.is_chronological trace) then true
      else begin
        let m = Monitor.create p in
        let rec feed last_time = function
          | [] -> Some last_time
          | e :: rest -> (
              match Monitor.step m e with
              | Monitor.Running -> feed e.Trace.time rest
              | Monitor.Satisfied | Monitor.Violated _ -> None)
        in
        match feed 0 trace with
        | None -> true (* decided mid-way; nothing to probe *)
        | Some time ->
            let acceptable = Monitor.acceptable m in
            Name.Set.for_all
              (fun name ->
                (* Probe with a fresh monitor replaying the prefix. *)
                let probe = Monitor.create p in
                List.iter (fun e -> ignore (Monitor.step probe e)) trace;
                let verdict = Monitor.step probe { Trace.name; time } in
                let survives =
                  match verdict with
                  | Monitor.Running | Monitor.Satisfied -> true
                  | Monitor.Violated _ -> false
                in
                survives = Name.Set.mem name acceptable)
              (Pattern.alpha p)
      end)

let test_run_final_time_default () =
  (* Default final time = trace end: a pending deadline that has not yet
     expired is not a violation. *)
  let p = pat "a => b within 100" in
  let trace = [ Trace.event ~time:0 (n "a"); Trace.event ~time:50 (n "b") ] in
  Alcotest.(check bool) "ok" true (Monitor.accepts p trace)

let () =
  Alcotest.run "monitor"
    [
      ( "example 2",
        [
          Alcotest.test_case "all orders pass" `Quick test_example2_orders;
          Alcotest.test_case "early start" `Quick test_example2_early_start;
          Alcotest.test_case "satisfied sticky" `Quick
            test_example2_nonrepeated_satisfied;
        ] );
      ( "example 3",
        [
          Alcotest.test_case "pass" `Quick test_example3_pass;
          Alcotest.test_case "too few reads" `Quick
            test_example3_too_few_reads;
          Alcotest.test_case "deadline miss" `Quick
            test_example3_deadline_miss;
          Alcotest.test_case "next deadline" `Quick
            test_example3_next_deadline;
          Alcotest.test_case "deadline disarmed" `Quick
            test_example3_deadline_disarmed_after_completion;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "trigger early" `Quick test_diag_trigger_early;
          Alcotest.test_case "overflow" `Quick test_diag_overflow;
          Alcotest.test_case "index/time" `Quick test_diag_indices;
          Alcotest.test_case "sticky" `Quick
            test_verdict_sticky_after_violation;
        ] );
      ( "modes",
        [
          Alcotest.test_case "lenient" `Quick test_lenient_ignores_foreign;
          Alcotest.test_case "strict" `Quick test_strict_rejects_foreign;
        ] );
      ( "repeated",
        [
          Alcotest.test_case "rounds" `Quick test_repeated_rounds;
          Alcotest.test_case "trailing partial" `Quick
            test_repeated_trailing_partial_ok;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "ops active fragment" `Quick
            test_ops_scale_with_active_fragment;
          Alcotest.test_case "space monotone" `Quick
            test_space_bits_positive_and_monotone;
          Alcotest.test_case "final time default" `Quick
            test_run_final_time_default;
          Alcotest.test_case "acceptable basics" `Quick
            test_acceptable_basic;
          Alcotest.test_case "acceptable after violation" `Quick
            test_acceptable_empty_after_violation;
          qcheck_acceptable_is_exact;
        ] );
    ]
