open Loseq_core
open Loseq_sim
open Loseq_verif

let ev t nm = Trace.event ~time:t (Name.v nm)

let sample_trace =
  [
    ev 0 "start"; ev 100 "set_irq";
    ev 200 "start"; ev 500 "set_irq";
    ev 600 "noise";
    ev 700 "start"; ev 710 "start"; ev 900 "set_irq";
    ev 1000 "set_irq" (* no pending start: skipped *);
  ]

let test_intervals () =
  let samples =
    Latency.intervals ~from:(Name.v "start") ~until:(Name.v "set_irq")
      sample_trace
  in
  (* Third round measures from the LATEST start (710). *)
  Alcotest.(check (list int)) "intervals" [ 100; 300; 190 ] samples

let test_summarize () =
  match Latency.summarize [ 100; 300; 190 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check int) "count" 3 s.Latency.count;
      Alcotest.(check int) "min" 100 s.Latency.min_ps;
      Alcotest.(check int) "max" 300 s.Latency.max_ps;
      Alcotest.(check int) "p50" 190 s.Latency.p50_ps

let test_summarize_empty () =
  Alcotest.(check bool) "none" true (Latency.summarize [] = None)

let test_percentile () =
  let samples = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  Alcotest.(check int) "p50" 50 (Latency.percentile samples 0.5);
  Alcotest.(check int) "p90" 90 (Latency.percentile samples 0.9);
  Alcotest.(check int) "p100" 100 (Latency.percentile samples 1.0);
  Alcotest.(check int) "p0 -> first" 10 (Latency.percentile samples 0.0)

let test_percentile_errors () =
  (match Latency.percentile [] 0.5 with
  | (_ : int) -> Alcotest.fail "empty"
  | exception Invalid_argument _ -> ());
  match Latency.percentile [ 1 ] 1.5 with
  | (_ : int) -> Alcotest.fail "fraction"
  | exception Invalid_argument _ -> ()

let test_suggest_deadline () =
  Alcotest.(check (option int)) "max + 50%" (Some 450)
    (Latency.suggest_deadline [ 100; 300 ]);
  Alcotest.(check (option int)) "custom slack" (Some 330)
    (Latency.suggest_deadline ~slack:0.1 [ 100; 300 ]);
  Alcotest.(check (option int)) "empty" None (Latency.suggest_deadline [])

let test_online_collection () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let collector =
    Latency.create ~from:(Name.v "req") ~until:(Name.v "ack") tap
  in
  let exceeded = ref [] in
  Latency.watch collector ~threshold:(Time.ps 150) (fun interval ->
      exceeded := interval :: !exceeded);
  Kernel.spawn kernel (fun () ->
      Tap.emit tap "req";
      Kernel.wait_for kernel (Time.ps 100);
      Tap.emit tap "ack";
      Kernel.wait_for kernel (Time.ps 50);
      Tap.emit tap "req";
      Kernel.wait_for kernel (Time.ps 200);
      Tap.emit tap "ack");
  Kernel.run kernel;
  Alcotest.(check (list int)) "collected" [ 100; 200 ]
    (Latency.durations collector);
  Alcotest.(check (list int)) "watch fired once" [ 200 ] !exceeded;
  match Latency.summary collector with
  | Some s -> Alcotest.(check int) "max" 200 s.Latency.max_ps
  | None -> Alcotest.fail "expected summary"

let test_on_platform_run () =
  (* Measure the case study's start -> set_irq latency and check the
     default deadline has headroom over the suggestion. *)
  let soc = Loseq_platform.Soc.create () in
  let collector =
    Latency.create ~from:(Name.v "start") ~until:(Name.v "set_irq")
      (Loseq_platform.Soc.tap soc)
  in
  Loseq_platform.Soc.run soc;
  let samples = Latency.durations collector in
  Alcotest.(check int) "three recognitions measured" 3 (List.length samples);
  match Latency.suggest_deadline samples with
  | Some suggested ->
      let configured =
        Time.to_ps
          (Loseq_platform.Soc.config soc).Loseq_platform.Soc
          .recognition_deadline
      in
      Alcotest.(check bool) "configured deadline above suggestion" true
        (configured >= suggested)
  | None -> Alcotest.fail "expected samples"

let () =
  Alcotest.run "latency"
    [
      ( "offline",
        [
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "summary" `Quick test_summarize;
          Alcotest.test_case "empty" `Quick test_summarize_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile errors" `Quick
            test_percentile_errors;
          Alcotest.test_case "suggest deadline" `Quick test_suggest_deadline;
        ] );
      ( "online",
        [
          Alcotest.test_case "collection & watch" `Quick
            test_online_collection;
          Alcotest.test_case "platform latency" `Slow test_on_platform_run;
        ] );
    ]
