open Loseq_core
open Loseq_testutil

let n = name

let ok p =
  Alcotest.(check bool) "well-formed" true (Wellformed.is_well_formed p)

let errors p expected =
  match Wellformed.check p with
  | Ok () -> Alcotest.fail "expected ill-formed"
  | Error errs ->
      Alcotest.(check int) "error count" expected (List.length errs)

let test_good_patterns () =
  List.iter
    (fun src -> ok (pat src))
    [
      "n << i";
      "{a, b, c} << start";
      "{a | b} < c <<! i";
      "a => b within 0";
      "{a, b} < c => {d | e} < f within 100";
    ]

let test_duplicate_in_fragment () =
  let p =
    Pattern.antecedent
      [ Pattern.fragment [ Pattern.range (n "x"); Pattern.range (n "x") ] ]
      ~trigger:(n "i")
  in
  errors p 1

let test_duplicate_across_fragments () =
  let p =
    Pattern.antecedent
      [ Pattern.single (n "x"); Pattern.single (n "x") ]
      ~trigger:(n "i")
  in
  errors p 1

let test_duplicate_across_premise_conclusion () =
  let p =
    Pattern.timed
      [ Pattern.single (n "x") ]
      [ Pattern.single (n "x") ]
      ~deadline:5
  in
  errors p 1

let test_trigger_in_body () =
  let p = Pattern.antecedent [ Pattern.single (n "i") ] ~trigger:(n "i") in
  errors p 1

let test_both_errors_reported () =
  let p =
    Pattern.antecedent
      [ Pattern.single (n "i"); Pattern.single (n "i") ]
      ~trigger:(n "i")
  in
  errors p 2

let test_check_exn_raises () =
  let p = Pattern.antecedent [ Pattern.single (n "i") ] ~trigger:(n "i") in
  match Wellformed.check_exn p with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Wellformed.Ill_formed (p', errs) ->
      Alcotest.check pattern_testable "same pattern" p p';
      Alcotest.(check int) "one error" 1 (List.length errs)

let test_monitor_rejects_ill_formed () =
  let p = Pattern.antecedent [ Pattern.single (n "i") ] ~trigger:(n "i") in
  match Monitor.create p with
  | (_ : Monitor.t) -> Alcotest.fail "expected Ill_formed"
  | exception Wellformed.Ill_formed _ -> ()

(* Tiny local substring helper to avoid extra dependencies. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else loop (i + 1)
  in
  loop 0

let test_error_messages () =
  Alcotest.(check bool) "shared mentions name" true
    (let msg = Wellformed.error_to_string (Wellformed.Shared_name (n "xyz")) in
     contains msg "xyz")

let qcheck_generated_patterns_well_formed =
  qtest ~count:500 "generators produce well-formed patterns" gen_pattern
    (fun p -> Pattern.to_string p)
    Wellformed.is_well_formed

let () =
  Alcotest.run "wellformed"
    [
      ( "checks",
        [
          Alcotest.test_case "good patterns" `Quick test_good_patterns;
          Alcotest.test_case "duplicate in fragment" `Quick
            test_duplicate_in_fragment;
          Alcotest.test_case "duplicate across fragments" `Quick
            test_duplicate_across_fragments;
          Alcotest.test_case "duplicate across P/Q" `Quick
            test_duplicate_across_premise_conclusion;
          Alcotest.test_case "trigger in body" `Quick test_trigger_in_body;
          Alcotest.test_case "multiple errors" `Quick
            test_both_errors_reported;
          Alcotest.test_case "check_exn" `Quick test_check_exn_raises;
          Alcotest.test_case "monitor rejects" `Quick
            test_monitor_rejects_ill_formed;
          Alcotest.test_case "error messages" `Quick test_error_messages;
          qcheck_generated_patterns_well_formed;
        ] );
    ]
