(* The telemetry layer: registry semantics (dedup, noop, collected
   sources), exposition formats, the version pin against the CHANGELOG,
   and the qcheck law that a live metrics sink never changes a verdict
   while the steps counter obeys exact conservation. *)

open Loseq_core
open Loseq_testutil
module Obs = Loseq_obs.Metrics
module Expo = Loseq_obs.Expo

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- registry --------------------------------------------------------- *)

let test_counter_dedup () =
  let m = Obs.create () in
  let c1 = Obs.counter m ~name:"x_total" ~help:"h" ~labels:[ ("k", "v") ] () in
  let c2 = Obs.counter m ~name:"x_total" ~help:"h" ~labels:[ ("k", "v") ] () in
  Obs.incr c1;
  Obs.add c2 2;
  Alcotest.(check (option int))
    "same (name,labels) is one cell" (Some 3)
    (Obs.read_counter m ~name:"x_total" ~labels:[ ("k", "v") ] ());
  let c3 = Obs.counter m ~name:"x_total" ~help:"h" () in
  Obs.incr c3;
  Alcotest.(check (option int))
    "different labels are a different cell" (Some 1)
    (Obs.read_counter m ~name:"x_total" ());
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics.gauge: x_total is not a gauge") (fun () ->
      ignore (Obs.gauge m ~name:"x_total" ~help:"h" ~labels:[ ("k", "v") ] ()))

let test_gauge_and_histogram () =
  let m = Obs.create () in
  let g = Obs.gauge m ~name:"depth" ~help:"h" () in
  Obs.set g 7;
  Obs.set g 3;
  Alcotest.(check (option int)) "gauge holds last set" (Some 3)
    (Obs.read_gauge m ~name:"depth" ());
  let h = Obs.histogram m ~name:"lat" ~help:"h" ~buckets:[| 10; 100 |] () in
  List.iter (Obs.observe h) [ 5; 10; 11; 1_000 ];
  (match
     List.find_opt (fun s -> s.Obs.sample_name = "lat") (Obs.samples m)
   with
  | Some { Obs.value = Obs.Histogram_v { sum; count; buckets }; _ } ->
      Alcotest.(check int) "sum" 1026 sum;
      Alcotest.(check int) "count" 4 count;
      Alcotest.(check (array (pair int int)))
        "cumulative buckets"
        [| (10, 2); (100, 3) |]
        buckets
  | _ -> Alcotest.fail "histogram sample missing");
  Alcotest.check_raises "unsorted bounds rejected"
    (Invalid_argument
       "Metrics.histogram: bucket bounds must be non-empty and strictly \
        increasing") (fun () ->
      ignore (Obs.histogram m ~name:"bad" ~help:"h" ~buckets:[| 5; 5 |] ()))

let test_noop () =
  Alcotest.(check bool) "noop is dead" false (Obs.is_live Obs.noop);
  Alcotest.(check bool) "created is live" true (Obs.is_live (Obs.create ()));
  let c = Obs.counter Obs.noop ~name:"n_total" ~help:"h" () in
  Obs.incr c;
  Alcotest.(check int) "noop registers nothing" 0
    (List.length (Obs.samples Obs.noop));
  Alcotest.(check (option int))
    "noop reads nothing" None
    (Obs.read_counter Obs.noop ~name:"n_total" ())

let test_collect () =
  let m = Obs.create () in
  let c = Obs.counter m ~name:"mirror_total" ~help:"h" () in
  let source = ref 0 in
  Obs.on_collect m (fun () -> Obs.set_counter c !source);
  source := 42;
  Alcotest.(check (option int))
    "read_counter runs the hooks" (Some 42)
    (Obs.read_counter m ~name:"mirror_total" ());
  source := 43;
  Alcotest.(check bool) "samples run the hooks" true
    (List.exists
       (fun s -> s.Obs.value = Obs.Counter_v 43)
       (Obs.samples m));
  (* delta-style hooks compose with direct writers of the same cell *)
  let d = Obs.counter m ~name:"delta_total" ~help:"h" () in
  let seen = ref 0 and last = ref 0 in
  Obs.on_collect m (fun () ->
      Obs.add d (!seen - !last);
      last := !seen);
  Obs.incr d;
  seen := 5;
  Alcotest.(check (option int))
    "delta hook adds on top of direct bumps" (Some 6)
    (Obs.read_counter m ~name:"delta_total" ())

(* ---- exposition ------------------------------------------------------- *)

let rendered () =
  let m = Obs.create () in
  let c =
    Obs.counter m ~name:"ev_total" ~help:"events seen"
      ~labels:[ ("name", "go") ]
      ()
  in
  Obs.add c 430;
  let g = Obs.gauge m ~name:"occ" ~help:"occupancy" () in
  Obs.set g 2;
  let h = Obs.histogram m ~name:"lat_ns" ~help:"latency" ~buckets:[| 100 |] () in
  Obs.observe h 50;
  Obs.observe h 500;
  m

let test_prometheus () =
  let text = Expo.prometheus (rendered ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "# HELP ev_total events seen";
      "# TYPE ev_total counter";
      "ev_total{name=\"go\"} 430";
      "# TYPE occ gauge";
      "occ 2";
      "# TYPE lat_ns histogram";
      "lat_ns_bucket{le=\"100\"} 1";
      "lat_ns_bucket{le=\"+Inf\"} 2";
      "lat_ns_sum 550";
      "lat_ns_count 2";
    ]

let test_json () =
  let json =
    match Json.of_string (Expo.json (rendered ())) with
    | Ok j -> j
    | Error e -> Alcotest.failf "exposed JSON does not parse: %s" e
  in
  match Option.bind (Json.member "metrics" json) Json.to_list_opt with
  | None -> Alcotest.fail "metrics array missing"
  | Some ms ->
      Alcotest.(check int) "three instruments" 3 (List.length ms);
      let names =
        List.filter_map
          (fun j -> Option.bind (Json.member "name" j) Json.to_string_opt)
          ms
      in
      Alcotest.(check (list string))
        "names in registration order"
        [ "ev_total"; "occ"; "lat_ns" ]
        names

(* ---- version pin ------------------------------------------------------ *)

let changelog =
  let candidates = [ "CHANGELOG.md"; "../CHANGELOG.md"; "../../CHANGELOG.md" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let test_version_pin () =
  let ic = open_in changelog in
  let rec first_heading () =
    match input_line ic with
    | line when String.length line > 3 && String.sub line 0 3 = "## " ->
        String.trim (String.sub line 3 (String.length line - 3))
    | _ -> first_heading ()
    | exception End_of_file -> ""
  in
  let top = first_heading () in
  close_in ic;
  Alcotest.(check string)
    "Version.current matches the top CHANGELOG entry" top Version.current

(* ---- qcheck: telemetry is observation-only ---------------------------- *)

(* A small suite plus a trace touching every entry's alphabet. *)
let gen_suite_and_trace =
  QCheck2.Gen.(
    let* n = int_range 1 3 in
    let* ps = list_size (return n) gen_pattern in
    let* words = flatten_l (List.map gen_alpha_word ps) in
    let word = List.concat words in
    let* gaps = list_size (return (List.length word)) (int_range 0 30) in
    let time = ref 0 in
    let trace =
      List.map2
        (fun nm gap ->
          time := !time + gap;
          { Trace.name = nm; time = !time })
        word gaps
    in
    let suite =
      List.mapi
        (fun i p ->
          { Loseq_verif.Suite.label = Printf.sprintf "p%d" i;
            pattern = p;
            line = i + 1 })
        ps
    in
    return (suite, trace))

let print_suite_and_trace (suite, trace) =
  Format.asprintf "@[<v>suite:@,%s@,trace: %s@]"
    (Loseq_verif.Suite.to_string suite)
    (Trace.to_string trace)

let test_live_noop_agree =
  qtest ~count:200 "live metrics never change a verdict"
    gen_suite_and_trace print_suite_and_trace (fun (suite, trace) ->
      let plain = Loseq_verif.Suite.check_trace suite trace in
      let m = Obs.create () in
      let live = Loseq_verif.Suite.check_trace ~metrics:m suite trace in
      plain = live
      && Obs.read_counter m ~name:"loseq_backend_steps_total"
           ~labels:[ ("backend", "compiled") ]
           ()
         = Some (List.length trace * List.length suite))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter dedup" `Quick test_counter_dedup;
          Alcotest.test_case "gauge and histogram" `Quick
            test_gauge_and_histogram;
          Alcotest.test_case "noop sink" `Quick test_noop;
          Alcotest.test_case "collected sources" `Quick test_collect;
        ] );
      ( "expo",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus;
          Alcotest.test_case "json snapshot" `Quick test_json;
        ] );
      ( "version",
        [ Alcotest.test_case "changelog pin" `Quick test_version_pin ] );
      ("qcheck", [ test_live_noop_agree ]);
    ]
