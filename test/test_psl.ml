open Loseq_core
open Loseq_psl
open Loseq_testutil

let a = Psl.atom "a"
let b = Psl.atom "b"
let c = Psl.atom "c"
let w l = Array.of_list (List.map name l)

let test_smart_constructors () =
  Alcotest.(check bool) "not not" true (Psl.equal (Psl.not_ (Psl.not_ a)) a);
  Alcotest.(check bool) "and []" true (Psl.equal (Psl.and_ []) Psl.True);
  Alcotest.(check bool) "or []" true (Psl.equal (Psl.or_ []) Psl.False);
  Alcotest.(check bool) "and [x]" true (Psl.equal (Psl.and_ [ a ]) a);
  Alcotest.(check bool) "and false" true
    (Psl.equal (Psl.and_ [ a; Psl.False ]) Psl.False);
  Alcotest.(check bool) "or true" true
    (Psl.equal (Psl.or_ [ a; Psl.True ]) Psl.True);
  Alcotest.(check bool) "and flattens" true
    (Psl.equal (Psl.and_ [ a; Psl.and_ [ b; c ] ]) (Psl.And [ a; b; c ]))

let test_size () =
  Alcotest.(check int) "atom" 1 (Psl.size a);
  Alcotest.(check int) "until" 3 (Psl.size (Psl.until a b));
  Alcotest.(check int) "always not" 3 (Psl.size (Psl.always (Psl.not_ a)))

let test_atoms () =
  let f = Psl.until (Psl.not_ a) (Psl.and_ [ b; c ]) in
  Alcotest.(check int) "three atoms" 3 (Name.Set.cardinal (Psl.atoms f))

let test_eval_atom () =
  Alcotest.(check bool) "matches" true (Psl.eval a (w [ "a" ]));
  Alcotest.(check bool) "differs" false (Psl.eval a (w [ "b" ]));
  Alcotest.(check bool) "empty strong" false (Psl.eval a (w []))

let test_eval_next () =
  Alcotest.(check bool) "next b" true (Psl.eval (Psl.next b) (w [ "a"; "b" ]));
  Alcotest.(check bool) "strong next at end" false
    (Psl.eval (Psl.next b) (w [ "a" ]));
  Alcotest.(check bool) "weak next at end" true
    (Psl.eval_weak (Psl.next b) (w [ "a" ]))

let test_eval_until () =
  let f = Psl.until a b in
  Alcotest.(check bool) "a a b" true (Psl.eval f (w [ "a"; "a"; "b" ]));
  Alcotest.(check bool) "immediate b" true (Psl.eval f (w [ "b" ]));
  Alcotest.(check bool) "broken" false (Psl.eval f (w [ "a"; "c"; "b" ]));
  Alcotest.(check bool) "strong no witness" false
    (Psl.eval f (w [ "a"; "a" ]));
  Alcotest.(check bool) "weak no witness" true
    (Psl.eval_weak f (w [ "a"; "a" ]))

let test_eval_always_eventually () =
  Alcotest.(check bool) "always" true
    (Psl.eval (Psl.always (Psl.or_ [ a; b ])) (w [ "a"; "b"; "a" ]));
  Alcotest.(check bool) "always broken" false
    (Psl.eval (Psl.always a) (w [ "a"; "b" ]));
  Alcotest.(check bool) "eventually" true
    (Psl.eval (Psl.eventually b) (w [ "a"; "a"; "b" ]));
  Alcotest.(check bool) "eventually strong" false
    (Psl.eval (Psl.eventually b) (w [ "a" ]))

let test_eval_release () =
  let f = Psl.release a b in
  (* b must hold until (and including when) a releases it. *)
  Alcotest.(check bool) "b b forever (finite)" true
    (Psl.eval f (w [ "b"; "b" ]));
  Alcotest.(check bool) "released" false (Psl.eval f (w [ "b"; "c" ]))

let test_nnf_no_negations_inside () =
  let rec nnf_ok = function
    | Psl.Not (Psl.Atom _) | Psl.Atom _ | Psl.True | Psl.False -> true
    | Psl.Not _ -> false
    | Psl.And fs | Psl.Or fs -> List.for_all nnf_ok fs
    | Psl.Implies _ | Psl.Always _ | Psl.Eventually _ -> false
    | Psl.Next f -> nnf_ok f
    | Psl.Until (f, g) | Psl.Release (f, g) -> nnf_ok f && nnf_ok g
  in
  let formulas =
    [
      Psl.not_ (Psl.until a (Psl.always b));
      Psl.implies (Psl.eventually a) (Psl.next (Psl.not_ (Psl.and_ [ a; b ])));
      Psl.not_ (Psl.release (Psl.not_ a) (Psl.or_ [ b; c ]));
    ]
  in
  List.iter
    (fun f -> Alcotest.(check bool) "nnf shape" true (nnf_ok (Psl.nnf f)))
    formulas

let gen_formula =
  let open QCheck2.Gen in
  sized_size (int_range 1 12) @@ fix (fun self n ->
      if n <= 1 then
        oneof [ return a; return b; return c; return Psl.True ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Psl.not_ sub;
            map2 (fun f g -> Psl.and_ [ f; g ]) sub sub;
            map2 (fun f g -> Psl.or_ [ f; g ]) sub sub;
            map2 Psl.implies sub sub;
            map Psl.next sub;
            map2 Psl.until sub sub;
            map2 Psl.release sub sub;
            map Psl.always sub;
            map Psl.eventually sub;
          ])

let gen_word =
  QCheck2.Gen.(
    let* len = int_range 0 8 in
    list_size (return len) (oneofl [ "a"; "b"; "c"; "d" ]))

(* On finite words, nnf is only neutral when no negation crosses a
   strong Next (see psl.mli); on lasso (infinite) semantics it is always
   neutral — that property is checked below and is the one the Buchi
   translation relies on. *)
let rec negation_free = function
  | Psl.True | Psl.False | Psl.Atom _ -> true
  | Psl.Not (Psl.Atom _) -> true
  | Psl.Not _ -> false
  | Psl.Implies _ -> false
  | Psl.And fs | Psl.Or fs -> List.for_all negation_free fs
  | Psl.Next f | Psl.Always f | Psl.Eventually f -> negation_free f
  | Psl.Until (f, g) | Psl.Release (f, g) ->
      negation_free f && negation_free g

let qcheck_nnf_preserves_semantics =
  qtest ~count:1000 "nnf preserves finite semantics (negation-free)"
    QCheck2.Gen.(
      let* f = gen_formula in
      let* word = gen_word in
      return (f, word))
    (fun (f, word) ->
      Printf.sprintf "%s on %s" (Psl.to_string f) (String.concat " " word))
    (fun (f, word) ->
      if not (negation_free f) then true
      else
        let arr = w word in
        Psl.eval f arr = Psl.eval (Psl.nnf f) arr)

let qcheck_nnf_preserves_lasso_semantics =
  qtest ~count:600 "nnf preserves lasso semantics"
    QCheck2.Gen.(
      let* f = gen_formula in
      let* prefix = gen_word in
      let* cycle_head = oneofl [ "a"; "b"; "c" ] in
      let* cycle_tail = gen_word in
      return (f, prefix, cycle_head :: cycle_tail))
    (fun (f, prefix, cycle) ->
      Printf.sprintf "%s on %s (%s)^w" (Psl.to_string f)
        (String.concat " " prefix) (String.concat " " cycle))
    (fun (f, prefix, cycle) ->
      let prefix = List.map name prefix and cycle = List.map name cycle in
      Psl.eval_lasso f ~prefix ~cycle
      = Psl.eval_lasso (Psl.nnf f) ~prefix ~cycle)

let test_lasso_basics () =
  let t = List.map name in
  Alcotest.(check bool) "G a on a^w" true
    (Psl.eval_lasso (Psl.always a) ~prefix:[] ~cycle:(t [ "a" ]));
  Alcotest.(check bool) "G a on (a b)^w" false
    (Psl.eval_lasso (Psl.always a) ~prefix:[] ~cycle:(t [ "a"; "b" ]));
  Alcotest.(check bool) "F b with prefix" true
    (Psl.eval_lasso (Psl.eventually b) ~prefix:(t [ "b" ]) ~cycle:(t [ "a" ]));
  Alcotest.(check bool) "GF b on (a b)^w" true
    (Psl.eval_lasso
       (Psl.always (Psl.eventually b))
       ~prefix:[] ~cycle:(t [ "a"; "b" ]));
  Alcotest.(check bool) "FG a on b (a)^w" true
    (Psl.eval_lasso
       (Psl.eventually (Psl.always a))
       ~prefix:(t [ "b" ]) ~cycle:(t [ "a" ]))

let test_lasso_empty_cycle_raises () =
  match Psl.eval_lasso a ~prefix:[ name "a" ] ~cycle:[] with
  | (_ : bool) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "psl"
    [
      ( "constructors",
        [
          Alcotest.test_case "smart constructors" `Quick
            test_smart_constructors;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "atoms" `Quick test_atoms;
        ] );
      ( "finite semantics",
        [
          Alcotest.test_case "atom" `Quick test_eval_atom;
          Alcotest.test_case "next" `Quick test_eval_next;
          Alcotest.test_case "until" `Quick test_eval_until;
          Alcotest.test_case "always/eventually" `Quick
            test_eval_always_eventually;
          Alcotest.test_case "release" `Quick test_eval_release;
        ] );
      ( "transformations",
        [
          Alcotest.test_case "nnf shape" `Quick test_nnf_no_negations_inside;
          qcheck_nnf_preserves_semantics;
          qcheck_nnf_preserves_lasso_semantics;
        ] );
      ( "lasso semantics",
        [
          Alcotest.test_case "basics" `Quick test_lasso_basics;
          Alcotest.test_case "empty cycle" `Quick
            test_lasso_empty_cycle_raises;
        ] );
    ]
