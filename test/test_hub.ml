(* The alphabet-routed event hub: per-name tap subscriptions, delivery
   order, the merged deadline wheel, strict-mode hosting and the
   suite/hub integration. *)

open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_testutil

(* ---- tap routing ------------------------------------------------------- *)

let test_subscribe_name_routing () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let a_hits = ref 0 and b_hits = ref 0 and all_hits = ref 0 in
  Tap.subscribe tap (fun _ -> incr all_hits);
  Tap.subscribe_name tap (name "a") (fun _ -> incr a_hits);
  Tap.subscribe_name tap (name "b") (fun _ -> incr b_hits);
  Tap.emit tap "a";
  Tap.emit tap "a";
  Tap.emit tap "b";
  Tap.emit tap "zzz";
  Alcotest.(check int) "a routed" 2 !a_hits;
  Alcotest.(check int) "b routed" 1 !b_hits;
  Alcotest.(check int) "whole-trace sees all" 4 !all_hits

let test_delivery_order () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let log = ref [] in
  let hit tag _ = log := tag :: !log in
  Tap.subscribe_name tap (name "a") (hit "name1");
  Tap.subscribe tap (hit "all1");
  Tap.subscribe_name tap (name "a") (hit "name2");
  Tap.subscribe tap (hit "all2");
  Tap.emit tap "a";
  Alcotest.(check (list string))
    "whole-trace first, then per-name, each in subscription order"
    [ "all1"; "all2"; "name1"; "name2" ]
    (List.rev !log)

(* ---- hub routing ------------------------------------------------------- *)

let test_hub_routes_by_alphabet () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub = Hub.create tap in
  let c1 = Hub.add hub (pat "{a1, b1} <<! go1") in
  let c2 = Hub.add hub (pat "{a2, b2} <<! go2") in
  List.iter (Tap.emit tap) [ "a1"; "b1"; "go1"; "noise" ];
  Alcotest.(check int) "c1 saw its three events" 3 (Checker.events_seen c1);
  Alcotest.(check int) "c2 saw nothing" 0 (Checker.events_seen c2);
  Alcotest.(check int) "hub size" 2 (Hub.size hub);
  Alcotest.(check bool) "all pass" true (Hub.all_passed hub)

let test_hub_detects_violation () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub = Hub.create tap in
  let c = Hub.add hub (pat "{a, b} << i") in
  List.iter (Tap.emit tap) [ "a"; "i" ];
  Alcotest.(check bool) "violated" false (Checker.passed c);
  Alcotest.(check bool) "hub reports it" false (Hub.all_passed hub)

(* ---- merged deadline wheel --------------------------------------------- *)

(* Two timed checkers, different deadlines, no trailing events: each
   miss must fire at its own deadline off the single parked timeout. *)
let test_merged_wheel_deadlines () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub = Hub.create tap in
  let c1 = Hub.add hub (pat "a1 => b1 within 100") in
  let c2 = Hub.add hub (pat "a2 => b2 within 300") in
  let times = ref [] in
  Checker.on_violation c1 (fun v -> times := ("c1", v.Diag.time) :: !times);
  Checker.on_violation c2 (fun v -> times := ("c2", v.Diag.time) :: !times);
  Stimuli.replay tap
    [
      { Trace.name = name "a1"; time = 10 };
      { Trace.name = name "a2"; time = 20 };
    ];
  Kernel.run ~until:(Time.ps 1000) kernel;
  Alcotest.(check bool) "c1 violated" false (Checker.passed c1);
  Alcotest.(check bool) "c2 violated" false (Checker.passed c2);
  match List.rev !times with
  | [ ("c1", t1); ("c2", t2) ] ->
      Alcotest.(check bool) "c1 at its deadline" true (t1 >= 110 && t1 <= 112);
      Alcotest.(check bool) "c2 at its deadline" true (t2 >= 320 && t2 <= 322)
  | other ->
      Alcotest.failf "expected c1 then c2, got %d violation(s)"
        (List.length other)

(* A satisfied round must disarm, and a later round must re-arm. *)
let test_wheel_rearm () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub = Hub.create tap in
  let c = Hub.add hub (pat "a => b within 100") in
  Stimuli.replay tap
    [
      { Trace.name = name "a"; time = 10 };
      { Trace.name = name "b"; time = 50 };
      (* second round: premise only, deadline 600 missed *)
      { Trace.name = name "a"; time = 500 };
    ];
  Kernel.run ~until:(Time.ps 2000) kernel;
  Alcotest.(check bool) "second round missed" false (Checker.passed c)

(* ---- strict mode ------------------------------------------------------- *)

let test_strict_sees_foreign () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub = Hub.create tap in
  let strict = Hub.add ~mode:Monitor.Strict hub (pat "a <<! i") in
  let lenient = Hub.add hub (pat "a <<! i") in
  Tap.emit tap "zzz";
  Alcotest.(check bool) "strict rejects foreign" false (Checker.passed strict);
  Alcotest.(check bool) "lenient ignores foreign" true
    (Checker.passed lenient);
  Alcotest.(check int) "lenient never stepped" 0 (Checker.events_seen lenient)

(* ---- suite integration ------------------------------------------------- *)

let test_suite_attach_hub () =
  let suite =
    match
      Suite.parse "one: {a, b} << i\ntwo: c <<! j\n"
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "suite: %a" Suite.pp_error e
  in
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub = Suite.attach_hub tap suite in
  List.iter (Tap.emit tap) [ "a"; "b"; "i"; "c"; "j" ];
  Hub.finalize hub;
  Alcotest.(check int) "two checkers" 2 (Hub.size hub);
  Alcotest.(check bool) "all pass" true (Hub.all_passed hub);
  Alcotest.(check bool) "report agrees" true
    (Report.all_passed (Hub.report hub))

let () =
  Alcotest.run "hub"
    [
      ( "tap",
        [
          Alcotest.test_case "per-name routing" `Quick
            test_subscribe_name_routing;
          Alcotest.test_case "delivery order" `Quick test_delivery_order;
        ] );
      ( "routing",
        [
          Alcotest.test_case "alphabet routing" `Quick
            test_hub_routes_by_alphabet;
          Alcotest.test_case "violation through hub" `Quick
            test_hub_detects_violation;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "merged deadlines" `Quick
            test_merged_wheel_deadlines;
          Alcotest.test_case "re-arm across rounds" `Quick test_wheel_rearm;
        ] );
      ( "modes",
        [ Alcotest.test_case "strict vs lenient" `Quick test_strict_sees_foreign ] );
      ( "suite",
        [ Alcotest.test_case "attach_hub" `Quick test_suite_attach_hub ] );
    ]
