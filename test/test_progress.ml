open Loseq_core
open Loseq_psl
open Loseq_testutil

let a = Psl.atom "a"
let b = Psl.atom "b"
let c = Psl.atom "c"

let test_progress_atom () =
  Alcotest.(check bool) "match -> True" true
    (Psl.equal (Progress.progress a (name "a")) Psl.True);
  Alcotest.(check bool) "mismatch -> False" true
    (Psl.equal (Progress.progress a (name "b")) Psl.False)

let test_progress_next () =
  Alcotest.(check bool) "X f -> f" true
    (Psl.equal (Progress.progress (Psl.next b) (name "a")) b)

let test_progress_until_unfolds () =
  let f = Psl.until a b in
  (* On 'a': b not seen, a holds -> obligation continues. *)
  Alcotest.(check bool) "continues" true
    (Psl.equal (Progress.progress f (name "a")) f);
  (* On 'b': satisfied. *)
  Alcotest.(check bool) "satisfied" true
    (Psl.equal (Progress.progress f (name "b")) Psl.True);
  (* On 'c': neither -> violated. *)
  Alcotest.(check bool) "violated" true
    (Psl.equal (Progress.progress f (name "c")) Psl.False)

let test_monitor_verdicts () =
  let m = Progress.create (Psl.until a b) in
  (match Progress.step m (name "a") with
  | Progress.Running _ -> ()
  | _ -> Alcotest.fail "expected Running");
  (match Progress.step m (name "b") with
  | Progress.Satisfied -> ()
  | _ -> Alcotest.fail "expected Satisfied");
  (* Verdicts are sticky. *)
  match Progress.step m (name "c") with
  | Progress.Satisfied -> ()
  | _ -> Alcotest.fail "still satisfied"

let test_violation_detected () =
  let m = Progress.run (Psl.always (Psl.not_ (Psl.and_ [ a ]))) [ name "b"; name "a" ] in
  Alcotest.(check bool) "falsified" false (Progress.weak_accept m)

let test_instrumentation () =
  let m = Progress.run (Psl.always (Psl.or_ [ a; b ])) [ name "a"; name "b" ] in
  Alcotest.(check bool) "steps counted" true (Progress.steps m > 0);
  Alcotest.(check bool) "peak >= initial" true
    (Progress.peak_size m >= Psl.size (Psl.always (Psl.or_ [ a; b ])))

(* Progression is sound on decided verdicts: a residual [True] means no
   continuation can violate (so in particular weak evaluation of the
   original formula over the consumed word holds), and a residual
   [False] means no continuation can satisfy (so in particular strong
   evaluation over the consumed word fails).  An undecided residual
   makes no claim — that impartiality is what distinguishes a monitor
   from an evaluator.

   The claims hold on the fragment where negation (explicit, or the
   left side of an implication) applies only to *present* formulas —
   boolean combinations of atoms, decided at the current instant.
   Negating a temporal formula flips the polarity of the "a next
   instant exists" assumption baked into [progress (Next f) = f] and is
   unsound on finite words; the Section-5 encodings are entirely inside
   the fragment. *)
let gen_present =
  let open QCheck2.Gen in
  sized_size (int_range 1 4) @@ fix (fun self n ->
      if n <= 1 then oneof [ return a; return b; return c; return Psl.True ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Psl.not_ sub;
            map2 (fun f g -> Psl.and_ [ f; g ]) sub sub;
            map2 (fun f g -> Psl.or_ [ f; g ]) sub sub;
          ])

let gen_formula =
  let open QCheck2.Gen in
  sized_size (int_range 1 10) @@ fix (fun self n ->
      if n <= 1 then gen_present
      else
        let sub = self (n / 2) in
        oneof
          [
            map2 (fun f g -> Psl.and_ [ f; g ]) sub sub;
            map2 (fun f g -> Psl.or_ [ f; g ]) sub sub;
            map2 Psl.implies gen_present sub;
            map Psl.next sub;
            map2 Psl.until sub sub;
            map2 Psl.release sub sub;
            map Psl.always sub;
            map Psl.eventually sub;
          ])

let gen_word =
  QCheck2.Gen.(list_size (int_range 0 8) (oneofl [ "a"; "b"; "c" ]))

let qcheck_progression_decisions_sound =
  qtest ~count:2000 "decided progression verdicts are sound"
    QCheck2.Gen.(
      let* f = gen_formula in
      let* word = gen_word in
      return (f, word))
    (fun (f, word) ->
      Printf.sprintf "%s on %s" (Psl.to_string f) (String.concat " " word))
    (fun (f, word) ->
      let letters = List.map name word in
      let m = Progress.run f letters in
      match Progress.verdict m with
      | Progress.Satisfied -> Psl.eval_weak f (Array.of_list letters)
      | Progress.Violated -> not (Psl.eval f (Array.of_list letters))
      | Progress.Running _ -> true)

let qcheck_decided_verdicts_are_stable =
  qtest ~count:800 "decided verdicts survive any continuation"
    QCheck2.Gen.(
      let* f = gen_formula in
      let* word = gen_word in
      let* extension = gen_word in
      return (f, word, extension))
    (fun (f, word, extension) ->
      Printf.sprintf "%s on %s / %s" (Psl.to_string f)
        (String.concat " " word)
        (String.concat " " extension))
    (fun (f, word, extension) ->
      let letters = List.map name word in
      let m = Progress.run f letters in
      match Progress.verdict m with
      | Progress.Running _ -> true
      | decided ->
          List.iter (fun l -> ignore (Progress.step m l))
            (List.map name extension);
          Progress.verdict m = decided)

(* On the Section-5 encodings, conclusive falsification by progression
   coincides with weak-evaluation rejection. *)
let qcheck_encoding_agreement =
  qtest ~count:400 "progression = weak evaluation on pattern encodings"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      let* word = gen_alpha_word p in
      return (p, word))
    (fun (p, word) ->
      Format.asprintf "%a on %s" Pattern.pp p
        (String.concat " " (List.map Name.to_string word)))
    (fun (p, word) ->
      let formula = Translate.to_psl p in
      let encoded = Translate.expand_trace p word in
      let progressive = Progress.weak_accept (Progress.run formula encoded) in
      let evaluated = Psl.eval_weak formula (Array.of_list encoded) in
      progressive = evaluated)

(* And transitively, progression agrees with the Drct monitors up to
   detection laziness (cf. test_translate). *)
let qcheck_progression_vs_monitor =
  qtest ~count:400 "progression vs Drct monitor (lazy vs eager)"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      let* word = gen_alpha_word p in
      return (p, word))
    (fun (p, word) ->
      Format.asprintf "%a on %s" Pattern.pp p
        (String.concat " " (List.map Name.to_string word)))
    (fun (p, word) ->
      let trace = Trace.of_names word in
      if Monitor.accepts p trace then Progress.monitor_pattern p word
      else
        let closure =
          match p with
          | Pattern.Antecedent a -> word @ [ a.trigger ]
          | Pattern.Timed _ -> word
        in
        (not (Progress.monitor_pattern p word))
        || not (Progress.monitor_pattern p closure))

let () =
  Alcotest.run "progress"
    [
      ( "rewriting",
        [
          Alcotest.test_case "atom" `Quick test_progress_atom;
          Alcotest.test_case "next" `Quick test_progress_next;
          Alcotest.test_case "until" `Quick test_progress_until_unfolds;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "verdicts" `Quick test_monitor_verdicts;
          Alcotest.test_case "violation" `Quick test_violation_detected;
          Alcotest.test_case "instrumentation" `Quick test_instrumentation;
        ] );
      ( "properties",
        [
          qcheck_progression_decisions_sound;
          qcheck_decided_verdicts_are_stable;
          qcheck_encoding_agreement;
          qcheck_progression_vs_monitor;
        ] );
    ]
