open Loseq_sim

let test_time_units () =
  Alcotest.(check int) "ns" 1_000 (Time.to_ps (Time.ns 1));
  Alcotest.(check int) "us" 1_000_000 (Time.to_ps (Time.us 1));
  Alcotest.(check int) "ms" 1_000_000_000 (Time.to_ps (Time.ms 1));
  Alcotest.(check int) "add" 1_500 (Time.to_ps (Time.add (Time.ns 1) (Time.ps 500)));
  Alcotest.(check int) "sub saturates" 0
    (Time.to_ps (Time.sub (Time.ns 1) (Time.ns 2)))

let test_time_rejects_negative () =
  match Time.ns (-5) with
  | (_ : Time.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_time_pp () =
  Alcotest.(check string) "ns" "90 ns" (Time.to_string (Time.ns 90));
  Alcotest.(check string) "ps" "1500 ps" (Time.to_string (Time.ps 1500));
  Alcotest.(check string) "zero" "0 s" (Time.to_string Time.zero)

let test_wait_for_ordering () =
  let k = Kernel.create () in
  let log = ref [] in
  let say s = log := s :: !log in
  Kernel.spawn k (fun () ->
      Kernel.wait_for k (Time.ns 20);
      say "late");
  Kernel.spawn k (fun () ->
      Kernel.wait_for k (Time.ns 10);
      say "early");
  Kernel.run k;
  Alcotest.(check (list string)) "order" [ "early"; "late" ] (List.rev !log);
  Alcotest.(check int) "final time" 20_000 (Time.to_ps (Kernel.now k))

let test_same_time_fifo () =
  let k = Kernel.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Kernel.spawn k (fun () ->
        Kernel.wait_for k (Time.ns 10);
        log := i :: !log)
  done;
  Kernel.run k;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_delta_notification () =
  let k = Kernel.create () in
  let ev = Kernel.event k in
  let got = ref false in
  Kernel.spawn k (fun () ->
      Kernel.wait ev;
      got := true);
  Kernel.spawn k (fun () -> Kernel.notify ev);
  Kernel.run k;
  Alcotest.(check bool) "woken in delta" true !got;
  Alcotest.(check int) "no time passed" 0 (Time.to_ps (Kernel.now k))

let test_notification_not_persistent () =
  let k = Kernel.create () in
  let ev = Kernel.event k in
  let got = ref false in
  (* Notify before anyone waits: lost, as in SystemC. *)
  Kernel.spawn k (fun () -> Kernel.notify ev);
  Kernel.spawn k (fun () ->
      Kernel.wait_for k (Time.ns 1);
      match Kernel.wait_timeout ev (Time.ns 5) with
      | `Event -> got := true
      | `Timeout -> ());
  Kernel.run k;
  Alcotest.(check bool) "notification lost" false !got

let test_notify_after () =
  let k = Kernel.create () in
  let ev = Kernel.event k in
  let woke_at = ref (-1) in
  Kernel.spawn k (fun () ->
      Kernel.wait ev;
      woke_at := Time.to_ps (Kernel.now k));
  Kernel.spawn k (fun () -> Kernel.notify_after ev (Time.ns 30));
  Kernel.run k;
  Alcotest.(check int) "woken at 30ns" 30_000 !woke_at

let test_wait_timeout_event_wins () =
  let k = Kernel.create () in
  let ev = Kernel.event k in
  let outcome = ref `Timeout in
  Kernel.spawn k (fun () -> outcome := Kernel.wait_timeout ev (Time.ns 100));
  Kernel.spawn k (fun () ->
      Kernel.wait_for k (Time.ns 10);
      Kernel.notify ev);
  Kernel.run k;
  Alcotest.(check bool) "event" true (!outcome = `Event);
  (* The pending timeout callback still drains but has no effect. *)
  Alcotest.(check bool) "time advanced to timeout" true
    (Time.to_ps (Kernel.now k) >= 100_000)

let test_wait_any () =
  let k = Kernel.create () in
  let e1 = Kernel.event ~name:"e1" k and e2 = Kernel.event ~name:"e2" k in
  let winner = ref "" in
  Kernel.spawn k (fun () ->
      let ev = Kernel.wait_any [ e1; e2 ] in
      winner := Kernel.event_name ev);
  Kernel.spawn k (fun () ->
      Kernel.wait_for k (Time.ns 5);
      Kernel.notify e2);
  Kernel.run k;
  Alcotest.(check string) "e2 won" "e2" !winner

let test_schedule_and_cancel () =
  let k = Kernel.create () in
  let fired = ref [] in
  let (_ : Kernel.handle) =
    Kernel.schedule k ~after:(Time.ns 10) (fun () -> fired := 1 :: !fired)
  in
  let h2 =
    Kernel.schedule k ~after:(Time.ns 20) (fun () -> fired := 2 :: !fired)
  in
  Kernel.cancel h2;
  Kernel.run k;
  Alcotest.(check (list int)) "only first" [ 1 ] !fired

let test_schedule_at_past_raises () =
  let k = Kernel.create () in
  Kernel.spawn k (fun () ->
      Kernel.wait_for k (Time.ns 100);
      match Kernel.schedule_at k ~at:(Time.ns 50) ignore with
      | (_ : Kernel.handle) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
  Kernel.run k

let test_run_until_clamps () =
  let k = Kernel.create () in
  let fired = ref false in
  let (_ : Kernel.handle) =
    Kernel.schedule k ~after:(Time.us 100) (fun () -> fired := true)
  in
  Kernel.run ~until:(Time.us 10) k;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "clock at horizon" 10_000_000 (Time.to_ps (Kernel.now k));
  Alcotest.(check bool) "still pending" true (Kernel.pending k)

let test_wait_loose_bounds_and_determinism () =
  let sample seed =
    let k = Kernel.create ~seed () in
    let out = ref 0 in
    Kernel.spawn k (fun () ->
        Kernel.wait_loose k (Time.ns 90) (Time.ns 110);
        out := Time.to_ps (Kernel.now k));
    Kernel.run k;
    !out
  in
  let x = sample 11 and y = sample 11 and z = sample 12 in
  Alcotest.(check int) "deterministic" x y;
  Alcotest.(check bool) "in bounds" true (x >= 90_000 && x <= 110_000);
  Alcotest.(check bool) "seeds differ (very likely)" true (x <> z || x >= 90_000)

let test_signal_wait_until () =
  let k = Kernel.create () in
  let s = Signal.create k 0 in
  let seen = ref (-1) in
  Kernel.spawn k (fun () -> seen := Signal.wait_until s (fun v -> v > 2));
  Kernel.spawn k (fun () ->
      for i = 1 to 5 do
        Kernel.wait_for k (Time.ns 1);
        Signal.write s i
      done);
  Kernel.run k;
  Alcotest.(check int) "first satisfying" 3 !seen

let test_signal_no_event_on_same_value () =
  let k = Kernel.create () in
  let s = Signal.create k 7 in
  let changes = ref 0 in
  Signal.on_change s (fun _ -> incr changes);
  Signal.write s 7;
  Signal.write s 8;
  Signal.write s 8;
  Alcotest.(check int) "one effective change" 1 !changes

let test_fifo_blocking () =
  let k = Kernel.create () in
  let f = Fifo.create ~capacity:2 k () in
  let produced = ref 0 and consumed = ref [] in
  Kernel.spawn k (fun () ->
      for i = 1 to 6 do
        Fifo.put f i;
        produced := i
      done);
  Kernel.spawn k (fun () ->
      for _ = 1 to 6 do
        Kernel.wait_for k (Time.ns 10);
        consumed := Fifo.get f :: !consumed
      done);
  Kernel.run k;
  Alcotest.(check int) "all produced" 6 !produced;
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4; 5; 6 ]
    (List.rev !consumed)

let test_fifo_try_ops () =
  let k = Kernel.create () in
  let f = Fifo.create ~capacity:1 k () in
  Alcotest.(check bool) "put ok" true (Fifo.try_put f 1);
  Alcotest.(check bool) "full" false (Fifo.try_put f 2);
  Alcotest.(check (option int)) "get" (Some 1) (Fifo.try_get f);
  Alcotest.(check (option int)) "empty" None (Fifo.try_get f)

let test_fifo_rejects_bad_capacity () =
  let k = Kernel.create () in
  match Fifo.create ~capacity:0 k () with
  | (_ : int Fifo.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_nested_spawn () =
  let k = Kernel.create () in
  let log = ref [] in
  Kernel.spawn k (fun () ->
      log := "outer" :: !log;
      Kernel.spawn k (fun () ->
          Kernel.wait_for k (Time.ns 5);
          log := "inner" :: !log);
      Kernel.wait_for k (Time.ns 10);
      log := "outer done" :: !log);
  Kernel.run k;
  Alcotest.(check (list string)) "sequence"
    [ "outer"; "inner"; "outer done" ]
    (List.rev !log)

let test_stop_requests_termination () =
  let k = Kernel.create () in
  let after_stop = ref false in
  Kernel.spawn k (fun () ->
      Kernel.wait_for k (Time.ns 10);
      Kernel.stop k;
      Kernel.wait_for k (Time.ns 10);
      after_stop := true);
  Kernel.run k;
  Alcotest.(check bool) "stopped flag" true (Kernel.stopped k);
  Alcotest.(check bool) "process frozen at stop" false !after_stop;
  Alcotest.(check bool) "activity pending" true (Kernel.pending k);
  Alcotest.(check int) "time frozen" 10_000 (Time.to_ps (Kernel.now k));
  (* A later run resumes where the simulation left off. *)
  Kernel.run k;
  Alcotest.(check bool) "resumed" true !after_stop;
  Alcotest.(check bool) "flag cleared" false (Kernel.stopped k)

let test_stats () =
  let k = Kernel.create () in
  let ev = Kernel.event k in
  Kernel.spawn k (fun () -> Kernel.wait ev);
  Kernel.spawn k (fun () -> Kernel.notify ev);
  Kernel.run k;
  let spawned, delivered = Kernel.stats k in
  Alcotest.(check int) "spawned" 2 spawned;
  Alcotest.(check int) "delivered" 1 delivered

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "negative" `Quick test_time_rejects_negative;
          Alcotest.test_case "pp" `Quick test_time_pp;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "wait ordering" `Quick test_wait_for_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "delta notify" `Quick test_delta_notification;
          Alcotest.test_case "notify not persistent" `Quick
            test_notification_not_persistent;
          Alcotest.test_case "notify after" `Quick test_notify_after;
          Alcotest.test_case "wait timeout" `Quick
            test_wait_timeout_event_wins;
          Alcotest.test_case "wait any" `Quick test_wait_any;
          Alcotest.test_case "schedule/cancel" `Quick test_schedule_and_cancel;
          Alcotest.test_case "schedule_at past" `Quick
            test_schedule_at_past_raises;
          Alcotest.test_case "run until" `Quick test_run_until_clamps;
          Alcotest.test_case "loose timing" `Quick
            test_wait_loose_bounds_and_determinism;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "stop/resume" `Quick
            test_stop_requests_termination;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "channels",
        [
          Alcotest.test_case "signal wait_until" `Quick test_signal_wait_until;
          Alcotest.test_case "signal change detection" `Quick
            test_signal_no_event_on_same_value;
          Alcotest.test_case "fifo blocking" `Quick test_fifo_blocking;
          Alcotest.test_case "fifo try ops" `Quick test_fifo_try_ops;
          Alcotest.test_case "fifo capacity" `Quick
            test_fifo_rejects_bad_capacity;
        ] );
    ]
