open Loseq_core
open Loseq_testutil

let codes p = List.map (fun f -> f.Finding.code) (Lint.lint p)
let has p code = List.mem code (codes p)

let severity_of p code =
  List.find_map
    (fun f -> if f.Finding.code = code then Some f.Finding.severity else None)
    (Lint.lint p)

let test_clean_pattern () =
  (* The case-study property only gets the informational notes. *)
  let p = pat "{set_imgAddr, set_glAddr, set_glSize} <<! start" in
  Alcotest.(check bool) "no warnings" true
    (List.for_all (fun f -> f.Finding.severity = Finding.Info) (Lint.lint p))

let test_singleton_disjunction () =
  (* Constructed via the API: the printer normalizes singleton fragments
     so the concrete syntax cannot express this case. *)
  let p =
    Pattern.antecedent
      [ Pattern.fragment ~connective:Pattern.Any [ Pattern.range (name "a") ] ]
      ~trigger:(name "go")
  in
  Alcotest.(check bool) "flagged" true (has p "singleton-disjunction")

let test_zero_deadline () =
  Alcotest.(check bool) "flagged" true
    (has (pat "a => b within 0") "zero-deadline");
  Alcotest.(check bool) "not flagged" false
    (has (pat "a => b within 5") "zero-deadline")

let test_tight_deadline () =
  (* Conclusion needs >= 3 events but only 1 time unit is allowed. *)
  Alcotest.(check bool) "flagged" true
    (has (pat "a => b[2,4] < c within 1") "tight-deadline");
  Alcotest.(check bool) "roomy ok" false
    (has (pat "a => b[2,4] < c within 100") "tight-deadline")

let test_wide_range () =
  let p = pat "n[100,60000] <<! i" in
  Alcotest.(check bool) "flagged" true (has p "wide-range");
  Alcotest.(check bool) "is warning" true
    (severity_of p "wide-range" = Some Finding.Warning);
  Alcotest.(check bool) "narrow ok" false (has (pat "n[1,8] <<! i") "wide-range")

let test_huge_counter () =
  Alcotest.(check bool) "flagged" true
    (has (pat "n[1,200000] <<! i") "huge-counter")

let test_unbounded_trigger () =
  Alcotest.(check bool) "non-repeated flagged" true
    (has (pat "a << i") "unbounded-trigger");
  Alcotest.(check bool) "repeated clean" false
    (has (pat "a <<! i") "unbounded-trigger")

let test_state_space_estimate () =
  Alcotest.(check bool) "big product flagged" true
    (has (pat "a[1,50] < b[1,50] <<! i") "state-space")

let test_warnings_sorted_first () =
  let findings = Lint.lint (pat "n[100,60000] << i") in
  let rec no_warning_after_info seen_info = function
    | [] -> true
    | f :: rest ->
        (match f.Finding.severity with
        | Finding.Error | Finding.Warning -> not seen_info
        | Finding.Info -> true)
        && no_warning_after_info
             (seen_info || f.Finding.severity = Finding.Info)
             rest
  in
  Alcotest.(check bool) "sorted" true (no_warning_after_info false findings)

let test_rejects_ill_formed () =
  let bad = Pattern.antecedent [ Pattern.single (name "i") ] ~trigger:(name "i") in
  match Lint.lint bad with
  | (_ : Finding.t list) -> Alcotest.fail "expected Ill_formed"
  | exception Wellformed.Ill_formed _ -> ()

let qcheck_lint_never_crashes =
  qtest ~count:500 "lint is total on well-formed patterns" gen_pattern
    (fun p -> Pattern.to_string p)
    (fun p ->
      let findings = Lint.lint p in
      List.for_all (fun f -> String.length f.Finding.message > 0) findings)

let () =
  Alcotest.run "lint"
    [
      ( "checks",
        [
          Alcotest.test_case "clean pattern" `Quick test_clean_pattern;
          Alcotest.test_case "singleton disjunction" `Quick
            test_singleton_disjunction;
          Alcotest.test_case "zero deadline" `Quick test_zero_deadline;
          Alcotest.test_case "tight deadline" `Quick test_tight_deadline;
          Alcotest.test_case "wide range" `Quick test_wide_range;
          Alcotest.test_case "huge counter" `Quick test_huge_counter;
          Alcotest.test_case "unbounded trigger" `Quick
            test_unbounded_trigger;
          Alcotest.test_case "state space" `Quick test_state_space_estimate;
          Alcotest.test_case "ordering" `Quick test_warnings_sorted_first;
          Alcotest.test_case "ill-formed" `Quick test_rejects_ill_formed;
          qcheck_lint_never_crashes;
        ] );
    ]
