(* The Drct cost model must reproduce the paper's Fig. 6 column exactly,
   and the measured instrumentation must follow the published
   Θ-behaviour. *)

open Loseq_core
open Loseq_testutil

(* The six configurations of Fig. 6 with the paper's Drct numbers. *)
let fig6 =
  [
    ("n <<! i", 80, 192);
    ("n[100,60000] <<! i", 80, 192);
    ("{n1, n2, n3, n4} << i", 230, 1132);
    ("{n1, n2, n3, n4, n5} << i", 280, 1568);
    ("n1 => n2 < n3 < n4 within 1000", 296, 1051);
    ("n1 => n2[100,60000] < n3 < n4 within 1000", 296, 1051);
  ]

let test_fig6_exact () =
  List.iter
    (fun (src, ops, bits) ->
      let c = Cost.drct (pat src) in
      Alcotest.(check int) (src ^ " ops") ops c.Cost.ops_per_event;
      Alcotest.(check int) (src ^ " bits") bits c.Cost.space_bits)
    fig6

let test_range_width_irrelevant () =
  (* "The presence of non-trivial ranges has no effect on the
     complexities of our Drct monitors." *)
  let base = Cost.drct (pat "a << i") in
  let wide = Cost.drct (pat "a[100,60000] << i") in
  Alcotest.(check int) "ops" base.Cost.ops_per_event wide.Cost.ops_per_event;
  Alcotest.(check int) "bits" base.Cost.space_bits wide.Cost.space_bits

let test_theta_time () =
  Alcotest.(check int) "max width" 5
    (Cost.time_theta (pat "{a, b, c, d, e} < f << i"));
  Alcotest.(check int) "chain" 1 (Cost.time_theta (pat "a < b < c << i"))

let test_theta_space () =
  Alcotest.(check int) "sum" 6
    (Cost.space_theta (pat "{a, b, c, d, e} < f << i"))

let test_max_counter () =
  Alcotest.(check int) "max v" 60000
    (Cost.max_counter (pat "a[100,60000] < b << i"))

let test_measured_follows_theta_time () =
  (* Measured ops/event on the wide fragment exceed the narrow chain,
     even though both have 5 names total. *)
  let measure src trace = (Cost.measured (pat src) trace).Cost.ops_per_event in
  let wide = measure "{a, b, c, d, e} << i" (tr [ "a"; "b"; "c" ]) in
  let chain = measure "a < b < c < d < e << i" (tr [ "a"; "b"; "c" ]) in
  Alcotest.(check bool) "wide > chain" true (wide > chain)

let test_measured_space_range_independent () =
  let bits src = (Cost.measured (pat src) (tr [ "a" ])).Cost.space_bits in
  (* Counters are fixed-width in the paper's measurement; ours grow by a
     few bits for the 60000 bound but stay within the same order. *)
  let narrow = bits "a << i" and wide = bits "a[100,60000] << i" in
  Alcotest.(check bool) "same magnitude" true
    (wide < narrow + 32 && wide >= narrow)

let qcheck_ops_model_is_affine_in_names =
  qtest ~count:300 "analytic ops = 30 + 50*names (+66 timed)" gen_pattern
    (fun p -> Pattern.to_string p)
    (fun p ->
      let c = Cost.drct p in
      let timed =
        match p with Pattern.Timed _ -> 66 | Pattern.Antecedent _ -> 0
      in
      c.Cost.ops_per_event = 30 + (50 * Pattern.name_count p) + timed)

let qcheck_measured_ops_independent_of_bounds =
  qtest ~count:200 "measured ops do not depend on range widths"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      return p)
    (fun p -> Pattern.to_string p)
    (fun p ->
      (* Widen every range: per-event measured ops on the same accepted
         prefix must not change. *)
      let widen (f : Pattern.fragment) =
        Pattern.fragment ~connective:f.connective
          (List.map
             (fun (r : Pattern.range) ->
               Pattern.range ~lo:r.lo ~hi:(r.hi + 1000) r.name)
             f.ranges)
      in
      match p with
      | Pattern.Antecedent a ->
          let p' =
            Pattern.antecedent ~repeated:a.repeated (List.map widen a.body)
              ~trigger:a.trigger
          in
          let rng = Random.State.make [| 42 |] in
          let trace = Generate.valid ~rounds:1 ~max_run:0 rng p in
          let ops p = (Cost.measured p trace).Cost.ops_per_event in
          ops p = ops p'
      | Pattern.Timed _ -> true)

let () =
  Alcotest.run "cost"
    [
      ( "figure 6",
        [
          Alcotest.test_case "exact Drct column" `Quick test_fig6_exact;
          Alcotest.test_case "range width irrelevant" `Quick
            test_range_width_irrelevant;
        ] );
      ( "theta",
        [
          Alcotest.test_case "time" `Quick test_theta_time;
          Alcotest.test_case "space" `Quick test_theta_space;
          Alcotest.test_case "max counter" `Quick test_max_counter;
        ] );
      ( "measured",
        [
          Alcotest.test_case "follows theta time" `Quick
            test_measured_follows_theta_time;
          Alcotest.test_case "space range independent" `Quick
            test_measured_space_range_independent;
          qcheck_ops_model_is_affine_in_names;
          qcheck_measured_ops_independent_of_bounds;
        ] );
    ]
