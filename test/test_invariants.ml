(* Cross-cutting invariants and small-surface modules: names,
   diagnostics rendering, and internal monitor invariants that no single
   unit suite owns. *)

open Loseq_core
open Loseq_testutil

(* ---- Name ------------------------------------------------------------- *)

let test_name_accepts_identifiers () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Name.to_string (Name.v s)))
    [ "a"; "set_imgAddr"; "n1"; "a.b-c"; "X" ]

let test_name_rejects_bad () =
  List.iter
    (fun s ->
      match Name.v s with
      | (_ : Name.t) -> Alcotest.failf "accepted %S" s
      | exception Invalid_argument _ -> ())
    [ ""; "a b"; "a$b"; "café"; "x\n" ]

let test_name_set_helpers () =
  let set = Name.set_of_list [ Name.v "b"; Name.v "a"; Name.v "b" ] in
  Alcotest.(check int) "dedup" 2 (Name.Set.cardinal set);
  Alcotest.(check string) "pp" "{a, b}"
    (Format.asprintf "%a" Name.pp_set set)

(* ---- Diag rendering ---------------------------------------------------- *)

let test_violation_rendering () =
  let m = Monitor.create (pat "a[1,2] << i") in
  ignore (Monitor.step m (Trace.event ~time:7 (name "a")));
  ignore (Monitor.step m (Trace.event ~time:8 (name "a")));
  ignore (Monitor.step m (Trace.event ~time:9 (name "a")));
  match Monitor.verdict m with
  | Monitor.Violated v ->
      let text = Diag.violation_to_string v in
      List.iter
        (fun fragment ->
          Alcotest.(check bool) fragment true
            (let nh = String.length text and nn = String.length fragment in
             let rec loop i =
               if i + nn > nh then false
               else if String.sub text i nn = fragment then true
               else loop (i + 1)
             in
             loop 0))
        [ "t=9"; "a"; "event #2"; "2 occurrence" ]
  | _ -> Alcotest.fail "expected violation"

let test_all_reasons_render () =
  (* Every constructor has a human-readable, non-empty rendering. *)
  let r = Pattern.range ~lo:2 ~hi:4 (name "x") in
  let reasons =
    [
      Diag.Before_name; Diag.After_name; Diag.Overflow r; Diag.Underflow r;
      Diag.Reentered r; Diag.Missing r; Diag.Empty_fragment;
      Diag.Trigger_early;
      Diag.Deadline_miss { started = 1; deadline = 5; now = 9 };
      Diag.Late_conclusion { deadline = 5; at = 9 };
      Diag.Foreign (name "z");
    ]
  in
  List.iter
    (fun reason ->
      let text = Format.asprintf "%a" Diag.pp_reason reason in
      Alcotest.(check bool) "non-empty" true (String.length text > 3))
    reasons

(* ---- Engine invariant: at most one recognizer counts at a time -------- *)

let counting_recognizers states =
  List.fold_left
    (fun acc frag ->
      acc
      + List.length
          (List.filter
             (function Recognizer.Counting _ -> true | _ -> false)
             frag))
    0 states

let qcheck_single_counter_invariant =
  qtest ~count:600 "at most one recognizer counts per instant"
    gen_pattern_and_trace print_pattern_and_trace
    (fun (p, trace) ->
      if not (Trace.is_chronological trace) then true
      else begin
        let m = Monitor.create p in
        List.for_all
          (fun e ->
            ignore (Monitor.step m e);
            counting_recognizers (Monitor.fragment_states m) <= 1)
          trace
      end)

(* ---- Monitor ops are deterministic ------------------------------------ *)

let qcheck_ops_deterministic =
  qtest ~count:300 "instrumented op counts are reproducible"
    gen_pattern_and_trace print_pattern_and_trace
    (fun (p, trace) ->
      if not (Trace.is_chronological trace) then true
      else
        let measure () =
          let ops = ref 0 in
          let m = Monitor.create ~ops p in
          List.iter (fun e -> ignore (Monitor.step m e)) trace;
          !ops
        in
        measure () = measure ())

(* ---- Verdict monotonicity --------------------------------------------- *)

let qcheck_verdict_sticky =
  qtest ~count:400 "verdicts never change once decided"
    QCheck2.Gen.(
      let* p, trace = gen_pattern_and_trace in
      let* extra = gen_trace_for p in
      return (p, trace, extra))
    (fun (p, trace, extra) ->
      print_pattern_and_trace (p, trace @ extra))
    (fun (p, trace, extra) ->
      if not (Trace.is_chronological trace) then true
      else begin
        let m = Monitor.create p in
        List.iter (fun e -> ignore (Monitor.step m e)) trace;
        match Monitor.verdict m with
        | Monitor.Running -> true
        | decided ->
            List.iter (fun e -> ignore (Monitor.step m e)) extra;
            Monitor.verdict m = decided
      end)

let () =
  Alcotest.run "invariants"
    [
      ( "names",
        [
          Alcotest.test_case "accepts" `Quick test_name_accepts_identifiers;
          Alcotest.test_case "rejects" `Quick test_name_rejects_bad;
          Alcotest.test_case "sets" `Quick test_name_set_helpers;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "violation text" `Quick test_violation_rendering;
          Alcotest.test_case "all reasons render" `Quick
            test_all_reasons_render;
        ] );
      ( "monitor invariants",
        [
          qcheck_single_counter_invariant;
          qcheck_ops_deterministic;
          qcheck_verdict_sticky;
        ] );
    ]
