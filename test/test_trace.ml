open Loseq_core
open Loseq_testutil

let n = name

let event_testable =
  Alcotest.testable Trace.pp_event (fun (a : Trace.event) b ->
      Name.equal a.name b.name && a.time = b.time)

let test_of_names_timestamps () =
  let t = Trace.of_strings [ "a"; "b"; "c" ] in
  Alcotest.(check (list int)) "times" [ 0; 1; 2 ]
    (List.map (fun (e : Trace.event) -> e.Trace.time) t)

let test_end_time () =
  Alcotest.(check int) "empty" 0 (Trace.end_time []);
  Alcotest.(check int) "last" 42
    (Trace.end_time [ Trace.event ~time:7 (n "a"); Trace.event ~time:42 (n "b") ])

let test_chronological () =
  Alcotest.(check bool) "ordered" true
    (Trace.is_chronological
       [ Trace.event ~time:1 (n "a"); Trace.event ~time:1 (n "b") ]);
  Alcotest.(check bool) "unordered" false
    (Trace.is_chronological
       [ Trace.event ~time:2 (n "a"); Trace.event ~time:1 (n "b") ])

let test_restrict () =
  let t = Trace.of_strings [ "a"; "x"; "b"; "y"; "a" ] in
  let r = Trace.restrict (Name.set_of_list [ n "a"; n "b" ]) t in
  Alcotest.(check (list string)) "kept" [ "a"; "b"; "a" ]
    (List.map Name.to_string (Trace.names r))

let test_append_shifts () =
  let a = Trace.of_strings [ "x"; "y" ] in
  let b = Trace.of_strings [ "z" ] in
  let c = Trace.append a b in
  Alcotest.(check bool) "chronological" true (Trace.is_chronological c);
  Alcotest.(check int) "length" 3 (Trace.length c);
  Alcotest.(check int) "shifted" 2 (Trace.end_time c)

let test_parse_bare_names () =
  match Trace.parse "a b  c" with
  | Ok t ->
      Alcotest.(check (list int)) "times" [ 0; 1; 2 ]
        (List.map (fun (e : Trace.event) -> e.Trace.time) t)
  | Error e -> Alcotest.fail e

let test_parse_timed () =
  match Trace.parse "a@5 b@5 c@9" with
  | Ok t ->
      Alcotest.(check (list int)) "times" [ 5; 5; 9 ]
        (List.map (fun (e : Trace.event) -> e.Trace.time) t)
  | Error e -> Alcotest.fail e

let test_parse_mixed () =
  match Trace.parse "a@10 b c@20" with
  | Ok t ->
      Alcotest.(check (list int)) "times" [ 10; 11; 20 ]
        (List.map (fun (e : Trace.event) -> e.Trace.time) t)
  | Error e -> Alcotest.fail e

let test_parse_rejects_backwards () =
  match Trace.parse "a@10 b@5" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_parse_rejects_bad_name () =
  match Trace.parse "a$b" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_parse_rejects_bad_time () =
  match Trace.parse "a@xx" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_parse_pp_roundtrip () =
  let t =
    [ Trace.event ~time:3 (n "a"); Trace.event ~time:7 (n "b");
      Trace.event ~time:7 (n "c") ]
  in
  match Trace.parse (Trace.to_string t) with
  | Ok t' -> Alcotest.(check (list event_testable)) "roundtrip" t t'
  | Error e -> Alcotest.fail e

let qcheck_valid_traces_chronological =
  qtest ~count:300 "generated valid traces are chronological"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* seed = int_bound 100000 in
      return (p, seed))
    (fun (p, seed) -> Printf.sprintf "%s / %d" (Pattern.to_string p) seed)
    (fun (p, seed) ->
      let rng = Random.State.make [| seed |] in
      Trace.is_chronological (Generate.valid rng p))

let () =
  Alcotest.run "trace"
    [
      ( "construction",
        [
          Alcotest.test_case "of_names" `Quick test_of_names_timestamps;
          Alcotest.test_case "end_time" `Quick test_end_time;
          Alcotest.test_case "chronological" `Quick test_chronological;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "append" `Quick test_append_shifts;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "bare names" `Quick test_parse_bare_names;
          Alcotest.test_case "timed" `Quick test_parse_timed;
          Alcotest.test_case "mixed" `Quick test_parse_mixed;
          Alcotest.test_case "rejects backwards" `Quick
            test_parse_rejects_backwards;
          Alcotest.test_case "rejects bad name" `Quick
            test_parse_rejects_bad_name;
          Alcotest.test_case "rejects bad time" `Quick
            test_parse_rejects_bad_time;
          Alcotest.test_case "pp round trip" `Quick test_parse_pp_roundtrip;
          qcheck_valid_traces_chronological;
        ] );
    ]
