(* Cross-validation of the production recognizer against the
   Lustre-style synchronous reference — the paper's own validation
   methodology. *)

open Loseq_core
open Loseq_sync
open Loseq_testutil

let test_stream_fby () =
  let node = Stream.fby 0 in
  Alcotest.(check (list int)) "delays" [ 0; 1; 2 ]
    (Stream.run node [ 1; 2; 3 ]);
  Stream.reset node;
  Alcotest.(check (list int)) "reset" [ 0; 9 ] (Stream.run node [ 9; 9 ])

let test_stream_compose () =
  let double = Stream.create ~init:() ~step:(fun () x -> ((), x * 2)) in
  let inc = Stream.create ~init:() ~step:(fun () x -> ((), x + 1)) in
  let node = Stream.compose double inc in
  Alcotest.(check (list int)) "2x+1" [ 3; 5 ] (Stream.run node [ 1; 2 ])

let test_stream_parallel () =
  let idn = Stream.create ~init:() ~step:(fun () x -> ((), x)) in
  let neg = Stream.create ~init:() ~step:(fun () x -> ((), -x)) in
  let node = Stream.parallel idn neg in
  Alcotest.(check (list (pair int int))) "pairs" [ (1, -1); (2, -2) ]
    (Stream.run node [ 1; 2 ])

let test_reference_counts () =
  let node = Range_node.node ~u:2 ~v:3 ~disjunctive:false in
  let w cat = Harness.wires_of_category ~start:false (Some cat) in
  let start = Harness.wires_of_category ~start:true None in
  let outs =
    Stream.run node
      [ start; w Context.Self; w Context.Self; w Context.Accept ]
  in
  match List.rev outs with
  | last :: _ -> Alcotest.(check bool) "ok" true last.Range_node.ok
  | [] -> Alcotest.fail "no outputs"

let test_reference_error_on_overflow () =
  let node = Range_node.node ~u:1 ~v:2 ~disjunctive:false in
  let w cat = Harness.wires_of_category ~start:false (Some cat) in
  let start = Harness.wires_of_category ~start:true None in
  let outs =
    Stream.run node [ start; w Context.Self; w Context.Self; w Context.Self ]
  in
  match List.rev outs with
  | last :: _ -> Alcotest.(check bool) "err" true last.Range_node.err
  | [] -> Alcotest.fail "no outputs"

let test_transition_error_absorbing () =
  let s', out =
    Range_node.transition ~u:1 ~v:1 ~disjunctive:false Range_node.S5
      { Range_node.quiet with n = true }
  in
  Alcotest.(check bool) "stays S5" true (s' = Range_node.S5);
  Alcotest.(check bool) "silent" false out.Range_node.err

let directed_sequences =
  let open Context in
  [
    [ Self; Accept ];
    [ Self; Self; Accept ];
    [ Self; Self; Self; Self ];
    [ Current; Self; Accept ];
    [ Current; Current; Accept ];
    [ Accept ];
    [ Before ];
    [ After ];
    [ Self; Current; Accept ];
    [ Self; Current; Self ];
    [ Self; Before ];
    [ Self; Current; Current; Accept ];
    [ Outside; Self; Outside; Accept ];
    [ Self; Self; Current; Accept ];
  ]

let test_agreement_directed () =
  List.iter
    (fun (u, v) ->
      List.iter
        (fun disjunctive ->
          List.iteri
            (fun idx seq ->
              match Harness.agree ~u ~v ~disjunctive seq with
              | Ok _ -> ()
              | Error msg ->
                  Alcotest.failf "u=%d v=%d disj=%b seq#%d: %s" u v
                    disjunctive idx msg)
            directed_sequences)
        [ false; true ])
    [ (1, 1); (1, 2); (2, 2); (2, 4) ]

let gen_case =
  QCheck2.Gen.(
    let* u = int_range 1 3 in
    let* extra = int_range 0 3 in
    let* disjunctive = bool in
    let* seq =
      list_size (int_range 0 12)
        (oneofl
           Context.[ Self; Current; Before; Accept; After; Outside ])
    in
    return (u, u + extra, disjunctive, seq))

let qcheck_agreement =
  qtest ~count:3000 "recognizer = synchronous reference" gen_case
    (fun (u, v, disjunctive, seq) ->
      Format.asprintf "u=%d v=%d disj=%b: %a" u v disjunctive
        (Format.pp_print_list Context.pp_category)
        seq)
    (fun (u, v, disjunctive, seq) ->
      match Harness.agree ~u ~v ~disjunctive seq with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "sync"
    [
      ( "stream combinators",
        [
          Alcotest.test_case "fby" `Quick test_stream_fby;
          Alcotest.test_case "compose" `Quick test_stream_compose;
          Alcotest.test_case "parallel" `Quick test_stream_parallel;
        ] );
      ( "reference node",
        [
          Alcotest.test_case "counting" `Quick test_reference_counts;
          Alcotest.test_case "overflow" `Quick
            test_reference_error_on_overflow;
          Alcotest.test_case "absorbing error" `Quick
            test_transition_error_absorbing;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "directed" `Quick test_agreement_directed;
          qcheck_agreement;
        ] );
    ]
