open Loseq_core
open Loseq_psl
open Loseq_testutil

let test_expansion_width () =
  Alcotest.(check int) "[1,1]" 1
    (Translate.expansion_width (Pattern.range (name "n")));
  Alcotest.(check int) "[100,60000]" 59901
    (Translate.expansion_width (Pattern.range ~lo:100 ~hi:60000 (name "n")))

let test_needs_expansion () =
  Alcotest.(check bool) "[1,1] no" false
    (Translate.needs_expansion (Pattern.range (name "n")));
  Alcotest.(check bool) "[2,2] yes" true
    (Translate.needs_expansion (Pattern.range ~lo:2 ~hi:2 (name "n")))

let test_expanded_names () =
  let names =
    Translate.expanded_names (Pattern.range ~lo:2 ~hi:4 (name "n"))
  in
  Alcotest.(check (list string)) "n.2 .. n.4" [ "n.2"; "n.3"; "n.4" ]
    (List.map Name.to_string names)

let test_expanded_names_too_wide () =
  match Translate.expanded_names (Pattern.range ~lo:1 ~hi:200_001 (name "n")) with
  | (_ : Name.t list) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_expand_trace () =
  let p = pat "a[2,3] < b <<! i" in
  let expanded names = List.map Name.to_string (Translate.expand_trace p (List.map name names)) in
  Alcotest.(check (list string)) "collapses runs" [ "a.2"; "b"; "i" ]
    (expanded [ "a"; "a"; "b"; "i" ]);
  Alcotest.(check (list string)) "out of bounds -> a.0" [ "a.0"; "b"; "i" ]
    (expanded [ "a"; "a"; "a"; "a"; "b"; "i" ]);
  Alcotest.(check (list string)) "plain names pass through" [ "b"; "b" ]
    (expanded [ "b"; "b" ]);
  Alcotest.(check (list string)) "foreign passes" [ "zzz" ] (expanded [ "zzz" ])

let test_to_psl_width_guard () =
  let p = pat "a[100,60000] << i" in
  match Translate.to_psl p with
  | (_ : Psl.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_to_psl_alphabet () =
  let p = pat "a[1,2] < b <<! i" in
  let f = Translate.to_psl p in
  let atoms = Psl.atoms f in
  List.iter
    (fun nm ->
      Alcotest.(check bool) (nm ^ " present") true
        (Name.Set.mem (name nm) atoms))
    [ "a.1"; "a.2"; "a.0"; "b"; "i" ]

let test_formula_size_matches_construction () =
  List.iter
    (fun src ->
      let p = pat src in
      Alcotest.(check int) src
        (Psl.size (Translate.to_psl p))
        (Translate.formula_size p))
    [
      "n << i";
      "n <<! i";
      "n[1,4] << i";
      "n[3,3] <<! i";
      "{a, b} << i";
      "{a | b} <<! i";
      "{a, b[2,3]} < {c | d} < e <<! i";
      "a => b within 7";
      "a => b < c within 7";
      "{a, b} => {c[2,4] | d} within 9";
      "a[1,2] => b[2,3] < c within 11";
    ]

let test_delta_cost () =
  Alcotest.(check int) "trivial ranges" 0 (Translate.delta_cost (pat "n << i"));
  Alcotest.(check int) "wide range" 59901
    (Translate.delta_cost (pat "n[100,60000] << i"))

let test_via_psl_calibration_row1 () =
  let c = Cost.via_psl (pat "n <<! i") in
  Alcotest.(check int) "ops" 238 c.Cost.ops_per_event;
  Alcotest.(check int) "bits" 896 c.Cost.space_bits;
  Alcotest.(check int) "delta" 0 c.Cost.delta

let test_via_psl_explodes_on_ranges () =
  (* The paper's headline: ~4x10^11 ops / ~2x10^12 bits for the
     non-trivial range, vs 80 ops / 192 bits for Drct. *)
  let c = Cost.via_psl (pat "n[100,60000] <<! i") in
  Alcotest.(check bool) "ops ~ 1e11" true
    (c.Cost.ops_per_event > 100_000_000_000);
  Alcotest.(check bool) "bits ~ 1e12" true
    (c.Cost.space_bits > 1_000_000_000_000);
  Alcotest.(check int) "delta = expanded alphabet" 59901 c.Cost.delta

let test_theta_time () =
  (* Sum of squared widths + products of consecutive fragment widths. *)
  let p = pat "a[1,3] < {b, c} << i" in
  (* widths: 3 (expanded a) then 2; squares: 9 + 1 + 1; order: 3*2. *)
  Alcotest.(check int) "theta" 17 (Loseq_psl.Cost.theta_time p)

(* The crucial validation (the paper used SPOT for this).  The two
   verdicts are compared up to detection laziness: the pattern
   semantics rejects a prefix as soon as it can no longer be extended
   into a correct behaviour, while the PSL safety clauses may only
   falsify at the next reset point (the trigger).  Hence:
   - an accepted prefix must satisfy the encoding, and
   - a rejected prefix must falsify the encoding either immediately or
     once closed by one trigger occurrence. *)
let equivalent p names =
  let eval ns =
    let expanded = Translate.expand_trace p ns in
    Psl.eval_weak (Translate.to_psl p) (Array.of_list expanded)
  in
  let trace = Trace.of_names names in
  if Semantics.holds p trace then eval names
  else
    let closure =
      match p with
      | Pattern.Antecedent a -> names @ [ a.trigger ]
      | Pattern.Timed _ -> names
    in
    (not (eval names)) || not (eval closure)

let qcheck_translation_equivalence =
  qtest ~count:1200 "PSL encoding = pattern semantics (antecedents)"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      let* word = gen_alpha_word p in
      return (p, word))
    (fun (p, word) ->
      Format.asprintf "%a on %s" Pattern.pp p
        (String.concat " " (List.map Name.to_string word)))
    (fun (p, word) -> equivalent p word)

let test_translation_equivalence_exhaustive () =
  List.iter
    (fun src ->
      let p = pat src in
      let alpha = Name.Set.elements (Pattern.alpha p) in
      let rec words k =
        if k = 0 then [ [] ]
        else
          List.concat_map
            (fun w -> List.map (fun a -> a :: w) alpha)
            (words (k - 1))
      in
      List.iter
        (fun word ->
          if not (equivalent p (List.rev word)) then
            Alcotest.failf "divergence for %s on %s" src
              (String.concat " "
                 (List.map Name.to_string (List.rev word))))
        (List.concat_map words [ 0; 1; 2; 3; 4; 5; 6 ]))
    [ "a <<! i"; "a << i"; "a[2,3] <<! i"; "{a | b} <<! i"; "a < b <<! i" ]

let () =
  Alcotest.run "translate"
    [
      ( "expansion",
        [
          Alcotest.test_case "width" `Quick test_expansion_width;
          Alcotest.test_case "needs expansion" `Quick test_needs_expansion;
          Alcotest.test_case "expanded names" `Quick test_expanded_names;
          Alcotest.test_case "width limit" `Quick test_expanded_names_too_wide;
          Alcotest.test_case "expand trace" `Quick test_expand_trace;
          Alcotest.test_case "delta" `Quick test_delta_cost;
        ] );
      ( "formula",
        [
          Alcotest.test_case "width guard" `Quick test_to_psl_width_guard;
          Alcotest.test_case "alphabet" `Quick test_to_psl_alphabet;
          Alcotest.test_case "closed-form size" `Quick
            test_formula_size_matches_construction;
        ] );
      ( "cost",
        [
          Alcotest.test_case "calibration row 1" `Quick
            test_via_psl_calibration_row1;
          Alcotest.test_case "range explosion" `Quick
            test_via_psl_explodes_on_ranges;
          Alcotest.test_case "theta time" `Quick test_theta_time;
        ] );
      ( "validation",
        [
          qcheck_translation_equivalence;
          Alcotest.test_case "exhaustive small" `Slow
            test_translation_equivalence_exhaustive;
        ] );
    ]
