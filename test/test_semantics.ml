open Loseq_core
open Loseq_testutil

let n = name
let names l = List.map n l

let frag ?connective srcs =
  Pattern.fragment ?connective
    (List.map
       (fun (nm, lo, hi) -> Pattern.range ~lo ~hi (n nm))
       srcs)

let test_runs () =
  let rs = Semantics.runs (names [ "a"; "a"; "b"; "a"; "c"; "c" ]) in
  Alcotest.(check (list (pair string int)))
    "runs"
    [ ("a", 2); ("b", 1); ("a", 1); ("c", 2) ]
    (List.map (fun (r : Semantics.run) -> (Name.to_string r.name, r.count)) rs)

let test_runs_empty () =
  Alcotest.(check int) "empty" 0 (List.length (Semantics.runs []))

let test_match_fragment_conjunctive () =
  let f = frag [ ("a", 1, 1); ("b", 2, 3) ] in
  let m w = Semantics.match_fragment f (names w) in
  Alcotest.(check bool) "a bb" true (m [ "a"; "b"; "b" ]);
  Alcotest.(check bool) "bb a" true (m [ "b"; "b"; "a" ]);
  Alcotest.(check bool) "bbb a" true (m [ "b"; "b"; "b"; "a" ]);
  Alcotest.(check bool) "missing b" false (m [ "a" ]);
  Alcotest.(check bool) "b underflow" false (m [ "a"; "b" ]);
  Alcotest.(check bool) "b overflow" false (m [ "a"; "b"; "b"; "b"; "b" ]);
  Alcotest.(check bool) "split block" false (m [ "b"; "a"; "b" ]);
  Alcotest.(check bool) "empty" false (m []);
  Alcotest.(check bool) "foreign" false (m [ "a"; "b"; "b"; "z" ])

let test_match_fragment_disjunctive () =
  let f = frag ~connective:Pattern.Any [ ("a", 1, 1); ("b", 2, 3) ] in
  let m w = Semantics.match_fragment f (names w) in
  Alcotest.(check bool) "just a" true (m [ "a" ]);
  Alcotest.(check bool) "just bb" true (m [ "b"; "b" ]);
  Alcotest.(check bool) "both" true (m [ "b"; "b"; "a" ]);
  Alcotest.(check bool) "empty" false (m []);
  Alcotest.(check bool) "b underflow" false (m [ "b" ])

(* Example 1 of the paper: l = n1[2,8] < ({n2, n3}, or). *)
let example1 =
  [ frag [ ("n1", 2, 8) ]; frag ~connective:Pattern.Any
      [ ("n2", 1, 1); ("n3", 1, 1) ] ]

let test_example1 () =
  let m w = Semantics.match_ordering example1 (names w) in
  Alcotest.(check bool) "n1 n1 n2" true (m [ "n1"; "n1"; "n2" ]);
  Alcotest.(check bool) "n1 n1 n3" true (m [ "n1"; "n1"; "n3" ]);
  Alcotest.(check bool) "n1x3 n3 n2" true (m [ "n1"; "n1"; "n1"; "n3"; "n2" ]);
  Alcotest.(check bool) "one n1 only" false (m [ "n1"; "n2" ]);
  Alcotest.(check bool) "no second frag" false (m [ "n1"; "n1" ]);
  Alcotest.(check bool) "order flipped" false (m [ "n2"; "n1"; "n1" ]);
  Alcotest.(check bool) "n2 twice" false (m [ "n1"; "n1"; "n2"; "n2" ])

let test_viable_prefix () =
  let v w = Semantics.viable_prefix example1 (names w) in
  Alcotest.(check bool) "empty" true (v []);
  Alcotest.(check bool) "n1" true (v [ "n1" ]);
  Alcotest.(check bool) "n1 x8" true (v (List.init 8 (fun _ -> "n1")));
  Alcotest.(check bool) "n1 x9" false (v (List.init 9 (fun _ -> "n1")));
  Alcotest.(check bool) "full match viable" true (v [ "n1"; "n1"; "n2" ]);
  Alcotest.(check bool) "skip frag 1" false (v [ "n2" ]);
  Alcotest.(check bool) "underflow closed" false (v [ "n1"; "n2" ])

let test_min_complete_prefix () =
  let events = Trace.of_strings [ "n1"; "n1"; "n2"; "n3" ] in
  Alcotest.(check (option int)) "completes at n2" (Some 2)
    (Semantics.min_complete_prefix example1 events);
  Alcotest.(check (option int)) "incomplete" None
    (Semantics.min_complete_prefix example1 (Trace.of_strings [ "n1" ]))

let test_holds_restricts_alpha () =
  let p = pat "a << i" in
  (* Foreign events are invisible to the property. *)
  Alcotest.(check bool) "foreign ignored" true
    (Semantics.holds p (tr [ "zzz"; "a"; "zzz"; "i" ]))

let test_holds_rejects_ill_formed () =
  let bad = Pattern.antecedent [ Pattern.single (n "i") ] ~trigger:(n "i") in
  match Semantics.holds bad (tr [ "i" ]) with
  | (_ : bool) -> Alcotest.fail "expected Ill_formed"
  | exception Wellformed.Ill_formed _ -> ()

let test_timed_deadline_from_last_premise_event () =
  (* P = a[1,2]: the deadline re-arms at the second a. *)
  let p = pat "a[1,2] => b within 10" in
  let trace time_b =
    [ Trace.event ~time:0 (n "a"); Trace.event ~time:8 (n "a");
      Trace.event ~time:time_b (n "b") ]
  in
  Alcotest.(check bool) "b at 18 ok" true (Semantics.holds p (trace 18));
  Alcotest.(check bool) "b at 19 late" false (Semantics.holds p (trace 19))

let test_timed_unsolicited_conclusion () =
  let p = pat "a => b within 10" in
  Alcotest.(check bool) "b alone" false (Semantics.holds p (tr [ "b" ]))

let test_timed_missing_conclusion_timeout () =
  let p = pat "a => b within 10" in
  let trace = [ Trace.event ~time:0 (n "a") ] in
  Alcotest.(check bool) "before deadline" true
    (Semantics.holds ~final_time:10 p trace);
  Alcotest.(check bool) "after deadline" false
    (Semantics.holds ~final_time:11 p trace)

let test_timed_rounds () =
  let p = pat "a => b within 10" in
  let ev t nm = Trace.event ~time:t (n nm) in
  Alcotest.(check bool) "two rounds" true
    (Semantics.holds p [ ev 0 "a"; ev 5 "b"; ev 20 "a"; ev 25 "b" ]);
  Alcotest.(check bool) "second round late" false
    (Semantics.holds p [ ev 0 "a"; ev 5 "b"; ev 20 "a"; ev 35 "b" ]);
  Alcotest.(check bool) "premise twice without conclusion" false
    (Semantics.holds p [ ev 0 "a"; ev 5 "b"; ev 20 "a"; ev 25 "a" ])

let test_nonrepeated_after_first_trigger_free () =
  let p = pat "{a, b} << i" in
  Alcotest.(check bool) "anything after first i" true
    (Semantics.holds p (tr [ "b"; "a"; "i"; "a"; "a"; "i"; "b" ]))

let test_repeated_each_round_checked () =
  let p = pat "{a, b} <<! i" in
  Alcotest.(check bool) "both rounds good" true
    (Semantics.holds p (tr [ "b"; "a"; "i"; "a"; "b"; "i" ]));
  Alcotest.(check bool) "second round incomplete" false
    (Semantics.holds p (tr [ "b"; "a"; "i"; "a"; "i" ]))

let qcheck_match_implies_viable =
  qtest ~count:400 "full match is a viable prefix"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* seed = int_bound 100000 in
      return (p, seed))
    (fun (p, _) -> Pattern.to_string p)
    (fun (p, seed) ->
      let rng = Random.State.make [| seed |] in
      let ordering = Pattern.body_ordering p in
      let word = Generate.ordering_word rng ordering in
      Semantics.match_ordering ordering word
      && Semantics.viable_prefix ordering word)

let qcheck_prefixes_of_valid_viable =
  qtest ~count:400 "every prefix of a generated match is viable"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* seed = int_bound 100000 in
      return (p, seed))
    (fun (p, _) -> Pattern.to_string p)
    (fun (p, seed) ->
      let rng = Random.State.make [| seed |] in
      let ordering = Pattern.body_ordering p in
      let word = Generate.ordering_word rng ordering in
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | x :: rest -> List.rev acc :: prefixes (x :: acc) rest
      in
      List.for_all (Semantics.viable_prefix ordering) (prefixes [] word))

let () =
  Alcotest.run "semantics"
    [
      ( "runs & fragments",
        [
          Alcotest.test_case "runs" `Quick test_runs;
          Alcotest.test_case "runs empty" `Quick test_runs_empty;
          Alcotest.test_case "conjunctive" `Quick
            test_match_fragment_conjunctive;
          Alcotest.test_case "disjunctive" `Quick
            test_match_fragment_disjunctive;
        ] );
      ( "orderings",
        [
          Alcotest.test_case "example 1" `Quick test_example1;
          Alcotest.test_case "viable prefixes" `Quick test_viable_prefix;
          Alcotest.test_case "min complete prefix" `Quick
            test_min_complete_prefix;
          qcheck_match_implies_viable;
          qcheck_prefixes_of_valid_viable;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "alpha restriction" `Quick
            test_holds_restricts_alpha;
          Alcotest.test_case "ill-formed rejected" `Quick
            test_holds_rejects_ill_formed;
          Alcotest.test_case "deadline from last premise event" `Quick
            test_timed_deadline_from_last_premise_event;
          Alcotest.test_case "unsolicited conclusion" `Quick
            test_timed_unsolicited_conclusion;
          Alcotest.test_case "missing conclusion timeout" `Quick
            test_timed_missing_conclusion_timeout;
          Alcotest.test_case "timed rounds" `Quick test_timed_rounds;
          Alcotest.test_case "non-repeated freedom" `Quick
            test_nonrepeated_after_first_trigger_free;
          Alcotest.test_case "repeated rounds" `Quick
            test_repeated_each_round_checked;
        ] );
    ]
