(* Certified shard-plan analysis and the sequential sharded-execution
   harness: deterministic pins on the committed example suites, the
   cross-checker synchronous-product commutation analysis, the qcheck
   gate holding sharded and unsharded verdicts together on every
   certified plan, slab slicing, the exploration memo table and the
   completeness of the Explain registry against every finding code
   emitted by lib/analysis. *)

open Loseq_core
open Loseq_analysis
open Loseq_testutil

let load path =
  match Loseq_verif.Suite.load path with
  | Ok s -> s
  | Error e -> Alcotest.failf "%a" Loseq_verif.Suite.pp_error e

let example dir name =
  let candidates =
    [
      Filename.concat ("examples/" ^ dir) name;
      Filename.concat ("../examples/" ^ dir) name;
      Filename.concat ("../../examples/" ^ dir) name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let ipu = example "specs" "ipu.suite"
let racy = example "specs" "racy.suite"
let catalog = example "specs" "catalog.suite"

let labeled path =
  List.map
    (fun (e : Loseq_verif.Suite.entry) -> (e.label, e.pattern))
    (load path)

let trace name =
  match Trace_io.load_csv (example "traces" name) with
  | Ok t -> t
  | Error msg -> Alcotest.failf "%s: %s" name msg

let suite_of labeled =
  List.map
    (fun (label, pattern) -> { Loseq_verif.Suite.label; pattern; line = 0 })
    labeled

let verdicts_testable = Alcotest.(list (pair string bool))

let sharded_verdicts plan suite tr =
  Loseq_verif.Sharded.run
    ~plan:(Array.to_list plan.Shard.shards)
    suite tr

(* ---- the committed suites --------------------------------------------- *)

let test_ipu_plan () =
  let plan = Shard.analyze ~shards:4 (labeled ipu) in
  Alcotest.(check int) "4 shards" 4 (Array.length plan.Shard.shards);
  Alcotest.(check bool) "certified" true plan.Shard.certified;
  Alcotest.(check bool)
    (Printf.sprintf "balance %.2f <= 1.5" plan.Shard.balance)
    true
    (plan.Shard.balance <= 1.5);
  (* every checker is placed exactly once *)
  let placed = Array.to_list plan.Shard.shards |> List.concat in
  Alcotest.(check (list int))
    "every checker placed"
    (List.init (Array.length plan.Shard.entries) Fun.id)
    (List.sort compare placed)

let test_ipu_sharded_agrees () =
  let entries = labeled ipu in
  let suite = suite_of entries in
  let plan = Shard.analyze ~shards:4 entries in
  let tr = trace "ipu.csv" in
  Alcotest.check verdicts_testable "ipu.csv sharded = unsharded"
    (Loseq_verif.Suite.check_trace suite tr)
    (sharded_verdicts plan suite tr)

let test_racy_coupled () =
  let entries = labeled racy in
  let plan = Shard.analyze ~shards:4 entries in
  let fs = Shard.findings plan in
  let coupled =
    List.filter (fun (f : Finding.t) -> f.code = "shard-coupled") fs
  in
  Alcotest.(check bool) "shard-coupled emitted" true (coupled <> []);
  (* the handshake racing pair req/ack is pinned to one shard *)
  let handshake_pin =
    List.exists
      (fun (i, (r : Commute.race)) ->
        fst plan.Shard.entries.(i) = "handshake"
        && List.sort compare
             [ Name.to_string r.Commute.a; Name.to_string r.Commute.b ]
           = [ "ack"; "req" ])
      plan.Shard.internal_races
  in
  Alcotest.(check bool) "handshake req/ack pinned" true handshake_pin;
  let hs =
    List.find
      (fun (i, _) -> fst plan.Shard.entries.(i) = "handshake")
      plan.Shard.internal_races
  in
  let shard = plan.Shard.assignment.(fst hs) in
  let alpha = Shard.shard_alphabet plan shard in
  Alcotest.(check bool) "req and ack in that shard's slice" true
    (Name.Set.mem (Name.v "req") alpha && Name.Set.mem (Name.v "ack") alpha)

let test_catalog_plan () =
  let entries = labeled catalog in
  let suite = suite_of entries in
  let plan = Shard.analyze ~shards:4 entries in
  List.iter
    (fun name ->
      let tr = trace name in
      Alcotest.check verdicts_testable
        (name ^ " sharded = unsharded")
        (Loseq_verif.Suite.check_trace suite tr)
        (sharded_verdicts plan suite tr))
    [ "catalog_ok.csv"; "catalog_bad.csv" ]

(* ---- cross-checker products (satellite: suite-level Commute) ---------- *)

(* Both names of the racy pair are shared: the product must report the
   race, and the planner must co-locate the two checkers. *)
let test_product_shared_race () =
  let a = ("fwd", pat "x < y <<! t") in
  let b = ("bwd", pat "y < x <<! u") in
  let r = Commute.analyze_product a b in
  Alcotest.(check bool) "complete" true r.Commute.complete;
  Alcotest.(check (list string))
    "shared names" [ "x"; "y" ]
    (List.map Name.to_string r.Commute.shared);
  let race =
    List.find_opt
      (fun (pr : Commute.product_race) ->
        List.sort compare
          [ Name.to_string pr.Commute.a; Name.to_string pr.Commute.b ]
        = [ "x"; "y" ])
      r.Commute.cross_races
  in
  (match race with
  | None -> Alcotest.fail "expected a cross race on x/y"
  | Some pr ->
      Alcotest.(check bool)
        "twin verdict pairs differ" true
        (pr.Commute.ab_verdicts <> pr.Commute.ba_verdicts));
  let plan = Shard.analyze ~shards:2 [ a; b ] in
  Alcotest.(check int) "co-located"
    plan.Shard.assignment.(0)
    plan.Shard.assignment.(1);
  Alcotest.(check bool) "still certified (intra-shard)" true
    plan.Shard.certified

(* Two checkers share a name but every shared pair commutes: the
   product certifies it and the planner may split them. *)
let test_product_shared_commuting () =
  let a = ("ab", pat "{x, y} <<! t") in
  let b = ("bc", pat "{x, y} <<! u") in
  let r = Commute.analyze_product a b in
  Alcotest.(check bool) "complete" true r.Commute.complete;
  Alcotest.(check bool) "x/y commutes on the product" true
    (List.exists
       (fun (na, nb) ->
         List.sort compare [ Name.to_string na; Name.to_string nb ]
         = [ "x"; "y" ])
       r.Commute.cross_commuting);
  let plan = Shard.analyze ~shards:2 [ a; b ] in
  let e =
    match plan.Shard.edges with [ e ] -> e | _ -> Alcotest.fail "one edge"
  in
  Alcotest.(check bool) "no hard race" true (Shard.hard_races e = []);
  Alcotest.(check bool) "split across shards" false
    (plan.Shard.assignment.(0) = plan.Shard.assignment.(1));
  Alcotest.(check bool) "certified" true plan.Shard.certified

(* ---- the qcheck gate: sharded = unsharded on certified plans ---------- *)

let gen_suite =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* ps = list_size (return n) gen_pattern in
    return (List.mapi (fun i p -> (Printf.sprintf "entry-%d" i, p)) ps))

let gen_suite_trace_shards =
  QCheck2.Gen.(
    let* entries = gen_suite in
    let* traces = flatten_l (List.map (fun (_, p) -> gen_trace_for p) entries)
    in
    let* shards = int_range 1 4 in
    return (entries, Trace_io.merge traces, shards))

let print_suite_trace_shards (entries, tr, shards) =
  Format.asprintf "@[<v>%a@,trace: %s@,shards: %d@]"
    (Format.pp_print_list (fun ppf (l, p) ->
         Format.fprintf ppf "%s: %a" l Pattern.pp p))
    entries (Trace.to_string tr) shards

let qcheck_sharded_agrees =
  qtest ~count:350 "sharded verdicts = unsharded on certified plans"
    gen_suite_trace_shards print_suite_trace_shards
    (fun (entries, tr, shards) ->
      let plan = Shard.analyze ~shards entries in
      if not plan.Shard.certified then
        QCheck2.Test.fail_report "planner emitted an uncertified plan";
      let suite = suite_of entries in
      Loseq_verif.Suite.check_trace suite tr
      = sharded_verdicts plan suite tr)

(* ---- slab slicing ------------------------------------------------------ *)

let test_slice_carries_state () =
  let entries = labeled racy in
  let tr = trace "racy_ok.csv" in
  let n = List.length tr in
  let prefix = List.filteri (fun i _ -> i < n / 2) tr in
  let suffix = List.filteri (fun i _ -> i >= n / 2) tr in
  let eng = Flat.compile entries in
  List.iter (Flat.step_event eng) prefix;
  (* slice mid-run, reversing checker order; run state must carry *)
  let members = [ 2; 0; 1 ] in
  let sub = Flat.slice eng members in
  List.iteri
    (fun k ck ->
      Alcotest.(check string)
        "label carried"
        (Flat.label eng ck)
        (Flat.label sub k);
      Alcotest.(check bool)
        "verdict carried" true
        (Flat.persist_checker sub k = Flat.persist_checker eng ck))
    members;
  (* ... and stepping the slice stays in lockstep with the original *)
  List.iter
    (fun e ->
      Flat.step_event eng e;
      Flat.step_event sub e)
    suffix;
  let now = Trace.end_time tr in
  Flat.finalize eng ~now;
  Flat.finalize sub ~now;
  List.iteri
    (fun k ck ->
      Alcotest.(check int)
        "final verdict agrees"
        (Flat.verdict_code eng ck)
        (Flat.verdict_code sub k))
    members

(* ---- the exploration memo table (satellite) ---------------------------- *)

let test_memo_caches () =
  let p = pat "start => a[2,4] < irq within 20" in
  Memo.reset ();
  ignore (Checks.findings p);
  let after_first = Memo.explorations_performed () in
  Alcotest.(check bool) "first pass explores" true (after_first > 0);
  ignore (Checks.findings p);
  Alcotest.(check int) "second pass is free" after_first
    (Memo.explorations_performed ());
  (* a different pass over the same entry shares the table: Robust only
     adds the exact-counter exploration *)
  ignore (Robust.certificate [ ("e", p) ]);
  let after_robust = Memo.explorations_performed () in
  Alcotest.(check int) "robust adds only the exact exploration"
    (after_first + 1) after_robust;
  ignore (Robust.certificate [ ("e", p) ]);
  Alcotest.(check int) "certificate re-run is free" after_robust
    (Memo.explorations_performed ())

(* ---- Explain registry completeness (satellite) ------------------------- *)

let analysis_sources () =
  let dirs = [ "../lib/analysis"; "lib/analysis"; "../../lib/analysis" ] in
  match List.find_opt Sys.file_exists dirs with
  | None -> Alcotest.fail "lib/analysis sources not visible to the test"
  | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ml")
      |> List.map (Filename.concat dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every string literal following a [Finding.Error|Warning|Info]
   severity is a candidate code; kebab-case (no spaces, lowercase)
   keeps codes and drops message texts. *)
let emitted_codes source =
  let is_code s =
    s <> ""
    && String.for_all
         (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
         s
  in
  let len = String.length source in
  let rec skip_ws i =
    if i < len && (source.[i] = ' ' || source.[i] = '\n' || source.[i] = '\t')
    then skip_ws (i + 1)
    else i
  in
  let literal_at i =
    if i < len && source.[i] = '"' then
      match String.index_from_opt source (i + 1) '"' with
      | Some j -> Some (String.sub source (i + 1) (j - i - 1))
      | None -> None
    else None
  in
  let codes = ref [] in
  List.iter
    (fun sev ->
      let slen = String.length sev in
      let rec scan from =
        match
          if from + slen > len then None
          else if String.sub source from slen = sev then Some from
          else Some (-1)
        with
        | None -> ()
        | Some -1 -> scan (from + 1)
        | Some at -> (
            (match literal_at (skip_ws (at + slen)) with
            | Some lit when is_code lit -> codes := lit :: !codes
            | _ -> ());
            scan (at + slen))
      in
      scan 0)
    [ "Finding.Error"; "Finding.Warning"; "Finding.Info" ];
  List.sort_uniq compare !codes

let test_explain_covers_analysis () =
  let sources =
    List.filter
      (fun f -> Filename.basename f <> "explain.ml")
      (analysis_sources ())
  in
  Alcotest.(check bool) "sources found" true (sources <> []);
  let codes =
    List.sort_uniq compare
      (List.concat_map (fun f -> emitted_codes (read_file f)) sources)
  in
  Alcotest.(check bool) "codes found" true (List.length codes >= 10);
  List.iter
    (fun code ->
      if Explain.find code = None then
        Alcotest.failf "finding code %S has no Explain entry" code)
    codes

let test_explain_has_shard_codes () =
  List.iter
    (fun code ->
      match Explain.find code with
      | Some e ->
          Alcotest.(check string) "code matches" code e.Explain.code
      | None -> Alcotest.failf "missing Explain entry for %S" code)
    [ "shard-coupled"; "shard-imbalance"; "shard-divergence" ]

(* ---- harness plan validation ------------------------------------------ *)

let test_harness_rejects_bad_plans () =
  let entries = labeled racy in
  let suite = suite_of entries in
  let tr = trace "racy_ok.csv" in
  let rejects plan =
    match Loseq_verif.Sharded.run ~plan suite tr with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing checker" true (rejects [ [ 0; 1 ] ]);
  Alcotest.(check bool) "duplicate checker" true
    (rejects [ [ 0; 1 ]; [ 1; 2 ] ]);
  Alcotest.(check bool) "out of range" true (rejects [ [ 0; 1; 2; 3 ] ]);
  Alcotest.(check bool) "partition accepted" false
    (rejects [ [ 1 ]; [ 0; 2 ] ])

let () =
  Alcotest.run "shard"
    [
      ( "plans",
        [
          Alcotest.test_case "ipu: certified balanced plan at N=4" `Quick
            test_ipu_plan;
          Alcotest.test_case "ipu: sharded = unsharded on ipu.csv" `Quick
            test_ipu_sharded_agrees;
          Alcotest.test_case "racy: racing pair pinned to one shard" `Quick
            test_racy_coupled;
          Alcotest.test_case "catalog: sharded = unsharded on twin CSVs"
            `Quick test_catalog_plan;
        ] );
      ( "products",
        [
          Alcotest.test_case "shared racy pair forces co-location" `Quick
            test_product_shared_race;
          Alcotest.test_case "shared name, commuting: split certified" `Quick
            test_product_shared_commuting;
        ] );
      ("gate", [ qcheck_sharded_agrees ]);
      ( "slab",
        [
          Alcotest.test_case "slice carries labels and run state" `Quick
            test_slice_carries_state;
        ] );
      ("memo", [ Alcotest.test_case "explorations are cached" `Quick
                   test_memo_caches ]);
      ( "explain",
        [
          Alcotest.test_case "every lib/analysis code is registered" `Quick
            test_explain_covers_analysis;
          Alcotest.test_case "shard-* codes are registered" `Quick
            test_explain_has_shard_codes;
        ] );
      ( "harness",
        [
          Alcotest.test_case "plan validation" `Quick
            test_harness_rejects_bad_plans;
        ] );
    ]
