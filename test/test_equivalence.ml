(* The central correctness argument: the Drct monitor (Fig. 5 automata +
   compositions) agrees with the independent declarative semantics of
   Section 4 on every pattern and trace — valid, mutated or arbitrary. *)

open Loseq_core
open Loseq_testutil

let monitor_accepts ?final_time p trace =
  match Monitor.run ?final_time p trace with
  | Monitor.Running | Monitor.Satisfied -> true
  | Monitor.Violated _ -> false

let agree p trace =
  let final_time = Trace.end_time trace + 1_000 in
  let sem = Semantics.holds ~final_time p trace in
  let mon = monitor_accepts ~final_time p trace in
  sem = mon

let qcheck_monitor_equals_semantics =
  qtest ~count:3000 "monitor = declarative semantics" gen_pattern_and_trace
    print_pattern_and_trace
    (fun (p, trace) ->
      if Trace.is_chronological trace then agree p trace else true)

let qcheck_valid_accepted =
  qtest ~count:1500 "generated valid traces are accepted by both"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* seed = int_bound 1_000_000 in
      let* rounds = int_range 1 4 in
      return (p, seed, rounds))
    (fun (p, seed, rounds) ->
      Printf.sprintf "%s seed=%d rounds=%d" (Pattern.to_string p) seed rounds)
    (fun (p, seed, rounds) ->
      let rng = Random.State.make [| seed |] in
      let trace = Generate.valid ~rounds rng p in
      Semantics.holds p trace && monitor_accepts p trace)

let qcheck_violating_rejected =
  qtest ~count:800 "generated violating traces are rejected by both"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* seed = int_bound 1_000_000 in
      return (p, seed))
    (fun (p, seed) -> Printf.sprintf "%s seed=%d" (Pattern.to_string p) seed)
    (fun (p, seed) ->
      let rng = Random.State.make [| seed |] in
      match Generate.violating rng p with
      | None -> true (* no mutation found; vacuous *)
      | Some trace ->
          let final_time = Trace.end_time trace + 1_000 in
          (not (Semantics.holds ~final_time p trace))
          && not (monitor_accepts ~final_time p trace))

(* Exhaustive check on small instances: every word up to length k over
   the alphabet. *)
let exhaustive p max_len =
  let alpha = Name.Set.elements (Pattern.alpha p) in
  let rec words k =
    if k = 0 then [ [] ]
    else
      let shorter = words (k - 1) in
      shorter
      @ List.concat_map
          (fun w -> List.map (fun a -> a :: w) alpha)
          (List.filter (fun w -> List.length w = k - 1) shorter)
  in
  List.iter
    (fun word ->
      let trace = Trace.of_names (List.rev word) in
      if not (agree p trace) then
        Alcotest.failf "divergence on %s for %s"
          (Trace.to_string trace) (Pattern.to_string p))
    (words max_len)

let test_exhaustive_small_antecedent () =
  exhaustive (pat "a << i") 7;
  exhaustive (pat "a <<! i") 7

let test_exhaustive_range () =
  exhaustive (pat "a[2,3] <<! i") 7

let test_exhaustive_conjunction () =
  exhaustive (pat "{a, b} <<! i") 7

let test_exhaustive_disjunction () =
  exhaustive (pat "{a | b} <<! i") 7

let test_exhaustive_two_fragments () =
  exhaustive (pat "a < b <<! i") 7

let test_exhaustive_timed_untimed_shape () =
  (* Deadline large enough that only the shape matters. *)
  exhaustive (pat "a => b within 1000") 7;
  exhaustive (pat "a => b < c within 1000") 6

let test_exhaustive_timed_zero_deadline () =
  (* Deadline 0: conclusion must be simultaneous with the premise's end.
     With unit-spaced timestamps every round trips the deadline. *)
  exhaustive (pat "a => b within 0") 5

let () =
  Alcotest.run "equivalence"
    [
      ( "property-based",
        [
          qcheck_monitor_equals_semantics;
          qcheck_valid_accepted;
          qcheck_violating_rejected;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "single range" `Quick
            test_exhaustive_small_antecedent;
          Alcotest.test_case "bounded range" `Quick test_exhaustive_range;
          Alcotest.test_case "conjunction" `Quick test_exhaustive_conjunction;
          Alcotest.test_case "disjunction" `Quick test_exhaustive_disjunction;
          Alcotest.test_case "two fragments" `Quick
            test_exhaustive_two_fragments;
          Alcotest.test_case "timed shape" `Quick
            test_exhaustive_timed_untimed_shape;
          Alcotest.test_case "timed zero deadline" `Quick
            test_exhaustive_timed_zero_deadline;
        ] );
    ]
