open Loseq_core
open Loseq_verif
open Loseq_testutil

let test_score_counts_states () =
  let p = pat "{a, b} << go" in
  let coverage = Explore.score p (tr [ "a"; "b"; "go" ]) in
  (* a counting, b waiting-started, then b counting / a done. *)
  Alcotest.(check bool) "full coverage on this trace" true
    (Coverage.states_covered coverage = 1.)

let test_search_improves_over_single () =
  (* A disjunctive fragment: one trace can only take one branch, so the
     selected set must beat any single trace. *)
  let p = pat "{a[2,3] | b} < c <<! go" in
  let r = Explore.search ~budget:48 p in
  Alcotest.(check bool) "union >= best" true
    (r.Explore.achieved >= r.Explore.best.Explore.coverage);
  Alcotest.(check bool) "high combined coverage" true
    (r.Explore.achieved >= 0.9);
  Alcotest.(check int) "tried all" 48 r.Explore.tried

let test_search_selected_is_small () =
  let p = pat "{a | b} << go" in
  let r = Explore.search ~budget:32 p in
  (* Greedy set cover should need only a couple of traces here. *)
  Alcotest.(check bool) "small set" true
    (List.length r.Explore.selected <= 4 && List.length r.Explore.selected >= 1)

let test_search_deterministic () =
  let p = pat "{a, b} <<! go" in
  let r1 = Explore.search ~budget:16 p in
  let r2 = Explore.search ~budget:16 p in
  Alcotest.(check int) "same best seed" r1.Explore.best.Explore.seed
    r2.Explore.best.Explore.seed;
  Alcotest.(check int) "same selection size"
    (List.length r1.Explore.selected)
    (List.length r2.Explore.selected)

let test_search_rejects_bad_budget () =
  match Explore.search ~budget:0 (pat "a << i") with
  | (_ : Explore.result) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pp_renders () =
  let r = Explore.search ~budget:8 (pat "a <<! go") in
  let text = Format.asprintf "%a" Explore.pp_result r in
  Alcotest.(check bool) "non-empty" true (String.length text > 40)

let qcheck_union_dominates =
  qtest ~count:60 "selected union always >= best single trace"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      return p)
    (fun p -> Pattern.to_string p)
    (fun p ->
      let r = Explore.search ~budget:12 p in
      r.Explore.achieved >= r.Explore.best.Explore.coverage -. 1e-9)

let () =
  Alcotest.run "explore"
    [
      ( "coverage search",
        [
          Alcotest.test_case "score" `Quick test_score_counts_states;
          Alcotest.test_case "improves" `Quick
            test_search_improves_over_single;
          Alcotest.test_case "small selection" `Quick
            test_search_selected_is_small;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "bad budget" `Quick
            test_search_rejects_bad_budget;
          Alcotest.test_case "pretty printing" `Quick test_pp_renders;
          qcheck_union_dominates;
        ] );
    ]
