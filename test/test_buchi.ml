open Loseq_core
open Loseq_psl
open Loseq_testutil

let a = Psl.atom "a"
let b = Psl.atom "b"
let c = Psl.atom "c"
let t l = List.map name l

let accepts f ~prefix ~cycle =
  Buchi.accepts_lasso (Buchi.of_ltl f) ~prefix:(t prefix) ~cycle:(t cycle)

let test_atom () =
  Alcotest.(check bool) "a on a^w" true (accepts a ~prefix:[] ~cycle:[ "a" ]);
  Alcotest.(check bool) "a on b^w" false (accepts a ~prefix:[] ~cycle:[ "b" ])

let test_next () =
  Alcotest.(check bool) "X b on a b^w" true
    (accepts (Psl.next b) ~prefix:[ "a" ] ~cycle:[ "b" ]);
  Alcotest.(check bool) "X b on a a^w" false
    (accepts (Psl.next b) ~prefix:[ "a" ] ~cycle:[ "a" ])

let test_until () =
  let f = Psl.until a b in
  Alcotest.(check bool) "a a b..." true
    (accepts f ~prefix:[ "a"; "a"; "b" ] ~cycle:[ "c" ]);
  Alcotest.(check bool) "never b" false (accepts f ~prefix:[] ~cycle:[ "a" ]);
  Alcotest.(check bool) "b immediately" true
    (accepts f ~prefix:[] ~cycle:[ "b" ])

let test_always () =
  Alcotest.(check bool) "G a on a^w" true
    (accepts (Psl.always a) ~prefix:[] ~cycle:[ "a" ]);
  Alcotest.(check bool) "G a broken in cycle" false
    (accepts (Psl.always a) ~prefix:[ "a" ] ~cycle:[ "a"; "b" ])

let test_gf_fg () =
  let gf = Psl.always (Psl.eventually b) in
  let fg = Psl.eventually (Psl.always b) in
  Alcotest.(check bool) "GF b on (a b)^w" true
    (accepts gf ~prefix:[] ~cycle:[ "a"; "b" ]);
  Alcotest.(check bool) "FG b on (a b)^w" false
    (accepts fg ~prefix:[] ~cycle:[ "a"; "b" ]);
  Alcotest.(check bool) "FG b on a (b)^w" true
    (accepts fg ~prefix:[ "a" ] ~cycle:[ "b" ])

let test_release () =
  let f = Psl.release a b in
  Alcotest.(check bool) "b^w" true (accepts f ~prefix:[] ~cycle:[ "b" ]);
  Alcotest.(check bool) "b then break, no release" false
    (accepts f ~prefix:[ "b" ] ~cycle:[ "c" ])

let test_emptiness () =
  let empty f = Buchi.is_empty (Buchi.of_ltl f) ~alphabet:(t [ "a"; "b" ]) in
  Alcotest.(check bool) "contradiction" true
    (empty (Psl.and_ [ Psl.always a; Psl.eventually (Psl.not_ a) ]));
  Alcotest.(check bool) "satisfiable" false (empty (Psl.always a));
  Alcotest.(check bool) "mutually exclusive atoms" true
    (empty (Psl.and_ [ a; b ]));
  Alcotest.(check bool) "false" true (empty Psl.False);
  Alcotest.(check bool) "true" false (empty Psl.True)

let test_stats_nonempty () =
  let ba = Buchi.of_ltl (Psl.until a b) in
  let states, transitions = Buchi.size ba in
  Alcotest.(check bool) "has states" true (states > 0);
  Alcotest.(check bool) "has transitions" true (transitions > 0)

let test_enabled () =
  let label =
    { Buchi.pos = Name.Set.singleton (name "a"); neg = Name.Set.empty }
  in
  Alcotest.(check bool) "pos matches" true (Buchi.enabled label (name "a"));
  Alcotest.(check bool) "pos mismatch" false (Buchi.enabled label (name "b"));
  let neg_label =
    { Buchi.pos = Name.Set.empty; neg = Name.Set.singleton (name "a") }
  in
  Alcotest.(check bool) "neg blocks" false (Buchi.enabled neg_label (name "a"));
  Alcotest.(check bool) "neg passes others" true
    (Buchi.enabled neg_label (name "b"))

(* Random cross-validation against the direct lasso evaluation — the
   SPOT-replacement guarantee. *)
let gen_formula =
  let open QCheck2.Gen in
  sized_size (int_range 1 10) @@ fix (fun self n ->
      if n <= 1 then oneof [ return a; return b; return c ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Psl.not_ sub;
            map2 (fun f g -> Psl.and_ [ f; g ]) sub sub;
            map2 (fun f g -> Psl.or_ [ f; g ]) sub sub;
            map Psl.next sub;
            map2 Psl.until sub sub;
            map2 Psl.release sub sub;
            map Psl.always sub;
            map Psl.eventually sub;
          ])

let gen_lasso =
  QCheck2.Gen.(
    let letters = oneofl [ "a"; "b"; "c" ] in
    let* prefix = list_size (int_range 0 4) letters in
    let* cycle = list_size (int_range 1 4) letters in
    return (prefix, cycle))

let qcheck_buchi_matches_lasso_semantics =
  qtest ~count:800 "Buchi acceptance = LTL lasso semantics"
    QCheck2.Gen.(
      let* f = gen_formula in
      let* prefix, cycle = gen_lasso in
      return (f, prefix, cycle))
    (fun (f, prefix, cycle) ->
      Printf.sprintf "%s on %s (%s)^w" (Psl.to_string f)
        (String.concat " " prefix) (String.concat " " cycle))
    (fun (f, prefix, cycle) ->
      accepts f ~prefix ~cycle
      = Psl.eval_lasso f ~prefix:(t prefix) ~cycle:(t cycle))

let qcheck_f_and_not_f_empty =
  (* GPVW is exponential in the Until count; conjoining f with its
     negation doubles the formula, so keep candidates small to bound the
     worst case. *)
  qtest ~count:300 "L(f && !f) is empty" gen_formula Psl.to_string (fun f ->
      Psl.size f > 9
      || Buchi.is_empty
           (Buchi.of_ltl (Psl.and_ [ f; Psl.not_ f ]))
           ~alphabet:(t [ "a"; "b"; "c" ]))

let qcheck_translation_smoke =
  (* The Section-5 encodings translate to automata (SPOT's role in the
     paper): no exception, sane sizes.  GPVW is exponential, so only
     encodings of modest size are pushed through it here; test_translate
     validates the big ones semantically instead. *)
  qtest ~count:60 "pattern encodings translate to Buchi"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      return p)
    (fun p -> Pattern.to_string p)
    (fun p ->
      match Translate.to_psl p with
      | f ->
          if Psl.size f <= 60 then begin
            let ba = Buchi.of_ltl f in
            fst (Buchi.size ba) > 0
          end
          else true
      | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "buchi"
    [
      ( "acceptance",
        [
          Alcotest.test_case "atom" `Quick test_atom;
          Alcotest.test_case "next" `Quick test_next;
          Alcotest.test_case "until" `Quick test_until;
          Alcotest.test_case "always" `Quick test_always;
          Alcotest.test_case "GF vs FG" `Quick test_gf_fg;
          Alcotest.test_case "release" `Quick test_release;
        ] );
      ( "emptiness",
        [
          Alcotest.test_case "cases" `Quick test_emptiness;
          Alcotest.test_case "stats" `Quick test_stats_nonempty;
          Alcotest.test_case "enabled" `Quick test_enabled;
        ] );
      ( "cross-validation",
        [
          qcheck_buchi_matches_lasso_semantics;
          qcheck_f_and_not_f_empty;
          qcheck_translation_smoke;
        ] );
    ]
