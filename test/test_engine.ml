open Loseq_core
open Loseq_testutil

let n = name

let make src =
  let p = pat src in
  let engine =
    Engine.create
      ~terminators:(Context.terminators p)
      (Pattern.body_ordering p)
  in
  Engine.reset engine;
  engine

let step e nm = Engine.step e (n nm)

let is_fault = function Engine.Fault _ -> true | _ -> false
let is_progress = function Engine.Progress -> true | _ -> false
let is_completed = function Engine.Completed -> true | _ -> false

let test_progress_within_fragment () =
  let e = make "{a, b} << i" in
  Alcotest.(check bool) "a" true (is_progress (step e "a"));
  Alcotest.(check bool) "b" true (is_progress (step e "b"));
  Alcotest.(check int) "still fragment 0" 0 (Engine.active e)

let test_advance () =
  let e = make "a < b << i" in
  ignore (step e "a");
  (match step e "b" with
  | Engine.Advanced 1 -> ()
  | _ -> Alcotest.fail "expected Advanced 1");
  Alcotest.(check int) "active" 1 (Engine.active e)

let test_advance_requires_completion () =
  let e = make "a[2,3] < b << i" in
  ignore (step e "a");
  Alcotest.(check bool) "b too early" true (is_fault (step e "b"))

let test_complete_on_terminator () =
  let e = make "a << i" in
  ignore (step e "a");
  Alcotest.(check bool) "completed" true (is_completed (step e "i"));
  Alcotest.(check int) "idle" (-1) (Engine.active e)

let test_terminator_early_is_fault () =
  let e = make "a < b << i" in
  ignore (step e "a");
  (match step e "i" with
  | Engine.Fault { reason = Diag.Trigger_early; _ } -> ()
  | _ -> Alcotest.fail "expected Trigger_early")

let test_before_name_fault () =
  let e = make "a < b < c << i" in
  ignore (step e "a");
  ignore (step e "b");
  (match step e "a" with
  | Engine.Fault { reason = Diag.Before_name; fragment } ->
      Alcotest.(check int) "at fragment 1" 1 fragment
  | _ -> Alcotest.fail "expected Before_name")

let test_after_name_fault () =
  let e = make "a < b < c << i" in
  (match step e "c" with
  | Engine.Fault { reason = Diag.After_name; _ } -> ()
  | _ -> Alcotest.fail "expected After_name")

let test_disjunctive_fragment_any_branch () =
  let e = make "{a | b} << i" in
  ignore (step e "b");
  Alcotest.(check bool) "completes via b" true (is_completed (step e "i"))

let test_disjunctive_empty_fault () =
  let e = make "{a | b} < c << i" in
  (match step e "c" with
  | Engine.Fault { reason = Diag.Empty_fragment; _ } -> ()
  | _ -> Alcotest.fail "expected Empty_fragment")

let test_disjunctive_both_branches () =
  let e = make "{a | b[2,3]} << i" in
  ignore (step e "a");
  ignore (step e "b");
  ignore (step e "b");
  Alcotest.(check bool) "completed" true (is_completed (step e "i"))

let test_conjunctive_missing_fault () =
  let e = make "{a, b} << i" in
  ignore (step e "a");
  (match step e "i" with
  | Engine.Fault { reason = Diag.Missing r; _ } ->
      Alcotest.(check string) "missing b" "b" (Name.to_string r.Pattern.name)
  | _ -> Alcotest.fail "expected Missing")

let test_ignored_outside () =
  let e = make "a << i" in
  (match step e "zzz" with
  | Engine.Ignored -> ()
  | _ -> Alcotest.fail "expected Ignored")

let test_reset_with_event () =
  let e = make "{a, b} => c within 5" in
  ignore (step e "a");
  ignore (step e "b");
  ignore (step e "c");
  (* c is counting in the conclusion; 'a' restarts the round. *)
  (match step e "a" with
  | Engine.Completed -> ()
  | _ -> Alcotest.fail "expected Completed (restart)");
  Engine.reset_with e (n "a");
  Alcotest.(check int) "active 0" 0 (Engine.active e);
  (* a's recognizer must be counting already, b's waiting-started. *)
  (match Engine.fragment_states e 0 with
  | [ Recognizer.Counting 1; Recognizer.Waiting_started ] -> ()
  | states ->
      Alcotest.failf "unexpected states: %s"
        (String.concat ", "
           (List.map
              (fun s -> Format.asprintf "%a" Recognizer.pp_state s)
              states)))

let test_reset_with_bad_name_raises () =
  let e = make "a << i" in
  match Engine.reset_with e (n "i") with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_owner () =
  let e = make "a < b << i" in
  Alcotest.(check (option int)) "a" (Some 0) (Engine.owner e (n "a"));
  Alcotest.(check (option int)) "b" (Some 1) (Engine.owner e (n "b"));
  Alcotest.(check (option int)) "i" None (Engine.owner e (n "i"))

let test_min_complete () =
  let e = make "a[2,3] << i" in
  Alcotest.(check bool) "empty not complete" false
    (Engine.active_min_complete e);
  ignore (step e "a");
  Alcotest.(check bool) "one a not complete" false
    (Engine.active_min_complete e);
  ignore (step e "a");
  Alcotest.(check bool) "two a complete" true (Engine.active_min_complete e);
  ignore (step e "a");
  Alcotest.(check bool) "three a still complete" true
    (Engine.active_min_complete e)

let test_min_complete_disjunctive () =
  let e = make "{a | b[2,2]} << i" in
  ignore (step e "a");
  Alcotest.(check bool) "a alone complete" true (Engine.active_min_complete e);
  ignore (step e "b");
  Alcotest.(check bool) "open b blocks completion" false
    (Engine.active_min_complete e);
  ignore (step e "b");
  Alcotest.(check bool) "b closed again complete" true
    (Engine.active_min_complete e)

let test_only_active_fragment_steps () =
  (* Per-event work must not grow with inactive fragments: Θ(max |α(F)|). *)
  let ops_small = ref 0 and ops_large = ref 0 in
  let build ops src =
    let p = pat src in
    let e =
      Engine.create ~ops
        ~terminators:(Context.terminators p)
        (Pattern.body_ordering p)
    in
    Engine.reset e;
    e
  in
  let small = build ops_small "a << i" in
  let large = build ops_large "a < b < c < d < e < f < g << i" in
  ignore (Engine.step small (n "a"));
  ignore (Engine.step large (n "a"));
  (* Same single-range fragment active: identical per-event cost. *)
  Alcotest.(check int) "same ops" !ops_small !ops_large

let () =
  Alcotest.run "engine"
    [
      ( "flow",
        [
          Alcotest.test_case "progress" `Quick test_progress_within_fragment;
          Alcotest.test_case "advance" `Quick test_advance;
          Alcotest.test_case "advance needs completion" `Quick
            test_advance_requires_completion;
          Alcotest.test_case "complete on terminator" `Quick
            test_complete_on_terminator;
          Alcotest.test_case "early terminator" `Quick
            test_terminator_early_is_fault;
          Alcotest.test_case "before-name fault" `Quick test_before_name_fault;
          Alcotest.test_case "after-name fault" `Quick test_after_name_fault;
        ] );
      ( "fragments",
        [
          Alcotest.test_case "disjunctive any branch" `Quick
            test_disjunctive_fragment_any_branch;
          Alcotest.test_case "disjunctive empty" `Quick
            test_disjunctive_empty_fault;
          Alcotest.test_case "disjunctive both" `Quick
            test_disjunctive_both_branches;
          Alcotest.test_case "conjunctive missing" `Quick
            test_conjunctive_missing_fault;
        ] );
      ( "api",
        [
          Alcotest.test_case "outside ignored" `Quick test_ignored_outside;
          Alcotest.test_case "reset_with" `Quick test_reset_with_event;
          Alcotest.test_case "reset_with bad name" `Quick
            test_reset_with_bad_name_raises;
          Alcotest.test_case "owner" `Quick test_owner;
          Alcotest.test_case "min complete" `Quick test_min_complete;
          Alcotest.test_case "min complete disjunctive" `Quick
            test_min_complete_disjunctive;
          Alcotest.test_case "active-only stepping" `Quick
            test_only_active_fragment_steps;
        ] );
    ]
