open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_testutil

let test_unbound_raises_immediately () =
  let kernel = Kernel.create () in
  let driver = Driver.create kernel in
  Driver.bind driver "a" ignore;
  (* 'i' unbound: drive must fail before spawning anything. *)
  match Driver.drive driver (pat "a << i") with
  | () -> Alcotest.fail "expected Unbound"
  | exception Driver.Unbound n ->
      Alcotest.(check string) "which name" "i" (Name.to_string n)

let test_drive_emits_satisfying_sequences () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let driver = Driver.create kernel in
  let p = pat "{set_a, set_b[1,3]} <<! commit" in
  List.iter
    (fun nm -> Driver.bind driver nm (fun () -> Tap.emit tap nm))
    [ "set_a"; "set_b"; "commit" ];
  let checker = Checker.attach tap p in
  Driver.drive ~rounds:5 driver p;
  Kernel.run kernel;
  Alcotest.(check bool) "checker green" true (Checker.passed checker);
  Alcotest.(check bool) "five rounds of actions" true
    (Driver.actions_performed driver >= 15);
  Alcotest.(check int) "every action observed"
    (Driver.actions_performed driver)
    (Tap.count tap)

let test_drive_sequence_violating () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let driver = Driver.create kernel in
  let p = pat "{set_a, set_b} << commit" in
  List.iter
    (fun nm -> Driver.bind driver nm (fun () -> Tap.emit tap nm))
    [ "set_a"; "set_b"; "commit" ];
  let checker = Checker.attach tap p in
  Driver.drive_sequence driver (List.map name [ "set_a"; "commit" ]);
  Kernel.run kernel;
  Alcotest.(check bool) "violation caught" false (Checker.passed checker)

let test_loose_gaps_advance_time () =
  let kernel = Kernel.create () in
  let driver = Driver.create kernel in
  Driver.bind driver "x" ignore;
  Driver.drive_sequence ~gap:(Time.ns 50, Time.ns 60) driver
    (List.map name [ "x"; "x"; "x" ]);
  Kernel.run kernel;
  let now = Time.to_ps (Kernel.now kernel) in
  Alcotest.(check bool) "3 gaps in [150,180] ns" true
    (now >= 150_000 && now <= 180_000)

let test_drive_real_registers () =
  (* The last mile: the pattern drives actual TLM register writes into
     the IPU, and the interface monitor judges the IPU's own events. *)
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let bus = Loseq_platform.Bus.create () in
  let mem = Loseq_platform.Memory.create ~size:65536 () in
  Loseq_platform.Bus.map bus ~base:0 ~size:65536
    (Loseq_platform.Memory.target mem);
  let dma = Tlm.initiator () in
  Tlm.bind dma (Loseq_platform.Bus.target bus);
  let ipu =
    Loseq_platform.Ipu.create kernel tap ~bus:dma ~on_irq:(fun () -> ())
  in
  let regs = Tlm.initiator () in
  Tlm.bind regs (Loseq_platform.Ipu.regs ipu);
  let driver = Driver.create kernel in
  let write offset value () = ignore (Tlm.write_word regs offset value) in
  Driver.bind driver "set_imgAddr" (write 0x00 0x100);
  Driver.bind driver "set_glAddr" (write 0x04 0x1000);
  Driver.bind driver "set_glSize" (write 0x08 3);
  Driver.bind driver "start" (write 0x0C 1);
  let property = pat "{set_imgAddr, set_glAddr, set_glSize} << start" in
  let checker = Checker.attach tap property in
  Driver.drive ~rounds:1 driver property;
  Kernel.run kernel;
  Alcotest.(check bool) "monitor green on real traffic" true
    (Checker.passed checker);
  Alcotest.(check int) "IPU actually ran" 1
    (Loseq_platform.Ipu.recognitions ipu)

let qcheck_driver_traffic_always_green =
  qtest ~count:150 "driven stimuli never violate their own pattern"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      let* seed = int_bound 100000 in
      return (p, seed))
    (fun (p, seed) -> Printf.sprintf "%s seed=%d" (Pattern.to_string p) seed)
    (fun (p, seed) ->
      let kernel = Kernel.create () in
      let tap = Tap.create kernel in
      let driver = Driver.create kernel in
      Name.Set.iter
        (fun nm ->
          Driver.bind driver (Name.to_string nm) (fun () ->
              Tap.emit_name tap nm))
        (Pattern.alpha p);
      let checker = Checker.attach tap p in
      Driver.drive ~seed ~rounds:2 driver p;
      Kernel.run kernel;
      Checker.passed checker)

(* drive_monitored: auto-binds unbound names to tap emission, attaches
   the checker itself, and the loop stays green end to end. *)
let test_drive_monitored () =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let driver = Driver.create kernel in
  let p = pat "{set_a, set_b} <<! commit" in
  let checker = Driver.drive_monitored ~rounds:4 driver tap p in
  Kernel.run kernel;
  Alcotest.(check bool) "checker green" true (Checker.passed checker);
  Alcotest.(check int) "every auto-bound action observed"
    (Driver.actions_performed driver)
    (Tap.count tap);
  Alcotest.(check bool) "four rounds" true
    (Driver.actions_performed driver >= 12)

let () =
  Alcotest.run "driver"
    [
      ( "driving",
        [
          Alcotest.test_case "unbound" `Quick test_unbound_raises_immediately;
          Alcotest.test_case "drive_monitored closed loop" `Quick
            test_drive_monitored;
          Alcotest.test_case "satisfying sequences" `Quick
            test_drive_emits_satisfying_sequences;
          Alcotest.test_case "violating sequence" `Quick
            test_drive_sequence_violating;
          Alcotest.test_case "loose gaps" `Quick test_loose_gaps_advance_time;
          Alcotest.test_case "real registers" `Quick test_drive_real_registers;
          qcheck_driver_traffic_always_green;
        ] );
    ]
