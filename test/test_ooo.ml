(* The speculative out-of-order engine: settled verdicts must be
   exactly the buffered session's (and the batch checker's) on any
   K-bounded permutation; the certificate fast path must commit
   commuting late events in place; rollback must retract speculative
   violations a late arrival disproves; and the twin trace
   examples/traces/ipu_ooo.csv must stay a faithful K-scramble of
   ipu.csv. *)

open Loseq_core
open Loseq_verif
open Loseq_ingest
open Loseq_testutil
module Engine = Loseq_ooo.Engine
module Metrics = Loseq_obs.Metrics

let ev t nm = Trace.event ~time:t (name nm)

let entry label src : Suite.entry =
  { Suite.label; pattern = pat src; line = 1 }

let to_engine_suite suite =
  List.map (fun (e : Suite.entry) -> (e.Suite.label, e.Suite.pattern)) suite

let passed_of summary = List.map (fun (l, v) -> (l, Backend.passed v)) summary

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* Locate a committed example whether the binary runs from the
   workspace root (dune exec) or the test directory (dune runtest). *)
let example dir name =
  let candidates =
    [
      Filename.concat ("examples/" ^ dir) name;
      Filename.concat ("../examples/" ^ dir) name;
      Filename.concat ("../../examples/" ^ dir) name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let load_suite path =
  match Suite.load path with
  | Ok s -> s
  | Error e -> Alcotest.failf "%a" Suite.pp_error e

(* Load a CSV without the chronology validator: out-of-order rows are
   the whole point of the twin trace. *)
let load_csv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match Trace_io.parse_csv_line ~lineno line with
            | Ok (Some e) -> go (lineno + 1) (e :: acc)
            | Ok None -> go (lineno + 1) acc
            | Error msg -> Alcotest.failf "%s: %s" path msg)
      in
      go 1 [])

let ipu_suite = load_suite (example "specs" "ipu.suite")
let ipu_trace () = load_csv (example "traces" "ipu.csv")
let ipu_ooo_trace () = load_csv (example "traces" "ipu_ooo.csv")
let ipu_lateness = 75000

let stable_by_time trace =
  List.stable_sort
    (fun (a : Trace.event) (b : Trace.event) -> compare a.Trace.time b.Trace.time)
    trace

let rows trace =
  List.map
    (fun (e : Trace.event) -> (e.Trace.time, Name.to_string e.Trace.name))
    trace

(* How late the most delayed event actually is: the lateness any
   absorbing consumer needs to reconstruct the chronological trace. *)
let required_lateness trace =
  let max_seen = ref (-1) and need = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      need := max !need (!max_seen - e.Trace.time);
      max_seen := max !max_seen e.Trace.time)
    trace;
  !need

(* ---- the committed twin trace ----------------------------------------- *)

let test_twin_sorts_back () =
  let original = ipu_trace () and twin = ipu_ooo_trace () in
  Alcotest.(check int) "same cardinality" (List.length original)
    (List.length twin);
  Alcotest.(check (list (pair int string)))
    "stable sort recovers ipu.csv" (rows original)
    (rows (stable_by_time twin));
  Alcotest.(check bool) "actually scrambled" true (rows original <> rows twin)

let test_twin_required_lateness () =
  (* The number every doc, test and CI gate quotes for ipu_ooo.csv. *)
  Alcotest.(check int) "required lateness" ipu_lateness
    (required_lateness (ipu_ooo_trace ()))

let test_twin_engine_matches_batch () =
  let twin = ipu_ooo_trace () in
  let eng = Engine.create ~lateness:ipu_lateness (to_engine_suite ipu_suite) in
  List.iter
    (fun e ->
      match Engine.offer eng e with
      | `Dropped_late -> Alcotest.failf "dropped: %s" (Trace.to_string [ e ])
      | `Applied | `Commuted | `Replayed _ -> ())
    twin;
  Engine.finalize eng;
  Alcotest.(check (list (pair string bool)))
    "settled verdicts = batch on the chronological trace"
    (Suite.check_trace ipu_suite (ipu_trace ()))
    (passed_of (Engine.report eng));
  let stats = Engine.stats eng in
  Alcotest.(check int) "late arrivals absorbed" 9 stats.Engine.late;
  Alcotest.(check int) "all of them commuted in place" 9
    stats.Engine.commute_hits;
  Alcotest.(check int) "zero rollbacks" 0 stats.Engine.rollbacks;
  Alcotest.(check int) "zero replays" 0 stats.Engine.replayed;
  Alcotest.(check int) "nothing dropped" 0 stats.Engine.dropped_late

let test_twin_engine_matches_buffered_rendering () =
  let twin = ipu_ooo_trace () in
  let eng = Engine.create ~lateness:ipu_lateness (to_engine_suite ipu_suite) in
  List.iter (fun e -> ignore (Engine.offer eng e)) twin;
  Engine.finalize eng;
  let session = Session.create ~lateness:ipu_lateness ipu_suite in
  List.iter (Session.offer_force session) twin;
  let report = Session.finalize session in
  Alcotest.(check (list string))
    "rendered verdicts byte-identical to the buffered session"
    (List.map snd (Report.summary_strings report))
    (Engine.report_strings eng)

(* ---- rollback and retraction ------------------------------------------ *)

let test_rollback_retracts_speculative_violation () =
  (* go@0 arms a deadline at 10; the foreign event at 100 fires it
     speculatively (done has not been seen).  The late done@5 cannot
     commute — the checker is timed and already (speculatively)
     violated — so the engine must roll back, replay, and retract. *)
  let suite = [ entry "p" "go => done within 10" ] in
  let notices = ref [] in
  let eng =
    Engine.create
      ~notice:(fun n -> notices := n :: !notices)
      ~lateness:100 (to_engine_suite suite)
  in
  Alcotest.(check bool) "go applied" true (Engine.offer eng (ev 0 "go") = `Applied);
  Alcotest.(check bool) "foreign applied" true
    (Engine.offer eng (ev 100 "zz") = `Applied);
  (match !notices with
  | [ Engine.Violation { label = "p"; settled = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected one speculative violation notice");
  (match Engine.offer eng (ev 5 "done") with
  | `Replayed n -> Alcotest.(check int) "replayed the journal" 2 n
  | _ -> Alcotest.fail "expected a rollback-and-replay");
  (match !notices with
  | Engine.Retracted { label = "p"; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected a retraction notice");
  let stats = Engine.stats eng in
  Alcotest.(check int) "one rollback" 1 stats.Engine.rollbacks;
  Alcotest.(check int) "two events re-stepped" 2 stats.Engine.replayed;
  Engine.finalize eng;
  Alcotest.(check (list (pair string bool)))
    "final verdict: satisfied" [ ("p", true) ]
    (passed_of (Engine.report eng))

let test_commute_fast_path_in_place () =
  (* a and b are an unordered premise set: the certificate proves the
     swap verdict-preserving, so the late a@0 commits with no
     rollback. *)
  let suite = [ entry "c" "{a, b} <<! go" ] in
  let eng = Engine.create ~lateness:20 (to_engine_suite suite) in
  Alcotest.(check bool) "b applied" true (Engine.offer eng (ev 10 "b") = `Applied);
  Alcotest.(check bool) "late a commuted in place" true
    (Engine.offer eng (ev 0 "a") = `Commuted);
  ignore (Engine.offer eng (ev 30 "go"));
  let stats = Engine.stats eng in
  Alcotest.(check int) "one commute hit" 1 stats.Engine.commute_hits;
  Alcotest.(check int) "no rollback" 0 stats.Engine.rollbacks;
  Engine.finalize eng;
  Alcotest.(check (list (pair string bool)))
    "agrees with batch on the chronological trace"
    (Suite.check_trace suite [ ev 0 "a"; ev 10 "b"; ev 30 "go" ])
    (passed_of (Engine.report eng))

let test_foreign_late_bypasses () =
  let suite = [ entry "c" "{a, b} <<! go" ] in
  let eng = Engine.create ~lateness:50 (to_engine_suite suite) in
  ignore (Engine.offer eng (ev 0 "a"));
  ignore (Engine.offer eng (ev 20 "xx"));
  Alcotest.(check bool) "late foreign event is a plain apply" true
    (Engine.offer eng (ev 15 "yy") = `Applied);
  Alcotest.(check int) "counted as a commute hit" 1
    (Engine.stats eng).Engine.commute_hits

let test_dropped_late_boundary () =
  (* Same admissibility rule as Reorder: strictly below the watermark
     drops, exactly at the watermark is admitted. *)
  let suite = [ entry "c" "{a, b} <<! go" ] in
  let eng = Engine.create ~lateness:5 (to_engine_suite suite) in
  ignore (Engine.offer eng (ev 0 "a"));
  ignore (Engine.offer eng (ev 100 "xx"));
  Alcotest.(check int) "watermark" 95 (Engine.watermark eng);
  Alcotest.(check bool) "below the watermark drops" true
    (Engine.offer eng (ev 94 "b") = `Dropped_late);
  Alcotest.(check bool) "exactly at the watermark is admitted" true
    (Engine.offer eng (ev 95 "b") <> `Dropped_late);
  Alcotest.(check int) "one drop counted" 1
    (Engine.stats eng).Engine.dropped_late

(* ---- settlement ------------------------------------------------------- *)

let test_settlement_follows_watermark () =
  let suite = [ entry "c" "{a, b} <<! go" ] in
  let settled_notices = ref 0 in
  let eng =
    Engine.create
      ~notice:(function
        | Engine.Settled { label = "c"; _ } -> incr settled_notices
        | _ -> ())
      ~lateness:10 (to_engine_suite suite)
  in
  ignore (Engine.offer eng (ev 0 "go"));
  (* Violated at 0, but the watermark is still behind: speculative. *)
  Alcotest.(check bool) "unsettled while retractable" true
    ((Engine.tri eng).(0) = Backend.Unsettled);
  Alcotest.(check int) "no settlement yet" 0 !settled_notices;
  ignore (Engine.offer eng (ev 20 "xx"));
  (* Watermark 10 passed the decision point 0: definitive. *)
  Alcotest.(check int) "settled mid-stream" 1 !settled_notices;
  Alcotest.(check bool) "tri reports Fail" true
    ((Engine.tri eng).(0) = Backend.Fail);
  Alcotest.(check bool) "marked settled" true (Engine.settled eng).(0);
  Engine.finalize eng;
  Alcotest.(check int) "settlement is emitted once" 1 !settled_notices;
  Alcotest.(check bool) "verdict unchanged by finalize" true
    ((Engine.tri eng).(0) = Backend.Fail)

(* ---- the permutation-equivalence gate --------------------------------- *)

(* A K-bounded scramble that preserves the relative order of
   equal-timestamp events: jitter each *timestamp* (not each event) by
   at most K and stable-sort by the jittered key.  Two events more than
   K apart can never swap, so the scramble is always admissible; ties
   share a key, so the buffered session's stable drain reproduces the
   chronological trace exactly. *)
let scramble_gen k trace =
  QCheck2.Gen.(
    let times =
      List.sort_uniq compare (List.map (fun e -> e.Trace.time) trace)
    in
    let* jitters = list_size (return (List.length times)) (int_range 0 k) in
    let jitter = Hashtbl.create 16 in
    List.iter2 (fun t j -> Hashtbl.replace jitter t j) times jitters;
    return
      (List.stable_sort
         (fun (a : Trace.event) (b : Trace.event) ->
           compare
             (a.Trace.time + Hashtbl.find jitter a.Trace.time)
             (b.Trace.time + Hashtbl.find jitter b.Trace.time))
         trace))

let gen_equivalence_case =
  QCheck2.Gen.(
    let* p1 = gen_pattern in
    let* p2 = gen_pattern in
    let* t1 = gen_timed_trace p1 in
    let* t2 = gen_timed_trace p2 in
    let merged = stable_by_time (t1 @ t2) in
    let* k = int_range 0 40 in
    let* scrambled = scramble_gen k merged in
    return (p1, p2, k, merged, scrambled))

let print_equivalence_case (p1, p2, k, merged, scrambled) =
  Format.asprintf "p1 = %a@.p2 = %a@.k = %d@.chronological = %s@.arrival = %s"
    Pattern.pp p1 Pattern.pp p2 k
    (Trace.to_string merged)
    (Trace.to_string scrambled)

let test_permutation_equivalence =
  qtest ~count:300 "settled ooo = buffered session = batch"
    gen_equivalence_case print_equivalence_case
    (fun (p1, p2, k, merged, scrambled) ->
      let suite =
        [
          { Suite.label = "p1"; pattern = p1; line = 1 };
          { Suite.label = "p2"; pattern = p2; line = 2 };
        ]
      in
      let batch = Suite.check_trace suite merged in
      let session = Session.create ~lateness:k suite in
      List.iter (Session.offer_force session) scrambled;
      let buffered = passed_of (Report.summary (Session.finalize session)) in
      let settled_at = Hashtbl.create 4 in
      let eng =
        Engine.create
          ~notice:(function
            | Engine.Settled { label; verdict; _ } ->
                if not (Hashtbl.mem settled_at label) then
                  Hashtbl.add settled_at label (Backend.passed verdict)
            | _ -> ())
          ~lateness:k (to_engine_suite suite)
      in
      let dropped = ref 0 in
      List.iter
        (fun e ->
          match Engine.offer eng e with
          | `Dropped_late -> incr dropped
          | `Applied | `Commuted | `Replayed _ -> ())
        scrambled;
      Engine.finalize eng;
      let ooo = passed_of (Engine.report eng) in
      let settlement_stable =
        List.for_all
          (fun (l, p) ->
            match Hashtbl.find_opt settled_at l with
            | Some s -> s = p
            | None -> true)
          ooo
      in
      !dropped = 0 && batch = buffered && buffered = ooo && settlement_stable)

(* ---- observability ---------------------------------------------------- *)

let test_metrics_reconcile_with_stats () =
  let metrics = Metrics.create () in
  let eng =
    Engine.create ~metrics ~lateness:ipu_lateness (to_engine_suite ipu_suite)
  in
  List.iter (fun e -> ignore (Engine.offer eng e)) (ipu_ooo_trace ());
  Engine.finalize eng;
  let stats = Engine.stats eng in
  let counter n = Metrics.read_counter metrics ~name:n () in
  let gauge n = Metrics.read_gauge metrics ~name:n () in
  Alcotest.(check (option int))
    "commute hits" (Some stats.Engine.commute_hits)
    (counter "loseq_ooo_commute_hits_total");
  Alcotest.(check (option int))
    "late arrivals" (Some stats.Engine.late)
    (counter "loseq_ooo_late_events_total");
  Alcotest.(check (option int))
    "rollbacks" (Some stats.Engine.rollbacks)
    (counter "loseq_ooo_rollbacks_total");
  Alcotest.(check (option int))
    "replayed" (Some stats.Engine.replayed)
    (counter "loseq_ooo_replayed_events_total");
  Alcotest.(check (option int))
    "dropped late" (Some stats.Engine.dropped_late)
    (counter "loseq_ooo_dropped_late_total");
  Alcotest.(check (option int))
    "settlements" (Some stats.Engine.settled_events)
    (counter "loseq_ooo_settled_total");
  Alcotest.(check (option int))
    "snapshots" (Some stats.Engine.snapshots)
    (counter "loseq_ooo_snapshots_total");
  Alcotest.(check (option int))
    "journal depth gauge" (Some (Engine.journal_depth eng))
    (gauge "loseq_ooo_journal_depth");
  Alcotest.(check (option int))
    "watermark gauge" (Some (Engine.watermark eng))
    (gauge "loseq_ooo_watermark")

(* ---- usage text pins (serve/check/suite --help) ----------------------- *)

let test_backend_doc_covers_every_backend () =
  Alcotest.(check (list string))
    "the four backends" [ "direct"; "compiled"; "flat"; "psl" ]
    Cli_doc.backend_names;
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "--backend doc mentions %s" b)
        true
        (contains Cli_doc.backend_doc b))
    Cli_doc.backend_names

let test_serve_modes_doc_pins_ooo () =
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "serve usage mentions %s" needle)
        true
        (contains Cli_doc.serve_modes_doc needle))
    [ "--ooo"; "--lateness"; "speculative"; "settled"; "retracted" ];
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "--ooo doc mentions %s" needle)
        true
        (contains Cli_doc.ooo_doc needle))
    [ "--checkpoint"; "--resume"; "rollback" ]

let () =
  Alcotest.run "ooo"
    [
      ( "twin-trace",
        [
          Alcotest.test_case "sorts back to ipu.csv" `Quick test_twin_sorts_back;
          Alcotest.test_case "required lateness is 75000" `Quick
            test_twin_required_lateness;
          Alcotest.test_case "engine matches batch" `Quick
            test_twin_engine_matches_batch;
          Alcotest.test_case "engine matches buffered rendering" `Quick
            test_twin_engine_matches_buffered_rendering;
        ] );
      ( "speculation",
        [
          Alcotest.test_case "rollback retracts" `Quick
            test_rollback_retracts_speculative_violation;
          Alcotest.test_case "commute fast path" `Quick
            test_commute_fast_path_in_place;
          Alcotest.test_case "foreign late bypass" `Quick
            test_foreign_late_bypasses;
          Alcotest.test_case "dropped-late boundary" `Quick
            test_dropped_late_boundary;
          Alcotest.test_case "settlement follows watermark" `Quick
            test_settlement_follows_watermark;
        ] );
      ("equivalence", [ test_permutation_equivalence ]);
      ( "observability",
        [
          Alcotest.test_case "metrics reconcile" `Quick
            test_metrics_reconcile_with_stats;
        ] );
      ( "usage",
        [
          Alcotest.test_case "backend doc" `Quick
            test_backend_doc_covers_every_backend;
          Alcotest.test_case "serve modes doc" `Quick
            test_serve_modes_doc_pins_ooo;
        ] );
    ]
