(* The flight-recorder stack: ring semantics (wrap-around with exact
   drop accounting), the NDJSON export round-trip through the core
   Json parser (qcheck), the Chrome export of the committed ipu twin
   trace staying valid JSON with per-thread monotone timestamps, the
   profile quantile estimator, the Prometheus label-value escaping,
   and verdict-provenance capture + 1-minimization + replay. *)

open Loseq_core
open Loseq_verif
open Loseq_ingest
open Loseq_testutil
module Tr = Loseq_obs.Trace
module Profile = Loseq_obs.Profile
module Obs = Loseq_obs.Metrics
module Expo = Loseq_obs.Expo

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let example dir nm =
  let candidates =
    [
      Filename.concat ("examples/" ^ dir) nm;
      Filename.concat ("../examples/" ^ dir) nm;
      Filename.concat ("../../examples/" ^ dir) nm;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let load_suite path =
  match Suite.load path with
  | Ok s -> s
  | Error e -> Alcotest.failf "%a" Suite.pp_error e

let load_csv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match Trace_io.parse_csv_line ~lineno line with
            | Ok (Some e) -> go (lineno + 1) (e :: acc)
            | Ok None -> go (lineno + 1) acc
            | Error msg -> Alcotest.failf "%s: %s" path msg)
      in
      go 1 [])

(* ---- ring semantics ---------------------------------------------------- *)

let test_ring_wraparound () =
  let tr = Tr.create ~capacity:8 () in
  let c = Tr.intern tr ~track:"t" "tick" in
  for i = 0 to 19 do
    Tr.emit_at tr ~ts_ns:(1000 + i) c Tr.Instant i
  done;
  Alcotest.(check int) "capacity rounded" 8 (Tr.capacity tr);
  Alcotest.(check int) "length is the window" 8 (Tr.length tr);
  Alcotest.(check int) "total counts every emission" 20 (Tr.total tr);
  Alcotest.(check int) "dropped = total - length" 12 (Tr.dropped tr);
  Alcotest.(check (list int))
    "the most recent window survives, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (r : Tr.record) -> r.arg) (Tr.records tr))

let test_noop_records_nothing () =
  Alcotest.(check bool) "noop is not live" false (Tr.is_live Tr.noop);
  Alcotest.(check bool) "a ring is live" true (Tr.is_live (Tr.create ()));
  let c = Tr.intern Tr.noop ~track:"t" "tick" in
  Tr.emit Tr.noop c Tr.Instant 1;
  Alcotest.(check int) "noop retains nothing" 0 (Tr.length Tr.noop);
  Alcotest.(check int) "noop counts nothing" 0 (Tr.total Tr.noop)

(* ---- NDJSON round-trip (qcheck) ---------------------------------------- *)

let kind_of_string = function
  | "span_begin" -> Tr.Span_begin
  | "span_end" -> Tr.Span_end
  | "instant" -> Tr.Instant
  | "count" -> Tr.Count
  | s -> Alcotest.failf "unknown kind %S" s

(* Category pool with every escaping hazard the exporter handles. *)
let pool =
  [|
    ("hub", "dispatch");
    ("ingest", "a\"quote");
    ("ooo", "back\\slash");
    ("hub", "new\nline");
    ("ingest", "tab\there");
  |]

let parse_ndjson s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map (fun line ->
         match Json.of_string line with
         | Error msg -> Alcotest.failf "NDJSON line %S: %s" line msg
         | Ok json ->
             let str k =
               match Option.bind (Json.member k json) Json.to_string_opt with
               | Some v -> v
               | None -> Alcotest.failf "no %S in %s" k line
             in
             let int k =
               match Json.member k json with
               | Some (Json.Int i) -> i
               | _ -> Alcotest.failf "no int %S in %s" k line
             in
             {
               Tr.ts_ns = int "ts_ns";
               track = str "track";
               name = str "name";
               kind = kind_of_string (str "kind");
               arg = int "arg";
             })

let record_gen =
  QCheck2.Gen.(
    quad (int_bound (Array.length pool - 1))
      (oneofl [ Tr.Span_begin; Tr.Span_end; Tr.Instant; Tr.Count ])
      (int_bound 1_000_000) (int_bound 500))

let test_ndjson_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"ndjson export parses back to the ring"
    QCheck2.Gen.(list_size (int_bound 60) record_gen)
    (fun specs ->
      let tr = Tr.create ~capacity:64 () in
      let cats =
        Array.map (fun (track, nm) -> Tr.intern tr ~track nm) pool
      in
      let ts = ref 0 in
      List.iter
        (fun (ci, kind, arg, dt) ->
          ts := !ts + dt;
          Tr.emit_at tr ~ts_ns:!ts cats.(ci) kind arg)
        specs;
      parse_ndjson (Tr.to_ndjson tr) = Tr.records tr)

(* ---- Chrome export of the ipu twin trace ------------------------------- *)

(* The committed out-of-order twin, hosted with the recorder live, must
   export a Chrome trace that (a) is valid JSON and (b) keeps [ts]
   non-decreasing within every thread lane — the invariant trace
   viewers assume and the eager span-begin discipline exists for. *)
let test_chrome_ipu_twin () =
  let suite = load_suite (example "specs" "ipu.suite") in
  let events = load_csv (example "traces" "ipu_ooo.csv") in
  let tr = Tr.create () in
  let session = Session.create ~trace:tr ~lateness:75_000 suite in
  List.iter (Session.offer_force session) events;
  ignore (Session.finalize session);
  Alcotest.(check bool) "the run recorded something" true (Tr.total tr > 0);
  match Json.of_string (Tr.to_chrome tr) with
  | Error msg -> Alcotest.failf "chrome export is not JSON: %s" msg
  | Ok json -> (
      match Option.bind (Json.member "traceEvents" json) Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some evs ->
          let last = Hashtbl.create 4 in
          let checked = ref 0 in
          List.iter
            (fun ev ->
              match
                (Json.member "ph" ev, Json.member "tid" ev, Json.member "ts" ev)
              with
              | Some (Json.String "M"), _, _ -> ()
              | _, Some (Json.Int tid), Some ts ->
                  let ts =
                    match ts with
                    | Json.Float f -> f
                    | Json.Int i -> float_of_int i
                    | _ -> Alcotest.fail "ts is not a number"
                  in
                  let prev =
                    Option.value ~default:neg_infinity
                      (Hashtbl.find_opt last tid)
                  in
                  if ts < prev then
                    Alcotest.failf "ts regressed on tid %d: %f after %f" tid
                      ts prev;
                  Hashtbl.replace last tid ts;
                  incr checked
              | _ -> Alcotest.fail "record without tid/ts")
            evs;
          Alcotest.(check bool) "saw timed records" true (!checked > 0);
          match Json.member "otherData" json with
          | Some od -> (
              match Json.member "dropped" od with
              | Some (Json.Int d) ->
                  Alcotest.(check int) "drop count rides along" (Tr.dropped tr)
                    d
              | _ -> Alcotest.fail "no dropped count")
          | None -> Alcotest.fail "no otherData")

(* ---- quantiles --------------------------------------------------------- *)

let test_quantile () =
  let buckets = [| (100, 5); (200, 10) |] in
  Alcotest.(check (float 1e-9))
    "p50 at the first bucket edge" 100.
    (Profile.quantile ~count:10 ~buckets 0.5);
  Alcotest.(check (float 1e-9))
    "p90 interpolates within the second bucket" 180.
    (Profile.quantile ~count:10 ~buckets 0.9);
  Alcotest.(check (float 1e-9))
    "p99 interpolates within the second bucket" 198.
    (Profile.quantile ~count:10 ~buckets 0.99);
  Alcotest.(check (float 1e-9))
    "mass beyond the last finite bound clamps" 100.
    (Profile.quantile ~count:10 ~buckets:[| (100, 5) |] 0.9);
  Alcotest.(check (float 1e-9))
    "empty histogram" 0.
    (Profile.quantile ~count:0 ~buckets 0.5)

(* ---- Prometheus escaping ----------------------------------------------- *)

let test_prometheus_label_escaping () =
  let m = Obs.create () in
  let c =
    Obs.counter m ~name:"x_total" ~help:"say \"hi\" to\\them"
      ~labels:[ ("path", "a\"b\nc\\d") ]
      ()
  in
  Obs.incr c;
  let text = Expo.prometheus m in
  (* label values escape backslash, double-quote and newline *)
  Alcotest.(check bool)
    "label value escaped" true
    (contains text "path=\"a\\\"b\\nc\\\\d\"");
  (* HELP escapes only backslash and newline — a quote passes through *)
  Alcotest.(check bool)
    "HELP keeps the quote raw" true
    (contains text "# HELP x_total say \"hi\" to\\\\them");
  (* the JSON exposition of the same registry must stay parseable *)
  match Json.of_string (Expo.json m) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "stats.json broken by escaping: %s" msg

(* ---- verdict provenance ------------------------------------------------ *)

let entry label src : Suite.entry = { Suite.label; pattern = pat src; line = 1 }
let ev t nm = Trace.event ~time:t (name nm)

let test_provenance_minimal_chain () =
  let suite = [ entry "p" "{a, b} <<! go" ] in
  let session = Session.create suite in
  let prov = Provenance.create (Hub.tap (Session.hub session)) suite in
  Session.on_violation session (fun ~name v ->
      Provenance.note_violation prov ~label:name v);
  (* noise outside the alphabet, a completed round, then the bare
     trigger: only the last [go] is causally necessary *)
  List.iter
    (Session.offer_force session)
    [ ev 1 "x"; ev 2 "a"; ev 3 "b"; ev 4 "go"; ev 5 "a"; ev 6 "go" ];
  let report = Session.finalize session in
  Alcotest.(check bool) "the run fails" false (Report.all_passed report);
  let captured = Provenance.captured prov "p" in
  Alcotest.(check bool)
    "capture holds only alphabet events" true
    (List.for_all
       (fun (l : Provenance.link) -> Name.to_string l.name <> "x")
       captured);
  Alcotest.(check bool)
    "capture includes the offending event" true
    (List.exists (fun (l : Provenance.link) -> l.time = 6) captured);
  let ft = Session.now session in
  let chain =
    Provenance.minimize ~final_time:ft ~label:"p" (pat "{a, b} <<! go")
      captured
  in
  Alcotest.(check (list (pair int string)))
    "1-minimal chain is the bare trigger"
    [ (6, "go") ]
    (List.map
       (fun (l : Provenance.link) -> (l.time, Name.to_string l.name))
       chain);
  Alcotest.(check bool)
    "chain replays to Fail on the compiled backend" false
    (Provenance.replay ~final_time:ft ~label:"p" (pat "{a, b} <<! go") chain);
  Alcotest.(check bool)
    "chain replays to Fail on the flat backend" false
    (Provenance.replay ~backend:Backend.flat ~final_time:ft ~label:"p"
       (pat "{a, b} <<! go") chain);
  (* the JSON rendering parses back to the same chain *)
  let json = Provenance.chain_json ?violation:(Provenance.violation_of prov "p") chain in
  match Provenance.chain_of_json json with
  | Error msg -> Alcotest.failf "chain_of_json: %s" msg
  | Ok back ->
      Alcotest.(check (list (pair int string)))
        "chain_json round-trips"
        (List.map
           (fun (l : Provenance.link) -> (l.time, Name.to_string l.name))
           chain)
        (List.map
           (fun (l : Provenance.link) -> (l.time, Name.to_string l.name))
           back)

let test_provenance_retraction () =
  let suite = [ entry "p" "{a, b} <<! go" ] in
  let prov = Provenance.create_detached suite in
  Provenance.record prov ~time:2 (name "b");
  Provenance.note_violation prov ~label:"p"
    {
      Diag.time = 2;
      index = -1;
      fragment = 0;
      name = Some (name "b");
      reason = Diag.After_name;
    };
  Alcotest.(check bool) "violation noted" true
    (Provenance.violation_of prov "p" <> None);
  Provenance.clear_violation prov ~label:"p";
  Alcotest.(check bool) "retraction clears it" true
    (Provenance.violation_of prov "p" = None);
  Alcotest.(check (list (pair string int)))
    "seen counts per-entry alphabet events"
    [ ("p", 1) ]
    (Provenance.seen prov)

(* ------------------------------------------------------------------------ *)

let () =
  Alcotest.run "flightrec"
    [
      ( "ring",
        [
          Alcotest.test_case "wrap-around drops oldest" `Quick
            test_ring_wraparound;
          Alcotest.test_case "noop records nothing" `Quick
            test_noop_records_nothing;
        ] );
      ( "exports",
        [
          QCheck_alcotest.to_alcotest test_ndjson_roundtrip;
          Alcotest.test_case "chrome export of the ipu twin" `Quick
            test_chrome_ipu_twin;
        ] );
      ( "profile",
        [ Alcotest.test_case "quantile estimator" `Quick test_quantile ] );
      ( "expo",
        [
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_label_escaping;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "minimal causal chain" `Quick
            test_provenance_minimal_chain;
          Alcotest.test_case "retraction + seen counts" `Quick
            test_provenance_retraction;
        ] );
    ]
