open Loseq_core
open Loseq_testutil

let n = name

let set l = Name.set_of_list (List.map n l)

let check_set msg expected actual =
  Alcotest.(check (list string))
    msg
    (List.sort compare expected)
    (List.map Name.to_string (Name.Set.elements actual))

(* The worked example of Fig. 4:
   (({n1, n2}, and) < ({n3[2,8] | n4}, or) < n5 << i, false). *)
let fig4 = pat "{n1, n2} < {n3[2,8] | n4} < n5 << i"

let contexts_of p = List.concat (Context.of_pattern p)

let find_ctx p nm =
  List.find
    (fun ctx -> Name.equal ctx.Context.range.Pattern.name (n nm))
    (contexts_of p)

let test_fig4_n3 () =
  let ctx = find_ctx fig4 "n3" in
  Alcotest.(check bool) "s = or" true (ctx.Context.connective = Pattern.Any);
  check_set "B" [ "n1"; "n2" ] ctx.Context.before;
  check_set "C" [ "n4" ] ctx.Context.current;
  check_set "Ac" [ "n5" ] ctx.Context.accept;
  check_set "Af" [ "i" ] ctx.Context.after;
  Alcotest.(check int) "fragment index" 1 ctx.Context.fragment_index

let test_fig4_n1 () =
  let ctx = find_ctx fig4 "n1" in
  Alcotest.(check bool) "s = and" true (ctx.Context.connective = Pattern.All);
  check_set "B" [] ctx.Context.before;
  check_set "C" [ "n2" ] ctx.Context.current;
  check_set "Ac" [ "n3"; "n4" ] ctx.Context.accept;
  check_set "Af" [ "n5"; "i" ] ctx.Context.after

let test_fig4_n5 () =
  let ctx = find_ctx fig4 "n5" in
  check_set "B" [ "n1"; "n2"; "n3"; "n4" ] ctx.Context.before;
  check_set "C" [] ctx.Context.current;
  check_set "Ac" [ "i" ] ctx.Context.accept;
  check_set "Af" [] ctx.Context.after

let test_classify_priorities () =
  let ctx = find_ctx fig4 "n3" in
  let cat nm = Context.classify ctx (n nm) in
  Alcotest.(check bool) "self" true (cat "n3" = Context.Self);
  Alcotest.(check bool) "current" true (cat "n4" = Context.Current);
  Alcotest.(check bool) "before" true (cat "n1" = Context.Before);
  Alcotest.(check bool) "accept" true (cat "n5" = Context.Accept);
  Alcotest.(check bool) "after" true (cat "i" = Context.After);
  Alcotest.(check bool) "outside" true (cat "zzz" = Context.Outside)

let test_timed_terminators () =
  let p = pat "a < b => c within 10" in
  Alcotest.(check bool) "terminators = alpha(F1 of P)" true
    (Name.Set.equal (Context.terminators p) (set [ "a" ]))

let test_timed_last_fragment_accepts_restart () =
  let p = pat "a => b < c within 10" in
  let ctx = find_ctx p "c" in
  (* The restart name 'a' is Accept for the last fragment even though it
     also belongs to an earlier fragment. *)
  Alcotest.(check bool) "accept beats before" true
    (Context.classify ctx (n "a") = Context.Accept)

let test_timed_middle_fragment_before () =
  let p = pat "a => b < c within 10" in
  let ctx = find_ctx p "b" in
  Alcotest.(check bool) "a is Before for middle fragment" true
    (Context.classify ctx (n "a") = Context.Before)

let test_af_deduplicated () =
  (* For (n1 => n2<n3<n4): Fig. 6 row 5's context sizes must total 13
     (that is what makes the paper's 1051-bit figure come out). *)
  let p = pat "n1 => n2 < n3 < n4 within 1000" in
  let sizes = List.map Context.size (contexts_of p) in
  Alcotest.(check (list int)) "sizes" [ 3; 3; 3; 4 ] sizes

let test_antecedent_sizes () =
  let p = pat "{n1, n2, n3, n4} << i" in
  let sizes = List.map Context.size (contexts_of p) in
  Alcotest.(check (list int)) "sizes" [ 4; 4; 4; 4 ] sizes

let qcheck_classification_total_and_disjoint =
  qtest ~count:400 "every alphabet name classifies uniquely per context"
    gen_pattern
    (fun p -> Pattern.to_string p)
    (fun p ->
      let contexts = contexts_of p in
      let alpha = Pattern.alpha p in
      List.for_all
        (fun ctx ->
          Name.Set.for_all
            (fun nm ->
              match Context.classify ctx nm with
              | Context.Outside -> false (* alphabet names never Outside *)
              | Context.Self | Context.Current | Context.Before
              | Context.Accept | Context.After ->
                  true)
            alpha)
        contexts)

let qcheck_self_is_own_name =
  qtest ~count:300 "Self iff the range's own name" gen_pattern
    (fun p -> Pattern.to_string p)
    (fun p ->
      List.for_all
        (fun ctx ->
          Context.classify ctx ctx.Context.range.Pattern.name = Context.Self)
        (contexts_of p))

let () =
  Alcotest.run "context"
    [
      ( "fig4",
        [
          Alcotest.test_case "n3 attributes" `Quick test_fig4_n3;
          Alcotest.test_case "n1 attributes" `Quick test_fig4_n1;
          Alcotest.test_case "n5 attributes" `Quick test_fig4_n5;
          Alcotest.test_case "classification" `Quick test_classify_priorities;
        ] );
      ( "timed",
        [
          Alcotest.test_case "terminators" `Quick test_timed_terminators;
          Alcotest.test_case "restart is Accept" `Quick
            test_timed_last_fragment_accepts_restart;
          Alcotest.test_case "middle fragment Before" `Quick
            test_timed_middle_fragment_before;
          Alcotest.test_case "Af deduplication (Fig. 6 row 5)" `Quick
            test_af_deduplicated;
          Alcotest.test_case "antecedent sizes (Fig. 6 row 3)" `Quick
            test_antecedent_sizes;
        ] );
      ( "properties",
        [ qcheck_classification_total_and_disjoint; qcheck_self_is_own_name ]
      );
    ]
