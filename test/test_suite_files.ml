open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_testutil

let ipu_suite_source =
  "# The IPU interface contract (paper, Section 3)\n\
   config_before_start: {set_imgAddr, set_glAddr, set_glSize} << start\n\
   \n\
   # 60 us in picoseconds\n\
   recognition_deadline: start => read_img[100,60000] < set_irq within \
   60000000\n"

let test_parse_ok () =
  match Suite.parse ipu_suite_source with
  | Ok suite ->
      Alcotest.(check int) "two entries" 2 (List.length suite);
      Alcotest.(check (list string)) "labels"
        [ "config_before_start"; "recognition_deadline" ]
        (List.map (fun (e : Suite.entry) -> e.Suite.label) suite)
  | Error e -> Alcotest.failf "parse failed: %a" Suite.pp_error e

let test_find () =
  match Suite.parse ipu_suite_source with
  | Ok suite ->
      Alcotest.(check bool) "found" true
        (Suite.find suite "config_before_start" <> None);
      Alcotest.(check bool) "missing" true
        (Suite.find suite "nope" = None)
  | Error e -> Alcotest.failf "parse failed: %a" Suite.pp_error e

let expect_error_at source line =
  match Suite.parse source with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check int) "line" line e.Suite.line

let test_parse_errors () =
  expect_error_at "just a line without colon\n" 1;
  expect_error_at "ok: a << i\nbad name!: a << i\n" 2;
  expect_error_at "x: a << i\nx: b << i\n" 2;
  expect_error_at "x: not a pattern ((\n" 1;
  expect_error_at "# fine\n\nbroken: {a, a} << i\n" 3

let test_roundtrip () =
  match Suite.parse ipu_suite_source with
  | Error e -> Alcotest.failf "parse failed: %a" Suite.pp_error e
  | Ok suite -> (
      match Suite.parse (Suite.to_string suite) with
      | Ok suite' ->
          Alcotest.(check int) "same size" (List.length suite)
            (List.length suite');
          List.iter2
            (fun (a : Suite.entry) (b : Suite.entry) ->
              Alcotest.(check string) "label" a.Suite.label b.Suite.label;
              Alcotest.check pattern_testable "pattern" a.Suite.pattern
                b.Suite.pattern)
            suite suite'
      | Error e -> Alcotest.failf "reparse failed: %a" Suite.pp_error e)

let test_load_missing_file () =
  match Suite.load "/nonexistent/properties.loseq" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check int) "line 0" 0 e.Suite.line

let test_load_file_roundtrip () =
  let path = Filename.temp_file "loseq" ".properties" in
  let oc = open_out path in
  output_string oc ipu_suite_source;
  close_out oc;
  let result = Suite.load path in
  Sys.remove path;
  match result with
  | Ok suite -> Alcotest.(check int) "entries" 2 (List.length suite)
  | Error e -> Alcotest.failf "load failed: %a" Suite.pp_error e

let test_check_trace () =
  match Suite.parse "cfg: {a, b} << go\nsafety: x <<! y\n" with
  | Error e -> Alcotest.failf "parse failed: %a" Suite.pp_error e
  | Ok suite ->
      let results = Suite.check_trace suite (tr [ "a"; "b"; "go"; "y" ]) in
      Alcotest.(check (list (pair string bool)))
        "verdicts"
        [ ("cfg", true); ("safety", false) ]
        results

let test_attach_all_live () =
  match Suite.parse "cfg: {a, b} << go\n" with
  | Error e -> Alcotest.failf "parse failed: %a" Suite.pp_error e
  | Ok suite ->
      let kernel = Kernel.create () in
      let tap = Tap.create kernel in
      let report = Suite.attach_all tap suite in
      List.iter (Tap.emit tap) [ "b"; "a"; "go" ];
      Report.finalize report;
      Alcotest.(check bool) "passes" true (Report.all_passed report)

let qcheck_generated_suites_roundtrip =
  qtest ~count:200 "suite rendering round-trips"
    QCheck2.Gen.(
      let* patterns = list_size (int_range 1 5) gen_pattern in
      return patterns)
    (fun patterns ->
      String.concat " ; " (List.map Pattern.to_string patterns))
    (fun patterns ->
      let suite =
        List.mapi
          (fun i p ->
            { Suite.label = Printf.sprintf "p%d" i; pattern = p; line = i + 1 })
          patterns
      in
      match Suite.parse (Suite.to_string suite) with
      | Ok suite' ->
          List.length suite = List.length suite'
          && List.for_all2
               (fun (a : Suite.entry) (b : Suite.entry) ->
                 a.Suite.label = b.Suite.label
                 && Pattern.equal a.Suite.pattern b.Suite.pattern)
               suite suite'
      | Error _ -> false)

let () =
  Alcotest.run "suite-files"
    [
      ( "parsing",
        [
          Alcotest.test_case "ok" `Quick test_parse_ok;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "round trip" `Quick test_roundtrip;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          Alcotest.test_case "file round trip" `Quick
            test_load_file_roundtrip;
          qcheck_generated_suites_roundtrip;
        ] );
      ( "checking",
        [
          Alcotest.test_case "offline" `Quick test_check_trace;
          Alcotest.test_case "live" `Quick test_attach_all_live;
        ] );
    ]
