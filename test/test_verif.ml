open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_testutil

let test_tap_records_with_time () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  Kernel.spawn k (fun () ->
      Tap.emit tap "a";
      Kernel.wait_for k (Time.ns 10);
      Tap.emit tap "b");
  Kernel.run k;
  match Tap.trace tap with
  | [ e1; e2 ] ->
      Alcotest.(check string) "first" "a" (Name.to_string e1.Trace.name);
      Alcotest.(check int) "t1" 0 e1.Trace.time;
      Alcotest.(check int) "t2" 10_000 e2.Trace.time
  | _ -> Alcotest.fail "expected two events"

let test_tap_subscribers_in_order () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let log = ref [] in
  Tap.subscribe tap (fun _ -> log := "first" :: !log);
  Tap.subscribe tap (fun _ -> log := "second" :: !log);
  Tap.emit tap "x";
  Alcotest.(check (list string)) "order" [ "first"; "second" ] (List.rev !log)

let test_tap_no_record_mode () =
  let k = Kernel.create () in
  let tap = Tap.create ~record:false k in
  Tap.emit tap "x";
  Alcotest.(check int) "not recorded" 0 (List.length (Tap.trace tap));
  Alcotest.(check int) "still counted" 1 (Tap.count tap)

let test_checker_passes_good_trace () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let checker = Checker.attach tap (pat "{a, b} << go") in
  List.iter (Tap.emit tap) [ "b"; "a"; "go" ];
  Alcotest.(check bool) "passed" true (Checker.passed checker);
  Alcotest.check verdict_testable "satisfied" Monitor.Satisfied
    (Checker.verdict checker)

let test_checker_reports_violation_once () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let checker = Checker.attach tap (pat "a << go") in
  let hits = ref 0 in
  Checker.on_violation checker (fun _ -> incr hits);
  List.iter (Tap.emit tap) [ "go"; "go"; "a" ];
  Alcotest.(check int) "one callback" 1 !hits;
  Alcotest.(check bool) "failed" false (Checker.passed checker)

let test_checker_deadline_timeout_fires () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  (* 1000 ps deadline. *)
  let checker = Checker.attach tap (pat "req => ack within 1000") in
  Kernel.spawn k (fun () ->
      Tap.emit tap "req";
      (* Never ack; just let time pass. *)
      Kernel.wait_for k (Time.ns 100));
  Kernel.run k;
  (match Checker.verdict checker with
  | Monitor.Violated { reason = Diag.Deadline_miss _; _ } -> ()
  | _ -> Alcotest.fail "expected Deadline_miss via kernel timeout");
  Alcotest.(check int) "events seen" 1 (Checker.events_seen checker)

let test_checker_deadline_rescheduled_per_round () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let checker = Checker.attach tap (pat "req => ack within 1000") in
  Kernel.spawn k (fun () ->
      Tap.emit tap "req";
      Kernel.wait_for k (Time.ps 500);
      Tap.emit tap "ack";
      Kernel.wait_for k (Time.ns 50);
      Tap.emit tap "req";
      Kernel.wait_for k (Time.ps 800);
      Tap.emit tap "ack");
  Kernel.run k;
  Alcotest.(check bool) "both rounds in time" true (Checker.passed checker)

let test_checker_finalize_checks_pending_deadline () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let checker = Checker.attach tap (pat "req => ack within 1000000000") in
  Tap.emit tap "req";
  (* Deadline far away: finalize at current time must NOT fail... *)
  Alcotest.(check bool) "still pending" true
    (match Checker.finalize checker with
    | Monitor.Running -> true
    | _ -> false)

let test_stimuli_replay_timing () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  Stimuli.replay tap
    [ Trace.event ~time:100 (name "a"); Trace.event ~time:250 (name "b") ];
  Kernel.run k;
  match Tap.trace tap with
  | [ e1; e2 ] ->
      Alcotest.(check int) "a at 100 ps" 100 e1.Trace.time;
      Alcotest.(check int) "b at 250 ps" 250 e2.Trace.time
  | _ -> Alcotest.fail "two events expected"

let test_stimuli_drive_valid_passes () =
  let p = pat "{a, b} <<! go" in
  let k = Kernel.create () in
  let tap = Tap.create k in
  let checker = Checker.attach tap p in
  Stimuli.drive_valid ~rounds:4 tap p;
  Kernel.run k;
  Alcotest.(check bool) "valid stimuli pass" true (Checker.passed checker);
  Alcotest.(check bool) "events flowed" true (Tap.count tap > 0)

let test_stimuli_drive_violating_fails () =
  let p = pat "{a, b} <<! go" in
  let k = Kernel.create () in
  let tap = Tap.create k in
  let checker = Checker.attach tap p in
  let found = Stimuli.drive_violating tap p in
  Kernel.run k;
  Alcotest.(check bool) "found" true found;
  Alcotest.(check bool) "caught" false (Checker.passed checker)

let test_coverage_names () =
  let p = pat "{a, b} << go" in
  let cov = Coverage.create p in
  Coverage.observe_event cov (Trace.event (name "a"));
  Coverage.observe_event cov (Trace.event (name "a"));
  Coverage.observe_event cov (Trace.event (name "zzz"));
  let counts = Coverage.name_counts cov in
  Alcotest.(check int) "alpha size" 3 (List.length counts);
  Alcotest.(check int) "a twice" 2
    (List.assoc (name "a") counts);
  Alcotest.(check int) "b zero" 0 (List.assoc (name "b") counts);
  Alcotest.(check bool) "fraction" true
    (abs_float (Coverage.names_covered cov -. (1. /. 3.)) < 1e-9)

let test_coverage_states () =
  let p = pat "{a, b} << go" in
  let cov = Coverage.create p in
  Alcotest.(check bool) "starts at 0" true (Coverage.states_covered cov = 0.);
  let m = Monitor.create p in
  ignore (Monitor.step_name m (name "a"));
  Coverage.observe_states cov (Monitor.fragment_states m);
  (* Counting + Waiting_started out of 4 reachable kinds. *)
  Alcotest.(check bool) "half covered" true
    (abs_float (Coverage.states_covered cov -. 0.5) < 1e-9)

let test_coverage_rounds_and_violations () =
  let cov = Coverage.create (pat "a << i") in
  Coverage.record_round cov;
  Coverage.record_round cov;
  Coverage.record_violation cov;
  Alcotest.(check int) "rounds" 2 (Coverage.rounds cov);
  Alcotest.(check int) "violations" 1 (Coverage.violations cov)

let test_report_aggregates () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let report = Report.create () in
  Report.add report (Checker.attach ~name:"good" tap (pat "a << go"));
  Report.add report (Checker.attach ~name:"bad" tap (pat "b << go"));
  List.iter (Tap.emit tap) [ "a"; "go" ];
  Report.finalize report;
  Alcotest.(check bool) "not all passed" false (Report.all_passed report);
  Alcotest.(check int) "one failure" 1 (List.length (Report.failures report));
  Alcotest.(check string) "failure name" "bad"
    (Checker.name (List.hd (Report.failures report)))

let () =
  Alcotest.run "verif"
    [
      ( "tap",
        [
          Alcotest.test_case "records with time" `Quick
            test_tap_records_with_time;
          Alcotest.test_case "subscriber order" `Quick
            test_tap_subscribers_in_order;
          Alcotest.test_case "no-record mode" `Quick test_tap_no_record_mode;
        ] );
      ( "checker",
        [
          Alcotest.test_case "passes" `Quick test_checker_passes_good_trace;
          Alcotest.test_case "violation callback" `Quick
            test_checker_reports_violation_once;
          Alcotest.test_case "deadline timeout" `Quick
            test_checker_deadline_timeout_fires;
          Alcotest.test_case "deadline rescheduling" `Quick
            test_checker_deadline_rescheduled_per_round;
          Alcotest.test_case "finalize pending" `Quick
            test_checker_finalize_checks_pending_deadline;
        ] );
      ( "stimuli",
        [
          Alcotest.test_case "replay timing" `Quick test_stimuli_replay_timing;
          Alcotest.test_case "drive valid" `Quick
            test_stimuli_drive_valid_passes;
          Alcotest.test_case "drive violating" `Quick
            test_stimuli_drive_violating_fails;
        ] );
      ( "coverage & report",
        [
          Alcotest.test_case "names" `Quick test_coverage_names;
          Alcotest.test_case "states" `Quick test_coverage_states;
          Alcotest.test_case "rounds" `Quick
            test_coverage_rounds_and_violations;
          Alcotest.test_case "report" `Quick test_report_aggregates;
        ] );
    ]
