(* The semantic analyzer: deterministic checks on the committed example
   suites, SARIF well-formedness, and qcheck cross-validation of the
   abstract machine's verdicts against the concrete compiled monitors. *)

open Loseq_core
open Loseq_analysis
open Loseq_testutil

let load path =
  match Loseq_verif.Suite.load path with
  | Ok s -> s
  | Error e -> Alcotest.failf "%a" Loseq_verif.Suite.pp_error e

let analyze_file path =
  Analysis.analyze
    (List.map
       (fun (e : Loseq_verif.Suite.entry) ->
         Analysis.item ~file:path ~line:e.line e.label e.pattern)
       (load path))

let codes fs = List.map (fun (f : Finding.t) -> f.Finding.code) fs

(* Locate a committed spec whether the binary runs from the workspace
   root (dune exec) or the test directory (dune runtest). *)
let spec name =
  let candidates =
    [
      Filename.concat "examples/specs" name;
      Filename.concat "../examples/specs" name;
      Filename.concat "../../examples/specs" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let ipu = spec "ipu.suite"
let defective = spec "defective.suite"

(* Step a compiled monitor through the events of [trace] that belong to
   its alphabet — the suite semantics: a monitor only sees its own
   names. *)
let replay c trace =
  let alpha = Compiled.alphabet c in
  List.iter
    (fun (ev : Trace.event) ->
      if Name.Set.mem ev.name alpha then ignore (Compiled.step c ev))
    trace

let violated c =
  match Compiled.verdict c with Compiled.Violated _ -> true | _ -> false

(* ---- the committed example suites ------------------------------------ *)

let test_defective_suite () =
  let fs = analyze_file defective in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " found") true (List.mem code (codes fs)))
    [
      "vacuous-unviolatable";
      "deadline-infeasible";
      "subsumed-checker";
      "conflicting-pair";
    ];
  Alcotest.(check int) "exit code 2" 2 (Finding.exit_code fs);
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool) "origin file attached" true (f.file <> None))
    fs;
  let conflict =
    List.find (fun (f : Finding.t) -> f.code = "conflicting-pair") fs
  in
  Alcotest.(check (option string))
    "conflict names both entries"
    (Some "ping_pong, pong_ping")
    conflict.subject

let test_ipu_suite () =
  let fs = analyze_file ipu in
  Alcotest.(check bool)
    "no error finding" true
    (List.for_all (fun (f : Finding.t) -> f.severity <> Finding.Error) fs);
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (code ^ " absent") false
        (List.mem code (codes fs)))
    [
      "vacuous-unviolatable";
      "deadline-infeasible";
      "subsumed-checker";
      "equivalent-checkers";
      "conflicting-pair";
    ];
  Alcotest.(check bool) "exit <= 1" true (Finding.exit_code fs <= 1)

(* ---- SARIF ----------------------------------------------------------- *)

let test_sarif_well_formed () =
  let fs = analyze_file defective in
  let text =
    Format.asprintf "%a"
      (fun ppf -> Finding.render ~rules:Analysis.rules Finding.Sarif ppf)
      fs
  in
  let json =
    match Json.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "SARIF does not parse: %s" e
  in
  let str path j =
    match Option.bind (Json.member path j) Json.to_string_opt with
    | Some s -> s
    | None -> Alcotest.failf "missing %S" path
  in
  Alcotest.(check bool)
    "$schema names 2.1.0" true
    (let s = str "$schema" json in
     let sub = "sarif-2.1.0" in
     let n = String.length s and m = String.length sub in
     let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
     at 0);
  Alcotest.(check string) "version" "2.1.0" (str "version" json);
  let runs =
    match Option.bind (Json.member "runs" json) Json.to_list_opt with
    | Some [ run ] -> run
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver =
    match
      Option.bind (Json.member "tool" runs) (Json.member "driver")
    with
    | Some d -> d
    | None -> Alcotest.fail "missing tool.driver"
  in
  Alcotest.(check string) "tool name" "loseq" (str "name" driver);
  let rule_ids =
    match Option.bind (Json.member "rules" driver) Json.to_list_opt with
    | Some rules -> List.map (str "id") rules
    | None -> Alcotest.fail "missing driver.rules"
  in
  let results =
    match Option.bind (Json.member "results" runs) Json.to_list_opt with
    | Some rs -> rs
    | None -> Alcotest.fail "missing results"
  in
  Alcotest.(check int) "one result per finding" (List.length fs)
    (List.length results);
  List.iter
    (fun r ->
      let id = str "ruleId" r in
      Alcotest.(check bool)
        (id ^ " resolves to a rule")
        true (List.mem id rule_ids))
    results

(* ---- exit codes and suppression -------------------------------------- *)

let test_exit_and_suppress () =
  Alcotest.(check int) "empty is clean" 0 (Finding.exit_code []);
  let fs = analyze_file defective in
  let no_errors =
    Finding.suppress [ "deadline-infeasible"; "conflicting-pair" ] fs
  in
  Alcotest.(check int) "errors suppressed" 1 (Finding.exit_code no_errors);
  Alcotest.(check int) "all suppressed" 0
    (Finding.exit_code (Finding.suppress (codes fs) fs))

let test_explain_covers_all_codes () =
  let rule_codes = List.map fst Analysis.rules in
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool)
        (f.code ^ " has a rule entry")
        true (List.mem f.code rule_codes);
      Alcotest.(check bool)
        (f.code ^ " has an explanation")
        true
        (Explain.find f.code <> None))
    (analyze_file defective @ analyze_file ipu)

(* ---- deadline feasibility -------------------------------------------- *)

let deadline_codes d =
  codes (Checks.findings (pat (Printf.sprintf "start => ack[3,8] < done within %d" d)))

let test_deadline_exactness () =
  let r = Checks.report (pat "start => ack[3,8] < done within 2") in
  Alcotest.(check (option int))
    "minimal conclusion events" (Some 4) r.Checks.min_conclusion_events;
  Alcotest.(check bool)
    "infeasible at 2" true
    (List.mem "deadline-infeasible" (deadline_codes 2));
  Alcotest.(check bool)
    "tight at 4" true
    (List.mem "deadline-tight" (deadline_codes 4));
  let loose = deadline_codes 5 in
  Alcotest.(check bool)
    "clean at 5" false
    (List.mem "deadline-infeasible" loose
    || List.mem "deadline-tight" loose)

(* ---- cross-pattern procedures ---------------------------------------- *)

let test_subsumption_direction () =
  let tight = pat "req[1,3] <<! grant" and loose = pat "req[1,8] <<! grant" in
  Alcotest.(check (option bool))
    "loose redundant beside tight" (Some true)
    (Suite_checks.subsumes tight loose);
  Alcotest.(check (option bool))
    "tight not redundant beside loose" (Some false)
    (Suite_checks.subsumes loose tight)

let test_conflict_and_witness () =
  let ab = pat "ping < pong <<! go" and ba = pat "pong < ping <<! go" in
  (match Suite_checks.compatible_witness ab ba with
  | Some (None, true) -> ()
  | _ -> Alcotest.fail "expected a conflict (both matchable, no witness)");
  (* a compatible pair yields a replayable witness *)
  let other = pat "ping < pong <<! stop" in
  match Suite_checks.compatible_witness ab other with
  | Some (Some w, true) ->
      let ca = Compiled.compile (pat "ping < pong <<! go") in
      let cb = Compiled.compile (pat "ping < pong <<! stop") in
      replay ca w;
      replay cb w;
      Alcotest.(check bool) "a matched" true (Compiled.rounds_completed ca >= 1);
      Alcotest.(check bool) "b matched" true (Compiled.rounds_completed cb >= 1);
      Alcotest.(check bool) "neither violated" false (violated ca || violated cb)
  | _ -> Alcotest.fail "expected a compatibility witness"

(* ---- qcheck: abstraction vs the concrete monitor ---------------------- *)

let pp_pattern p = Format.asprintf "%a" Pattern.pp p

let qcheck_violation_witness_replays =
  qtest ~count:150 "violation witnesses replay to concrete violations"
    gen_pattern pp_pattern (fun p ->
      let r = Checks.report p in
      match r.Checks.violation_witness with
      | None -> true
      | Some w -> (
          let c = Compiled.compile p in
          replay c w;
          if r.Checks.time_violation then
            match p with
            | Pattern.Timed g -> (
                match Compiled.finalize c ~now:(g.deadline + 1) with
                | Compiled.Violated _ -> true
                | _ -> false)
            | Pattern.Antecedent _ -> false
          else violated c))

let qcheck_match_witness_replays =
  qtest ~count:150 "match witnesses complete a concrete round" gen_pattern
    pp_pattern (fun p ->
      let r = Checks.report p in
      match r.Checks.match_witness with
      | None -> true
      | Some w ->
          let c = Compiled.compile p in
          replay c w;
          Compiled.rounds_completed c >= 1 && not (violated c))

let qcheck_safe_witness_is_safe =
  qtest ~count:100 "safe witnesses survive any continuation"
    QCheck2.Gen.(pair gen_antecedent (int_bound 1_000_000))
    (fun (p, seed) -> Printf.sprintf "%s (seed %d)" (pp_pattern p) seed)
    (fun (p, seed) ->
      let r = Checks.report p in
      match r.Checks.safe_witness with
      | None -> true
      | Some w ->
          let c = Compiled.compile p in
          replay c w;
          (not (violated c))
          &&
          let rng = Random.State.make [| seed |] in
          let alpha =
            Array.of_list (Name.Set.elements (Pattern.alpha p))
          in
          let time = ref (Trace.end_time w) in
          let ok = ref true in
          for _ = 1 to 30 do
            incr time;
            let name = alpha.(Random.State.int rng (Array.length alpha)) in
            ignore (Compiled.step c { Trace.name; time = !time });
            if violated c then ok := false
          done;
          !ok)

let qcheck_min_events_cross_validates_lint =
  qtest ~count:150 "automaton deadline bound equals Lint.min_events"
    gen_timed pp_pattern (fun p ->
      let r = Checks.report p in
      match (p, r.Checks.min_conclusion_events) with
      | Pattern.Timed g, Some m ->
          (not r.Checks.complete) || m = Lint.min_events g.conclusion
      | _, None -> not r.Checks.complete
      | Pattern.Antecedent _, _ -> false)

let qcheck_subsumption_cross_validation =
  qtest ~count:100 "violations of a subsumed checker violate the subsumer"
    QCheck2.Gen.(pair (pair gen_antecedent gen_antecedent)
                   (int_bound 1_000_000))
    (fun ((a, b), seed) ->
      Printf.sprintf "a: %s\nb: %s\nseed %d" (pp_pattern a) (pp_pattern b)
        seed)
    (fun ((a, b), seed) ->
      match Suite_checks.subsumes ~budget:20_000 a b with
      | Some true -> (
          (* b is redundant: anything that violates b violates a *)
          let rng = Random.State.make [| seed |] in
          match Generate.violating rng b with
          | None -> true
          | Some trace ->
              let ca = Compiled.compile a and cb = Compiled.compile b in
              replay ca trace;
              replay cb trace;
              (not (violated cb)) || violated ca)
      | _ -> true)

let qcheck_conflict_cross_validation =
  qtest ~count:100 "conflicting pairs never both match on random runs"
    QCheck2.Gen.(pair (pair gen_antecedent gen_antecedent)
                   (int_bound 1_000_000))
    (fun ((a, b), seed) ->
      Printf.sprintf "a: %s\nb: %s\nseed %d" (pp_pattern a) (pp_pattern b)
        seed)
    (fun ((a, b), seed) ->
      match Suite_checks.compatible_witness ~budget:20_000 a b with
      | Some (None, true) ->
          (* conflict: no run may ever have both matched and neither
             violated — check the invariant along random words over the
             union alphabet *)
          let rng = Random.State.make [| seed |] in
          let union =
            Array.of_list
              (Name.Set.elements
                 (Name.Set.union (Pattern.alpha a) (Pattern.alpha b)))
          in
          let ca = Compiled.compile a and cb = Compiled.compile b in
          let ok = ref true in
          for time = 1 to 40 do
            let name = union.(Random.State.int rng (Array.length union)) in
            replay ca [ { Trace.name; time } ];
            replay cb [ { Trace.name; time } ];
            if
              Compiled.rounds_completed ca >= 1
              && Compiled.rounds_completed cb >= 1
              && (not (violated ca))
              && not (violated cb)
            then ok := false
          done;
          !ok
      | _ -> true)

let qcheck_analyze_never_crashes =
  qtest ~count:150 "analyze_pattern total on well-formed patterns"
    gen_pattern pp_pattern (fun p ->
      ignore (Analysis.analyze_pattern p);
      true)

let () =
  Alcotest.run "analysis"
    [
      ( "suites",
        [
          Alcotest.test_case "defective findings" `Quick test_defective_suite;
          Alcotest.test_case "clean ipu contract" `Quick test_ipu_suite;
          Alcotest.test_case "sarif well-formed" `Quick test_sarif_well_formed;
          Alcotest.test_case "exit codes + suppress" `Quick
            test_exit_and_suppress;
          Alcotest.test_case "explain covers all codes" `Quick
            test_explain_covers_all_codes;
        ] );
      ( "procedures",
        [
          Alcotest.test_case "deadline exactness" `Quick
            test_deadline_exactness;
          Alcotest.test_case "subsumption direction" `Quick
            test_subsumption_direction;
          Alcotest.test_case "conflict + witness" `Quick
            test_conflict_and_witness;
        ] );
      ( "cross-validation",
        [
          qcheck_violation_witness_replays;
          qcheck_match_witness_replays;
          qcheck_safe_witness_is_safe;
          qcheck_min_events_cross_validates_lint;
          qcheck_subsumption_cross_validation;
          qcheck_conflict_cross_validation;
          qcheck_analyze_never_crashes;
        ] );
    ]
