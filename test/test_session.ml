(* Streaming sessions: a suite hosted live must decide exactly what the
   batch checker decides, absorb bounded disorder, and exert
   backpressure instead of dying. *)

open Loseq_core
open Loseq_verif
open Loseq_ingest
open Loseq_testutil

let ev t nm = Trace.event ~time:t (name nm)

let entry label src : Suite.entry =
  { Suite.label; pattern = pat src; line = 1 }

let ipu_suite =
  [
    entry "config" "{set_imgAddr, set_glAddr, set_glSize} <<! start";
    entry "bounded" "start => read_img[1,5] < set_irq within 100";
  ]

let offer_all session trace = List.iter (Session.offer_force session) trace

let run_streaming ?lateness ?window suite trace =
  let session = Session.create ?lateness ?window suite in
  offer_all session trace;
  let report = Session.finalize session in
  (session, Report.summary report)

let passed_of summary = List.map (fun (l, v) -> (l, Backend.passed v)) summary

(* ---- agreement with the batch checker --------------------------------- *)

let test_agrees_with_batch_pass () =
  let trace =
    [
      ev 0 "set_imgAddr"; ev 1 "set_glAddr"; ev 2 "set_glSize"; ev 5 "start";
      ev 10 "read_img"; ev 20 "set_irq";
    ]
  in
  let _, summary = run_streaming ipu_suite trace in
  Alcotest.(check (list (pair string bool)))
    "same verdicts" (Suite.check_trace ipu_suite trace) (passed_of summary)

let test_agrees_with_batch_fail () =
  let trace =
    [ ev 0 "set_imgAddr"; ev 1 "start"; ev 2 "read_img"; ev 3 "set_irq" ]
  in
  let _, summary = run_streaming ipu_suite trace in
  Alcotest.(check (list (pair string bool)))
    "same verdicts" (Suite.check_trace ipu_suite trace) (passed_of summary)

let test_deadline_fires_between_events () =
  (* The deadline miss must be reported when simulated time passes it —
     during the stream, not at finalize. *)
  let suite = [ entry "p" "go => done within 10" ] in
  let session = Session.create suite in
  let live = ref None in
  Session.on_violation session (fun ~name:_ v -> live := Some v.Diag.time);
  Session.offer_force session (ev 0 "go");
  Alcotest.(check (option int)) "not yet" None !live;
  Session.offer_force session (ev 50 "other_component");
  Alcotest.(check bool) "reported mid-stream" true (!live <> None);
  ignore (Session.finalize session)

let test_violation_reported_once () =
  let suite = [ entry "p" "a <<! go" ] in
  let session = Session.create suite in
  let hits = ref 0 in
  Session.on_violation session (fun ~name:_ _ -> incr hits);
  offer_all session [ ev 0 "go"; ev 1 "go"; ev 2 "go" ];
  ignore (Session.finalize session);
  Alcotest.(check int) "one report" 1 !hits

(* ---- disorder --------------------------------------------------------- *)

let test_absorbs_disorder () =
  (* b arrives before a in wall-clock order, timestamps disagree: with
     enough lateness the session sees the chronological trace. *)
  let shuffled =
    [ ev 5 "set_glAddr"; ev 0 "set_imgAddr"; ev 3 "set_glSize"; ev 10 "start";
      ev 12 "read_img"; ev 30 "set_irq" ]
  in
  let chronological = List.sort (fun (a : Trace.event) b -> compare a.time b.Trace.time) shuffled in
  let session = Session.create ~lateness:10 ipu_suite in
  offer_all session shuffled;
  let report = Session.finalize session in
  let stats = Session.stats session in
  Alcotest.(check int) "nothing dropped" 0 stats.dropped_late;
  Alcotest.(check bool) "disorder absorbed" true (stats.reordered > 0);
  Alcotest.(check (list (pair string bool)))
    "verdicts = batch on the sorted trace"
    (Suite.check_trace ipu_suite chronological)
    (passed_of (Report.summary report))

let test_drops_late_events () =
  let session = Session.create ~lateness:0 ipu_suite in
  Session.offer_force session (ev 100 "start");
  Session.offer_force session (ev 50 "set_imgAddr");
  let stats = Session.stats session in
  Alcotest.(check int) "late event dropped" 1 stats.dropped_late;
  Alcotest.(check int) "only the first delivered" 1 stats.delivered;
  ignore (Session.finalize session)

let test_backpressure () =
  (* lateness so large nothing ever ripens: the window fills, offer
     blocks, force_drain relieves. *)
  let session = Session.create ~lateness:1_000_000 ~window:2 ipu_suite in
  let offer t = Session.offer session (ev t "set_imgAddr") in
  (match offer 1 with `Accepted -> () | `Blocked -> Alcotest.fail "1 blocked");
  (match offer 2 with `Accepted -> () | `Blocked -> Alcotest.fail "2 blocked");
  (match offer 3 with
  | `Blocked -> ()
  | `Accepted -> Alcotest.fail "expected backpressure");
  Alcotest.(check bool) "force_drain" true (Session.force_drain session);
  (match offer 3 with `Accepted -> () | `Blocked -> Alcotest.fail "still blocked");
  let stats = Session.stats session in
  Alcotest.(check int) "forced counted" 1 stats.forced;
  ignore (Session.finalize session)

(* ---- properties ------------------------------------------------------- *)

(* Generated traces are chronological except for the Delay_conclusion
   mutation; a session is a consumer of chronological streams, so
   stable-sort first (ties keep their order — monitors are sensitive to
   the order of simultaneous events). *)
let chronological trace =
  List.stable_sort
    (fun (a : Trace.event) (b : Trace.event) -> compare a.time b.time)
    trace

(* Any generated pattern + chronological trace: streaming one event at
   a time through the session decides exactly what the batch backend
   decides. *)
let prop_streaming_equals_batch =
  qtest ~count:300 "session = Suite.check_trace" gen_pattern_and_trace
    print_pattern_and_trace (fun (p, trace) ->
      let trace = chronological trace in
      let suite = [ { Suite.label = "p"; pattern = p; line = 1 } ] in
      let session = Session.create suite in
      offer_all session trace;
      let report = Session.finalize session in
      let streaming = passed_of (Report.summary report) in
      streaming = Suite.check_trace suite trace)

(* Jitter a chronological trace within K, stream with lateness K: same
   verdict as the batch run on the clean trace (dropped events would
   break the equivalence, so the property also asserts none dropped). *)
let gen_jittered_case =
  QCheck2.Gen.(
    let* p, trace = gen_pattern_and_trace in
    let* lateness = int_range 1 20 in
    let* seed = int_bound 10_000 in
    return (p, trace, lateness, seed))

(* Bounded shuffle: swap adjacent events while timestamps stay within
   the lateness budget of the maximum seen so far. *)
let jitter ~lateness ~seed trace =
  let arr = Array.of_list trace in
  let rng = Random.State.make [| seed |] in
  let n = Array.length arr in
  for _ = 1 to n * 2 do
    if n > 1 then begin
      let i = Random.State.int rng (n - 1) in
      let a = arr.(i) and b = arr.(i + 1) in
      (* swapping delays [a] by one arrival slot; admissible when its
         timestamp stays within lateness of what now precedes it.
         Never swap ties: the reorder stage is stable, so tie inversion
         would change what the monitors see. *)
      if b.Trace.time <> a.Trace.time && b.Trace.time - a.Trace.time <= lateness
      then begin
        arr.(i) <- b;
        arr.(i + 1) <- a
      end
    end
  done;
  Array.to_list arr

let prop_disorder_absorbed =
  qtest ~count:200 "lateness-K session absorbs K-bounded jitter"
    gen_jittered_case
    (fun (p, trace, lateness, seed) ->
      Printf.sprintf "%s (lateness %d, seed %d)"
        (print_pattern_and_trace (p, trace))
        lateness seed)
    (fun (p, trace, lateness, seed) ->
      let trace = chronological trace in
      let suite = [ { Suite.label = "p"; pattern = p; line = 1 } ] in
      let shuffled = jitter ~lateness ~seed trace in
      let session = Session.create ~lateness suite in
      offer_all session shuffled;
      let report = Session.finalize session in
      let stats = Session.stats session in
      stats.dropped_late = 0
      && passed_of (Report.summary report) = Suite.check_trace suite trace)

let () =
  Alcotest.run "session"
    [
      ( "agreement",
        [
          Alcotest.test_case "passing trace" `Quick test_agrees_with_batch_pass;
          Alcotest.test_case "failing trace" `Quick test_agrees_with_batch_fail;
          Alcotest.test_case "deadline mid-stream" `Quick
            test_deadline_fires_between_events;
          Alcotest.test_case "violation once" `Quick
            test_violation_reported_once;
        ] );
      ( "disorder",
        [
          Alcotest.test_case "absorbs" `Quick test_absorbs_disorder;
          Alcotest.test_case "drops late" `Quick test_drops_late_events;
          Alcotest.test_case "backpressure" `Quick test_backpressure;
        ] );
      ( "properties",
        [ prop_streaming_equals_batch; prop_disorder_absorbed ] );
    ]
