open Loseq_core
open Loseq_testutil

let ev t nm = Trace.event ~time:t (name nm)
let sample = [ ev 0 "a"; ev 5 "b"; ev 5 "c"; ev 12 "a" ]

let event_testable =
  Alcotest.testable Trace.pp_event (fun (x : Trace.event) y ->
      Name.equal x.name y.name && x.time = y.time)

let test_csv_roundtrip () =
  match Trace_io.of_csv (Trace_io.to_csv sample) with
  | Ok trace -> Alcotest.(check (list event_testable)) "roundtrip" sample trace
  | Error msg -> Alcotest.fail msg

let test_csv_comments_and_blanks () =
  match Trace_io.of_csv "# captured by loseq\n\n0,a\n\n7,b\n" with
  | Ok trace -> Alcotest.(check int) "two events" 2 (Trace.length trace)
  | Error msg -> Alcotest.fail msg

let test_csv_errors () =
  let expect_error src =
    match Trace_io.of_csv src with
    | Ok _ -> Alcotest.failf "accepted %S" src
    | Error _ -> ()
  in
  expect_error "not-a-row\n";
  expect_error "xx,a\n";
  expect_error "0,bad name\n";
  expect_error "5,a\n1,b\n"

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "loseq" ".csv" in
  Trace_io.save_csv ~path sample;
  let result = Trace_io.load_csv path in
  Sys.remove path;
  match result with
  | Ok trace -> Alcotest.(check int) "events" 4 (Trace.length trace)
  | Error msg -> Alcotest.fail msg

let test_load_missing () =
  match Trace_io.load_csv "/nonexistent.csv" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let expect_error_mentioning sub result =
  match result with
  | Ok _ -> Alcotest.failf "accepted (expected error mentioning %S)" sub
  | Error msg ->
      let contains =
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" msg sub)
        true contains

let test_csv_error_line_numbers () =
  (* the comment and blank still count as lines: the offending row is
     line 4 *)
  expect_error_mentioning "line 4"
    (Trace_io.of_csv "# header\n0,a\n\nnot-a-row\n");
  expect_error_mentioning "line 3" (Trace_io.of_csv "0,a\n5,b\n1,c\n");
  expect_error_mentioning "line 2" (Trace_io.of_csv "0,a\n-3,b\n")

let test_validator_shared_messages () =
  (* the same validator backs CSV and any other reader: same message
     shape, position supplied by the caller *)
  let v = Trace_io.Validator.create () in
  (match Trace_io.Validator.check v ~pos:"record 7" ~time:5 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "last" 5 (Trace_io.Validator.last v);
  expect_error_mentioning "record 8"
    (Trace_io.Validator.check v ~pos:"record 8" ~time:3);
  (* a rejected timestamp does not advance the validator *)
  Alcotest.(check int) "last unchanged" 5 (Trace_io.Validator.last v)

let test_parse_csv_line_permissive () =
  (* without a validator (the bounded-reorder streaming mode),
     out-of-order lines parse fine... *)
  (match Trace_io.parse_csv_line ~lineno:2 "3,late" with
  | Ok (Some e) -> Alcotest.(check int) "time" 3 e.Trace.time
  | Ok None -> Alcotest.fail "skipped"
  | Error msg -> Alcotest.fail msg);
  (* ...but garbage still does not *)
  expect_error_mentioning "line 9" (Trace_io.parse_csv_line ~lineno:9 "x,y,z,");
  expect_error_mentioning "line 9" (Trace_io.parse_csv_line ~lineno:9 "-1,a")

let test_merge_interleaves () =
  let cpu = [ ev 0 "wr"; ev 10 "wr" ] in
  let ipu = [ ev 5 "rd"; ev 10 "irq" ] in
  let merged = Trace_io.merge [ cpu; ipu ] in
  Alcotest.(check (list string)) "order" [ "wr"; "rd"; "wr"; "irq" ]
    (List.map Name.to_string (Trace.names merged));
  Alcotest.(check bool) "chronological" true (Trace.is_chronological merged)

let test_merge_tie_stability () =
  let first = [ ev 5 "x" ] and second = [ ev 5 "y" ] in
  Alcotest.(check (list string)) "leftmost wins ties" [ "x"; "y" ]
    (List.map Name.to_string (Trace.names (Trace_io.merge [ first; second ])))

let test_window () =
  Alcotest.(check int) "inclusive bounds" 2
    (Trace.length (Trace_io.window ~from:5 ~until:5 sample));
  Alcotest.(check int) "all" 4
    (Trace.length (Trace_io.window ~from:0 ~until:100 sample));
  Alcotest.(check int) "none" 0
    (Trace.length (Trace_io.window ~from:50 ~until:60 sample))

let test_rename () =
  let renamed = Trace_io.rename [ ("a", "set_imgAddr") ] sample in
  Alcotest.(check (list string)) "mapped"
    [ "set_imgAddr"; "b"; "c"; "set_imgAddr" ]
    (List.map Name.to_string (Trace.names renamed))

let test_rename_bad_target () =
  match Trace_io.rename [ ("a", "bad name") ] sample with
  | (_ : Trace.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_counts_and_duration () =
  Alcotest.(check (list (pair string int)))
    "counts"
    [ ("a", 2); ("b", 1); ("c", 1) ]
    (List.map
       (fun (n, c) -> (Name.to_string n, c))
       (Trace_io.counts sample));
  Alcotest.(check int) "duration" 12 (Trace_io.duration sample);
  Alcotest.(check int) "empty duration" 0 (Trace_io.duration [])

let qcheck_csv_roundtrip =
  qtest ~count:300 "CSV round-trips generated traces"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* seed = int_bound 100000 in
      return (p, seed))
    (fun (p, seed) -> Printf.sprintf "%s seed=%d" (Pattern.to_string p) seed)
    (fun (p, seed) ->
      let trace = Generate.valid (Random.State.make [| seed |]) p in
      match Trace_io.of_csv (Trace_io.to_csv trace) with
      | Ok trace' -> trace = trace'
      | Error _ -> false)

let qcheck_merge_chronological =
  qtest ~count:300 "merging chronological traces stays chronological"
    QCheck2.Gen.(
      let* p = gen_pattern in
      let* s1 = int_bound 100000 in
      let* s2 = int_bound 100000 in
      return (p, s1, s2))
    (fun (p, _, _) -> Pattern.to_string p)
    (fun (p, s1, s2) ->
      let t1 = Generate.valid (Random.State.make [| s1 |]) p in
      let t2 = Generate.valid (Random.State.make [| s2 |]) p in
      let merged = Trace_io.merge [ t1; t2 ] in
      Trace.is_chronological merged
      && Trace.length merged = Trace.length t1 + Trace.length t2)

let () =
  Alcotest.run "trace-io"
    [
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "comments" `Quick test_csv_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_csv_errors;
          Alcotest.test_case "file roundtrip" `Quick test_csv_file_roundtrip;
          Alcotest.test_case "missing file" `Quick test_load_missing;
          Alcotest.test_case "error line numbers" `Quick
            test_csv_error_line_numbers;
          Alcotest.test_case "shared validator" `Quick
            test_validator_shared_messages;
          Alcotest.test_case "permissive line parse" `Quick
            test_parse_csv_line_permissive;
          qcheck_csv_roundtrip;
        ] );
      ( "toolkit",
        [
          Alcotest.test_case "merge" `Quick test_merge_interleaves;
          Alcotest.test_case "merge ties" `Quick test_merge_tie_stability;
          Alcotest.test_case "window" `Quick test_window;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "rename bad target" `Quick
            test_rename_bad_target;
          Alcotest.test_case "counts/duration" `Quick
            test_counts_and_duration;
          qcheck_merge_chronological;
        ] );
    ]
