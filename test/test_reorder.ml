(* The watermark reorder buffer: absorption within the lateness bound,
   dropping beyond it, stable chronological release, the backpressure
   window, and checkpoint-grade restore. *)

open Loseq_core
open Loseq_ingest
open Loseq_testutil

let ev t nm = Trace.event ~time:t (name nm)

let drain_all buffer =
  let acc = ref [] in
  ignore (Reorder.drain buffer ~emit:(fun e -> acc := e :: !acc));
  List.rev !acc

let flush_all buffer =
  let acc = ref [] in
  ignore (Reorder.flush buffer ~emit:(fun e -> acc := e :: !acc));
  List.rev !acc

let push_exn buffer e =
  match Reorder.push buffer e with
  | `Queued -> ()
  | `Dropped_late -> Alcotest.failf "dropped: %s" (Trace.to_string [ e ])
  | `Full -> Alcotest.failf "full: %s" (Trace.to_string [ e ])

let times es = List.map (fun (e : Trace.event) -> e.Trace.time) es
let names es = List.map (fun (e : Trace.event) -> Name.to_string e.Trace.name) es

let test_in_order_passthrough () =
  let b = Reorder.create ~lateness:0 () in
  push_exn b (ev 1 "a");
  Alcotest.(check (list int)) "1 ripe" [ 1 ] (times (drain_all b));
  push_exn b (ev 5 "b");
  Alcotest.(check (list int)) "5 ripe" [ 5 ] (times (drain_all b));
  Alcotest.(check bool) "empty" true (Reorder.is_empty b)

let test_absorbs_within_lateness () =
  let b = Reorder.create ~lateness:10 () in
  push_exn b (ev 20 "a");
  push_exn b (ev 15 "b");
  (* 15 and 20 are both above the watermark 20-10=10: held *)
  Alcotest.(check (list int)) "nothing ripe" [] (times (drain_all b));
  push_exn b (ev 31 "c");
  (* watermark 21: releases 15 then 20, in timestamp order *)
  Alcotest.(check (list int)) "sorted release" [ 15; 20 ] (times (drain_all b));
  Alcotest.(check int) "one reordered arrival" 1 (Reorder.reordered b);
  Alcotest.(check (list int)) "flush releases the rest" [ 31 ]
    (times (flush_all b))

let test_drops_beyond_lateness () =
  let b = Reorder.create ~lateness:5 () in
  push_exn b (ev 100 "a");
  (match Reorder.push b (ev 94 "late") with
  | `Dropped_late -> ()
  | `Queued | `Full -> Alcotest.fail "expected a drop");
  Alcotest.(check int) "counted" 1 (Reorder.dropped_late b);
  (* boundary: exactly lateness ticks behind is still admissible *)
  push_exn b (ev 95 "edge");
  Alcotest.(check (list int)) "95 ripe at watermark" [ 95 ]
    (times (drain_all b))

let test_stable_on_ties () =
  let b = Reorder.create ~lateness:100 () in
  List.iter (fun nm -> push_exn b (ev 7 nm)) [ "x"; "y"; "z" ];
  Alcotest.(check (list string)) "arrival order kept" [ "x"; "y"; "z" ]
    (names (flush_all b))

let test_backpressure_window () =
  let b = Reorder.create ~capacity:2 ~lateness:1000 () in
  push_exn b (ev 1 "a");
  push_exn b (ev 2 "b");
  (match Reorder.push b (ev 3 "c") with
  | `Full -> ()
  | `Queued | `Dropped_late -> Alcotest.fail "expected `Full");
  (* `Full must not consume: a force-release makes room and the same
     event then queues *)
  (match Reorder.pop_oldest b with
  | Some e -> Alcotest.(check int) "oldest forced out" 1 e.Trace.time
  | None -> Alcotest.fail "nothing to pop");
  push_exn b (ev 3 "c")

let test_forced_release_raises_floor () =
  let b = Reorder.create ~lateness:1000 () in
  push_exn b (ev 50 "a");
  (match Reorder.pop_oldest b with
  | Some e -> Alcotest.(check int) "released 50" 50 e.Trace.time
  | None -> Alcotest.fail "nothing to pop");
  (* time must never regress downstream: below the forced release is
     now late, even though lateness alone would admit it *)
  (match Reorder.push b (ev 49 "b") with
  | `Dropped_late -> ()
  | `Queued | `Full -> Alcotest.fail "expected a drop below the floor");
  push_exn b (ev 50 "c")

let test_restore () =
  let b = Reorder.create ~lateness:10 () in
  push_exn b (ev 20 "a");
  push_exn b (ev 15 "b");
  ignore (drain_all b);
  let fresh = Reorder.create ~lateness:10 () in
  (match
     Reorder.restore fresh ~max_seen:(Reorder.max_seen b)
       ~released:(Reorder.released b)
       ~dropped_late:(Reorder.dropped_late b)
       ~reordered:(Reorder.reordered b) (Reorder.pending b)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "max_seen" (Reorder.max_seen b) (Reorder.max_seen fresh);
  Alcotest.(check int) "floor" (Reorder.floor b) (Reorder.floor fresh);
  Alcotest.(check (list int)) "pending" (times (Reorder.pending b))
    (times (Reorder.pending fresh));
  (* restore refuses a used buffer *)
  match
    Reorder.restore fresh ~max_seen:0 ~released:0 ~dropped_late:0 ~reordered:0
      []
  with
  | Ok () -> Alcotest.fail "restored over a used buffer"
  | Error _ -> ()

(* Property: whatever the arrival order, the released stream is
   chronological, and nothing is both dropped and released. *)
let gen_jittered =
  QCheck2.Gen.(
    let* n = int_range 0 50 in
    let* base_gaps = list_size (return n) (int_range 0 10) in
    let* jitters = list_size (return n) (int_range 0 15) in
    let* lateness = int_range 0 20 in
    let time = ref 0 in
    let events =
      List.map2
        (fun gap jitter ->
          time := !time + gap;
          (max 0 (!time - jitter), jitter))
        base_gaps jitters
    in
    return (lateness, List.mapi (fun i (t, _) -> ev t name_pool.(i mod 8)) events))

let prop_chronological_release =
  qtest ~count:500 "released stream is chronological"
    gen_jittered
    (fun (lateness, events) ->
      Printf.sprintf "lateness %d, %s" lateness (Trace.to_string events))
    (fun (lateness, events) ->
      let b = Reorder.create ~lateness () in
      let released = ref [] in
      let emit e = released := e :: !released in
      List.iter
        (fun e ->
          (match Reorder.push b e with
          | `Queued | `Dropped_late -> ()
          | `Full -> ignore (Reorder.pop_oldest b); ignore (Reorder.push b e));
          ignore (Reorder.drain b ~emit))
        events;
      ignore (Reorder.flush b ~emit);
      let out = List.rev !released in
      Trace.is_chronological out
      && List.length out + Reorder.dropped_late b = List.length events)

(* ---- watermark boundary and observability ----------------------------- *)

let test_floor_exact_admission () =
  (* The admissibility floor is inclusive: an event at exactly
     [max_seen - lateness] is absorbed, one tick below it drops. *)
  let b = Reorder.create ~lateness:10 () in
  push_exn b (ev 20 "a");
  Alcotest.(check int) "floor" 10 (Reorder.floor b);
  Alcotest.(check bool) "exactly at the floor is queued" true
    (Reorder.push b (ev 10 "b") = `Queued);
  Alcotest.(check bool) "one below the floor drops" true
    (Reorder.push b (ev 9 "c") = `Dropped_late);
  Alcotest.(check int) "one drop counted" 1 (Reorder.dropped_late b);
  Alcotest.(check (list int)) "the boundary event is released" [ 10; 20 ]
    (times (flush_all b))

let test_equal_timestamp_drain_stable () =
  (* Ties released by a watermark-triggered drain keep arrival order,
     exactly like flush does. *)
  let b = Reorder.create ~lateness:5 () in
  push_exn b (ev 10 "first");
  push_exn b (ev 10 "second");
  push_exn b (ev 10 "third");
  Alcotest.(check (list string)) "held below the watermark" []
    (names (drain_all b));
  push_exn b (ev 16 "late");
  Alcotest.(check (list string))
    "ties drain in arrival order"
    [ "first"; "second"; "third" ]
    (names (drain_all b));
  Alcotest.(check (list string)) "the advancer is still held" [ "late" ]
    (names (flush_all b))

let test_stats_reconcile_with_obs () =
  let metrics = Loseq_obs.Metrics.create () in
  let b = Reorder.create ~metrics ~lateness:10 () in
  push_exn b (ev 20 "a");
  push_exn b (ev 15 "b");
  push_exn b (ev 40 "c");
  (match Reorder.push b (ev 5 "too-late") with
  | `Dropped_late -> ()
  | _ -> Alcotest.fail "expected a drop");
  ignore (Reorder.drain b ~emit:(fun _ -> ()));
  let snap = Reorder.stats b in
  let gauge n = Loseq_obs.Metrics.read_gauge metrics ~name:n () in
  let counter n = Loseq_obs.Metrics.read_counter metrics ~name:n () in
  Alcotest.(check (option int))
    "occupancy gauge = snapshot" (Some snap.Reorder.occupancy)
    (gauge "loseq_reorder_occupancy");
  Alcotest.(check (option int))
    "dropped counter = snapshot" (Some snap.Reorder.dropped_late)
    (counter "loseq_reorder_dropped_late_total");
  Alcotest.(check (option int))
    "watermark lag gauge = max_seen - released"
    (Some (snap.Reorder.max_seen - Reorder.released b))
    (gauge "loseq_reorder_watermark_lag");
  Alcotest.(check int) "snapshot watermark = max_seen - lateness"
    (snap.Reorder.max_seen - Reorder.lateness b)
    snap.Reorder.watermark

let () =
  Alcotest.run "reorder"
    [
      ( "watermark",
        [
          Alcotest.test_case "in-order passthrough" `Quick
            test_in_order_passthrough;
          Alcotest.test_case "absorbs within lateness" `Quick
            test_absorbs_within_lateness;
          Alcotest.test_case "drops beyond lateness" `Quick
            test_drops_beyond_lateness;
          Alcotest.test_case "stable ties" `Quick test_stable_on_ties;
          Alcotest.test_case "floor-exact admission" `Quick
            test_floor_exact_admission;
          Alcotest.test_case "equal-timestamp drain stable" `Quick
            test_equal_timestamp_drain_stable;
          Alcotest.test_case "stats reconcile with obs" `Quick
            test_stats_reconcile_with_obs;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "window" `Quick test_backpressure_window;
          Alcotest.test_case "forced release raises floor" `Quick
            test_forced_release_raises_floor;
        ] );
      ("checkpoint", [ Alcotest.test_case "restore" `Quick test_restore ]);
      ("properties", [ prop_chronological_release ]);
    ]
