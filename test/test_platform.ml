open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_platform

(* ---- device-level tests ----------------------------------------------- *)

let test_intc_mask_logic () =
  let k = Kernel.create () in
  let intc = Intc.create ~lines:4 k in
  Intc.raise_line intc 2;
  Alcotest.(check int) "pending bit 2" 0b100 (Intc.pending intc);
  Intc.raise_line intc 0;
  Alcotest.(check int) "pending bits" 0b101 (Intc.pending intc)

let test_intc_regs () =
  let k = Kernel.create () in
  let intc = Intc.create ~lines:4 k in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Intc.regs intc);
  Intc.raise_line intc 1;
  let status, _ = Tlm.read_word ini 0x0 in
  Alcotest.(check int) "status" 0b10 status;
  (* Mask line 1 via ENABLE, pending hidden. *)
  let (_ : Time.t) = Tlm.write_word ini 0x4 0b01 in
  let status, _ = Tlm.read_word ini 0x0 in
  Alcotest.(check int) "masked" 0 status;
  (* Unmask and ack. *)
  let (_ : Time.t) = Tlm.write_word ini 0x4 0b11 in
  let (_ : Time.t) = Tlm.write_word ini 0x8 0b10 in
  let status, _ = Tlm.read_word ini 0x0 in
  Alcotest.(check int) "acked" 0 status

let test_intc_bad_line () =
  let k = Kernel.create () in
  let intc = Intc.create ~lines:2 k in
  match Intc.raise_line intc 5 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_timer_one_shot () =
  let k = Kernel.create () in
  let fired = ref [] in
  let tmr =
    Timer_dev.create k ~on_expire:(fun () ->
        fired := Time.to_ps (Kernel.now k) :: !fired)
  in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Timer_dev.regs tmr);
  Kernel.spawn k (fun () ->
      let (_ : Time.t) = Tlm.write_word ini 0x0 100 in
      let (_ : Time.t) = Tlm.write_word ini 0x4 1 in
      ());
  Kernel.run k;
  Alcotest.(check int) "fired once" 1 (List.length !fired);
  Alcotest.(check bool) "stopped" false (Timer_dev.running tmr)

let test_timer_periodic_and_stop () =
  let k = Kernel.create () in
  let count = ref 0 in
  let tmr = Timer_dev.create k ~on_expire:(fun () -> incr count) in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Timer_dev.regs tmr);
  Kernel.spawn k (fun () ->
      let (_ : Time.t) = Tlm.write_word ini 0x0 100 in
      let (_ : Time.t) = Tlm.write_word ini 0x4 0b11 in
      Kernel.wait_for k (Time.ns 550);
      let (_ : Time.t) = Tlm.write_word ini 0x4 0 in
      ());
  Kernel.run ~until:(Time.us 2) k;
  Alcotest.(check int) "five periods" 5 !count

let test_timer_restart_cancels_previous () =
  let k = Kernel.create () in
  let fired = ref [] in
  let tmr =
    Timer_dev.create k ~on_expire:(fun () ->
        fired := Time.to_ps (Kernel.now k) :: !fired)
  in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Timer_dev.regs tmr);
  Kernel.spawn k (fun () ->
      let (_ : Time.t) = Tlm.write_word ini 0x0 1000 in
      let (_ : Time.t) = Tlm.write_word ini 0x4 1 in
      Kernel.wait_for k (Time.ns 500);
      (* Restart with a shorter load: the first countdown must die. *)
      let (_ : Time.t) = Tlm.write_word ini 0x0 100 in
      let (_ : Time.t) = Tlm.write_word ini 0x4 1 in
      ());
  Kernel.run k;
  Alcotest.(check (list int)) "one expiry at 600ns" [ 600_000 ] !fired

let test_gpio_press_emits_and_latches () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let irqs = ref 0 in
  let gpio = Gpio.create k tap ~on_irq:(fun () -> incr irqs) in
  Gpio.press gpio 3;
  Alcotest.(check int) "irq" 1 !irqs;
  Alcotest.(check int) "press count" 1 (Gpio.presses gpio);
  let ini = Tlm.initiator () in
  Tlm.bind ini (Gpio.regs gpio);
  let status, _ = Tlm.read_word ini 0x0 in
  Alcotest.(check bool) "valid bit + id" true
    (status land 0xff = 3 && status land (1 lsl 31) <> 0);
  let (_ : Time.t) = Tlm.write_word ini 0x4 0 in
  let status, _ = Tlm.read_word ini 0x0 in
  Alcotest.(check int) "cleared" 0 status;
  Alcotest.(check int) "tap saw button" 1 (Tap.count tap)

let test_lock_events () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let lock = Lock.create k tap in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Lock.regs lock);
  let (_ : Time.t) = Tlm.write_word ini 0x0 1 in
  Alcotest.(check bool) "open" true (Lock.is_open lock);
  let (_ : Time.t) = Tlm.write_word ini 0x0 1 in
  (* Idempotent: no second event. *)
  let (_ : Time.t) = Tlm.write_word ini 0x0 0 in
  Alcotest.(check bool) "closed" false (Lock.is_open lock);
  Alcotest.(check int) "open count" 1 (Lock.open_count lock);
  Alcotest.(check (list string)) "tap events" [ "lock_open"; "lock_close" ]
    (List.map Name.to_string (Trace.names (Tap.trace tap)))

let test_sensor_capture_dma () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let bus = Bus.create () in
  let mem = Memory.create ~size:4096 () in
  Bus.map bus ~base:0 ~size:4096 (Memory.target mem);
  let dma = Tlm.initiator () in
  Tlm.bind dma (Bus.target bus);
  let sensor = Sensor.create k tap ~bus:dma in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Sensor.regs sensor);
  Kernel.spawn k (fun () ->
      let (_ : Time.t) = Tlm.write_word ini 0x0 0x100 in
      let (_ : Time.t) = Tlm.write_word ini 0x4 8 in
      let (_ : Time.t) = Tlm.write_word ini 0x8 1 in
      let rec poll () =
        let status, _ = Tlm.read_word ini 0xC in
        if status <> 2 then begin
          Kernel.wait_for k (Time.us 1);
          poll ()
        end
      in
      poll ());
  Kernel.run k;
  Alcotest.(check int) "one capture" 1 (Sensor.captures sensor);
  (* The frame landed in memory: first word is the capture signature. *)
  Alcotest.(check int) "signature" (0x1000 * 31) (Memory.read_word mem 0x100)

let test_ipu_event_sequence () =
  let k = Kernel.create () in
  let tap = Tap.create k in
  let bus = Bus.create () in
  let mem = Memory.create ~size:65536 () in
  Bus.map bus ~base:0 ~size:65536 (Memory.target mem);
  let dma = Tlm.initiator () in
  Tlm.bind dma (Bus.target bus);
  let irqs = ref 0 in
  let ipu = Ipu.create k tap ~bus:dma ~on_irq:(fun () -> incr irqs) in
  let ini = Tlm.initiator () in
  Tlm.bind ini (Ipu.regs ipu);
  (* Enroll a matching gallery entry. *)
  Memory.write_word mem 0x100 0xbeef;
  Memory.write_word mem 0x1000 0xbeef;
  Kernel.spawn k (fun () ->
      let (_ : Time.t) = Tlm.write_word ini 0x00 0x100 in
      let (_ : Time.t) = Tlm.write_word ini 0x04 0x1000 in
      let (_ : Time.t) = Tlm.write_word ini 0x08 4 in
      let (_ : Time.t) = Tlm.write_word ini 0x0C 1 in
      ());
  Kernel.run k;
  Alcotest.(check int) "irq raised" 1 !irqs;
  Alcotest.(check bool) "matched" true (Ipu.last_match ipu);
  let names = List.map Name.to_string (Trace.names (Tap.trace tap)) in
  Alcotest.(check (list string)) "interface sequence"
    ([ "set_imgAddr"; "set_glAddr"; "set_glSize"; "start" ]
    @ [ "read_img"; "read_img"; "read_img"; "read_img"; "set_irq" ])
    names

(* ---- full-SoC scenarios ------------------------------------------------ *)

let run_scenario config =
  let soc = Soc.create ~config () in
  let report = Soc.attach_standard_checkers soc in
  Soc.run soc;
  Report.finalize report;
  (soc, report)

let test_soc_correct_firmware () =
  let soc, report = run_scenario Soc.default_config in
  Alcotest.(check bool) "all properties pass" true (Report.all_passed report);
  Alcotest.(check int) "three recognitions" 3
    (Ipu.recognitions (Soc.ipu soc));
  Alcotest.(check int) "matches on even captures" 2
    (Cpu.matches_seen (Soc.cpu soc));
  Alcotest.(check bool) "door opened" true (Lock.open_count (Soc.lock soc) >= 1);
  Alcotest.(check bool) "lcdc refreshed" true (Lcdc.refreshes (Soc.lcdc soc) > 0);
  Alcotest.(check bool) "plenty of events" true (Tap.count (Soc.tap soc) > 300);
  (* The TMR1 system tick interleaves real interrupt traffic that the
     monitors must ignore. *)
  Alcotest.(check bool) "heartbeats serviced" true
    (Cpu.heartbeats_seen (Soc.cpu soc) > 2
    && Timer_dev.expired_count (Soc.tmr1 soc)
       >= Cpu.heartbeats_seen (Soc.cpu soc))

let test_soc_determinism () =
  let trace_of () =
    let soc, _ = run_scenario { Soc.default_config with presses = 2 } in
    Trace.to_string (Tap.trace (Soc.tap soc))
  in
  Alcotest.(check string) "same seed, same trace" (trace_of ()) (trace_of ())

let test_soc_seed_changes_order () =
  let names_of seed =
    let soc, _ =
      run_scenario { Soc.default_config with seed; presses = 1 }
    in
    List.filter
      (fun nm ->
        List.mem (Name.to_string nm)
          [ "set_imgAddr"; "set_glAddr"; "set_glSize" ])
      (Trace.names (Tap.trace (Soc.tap soc)))
  in
  (* Different seeds shuffle the configuration order (eventually): check
     a few seeds produce at least two distinct orders. *)
  let orders =
    List.sort_uniq compare
      (List.map
         (fun seed -> List.map Name.to_string (names_of seed))
         [ 1; 2; 3; 4; 5; 6 ])
  in
  Alcotest.(check bool) "loose ordering exercised" true
    (List.length orders >= 2)

let expect_failure config expected_reason =
  let _soc, report = run_scenario config in
  Alcotest.(check bool) "some property failed" false
    (Report.all_passed report);
  let failures = Report.failures report in
  Alcotest.(check bool) "diagnosis" true
    (List.exists
       (fun c ->
         match Checker.verdict c with
         | Loseq_core.Monitor.Violated v -> expected_reason v.Diag.reason
         | _ -> false)
       failures)

let test_soc_bug_start_first () =
  expect_failure
    { Soc.default_config with cpu_bug = Some Cpu.Start_before_config;
      presses = 1 }
    (function Diag.Missing _ -> true | _ -> false)

let test_soc_bug_skip_size () =
  expect_failure
    { Soc.default_config with cpu_bug = Some Cpu.Skip_gl_size; presses = 1 }
    (function Diag.Missing _ -> true | _ -> false)

let test_soc_bug_double_addr () =
  expect_failure
    { Soc.default_config with cpu_bug = Some Cpu.Double_gl_addr; presses = 1 }
    (function Diag.Reentered _ -> true | _ -> false)

let test_soc_slow_ipu_deadline () =
  expect_failure
    { Soc.default_config with slow_ipu = true; presses = 1 }
    (function Diag.Deadline_miss _ -> true | _ -> false)

let test_soc_trace_satisfies_oracle () =
  (* End-to-end: the recorded platform trace satisfies both Section-3
     properties according to the declarative semantics too. *)
  let soc, _ = run_scenario { Soc.default_config with presses = 2 } in
  let trace = Tap.trace (Soc.tap soc) in
  Alcotest.(check bool) "configuration property" true
    (Semantics.holds (Soc.property_configuration_repeated soc) trace);
  Alcotest.(check bool) "recognition property" true
    (Semantics.holds (Soc.property_recognition soc) trace)

let () =
  Alcotest.run "platform"
    [
      ( "devices",
        [
          Alcotest.test_case "intc mask" `Quick test_intc_mask_logic;
          Alcotest.test_case "intc regs" `Quick test_intc_regs;
          Alcotest.test_case "intc bad line" `Quick test_intc_bad_line;
          Alcotest.test_case "timer one-shot" `Quick test_timer_one_shot;
          Alcotest.test_case "timer periodic" `Quick
            test_timer_periodic_and_stop;
          Alcotest.test_case "timer restart" `Quick
            test_timer_restart_cancels_previous;
          Alcotest.test_case "gpio" `Quick test_gpio_press_emits_and_latches;
          Alcotest.test_case "lock" `Quick test_lock_events;
          Alcotest.test_case "sensor dma" `Quick test_sensor_capture_dma;
          Alcotest.test_case "ipu sequence" `Quick test_ipu_event_sequence;
        ] );
      ( "soc",
        [
          Alcotest.test_case "correct firmware" `Slow
            test_soc_correct_firmware;
          Alcotest.test_case "determinism" `Slow test_soc_determinism;
          Alcotest.test_case "loose ordering varies" `Slow
            test_soc_seed_changes_order;
          Alcotest.test_case "bug: start first" `Slow test_soc_bug_start_first;
          Alcotest.test_case "bug: skip size" `Slow test_soc_bug_skip_size;
          Alcotest.test_case "bug: double addr" `Slow
            test_soc_bug_double_addr;
          Alcotest.test_case "bug: slow ipu" `Slow test_soc_slow_ipu_deadline;
          Alcotest.test_case "oracle agrees" `Slow
            test_soc_trace_satisfies_oracle;
        ] );
    ]
