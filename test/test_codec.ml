(* The LSQB binary trace codec: exact round-trips with Trace.t/CSV,
   chunk-boundary-oblivious streaming decode, malformed-input
   rejection. *)

open Loseq_core
open Loseq_ingest
open Loseq_testutil

let ev t nm = Trace.event ~time:t (name nm)

let event_testable =
  Alcotest.testable Trace.pp_event (fun (x : Trace.event) y ->
      Name.equal x.name y.name && x.time = y.time)

let trace_testable = Alcotest.(list event_testable)

let sample =
  [ ev 0 "a"; ev 5 "b"; ev 5 "c"; ev 12 "a"; ev 12 "a"; ev 100000 "b" ]

let decode_exn s =
  match Codec.decode s with Ok tr -> tr | Error msg -> Alcotest.fail msg

(* ---- whole-trace round trips ------------------------------------------ *)

let test_roundtrip () =
  Alcotest.check trace_testable "roundtrip" sample
    (decode_exn (Codec.encode_exn sample))

let test_roundtrip_empty () =
  Alcotest.check trace_testable "empty" [] (decode_exn (Codec.encode_exn []))

let test_compactness () =
  (* Interning + deltas: repeated names cost a couple of bytes per
     event, not the name each time. *)
  let long_name = String.make 64 'x' in
  let trace = List.init 1000 (fun i -> ev (i * 3) long_name) in
  let encoded = Codec.encode_exn trace in
  Alcotest.(check bool)
    (Printf.sprintf "1000 events in %d bytes" (String.length encoded))
    true
    (String.length encoded < 4 * 1000)

(* Plain substring check without extra deps. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_rejects_nonchronological () =
  match Codec.encode [ ev 10 "a"; ev 5 "b" ] with
  | Ok _ -> Alcotest.fail "encoded a non-chronological trace"
  | Error msg ->
      Alcotest.(check bool) "error names the position" true
        (contains ~sub:"event 2" msg)

(* ---- sniffing --------------------------------------------------------- *)

let test_sniff () =
  let check_is label expected data =
    let got = Codec.sniff data in
    Alcotest.(check string) label
      (match expected with
      | `Binary -> "binary"
      | `Csv -> "csv"
      | `Tokens -> "tokens")
      (match got with
      | `Binary -> "binary"
      | `Csv -> "csv"
      | `Tokens -> "tokens")
  in
  check_is "binary" `Binary (Codec.encode_exn sample);
  check_is "csv" `Csv (Trace_io.to_csv sample);
  check_is "csv no header" `Csv "0,a\n7,b\n";
  check_is "csv after comment" `Csv "# log\n0,a\n";
  check_is "tokens" `Tokens "a b@7 c";
  check_is "empty" `Tokens ""

(* ---- error cases ------------------------------------------------------ *)

let expect_decode_error label data sub =
  match Codec.decode data with
  | Ok _ -> Alcotest.failf "%s: decoded" label
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" label msg sub)
        true (contains ~sub msg)

let test_decode_errors () =
  expect_decode_error "bad magic" "CSVX\x01rest" "bad magic";
  expect_decode_error "empty" "" "empty input";
  expect_decode_error "unknown tag"
    (Codec.magic ^ "\x7fjunk")
    "unknown record tag";
  expect_decode_error "undefined id" (Codec.magic ^ "\x02\x05\x00") "undefined";
  expect_decode_error "overlong varint"
    (Codec.magic ^ "\x02" ^ String.make 12 '\x80')
    "overlong";
  let good = Codec.encode_exn sample in
  expect_decode_error "data after end" (good ^ "\x02\x00\x00") "after the end";
  expect_decode_error "truncated"
    (String.sub good 0 (String.length good - 1))
    "truncated";
  (* corrupt the end record's count *)
  let bytes = Bytes.of_string good in
  Bytes.set bytes (Bytes.length bytes - 1) '\x09';
  expect_decode_error "count mismatch" (Bytes.to_string bytes) "claims"

let test_name_length_limit () =
  let huge = Buffer.create 16 in
  Buffer.add_string huge Codec.magic;
  Buffer.add_char huge '\x01';
  (* varint 1_000_000 *)
  Buffer.add_string huge "\xc0\x84\x3d";
  expect_decode_error "giant name" (Buffer.contents huge) "exceeds limit"

(* ---- streaming decode ------------------------------------------------- *)

let decode_chunked chunk_sizes data =
  let dec = Codec.Decoder.create () in
  let acc = ref [] in
  let emit e = acc := e :: !acc in
  let len = String.length data in
  let rec go pos sizes =
    if pos >= len then Ok ()
    else
      let size =
        match sizes with [] -> len - pos | s :: _ -> min s (len - pos)
      in
      let rest = match sizes with [] -> [] | _ :: r -> r in
      match Codec.Decoder.feed dec ~off:pos ~len:size data ~emit with
      | Ok () -> go (pos + size) rest
      | Error _ as err -> err
  in
  match go 0 chunk_sizes with
  | Error _ as err -> err
  | Ok () -> (
      match Codec.Decoder.finish dec with
      | Error _ as err -> err
      | Ok () -> Ok (List.rev !acc))

let test_byte_at_a_time () =
  let data = Codec.encode_exn sample in
  match decode_chunked (List.init (String.length data) (fun _ -> 1)) data with
  | Ok tr -> Alcotest.check trace_testable "1-byte chunks" sample tr
  | Error msg -> Alcotest.fail msg

let test_decoder_sticky_errors () =
  let dec = Codec.Decoder.create () in
  let emit _ = () in
  (match Codec.Decoder.feed dec "XXXXX" ~emit with
  | Ok () -> Alcotest.fail "bad magic accepted"
  | Error _ -> ());
  match Codec.Decoder.feed dec Codec.magic ~emit with
  | Ok () -> Alcotest.fail "error was not sticky"
  | Error _ -> ()

(* ---- properties ------------------------------------------------------- *)

let gen_chrono_trace =
  QCheck2.Gen.(
    let* n = int_range 0 60 in
    let* gaps = list_size (return n) (int_range 0 40) in
    let* picks = list_size (return n) (int_bound (Array.length name_pool - 1)) in
    let time = ref 0 in
    return
      (List.map2
         (fun gap i ->
           time := !time + gap;
           ev !time name_pool.(i))
         gaps picks))

let print_trace tr = Trace.to_string tr

let trace_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Trace.event) (y : Trace.event) ->
         Name.equal x.name y.name && x.time = y.time)
       a b

let prop_roundtrip =
  qtest ~count:300 "decode (encode tr) = tr" gen_chrono_trace print_trace
    (fun tr ->
      match Codec.decode (Codec.encode_exn tr) with
      | Ok tr' -> trace_equal tr tr'
      | Error msg -> QCheck2.Test.fail_report msg)

let prop_csv_equivalence =
  qtest ~count:300 "CSV and binary decode to the same trace" gen_chrono_trace
    print_trace (fun tr ->
      match (Trace_io.of_csv (Trace_io.to_csv tr), Codec.decode (Codec.encode_exn tr)) with
      | Ok via_csv, Ok via_bin -> trace_equal via_csv via_bin
      | Error msg, _ | _, Error msg -> QCheck2.Test.fail_report msg)

let gen_trace_and_chunks =
  QCheck2.Gen.(
    let* tr = gen_chrono_trace in
    let* sizes = list_size (int_range 1 30) (int_range 1 17) in
    return (tr, sizes))

let prop_chunked_decode =
  qtest ~count:300 "chunked decode = whole decode" gen_trace_and_chunks
    (fun (tr, sizes) ->
      Printf.sprintf "%s / chunks %s" (Trace.to_string tr)
        (String.concat "," (List.map string_of_int sizes)))
    (fun (tr, sizes) ->
      let data = Codec.encode_exn tr in
      match decode_chunked sizes data with
      | Ok tr' -> trace_equal tr tr'
      | Error msg -> QCheck2.Test.fail_report msg)

let () =
  Alcotest.run "codec"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "sample" `Quick test_roundtrip;
          Alcotest.test_case "empty" `Quick test_roundtrip_empty;
          Alcotest.test_case "compactness" `Quick test_compactness;
          Alcotest.test_case "non-chronological" `Quick
            test_rejects_nonchronological;
        ] );
      ("sniff", [ Alcotest.test_case "formats" `Quick test_sniff ]);
      ( "errors",
        [
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "name length" `Quick test_name_length_limit;
          Alcotest.test_case "sticky" `Quick test_decoder_sticky_errors;
        ] );
      ( "streaming",
        [ Alcotest.test_case "byte at a time" `Quick test_byte_at_a_time ] );
      ( "properties",
        [ prop_roundtrip; prop_csv_equivalence; prop_chunked_decode ] );
    ]
