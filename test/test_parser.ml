open Loseq_core
open Loseq_testutil

let parses src = pat src

let fails_at src expected_pos =
  match Parser.pattern src with
  | Ok p -> Alcotest.failf "unexpectedly parsed %s as %a" src Pattern.pp p
  | Error e -> Alcotest.(check int) "error position" expected_pos e.position

let fails src =
  match Parser.pattern src with
  | Ok p -> Alcotest.failf "unexpectedly parsed %s as %a" src Pattern.pp p
  | Error _ -> ()

let test_simple_antecedent () =
  let p = parses "n << i" in
  match p with
  | Pattern.Antecedent a ->
      Alcotest.(check bool) "not repeated" false a.Pattern.repeated;
      Alcotest.(check string) "trigger" "i" (Name.to_string a.Pattern.trigger)
  | Pattern.Timed _ -> Alcotest.fail "wrong kind"

let test_repeated_antecedent () =
  match parses "n <<! i" with
  | Pattern.Antecedent a ->
      Alcotest.(check bool) "repeated" true a.Pattern.repeated
  | Pattern.Timed _ -> Alcotest.fail "wrong kind"

let test_bounds () =
  match parses "n[2,8] << i" with
  | Pattern.Antecedent { body = [ { ranges = [ r ]; _ } ]; _ } ->
      Alcotest.(check (pair int int)) "bounds" (2, 8) (r.Pattern.lo, r.Pattern.hi)
  | _ -> Alcotest.fail "wrong shape"

let test_connectives () =
  (match parses "{a, b} << i" with
  | Pattern.Antecedent { body = [ f ]; _ } ->
      Alcotest.(check bool) "and" true (f.Pattern.connective = Pattern.All)
  | _ -> Alcotest.fail "shape");
  match parses "{a | b} << i" with
  | Pattern.Antecedent { body = [ f ]; _ } ->
      Alcotest.(check bool) "or" true (f.Pattern.connective = Pattern.Any)
  | _ -> Alcotest.fail "shape"

let test_singleton_brace_defaults_to_all () =
  match parses "{a} << i" with
  | Pattern.Antecedent { body = [ f ]; _ } ->
      Alcotest.(check bool) "all" true (f.Pattern.connective = Pattern.All)
  | _ -> Alcotest.fail "shape"

let test_ordering_chain () =
  match parses "a < b < c << i" with
  | Pattern.Antecedent { body; _ } ->
      Alcotest.(check int) "three fragments" 3 (List.length body)
  | _ -> Alcotest.fail "shape"

let test_timed () =
  match parses "a < b => c < d within 42" with
  | Pattern.Timed g ->
      Alcotest.(check int) "premise" 2 (List.length g.Pattern.premise);
      Alcotest.(check int) "conclusion" 2 (List.length g.Pattern.conclusion);
      Alcotest.(check int) "deadline" 42 g.Pattern.deadline
  | Pattern.Antecedent _ -> Alcotest.fail "wrong kind"

let test_whitespace_insensitive () =
  Alcotest.check pattern_testable "spacing"
    (parses "{a,b}<start<<i")
    (parses "  { a , b }  <  start  <<  i ")

let test_mixed_connective_rejected () = fails "{a, b | c} << i"
let test_missing_trigger () = fails "a <<"
let test_missing_within () = fails "a => b"
let test_missing_deadline () = fails "a => b within"
let test_trailing_garbage () = fails "a << i extra"
let test_empty_input () = fails ""
let test_unclosed_brace () = fails "{a, b << i"
let test_bad_bounds_syntax () = fails "a[2] << i"
let test_bad_bounds_values () = fails "a[3,2] << i"
let test_zero_lower_bound () = fails "a[0,2] << i"
let test_duplicate_name_rejected () = fails "{a, a} << i"
let test_trigger_in_body_rejected () = fails "a << a"
let test_bad_character () = fails_at "a $ b << i" 2
let test_lone_equals () = fails "a = b << i"

let test_error_position_points_at_token () = fails_at "a << 5" 5

let test_ordering_entry_point () =
  match Parser.ordering "a < {b | c}" with
  | Ok o -> Alcotest.(check int) "fragments" 2 (List.length o)
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let test_pattern_exn_raises () =
  match Parser.pattern_exn "<<" with
  | (_ : Pattern.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_within_reserved () =
  (* 'within' cannot be a plain name. *)
  fails "within << i"

let test_numeric_names_rejected () =
  (* A bare number is not a name. *)
  fails "42 << i"

let () =
  Alcotest.run "parser"
    [
      ( "accepts",
        [
          Alcotest.test_case "simple" `Quick test_simple_antecedent;
          Alcotest.test_case "repeated" `Quick test_repeated_antecedent;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "connectives" `Quick test_connectives;
          Alcotest.test_case "singleton brace" `Quick
            test_singleton_brace_defaults_to_all;
          Alcotest.test_case "ordering chain" `Quick test_ordering_chain;
          Alcotest.test_case "timed" `Quick test_timed;
          Alcotest.test_case "whitespace" `Quick test_whitespace_insensitive;
          Alcotest.test_case "ordering entry point" `Quick
            test_ordering_entry_point;
        ] );
      ( "rejects",
        [
          Alcotest.test_case "mixed connectives" `Quick
            test_mixed_connective_rejected;
          Alcotest.test_case "missing trigger" `Quick test_missing_trigger;
          Alcotest.test_case "missing within" `Quick test_missing_within;
          Alcotest.test_case "missing deadline" `Quick test_missing_deadline;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "empty" `Quick test_empty_input;
          Alcotest.test_case "unclosed brace" `Quick test_unclosed_brace;
          Alcotest.test_case "bad bounds syntax" `Quick
            test_bad_bounds_syntax;
          Alcotest.test_case "bad bounds values" `Quick
            test_bad_bounds_values;
          Alcotest.test_case "zero lower bound" `Quick test_zero_lower_bound;
          Alcotest.test_case "duplicate name" `Quick
            test_duplicate_name_rejected;
          Alcotest.test_case "trigger in body" `Quick
            test_trigger_in_body_rejected;
          Alcotest.test_case "bad character" `Quick test_bad_character;
          Alcotest.test_case "lone equals" `Quick test_lone_equals;
          Alcotest.test_case "error positions" `Quick
            test_error_position_points_at_token;
          Alcotest.test_case "pattern_exn" `Quick test_pattern_exn_raises;
          Alcotest.test_case "within reserved" `Quick test_within_reserved;
          Alcotest.test_case "numeric name" `Quick
            test_numeric_names_rejected;
        ] );
    ]
