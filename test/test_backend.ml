(* The monitor-backend abstraction: four strategies (structural Drct,
   compiled flat-table, whole-suite flat engine, PSL progression)
   behind one interface, their capabilities, and — the load-bearing
   part — their agreement on random patterns and traces, both offline
   and hosted on a simulated tap. *)

open Loseq_core
open Loseq_sim
open Loseq_verif
open Loseq_testutil

let verdict_class = function
  | Backend.Running -> "running"
  | Backend.Satisfied -> "satisfied"
  | Backend.Violated _ -> "violated"

(* Feed a whole trace (verdicts are sticky), then finalize at its end. *)
let run_offline b trace =
  List.iter (fun e -> ignore (b.Backend.step e)) trace;
  b.Backend.finalize ~now:(Trace.end_time trace)

(* ---- unit: accessors and capabilities --------------------------------- *)

let test_alphabet_accessors () =
  let p = pat "{a, b} < c << i" in
  let expected = Pattern.alpha p in
  Alcotest.(check bool)
    "monitor alphabet" true
    (Name.Set.equal expected (Monitor.alphabet (Monitor.create p)));
  Alcotest.(check bool)
    "compiled alphabet" true
    (Name.Set.equal expected (Compiled.alphabet (Compiled.compile p)));
  List.iter
    (fun (label, b) ->
      Alcotest.(check bool) (label ^ " backend alphabet") true
        (Name.Set.equal expected b.Backend.alphabet))
    [
      ("direct", Backend.direct p);
      ("compiled", Backend.compiled p);
      ("flat", Backend.flat p);
      ("psl", Loseq_psl.Progress.backend p);
    ]

let test_capabilities () =
  let p = pat "a <<! i" in
  let direct = Backend.direct p in
  let compiled = Backend.compiled p in
  let flat = Backend.flat p in
  Alcotest.(check bool) "direct has states" true (direct.Backend.states <> None);
  Alcotest.(check bool) "direct has acceptable" true
    (direct.Backend.acceptable <> None);
  Alcotest.(check bool) "compiled has no states" true
    (compiled.Backend.states = None);
  Alcotest.(check bool) "flat has no states" true (flat.Backend.states = None);
  Alcotest.(check bool) "flat persists" true (flat.Backend.persist <> None);
  Alcotest.(check bool) "flat restores" true (flat.Backend.restore <> None);
  Alcotest.(check bool) "flat carries its engine" true
    (flat.Backend.engine <> None);
  Alcotest.(check bool) "compiled carries no engine" true
    (compiled.Backend.engine = None);
  Alcotest.(check string) "labels" "direct/compiled/flat"
    (direct.Backend.label ^ "/" ^ compiled.Backend.label ^ "/"
   ^ flat.Backend.label)

let test_next_deadline_mirrors () =
  let p = pat "a => b < c within 100" in
  let m = Monitor.create p in
  let c = Compiled.compile p in
  let step name time =
    ignore (Monitor.step m { Trace.name = Name.v name; time });
    ignore (Compiled.step c { Trace.name = Name.v name; time });
    Alcotest.(check (option int))
      (Printf.sprintf "deadlines agree after %s@%d" name time)
      (Monitor.next_deadline m) (Compiled.next_deadline c)
  in
  Alcotest.(check (option int)) "unarmed" None (Compiled.next_deadline c);
  step "a" 10;
  Alcotest.(check (option int)) "armed at 110" (Some 110)
    (Compiled.next_deadline c);
  step "b" 20;
  step "c" 30

let test_reset () =
  let b = Backend.compiled (pat "a <<! i") in
  ignore (b.Backend.step { Trace.name = Name.v "i"; time = 1 });
  Alcotest.(check string) "violated" "violated"
    (verdict_class (b.Backend.verdict ()));
  b.Backend.reset ();
  Alcotest.(check string) "running again" "running"
    (verdict_class (b.Backend.verdict ()));
  ignore (b.Backend.step { Trace.name = Name.v "a"; time = 2 });
  ignore (b.Backend.step { Trace.name = Name.v "i"; time = 3 });
  Alcotest.(check string) "clean rerun" "running"
    (verdict_class (b.Backend.verdict ()))

(* The signature-style extension point. *)
module Direct_sig = struct
  type state = Monitor.t

  let label = "direct-sig"
  let create p = Monitor.create p
  let alphabet = Monitor.alphabet
  let step = Monitor.step
  let check_time = Monitor.check_time
  let next_deadline = Monitor.next_deadline
  let finalize = Monitor.finalize
  let verdict = Monitor.verdict
  let reset _ = ()
end

let test_pack () =
  let p = pat "{a, b} << i" in
  let b = Backend.pack (module Direct_sig) p in
  Alcotest.(check string) "label" "direct-sig" b.Backend.label;
  Alcotest.(check string) "accepts" "satisfied"
    (verdict_class (run_offline b (tr [ "a"; "b"; "i" ])));
  let b = Backend.pack (module Direct_sig) p in
  Alcotest.(check string) "rejects" "violated"
    (verdict_class (run_offline b (tr [ "a"; "i" ])))

(* ---- property: offline agreement -------------------------------------- *)

let prop_direct_compiled_agree (p, trace) =
  let d = Backend.direct p in
  let c = Backend.compiled p in
  let f = Backend.flat p in
  List.iter
    (fun e ->
      let vd = d.Backend.step e in
      let vc = c.Backend.step e in
      let vf = f.Backend.step e in
      if
        verdict_class vd <> verdict_class vc
        || verdict_class vc <> verdict_class vf
      then
        QCheck2.Test.fail_reportf
          "step %a@%d: direct %s, compiled %s, flat %s" Name.pp e.Trace.name
          e.Trace.time (verdict_class vd) (verdict_class vc)
          (verdict_class vf);
      if d.Backend.next_deadline () <> c.Backend.next_deadline () then
        QCheck2.Test.fail_reportf "deadline mismatch after %a@%d" Name.pp
          e.Trace.name e.Trace.time;
      if c.Backend.next_deadline () <> f.Backend.next_deadline () then
        QCheck2.Test.fail_reportf "flat deadline mismatch after %a@%d" Name.pp
          e.Trace.name e.Trace.time)
    trace;
  let now = Trace.end_time trace in
  verdict_class (d.Backend.finalize ~now)
  = verdict_class (c.Backend.finalize ~now)
  && verdict_class (c.Backend.verdict ())
     = verdict_class (f.Backend.finalize ~now)

(* Compiled and flat must agree not just on the verdict class but on
   the full rendered diagnostic. *)
let prop_compiled_flat_diagnostics_agree (p, trace) =
  let c = Backend.compiled p in
  let f = Backend.flat p in
  List.iter
    (fun e ->
      ignore (c.Backend.step e);
      ignore (f.Backend.step e))
    trace;
  let now = Trace.end_time trace in
  let render v = Format.asprintf "%a" Backend.pp_verdict v in
  let vc = render (c.Backend.finalize ~now)
  and vf = render (f.Backend.finalize ~now) in
  if vc <> vf then
    QCheck2.Test.fail_reportf "compiled %S, flat %S" vc vf
  else true

(* ---- property: hosted agreement (SoC-style tap) ------------------------ *)

(* Replay the trace on a simulated tap with the checker hosted on a hub,
   and run the kernel well past every possible deadline: deadline-only
   violations (no trailing event) must be caught by the merged wheel. *)
let hosted backend p trace =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let hub = Hub.create tap in
  let checker = Hub.add ~backend hub p in
  Stimuli.replay tap trace;
  Kernel.run ~until:(Time.ps (Trace.end_time trace + 500)) kernel;
  Hub.finalize hub;
  Checker.verdict checker

(* The engine-direct hosting path: the hub steps the shared flat
   engine straight from the tap, no per-checker closure chain. *)
let hosted_flat_engine p trace =
  let kernel = Kernel.create () in
  let tap = Tap.create kernel in
  let suite = [ { Suite.label = "p"; pattern = p; line = 1 } ] in
  let hub, _eng = Suite.attach_hub_flat tap suite in
  Stimuli.replay tap trace;
  Kernel.run ~until:(Time.ps (Trace.end_time trace + 500)) kernel;
  Hub.finalize hub;
  match Hub.checkers hub with
  | [ c ] -> Checker.verdict c
  | _ -> Alcotest.fail "expected exactly one hosted checker"

let prop_hosted_agree (p, trace) =
  let vd = hosted (fun p -> Backend.direct p) p trace in
  let vc = hosted Backend.compiled p trace in
  let vf = hosted Backend.flat p trace in
  let ve = hosted_flat_engine p trace in
  if
    verdict_class vd <> verdict_class vc
    || verdict_class vc <> verdict_class vf
    || verdict_class vf <> verdict_class ve
  then
    QCheck2.Test.fail_reportf
      "hosted: direct %s, compiled %s, flat view %s, flat engine %s"
      (verdict_class vd) (verdict_class vc) (verdict_class vf)
      (verdict_class ve)
  else true

(* Suite-level: whole-suite flat compilation vs per-entry compiled
   monitors over a merged trace. *)
let gen_suite_case =
  QCheck2.Gen.(
    let* c1 = gen_pattern_and_trace in
    let* c2 = gen_pattern_and_trace in
    return (c1, c2))

let prop_suite_level_agree ((p1, t1), (p2, t2)) =
  let suite =
    [
      { Suite.label = "p1"; pattern = p1; line = 1 };
      { Suite.label = "p2"; pattern = p2; line = 2 };
    ]
  in
  let trace =
    List.stable_sort
      (fun (a : Trace.event) (b : Trace.event) -> compare a.time b.time)
      (t1 @ t2)
  in
  let per_entry = Suite.check_trace suite trace in
  let whole_suite =
    Suite.check_trace ~suite_backend:Backend.flat_views suite trace
  in
  if per_entry <> whole_suite then
    QCheck2.Test.fail_reportf "per-entry compiled %s, flat suite %s"
      (String.concat ","
         (List.map (fun (l, ok) -> Printf.sprintf "%s=%b" l ok) per_entry))
      (String.concat ","
         (List.map (fun (l, ok) -> Printf.sprintf "%s=%b" l ok) whole_suite))
  else true

(* A deterministic deadline-only case on top of the random ones: the
   premise fires, nothing else ever does, and only the hub's timer can
   notice. *)
let test_hosted_deadline_only () =
  let p = pat "a => b within 100" in
  List.iter
    (fun (label, backend) ->
      let v =
        hosted backend p [ { Trace.name = Name.v "a"; time = 10 } ]
      in
      Alcotest.(check string) label "violated" (verdict_class v))
    [
      ("direct", fun p -> Backend.direct p);
      ("compiled", Backend.compiled);
      ("flat", Backend.flat);
    ];
  let v =
    hosted_flat_engine p [ { Trace.name = Name.v "a"; time = 10 } ]
  in
  Alcotest.(check string) "flat engine" "violated" (verdict_class v)

(* ---- property: PSL backend vs progression oracle ----------------------- *)

(* The PSL backend (online lexer + progression) must agree with the
   reference pipeline (expand the whole word, progress, weak-accept) on
   untimed patterns; foreign names are filtered by the backend, so the
   oracle gets the filtered word. *)
let prop_psl_matches_oracle (p, trace) =
  let b = Loseq_psl.Progress.backend p in
  let hosted_passed = Backend.passed (run_offline b trace) in
  let word =
    List.filter
      (fun n -> Name.Set.mem n (Pattern.alpha p))
      (Trace.names trace)
  in
  let oracle = Loseq_psl.Progress.monitor_pattern p word in
  if hosted_passed <> oracle then
    QCheck2.Test.fail_reportf "psl backend %b, oracle %b" hosted_passed oracle
  else true

let gen_antecedent_and_trace =
  QCheck2.Gen.(
    let* p = gen_antecedent in
    let* trace = gen_trace_for p in
    return (p, trace))

let () =
  Alcotest.run "backend"
    [
      ( "interface",
        [
          Alcotest.test_case "alphabet accessors" `Quick
            test_alphabet_accessors;
          Alcotest.test_case "capabilities" `Quick test_capabilities;
          Alcotest.test_case "compiled next_deadline mirrors monitor" `Quick
            test_next_deadline_mirrors;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "MONITOR_BACKEND pack" `Quick test_pack;
        ] );
      ( "equivalence",
        [
          qtest "direct, compiled and flat agree offline"
            gen_pattern_and_trace print_pattern_and_trace
            prop_direct_compiled_agree;
          qtest ~count:300 "compiled and flat render equal diagnostics"
            gen_pattern_and_trace print_pattern_and_trace
            prop_compiled_flat_diagnostics_agree;
          qtest ~count:200 "all backends agree hosted"
            gen_pattern_and_trace print_pattern_and_trace prop_hosted_agree;
          qtest ~count:200 "flat suite agrees with per-entry compiled"
            gen_suite_case
            (fun (c1, c2) ->
              print_pattern_and_trace c1 ^ " | " ^ print_pattern_and_trace c2)
            prop_suite_level_agree;
          Alcotest.test_case "deadline-only violation, hosted" `Quick
            test_hosted_deadline_only;
          qtest ~count:300 "psl backend matches progression oracle"
            gen_antecedent_and_trace print_pattern_and_trace
            prop_psl_matches_oracle;
        ] );
    ]
