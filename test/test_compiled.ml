(* The compiled fast path must be verdict-equivalent to the reference
   monitor on every pattern and trace. *)

open Loseq_core
open Loseq_testutil

let verdict_bool = function
  | Compiled.Running | Compiled.Satisfied -> true
  | Compiled.Violated _ -> false

let monitor_bool = function
  | Monitor.Running | Monitor.Satisfied -> true
  | Monitor.Violated _ -> false

let same_kind c m =
  match (c, m) with
  | Compiled.Running, Monitor.Running -> true
  | Compiled.Satisfied, Monitor.Satisfied -> true
  | Compiled.Violated _, Monitor.Violated _ -> true
  | _ -> false

let test_basic_verdicts () =
  let p = pat "{a, b} << go" in
  Alcotest.(check bool) "pass" true
    (verdict_bool (Compiled.run p (tr [ "b"; "a"; "go" ])));
  Alcotest.(check bool) "fail" false
    (verdict_bool (Compiled.run p (tr [ "a"; "go" ])));
  match Compiled.run p (tr [ "b"; "a"; "go" ]) with
  | Compiled.Satisfied -> ()
  | _ -> Alcotest.fail "expected Satisfied"

let test_timed_deadline () =
  let p = pat "req => ack within 10" in
  let ok = [ Trace.event ~time:0 (name "req"); Trace.event ~time:9 (name "ack") ] in
  let late = [ Trace.event ~time:0 (name "req"); Trace.event ~time:11 (name "ack") ] in
  Alcotest.(check bool) "in time" true (verdict_bool (Compiled.run p ok));
  Alcotest.(check bool) "late" false (verdict_bool (Compiled.run p late));
  (* Timeout without any event. *)
  let t = Compiled.compile p in
  ignore (Compiled.step t (Trace.event ~time:0 (name "req")));
  match Compiled.finalize t ~now:100 with
  | Compiled.Violated { reason = Diag.Deadline_miss _; _ } -> ()
  | _ -> Alcotest.fail "expected Deadline_miss"

let test_id_interning () =
  let t = Compiled.compile (pat "a << i") in
  Alcotest.(check bool) "a interned" true
    (Compiled.id_of_name t (name "a") <> None);
  Alcotest.(check bool) "i interned" true
    (Compiled.id_of_name t (name "i") <> None);
  Alcotest.(check (option int)) "foreign" None
    (Compiled.id_of_name t (name "zzz"))

let test_step_id_bounds () =
  let t = Compiled.compile (pat "a << i") in
  match Compiled.step_id t ~id:99 ~time:0 with
  | (_ : Compiled.verdict) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_foreign_ignored () =
  let t = Compiled.compile (pat "a << i") in
  ignore (Compiled.step t (Trace.event (name "zzz")));
  match Compiled.verdict t with
  | Compiled.Running -> ()
  | _ -> Alcotest.fail "foreign must be ignored"

let test_reset_reusable () =
  let t = Compiled.compile (pat "a << i") in
  ignore (Compiled.step t (Trace.event (name "i")));
  (match Compiled.verdict t with
  | Compiled.Violated _ -> ()
  | _ -> Alcotest.fail "violated");
  Compiled.reset t;
  ignore (Compiled.step t (Trace.event ~time:0 (name "a")));
  ignore (Compiled.step t (Trace.event ~time:1 (name "i")));
  match Compiled.verdict t with
  | Compiled.Satisfied -> ()
  | _ -> Alcotest.fail "reusable after reset"

let test_rejects_ill_formed () =
  let bad = Pattern.antecedent [ Pattern.single (name "i") ] ~trigger:(name "i") in
  match Compiled.compile bad with
  | (_ : Compiled.t) -> Alcotest.fail "expected Ill_formed"
  | exception Wellformed.Ill_formed _ -> ()

let qcheck_compiled_equals_monitor =
  qtest ~count:3000 "compiled verdicts = reference monitor verdicts"
    gen_pattern_and_trace print_pattern_and_trace
    (fun (p, trace) ->
      if not (Trace.is_chronological trace) then true
      else begin
        let final_time = Trace.end_time trace + 1_000 in
        let compiled = Compiled.compile p in
        let monitor = Monitor.create p in
        let stepwise_equal =
          List.for_all
            (fun e ->
              let c = Compiled.step compiled e in
              let m = Monitor.step monitor e in
              same_kind c m)
            trace
        in
        stepwise_equal
        && same_kind
             (Compiled.finalize compiled ~now:final_time)
             (Monitor.finalize monitor ~now:final_time)
      end)

let qcheck_compiled_equals_semantics =
  qtest ~count:800 "compiled verdicts = declarative semantics"
    gen_pattern_and_trace print_pattern_and_trace
    (fun (p, trace) ->
      if not (Trace.is_chronological trace) then true
      else
        let final_time = Trace.end_time trace + 1_000 in
        Compiled.accepts ~final_time p trace
        = Semantics.holds ~final_time p trace)

let qcheck_reset_equivalent_to_fresh =
  qtest ~count:300 "reset monitor behaves like a fresh one"
    gen_pattern_and_trace print_pattern_and_trace
    (fun (p, trace) ->
      if not (Trace.is_chronological trace) then true
      else begin
        let t = Compiled.compile p in
        List.iter (fun e -> ignore (Compiled.step t e)) trace;
        Compiled.reset t;
        List.iter (fun e -> ignore (Compiled.step t e)) trace;
        let fresh = Compiled.compile p in
        List.iter (fun e -> ignore (Compiled.step fresh e)) trace;
        ignore (monitor_bool Monitor.Running);
        verdict_bool (Compiled.verdict t) = verdict_bool (Compiled.verdict fresh)
      end)

let () =
  Alcotest.run "compiled"
    [
      ( "unit",
        [
          Alcotest.test_case "verdicts" `Quick test_basic_verdicts;
          Alcotest.test_case "timed" `Quick test_timed_deadline;
          Alcotest.test_case "interning" `Quick test_id_interning;
          Alcotest.test_case "id bounds" `Quick test_step_id_bounds;
          Alcotest.test_case "foreign ignored" `Quick test_foreign_ignored;
          Alcotest.test_case "reset" `Quick test_reset_reusable;
          Alcotest.test_case "ill-formed" `Quick test_rejects_ill_formed;
        ] );
      ( "equivalence",
        [
          qcheck_compiled_equals_monitor;
          qcheck_compiled_equals_semantics;
          qcheck_reset_equivalent_to_fresh;
        ] );
    ]
