open Loseq_core
open Loseq_testutil

let build ?max_states src = Automaton.of_pattern ?max_states (pat src)

let test_stats_simple () =
  let a = build "a << i" in
  (* waiting, counting, satisfied, violated = 4 configurations. *)
  Alcotest.(check int) "states" 4 a.Automaton.num_states;
  Alcotest.(check bool) "has sink" true (a.Automaton.sink <> None)

let test_accepts_matches_monitor_fixed () =
  let p = pat "{a, b} << i" in
  let automaton = Automaton.of_pattern p in
  List.iter
    (fun word ->
      let trace = Trace.of_strings word in
      Alcotest.(check bool)
        (String.concat " " word)
        (Monitor.accepts p trace)
        (Automaton.accepts automaton (List.map name word)))
    [
      [ "a"; "b"; "i" ];
      [ "b"; "a"; "i" ];
      [ "a"; "i" ];
      [ "i" ];
      [ "a"; "b"; "i"; "i"; "a" ];
      [ "a"; "a" ];
      [];
    ]

let test_too_many_states () =
  match build ~max_states:8 "a[1,100] <<! i" with
  | (_ : Automaton.t) -> Alcotest.fail "expected Too_many_states"
  | exception Automaton.Too_many_states _ -> ()

let test_minimize_preserves_language () =
  let p = pat "{a, b} < c <<! i" in
  let big = Automaton.of_pattern p in
  let small = Automaton.minimize big in
  Alcotest.(check bool) "not larger" true
    (small.Automaton.num_states <= big.Automaton.num_states);
  Alcotest.(check bool) "equivalent" true (Automaton.equivalent big small)

let test_equivalent_same_pattern () =
  let a1 = build "{a, b} << i" in
  let a2 = build "{b, a} << i" in
  (* Same property written with the ranges swapped: same language. *)
  Alcotest.(check bool) "equal languages" true (Automaton.equivalent a1 a2)

let test_inequivalent_patterns () =
  let a1 = build "{a, b} << i" in
  let a2 = build "{a | b} << i" in
  Alcotest.(check bool) "conj /= disj" false (Automaton.equivalent a1 a2);
  let a3 = build "a < b << i" in
  Alcotest.(check bool) "ordered /= unordered" false
    (Automaton.equivalent a1 a3)

let test_repeated_vs_oneshot_differ () =
  let a1 = build "a << i" in
  let a2 = build "a <<! i" in
  Alcotest.(check bool) "differ" false (Automaton.equivalent a1 a2)

let test_dot_output () =
  let a = build "a << i" in
  let dot = Automaton.to_dot a in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let test_counter_states_materialized () =
  (* n[1,3]: counting states are part of the explicit machine —
     the explosion the modular monitors avoid. *)
  let narrow = build "a <<! i" in
  let wide = build "a[1,6] <<! i" in
  Alcotest.(check bool) "counters add states" true
    (wide.Automaton.num_states > narrow.Automaton.num_states)

let qcheck_automaton_equals_monitor =
  qtest ~count:400 "explicit automaton = monitor on random traces"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      let* word = gen_alpha_word p in
      return (p, word))
    (fun (p, word) ->
      Format.asprintf "%a on %s" Pattern.pp p
        (String.concat " " (List.map Name.to_string word)))
    (fun (p, word) ->
      if Pattern.max_hi p > 6 then true (* keep state spaces small *)
      else
        match Automaton.of_pattern ~max_states:2000 p with
        | automaton ->
            Automaton.accepts automaton word
            = Monitor.accepts p (Trace.of_names word)
        | exception Automaton.Too_many_states _ -> true)

let qcheck_minimize_sound =
  qtest ~count:150 "minimization preserves the language"
    QCheck2.Gen.(
      let* p = gen_antecedent in
      return p)
    (fun p -> Pattern.to_string p)
    (fun p ->
      if Pattern.max_hi p > 4 then true
      else
        match Automaton.of_pattern ~max_states:2000 p with
        | a -> Automaton.equivalent a (Automaton.minimize a)
        | exception Automaton.Too_many_states _ -> true)

let () =
  Alcotest.run "automaton"
    [
      ( "construction",
        [
          Alcotest.test_case "simple stats" `Quick test_stats_simple;
          Alcotest.test_case "agrees with monitor" `Quick
            test_accepts_matches_monitor_fixed;
          Alcotest.test_case "state cap" `Quick test_too_many_states;
          Alcotest.test_case "counter states" `Quick
            test_counter_states_materialized;
          Alcotest.test_case "dot" `Quick test_dot_output;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "minimize" `Quick
            test_minimize_preserves_language;
          Alcotest.test_case "symmetric patterns" `Quick
            test_equivalent_same_pattern;
          Alcotest.test_case "different patterns" `Quick
            test_inequivalent_patterns;
          Alcotest.test_case "repeated vs one-shot" `Quick
            test_repeated_vs_oneshot_differ;
        ] );
      ( "properties",
        [ qcheck_automaton_equals_monitor; qcheck_minimize_sound ] );
    ]
