(** Shared helpers and qcheck generators for the test suites. *)

open Loseq_core

let pat src = Parser.pattern_exn src
let tr names = Trace.of_strings names
let name = Name.v

(* ---- Alcotest testables ---------------------------------------------- *)

let pattern_testable = Alcotest.testable Pattern.pp Pattern.equal

let verdict_testable =
  let pp ppf = function
    | Monitor.Running -> Format.pp_print_string ppf "running"
    | Monitor.Satisfied -> Format.pp_print_string ppf "satisfied"
    | Monitor.Violated v -> Format.fprintf ppf "violated(%a)" Diag.pp_violation v
  in
  let eq a b =
    match (a, b) with
    | Monitor.Running, Monitor.Running -> true
    | Monitor.Satisfied, Monitor.Satisfied -> true
    | Monitor.Violated _, Monitor.Violated _ -> true
    | (Monitor.Running | Monitor.Satisfied | Monitor.Violated _), _ -> false
  in
  Alcotest.testable pp eq

let accepts p trace = Monitor.accepts p trace
let rejects p trace = not (Monitor.accepts p trace)

let check_accepts ?(msg = "trace accepted") p names =
  Alcotest.(check bool) msg true (accepts p (tr names))

let check_rejects ?(msg = "trace rejected") p names =
  Alcotest.(check bool) msg true (rejects p (tr names))

(* ---- QCheck generators ------------------------------------------------ *)

(* Distinct name pool; keeping it small makes collisions (and therefore
   interesting traces) likely. *)
let name_pool = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |]

let gen_range_for nm =
  QCheck2.Gen.(
    let* lo = int_range 1 3 in
    let* extra = int_range 0 3 in
    return (Pattern.range ~lo ~hi:(lo + extra) (name nm)))

(* Split [names] into consecutive non-empty fragments. *)
let gen_fragments names =
  QCheck2.Gen.(
    let rec split acc = function
      | [] -> return (List.rev acc)
      | remaining ->
          let* take = int_range 1 (min 3 (List.length remaining)) in
          let rec grab k xs =
            if k = 0 then ([], xs)
            else
              match xs with
              | [] -> ([], [])
              | x :: rest ->
                  let taken, left = grab (k - 1) rest in
                  (x :: taken, left)
          in
          let chunk, rest = grab take remaining in
          let* ranges =
            flatten_l (List.map gen_range_for chunk)
          in
          let* connective =
            if List.length ranges > 1 then
              oneofl [ Pattern.All; Pattern.Any ]
            else return Pattern.All
          in
          split (Pattern.fragment ~connective ranges :: acc) rest
    in
    split [] names)

let gen_ordering ~max_names =
  QCheck2.Gen.(
    let* n = int_range 1 (min max_names (Array.length name_pool)) in
    let names = Array.to_list (Array.sub name_pool 0 n) in
    gen_fragments names)

let gen_antecedent =
  QCheck2.Gen.(
    let* body = gen_ordering ~max_names:6 in
    let* repeated = bool in
    return (Pattern.antecedent ~repeated body ~trigger:(name "trig")))

let gen_timed =
  QCheck2.Gen.(
    let* n_premise = int_range 1 3 in
    let* n_conclusion = int_range 1 3 in
    let premise_names =
      Array.to_list (Array.sub name_pool 0 n_premise)
    in
    let conclusion_names =
      Array.to_list (Array.sub name_pool n_premise n_conclusion)
    in
    let* premise = gen_fragments premise_names in
    let* conclusion = gen_fragments conclusion_names in
    let* deadline = int_range 0 120 in
    return (Pattern.timed premise conclusion ~deadline))

let gen_pattern =
  QCheck2.Gen.(
    let* timed = bool in
    if timed then gen_timed else gen_antecedent)

(* Arbitrary word over the pattern alphabet: mostly nonsense, which is
   exactly what equivalence testing needs. *)
let gen_alpha_word p =
  let alpha = Array.of_list (Name.Set.elements (Pattern.alpha p)) in
  QCheck2.Gen.(
    let* len = int_range 0 14 in
    let* picks = list_size (return len) (int_bound (Array.length alpha - 1)) in
    return (List.map (fun i -> alpha.(i)) picks))

(* Timestamp a word with small random gaps so deadlines are exercised
   both ways. *)
let gen_timed_trace p =
  QCheck2.Gen.(
    let* word = gen_alpha_word p in
    let* gaps = list_size (return (List.length word)) (int_range 0 30) in
    let time = ref 0 in
    return
      (List.map2
         (fun n gap ->
           time := !time + gap;
           { Trace.name = n; time = !time })
         word gaps))

(* A biased trace mix: valid traces, mutations of valid traces, and
   arbitrary words — the distribution that stresses monitors best. *)
let gen_trace_for p =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let* choice = int_bound 9 in
    if choice < 3 then return (Generate.valid ~rounds:(1 + (seed mod 3)) rng p)
    else if choice < 6 then
      let base = Generate.valid ~rounds:(1 + (seed mod 2)) rng p in
      let mutations = Generate.mutations p in
      let m = List.nth mutations (seed mod List.length mutations) in
      return (Generate.mutate rng m p base)
    else gen_timed_trace p)

let gen_pattern_and_trace =
  QCheck2.Gen.(
    let* p = gen_pattern in
    let* trace = gen_trace_for p in
    return (p, trace))

let print_pattern_and_trace (p, trace) =
  Format.asprintf "@[<v>pattern: %a@,trace: %s@]" Pattern.pp p
    (Trace.to_string trace)

(* ---- qcheck-to-alcotest shortcut -------------------------------------- *)

let qtest ?(count = 500) test_name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name:test_name ~print gen prop)
