open Loseq_core
open Loseq_testutil

let n = name

let test_range_defaults () =
  let r = Pattern.range (n "x") in
  Alcotest.(check int) "lo" 1 r.Pattern.lo;
  Alcotest.(check int) "hi" 1 r.Pattern.hi;
  Alcotest.(check string) "name" "x" (Name.to_string r.Pattern.name)

let test_range_bounds () =
  let r = Pattern.range ~lo:2 ~hi:8 (n "x") in
  Alcotest.(check int) "lo" 2 r.Pattern.lo;
  Alcotest.(check int) "hi" 8 r.Pattern.hi

let test_range_exactly () =
  let r = Pattern.exactly 5 (n "x") in
  Alcotest.(check int) "lo" 5 r.Pattern.lo;
  Alcotest.(check int) "hi" 5 r.Pattern.hi

let test_range_rejects_zero_lo () =
  Alcotest.check_raises "lo = 0"
    (Invalid_argument "Pattern.range: lower bound must be >= 1") (fun () ->
      ignore (Pattern.range ~lo:0 ~hi:3 (n "x")))

let test_range_rejects_inverted () =
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Pattern.range: lower bound exceeds upper bound")
    (fun () -> ignore (Pattern.range ~lo:4 ~hi:2 (n "x")))

let test_fragment_rejects_empty () =
  Alcotest.check_raises "empty fragment"
    (Invalid_argument "Pattern.fragment: empty fragment") (fun () ->
      ignore (Pattern.fragment []))

let test_antecedent_rejects_empty_body () =
  Alcotest.check_raises "empty ordering"
    (Invalid_argument "Pattern.antecedent: empty ordering") (fun () ->
      ignore (Pattern.antecedent [] ~trigger:(n "i")))

let test_timed_rejects_negative_deadline () =
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Pattern.timed: negative deadline") (fun () ->
      ignore
        (Pattern.timed
           [ Pattern.single (n "a") ]
           [ Pattern.single (n "b") ]
           ~deadline:(-1)))

let test_alpha_antecedent () =
  let p = pat "{a, b[2,3]} < c << i" in
  let alpha = Pattern.alpha p in
  Alcotest.(check int) "cardinal" 4 (Name.Set.cardinal alpha);
  Alcotest.(check bool) "trigger included" true (Name.Set.mem (n "i") alpha)

let test_alpha_timed () =
  let p = pat "a => b < c within 10" in
  Alcotest.(check int) "cardinal" 3 (Name.Set.cardinal (Pattern.alpha p))

let test_body_ordering_concatenates () =
  let p = pat "a => b < c within 10" in
  Alcotest.(check int) "fragments" 3 (List.length (Pattern.body_ordering p))

let test_counts () =
  let p = pat "{a, b} < {c[2,8] | d} < e << i" in
  Alcotest.(check int) "fragments" 3 (Pattern.fragment_count p);
  Alcotest.(check int) "ranges" 5 (Pattern.range_count p);
  Alcotest.(check int) "names" 5 (Pattern.name_count p);
  Alcotest.(check int) "max width" 2 (Pattern.max_fragment_width p);
  Alcotest.(check int) "max hi" 8 (Pattern.max_hi p)

let test_premise_length () =
  Alcotest.(check int) "antecedent" 2
    (Pattern.premise_length (pat "a < b << i"));
  Alcotest.(check int) "timed" 2
    (Pattern.premise_length (pat "a < b => c within 5"))

let test_pp_roundtrip_fixed () =
  List.iter
    (fun src ->
      let p = pat src in
      let printed = Pattern.to_string p in
      let reparsed = pat printed in
      Alcotest.check pattern_testable src p reparsed)
    [
      "n << i";
      "n <<! i";
      "n[2,8] << i";
      "{a, b, c} << start";
      "{a | b[2,3]} <<! go";
      "{a, b} < {c[2,8] | d} < e << i";
      "a => b < c within 10";
      "{a, b} => {c | d} < e[3,7] within 60000";
    ]

let test_equal_distinguishes () =
  Alcotest.(check bool) "repeated differs" false
    (Pattern.equal (pat "n << i") (pat "n <<! i"));
  Alcotest.(check bool) "bounds differ" false
    (Pattern.equal (pat "n[1,2] << i") (pat "n[1,3] << i"));
  Alcotest.(check bool) "deadline differs" false
    (Pattern.equal (pat "a => b within 1") (pat "a => b within 2"));
  Alcotest.(check bool) "kind differs" false
    (Pattern.equal (pat "a << i") (pat "a => b within 1"))

let qcheck_pp_roundtrip =
  qtest ~count:300 "parse (print p) = p" gen_pattern
    (fun p -> Pattern.to_string p)
    (fun p ->
      match Parser.pattern (Pattern.to_string p) with
      | Ok p' -> Pattern.equal p p'
      | Error _ -> false)

let qcheck_alpha_size =
  qtest ~count:300 "alpha counts names exactly once" gen_pattern
    (fun p -> Pattern.to_string p)
    (fun p ->
      let expected =
        Pattern.name_count p
        + match p with Pattern.Antecedent _ -> 1 | Pattern.Timed _ -> 0
      in
      Name.Set.cardinal (Pattern.alpha p) = expected)

let () =
  Alcotest.run "pattern"
    [
      ( "constructors",
        [
          Alcotest.test_case "range defaults" `Quick test_range_defaults;
          Alcotest.test_case "range bounds" `Quick test_range_bounds;
          Alcotest.test_case "exactly" `Quick test_range_exactly;
          Alcotest.test_case "rejects lo=0" `Quick test_range_rejects_zero_lo;
          Alcotest.test_case "rejects lo>hi" `Quick
            test_range_rejects_inverted;
          Alcotest.test_case "rejects empty fragment" `Quick
            test_fragment_rejects_empty;
          Alcotest.test_case "rejects empty body" `Quick
            test_antecedent_rejects_empty_body;
          Alcotest.test_case "rejects negative deadline" `Quick
            test_timed_rejects_negative_deadline;
        ] );
      ( "structure",
        [
          Alcotest.test_case "alpha antecedent" `Quick test_alpha_antecedent;
          Alcotest.test_case "alpha timed" `Quick test_alpha_timed;
          Alcotest.test_case "body ordering" `Quick
            test_body_ordering_concatenates;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "premise length" `Quick test_premise_length;
          Alcotest.test_case "equal distinguishes" `Quick
            test_equal_distinguishes;
        ] );
      ( "printing",
        [
          Alcotest.test_case "round trip (fixed)" `Quick
            test_pp_roundtrip_fixed;
          qcheck_pp_roundtrip;
          qcheck_alpha_size;
        ] );
    ]
