(* Mutation analysis and reachable coverage: the quality gate turned on
   itself.  Pins the ipu.suite kill rate the CI mutation job gates on,
   the stillborn pruning, the flat-vs-compiled cross-validation, the
   kill-rate drop under a deliberately weakened trace set, the
   committed event-pattern catalog, the coverage scorer, and the
   Explain registry entries for every new finding code. *)

open Loseq_core
open Loseq_analysis

let load path =
  match Loseq_verif.Suite.load path with
  | Ok s -> s
  | Error e -> Alcotest.failf "%a" Loseq_verif.Suite.pp_error e

let example dir name =
  let candidates =
    [
      Filename.concat ("examples/" ^ dir) name;
      Filename.concat ("../examples/" ^ dir) name;
      Filename.concat ("../../examples/" ^ dir) name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let labeled path =
  List.map
    (fun (e : Loseq_verif.Suite.entry) -> (e.label, e.pattern))
    (load path)

let csv name =
  match Trace_io.load_csv (example "traces" name) with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: %s" name e

let ipu = lazy (labeled (example "specs" "ipu.suite"))
let catalog_path = lazy (example "specs" "catalog.suite")

(* One full three-tier run over ipu.suite, shared by several pins. *)
let ipu_summary = lazy (Mutate.run (Lazy.force ipu))

(* ---- the CI gate ------------------------------------------------------ *)

let test_ipu_kill_rate () =
  let s = Lazy.force ipu_summary in
  Alcotest.(check bool)
    "a useful number of mutants" true (s.generated >= 40);
  Alcotest.(check bool)
    (Printf.sprintf "kill rate %.2f >= 0.9" s.kill_rate)
    true (s.kill_rate >= 0.9);
  (* every tier actually contributes on the committed suite *)
  Alcotest.(check bool) "static tier kills" true (s.killed_static > 0);
  Alcotest.(check bool) "equivalence tier kills" true
    (s.killed_equivalence > 0);
  Alcotest.(check bool) "differential tier kills" true
    (s.killed_differential > 0)

let test_ipu_stillborn_pruned () =
  let s = Lazy.force ipu_summary in
  (* conn-flips on singleton fragments and terminator flips on names the
     monitor already owns are provably equivalent *)
  Alcotest.(check bool) "some mutants are stillborn" true (s.stillborn > 0);
  let stillborn =
    List.filter (fun (r : Mutate.result) -> r.outcome = Mutate.Stillborn)
      s.results
  in
  Alcotest.(check int) "summary counts the stillborn list"
    s.stillborn (List.length stillborn);
  (* pruned, not counted against the gate *)
  let killed =
    s.killed_static + s.killed_equivalence + s.killed_differential
  in
  let denom = s.generated - s.stillborn in
  Alcotest.(check bool) "denominator excludes stillborn" true
    (Float.abs (s.kill_rate -. (float killed /. float denom)) < 1e-9)

let test_ipu_cross_validation () =
  let s = Lazy.force ipu_summary in
  Alcotest.(check bool) "lockstep replays happened" true
    (s.cross_checked > 0);
  Alcotest.(check (list (pair string string)))
    "flat and compiled never diverge" [] s.divergences

let test_survivor_witnesses () =
  let s = Lazy.force ipu_summary in
  List.iter
    (fun (r : Mutate.result) ->
      match r.outcome with
      | Mutate.Killed k ->
          Alcotest.(check bool)
            (r.mutant.id ^ " kill has a witness")
            true (String.length k.witness > 0)
      | _ -> ())
    s.results;
  let fs = Mutate.findings ~suite:"ipu.suite" s in
  List.iter
    (fun (f : Finding.t) ->
      if String.equal f.code "mutant-survived" then begin
        match f.witness with
        | Some w ->
            Alcotest.(check bool) "witness is a replay command" true
              (String.length w > 0)
        | None -> Alcotest.fail "mutant-survived without replay witness"
      end)
    fs

(* A single mutant replay (the --mutant path) reproduces the full run's
   outcome for that mutant. *)
let test_single_mutant_replay () =
  let s = Lazy.force ipu_summary in
  let some_killed =
    List.find
      (fun (r : Mutate.result) ->
        match r.outcome with Mutate.Killed _ -> true | _ -> false)
      s.results
  in
  let replay =
    Mutate.run ~only:some_killed.mutant.id (Lazy.force ipu)
  in
  match replay.results with
  | [ r ] ->
      Alcotest.(check string) "same mutant" some_killed.mutant.id r.mutant.id;
      Alcotest.(check bool) "still killed" true
        (match r.outcome with Mutate.Killed _ -> true | _ -> false)
  | rs -> Alcotest.failf "--mutant replay ran %d mutants" (List.length rs)

(* ---- trace quality moves the kill rate -------------------------------- *)

let test_weak_traces_lower_kill_rate () =
  let suite = Lazy.force ipu in
  let full = Mutate.run ~tiers:[ Mutate.Differential ] suite in
  let weak = Mutate.run ~tiers:[ Mutate.Differential ] ~weak:true suite in
  Alcotest.(check bool)
    (Printf.sprintf "full %.2f > weak %.2f" full.kill_rate weak.kill_rate)
    true
    (full.kill_rate > weak.kill_rate);
  (* the weakened set misses whole operator families *)
  Alcotest.(check bool) "weak rate below the gate" true (weak.kill_rate < 0.9);
  Alcotest.(check bool) "full differential is strong" true
    (full.kill_rate >= 0.8)

(* ---- the event-pattern catalog ---------------------------------------- *)

let test_catalog_analyzes_clean () =
  let items =
    List.map
      (fun (e : Loseq_verif.Suite.entry) ->
        Analysis.item ~line:e.line e.label e.pattern)
      (load (Lazy.force catalog_path))
  in
  Alcotest.(check int) "eight shapes" 8 (List.length items);
  let errors =
    List.filter
      (fun (f : Finding.t) -> f.severity = Finding.Error)
      (Analysis.analyze items)
  in
  Alcotest.(check int) "no error finding" 0 (List.length errors)

let catalog_verdicts trace =
  Loseq_verif.Suite.check_trace (load (Lazy.force catalog_path)) trace

let test_catalog_ok_trace () =
  List.iter
    (fun (label, passed) ->
      Alcotest.(check bool) (label ^ " passes catalog_ok") true passed)
    (catalog_verdicts (csv "catalog_ok.csv"))

let test_catalog_bad_trace () =
  let expected =
    [
      ("precedence", false);
      ("response_bounded", false);
      ("chain_precedence", false);
      ("bounded_existence", false);
      ("choice", false);
      ("conjunction", false);
      ("chain_response", true);
      ("burst_response", true);
    ]
  in
  let verdicts = catalog_verdicts (csv "catalog_bad.csv") in
  List.iter
    (fun (label, want) ->
      match List.assoc_opt label verdicts with
      | Some got ->
          Alcotest.(check bool) (label ^ " on catalog_bad") want got
      | None -> Alcotest.failf "no verdict for %s" label)
    expected

(* The catalog traces feed the differential tier: with them, the
   catalog suite's own mutants die at a healthy rate. *)
let test_catalog_mutation () =
  let s =
    Mutate.run
      ~traces:[ csv "catalog_ok.csv"; csv "catalog_bad.csv" ]
      (labeled (Lazy.force catalog_path))
  in
  Alcotest.(check bool)
    (Printf.sprintf "catalog kill rate %.2f >= 0.9" s.kill_rate)
    true (s.kill_rate >= 0.9);
  Alcotest.(check (list (pair string string))) "no divergence" [] s.divergences

(* ---- table patches ----------------------------------------------------- *)

let test_patched_clone_and_validation () =
  let p = Parser.pattern_exn "take_lock < release_lock <<! bus_idle" in
  let orig = Compiled.compile p in
  let clone = Compiled.patched orig Compiled.no_patch in
  let tr =
    [
      { Trace.name = Name.v "take_lock"; time = 1 };
      { Trace.name = Name.v "release_lock"; time = 2 };
      { Trace.name = Name.v "bus_idle"; time = 3 };
    ]
  in
  List.iter (fun e -> ignore (Compiled.step orig e)) tr;
  List.iter (fun e -> ignore (Compiled.step clone e)) tr;
  Alcotest.(check bool) "clone replays like the original" true
    (Compiled.verdict orig = Compiled.verdict clone);
  match
    Compiled.patched orig { Compiled.no_patch with set_lo = [ (99, 1) ] }
  with
  | _ -> Alcotest.fail "bad recognizer index accepted"
  | exception Invalid_argument _ -> ()

(* ---- reachable coverage ------------------------------------------------ *)

let test_coverage_empty_and_full () =
  let label, p =
    List.find (fun (l, _) -> l = "lock_protocol") (Lazy.force ipu)
  in
  let empty = Cover.report ~label p [] in
  Alcotest.(check int) "only the initial state visited" 1
    empty.visited_states;
  Alcotest.(check bool) "reachable set is larger" true
    (empty.reachable_states > 1);
  Alcotest.(check bool) "uncovered witness produced" true
    (empty.uncovered_witness <> None);
  (match empty.uncovered_witness with
  | Some w ->
      (* the witness is replayable and reaches a new state *)
      let after = Cover.report ~label p [ w ] in
      Alcotest.(check bool) "witness extends coverage" true
        (after.visited_states > empty.visited_states)
  | None -> ());
  let fs = Cover.findings [ empty ] in
  Alcotest.(check bool) "coverage-gap emitted" true
    (List.exists
       (fun (f : Finding.t) ->
         String.equal f.code "coverage-gap" && f.witness <> None)
       fs);
  (* a boundary-probing workload covers strictly more, never more than
     the reachable set *)
  let items =
    Mutate.workload ~seed:0x5eed ~weak:false (label, p)
  in
  let covered =
    Cover.report ~label p (List.map (fun (it : Mutate.item) -> it.trace) items)
  in
  Alcotest.(check bool) "visited <= reachable" true
    (covered.visited_states <= covered.reachable_states
    && covered.visited_edges <= covered.reachable_edges);
  Alcotest.(check bool) "workload visits most of the space" true
    (covered.visited_states > empty.visited_states)

(* ---- Explain registry -------------------------------------------------- *)

let test_new_codes_explained () =
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (code ^ " registered in Explain")
        true
        (Explain.find code <> None))
    [ "mutant-survived"; "mutation-kill-floor"; "coverage-gap";
      "backend-divergence" ];
  (* everything the two new finding producers can emit is explained:
     force a floor breach so mutation-kill-floor actually fires *)
  let s = Lazy.force ipu_summary in
  let fs =
    Mutate.findings ~floor:101. ~suite:"ipu.suite" s
    @ Cover.findings
        [ Cover.report ~label:"lock_protocol"
            (snd
               (List.find (fun (l, _) -> l = "lock_protocol")
                  (Lazy.force ipu)))
            [] ]
  in
  Alcotest.(check bool) "floor breach fires" true
    (List.exists
       (fun (f : Finding.t) -> String.equal f.code "mutation-kill-floor")
       fs);
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool)
        (f.code ^ " emitted and explained")
        true
        (Explain.find f.code <> None))
    fs

let () =
  Alcotest.run "mutate"
    [
      ( "gate",
        [
          Alcotest.test_case "ipu kill rate" `Quick test_ipu_kill_rate;
          Alcotest.test_case "stillborn pruned" `Quick
            test_ipu_stillborn_pruned;
          Alcotest.test_case "flat cross-validation" `Quick
            test_ipu_cross_validation;
          Alcotest.test_case "witnesses" `Quick test_survivor_witnesses;
          Alcotest.test_case "single-mutant replay" `Quick
            test_single_mutant_replay;
        ] );
      ( "trace quality",
        [
          Alcotest.test_case "weak traces lower the rate" `Quick
            test_weak_traces_lower_kill_rate;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "analyzes clean" `Quick
            test_catalog_analyzes_clean;
          Alcotest.test_case "ok trace" `Quick test_catalog_ok_trace;
          Alcotest.test_case "bad trace pins" `Quick test_catalog_bad_trace;
          Alcotest.test_case "catalog mutation" `Quick test_catalog_mutation;
        ] );
      ( "patches",
        [
          Alcotest.test_case "clone and validation" `Quick
            test_patched_clone_and_validation;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "empty vs workload" `Quick
            test_coverage_empty_and_full;
        ] );
      ( "explain",
        [
          Alcotest.test_case "new codes" `Quick test_new_codes_explained;
        ] );
    ]
