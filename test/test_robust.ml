(* Commutation analysis and lateness-robustness certificates:
   deterministic pins on the committed example suites (including the
   twin-trace CSVs), replay of every racy-pair witness through both the
   direct and compiled backends, qcheck swap-invariance of
   commuting-declared pairs, and completeness of the Explain
   registry. *)

open Loseq_core
open Loseq_analysis
open Loseq_testutil

let load path =
  match Loseq_verif.Suite.load path with
  | Ok s -> s
  | Error e -> Alcotest.failf "%a" Loseq_verif.Suite.pp_error e

(* Locate a committed example whether the binary runs from the
   workspace root (dune exec) or the test directory (dune runtest). *)
let example dir name =
  let candidates =
    [
      Filename.concat ("examples/" ^ dir) name;
      Filename.concat ("../examples/" ^ dir) name;
      Filename.concat ("../../examples/" ^ dir) name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let racy = example "specs" "racy.suite"
let ipu = example "specs" "ipu.suite"

let labeled path =
  List.map
    (fun (e : Loseq_verif.Suite.entry) -> (e.label, e.pattern))
    (load path)

(* Run one pattern over a witness trace on a given backend, finalizing
   at the instant the twin traces are decided at. *)
let passes_via (factory : Backend.factory) ?final_time p tr =
  let b = factory p in
  List.iter (fun e -> ignore (b.Backend.step e)) tr;
  let now =
    match final_time with Some t -> t | None -> Trace.end_time tr
  in
  Backend.passed (b.Backend.finalize ~now)

let backends =
  [
    ("compiled", Backend.compiled);
    ("direct", fun p -> Backend.direct p);
    ("flat", Backend.flat);
  ]

let name_strings (a, b) =
  List.sort compare [ Name.to_string a; Name.to_string b ]

(* ---- the committed racy suite ---------------------------------------- *)

let test_racy_certificate () =
  let cert = Robust.certificate (labeled racy) in
  Alcotest.(check bool) "suite bound is 0" true (cert.bound = Robust.Finite 0);
  Alcotest.(check bool) "certificate decided" true cert.decided;
  let entry l =
    List.find (fun (e : Robust.entry) -> String.equal e.label l) cert.entries
  in
  let handshake = entry "handshake" in
  Alcotest.(check bool) "handshake has races" true (handshake.races <> []);
  Alcotest.(check bool)
    "handshake req/ack is racy" true
    (List.exists
       (fun (r : Commute.race) ->
         name_strings (r.a, r.b) = [ "ack"; "req" ])
       handshake.races);
  let commit = entry "commit_guard" in
  Alcotest.(check bool)
    "cfg_addr/cfg_size commute" true
    (List.exists
       (fun pair -> name_strings pair = [ "cfg_addr"; "cfg_size" ])
       commit.commuting);
  Alcotest.(check bool) "commit_guard still racy" true (commit.races <> []);
  let irq = entry "irq_window" in
  Alcotest.(check bool) "irq_window is time-fragile" true irq.time_fragile;
  Alcotest.(check bool)
    "irq_window time bound 0" true
    (irq.time_bound = Robust.Finite 0)

let test_racy_findings () =
  let fs = Robust.race_findings (labeled racy) in
  let codes = List.map (fun (f : Finding.t) -> f.code) fs in
  Alcotest.(check bool) "race-pair emitted" true (List.mem "race-pair" codes);
  Alcotest.(check bool)
    "jitter-fragile emitted" true
    (List.mem "jitter-fragile" codes);
  List.iter
    (fun (f : Finding.t) ->
      if String.equal f.code "race-pair" then
        Alcotest.(check bool) "race-pair carries a witness" true
          (f.witness <> None))
    fs;
  (* an oversized hosting window turns into errors *)
  let unsafe =
    Robust.findings ~lateness:1 (Robust.certificate (labeled racy))
  in
  Alcotest.(check int) "reorder-unsafe is an error" 2 (Finding.exit_code unsafe)

let test_ipu_certificate () =
  let cert = Robust.certificate ~budget:20_000 (labeled ipu) in
  Alcotest.(check bool) "ipu bound is 0" true (cert.bound = Robust.Finite 0)

(* The committed twin CSV pair: identical except for one adjacent
   req/ack swap, and the suite verdict flips. *)
let test_twin_traces () =
  let suite = load racy in
  let trace name =
    match Trace_io.load_csv (example "traces" name) with
    | Ok t -> t
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  let ok = trace "racy_ok.csv" and swapped = trace "racy_swapped.csv" in
  Alcotest.(check int) "same length" (Trace.length ok) (Trace.length swapped);
  let verdict tr = Loseq_verif.Suite.check_trace suite tr in
  let passed label tr =
    match List.assoc_opt label (verdict tr) with
    | Some b -> b
    | None -> Alcotest.failf "no verdict for %s" label
  in
  Alcotest.(check bool) "handshake passes in-order" true
    (passed "handshake" ok);
  Alcotest.(check bool) "handshake fails swapped" false
    (passed "handshake" swapped);
  Alcotest.(check bool) "commit_guard unaffected" true
    (passed "commit_guard" ok && passed "commit_guard" swapped)

(* ---- witness replay through both backends ---------------------------- *)

let check_races_diverge label p =
  let r = Commute.analyze p in
  let ft = Commute.final_time_for p in
  List.iter
    (fun (race : Commute.race) ->
      List.iter
        (fun (bname, factory) ->
          let ab = passes_via factory ?final_time:ft p race.trace_ab in
          let ba = passes_via factory ?final_time:ft p race.trace_ba in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: ab verdict matches" label bname)
            race.ab_passes ab;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: twins diverge" label bname)
            (not race.ab_passes) ba)
        backends)
    r.races

let test_witnesses_diverge () =
  List.iter (fun (label, p) -> check_races_diverge label p) (labeled racy)

(* The race pairs and the lateness certificate are statements about the
   monitored language, not about an engine: replaying every twin
   witness must give the same verdict whichever backend hosts it, so
   the certificate a flat deployment relies on is the same one the
   compiled analysis produced. *)
let test_witnesses_backend_agree () =
  List.iter
    (fun (label, p) ->
      let r = Commute.analyze p in
      let ft = Commute.final_time_for p in
      List.iter
        (fun (race : Commute.race) ->
          List.iter
            (fun tr ->
              let verdicts =
                List.map
                  (fun (bname, factory) ->
                    (bname, passes_via factory ?final_time:ft p tr))
                  backends
              in
              let reference = snd (List.hd verdicts) in
              List.iter
                (fun (bname, v) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: %s agrees on the twin" label bname)
                    reference v)
                verdicts)
            [ race.trace_ab; race.trace_ba ])
        r.races)
    (labeled racy)

(* ---- qcheck ----------------------------------------------------------- *)

(* Traces with frequent timestamp ties, so that the tie-swap half of the
   robustness claim is actually exercised on timed patterns. *)
let gen_pattern_and_tie_trace =
  QCheck2.Gen.(
    let* p = gen_pattern in
    let* word = gen_alpha_word p in
    let* gaps = list_size (return (List.length word)) (int_range 0 1) in
    let time = ref 0 in
    let trace =
      List.map2
        (fun n gap ->
          time := !time + gap;
          { Trace.name = n; time = !time })
        word gaps
    in
    return (p, trace))

let print_pattern_and_tie_trace (p, trace) =
  Format.asprintf "@[<v>pattern: %a@,trace: %s@]" Pattern.pp p
    (Trace.to_string trace)

let swap_at i tr =
  let arr = Array.of_list tr in
  let a = arr.(i) and b = arr.(i + 1) in
  arr.(i) <- { a with Trace.name = b.Trace.name };
  arr.(i + 1) <- { b with Trace.name = a.Trace.name };
  Array.to_list arr

(* (a) pairs the analysis declares commuting never flip the concrete
   verdict under an adjacent swap — for untimed patterns at any
   timestamp gap, for timed patterns when the two events are stamped
   identically (the certificate's tie-swap envelope; a larger gap moves
   deadline arithmetic, which is [time_bound]'s business, not
   commutation's). *)
let test_commuting_swaps =
  qtest ~count:150 "commuting pairs are swap-invariant"
    gen_pattern_and_tie_trace print_pattern_and_tie_trace (fun (p, trace) ->
      let r = Commute.analyze ~budget:10_000 p in
      let commuting x y =
        List.exists
          (fun (a, b) ->
            (Name.equal a x && Name.equal b y)
            || (Name.equal a y && Name.equal b x))
          r.commuting
      in
      let deadline_slack =
        match p with
        | Pattern.Timed t -> t.Pattern.deadline + 1
        | Pattern.Antecedent _ -> 1
      in
      let arr = Array.of_list trace in
      let ok = ref true in
      for i = 0 to Array.length arr - 2 do
        let a = arr.(i) and b = arr.(i + 1) in
        let tie_ok =
          match p with
          | Pattern.Antecedent _ -> true
          | Pattern.Timed _ -> a.Trace.time = b.Trace.time
        in
        if
          tie_ok
          && (not (Name.equal a.Trace.name b.Trace.name))
          && commuting a.Trace.name b.Trace.name
        then begin
          let swapped = swap_at i trace in
          List.iter
            (fun final_time ->
              let v tr = Compiled.accepts ?final_time p tr in
              if v trace <> v swapped then ok := false)
            [ None; Some (Trace.end_time trace + deadline_slack) ]
        end
      done;
      !ok)

(* (b) every emitted racy-pair witness diverges when replayed through
   both backends (check_races_diverge alcotest-fails otherwise, and the
   analyzer itself raises on twins that agree). *)
let test_random_witnesses =
  qtest ~count:150 "racy witnesses diverge on both backends" gen_pattern
    (Format.asprintf "%a" Pattern.pp) (fun p ->
      check_races_diverge "random" p;
      true)

(* ---- Explain completeness -------------------------------------------- *)

(* Every finding code any checker in the code base can emit.  Keep in
   sync with the emission sites in Checks, Suite_checks, Robust and
   Lint — the dynamic half below catches codes this list misses only if
   the committed suites happen to trigger them. *)
let all_emittable =
  [
    "violation-unsat";
    "vacuous-unviolatable";
    "match-unsat";
    "dead-name";
    "deadline-infeasible";
    "deadline-tight";
    "subsumed-checker";
    "equivalent-checkers";
    "conflicting-pair";
    "race-pair";
    "jitter-fragile";
    "reorder-unsafe";
    "analysis-budget";
    "singleton-disjunction";
    "zero-deadline";
    "tight-deadline";
    "wide-range";
    "huge-counter";
    "state-space";
    "unbounded-trigger";
    (* mutation / coverage quality gate (Mutate, Cover) *)
    "mutant-survived";
    "mutation-kill-floor";
    "coverage-gap";
    "backend-divergence";
  ]

let test_explain_complete () =
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (code ^ " has an Explain entry")
        true
        (Explain.find code <> None))
    all_emittable;
  (* dynamic half: whatever actually fires on the committed suites *)
  let items path =
    List.map
      (fun (e : Loseq_verif.Suite.entry) ->
        Analysis.item ~file:path ~line:e.line e.label e.pattern)
      (load path)
  in
  let fs =
    Analysis.analyze (items racy @ items (example "specs" "defective.suite"))
    @ Robust.findings ~lateness:1024 (Robust.certificate (labeled racy))
  in
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool)
        (f.code ^ " emitted and explained")
        true
        (Explain.find f.code <> None))
    fs

let () =
  Alcotest.run "robust"
    [
      ( "certificate",
        [
          Alcotest.test_case "racy.suite certificate" `Quick
            test_racy_certificate;
          Alcotest.test_case "racy.suite findings" `Quick test_racy_findings;
          Alcotest.test_case "ipu.suite certificate" `Quick
            test_ipu_certificate;
          Alcotest.test_case "twin trace CSVs" `Quick test_twin_traces;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "committed suites diverge" `Quick
            test_witnesses_diverge;
          Alcotest.test_case "backends agree on twins" `Quick
            test_witnesses_backend_agree;
          test_random_witnesses;
        ] );
      ("commutation", [ test_commuting_swaps ]);
      ("explain", [ Alcotest.test_case "completeness" `Quick test_explain_complete ]);
    ]
