(** Cost model for the ViaPSL monitoring strategy (paper, Section 7).

    Pierre & Ferro's monitor synthesis [14] produces, for a PSL formula,
    a network of primitive monitors whose per-event time and storage are
    {e linear in the size of the formula}; the paper's ViaPSL columns
    follow that law, plus the cost [Δ] of the run-length lexer that
    implements the range re-encoding.

    We therefore model
    [ops = k_t · |f| + Δ] and [bits = k_s · |f| + Δ], with [|f|] the
    node count of the Section-5 encoding ({!Translate.formula_size}) and
    the constants [k_t = 238/26] and [k_s = 896/26] calibrated so that
    the first configuration of Fig. 6 ([n << i] with trivial range)
    reproduces the paper's [238 + Δ] ops and [896 + Δ] bits exactly. *)

open Loseq_core

type t = {
  ops_per_event : int;  (** excluding [Δ] *)
  space_bits : int;  (** excluding [Δ] *)
  delta : int;  (** the lexer cost [Δ] *)
  formula_size : int;
}

val via_psl : Pattern.t -> t

val theta_time : Pattern.t -> int
(** The paper's ViaPSL asymptotic parameter
    [Σᵢ (vᵢ-uᵢ+1)² + Σⱼ |α(Fⱼ)|·|α(Fⱼ₋₁)|] (expanded alphabets). *)

val pp : Format.formatter -> t -> unit
