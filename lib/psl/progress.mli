(** An executable PSL monitor, by formula progression
    (Havelund–Roşu-style rewriting).

    This makes the ViaPSL strategy of the paper {e runnable}, not just
    costed: the Section-5 encoding of a pattern can be monitored online
    by rewriting the formula through each event, and its per-event work
    (rewrite steps, residual formula size) can be measured and compared
    against the Drct monitors — an empirical version of Fig. 6.

    Progression satisfies the identity
    [eval f w  =  eval (progress* f w) ε] (strong finite-trace
    semantics), which the suite property-tests on random formulas; and
    on the Section-5 encodings, "residual conclusively falsified"
    coincides with the weak-evaluation rejection used elsewhere, which
    the suite also tests. *)

open Loseq_core

val progress : ?steps:int ref -> Psl.t -> Name.t -> Psl.t
(** One step of progression.  [steps], when provided, is incremented by
    the number of AST nodes visited — the time metric. *)

type verdict =
  | Running of Psl.t  (** residual obligation *)
  | Satisfied  (** residual [True]: no extension can violate *)
  | Violated  (** residual [False]: no extension can satisfy *)

type t

val create : Psl.t -> t
val step : t -> Name.t -> verdict
val verdict : t -> verdict

val residual : t -> Psl.t
(** Current obligation ([True]/[False] once decided). *)

val weak_accept : t -> bool
(** Would the monitor accept if observation stopped now?  [true] unless
    the residual is conclusively falsified ([False]); pending
    obligations are impartially kept open, as a monitor must. *)

val steps : t -> int
(** Total rewrite steps executed — the measured ViaPSL time metric. *)

val peak_size : t -> int
(** Largest residual formula seen — the measured ViaPSL space metric. *)

val run : Psl.t -> Name.t list -> t
(** Feed a whole word. *)

val monitor_pattern : Pattern.t -> Name.t list -> bool
(** Convenience: progress the Section-5 encoding of a pattern through
    the (run-length re-encoded) word and return {!weak_accept}.  Raises
    like {!Translate.to_psl} on over-wide ranges. *)

val backend : Pattern.t -> Backend.t
(** The ViaPSL strategy as a hosting {!Loseq_core.Backend}: an online
    run-length lexer (the paper's [Δ], incremental) feeding formula
    progression.  For head-to-head validation against the Drct backends
    in a deployment; quantitative deadlines are outside PSL 1.1, so
    timed patterns are checked for their untimed [P·Q] shape only and
    [next_deadline] is always [None].  Detection is lazier than Drct
    (safety clauses may only falsify at the next reset point) and the
    verdict on violation carries {!Diag.Formula_falsified}.  Raises
    {!Wellformed.Ill_formed} and, like {!Translate.to_psl},
    [Invalid_argument] on over-wide ranges. *)
