(** LTL to Büchi automata, GPVW-style.

    The paper validated its PSL encodings with SPOT's LTL→TGBA
    translator; this module plays that role offline.  It implements the
    classic tableau construction of Gerth, Peled, Vardi and Wolper
    (PSTV'95) producing a generalized Büchi automaton, degeneralized
    with the usual counter construction.

    Letters are interface events: exactly one name per step.  A
    transition labeled with positive literals [pos] and negative
    literals [neg] is enabled by name [a] iff [pos ⊆ {a}] and
    [a ∉ neg]. *)

open Loseq_core

type label = { pos : Name.Set.t; neg : Name.Set.t }

type t = {
  num_states : int;
  initial : int list;
  labels : label array;
      (** [labels.(q)] constrains the letter read while the run is in
          [q]: a run [q0 q1 ...] over [w] requires [enabled labels.(qi)
          w(i)] at every step *)
  successors : int list array;
  accepting : bool array;
}

val of_ltl : Psl.t -> t
(** Translate (the negation normal form of) a formula. *)

val enabled : label -> Name.t -> bool

val size : t -> int * int
(** [(states, transitions)]. *)

val accepts_lasso : t -> prefix:Name.t list -> cycle:Name.t list -> bool
(** Does the automaton accept the ultimately-periodic word [u·v^ω]?
    Raises [Invalid_argument] on an empty cycle. *)

val is_empty : t -> alphabet:Name.t list -> bool
(** Language emptiness over one-name-per-step words built from
    [alphabet] plus one fresh name standing for "any other event". *)

val pp_stats : Format.formatter -> t -> unit
