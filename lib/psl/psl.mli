(** A PSL 1.1 / LTL core.

    This is the target language of the ViaPSL translation strategy
    (paper, Section 5).  Formulas are interpreted over sequences of
    interface events — at each step exactly one name occurs (the trace
    semantics used for TL models in the paper and in Pierre & Ferro's
    monitor framework).

    Three semantics are provided:
    - {!eval}: finite traces, with strong [next]/[until!] (a pending
      strong obligation at the end of the trace falsifies the formula);
    - {!eval_weak}: finite traces where pending obligations are
      discharged (the "neutral" finite-trace view used when a monitor
      has simply not failed yet);
    - {!eval_lasso}: ultimately-periodic infinite words, the semantics
      against which the {!Buchi} translation is validated. *)

open Loseq_core

type t =
  | True
  | False
  | Atom of Name.t  (** the event at this step is this name *)
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Next of t  (** strong [X] *)
  | Until of t * t  (** strong [until!] *)
  | Release of t * t  (** dual of {!Until} *)
  | Always of t  (** [G] *)
  | Eventually of t  (** [F!] *)

(** {1 Smart constructors} (perform cheap simplifications) *)

val atom : string -> t
val name : Name.t -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val next : t -> t
val until : t -> t -> t
val release : t -> t -> t
val always : t -> t
val eventually : t -> t

(** {1 Structure} *)

val size : t -> int
(** Number of AST nodes — the formula-size parameter of the ViaPSL
    monitor cost model. *)

val atoms : t -> Name.Set.t
val nnf : t -> t
(** Negation normal form over
    [{True, False, Atom, Not Atom, And, Or, Next, Until, Release}].
    Preserves the infinite-word (lasso) semantics — which is what the
    {!Buchi} translation consumes.  On finite traces, pushing a negation
    through a strong [Next] is not neutral ([¬X f ≠ X ¬f] at the last
    position), so only negated-[Next]-free formulas keep their finite
    verdicts. *)

(** {1 Semantics} *)

val eval_at : t -> Name.t array -> int -> bool
(** [eval_at f w i]: [w, i ⊨ f] with strong finite-trace semantics;
    positions [>= Array.length w] do not exist. *)

val eval : t -> Name.t array -> bool
(** [eval f w = eval_at f w 0]; the empty word satisfies only formulas
    with no step obligation. *)

val eval_weak : t -> Name.t array -> bool
(** Finite-trace evaluation where obligations pending at the end of the
    word are considered discharged: [Next]/[Until]/[Eventually] holding
    "beyond the end" count as true.  This matches a monitor that has
    not yet reported a violation. *)

val eval_lasso : t -> prefix:Name.t list -> cycle:Name.t list -> bool
(** [eval_lasso f ~prefix:u ~cycle:v]: [u·v^ω ⊨ f].  Raises
    [Invalid_argument] on an empty cycle. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
