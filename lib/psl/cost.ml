open Loseq_core

type t = {
  ops_per_event : int;
  space_bits : int;
  delta : int;
  formula_size : int;
}

(* Calibration on Fig. 6 row 1, whose encoding has 26 nodes. *)
let k_time_num, k_time_den = (238, 26)
let k_space_num, k_space_den = (896, 26)

let scale num den size = ((size * num) + (den / 2)) / den

let via_psl p =
  let formula_size = Translate.formula_size p in
  {
    ops_per_event = scale k_time_num k_time_den formula_size;
    space_bits = scale k_space_num k_space_den formula_size;
    delta = Translate.delta_cost p;
    formula_size;
  }

let theta_time p =
  let ordering = Pattern.body_ordering p in
  let widths =
    List.map
      (fun (f : Pattern.fragment) ->
        List.fold_left
          (fun acc r -> acc + Translate.expansion_width r)
          0 f.ranges)
      ordering
  in
  let squares =
    List.fold_left
      (fun acc (f : Pattern.fragment) ->
        List.fold_left
          (fun acc r ->
            let w = Translate.expansion_width r in
            acc + (w * w))
          acc f.ranges)
      0 ordering
  in
  let rec consecutive acc = function
    | a :: (b :: _ as rest) -> consecutive (acc + (a * b)) rest
    | [ _ ] | [] -> acc
  in
  squares + consecutive 0 widths

let pp ppf c =
  Format.fprintf ppf "%d+D ops/event, %d+D bits (|f|=%d, D=%d)"
    c.ops_per_event c.space_bits c.formula_size c.delta
