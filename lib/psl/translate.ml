open Loseq_core

let expansion_width (r : Pattern.range) = r.hi - r.lo + 1
let needs_expansion (r : Pattern.range) = not (r.lo = 1 && r.hi = 1)

let expanded_name (r : Pattern.range) k =
  Name.v (Name.to_string r.name ^ "." ^ string_of_int k)

let invalid_name r = expanded_name r 0

let max_materialized_width = 100_000

let expanded_names r =
  if not (needs_expansion r) then [ r.Pattern.name ]
  else if expansion_width r > max_materialized_width then
    invalid_arg "Translate.expanded_names: range too wide to materialize"
  else List.init (expansion_width r) (fun k -> expanded_name r (r.lo + k))

let ranges_of p =
  List.concat_map
    (fun (f : Pattern.fragment) -> f.ranges)
    (Pattern.body_ordering p)

let expand_trace p names =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (r : Pattern.range) -> Hashtbl.replace table r.name r)
    (ranges_of p);
  let encode_run ~last (run : Semantics.run) =
    match Hashtbl.find_opt table run.name with
    | Some r when needs_expansion r ->
        if run.count >= r.lo && run.count <= r.hi then
          if last then
            (* The lexer only emits a run once it is closed by a
               different event; a trailing in-bounds run is still open
               and therefore withheld. *)
            []
          else [ expanded_name r run.count ]
        else if run.count > r.hi then [ invalid_name r ]
        else if last then [] (* still open, may yet reach [lo] *)
        else [ invalid_name r ]
    | Some _ | None -> List.init run.count (fun _ -> run.name)
  in
  let rec encode = function
    | [] -> []
    | [ run ] -> encode_run ~last:true run
    | run :: rest -> encode_run ~last:false run @ encode rest
  in
  encode (Semantics.runs names)

(* The six clause families share a small description of the pattern:
   the concatenated ordering, the reset point and its size, and whether
   clauses apply to every round ([repeated]) or only before the first
   reset. *)
type info = {
  ordering : Pattern.ordering;
  reset : Psl.t Lazy.t;  (* lazy: may reference huge expansions *)
  sz_reset : int;
  repeated : bool;
  extra_atom : bool;  (* antecedent trigger enlarges α(A) *)
}

let sz_or m = if m = 1 then 1 else m + 1

let info_of p =
  match p with
  | Pattern.Antecedent a ->
      {
        ordering = a.body;
        reset = lazy (Psl.name a.trigger);
        sz_reset = 1;
        repeated = a.repeated;
        extra_atom = true;
      }
  | Pattern.Timed g ->
      let last =
        match List.rev g.conclusion with
        | f :: _ -> f
        | [] -> assert false
      in
      let m_last =
        List.fold_left
          (fun acc r -> acc + expansion_width r)
          0 last.Pattern.ranges
      in
      {
        ordering = g.premise @ g.conclusion;
        reset =
          lazy
            (Psl.or_
               (List.concat_map
                  (fun r -> List.map Psl.name (expanded_names r))
                  last.Pattern.ranges));
        sz_reset = sz_or m_last;
        repeated = true;
        extra_atom = false;
      }

let fragment_width (f : Pattern.fragment) =
  List.fold_left (fun acc r -> acc + expansion_width r) 0 f.ranges

let weak_until f g = Psl.release g (Psl.or_ [ f; g ])

(* [scope] closes a clause body: over every round for repeated patterns,
   or only up to the first reset otherwise. *)
let scope inf body =
  if inf.repeated then Psl.always body
  else weak_until body (Lazy.force inf.reset)

let sz_scoped inf sz_body =
  if inf.repeated then 1 + sz_body else 2 + (2 * inf.sz_reset) + sz_body

(** {2 Formula construction} *)

let check_width ~max_width p =
  List.iter
    (fun r ->
      if expansion_width r > max_width then
        invalid_arg
          (Format.asprintf
             "Translate.to_psl: range %a is wider than %d; its quadratic \
              PSL encoding would not fit in memory (use formula_size)"
             Pattern.pp_range r max_width))
    (ranges_of p)

let to_psl ?(max_width = 256) p =
  Wellformed.check_exn p;
  check_width ~max_width p;
  let inf = info_of p in
  let reset = Lazy.force inf.reset in
  let fragments = Array.of_list inf.ordering in
  let expanded_fragment f =
    List.concat_map expanded_names f.Pattern.ranges
  in
  let all_names = List.concat_map expanded_fragment (Array.to_list fragments) in
  let alpha_a =
    all_names
    @
    match p with Pattern.Antecedent a -> [ a.trigger ] | Pattern.Timed _ -> []
  in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  (* Asynch: names are mutually exclusive at every step. *)
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
        List.iter
          (fun y ->
            emit (Psl.always (Psl.not_ (Psl.and_ [ Psl.name x; Psl.name y ]))))
          rest;
        pairs rest
  in
  pairs alpha_a;
  (* MaxOne: each name at most once per round. *)
  List.iter
    (fun x ->
      emit
        (scope inf
           (Psl.implies (Psl.name x)
              (Psl.next (Psl.until (Psl.not_ (Psl.name x)) reset)))))
    all_names;
  (* Range: at most one re-encoded name per range per round. *)
  List.iter
    (fun r ->
      let names = expanded_names r in
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              if not (Name.equal x y) then
                emit
                  (scope inf
                     (Psl.implies (Psl.name x)
                        (Psl.until (Psl.not_ (Psl.name y)) reset))))
            names)
        names)
    (ranges_of p);
  (* Order: a fragment's names freeze the previous fragment's names. *)
  for k = 1 to Array.length fragments - 1 do
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            emit
              (scope inf
                 (Psl.implies (Psl.name x)
                    (Psl.until (Psl.not_ (Psl.name y)) reset))))
          (expanded_fragment fragments.(k - 1)))
      (expanded_fragment fragments.(k))
  done;
  (* BeforeI: the reset point can occur only after the whole ordering;
     one clause per conjunctive range, one per disjunctive fragment. *)
  let before_after_groups =
    List.concat_map
      (fun (f : Pattern.fragment) ->
        match f.connective with
        | Pattern.All -> List.map (fun r -> expanded_names r) f.ranges
        | Pattern.Any -> [ expanded_fragment f ])
      inf.ordering
  in
  List.iter
    (fun group ->
      emit
        (Psl.until
           (Psl.not_ reset)
           (Psl.or_ (List.map Psl.name group))))
    before_after_groups;
  (* AfterI: after each reset point the ordering must be observed again
     before the next one (repeated patterns only). *)
  if inf.repeated then
    List.iter
      (fun group ->
        let disjuncts =
          List.map
            (fun x -> Psl.until (Psl.not_ reset) (Psl.name x))
            group
        in
        emit
          (Psl.always
             (Psl.implies reset (Psl.next (Psl.or_ disjuncts)))))
      before_after_groups;
  (* Forbid: out-of-bounds runs, marked [n.0] by the lexer. *)
  List.iter
    (fun r ->
      if needs_expansion r then
        emit (scope inf (Psl.not_ (Psl.name (invalid_name r)))))
    (ranges_of p);
  match List.rev !clauses with
  | [ c ] -> c
  | cs -> Psl.And cs

(** {2 Closed-form size} *)

let formula_size p =
  Wellformed.check_exn p;
  let inf = info_of p in
  let fragments = Array.of_list inf.ordering in
  let widths = Array.map fragment_width fragments in
  let m_body = Array.fold_left ( + ) 0 widths in
  let m_alpha = m_body + if inf.extra_atom then 1 else 0 in
  let ranges = ranges_of p in
  let total = ref 0 in
  let count = ref 0 in
  let add n sz =
    total := !total + (n * sz);
    count := !count + n
  in
  (* Asynch *)
  add (m_alpha * (m_alpha - 1) / 2) 5;
  (* MaxOne *)
  add m_body (sz_scoped inf (6 + inf.sz_reset));
  (* Range *)
  List.iter
    (fun r ->
      let w = expansion_width r in
      add (w * (w - 1)) (sz_scoped inf (5 + inf.sz_reset)))
    ranges;
  (* Order *)
  for k = 1 to Array.length fragments - 1 do
    add (widths.(k) * widths.(k - 1)) (sz_scoped inf (5 + inf.sz_reset))
  done;
  (* BeforeI / AfterI groups *)
  let groups =
    List.concat_map
      (fun (f : Pattern.fragment) ->
        match f.Pattern.connective with
        | Pattern.All -> List.map expansion_width f.ranges
        | Pattern.Any -> [ fragment_width f ])
      inf.ordering
  in
  List.iter (fun w -> add 1 (2 + inf.sz_reset + sz_or w)) groups;
  if inf.repeated then
    List.iter
      (fun w ->
        let disjunct = 2 + inf.sz_reset in
        let sz_disjunction =
          if w = 1 then 1 + disjunct else 1 + (w * (1 + disjunct))
        in
        add 1 (2 + inf.sz_reset + 1 + sz_disjunction))
      groups;
  (* Forbid *)
  List.iter
    (fun r -> if needs_expansion r then add 1 (sz_scoped inf 2))
    ranges;
  if !count = 1 then !total else !total + 1

let delta_cost p =
  List.fold_left
    (fun acc r -> if needs_expansion r then acc + expansion_width r else acc)
    0 (ranges_of p)
