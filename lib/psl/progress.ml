open Loseq_core

(* Keep residuals small: the plain smart constructors flatten, and we
   additionally deduplicate juxtaposed identical conjuncts/disjuncts
   (progression of [Always]/[Until] re-emits the original formula every
   step, so duplicates are the norm). *)
let dedup fs = List.sort_uniq Stdlib.compare fs

let and_simplified fs =
  match Psl.and_ fs with
  | Psl.And gs -> (
      match dedup gs with [ g ] -> g | gs -> Psl.And gs)
  | f -> f

let or_simplified fs =
  match Psl.or_ fs with
  | Psl.Or gs -> (
      match dedup gs with [ g ] -> g | gs -> Psl.Or gs)
  | f -> f

let progress ?(steps = ref 0) formula letter =
  let rec go f =
    incr steps;
    match f with
    | Psl.True -> Psl.True
    | Psl.False -> Psl.False
    | Psl.Atom a -> if Name.equal a letter then Psl.True else Psl.False
    | Psl.Not f -> Psl.not_ (go f)
    | Psl.And fs -> and_simplified (List.map go fs)
    | Psl.Or fs -> or_simplified (List.map go fs)
    | Psl.Implies (f, g) -> or_simplified [ Psl.not_ (go f); go g ]
    | Psl.Next f -> f
    | Psl.Until (f, g) ->
        (* f U! g  =  g ∨ (f ∧ X(f U! g)) *)
        or_simplified [ go g; and_simplified [ go f; Psl.Until (f, g) ] ]
    | Psl.Release (f, g) ->
        (* f R g  =  g ∧ (f ∨ X(f R g)) *)
        and_simplified [ go g; or_simplified [ go f; Psl.Release (f, g) ] ]
    | Psl.Always f -> and_simplified [ go f; Psl.Always f ]
    | Psl.Eventually f -> or_simplified [ go f; Psl.Eventually f ]
  in
  go formula

type verdict = Running of Psl.t | Satisfied | Violated

type t = {
  mutable residual : Psl.t;
  steps : int ref;
  mutable peak : int;
}

let verdict_of = function
  | Psl.True -> Satisfied
  | Psl.False -> Violated
  | f -> Running f

let create formula =
  { residual = formula; steps = ref 0; peak = Psl.size formula }

let step t letter =
  (match t.residual with
  | Psl.True | Psl.False -> ()
  | f ->
      let f' = progress ~steps:t.steps f letter in
      t.residual <- f';
      t.peak <- max t.peak (Psl.size f'));
  verdict_of t.residual

let verdict t = verdict_of t.residual
let residual t = t.residual
let weak_accept t = t.residual <> Psl.False
let steps t = !(t.steps)
let peak_size t = t.peak

let run formula word =
  let t = create formula in
  List.iter (fun letter -> ignore (step t letter)) word;
  t

let monitor_pattern p word =
  let formula = Translate.to_psl p in
  let encoded = Translate.expand_trace p word in
  weak_accept (run formula encoded)

(* ---- hosting backend --------------------------------------------------- *)

(* Online run-length lexer: the incremental counterpart of
   [Translate.expand_trace].  A run of a re-encoded range name is
   buffered until a different (alphabet) event closes it, then emitted
   as the single letter [n.k]; runs that overflow their upper bound emit
   the invalid marker [n.0] immediately and absorb the rest of the run.
   A trailing open run is withheld, as an online lexer must — pending
   obligations stay impartially open, which is exactly the weak
   acceptance [finalize] reports. *)
type lexer = {
  table : (Name.t, Pattern.range) Hashtbl.t;
  mutable run : (Pattern.range * int * bool) option;
      (* range, count, overflow already reported *)
}

let lexer_create p =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (f : Pattern.fragment) ->
      List.iter
        (fun (r : Pattern.range) ->
          if Translate.needs_expansion r then Hashtbl.replace table r.name r)
        f.ranges)
    (Pattern.body_ordering p);
  { table; run = None }

(* Letters produced by one input event: 0, 1 or 2. *)
let lexer_feed lx name emit =
  let open_run name =
    match Hashtbl.find_opt lx.table name with
    | Some r -> lx.run <- Some (r, 1, false)
    | None -> emit name
  in
  match lx.run with
  | Some ((r : Pattern.range), k, overflowed) when Name.equal name r.name ->
      if overflowed then ()
      else if k + 1 > r.hi then begin
        emit (Translate.invalid_name r);
        lx.run <- Some (r, k + 1, true)
      end
      else lx.run <- Some (r, k + 1, false)
  | Some (r, k, overflowed) ->
      if not overflowed then
        emit
          (if k >= r.Pattern.lo then Translate.expanded_name r k
           else Translate.invalid_name r);
      lx.run <- None;
      open_run name
  | None -> open_run name

let backend p =
  let open Loseq_core in
  Wellformed.check_exn p;
  let formula = Translate.to_psl p in
  let alphabet = Pattern.alpha p in
  let monitor = ref (create formula) in
  let lexer = ref (lexer_create p) in
  let index = ref 0 in
  let sticky = ref Backend.Running in
  let lift time = function
    | Satisfied ->
        sticky := Backend.Satisfied;
        !sticky
    | Violated ->
        sticky :=
          Backend.Violated
            {
              Diag.name = None;
              time;
              index = !index - 1;
              fragment = 0;
              reason = Diag.Formula_falsified;
            };
        !sticky
    | Running _ -> Backend.Running
  in
  let step (e : Trace.event) =
    match !sticky with
    | (Backend.Satisfied | Backend.Violated _) as v -> v
    | Backend.Running ->
        if not (Name.Set.mem e.name alphabet) then Backend.Running
        else begin
          incr index;
          lexer_feed !lexer e.name (fun letter ->
              match !sticky with
              | Backend.Running -> ignore (lift e.time (step !monitor letter))
              | Backend.Satisfied | Backend.Violated _ -> ());
          !sticky
        end
  in
  Backend.make ~label:"psl" ~pattern:p ~alphabet ~step
    ~verdict:(fun () -> !sticky)
    ~reset:(fun () ->
      monitor := create formula;
      lexer := lexer_create p;
      index := 0;
      sticky := Backend.Running)
    ~ops:(fun () -> steps !monitor)
    ()
