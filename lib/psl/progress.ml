open Loseq_core

(* Keep residuals small: the plain smart constructors flatten, and we
   additionally deduplicate juxtaposed identical conjuncts/disjuncts
   (progression of [Always]/[Until] re-emits the original formula every
   step, so duplicates are the norm). *)
let dedup fs = List.sort_uniq Stdlib.compare fs

let and_simplified fs =
  match Psl.and_ fs with
  | Psl.And gs -> (
      match dedup gs with [ g ] -> g | gs -> Psl.And gs)
  | f -> f

let or_simplified fs =
  match Psl.or_ fs with
  | Psl.Or gs -> (
      match dedup gs with [ g ] -> g | gs -> Psl.Or gs)
  | f -> f

let progress ?(steps = ref 0) formula letter =
  let rec go f =
    incr steps;
    match f with
    | Psl.True -> Psl.True
    | Psl.False -> Psl.False
    | Psl.Atom a -> if Name.equal a letter then Psl.True else Psl.False
    | Psl.Not f -> Psl.not_ (go f)
    | Psl.And fs -> and_simplified (List.map go fs)
    | Psl.Or fs -> or_simplified (List.map go fs)
    | Psl.Implies (f, g) -> or_simplified [ Psl.not_ (go f); go g ]
    | Psl.Next f -> f
    | Psl.Until (f, g) ->
        (* f U! g  =  g ∨ (f ∧ X(f U! g)) *)
        or_simplified [ go g; and_simplified [ go f; Psl.Until (f, g) ] ]
    | Psl.Release (f, g) ->
        (* f R g  =  g ∧ (f ∨ X(f R g)) *)
        and_simplified [ go g; or_simplified [ go f; Psl.Release (f, g) ] ]
    | Psl.Always f -> and_simplified [ go f; Psl.Always f ]
    | Psl.Eventually f -> or_simplified [ go f; Psl.Eventually f ]
  in
  go formula

type verdict = Running of Psl.t | Satisfied | Violated

type t = {
  mutable residual : Psl.t;
  steps : int ref;
  mutable peak : int;
}

let verdict_of = function
  | Psl.True -> Satisfied
  | Psl.False -> Violated
  | f -> Running f

let create formula =
  { residual = formula; steps = ref 0; peak = Psl.size formula }

let step t letter =
  (match t.residual with
  | Psl.True | Psl.False -> ()
  | f ->
      let f' = progress ~steps:t.steps f letter in
      t.residual <- f';
      t.peak <- max t.peak (Psl.size f'));
  verdict_of t.residual

let verdict t = verdict_of t.residual
let residual t = t.residual
let weak_accept t = t.residual <> Psl.False
let steps t = !(t.steps)
let peak_size t = t.peak

let run formula word =
  let t = create formula in
  List.iter (fun letter -> ignore (step t letter)) word;
  t

let monitor_pattern p word =
  let formula = Translate.to_psl p in
  let encoded = Translate.expand_trace p word in
  weak_accept (run formula encoded)
