(** Translation of loose-ordering patterns into PSL (paper, Section 5).

    The translation has two pieces:

    - a {e lexical re-encoding} of ranges: a maximal run of [k]
      consecutive occurrences of [n] becomes a single occurrence of the
      fresh name [n.k] ("treat sequences of consecutive occurrences of a
      range's name as new elements").  A range [n[u,v]] therefore
      contributes the [v-u+1] names [n.u .. n.v]; runs outside the
      bounds map to the distinguished invalid name [n.0], which the
      formula forbids.  Ranges [n[1,1]] are not re-encoded.  The cost of
      this preprocessing step is the paper's [Δ];
    - six families of LTL clauses over the re-encoded alphabet:
      {e Asynch} (mutual exclusion of names), {e MaxOne} (each name at
      most once per round), {e Range} (at most one name per range per
      round — the quadratically exploding family), {e Order} (a
      fragment's names freeze the previous fragment's), {e BeforeI} (the
      reset point only after the whole ordering) and {e AfterI} (the
      ordering again before each later reset point, repeated patterns
      only).

    Where the paper's sketch is ambiguous we deviate minimally and
    document it here: disjunctive fragments get disjunctive
    {e BeforeI}/{e AfterI} clauses; non-repeated antecedents relativize
    every clause to the region before the first trigger with a weak
    until ([φ W i ≡ i R (φ ∨ i)]); for timed implications — whose
    quantitative deadline PSL 1.1 cannot express, as the paper also
    notes — the reset point is the disjunction of the conclusion's last
    fragment's names and the translation captures the untimed
    concatenation [P·Q]. *)

open Loseq_core

val expansion_width : Pattern.range -> int
(** [v - u + 1] — the paper's [(vᵢ - uᵢ + 1)] parameter. *)

val needs_expansion : Pattern.range -> bool
(** [false] exactly for [n[1,1]]. *)

val expanded_name : Pattern.range -> int -> Name.t
(** [expanded_name r k] is the re-encoded name [n.k] for a run of [k]
    consecutive occurrences of [r.name] ([n.0] is {!invalid_name}). *)

val expanded_names : Pattern.range -> Name.t list
(** [E(R)]: the names the range contributes to the re-encoded alphabet.
    Raises [Invalid_argument] when wider than 100_000 (materializing a
    [n[100,60000]] alphabet is the explosion the paper measures; callers
    wanting only its size must use {!expansion_width}). *)

val invalid_name : Pattern.range -> Name.t
(** The [n.0] marker for out-of-bounds runs. *)

val expand_trace : Pattern.t -> Name.t list -> Name.t list
(** The lexical analyzer [Δ]: collapse runs of re-encoded range names.
    Names outside the pattern alphabet pass through unchanged.  A
    trailing run that is still open (it could grow within its bounds) is
    withheld, as an online lexer only emits a run once a different event
    closes it; a trailing run already above its upper bound is emitted
    as the invalid marker immediately. *)

val to_psl : ?max_width:int -> Pattern.t -> Psl.t
(** Build the PSL encoding.  Raises [Invalid_argument] if some range is
    wider than [max_width] (default 256) — the quadratic families would
    materialize billions of clauses, which is precisely the point of the
    paper's comparison. *)

val formula_size : Pattern.t -> int
(** Closed-form size of {!to_psl}'s result (node count), computed
    without materializing the formula, so it works for
    [n[100,60000]]-style ranges.  Agrees exactly with
    [Psl.size (to_psl p)] whenever the latter is buildable. *)

val delta_cost : Pattern.t -> int
(** [Δ]: the cost of the run-length lexer, modeled as the size of the
    re-encoded alphabet it must recognize. *)
