open Loseq_core

type t =
  | True
  | False
  | Atom of Name.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Next of t
  | Until of t * t
  | Release of t * t
  | Always of t
  | Eventually of t

let atom s = Atom (Name.v s)
let name n = Atom n

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let and_ fs =
  let fs =
    List.concat_map (function And gs -> gs | True -> [] | f -> [ f ]) fs
  in
  if List.mem False fs then False
  else match fs with [] -> True | [ f ] -> f | fs -> And fs

let or_ fs =
  let fs =
    List.concat_map (function Or gs -> gs | False -> [] | f -> [ f ]) fs
  in
  if List.mem True fs then True
  else match fs with [] -> False | [ f ] -> f | fs -> Or fs

let implies f g = if f = True then g else if f = False then True else Implies (f, g)
let next f = Next f
let until f g = Until (f, g)
let release f g = Release (f, g)
let always = function True -> True | f -> Always f
let eventually = function True -> True | f -> Eventually f

let rec size = function
  | True | False | Atom _ -> 1
  | Not f | Next f | Always f | Eventually f -> 1 + size f
  | And fs | Or fs -> 1 + List.fold_left (fun acc f -> acc + size f) 0 fs
  | Implies (f, g) | Until (f, g) | Release (f, g) -> 1 + size f + size g

let rec atoms = function
  | True | False -> Name.Set.empty
  | Atom n -> Name.Set.singleton n
  | Not f | Next f | Always f | Eventually f -> atoms f
  | And fs | Or fs ->
      List.fold_left (fun acc f -> Name.Set.union acc (atoms f)) Name.Set.empty
        fs
  | Implies (f, g) | Until (f, g) | Release (f, g) ->
      Name.Set.union (atoms f) (atoms g)

let rec nnf f =
  match f with
  | True | False | Atom _ -> f
  | And fs -> And (List.map nnf fs)
  | Or fs -> Or (List.map nnf fs)
  | Implies (f, g) -> Or [ nnf (Not f); nnf g ]
  | Next f -> Next (nnf f)
  | Until (f, g) -> Until (nnf f, nnf g)
  | Release (f, g) -> Release (nnf f, nnf g)
  | Always f -> Release (False, nnf f)
  | Eventually f -> Until (True, nnf f)
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom _ -> Not g
      | Not h -> nnf h
      | And fs -> Or (List.map (fun h -> nnf (Not h)) fs)
      | Or fs -> And (List.map (fun h -> nnf (Not h)) fs)
      | Implies (h, k) -> And [ nnf h; nnf (Not k) ]
      | Next h -> Next (nnf (Not h))
      | Until (h, k) -> Release (nnf (Not h), nnf (Not k))
      | Release (h, k) -> Until (nnf (Not h), nnf (Not k))
      | Always h -> Until (True, nnf (Not h))
      | Eventually h -> Release (False, nnf (Not h)))

(* Strong ([weak = false]) or weak finite-trace semantics; a position at
   or beyond the word's end has no events, so step obligations resolve
   to [weak]. *)
let rec eval_gen ~weak f w i =
  let n = Array.length w in
  match f with
  | True -> true
  | False -> false
  | Atom a -> i < n && Name.equal w.(i) a
  | Not f -> not (eval_gen ~weak f w i)
  | And fs -> List.for_all (fun f -> eval_gen ~weak f w i) fs
  | Or fs -> List.exists (fun f -> eval_gen ~weak f w i) fs
  | Implies (f, g) -> (not (eval_gen ~weak f w i)) || eval_gen ~weak g w i
  | Next f -> if i + 1 < n then eval_gen ~weak f w (i + 1) else weak
  | Until (f, g) ->
      let rec search j =
        if j >= n then weak
        else if eval_gen ~weak g w j then true
        else eval_gen ~weak f w j && search (j + 1)
      in
      search i
  | Release (f, g) ->
      let rec search j =
        if j >= n then true
        else
          eval_gen ~weak g w j
          && (eval_gen ~weak f w j || search (j + 1))
      in
      search i
  | Always f ->
      let rec search j = j >= n || (eval_gen ~weak f w j && search (j + 1)) in
      search i
  | Eventually f ->
      let rec search j =
        if j >= n then weak else eval_gen ~weak f w j || search (j + 1)
      in
      search i

let eval_at f w i = eval_gen ~weak:false f w i
let eval f w = eval_at f w 0
let eval_weak f w = eval_gen ~weak:true f w 0

(* Ultimately-periodic words: evaluate each subformula as a boolean
   vector over the [|u| + |v|] distinct positions, the successor of the
   last position wrapping to the start of the cycle.  Least fixpoints
   (Until, Eventually) start from false, greatest fixpoints (Release,
   Always) from true; [n] sweeps reach the fixpoint. *)
let eval_lasso f ~prefix ~cycle =
  if cycle = [] then invalid_arg "Psl.eval_lasso: empty cycle";
  let u = Array.of_list prefix and v = Array.of_list cycle in
  let nu = Array.length u and nv = Array.length v in
  let n = nu + nv in
  let letter i = if i < nu then u.(i) else v.(i - nu) in
  let succ i = if i + 1 < n then i + 1 else nu in
  let rec vec f =
    match f with
    | True -> Array.make n true
    | False -> Array.make n false
    | Atom a -> Array.init n (fun i -> Name.equal (letter i) a)
    | Not f -> Array.map not (vec f)
    | And fs ->
        let vs = List.map vec fs in
        Array.init n (fun i -> List.for_all (fun v -> v.(i)) vs)
    | Or fs ->
        let vs = List.map vec fs in
        Array.init n (fun i -> List.exists (fun v -> v.(i)) vs)
    | Implies (f, g) ->
        let vf = vec f and vg = vec g in
        Array.init n (fun i -> (not vf.(i)) || vg.(i))
    | Next f ->
        let vf = vec f in
        Array.init n (fun i -> vf.(succ i))
    | Until (f, g) -> fixpoint ~init:false (vec f) (vec g)
    | Release (f, g) ->
        (* f R g  ≡  ¬(¬f U ¬g) *)
        Array.map not
          (fixpoint ~init:false (Array.map not (vec f)) (Array.map not (vec g)))
    | Always f -> vec (Release (False, f))
    | Eventually f -> vec (Until (True, f))
  and fixpoint ~init vf vg =
    let res = Array.make n init in
    for _sweep = 0 to n do
      for i = n - 1 downto 0 do
        res.(i) <- vg.(i) || (vf.(i) && res.(succ i))
      done
    done;
    res
  in
  (vec f).(0)

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom n -> Name.pp ppf n
  | Not f -> Format.fprintf ppf "!%a" pp_paren f
  | And fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " && ")
           pp)
        fs
  | Or fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " || ")
           pp)
        fs
  | Implies (f, g) -> Format.fprintf ppf "(%a -> %a)" pp f pp g
  | Next f -> Format.fprintf ppf "next %a" pp_paren f
  | Until (f, g) -> Format.fprintf ppf "(%a until! %a)" pp f pp g
  | Release (f, g) -> Format.fprintf ppf "(%a release %a)" pp f pp g
  | Always f -> Format.fprintf ppf "always %a" pp_paren f
  | Eventually f -> Format.fprintf ppf "eventually! %a" pp_paren f

and pp_paren ppf f =
  match f with
  | True | False | Atom _ | And _ | Or _ | Implies _ | Until _ | Release _ ->
      pp ppf f
  | Not _ | Next _ | Always _ | Eventually _ -> Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
let equal (a : t) (b : t) = a = b
