open Loseq_core

type label = { pos : Name.Set.t; neg : Name.Set.t }

type t = {
  num_states : int;
  initial : int list;
  labels : label array;
  successors : int list array;
  accepting : bool array;
}

let enabled label a =
  (Name.Set.is_empty label.pos || Name.Set.equal label.pos (Name.Set.singleton a))
  && not (Name.Set.mem a label.neg)

(* ---- GPVW tableau ---------------------------------------------------- *)

module Fset = Set.Make (struct
  type t = Psl.t

  let compare = Stdlib.compare
end)

type node = {
  id : int;
  mutable incoming : int list;  (* 0 is the virtual initial marker *)
  mutable new_ : Fset.t;
  mutable old : Fset.t;
  mutable next : Fset.t;
}

let contradicts old f =
  match f with
  | Psl.Atom _ -> Fset.mem (Psl.Not f) old
  | Psl.Not (Psl.Atom _ as a) -> Fset.mem a old
  | Psl.False -> true
  | _ -> false

(* Collect the Until subformulas of an NNF formula: one generalized
   acceptance set per Until. *)
let rec untils acc f =
  match f with
  | Psl.True | Psl.False | Psl.Atom _ -> acc
  | Psl.Not g | Psl.Next g | Psl.Always g | Psl.Eventually g -> untils acc g
  | Psl.And gs | Psl.Or gs -> List.fold_left untils acc gs
  | Psl.Implies (g, h) | Psl.Release (g, h) -> untils (untils acc g) h
  | Psl.Until (g, h) -> Fset.add f (untils (untils acc g) h)

let gpvw phi =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    !counter
  in
  let nodes : node list ref = ref [] in
  (* Dedup on (old, next), keyed structurally: the tableau revisits the
     same node shape constantly and a linear scan dominates the whole
     construction. *)
  let index : (Psl.t list * Psl.t list, node) Hashtbl.t =
    Hashtbl.create 256
  in
  let key nd = (Fset.elements nd.old, Fset.elements nd.next) in
  let rec expand nd =
    match Fset.choose_opt nd.new_ with
    | None -> (
        match Hashtbl.find_opt index (key nd) with
        | Some other -> other.incoming <- nd.incoming @ other.incoming
        | None ->
            nodes := nd :: !nodes;
            Hashtbl.replace index (key nd) nd;
            expand
              {
                id = fresh ();
                incoming = [ nd.id ];
                new_ = nd.next;
                old = Fset.empty;
                next = Fset.empty;
              })
    | Some f -> (
        nd.new_ <- Fset.remove f nd.new_;
        match f with
        | Psl.False -> ()
        | Psl.True ->
            nd.old <- Fset.add f nd.old;
            expand nd
        | Psl.Atom _ | Psl.Not (Psl.Atom _) ->
            if contradicts nd.old f then ()
            else (
              nd.old <- Fset.add f nd.old;
              expand nd)
        | Psl.Not _ | Psl.Implies _ | Psl.Always _ | Psl.Eventually _ ->
            invalid_arg "Buchi.gpvw: formula not in negation normal form"
        | Psl.And gs ->
            (* The conjunction itself joins [old]: acceptance tests for
               [Until (_, h)] look [h] up there, and [h] may well be a
               conjunction. *)
            nd.old <- Fset.add f nd.old;
            nd.new_ <-
              List.fold_left
                (fun acc g ->
                  if Fset.mem g nd.old then acc else Fset.add g acc)
                nd.new_ gs;
            expand nd
        | Psl.Or gs ->
            List.iter
              (fun g ->
                expand
                  {
                    id = fresh ();
                    incoming = nd.incoming;
                    new_ =
                      (if Fset.mem g nd.old then nd.new_
                       else Fset.add g nd.new_);
                    old = Fset.add f nd.old;
                    next = nd.next;
                  })
              gs
        | Psl.Next g ->
            nd.old <- Fset.add f nd.old;
            nd.next <- Fset.add g nd.next;
            expand nd
        | Psl.Until (g, h) ->
            let left =
              {
                id = fresh ();
                incoming = nd.incoming;
                new_ = (if Fset.mem g nd.old then nd.new_ else Fset.add g nd.new_);
                old = Fset.add f nd.old;
                next = Fset.add f nd.next;
              }
            and right =
              {
                id = fresh ();
                incoming = nd.incoming;
                new_ = (if Fset.mem h nd.old then nd.new_ else Fset.add h nd.new_);
                old = Fset.add f nd.old;
                next = nd.next;
              }
            in
            expand left;
            expand right
        | Psl.Release (g, h) ->
            let left =
              {
                id = fresh ();
                incoming = nd.incoming;
                new_ =
                  (let acc =
                     if Fset.mem h nd.old then nd.new_ else Fset.add h nd.new_
                   in
                   acc);
                old = Fset.add f nd.old;
                next = Fset.add f nd.next;
              }
            and right =
              {
                id = fresh ();
                incoming = nd.incoming;
                new_ =
                  (let acc =
                     if Fset.mem g nd.old then nd.new_ else Fset.add g nd.new_
                   in
                   if Fset.mem h nd.old then acc else Fset.add h acc);
                old = Fset.add f nd.old;
                next = nd.next;
              }
            in
            expand left;
            expand right)
  in
  expand
    {
      id = fresh ();
      incoming = [ 0 ];
      new_ = Fset.singleton phi;
      old = Fset.empty;
      next = Fset.empty;
    };
  !nodes

let label_of_old old =
  Fset.fold
    (fun f acc ->
      match f with
      | Psl.Atom a -> { acc with pos = Name.Set.add a acc.pos }
      | Psl.Not (Psl.Atom a) -> { acc with neg = Name.Set.add a acc.neg }
      | _ -> acc)
    old
    { pos = Name.Set.empty; neg = Name.Set.empty }

let of_ltl phi =
  let phi = Psl.nnf phi in
  let tableau = gpvw phi in
  let accept_formulas = Fset.elements (untils Fset.empty phi) in
  let k = max 1 (List.length accept_formulas) in
  (* Generalized acceptance: for each Until(g,h), the nodes where the
     Until is absent from [old] or [h] is present. *)
  let in_fset i nd =
    match List.nth_opt accept_formulas i with
    | None -> true (* no Untils: every node is accepting *)
    | Some (Psl.Until (_, h) as u) ->
        (not (Fset.mem u nd.old)) || Fset.mem h nd.old
    | Some _ -> assert false
  in
  let arr = Array.of_list tableau in
  let n = Array.length arr in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i nd -> Hashtbl.replace index_of nd.id i) arr;
  (* Degeneralization with the usual counter: states (node, c); moving
     out of a node in F_c bumps the counter; accepting = F_0 x {0}. *)
  let num_states = n * k in
  let state i c = (i * k) + c in
  let labels = Array.make num_states { pos = Name.Set.empty; neg = Name.Set.empty } in
  let successors = Array.make num_states [] in
  let accepting = Array.make num_states false in
  let initial = ref [] in
  Array.iteri
    (fun j nd ->
      let lbl = label_of_old nd.old in
      for c = 0 to k - 1 do
        labels.(state j c) <- lbl
      done;
      List.iter
        (fun src_id ->
          if src_id = 0 then initial := state j 0 :: !initial
          else
            match Hashtbl.find_opt index_of src_id with
            | None -> ()
            | Some i ->
                for c = 0 to k - 1 do
                  let c' = if in_fset c arr.(i) then (c + 1) mod k else c in
                  successors.(state i c) <- state j c' :: successors.(state i c)
                done)
        nd.incoming)
    arr;
  for j = 0 to n - 1 do
    if in_fset 0 arr.(j) then accepting.(state j 0) <- true
  done;
  {
    num_states;
    initial = List.sort_uniq compare !initial;
    labels;
    successors;
    accepting;
  }

let size t =
  ( t.num_states,
    Array.fold_left (fun acc l -> acc + List.length l) 0 t.successors )

(* ---- Lasso acceptance ------------------------------------------------ *)

(* Shared accepting-lasso search: a graph of integer nodes, a successor
   function, initial nodes and an accepting predicate.  The language is
   non-empty iff a non-trivial cycle through an accepting node is
   reachable. *)
let has_accepting_lasso ~initial ~succs ~accepting =
  let reachable = Hashtbl.create 64 in
  let rec dfs = function
    | [] -> ()
    | q :: rest ->
        if Hashtbl.mem reachable q then dfs rest
        else begin
          Hashtbl.replace reachable q ();
          dfs (succs q @ rest)
        end
  in
  dfs initial;
  let cycle_back q0 =
    let seen = Hashtbl.create 64 in
    let rec go = function
      | [] -> false
      | q :: rest ->
          let ss = succs q in
          if List.mem q0 ss then true
          else
            let fresh =
              List.filter
                (fun q' ->
                  if Hashtbl.mem seen q' then false
                  else begin
                    Hashtbl.replace seen q' ();
                    true
                  end)
                ss
            in
            go (fresh @ rest)
    in
    go [ q0 ]
  in
  let found = ref false in
  Hashtbl.iter
    (fun q () -> if (not !found) && accepting q && cycle_back q then found := true)
    reachable;
  !found

let accepts_lasso t ~prefix ~cycle =
  if cycle = [] then invalid_arg "Buchi.accepts_lasso: empty cycle";
  let u = Array.of_list prefix and v = Array.of_list cycle in
  let nu = Array.length u and nv = Array.length v in
  let n = nu + nv in
  let letter i = if i < nu then u.(i) else v.(i - nu) in
  let succ_pos i = if i + 1 < n then i + 1 else nu in
  (* Product of the automaton with the lasso: state (q, i) exists when
     the letter at position i enables q's label. *)
  let encode q i = (q * n) + i in
  let succs code =
    let q = code / n and i = code mod n in
    if not (enabled t.labels.(q) (letter i)) then []
    else List.map (fun q' -> encode q' (succ_pos i)) t.successors.(q)
  in
  (* A product state is live only if its own label is enabled; encode
     that by filtering at expansion time (dead states have no
     successors, and initial states must be live). *)
  let initial =
    List.filter_map
      (fun q ->
        if n > 0 && enabled t.labels.(q) (letter 0) then Some (encode q 0)
        else None)
      t.initial
  in
  let accepting code =
    let q = code / n and i = code mod n in
    t.accepting.(q) && i >= nu && enabled t.labels.(q) (letter i)
  in
  has_accepting_lasso ~initial ~succs ~accepting

let is_empty t ~alphabet =
  let other = Name.v "other.event" in
  let letters = other :: alphabet in
  let live q = List.exists (fun a -> enabled t.labels.(q) a) letters in
  let succs q = if live q then List.filter live t.successors.(q) else [] in
  let initial = List.filter live t.initial in
  not
    (has_accepting_lasso ~initial ~succs ~accepting:(fun q -> t.accepting.(q)))

let pp_stats ppf t =
  let states, transitions = size t in
  Format.fprintf ppf "%d states, %d transitions, %d accepting" states
    transitions
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.accepting)
