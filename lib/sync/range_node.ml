type wires = {
  start : bool;
  n : bool;
  b : bool;
  c : bool;
  ac : bool;
  af : bool;
}

type outputs = { ok : bool; nok : bool; err : bool }

type state = S0 | S1 | S2 | S3 of int | S4 of int | S5

let quiet = { start = false; n = false; b = false; c = false; ac = false;
              af = false }

let none = { ok = false; nok = false; err = false }
let ok_out = { ok = true; nok = false; err = false }
let nok_out = { ok = false; nok = true; err = false }
let err_out = { ok = false; nok = false; err = true }

(* The transition relation of Fig. 5, one clause per labeled edge. *)
let transition ~u ~v ~disjunctive state (w : wires) =
  match state with
  | S0 ->
      if w.start && w.n then (S3 1, none)
      else if w.start && w.c then (S2, none)
      else if w.start then (S1, none)
      else (S0, none)
  | S1 ->
      if w.n then (S3 1, none)
      else if w.c then (S2, none)
      else if w.ac then if disjunctive then (S0, nok_out) else (S5, err_out)
      else if w.b || w.af then (S5, err_out)
      else (S1, none)
  | S2 ->
      if w.n then (S3 1, none)
      else if w.c then (S2, none)
      else if w.ac then if disjunctive then (S0, nok_out) else (S5, err_out)
      else if w.b || w.af then (S5, err_out)
      else (S2, none)
  | S3 cpt ->
      if w.n then if cpt = v then (S5, err_out) else (S3 (cpt + 1), none)
      else if w.c then if cpt >= u then (S4 cpt, none) else (S5, err_out)
      else if w.ac then if cpt >= u then (S0, ok_out) else (S5, err_out)
      else if w.b || w.af then (S5, err_out)
      else (S3 cpt, none)
  | S4 cpt ->
      if w.n then (S5, err_out)
      else if w.c then (S4 cpt, none)
      else if w.ac then (S0, ok_out)
      else if w.b || w.af then (S5, err_out)
      else (S4 cpt, none)
  | S5 -> (S5, none)

let node ~u ~v ~disjunctive =
  Stream.create ~init:S0 ~step:(transition ~u ~v ~disjunctive)
