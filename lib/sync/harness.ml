open Loseq_core

let wires_of_category ~start category =
  let w = { Range_node.quiet with start } in
  match category with
  | None -> w
  | Some Context.Self -> { w with n = true }
  | Some Context.Current -> { w with c = true }
  | Some Context.Before -> { w with b = true }
  | Some Context.Accept -> { w with ac = true }
  | Some Context.After -> { w with af = true }
  | Some Context.Outside -> w

let output_of_recognizer = function
  | Recognizer.Quiet -> { Range_node.ok = false; nok = false; err = false }
  | Recognizer.Ok -> { Range_node.ok = true; nok = false; err = false }
  | Recognizer.Nok -> { Range_node.ok = false; nok = true; err = false }
  | Recognizer.Err _ -> { Range_node.ok = false; nok = false; err = true }

(* A synthetic context for a standalone range: categories are injected
   directly, so the name sets are placeholders. *)
let synthetic_context ~u ~v ~disjunctive =
  let name = Name.v "n" in
  let ordering =
    [
      Pattern.fragment
        ~connective:(if disjunctive then Pattern.Any else Pattern.All)
        [ Pattern.range ~lo:u ~hi:v name ];
    ]
  in
  match Context.of_ordering ~terminators:(Name.Set.singleton (Name.v "i")) ordering with
  | [ [ ctx ] ] -> ctx
  | _ -> assert false

let agree ~u ~v ~disjunctive categories =
  let ctx = synthetic_context ~u ~v ~disjunctive in
  let recognizer = Recognizer.create ctx in
  let node = Range_node.node ~u ~v ~disjunctive in
  Recognizer.start recognizer;
  let (_ : Range_node.outputs) =
    Stream.step node (wires_of_category ~start:true None)
  in
  let rec drive i = function
    | [] -> Ok true
    | category :: rest ->
        let reference_out =
          Stream.step node (wires_of_category ~start:false (Some category))
        in
        let production_out =
          output_of_recognizer (Recognizer.step recognizer category)
        in
        if production_out <> reference_out then
          Error
            (Printf.sprintf
               "instant %d: production (ok=%b nok=%b err=%b) vs reference \
                (ok=%b nok=%b err=%b)"
               i production_out.Range_node.ok production_out.Range_node.nok
               production_out.Range_node.err reference_out.Range_node.ok
               reference_out.Range_node.nok reference_out.Range_node.err)
        else if
          production_out.Range_node.ok || production_out.Range_node.nok
          || production_out.Range_node.err
        then Ok true
        else drive (i + 1) rest
  in
  drive 0 categories
