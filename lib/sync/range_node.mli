(** An independent, wire-level transcription of the Fig. 5 elementary
    recognizer, written as a synchronous node over boolean input wires —
    exactly the shape of the paper's Lustre reference implementation.

    Inputs are the wires [{start, n, B, C, Ac, Af}] (at most one of
    [n, B, C, Ac, Af] is true per instant — asynchronous event
    interleaving); outputs are the wires [{ok, nok, err}].

    The production {!Loseq_core.Recognizer} is cross-validated against
    this node by the test suite, mirroring the paper's methodology. *)

type wires = {
  start : bool;
  n : bool;  (** the range's own name *)
  b : bool;  (** a name of [B] *)
  c : bool;  (** a name of [C] *)
  ac : bool;  (** a name of [Ac] *)
  af : bool;  (** a name of [Af] *)
}

type outputs = { ok : bool; nok : bool; err : bool }

type state =
  | S0  (** idle *)
  | S1  (** started, waiting for the first [n] *)
  | S2  (** started, another range of the fragment is running *)
  | S3 of int  (** counting, [cpt] *)
  | S4 of int  (** done counting *)
  | S5  (** error *)

val node : u:int -> v:int -> disjunctive:bool -> (wires, outputs) Stream.node
(** The recognizer for [n[u,v]] whose parent fragment has semantics
    [∨] when [disjunctive]. *)

val quiet : wires
(** All wires low. *)

val transition : u:int -> v:int -> disjunctive:bool -> state -> wires ->
  state * outputs
(** The raw transition function, for state-space exploration tests. *)
