(** A miniature synchronous-node interpreter, in the spirit of Lustre.

    The paper programmed its recognizer constructions in Lustre to check
    them against the intuitive semantics with automatic testing; this
    module provides the corresponding executable-Mealy-machine substrate
    so the same methodology applies here (see {!Range_node} and the
    cross-validation tests). *)

type ('i, 'o) node

val create : init:'s -> step:('s -> 'i -> 's * 'o) -> ('i, 'o) node
(** A Mealy machine with hidden state. *)

val step : ('i, 'o) node -> 'i -> 'o
val run : ('i, 'o) node -> 'i list -> 'o list
val reset : ('i, 'o) node -> unit
(** Back to the initial state. *)

val compose : ('a, 'b) node -> ('b, 'c) node -> ('a, 'c) node
(** Sequential composition (same instant). *)

val parallel : ('a, 'b) node -> ('a, 'c) node -> ('a, 'b * 'c) node
(** Synchronous product: both nodes step on every instant. *)

val fby : 'a -> ('a, 'a) node
(** Unit delay: output the previous input ([init] first) — Lustre's
    [init fby x]. *)
