(** Cross-validation harness between the production recognizer
    ({!Loseq_core.Recognizer}) and the synchronous reference
    ({!Range_node}). *)

open Loseq_core

val wires_of_category : start:bool -> Context.category option -> Range_node.wires
(** Encode a classified event (or pure [start]) on the boolean wires. *)

val output_of_recognizer : Recognizer.output -> Range_node.outputs

val agree :
  u:int ->
  v:int ->
  disjunctive:bool ->
  Context.category list ->
  (bool, string) result
(** Drive both implementations with the same category sequence (the
    recognizer is started bare first; the node receives a [start]
    instant).  [Ok true] when every instant produced identical outputs
    and equivalent states; [Error msg] describes the first divergence.
    The sequence stops early — still agreeing — at the first [ok], [nok]
    or [err]. *)
