type ('i, 'o) node = {
  step_fn : 'i -> 'o;
  reset_fn : unit -> unit;
}

let create ~init ~step =
  let state = ref init in
  {
    step_fn =
      (fun i ->
        let state', o = step !state i in
        state := state';
        o);
    reset_fn = (fun () -> state := init);
  }

let step node i = node.step_fn i
let run node inputs = List.map node.step_fn inputs
let reset node = node.reset_fn ()

let compose a b =
  {
    step_fn = (fun i -> b.step_fn (a.step_fn i));
    reset_fn =
      (fun () ->
        a.reset_fn ();
        b.reset_fn ());
  }

let parallel a b =
  {
    step_fn = (fun i -> (a.step_fn i, b.step_fn i));
    reset_fn =
      (fun () ->
        a.reset_fn ();
        b.reset_fn ());
  }

let fby init = create ~init ~step:(fun prev i -> (i, prev))
