open Loseq_sim
open Loseq_verif

type t = {
  name : string;
  tap : Tap.t;
  changed : Kernel.event;
  mutable door_open : bool;
  mutable opens : int;
}

let create ?(name = "LOCK") kernel tap =
  {
    name;
    tap;
    changed = Kernel.event ~name:(name ^ ".changed") kernel;
    door_open = false;
    opens = 0;
  }

let is_open t = t.door_open
let changed t = t.changed
let open_count t = t.opens

let set t v =
  if v <> t.door_open then begin
    t.door_open <- v;
    if v then t.opens <- t.opens + 1;
    Tap.emit t.tap (if v then "lock_open" else "lock_close");
    Kernel.notify t.changed
  end

let regs t =
  Mmio.target ~name:t.name
    [
      Mmio.reg ~offset:0x0
        ~read:(fun () -> if t.door_open then 1 else 0)
        ~write:(fun v -> set t (v land 1 = 1))
        "CTRL";
    ]
