open Loseq_sim

type reg = {
  offset : int;
  reg_name : string;
  read : unit -> int;
  write : (int -> unit) option;
}

let reg ~offset ?read ?write name =
  {
    offset;
    reg_name = name;
    read = (match read with Some f -> f | None -> fun () -> 0);
    write;
  }

let target ?(latency = Time.ns 10) ~name regs =
  let table = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace table r.offset r) regs;
  let b_transport (p : Tlm.payload) delay =
    let delay = Time.add delay latency in
    (if Bytes.length p.data <> 4 || p.address mod 4 <> 0 then
       p.response <- Tlm.Command_error
     else
       match Hashtbl.find_opt table p.address with
       | None -> p.response <- Tlm.Address_error
       | Some r -> (
           match p.command with
           | Tlm.Read -> Tlm.set_word p (r.read ())
           | Tlm.Write -> (
               match r.write with
               | Some f -> f (Tlm.get_word p)
               | None -> p.response <- Tlm.Command_error)));
    delay
  in
  { Tlm.target_name = name; b_transport }

let name_of r = r.reg_name
