open Loseq_sim
open Loseq_verif

type t = {
  name : string;
  kernel : Kernel.t;
  tap : Tap.t;
  bus : Tlm.initiator;
  on_irq : unit -> unit;
  analysis_lo : Time.t;
  analysis_hi : Time.t;
  start_requested : Kernel.event;
  mutable img_addr : int;
  mutable gl_addr : int;
  mutable gl_size : int;
  mutable status : int;  (* 0 idle, 1 busy, 2 done *)
  mutable result : int;
  mutable runs : int;
}

let interface_alpha =
  [ "set_imgAddr"; "set_glAddr"; "set_glSize"; "start"; "read_img"; "set_irq" ]

(* Signature of an image region: a word checksum over its first words.
   Gallery entries are 64-byte records whose first word is the
   signature. *)
let image_signature t addr =
  let word, _ = Tlm.read_word t.bus addr in
  word

let behaviour t () =
  let rec loop () =
    Kernel.wait t.start_requested;
    t.status <- 1;
    t.runs <- t.runs + 1;
    let target_signature = image_signature t t.img_addr in
    let matched = ref false in
    (* Read the whole gallery: the paper's read_img[100,60000] burst. *)
    for i = 0 to t.gl_size - 1 do
      let entry_addr = t.gl_addr + (i * 64) in
      let signature, _ = Tlm.read_word t.bus entry_addr in
      Tap.emit t.tap "read_img";
      if signature = target_signature then matched := true;
      (* Loose-timed per-image analysis. *)
      Kernel.wait_loose t.kernel t.analysis_lo t.analysis_hi
    done;
    t.result <- (if !matched then 1 else 0);
    t.status <- 2;
    Tap.emit t.tap "set_irq";
    t.on_irq ();
    loop ()
  in
  loop ()

let create ?(name = "IPU") ?(analysis = (Time.ns 90, Time.ns 110)) kernel tap
    ~bus ~on_irq =
  let analysis_lo, analysis_hi = analysis in
  let t =
    {
      name;
      kernel;
      tap;
      bus;
      on_irq;
      analysis_lo;
      analysis_hi;
      start_requested = Kernel.event ~name:(name ^ ".start") kernel;
      img_addr = 0;
      gl_addr = 0;
      gl_size = 0;
      status = 0;
      result = 0;
      runs = 0;
    }
  in
  Kernel.spawn ~name kernel (behaviour t);
  t

let regs t =
  let emit_and name setter v =
    setter v;
    Tap.emit t.tap name
  in
  Mmio.target ~name:t.name
    [
      Mmio.reg ~offset:0x00
        ~read:(fun () -> t.img_addr)
        ~write:(emit_and "set_imgAddr" (fun v -> t.img_addr <- v))
        "IMG_ADDR";
      Mmio.reg ~offset:0x04
        ~read:(fun () -> t.gl_addr)
        ~write:(emit_and "set_glAddr" (fun v -> t.gl_addr <- v))
        "GL_ADDR";
      Mmio.reg ~offset:0x08
        ~read:(fun () -> t.gl_size)
        ~write:(emit_and "set_glSize" (fun v -> t.gl_size <- max 0 v))
        "GL_SIZE";
      Mmio.reg ~offset:0x0C
        ~write:(fun v ->
          if v land 1 = 1 then begin
            t.status <- 1;
            Tap.emit t.tap "start";
            Kernel.notify_immediate t.start_requested
          end)
        "CTRL";
      Mmio.reg ~offset:0x10 ~read:(fun () -> t.status) "STATUS";
      Mmio.reg ~offset:0x14 ~read:(fun () -> t.result) "RESULT";
    ]

let recognitions t = t.runs
let last_match t = t.result = 1
