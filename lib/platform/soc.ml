open Loseq_core
open Loseq_sim
open Loseq_verif

type config = {
  seed : int;
  gallery_size : int;
  presses : int;
  press_gap : Time.t;
  cpu_bug : Cpu.bug option;
  slow_ipu : bool;
  recognition_deadline : Time.t;
}

let default_config =
  {
    seed = 0xface;
    gallery_size = 120;
    presses = 3;
    press_gap = Time.us 200;
    cpu_bug = None;
    slow_ipu = false;
    (* 120 gallery reads at ~135 ns each plus capture margins. *)
    recognition_deadline = Time.us 60;
  }

let addresses =
  {
    Cpu.mem_base = 0x0000_0000;
    ipu_base = 0x1000_0000;
    sen_base = 0x1100_0000;
    gpio_base = 0x1200_0000;
    intc_base = 0x1300_0000;
    tmr1_base = 0x1400_0000;
    tmr2_base = 0x1500_0000;
    lcdc_base = 0x1600_0000;
    lock_base = 0x1700_0000;
  }

type t = {
  config : config;
  kernel : Kernel.t;
  tap : Tap.t;
  bus : Bus.t;
  memory : Memory.t;
  intc : Intc.t;
  ipu : Ipu.t;
  sensor : Sensor.t;
  gpio : Gpio.t;
  lcdc : Lcdc.t;
  lock : Lock.t;
  tmr1 : Timer_dev.t;
  tmr2 : Timer_dev.t;
  cpu : Cpu.t;
}

let create ?(config = default_config) () =
  let kernel = Kernel.create ~seed:config.seed () in
  let tap = Tap.create kernel in
  let bus = Bus.create () in
  let bus_target = Bus.target bus in
  let initiator name =
    let ini = Tlm.initiator ~name () in
    Tlm.bind ini bus_target;
    ini
  in
  let memory = Memory.create ~size:0x10_0000 () in
  let intc = Intc.create ~lines:8 kernel in
  let line n () = Intc.raise_line intc n in
  let ipu =
    let analysis =
      if config.slow_ipu then (Time.us 9, Time.us 11)
      else (Time.ns 90, Time.ns 110)
    in
    Ipu.create ~analysis kernel tap ~bus:(initiator "IPU.dma")
      ~on_irq:(line Cpu.irq_lines#ipu)
  in
  let sensor = Sensor.create kernel tap ~bus:(initiator "SEN.dma") in
  let gpio = Gpio.create kernel tap ~on_irq:(line Cpu.irq_lines#gpio) in
  let lcdc = Lcdc.create kernel tap ~bus:(initiator "LCDC.dma") in
  let lock = Lock.create kernel tap in
  let tmr1 =
    Timer_dev.create ~name:"TMR1" kernel ~on_expire:(line Cpu.irq_lines#tmr1)
  in
  let tmr2 =
    Timer_dev.create ~name:"TMR2" kernel ~on_expire:(line Cpu.irq_lines#tmr2)
  in
  let page = 0x1000 in
  Bus.map bus ~base:addresses.Cpu.mem_base ~size:(Memory.size memory)
    (Memory.target memory);
  Bus.map bus ~base:addresses.Cpu.ipu_base ~size:page (Ipu.regs ipu);
  Bus.map bus ~base:addresses.Cpu.sen_base ~size:page (Sensor.regs sensor);
  Bus.map bus ~base:addresses.Cpu.gpio_base ~size:page (Gpio.regs gpio);
  Bus.map bus ~base:addresses.Cpu.intc_base ~size:page (Intc.regs intc);
  Bus.map bus ~base:addresses.Cpu.tmr1_base ~size:page (Timer_dev.regs tmr1);
  Bus.map bus ~base:addresses.Cpu.tmr2_base ~size:page (Timer_dev.regs tmr2);
  Bus.map bus ~base:addresses.Cpu.lcdc_base ~size:page (Lcdc.regs lcdc);
  Bus.map bus ~base:addresses.Cpu.lock_base ~size:page (Lock.regs lock);
  let cpu =
    Cpu.create ?bug:config.cpu_bug ~gallery_size:config.gallery_size kernel
      tap ~bus:(initiator "CPU") ~irq:(Intc.irq_event intc) addresses
  in
  (* Scripted user: press the button [presses] times. *)
  Kernel.spawn ~name:"user" kernel (fun () ->
      Kernel.wait_for kernel (Time.us 50);
      for press = 0 to config.presses - 1 do
        Gpio.press gpio (press mod 2);
        Kernel.wait_for kernel config.press_gap
      done);
  {
    config;
    kernel;
    tap;
    bus;
    memory;
    intc;
    ipu;
    sensor;
    gpio;
    lcdc;
    lock;
    tmr1;
    tmr2;
    cpu;
  }

let kernel t = t.kernel
let tap t = t.tap
let config t = t.config

let names l = List.map Name.v l

let configuration_fragment =
  Pattern.fragment
    (List.map Pattern.range (names [ "set_imgAddr"; "set_glAddr"; "set_glSize" ]))

let property_configuration _t =
  Pattern.antecedent
    [ configuration_fragment ]
    ~trigger:(Name.v "start")

let property_configuration_repeated _t =
  Pattern.antecedent ~repeated:true
    [ configuration_fragment ]
    ~trigger:(Name.v "start")

let property_recognition t =
  Pattern.timed
    [ Pattern.single (Name.v "start") ]
    [
      Pattern.fragment [ Pattern.range ~lo:100 ~hi:60000 (Name.v "read_img") ];
      Pattern.single (Name.v "set_irq");
    ]
    ~deadline:(Time.to_ps t.config.recognition_deadline)

let standard_hub ?backend t =
  let hub = Hub.create t.tap in
  ignore
    (Hub.add ?backend ~name:"IPU configuration before start" hub
       (property_configuration t));
  ignore
    (Hub.add ?backend ~name:"IPU configuration before start (repeated)" hub
       (property_configuration_repeated t));
  ignore
    (Hub.add ?backend ~name:"recognition completes within deadline" hub
       (property_recognition t));
  hub

let attach_standard_checkers ?backend t = Hub.report (standard_hub ?backend t)

let run ?until t =
  let horizon =
    match until with
    | Some u -> u
    | None ->
        (* Boot + presses, with slack for slow-IPU runs. *)
        let per_press =
          Time.add t.config.press_gap
            (Time.mul t.config.recognition_deadline 40)
        in
        Time.add (Time.us 100) (Time.mul per_press t.config.presses)
  in
  Kernel.run ~until:horizon t.kernel

let ipu t = t.ipu
let tmr1 t = t.tmr1
let tmr2 t = t.tmr2
let cpu t = t.cpu
let lock t = t.lock
let gpio t = t.gpio
let lcdc t = t.lcdc
let sensor t = t.sensor
let memory t = t.memory
let bus t = t.bus
let intc t = t.intc
