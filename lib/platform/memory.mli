(** System memory (MEM): a byte-addressed TLM target with direct
    backdoor access for testbenches and models. *)

open Loseq_sim

type t

val create : ?name:string -> ?latency:Time.t -> size:int -> unit -> t
(** [latency] defaults to 20 ns per transaction. *)

val size : t -> int
val target : t -> Tlm.target

(** Backdoor access (no simulated time): *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_word : t -> int -> int
val write_word : t -> int -> int -> unit
val fill : t -> pos:int -> len:int -> (int -> int) -> unit
(** [fill mem ~pos ~len f] writes byte [f i] at [pos + i]. *)
