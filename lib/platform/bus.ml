open Loseq_sim

type mapping = { base : int; size : int; dest : Tlm.target }
type t = { name : string; latency : Time.t; mutable maps : mapping list }

let create ?(name = "Bus") ?(latency = Time.ns 5) () =
  { name; latency; maps = [] }

let overlaps a b =
  a.base < b.base + b.size && b.base < a.base + a.size

let map t ~base ~size dest =
  if base < 0 || size <= 0 then invalid_arg "Bus.map: bad region";
  let m = { base; size; dest } in
  List.iter
    (fun existing ->
      if overlaps m existing then
        invalid_arg
          (Printf.sprintf "Bus.map: region 0x%x+0x%x overlaps %s" base size
             existing.dest.Tlm.target_name))
    t.maps;
  t.maps <- m :: t.maps

let decode t address =
  List.find_map
    (fun m ->
      if address >= m.base && address < m.base + m.size then
        Some (m.dest, address - m.base)
      else None)
    t.maps

let target t =
  let b_transport (p : Tlm.payload) delay =
    let delay = Time.add delay t.latency in
    match decode t p.address with
    | None ->
        p.response <- Tlm.Address_error;
        delay
    | Some (dest, local) ->
        let routed = { p with Tlm.address = local } in
        let delay = dest.Tlm.b_transport routed delay in
        p.response <- routed.Tlm.response;
        delay
  in
  { Tlm.target_name = t.name; b_transport }

let mappings t =
  t.maps
  |> List.map (fun m -> (m.base, m.size, m.dest.Tlm.target_name))
  |> List.sort compare
