(** The interconnect (Bus): address-decoding router between TLM
    initiators and targets. *)

open Loseq_sim

type t

val create : ?name:string -> ?latency:Time.t -> unit -> t
(** [latency] (default 5 ns) is charged per routed transaction. *)

val map : t -> base:int -> size:int -> Tlm.target -> unit
(** Map [target] at [[base, base+size)].  Raises [Invalid_argument] on
    overlaps.  The routed payload carries the target-local address. *)

val target : t -> Tlm.target
(** The socket initiators bind to. *)

val decode : t -> int -> (Tlm.target * int) option
(** [(target, local address)] for a global address. *)

val mappings : t -> (int * int * string) list
(** [(base, size, target name)], sorted by base. *)
