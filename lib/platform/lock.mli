(** Door lock actuator (LOCK).

    Register map: [0x0 CTRL] (1 opens, 0 closes, rw).  State changes
    emit [lock_open] / [lock_close] on the tap. *)

open Loseq_sim
open Loseq_verif

type t

val create : ?name:string -> Kernel.t -> Tap.t -> t
val is_open : t -> bool
val changed : t -> Kernel.event
val open_count : t -> int
val regs : t -> Tlm.target
