(** Programmable timers (TMR1, TMR2).

    Register map: [0x0 LOAD] (duration in ns, rw), [0x4 CTRL]
    (bit 0 enable, bit 1 periodic; writing with bit 0 set (re)starts the
    countdown), [0x8 STATUS] (bit 0 expired; any write clears).
    Expiry invokes [on_expire] (typically an INTC line). *)

open Loseq_sim

type t

val create : ?name:string -> Kernel.t -> on_expire:(unit -> unit) -> t
val regs : t -> Tlm.target
val expired_count : t -> int
val running : t -> bool
