open Loseq_sim

type t = { name : string; bytes : Bytes.t; latency : Time.t }

let create ?(name = "MEM") ?(latency = Time.ns 20) ~size () =
  if size <= 0 then invalid_arg "Memory.create: size must be positive";
  { name; bytes = Bytes.make size '\000'; latency }

let size m = Bytes.length m.bytes

let in_range m address len =
  address >= 0 && len >= 0 && address + len <= Bytes.length m.bytes

let read_byte m address = Char.code (Bytes.get m.bytes address)
let write_byte m address v = Bytes.set m.bytes address (Char.chr (v land 0xff))

let read_word m address =
  read_byte m address
  lor (read_byte m (address + 1) lsl 8)
  lor (read_byte m (address + 2) lsl 16)
  lor (read_byte m (address + 3) lsl 24)

let write_word m address v =
  write_byte m address v;
  write_byte m (address + 1) (v lsr 8);
  write_byte m (address + 2) (v lsr 16);
  write_byte m (address + 3) (v lsr 24)

let fill m ~pos ~len f =
  for i = 0 to len - 1 do
    write_byte m (pos + i) (f i)
  done

let target m =
  let b_transport (p : Tlm.payload) delay =
    let len = Bytes.length p.data in
    (if not (in_range m p.address len) then p.response <- Tlm.Address_error
     else
       match p.command with
       | Tlm.Read -> Bytes.blit m.bytes p.address p.data 0 len
       | Tlm.Write -> Bytes.blit p.data 0 m.bytes p.address len);
    Time.add delay m.latency
  in
  { Tlm.target_name = m.name; b_transport }
