open Loseq_sim

type t = {
  name : string;
  line_count : int;
  mutable pending_mask : int;
  mutable enable_mask : int;
  irq : Kernel.event;
}

let create ?(name = "INTC") ~lines kernel =
  if lines <= 0 || lines > 30 then invalid_arg "Intc.create: bad line count";
  {
    name;
    line_count = lines;
    pending_mask = 0;
    enable_mask = (1 lsl lines) - 1;
    irq = Kernel.event ~name:(name ^ ".irq") kernel;
  }

let lines t = t.line_count

let raise_line t i =
  if i < 0 || i >= t.line_count then invalid_arg "Intc.raise_line: bad line";
  t.pending_mask <- t.pending_mask lor (1 lsl i);
  if t.pending_mask land t.enable_mask <> 0 then Kernel.notify t.irq

let pending t = t.pending_mask land t.enable_mask
let irq_event t = t.irq

let regs t =
  Mmio.target ~name:t.name
    [
      Mmio.reg ~offset:0x0 ~read:(fun () -> pending t) "STATUS";
      Mmio.reg ~offset:0x4
        ~read:(fun () -> t.enable_mask)
        ~write:(fun v -> t.enable_mask <- v land ((1 lsl t.line_count) - 1))
        "ENABLE";
      Mmio.reg ~offset:0x8
        ~write:(fun v -> t.pending_mask <- t.pending_mask land lnot v)
        "ACK";
    ]
