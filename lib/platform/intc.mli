(** Interrupt controller (INTC).

    Devices raise numbered lines; the CPU waits on {!irq_event}, reads
    [STATUS] (pending ∧ enabled), and acknowledges with [ACK]
    (write-one-to-clear).  Register map: [0x0 STATUS] (ro), [0x4 ENABLE]
    (rw), [0x8 ACK] (wo). *)

open Loseq_sim

type t

val create : ?name:string -> lines:int -> Kernel.t -> t
val lines : t -> int

val raise_line : t -> int -> unit
(** Device side.  Raises [Invalid_argument] on a bad line number. *)

val pending : t -> int
(** Bitmask of pending-and-enabled lines. *)

val irq_event : t -> Kernel.event
(** Notified whenever a pending-and-enabled line is raised. *)

val regs : t -> Tlm.target
