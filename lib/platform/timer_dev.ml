open Loseq_sim

type t = {
  name : string;
  kernel : Kernel.t;
  on_expire : unit -> unit;
  restarted : Kernel.event;
  mutable load_ns : int;
  mutable enabled : bool;
  mutable periodic : bool;
  mutable status : int;
  mutable generation : int;
  mutable expired : int;
}

let start_countdown t =
  let gen = t.generation in
  Kernel.spawn t.kernel (fun () ->
      let rec tick () =
        Kernel.wait_for t.kernel (Time.ns t.load_ns);
        if t.generation = gen && t.enabled then begin
          t.status <- t.status lor 1;
          t.expired <- t.expired + 1;
          t.on_expire ();
          if t.periodic then tick () else t.enabled <- false
        end
      in
      if t.load_ns > 0 then tick ())

let write_ctrl t v =
  t.generation <- t.generation + 1;
  t.periodic <- v land 2 <> 0;
  t.enabled <- v land 1 <> 0;
  if t.enabled then begin
    Kernel.notify t.restarted;
    start_countdown t
  end

let create ?(name = "TMR") kernel ~on_expire =
  {
    name;
    kernel;
    on_expire;
    restarted = Kernel.event ~name:(name ^ ".restart") kernel;
    load_ns = 0;
    enabled = false;
    periodic = false;
    status = 0;
    generation = 0;
    expired = 0;
  }

let regs t =
  Mmio.target ~name:t.name
    [
      Mmio.reg ~offset:0x0
        ~read:(fun () -> t.load_ns)
        ~write:(fun v -> t.load_ns <- max 0 v)
        "LOAD";
      Mmio.reg ~offset:0x4
        ~read:(fun () ->
          (if t.enabled then 1 else 0) lor if t.periodic then 2 else 0)
        ~write:(fun v -> write_ctrl t v)
        "CTRL";
      Mmio.reg ~offset:0x8
        ~read:(fun () -> t.status)
        ~write:(fun _ -> t.status <- 0)
        "STATUS";
    ]

let expired_count t = t.expired
let running t = t.enabled
