(** Memory-mapped register banks: the common shape of every peripheral's
    TLM target. *)

open Loseq_sim

type reg

val reg :
  offset:int ->
  ?read:(unit -> int) ->
  ?write:(int -> unit) ->
  string ->
  reg
(** A 32-bit register.  Omitted [read] yields 0; omitted [write] makes
    writes a [Command_error]. *)

val target : ?latency:Time.t -> name:string -> reg list -> Tlm.target
(** Word-aligned, word-sized accesses only; unknown offsets answer
    [Address_error].  [latency] (default 10 ns) is added to the
    transported delay. *)

val name_of : reg -> string
