(** The complete Fig. 2 platform: GPIO, SEN, IPU, LCDC, INTC, TMR1,
    TMR2, MEM, LOCK, Bus and CPU, plus the observation tap and the
    Section-3 properties instantiated over the IPU interface. *)

open Loseq_core
open Loseq_sim
open Loseq_verif

type config = {
  seed : int;
  gallery_size : int;  (** entries read per recognition (>= 100) *)
  presses : int;  (** scripted button presses *)
  press_gap : Time.t;  (** pause between presses *)
  cpu_bug : Cpu.bug option;  (** firmware fault injection *)
  slow_ipu : bool;  (** make recognition miss its deadline *)
  recognition_deadline : Time.t;  (** the paper's [T] *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val kernel : t -> Kernel.t
val tap : t -> Tap.t
val config : t -> config

val property_configuration : t -> Pattern.t
(** Section 3 (i) / Example 2:
    [{set_imgAddr, set_glAddr, set_glSize} << start] (non-repeated by
    default, matching the example). *)

val property_configuration_repeated : t -> Pattern.t
(** The repeated variant: every [start] needs a fresh configuration. *)

val property_recognition : t -> Pattern.t
(** Section 3 (ii) / Example 3:
    [start => read_img[100,60000] < set_irq within T]. *)

val standard_hub : ?backend:Backend.factory -> t -> Hub.t
(** Host the three properties above on an alphabet-routed {!Hub}
    (backend defaults to {!Loseq_core.Backend.compiled}).  Note the
    PSL backend rejects {!property_recognition} — its
    [read_img[100,60000]] range is far past the re-encoding bound. *)

val attach_standard_checkers : ?backend:Backend.factory -> t -> Report.t
(** {!standard_hub}, reported. *)

val run : ?until:Time.t -> t -> unit
(** Run the scripted scenario (defaults to a horizon comfortably after
    the last press). *)

(** Component access for white-box tests: *)

val ipu : t -> Ipu.t
val tmr1 : t -> Timer_dev.t
val tmr2 : t -> Timer_dev.t
val cpu : t -> Cpu.t
val lock : t -> Lock.t
val gpio : t -> Gpio.t
val lcdc : t -> Lcdc.t
val sensor : t -> Sensor.t
val memory : t -> Memory.t
val bus : t -> Bus.t
val intc : t -> Intc.t
val addresses : Cpu.addresses
