(** Image sensor (SEN).

    On capture it DMA-writes a synthetic image into memory through the
    bus, with loose-timed progress, then flags completion.  Register
    map: [0x0 DMA_ADDR] (rw), [0x4 SIZE] (words, rw), [0x8 CTRL]
    (write 1 to capture), [0xC STATUS] (0 idle, 1 busy, 2 done). *)

open Loseq_sim
open Loseq_verif

type t

val create :
  ?name:string -> Kernel.t -> Tap.t -> bus:Tlm.initiator -> t
(** [bus] must already be bound (or be bound before the first
    capture). *)

val regs : t -> Tlm.target
val captures : t -> int
