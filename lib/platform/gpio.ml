open Loseq_verif

type t = {
  name : string;
  tap : Tap.t;
  on_irq : unit -> unit;
  mutable status : int;
  mutable press_count : int;
}

let create ?(name = "GPIO") kernel tap ~on_irq =
  ignore kernel;
  { name; tap; on_irq; status = 0; press_count = 0 }

let press t button =
  t.status <- (1 lsl 31) lor (button land 0xff);
  t.press_count <- t.press_count + 1;
  Tap.emit t.tap "button";
  t.on_irq ()

let presses t = t.press_count

let regs t =
  Mmio.target ~name:t.name
    [
      Mmio.reg ~offset:0x0 ~read:(fun () -> t.status) "STATUS";
      Mmio.reg ~offset:0x4 ~write:(fun _ -> t.status <- 0) "ACK";
    ]
