(** Image Processing Unit (IPU) — the component whose interface the
    paper's properties specify (Section 3).

    Inputs (register writes, each emitting its interface event on the
    tap): [0x00 IMG_ADDR] → [set_imgAddr], [0x04 GL_ADDR] →
    [set_glAddr], [0x08 GL_SIZE] → [set_glSize], [0x0C CTRL] (write 1)
    → [start].  Outputs: every gallery fetch over the bus emits
    [read_img]; completion emits [set_irq] and raises the interrupt
    line.  Read-only: [0x10 STATUS] (0 idle, 1 busy, 2 done),
    [0x14 RESULT] (1 when a gallery entry matched the captured image).

    Recognition is synthetic — a signature comparison between the
    captured image region and each gallery entry — but its interface
    behaviour (event order, counts and loose timing) is the paper's:
    after [start], between [gl_size] reads in a row, then one
    interrupt. *)

open Loseq_sim
open Loseq_verif

type t

val create :
  ?name:string ->
  ?analysis:Time.t * Time.t ->
  Kernel.t ->
  Tap.t ->
  bus:Tlm.initiator ->
  on_irq:(unit -> unit) ->
  t
(** [analysis] is the loose-timed per-image processing window, default
    [(90 ns, 110 ns)] — slow it down to make the timed property's
    deadline miss. *)

val regs : t -> Tlm.target
val recognitions : t -> int
val last_match : t -> bool

val interface_alpha : string list
(** The observable interface names, for documentation and coverage:
    [set_imgAddr; set_glAddr; set_glSize; start; read_img; set_irq]. *)
