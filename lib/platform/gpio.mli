(** Button handler (GPIO).

    The testbench presses buttons with {!press}; the device latches the
    button id, emits a [button] event on the observation tap and raises
    its interrupt.  Register map: [0x0 STATUS] (last button id + valid
    bit 31, ro), [0x4 ACK] (any write clears). *)

open Loseq_sim
open Loseq_verif

type t

val create : ?name:string -> Kernel.t -> Tap.t -> on_irq:(unit -> unit) -> t

val press : t -> int -> unit
(** May be called from processes or callbacks. *)

val presses : t -> int
val regs : t -> Tlm.target
