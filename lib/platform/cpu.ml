open Loseq_sim
open Loseq_verif

type bug = Start_before_config | Skip_gl_size | Double_gl_addr

type addresses = {
  mem_base : int;
  ipu_base : int;
  sen_base : int;
  gpio_base : int;
  intc_base : int;
  tmr1_base : int;
  tmr2_base : int;
  lcdc_base : int;
  lock_base : int;
}

type t = {
  kernel : Kernel.t;
  tap : Tap.t;
  bus : Tlm.initiator;
  irq : Kernel.event;
  addr : addresses;
  bug : bug option;
  gallery_size : int;
  relock_ns : int;
  mutable recognitions : int;
  mutable matches : int;
  mutable heartbeats : int;
}

let irq_lines =
  object
    method gpio = 0
    method ipu = 1
    method tmr2 = 2
    method tmr1 = 3
  end

(* Firmware memory layout (offsets into MEM). *)
let gallery_offset = 0x1000
let image_offset = 0x40000
let framebuffer_offset = 0x80000

(* Synchronized loosely-timed accesses: the accumulated transaction
   delay is consumed immediately. *)
let rd t address =
  let v, delay = Tlm.read_word t.bus address in
  Kernel.wait_for t.kernel delay;
  v

let wr t address v =
  let delay = Tlm.write_word t.bus address v in
  Kernel.wait_for t.kernel delay

(* The signature the sensor writes for capture [k] (see Sensor). *)
let capture_signature k = ((0x1000 + k) * 31) land 0x3fffffff

(* Wait until INTC shows pending work; poll as a lost-wakeup safety
   net. *)
let rec wait_pending t =
  let pending = rd t t.addr.intc_base in
  if pending <> 0 then pending
  else begin
    (match Kernel.wait_timeout t.irq (Time.us 50) with
    | `Event | `Timeout -> ());
    wait_pending t
  end

let ack_intc t mask = wr t (t.addr.intc_base + 0x8) mask

let configure_ipu t =
  let set_img () = wr t t.addr.ipu_base (t.addr.mem_base + image_offset)
  and set_gl () = wr t (t.addr.ipu_base + 0x4) (t.addr.mem_base + gallery_offset)
  and set_size () = wr t (t.addr.ipu_base + 0x8) t.gallery_size in
  let start () = wr t (t.addr.ipu_base + 0xC) 1 in
  let rng = Kernel.rng t.kernel in
  match t.bug with
  | None ->
      (* The loose ordering in action: any order of the three writes is
         correct, and the firmware genuinely varies it. *)
      List.iter
        (fun f -> f ())
        (Stimuli.shuffle rng [ set_img; set_gl; set_size ]);
      start ()
  | Some Start_before_config ->
      start ();
      set_img ();
      set_gl ();
      set_size ()
  | Some Skip_gl_size ->
      set_img ();
      set_gl ();
      start ()
  | Some Double_gl_addr ->
      set_img ();
      set_gl ();
      set_size ();
      set_gl ();
      start ()

let capture_image t =
  wr t t.addr.sen_base (t.addr.mem_base + image_offset);
  wr t (t.addr.sen_base + 0x4) 16;
  wr t (t.addr.sen_base + 0x8) 1;
  let rec poll () =
    let status = rd t (t.addr.sen_base + 0xC) in
    if status <> 2 then begin
      Kernel.wait_for t.kernel (Time.us 1);
      poll ()
    end
  in
  poll ()

let handle_tmr2 t = wr t t.addr.lock_base 0

(* TMR1 is the periodic system tick: acknowledge and count.  Its only
   purpose at this abstraction level is realistic interleaved interrupt
   traffic (the monitors must ignore it). *)
let handle_tmr1 t =
  t.heartbeats <- t.heartbeats + 1;
  wr t (t.addr.tmr1_base + 0x8) 0

let rec await_ipu t =
  let pending = wait_pending t in
  let ipu_bit = 1 lsl irq_lines#ipu in
  let tmr1_bit = 1 lsl irq_lines#tmr1 in
  let tmr2_bit = 1 lsl irq_lines#tmr2 in
  if pending land tmr2_bit <> 0 then begin
    ack_intc t tmr2_bit;
    handle_tmr2 t
  end;
  if pending land tmr1_bit <> 0 then begin
    ack_intc t tmr1_bit;
    handle_tmr1 t
  end;
  if pending land ipu_bit <> 0 then ack_intc t ipu_bit
  else begin
    (* Ack anything else (e.g. a second button press mid-recognition is
       dropped, as in the real firmware). *)
    ack_intc t (pending land lnot (ipu_bit lor tmr1_bit lor tmr2_bit));
    await_ipu t
  end

let do_recognition t =
  capture_image t;
  configure_ipu t;
  await_ipu t;
  t.recognitions <- t.recognitions + 1;
  let result = rd t (t.addr.ipu_base + 0x14) in
  if result = 1 then begin
    t.matches <- t.matches + 1;
    Tap.emit t.tap "cpu_grant";
    wr t t.addr.lock_base 1;
    wr t t.addr.tmr2_base t.relock_ns;
    wr t (t.addr.tmr2_base + 0x4) 1
  end
  else Tap.emit t.tap "cpu_deny"

let write_gallery t =
  (* Even-numbered captures match an enrolled face. *)
  for i = 0 to t.gallery_size - 1 do
    let signature =
      if i mod 2 = 0 then capture_signature i
      else 0x7f000000 lor i
    in
    wr t (t.addr.mem_base + gallery_offset + (i * 64)) signature
  done

let boot t () =
  (* Enable interrupt lines, bring up the display, start the system
     tick, enroll the gallery. *)
  wr t (t.addr.intc_base + 0x4) 0xff;
  wr t t.addr.lcdc_base (t.addr.mem_base + framebuffer_offset);
  wr t (t.addr.lcdc_base + 0x4) 200_000;
  wr t (t.addr.lcdc_base + 0x8) 1;
  wr t t.addr.tmr1_base 100_000;
  wr t (t.addr.tmr1_base + 0x4) 0b11;
  write_gallery t;
  Tap.emit t.tap "cpu_ready";
  let gpio_bit = 1 lsl irq_lines#gpio in
  let tmr1_bit = 1 lsl irq_lines#tmr1 in
  let tmr2_bit = 1 lsl irq_lines#tmr2 in
  let rec serve () =
    let pending = wait_pending t in
    if pending land tmr2_bit <> 0 then begin
      ack_intc t tmr2_bit;
      handle_tmr2 t
    end;
    if pending land tmr1_bit <> 0 then begin
      ack_intc t tmr1_bit;
      handle_tmr1 t
    end;
    if pending land gpio_bit <> 0 then begin
      ack_intc t gpio_bit;
      wr t (t.addr.gpio_base + 0x4) 0;
      do_recognition t
    end;
    let other = pending land lnot (gpio_bit lor tmr1_bit lor tmr2_bit) in
    if other <> 0 then ack_intc t other;
    serve ()
  in
  serve ()

let create ?bug ?(gallery_size = 120) ?(relock_ns = 500_000) kernel tap ~bus
    ~irq addresses =
  let t =
    {
      kernel;
      tap;
      bus;
      irq;
      addr = addresses;
      bug;
      gallery_size;
      relock_ns;
      recognitions = 0;
      matches = 0;
      heartbeats = 0;
    }
  in
  Kernel.spawn ~name:"CPU" kernel (boot t);
  t

let recognitions_done t = t.recognitions
let matches_seen t = t.matches
let heartbeats_seen t = t.heartbeats
