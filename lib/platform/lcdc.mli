(** LCD controller (LCDC).

    While enabled, periodically reads a strip of the framebuffer over
    the bus (emitting [lcdc_refresh]).  Register map: [0x0 FB_ADDR]
    (rw), [0x4 PERIOD] (ns, rw), [0x8 CTRL] (bit 0 enable). *)

open Loseq_sim
open Loseq_verif

type t

val create : ?name:string -> Kernel.t -> Tap.t -> bus:Tlm.initiator -> t
val regs : t -> Tlm.target
val refreshes : t -> int
val enabled : t -> bool
