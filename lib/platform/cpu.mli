(** CPU with its embedded software model.

    The firmware implements the access-control flow: on a button press
    it captures an image with the sensor, configures the IPU — writing
    the three configuration registers in a {e random order} (the
    loose-ordering the paper's properties allow) — starts recognition,
    and on the IPU interrupt opens the lock on a match, arming TMR2 to
    relock the door.

    Fault injection ({!bug}) produces the ordering/timing violations the
    monitors must catch. *)

open Loseq_sim
open Loseq_verif

type bug =
  | Start_before_config  (** write [CTRL] before the three registers *)
  | Skip_gl_size  (** forget [GL_SIZE] *)
  | Double_gl_addr  (** write [GL_ADDR] twice before [start] *)

type addresses = {
  mem_base : int;
  ipu_base : int;
  sen_base : int;
  gpio_base : int;
  intc_base : int;
  tmr1_base : int;
  tmr2_base : int;
  lcdc_base : int;
  lock_base : int;
}

type t

val create :
  ?bug:bug ->
  ?gallery_size:int ->
  ?relock_ns:int ->
  Kernel.t ->
  Tap.t ->
  bus:Tlm.initiator ->
  irq:Kernel.event ->
  addresses ->
  t
(** [gallery_size] (default 120) entries of 64 bytes each are indexed;
    [relock_ns] (default 500_000) is the TMR2 relock delay. *)

val recognitions_done : t -> int
val matches_seen : t -> int

val heartbeats_seen : t -> int
(** Periodic TMR1 system-tick interrupts the firmware has serviced. *)

val irq_lines : < gpio : int ; ipu : int ; tmr1 : int ; tmr2 : int >
(** INTC line assignment the firmware assumes. *)
