open Loseq_sim
open Loseq_verif

type t = {
  name : string;
  kernel : Kernel.t;
  tap : Tap.t;
  bus : Tlm.initiator;
  enabled_change : Kernel.event;
  mutable fb_addr : int;
  mutable period_ns : int;
  mutable on : bool;
  mutable refresh_count : int;
}

let behaviour t () =
  let rec loop () =
    if not t.on then begin
      Kernel.wait t.enabled_change;
      loop ()
    end
    else begin
      for i = 0 to 7 do
        ignore (Tlm.read_word t.bus (t.fb_addr + (4 * i)))
      done;
      t.refresh_count <- t.refresh_count + 1;
      Tap.emit t.tap "lcdc_refresh";
      Kernel.wait_loose t.kernel
        (Time.ns (t.period_ns * 9 / 10))
        (Time.ns (t.period_ns * 11 / 10));
      loop ()
    end
  in
  loop ()

let create ?(name = "LCDC") kernel tap ~bus =
  let t =
    {
      name;
      kernel;
      tap;
      bus;
      enabled_change = Kernel.event ~name:(name ^ ".enable") kernel;
      fb_addr = 0;
      period_ns = 100_000;
      on = false;
      refresh_count = 0;
    }
  in
  Kernel.spawn ~name kernel (behaviour t);
  t

let regs t =
  Mmio.target ~name:t.name
    [
      Mmio.reg ~offset:0x0
        ~read:(fun () -> t.fb_addr)
        ~write:(fun v -> t.fb_addr <- v)
        "FB_ADDR";
      Mmio.reg ~offset:0x4
        ~read:(fun () -> t.period_ns)
        ~write:(fun v -> t.period_ns <- max 1_000 v)
        "PERIOD";
      Mmio.reg ~offset:0x8
        ~read:(fun () -> if t.on then 1 else 0)
        ~write:(fun v ->
          let enable = v land 1 = 1 in
          if enable <> t.on then begin
            t.on <- enable;
            Kernel.notify_immediate t.enabled_change
          end)
        "CTRL";
    ]

let refreshes t = t.refresh_count
let enabled t = t.on
