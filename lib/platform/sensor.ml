open Loseq_sim
open Loseq_verif

type t = {
  name : string;
  kernel : Kernel.t;
  tap : Tap.t;
  bus : Tlm.initiator;
  capture_requested : Kernel.event;
  mutable dma_addr : int;
  mutable size_words : int;
  mutable status : int;  (* 0 idle, 1 busy, 2 done *)
  mutable capture_count : int;
}

let behaviour t () =
  let rec loop () =
    Kernel.wait t.capture_requested;
    t.status <- 1;
    Tap.emit t.tap "sen_capture";
    (* Loose-timed exposure, then DMA the synthetic frame word by
       word; pixel data is a deterministic function of the capture
       ordinal so that runs are reproducible. *)
    Kernel.wait_loose t.kernel (Time.us 2) (Time.us 5);
    let seed = 0x1000 + t.capture_count in
    for i = 0 to t.size_words - 1 do
      ignore
        (Tlm.write_word t.bus (t.dma_addr + (4 * i)) ((seed * 31) + i));
      if i mod 16 = 15 then
        Kernel.wait_loose t.kernel (Time.ns 50) (Time.ns 150)
    done;
    t.capture_count <- t.capture_count + 1;
    t.status <- 2;
    Tap.emit t.tap "sen_done";
    loop ()
  in
  loop ()

let create ?(name = "SEN") kernel tap ~bus =
  let t =
    {
      name;
      kernel;
      tap;
      bus;
      capture_requested = Kernel.event ~name:(name ^ ".capture") kernel;
      dma_addr = 0;
      size_words = 16;
      status = 0;
      capture_count = 0;
    }
  in
  Kernel.spawn ~name kernel (behaviour t);
  t

let regs t =
  Mmio.target ~name:t.name
    [
      Mmio.reg ~offset:0x0
        ~read:(fun () -> t.dma_addr)
        ~write:(fun v -> t.dma_addr <- v)
        "DMA_ADDR";
      Mmio.reg ~offset:0x4
        ~read:(fun () -> t.size_words)
        ~write:(fun v -> t.size_words <- max 1 v)
        "SIZE";
      Mmio.reg ~offset:0x8
        ~write:(fun v ->
          if v land 1 = 1 then begin
            (* Mark busy synchronously so a poll right after the trigger
               cannot observe a stale "done". *)
            t.status <- 1;
            Kernel.notify_immediate t.capture_requested
          end)
        "CTRL";
      Mmio.reg ~offset:0xC ~read:(fun () -> t.status) "STATUS";
    ]

let captures t = t.capture_count
