(** Checkpoint/resume for streaming monitor sessions.

    A checkpoint is one JSON document capturing everything a
    {!Session} needs to continue as if it had never stopped: the suite
    identity (source text, match-checked on resume), the session
    parameters, the stream position, the reorder buffer {e as is}
    (pending events are carried, not flushed — flushing would deliver
    them earlier than the uninterrupted run would have), and the exact
    run state of every hosted monitor.

    Two on-disk versions coexist.  Version 1 carries one persisted
    JSON state per checker (via the backend persistence capability,
    {!Loseq_core.Backend.t.persist}).  Version 2 is written when every
    hosted checker is a view of one shared {!Loseq_core.Flat} suite
    engine: the entire suite's run state is a single base64 blob plus
    the interning table that pins its layout, so capture/restore cost
    stops scaling with checker count.  Restore accepts either version
    under either hosting — a compiled-written checkpoint resumes under
    the flat backend and vice versa (the blob is decoded into a
    scratch engine and bridged per checker when the session is not
    flat-hosted).

    The resume contract is replay-based: the producer re-sends the
    stream from the start and the consumer skips the first
    {!position}-many events — exactly the events the checkpointed
    session had {e accepted} (delivered, buffered or counted
    dropped-late).  Equivalence is property-tested: killing a session
    at any prefix and resuming yields a report whose
    {!Loseq_verif.Report.summary_strings} equals the uninterrupted
    run's. *)

open Loseq_core

val capture : Session.t -> Json.t
(** Version 2 (one engine blob) when the session is flat-hosted,
    version 1 (per-checker states) otherwise.  Raises [Failure] if a
    hosted checker's backend lacks the persistence capability. *)

val restore : Session.t -> Json.t -> (unit, string) result
(** Overwrite a {e fresh} session (no events offered) with a captured
    state, either version.  Fails on schema/version mismatch
    (including a flat blob of an unsupported [blob_version], reported
    as a clear error, not a decode exception), a different suite, a
    non-fresh session, or a backend without the restore capability.
    On success the session's kernel is advanced to the checkpointed
    time and the hub's deadline wheel is re-armed. *)

val save : path:string -> Session.t -> (int, string) result
(** {!capture} to a file, atomically (write to [path ^ ".tmp"], then
    rename).  [Ok n] is the encoded byte size written — surfaced in
    the server's [checkpoint] NDJSON record. *)

val load : path:string -> (Json.t, string) result

val position : Json.t -> (int, string) result
(** The number of leading stream events a resumed producer (or a
    skipping consumer) must not re-deliver. *)

val resume :
  ?metrics:Loseq_obs.Metrics.t ->
  ?trace:Loseq_obs.Trace.t ->
  ?backend:Backend.factory ->
  ?suite_backend:Backend.suite_factory ->
  ?latency_sample_rate:int ->
  path:string ->
  Loseq_verif.Suite.t ->
  (Session.t, string) result
(** [load], create a session with the checkpoint's lateness/window
    (and, like {!Session.create}, an optional live [metrics] sink,
    [trace] flight recorder, sampling rate, and backend choice),
    [restore].  The checkpoint's version and the
    session's hosting are independent: any persistable [backend] or
    [suite_backend] resumes either version. *)
