(** Checkpoint/resume for streaming monitor sessions.

    A checkpoint is one JSON document capturing everything a
    {!Session} needs to continue as if it had never stopped: the suite
    identity (source text, match-checked on resume), the session
    parameters, the stream position, the reorder buffer {e as is}
    (pending events are carried, not flushed — flushing would deliver
    them earlier than the uninterrupted run would have), and the exact
    run state of every hosted monitor (via the compiled backend's
    persistence capability, {!Loseq_core.Backend.t.persist}).

    The resume contract is replay-based: the producer re-sends the
    stream from the start and the consumer skips the first
    {!position}-many events — exactly the events the checkpointed
    session had {e accepted} (delivered, buffered or counted
    dropped-late).  Equivalence is property-tested: killing a session
    at any prefix and resuming yields a report whose
    {!Loseq_verif.Report.summary_strings} equals the uninterrupted
    run's. *)

open Loseq_core

val capture : Session.t -> Json.t
(** Raises [Failure] if a hosted checker's backend lacks the
    persistence capability (any non-compiled backend). *)

val restore : Session.t -> Json.t -> (unit, string) result
(** Overwrite a {e fresh} session (no events offered) with a captured
    state.  Fails on schema/version mismatch, a different suite, a
    non-fresh session, or a backend without the restore capability.
    On success the session's kernel is advanced to the checkpointed
    time and the hub's deadline wheel is re-armed. *)

val save : path:string -> Session.t -> (unit, string) result
(** {!capture} to a file, atomically (write to [path ^ ".tmp"], then
    rename). *)

val load : path:string -> (Json.t, string) result

val position : Json.t -> (int, string) result
(** The number of leading stream events a resumed producer (or a
    skipping consumer) must not re-deliver. *)

val resume :
  ?metrics:Loseq_obs.Metrics.t ->
  ?backend:Backend.factory ->
  path:string ->
  Loseq_verif.Suite.t ->
  (Session.t, string) result
(** [load], create a session with the checkpoint's lateness/window
    (and, like {!Session.create}, an optional live [metrics] sink),
    [restore]. *)
