(** The [loseq serve] engine: a live monitor endpoint.

    Reads a trace stream — LSQB binary or line-oriented CSV, sniffed
    from the first bytes — from stdin or a Unix-domain socket (one
    connection), feeds it through a {!Session}, and emits NDJSON
    records on [out] as things happen:

    - [{"type":"start", ...}] once, after the input is open;
    - [{"type":"violation", "property":.., "time":.., "index":..,
      "fragment":.., "message":..}] the moment any property first
      fails — the monitor is {e live}, a violation does not wait for
      end of stream;
    - [{"type":"checkpoint", "path":.., "events":.., "bytes":..}]
      after each periodic {!Checkpoint.save} ([bytes] is the encoded
      size written — the flat blob format keeps it from scaling with
      checker count);
    - on SIGTERM/SIGINT: a final checkpoint (when configured), then
      [{"type":"interrupted", "events":..}] — exit code 0, the stream
      is expected to resume;
    - on end of stream: one [{"type":"verdict", "property":..,
      "passed":.., "verdict":..}] per property and a closing
      [{"type":"summary", "passed":.., ...}] with the session
      statistics;
    - [{"type":"error", "message":..}] on malformed input;
    - [{"type":"reorder-certificate", "lateness":.., "certified":..,
      "decided":.., "robust":..}] once at startup when the session
      reorders ([lateness > 0]) or [strict_reorder] is set: the suite's
      lateness-robustness bound ({!Session.reorder_certificate})
      against the configured window.  [robust:false] means some
      reordering the buffer silently absorbs could flip a verdict;
      under [strict_reorder] the server then refuses to start (exit
      [2]).

    With [stats_interval n > 0] a [{"type":"stats", "events":..,
    "delivered":.., "reordered":.., "dropped_late":.., "forced":..,
    "occupancy":.., "watermark":..}] record is emitted every [n]
    accepted events (event-count, not wall-clock: deterministic and
    testable).  The closing [summary] record also carries the reorder
    buffer's final [occupancy]/[watermark]/[max_seen].

    With [metrics_addr (host, port)] the server additionally binds a
    TCP endpoint answering [GET /metrics] (Prometheus text format
    0.0.4) and [GET /stats.json] (the same registry as compact JSON),
    multiplexed into the serve loop with [select] — no threads.  A
    [{"type":"metrics-listening", "addr":.., "port":..}] record
    reports the bound address; with port [0] the kernel picks an
    ephemeral port and this record is how callers learn it.  SIGPIPE
    is ignored while serving, so a scraper disconnecting mid-response
    cannot kill the process.  After end of stream the endpoint
    {e lingers} (the final counters stay scrapable) until
    SIGTERM/SIGINT; the exit code still reflects the verdicts.

    With [ooo] the speculative {!Loseq_ooo.Engine} replaces the
    session's reorder buffer: events are applied the moment they
    arrive, violation records carry a ["speculative"] flag,
    [{"type":"retracted", "property":..}] withdraws a speculative
    violation a rollback disproved, and [{"type":"settled",
    "property":.., "passed":.., "verdict":..}] marks each verdict the
    watermark made definitive.  The [stats] and [summary] records carry
    the engine counters instead ([applied], [late], [commute_hits],
    [rollbacks], [replayed], [journal_depth]/[max_journal],
    [watermark]); the final [verdict] records are byte-identical to the
    buffered mode's up to the ["provenance"] chains (capture is
    arrival-order, so the 1-minimal witness may differ).  [checkpoint]/[resume] are refused (exit [2]) —
    speculative state is not checkpointable.

    Exit codes: [0] all properties passed (or interrupted), [1] some
    property failed, [2] input/setup error (including a strict-reorder
    refusal). *)

open Loseq_verif

val serve :
  ?metrics:Loseq_obs.Metrics.t ->
  ?metrics_addr:string * int ->
  ?stats_interval:int ->
  ?backend:Loseq_core.Backend.factory ->
  ?suite_backend:Loseq_core.Backend.suite_factory ->
  ?lateness:int ->
  ?window:int ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?strict_reorder:bool ->
  ?ooo:bool ->
  ?final_time:int ->
  ?trace_out:string ->
  ?profile_out:string ->
  ?latency_sample_rate:int ->
  ?out:out_channel ->
  input:[ `Stdin | `Socket of string ] ->
  Suite.t ->
  int
(** [checkpoint] is the checkpoint file path; [checkpoint_every n]
    (default 0 = only on shutdown) saves it every [n] accepted events.
    [resume] (default false) restores from [checkpoint] when the file
    exists — the producer must replay the stream from the start; the
    server skips the events the checkpoint already accounts for.
    [lateness]/[window] configure the session's reorder stage (ignored
    on resume: the checkpoint's values win).  [out] defaults to
    stdout.

    [metrics] (default noop) is threaded through the session to the hub
    and reorder buffer, and additionally feeds the server-level
    instruments [loseq_bytes_in_total], [loseq_records_decoded_total],
    [loseq_sessions_live], [loseq_verdicts_total{verdict=..}] and
    [loseq_checkpoint_writes_total].  Passing [metrics_addr], a
    positive [stats_interval] or [profile_out] without an explicit
    [metrics] creates a live registry automatically.

    Failed [verdict] records carry a ["provenance"] member — the
    minimal causal chain behind the Fail ({!Loseq_verif.Provenance}):
    the events that advanced the recognizer, delta-debugged to
    1-minimality, plus the firing deadline for deadline misses.
    Capture is always on (one bounded ring push per alphabet event) in
    both hosting modes; [loseq explain-verdict] replays the chain
    standalone.

    With [trace_out FILE] a flight recorder ({!Loseq_obs.Trace}) is
    live for the whole run — hub dispatch spans and deadline instants,
    reorder admission instants, backpressure stall spans, input
    admission and checkpoint-write spans, and (under [ooo]) the
    engine's speculation records — and the ring is exported to [FILE]
    on end of stream {e and} on interruption: NDJSON when [FILE] ends
    in [.ndjson], Chrome trace-event JSON (Perfetto-loadable)
    otherwise.  A [{"type":"trace", "path":.., "format":..,
    "records":.., "dropped":..}] record reports the export.

    With [profile_out FILE] a [loseq-profile/1] artifact
    ({!Loseq_obs.Profile}) is written alongside — measured per-checker
    alphabet-event counts and the dispatch-latency histogram — which
    [loseq analyze --shard-plan N --profile FILE] consumes as measured
    load; a [{"type":"profile", "path":.., "checkers":..}] record
    reports it.  [latency_sample_rate] (default 64, buffered mode)
    tunes the hub's dispatch-latency sampling. *)

val feed : ?timeout:float -> path:string -> in_channel -> (int, string) result
(** Copy [in_channel] to the Unix-domain socket at [path] (connecting
    with retries for up to [timeout] seconds, default 5 — the server
    may still be binding); returns the number of bytes copied.  This
    is the producer side of the socket pipe, for shells without a
    [socat]: [loseq feed --socket S < trace.lsqb]. *)
