open Loseq_core
open Loseq_verif
module Obs = Loseq_obs.Metrics
module Tr = Loseq_obs.Trace

let emit_record out record =
  output_string out (Json.to_string record);
  output_char out '\n';
  flush out

let violation_fields ~name (v : Diag.violation) =
  [
    ("type", Json.String "violation");
    ("property", Json.String name);
    ("time", Json.Int v.time);
    ("index", Json.Int v.index);
    ("fragment", Json.Int v.fragment);
    ("message", Json.String (Diag.violation_to_string v));
  ]

let violation_record ~name v = Json.Obj (violation_fields ~name v)

(* The flag a signal flips; the read loop checks it between chunks
   (reads are EINTR-transparent so a signal interrupts a blocking
   read). *)
let stop_requested = ref false

let with_signals f =
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> stop_requested := true)) in
  stop_requested := false;
  let prev_term = install Sys.sigterm and prev_int = install Sys.sigint in
  (* A metrics scraper that disconnects mid-response would otherwise
     deliver SIGPIPE, whose default disposition kills the process;
     ignored, the write fails with EPIPE as a catchable Unix_error. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigpipe prev_pipe)
    f

(* EINTR-safe read; [None] when a stop was requested while blocked. *)
let rec read_chunk fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | n -> if !stop_requested then None else Some n
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if !stop_requested then None else read_chunk fd buf

exception Input_error of string

(* ---- input formats ----------------------------------------------------- *)

type csv_state = { mutable partial : string; mutable lineno : int }

type parser_state =
  | Sniffing of Buffer.t
  | Binary of Codec.Decoder.t
  | Csv of csv_state

let feed_csv st chunk ~push =
  let data = st.partial ^ chunk in
  let rec split from =
    match String.index_from_opt data from '\n' with
    | None -> st.partial <- String.sub data from (String.length data - from)
    | Some nl ->
        let line = String.sub data from (nl - from) in
        st.lineno <- st.lineno + 1;
        (match Trace_io.parse_csv_line ~lineno:st.lineno line with
        | Ok (Some e) -> push e
        | Ok None -> ()
        | Error msg -> raise (Input_error msg));
        split (nl + 1)
  in
  split 0

let feed_binary dec chunk ~push =
  match Codec.Decoder.feed dec chunk ~emit:push with
  | Ok () -> ()
  | Error msg -> raise (Input_error msg)

(* Route one chunk; the first chunk(s) resolve the format (binary iff
   the stream starts with the LSQB magic). *)
let rec feed_chunk state chunk ~push =
  match !state with
  | Binary dec -> feed_binary dec chunk ~push
  | Csv st -> feed_csv st chunk ~push
  | Sniffing buf ->
      Buffer.add_string buf chunk;
      let data = Buffer.contents buf in
      if String.length data < String.length Codec.magic then begin
        if not (Codec.looks_binary data) then begin
          state := Csv { partial = ""; lineno = 0 };
          feed_chunk state data ~push
        end
        (* else: still ambiguous, keep sniffing *)
      end
      else if Codec.looks_binary data then begin
        state := Binary (Codec.Decoder.create ());
        feed_chunk state data ~push
      end
      else begin
        state := Csv { partial = ""; lineno = 0 };
        feed_chunk state data ~push
      end

let finish_input state ~push =
  match !state with
  | Binary dec -> (
      match Codec.Decoder.finish dec with
      | Ok () -> ()
      | Error msg -> raise (Input_error msg))
  | Csv st -> if st.partial <> "" then feed_csv st "\n" ~push
  | Sniffing buf ->
      let data = Buffer.contents buf in
      if data <> "" then
        if Codec.looks_binary data then
          raise (Input_error "truncated stream: incomplete header")
        else begin
          state := Csv { partial = ""; lineno = 0 };
          feed_csv { partial = data; lineno = 0 } "\n" ~push
        end

(* Consult the suite's lateness-robustness certificate before any event
   flows.  Skipped entirely on the default in-order path (lateness 0,
   no --strict-reorder) so plain serving pays nothing; otherwise a
   [reorder-certificate] record states what the configured window is
   certified for, and under strict mode an uncertified window refuses
   to start.  [cert_thunk] defers the (possibly budgeted) analysis to
   when it is actually consulted. *)
let reorder_gate ~lateness ~strict_reorder ~out cert_thunk =
  if lateness = 0 && not strict_reorder then Ok ()
  else begin
    let cert : Loseq_analysis.Robust.certificate = cert_thunk () in
    let robust =
      Loseq_analysis.Robust.(compare_bound cert.bound (Finite lateness) >= 0)
    in
    emit_record out
      (Json.Obj
         [
           ("type", Json.String "reorder-certificate");
           ("lateness", Json.Int lateness);
           ( "certified",
             Json.String
               (Loseq_analysis.Robust.bound_to_string
                  cert.Loseq_analysis.Robust.bound) );
           ("decided", Json.Bool cert.Loseq_analysis.Robust.decided);
           ("robust", Json.Bool robust);
         ]);
    if robust || not strict_reorder then Ok ()
    else
      Error
        (Printf.sprintf
           "suite certified for lateness <= %s but hosted with lateness \
            %d; refusing under --strict-reorder"
           (Loseq_analysis.Robust.bound_to_string
              cert.Loseq_analysis.Robust.bound)
           lateness)
  end

(* ---- the metrics endpoint ---------------------------------------------- *)

(* A deliberately minimal HTTP/1.1 responder: GET only, one request per
   connection, [Connection: close].  Enough for a Prometheus scraper or
   a curl.  The connection runs inline in the serve loop, so both
   directions carry short socket timeouts: a client that trickles its
   request or refuses to drain the response stalls ingestion for at
   most a few hundred milliseconds before the connection is cut. *)

let http_io_timeout = 0.25

let http_listen ~host ~port =
  let addr =
    if host = "" || host = "*" then Unix.inet_addr_any
    else
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | exception Not_found ->
            raise (Input_error (Printf.sprintf "unknown host %S" host))
        | { Unix.h_addr_list = [||]; _ } ->
            raise (Input_error (Printf.sprintf "unknown host %S" host))
        | h -> h.Unix.h_addr_list.(0))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (addr, port));
  Unix.listen sock 16;
  sock

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let http_respond conn ~status ~content_type body =
  let response =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n%s"
      status content_type (String.length body) body
  in
  let rec write off remaining =
    if remaining > 0 then begin
      let w = Unix.write_substring conn response off remaining in
      write (off + w) (remaining - w)
    end
  in
  write 0 (String.length response)

let http_serve_one listener metrics =
  let conn, _ = Unix.accept listener in
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt_float conn Unix.SO_RCVTIMEO http_io_timeout;
  Unix.setsockopt_float conn Unix.SO_SNDTIMEO http_io_timeout;
  let buf = Bytes.create 4096 in
  let data = Buffer.create 256 in
  let rec read_request () =
    if Buffer.length data > 65536 then ()
    else
      match Unix.read conn buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes data buf 0 n;
          if not (contains (Buffer.contents data) "\r\n\r\n") then
            read_request ()
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNRESET), _, _)
        ->
          ()
  in
  read_request ();
  let request = Buffer.contents data in
  let first_line =
    match String.index_opt request '\r' with
    | Some i -> String.sub request 0 i
    | None -> request
  in
  let path =
    match String.split_on_char ' ' first_line with
    | [ "GET"; target; _ ] -> (
        match String.index_opt target '?' with
        | Some q -> Some (String.sub target 0 q)
        | None -> Some target)
    | _ -> None
  in
  try
    match path with
    | Some "/metrics" ->
        http_respond conn ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Loseq_obs.Expo.prometheus metrics)
    | Some "/stats.json" ->
        http_respond conn ~status:"200 OK" ~content_type:"application/json"
          (Loseq_obs.Expo.json metrics)
    | Some _ ->
        http_respond conn ~status:"404 Not Found" ~content_type:"text/plain"
          "not found: try /metrics or /stats.json\n"
    | None ->
        http_respond conn ~status:"400 Bad Request" ~content_type:"text/plain"
          "bad request\n"
  with Unix.Unix_error _ -> ()

(* ---- server-level instruments ------------------------------------------ *)

type server_obs = {
  bytes_in : Obs.counter;
  records : Obs.counter;
  sessions : Obs.gauge;
  pass : Obs.counter;
  fail : Obs.counter;
  ckpt : Obs.counter;
}

let make_server_obs metrics =
  if not (Obs.is_live metrics) then None
  else
    let verdicts v =
      Obs.counter metrics ~name:"loseq_verdicts_total"
        ~help:"Final property verdicts, by outcome"
        ~labels:[ ("verdict", v) ] ()
    in
    Some
      {
        bytes_in =
          Obs.counter metrics ~name:"loseq_bytes_in_total"
            ~help:"Raw trace bytes read from the input" ();
        records =
          Obs.counter metrics ~name:"loseq_records_decoded_total"
            ~help:"Trace records decoded from the input stream" ();
        sessions =
          Obs.gauge metrics ~name:"loseq_sessions_live"
            ~help:"Monitor sessions currently hosted (0 or 1)" ();
        pass = verdicts "pass";
        fail = verdicts "fail";
        ckpt =
          Obs.counter metrics ~name:"loseq_checkpoint_writes_total"
            ~help:"Checkpoint files written" ();
      }

(* ---- the serve loop ---------------------------------------------------- *)

let open_input = function
  | `Stdin -> (Unix.stdin, None)
  | `Socket path ->
      if Sys.file_exists path then Sys.remove path;
      let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listener (Unix.ADDR_UNIX path);
      Unix.listen listener 1;
      let conn, _ = Unix.accept listener in
      Unix.close listener;
      (conn, Some (fun () -> Unix.close conn; if Sys.file_exists path then Sys.remove path))

(* ---- hosting-loop helpers ----------------------------------------------

   Both hosting modes — the buffered reorder path and the speculative
   [--ooo] path — share the same plumbing: an optional HTTP metrics
   endpoint multiplexed into the read loop, a chunked input pump, and a
   post-summary linger that keeps the endpoint answering until SIGTERM.
   Extracted here so the modes differ only in what an event does. *)

let with_http ~out ~metrics_addr f =
  let http =
    match metrics_addr with
    | None -> None
    | Some (host, port) ->
        let listener = http_listen ~host ~port in
        (* Report the bound address: with port 0 the kernel picks
           an ephemeral port, and a scraper (or CI) learns it from
           this record rather than guessing. *)
        let bound_host, bound_port =
          match Unix.getsockname listener with
          | Unix.ADDR_INET (a, p) -> (Unix.string_of_inet_addr a, p)
          | _ -> (host, port)
        in
        emit_record out
          (Json.Obj
             [
               ("type", Json.String "metrics-listening");
               ( "addr",
                 Json.String (Printf.sprintf "%s:%d" bound_host bound_port) );
               ("port", Json.Int bound_port);
             ]);
        Some listener
  in
  Fun.protect
    ~finally:(fun () ->
      match http with
      | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
      | None -> ())
  @@ fun () -> f http

let handle_http listener metrics =
  try http_serve_one listener metrics with Unix.Unix_error _ -> ()

(* Pump chunks from [fd] into [consume] until end of stream or a
   requested stop.  With an endpoint, multiplex: the input stream and
   the HTTP listener share one select, so a scrape is answered between
   chunks without threads. *)
let stream_loop ~fd ~metrics ~consume http =
  let buf = Bytes.create 65536 in
  let rec plain_loop () =
    match read_chunk fd buf with
    | None -> `Interrupted
    | Some 0 -> `Eof
    | Some n ->
        consume (Bytes.sub_string buf 0 n);
        if !stop_requested then `Interrupted else plain_loop ()
  in
  let rec select_loop listener =
    if !stop_requested then `Interrupted
    else
      match Unix.select [ fd; listener ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          if !stop_requested then `Interrupted else select_loop listener
      | readable, _, _ -> (
          if List.memq listener readable then handle_http listener metrics;
          if not (List.memq fd readable) then
            if !stop_requested then `Interrupted else select_loop listener
          else
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> `Eof
            | n ->
                consume (Bytes.sub_string buf 0 n);
                if !stop_requested then `Interrupted else select_loop listener
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                if !stop_requested then `Interrupted else select_loop listener)
  in
  match http with
  | None -> plain_loop ()
  | Some listener -> select_loop listener

(* Keep the endpoint up after end of stream so a scraper can still
   collect the final counters; SIGTERM/SIGINT ends the linger (and the
   verdict-borne exit code survives it). *)
let linger ~metrics http =
  match http with
  | Some listener when not !stop_requested ->
      let rec go () =
        if not !stop_requested then
          match Unix.select [ listener ] [] [] (-1.0) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> go ()
          | _ :: _, _, _ ->
              handle_http listener metrics;
              go ()
      in
      go ()
  | _ -> ()

let default_metrics ~metrics ~metrics_addr ~stats_interval ~profile_out =
  match metrics with
  | Some m -> m
  | None ->
      (* an exposition surface with nothing behind it is useless, so
         asking for one implies a live registry; likewise a profile
         artifact, whose dispatch histogram lives in the registry *)
      if metrics_addr <> None || stats_interval > 0 || profile_out <> None
      then Obs.create ()
      else Obs.noop

let error_record out msg =
  emit_record out
    (Json.Obj [ ("type", Json.String "error"); ("message", Json.String msg) ]);
  2

(* ---- flight-recorder artifacts ------------------------------------------ *)

let write_file path data =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc data

(* Export format by extension: [.ndjson] gets the line-oriented record
   dump, anything else the Chrome trace-event JSON Perfetto loads. *)
let write_trace_artifact ~out trace path =
  let ndjson = Filename.check_suffix path ".ndjson" in
  write_file path (if ndjson then Tr.to_ndjson trace else Tr.to_chrome trace);
  emit_record out
    (Json.Obj
       [
         ("type", Json.String "trace");
         ("path", Json.String path);
         ("format", Json.String (if ndjson then "ndjson" else "chrome"));
         ("records", Json.Int (Tr.length trace));
         ("dropped", Json.Int (Tr.dropped trace));
       ])

let write_profile_artifact ~out ~metrics ~checkers path =
  write_file path (Loseq_obs.Profile.render ~metrics ~checkers ());
  emit_record out
    (Json.Obj
       [
         ("type", Json.String "profile");
         ("path", Json.String path);
         ("checkers", Json.Int (List.length checkers));
       ])

(* Written on BOTH exits — end of stream and interruption — so a
   monitor cut down by SIGTERM still leaves its artifacts behind. *)
let write_artifacts ~out ~metrics ~trace ~trace_out ~profile_out ~checkers =
  (match trace_out with
  | Some path when Tr.is_live trace -> write_trace_artifact ~out trace path
  | Some _ | None -> ());
  match profile_out with
  | Some path -> write_profile_artifact ~out ~metrics ~checkers path
  | None -> ()

(* The minimal causal chain behind a failed verdict, attached to its
   NDJSON record: the frozen provenance ring, delta-debugged down to
   1-minimality against the entry's own pattern. *)
let provenance_field ?backend ~prov ~final_time ~pattern_of name passed =
  if passed then []
  else
    match pattern_of name with
    | None -> []
    | Some pattern ->
        let chain =
          Provenance.minimize ?backend ~final_time ~label:name pattern
            (Provenance.captured prov name)
        in
        [
          ( "provenance",
            Provenance.chain_json
              ?violation:(Provenance.violation_of prov name)
              chain );
        ]

(* ---- buffered hosting (the default mode) ------------------------------- *)

let serve_buffered ~metrics ~metrics_addr ~stats_interval ?backend
    ?suite_backend ~lateness ~window ?checkpoint ~checkpoint_every ~resume
    ~strict_reorder ?final_time ~trace ~trace_out ~profile_out
    ?latency_sample_rate ~out ~input suite =
  let error msg = error_record out msg in
  let resuming =
    resume
    && match checkpoint with Some p -> Sys.file_exists p | None -> false
  in
  let session_result =
    if resuming then
      Checkpoint.resume ~metrics ~trace ?backend ?suite_backend
        ?latency_sample_rate ~path:(Option.get checkpoint) suite
    else
      match
        Session.create ~metrics ~trace ?backend ?suite_backend
          ?latency_sample_rate ~lateness ~window suite
      with
      | s -> Ok s
      | exception Wellformed.Ill_formed (p, errs) ->
          Error
            (Format.asprintf "ill-formed pattern %a:@ %a" Pattern.pp p
               (Format.pp_print_list Wellformed.pp_error)
               errs)
  in
  match session_result with
  | Error msg -> error msg
  | Ok session -> (
      match
        reorder_gate ~lateness:(Session.lateness session) ~strict_reorder ~out
          (fun () -> Session.reorder_certificate session)
      with
      | Error msg -> error msg
      | Ok () -> (
      let srv_obs = make_server_obs metrics in
      (* Always-on verdict provenance: tap-level capture is one bounded
         ring push per alphabet event, and pays for itself the first
         time a Fail needs explaining. *)
      let prov = Provenance.create (Hub.tap (Session.hub session)) suite in
      let pattern_of name =
        List.find_map
          (fun (e : Suite.entry) ->
            if String.equal e.label name then Some e.pattern else None)
          suite
      in
      (* Server-track flight-recorder categories: the admission span
         around each input chunk and the checkpoint-write span. *)
      let trc =
        if Tr.is_live trace then
          Some
            ( Tr.intern trace ~track:"ingest" "admit",
              Tr.intern trace ~track:"ingest" "checkpoint" )
        else None
      in
      let skip = Session.position session in
      Session.on_violation session (fun ~name v ->
          Provenance.note_violation prov ~label:name v;
          emit_record out (violation_record ~name v));
      let offered = ref 0 in
      let save_checkpoint () =
        match checkpoint with
        | None -> Ok false
        | Some path -> (
            (match trc with
            | Some (_, ckpt) -> Tr.emit trace ckpt Tr.Span_begin 0
            | None -> ());
            match Checkpoint.save ~path session with
            | Ok bytes ->
                (match trc with
                | Some (_, ckpt) -> Tr.emit trace ckpt Tr.Span_end bytes
                | None -> ());
                (match srv_obs with Some o -> Obs.incr o.ckpt | None -> ());
                emit_record out
                  (Json.Obj
                     [
                       ("type", Json.String "checkpoint");
                       ("path", Json.String path);
                       ("events", Json.Int (Session.position session));
                       ("bytes", Json.Int bytes);
                     ]);
                Ok true
            | Error _ as err ->
                (match trc with
                | Some (_, ckpt) -> Tr.emit trace ckpt Tr.Span_end 0
                | None -> ());
                err)
      in
      let stats_record () =
        let s = Session.stats session in
        let r = Reorder.stats (Session.reorder session) in
        Json.Obj
          [
            ("type", Json.String "stats");
            ("events", Json.Int s.accepted);
            ("delivered", Json.Int s.delivered);
            ("reordered", Json.Int s.reordered);
            ("dropped_late", Json.Int s.dropped_late);
            ("forced", Json.Int s.forced);
            ("occupancy", Json.Int r.Reorder.occupancy);
            ("watermark", Json.Int r.Reorder.watermark);
          ]
      in
      let push e =
        incr offered;
        (match srv_obs with Some o -> Obs.incr o.records | None -> ());
        if !offered > skip then begin
          Session.offer_force session e;
          let pos = Session.position session in
          if checkpoint_every > 0 && pos mod checkpoint_every = 0 then
            (match save_checkpoint () with
            | Ok _ -> ()
            | Error msg -> raise (Input_error msg));
          if stats_interval > 0 && pos mod stats_interval = 0 then
            emit_record out (stats_record ())
        end
      in
      match with_signals @@ fun () ->
        with_http ~out ~metrics_addr @@ fun http ->
        let fd, cleanup = open_input input in
        Fun.protect ~finally:(fun () -> Option.iter (fun f -> f ()) cleanup)
        @@ fun () ->
        (match srv_obs with Some o -> Obs.set o.sessions 1 | None -> ());
        emit_record out
          (Json.Obj
             [
               ("type", Json.String "start");
               ("properties", Json.Int (List.length suite));
               ("resumed", Json.Bool resuming);
               ("skip", Json.Int skip);
             ]);
        let state = ref (Sniffing (Buffer.create 8)) in
        let consume chunk =
          (match srv_obs with
          | Some o -> Obs.add o.bytes_in (String.length chunk)
          | None -> ());
          match trc with
          | None -> feed_chunk state chunk ~push
          | Some (admit, _) ->
              Tr.emit trace admit Tr.Span_begin 0;
              feed_chunk state chunk ~push;
              Tr.emit trace admit Tr.Span_end (String.length chunk)
        in
        match stream_loop ~fd ~metrics ~consume http with
        | `Interrupted -> `Interrupted
        | `Eof ->
            finish_input state ~push;
            let report = Session.finalize ?final_time session in
            let ft = Session.now session in
            List.iter2
              (fun (name, verdict) (_, rendered) ->
                let passed = Backend.passed verdict in
                (match srv_obs with
                | Some o -> Obs.incr (if passed then o.pass else o.fail)
                | None -> ());
                emit_record out
                  (Json.Obj
                     ([
                        ("type", Json.String "verdict");
                        ("property", Json.String name);
                        ("passed", Json.Bool passed);
                        ("verdict", Json.String rendered);
                      ]
                     @ provenance_field ?backend ~prov ~final_time:ft
                         ~pattern_of name passed)))
              (Report.summary report)
              (Report.summary_strings report);
            let stats = Session.stats session in
            let snap = Reorder.stats (Session.reorder session) in
            let passed = Report.all_passed report in
            (match srv_obs with Some o -> Obs.set o.sessions 0 | None -> ());
            emit_record out
              (Json.Obj
                 [
                   ("type", Json.String "summary");
                   ("passed", Json.Bool passed);
                   ("events", Json.Int stats.accepted);
                   ("delivered", Json.Int stats.delivered);
                   ("reordered", Json.Int stats.reordered);
                   ("dropped_late", Json.Int stats.dropped_late);
                   ("forced", Json.Int stats.forced);
                   ("occupancy", Json.Int snap.Reorder.occupancy);
                   ("watermark", Json.Int snap.Reorder.watermark);
                   ("max_seen", Json.Int snap.Reorder.max_seen);
                 ]);
            write_artifacts ~out ~metrics ~trace ~trace_out ~profile_out
              ~checkers:(Provenance.seen prov);
            linger ~metrics http;
            `Done (if passed then 0 else 1)
      with
      | exception Input_error msg -> error msg
      | exception Unix.Unix_error (e, fn, arg) ->
          error
            (Printf.sprintf "%s%s: %s" fn
               (if arg = "" then "" else " " ^ arg)
               (Unix.error_message e))
      | `Interrupted -> (
          match save_checkpoint () with
          | Error msg -> error msg
          | Ok _ ->
              emit_record out
                (Json.Obj
                   [
                     ("type", Json.String "interrupted");
                     ("events", Json.Int (Session.position session));
                   ]);
              write_artifacts ~out ~metrics ~trace ~trace_out ~profile_out
                ~checkers:(Provenance.seen prov);
              0)
      | `Done code -> code))

(* ---- speculative hosting (--ooo) ---------------------------------------

   Same wire protocol as the buffered mode — start, violations,
   verdicts, summary, the same exit codes — but events flow through
   {!Loseq_ooo.Engine} instead of a reorder buffer: applied the moment
   they arrive, repaired by rollback when a late one lands.  The extra
   records are the speculative markers: violation records carry
   ["speculative"], [retracted] records withdraw them, and [settled]
   records mark verdicts the watermark has made definitive.  After end
   of stream the settled verdict records are byte-identical to the
   buffered mode's. *)

module Engine = Loseq_ooo.Engine

let serve_ooo ~metrics ~metrics_addr ~stats_interval ?backend ?suite_backend
    ~lateness ~strict_reorder ?final_time ~trace ~trace_out ~profile_out ~out
    ~input suite =
  let error msg = error_record out msg in
  let rendered v = Format.asprintf "%a" Backend.pp_verdict v in
  let srv_obs = make_server_obs metrics in
  (* The speculative engine routes no tap, so the provenance recorder
     is detached and fed from the arrival stream; retractions unfreeze
     the ring again. *)
  let prov = Provenance.create_detached suite in
  let notice = function
    | Engine.Violation { label; violation; settled; _ } ->
        Provenance.note_violation prov ~label violation;
        emit_record out
          (Json.Obj
             (violation_fields ~name:label violation
             @ [ ("speculative", Json.Bool (not settled)) ]))
    | Engine.Retracted { label; _ } ->
        Provenance.clear_violation prov ~label;
        emit_record out
          (Json.Obj
             [
               ("type", Json.String "retracted");
               ("property", Json.String label);
             ])
    | Engine.Settled { label; verdict; _ } ->
        emit_record out
          (Json.Obj
             [
               ("type", Json.String "settled");
               ("property", Json.String label);
               ("passed", Json.Bool (Backend.passed verdict));
               ("verdict", Json.String (rendered verdict));
             ])
  in
  let entries =
    List.map (fun (e : Suite.entry) -> (e.label, e.pattern)) suite
  in
  let engine_result =
    match
      Engine.create
        ?metrics:(if Obs.is_live metrics then Some metrics else None)
        ~trace ?backend ?suite_backend ~notice ~lateness entries
    with
    | e -> Ok e
    | exception Wellformed.Ill_formed (p, errs) ->
        Error
          (Format.asprintf "ill-formed pattern %a:@ %a" Pattern.pp p
             (Format.pp_print_list Wellformed.pp_error)
             errs)
    | exception Invalid_argument msg -> Error msg
  in
  match engine_result with
  | Error msg -> error msg
  | Ok engine -> (
      match
        reorder_gate ~lateness ~strict_reorder ~out (fun () ->
            Engine.certificate engine)
      with
      | Error msg -> error msg
      | Ok () -> (
          let offered = ref 0 in
          let stats_record () =
            let s = Engine.stats engine in
            Json.Obj
              [
                ("type", Json.String "stats");
                ("events", Json.Int !offered);
                ("applied", Json.Int s.Engine.applied);
                ("late", Json.Int s.Engine.late);
                ("commute_hits", Json.Int s.Engine.commute_hits);
                ("rollbacks", Json.Int s.Engine.rollbacks);
                ("replayed", Json.Int s.Engine.replayed);
                ("dropped_late", Json.Int s.Engine.dropped_late);
                ("journal_depth", Json.Int (Engine.journal_depth engine));
                ("watermark", Json.Int (Engine.watermark engine));
                ("settled", Json.Int s.Engine.settled_events);
              ]
          in
          let push e =
            incr offered;
            (match srv_obs with Some o -> Obs.incr o.records | None -> ());
            (* Ring first, offer second: a violation the offer raises
               synchronously must find its deciding event captured. *)
            Provenance.record prov ~time:e.Trace.time e.Trace.name;
            ignore (Engine.offer engine e);
            if stats_interval > 0 && !offered mod stats_interval = 0 then
              emit_record out (stats_record ())
          in
          let trc =
            if Tr.is_live trace then
              Some (Tr.intern trace ~track:"ingest" "admit")
            else None
          in
          match
            with_signals @@ fun () ->
            with_http ~out ~metrics_addr @@ fun http ->
            let fd, cleanup = open_input input in
            Fun.protect ~finally:(fun () -> Option.iter (fun f -> f ()) cleanup)
            @@ fun () ->
            (match srv_obs with Some o -> Obs.set o.sessions 1 | None -> ());
            emit_record out
              (Json.Obj
                 [
                   ("type", Json.String "start");
                   ("properties", Json.Int (List.length suite));
                   ("mode", Json.String "speculative");
                   ("lateness", Json.Int lateness);
                 ]);
            let state = ref (Sniffing (Buffer.create 8)) in
            let consume chunk =
              (match srv_obs with
              | Some o -> Obs.add o.bytes_in (String.length chunk)
              | None -> ());
              match trc with
              | None -> feed_chunk state chunk ~push
              | Some admit ->
                  Tr.emit trace admit Tr.Span_begin 0;
                  feed_chunk state chunk ~push;
                  Tr.emit trace admit Tr.Span_end (String.length chunk)
            in
            match stream_loop ~fd ~metrics ~consume http with
            | `Interrupted -> `Interrupted
            | `Eof ->
                finish_input state ~push;
                Engine.finalize ?final_time engine;
                let report = Engine.report engine in
                let ft =
                  max 0
                    (max (Engine.max_seen engine)
                       (Option.value final_time ~default:0))
                in
                let pattern_of name = List.assoc_opt name entries in
                List.iter2
                  (fun (name, verdict) rendered_v ->
                    let passed = Backend.passed verdict in
                    (match srv_obs with
                    | Some o -> Obs.incr (if passed then o.pass else o.fail)
                    | None -> ());
                    emit_record out
                      (Json.Obj
                         ([
                            ("type", Json.String "verdict");
                            ("property", Json.String name);
                            ("passed", Json.Bool passed);
                            ("verdict", Json.String rendered_v);
                          ]
                         @ provenance_field ?backend ~prov ~final_time:ft
                             ~pattern_of name passed)))
                  report
                  (Engine.report_strings engine);
                let s = Engine.stats engine in
                let passed =
                  List.for_all (fun (_, v) -> Backend.passed v) report
                in
                (match srv_obs with Some o -> Obs.set o.sessions 0 | None -> ());
                emit_record out
                  (Json.Obj
                     [
                       ("type", Json.String "summary");
                       ("passed", Json.Bool passed);
                       ("events", Json.Int !offered);
                       ("applied", Json.Int s.Engine.applied);
                       ("late", Json.Int s.Engine.late);
                       ("commute_hits", Json.Int s.Engine.commute_hits);
                       ("rollbacks", Json.Int s.Engine.rollbacks);
                       ("replayed", Json.Int s.Engine.replayed);
                       ("dropped_late", Json.Int s.Engine.dropped_late);
                       ("snapshots", Json.Int s.Engine.snapshots);
                       ("max_journal", Json.Int s.Engine.max_journal);
                       ("watermark", Json.Int (Engine.watermark engine));
                     ]);
                write_artifacts ~out ~metrics ~trace ~trace_out ~profile_out
                  ~checkers:(Provenance.seen prov);
                linger ~metrics http;
                `Done (if passed then 0 else 1)
          with
          | exception Input_error msg -> error msg
          | exception Unix.Unix_error (e, fn, arg) ->
              error
                (Printf.sprintf "%s%s: %s" fn
                   (if arg = "" then "" else " " ^ arg)
                   (Unix.error_message e))
          | `Interrupted ->
              emit_record out
                (Json.Obj
                   [
                     ("type", Json.String "interrupted");
                     ("events", Json.Int !offered);
                   ]);
              write_artifacts ~out ~metrics ~trace ~trace_out ~profile_out
                ~checkers:(Provenance.seen prov);
              0
          | `Done code -> code))

(* ---- mode dispatch ------------------------------------------------------ *)

let serve ?metrics ?metrics_addr ?(stats_interval = 0) ?backend ?suite_backend
    ?(lateness = 0) ?(window = 1024) ?checkpoint ?(checkpoint_every = 0)
    ?(resume = false) ?(strict_reorder = false) ?(ooo = false) ?final_time
    ?trace_out ?profile_out ?latency_sample_rate ?(out = stdout) ~input suite =
  let metrics =
    default_metrics ~metrics ~metrics_addr ~stats_interval ~profile_out
  in
  (* The flight recorder exists exactly when someone will read it: the
     noop ring keeps every instrumented hot path on its one-branch
     fast path. *)
  let trace = if trace_out <> None then Tr.create () else Tr.noop in
  if ooo then
    if checkpoint <> None || resume then
      error_record out
        "--ooo does not support --checkpoint/--resume: speculative state \
         (journal, snapshots, unsettled verdicts) is not checkpointable"
    else
      serve_ooo ~metrics ~metrics_addr ~stats_interval ?backend ?suite_backend
        ~lateness ~strict_reorder ?final_time ~trace ~trace_out ~profile_out
        ~out ~input suite
  else
    serve_buffered ~metrics ~metrics_addr ~stats_interval ?backend
      ?suite_backend ~lateness ~window ?checkpoint ~checkpoint_every ~resume
      ~strict_reorder ?final_time ~trace ~trace_out ~profile_out
      ?latency_sample_rate ~out ~input suite

(* ---- the producer side ------------------------------------------------- *)

let feed ?(timeout = 5.0) ~path ic =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec connect () =
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> Ok ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [] [] [] 0.05);
        connect ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))
  in
  match connect () with
  | Error _ as err ->
      Unix.close sock;
      err
  | Ok () -> (
      let buf = Bytes.create 65536 in
      let rec copy total =
        match input ic buf 0 (Bytes.length buf) with
        | 0 -> Ok total
        | n ->
            let rec write off remaining =
              if remaining > 0 then begin
                let w = Unix.write sock buf off remaining in
                write (off + w) (remaining - w)
              end
            in
            write 0 n;
            copy (total + n)
      in
      match copy 0 with
      | result ->
          Unix.close sock;
          result
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close sock;
          Error (Printf.sprintf "write %s: %s" path (Unix.error_message e)))
