(** Streaming monitor sessions: a property suite hosted live.

    The batch entry points ([loseq check]/[suite]) need the whole trace
    in memory before a monitor steps; a session consumes events as they
    are produced.  Internally it is the thinnest possible shell around
    the machinery that already exists: a private {!Loseq_sim.Kernel}
    advanced to each event's timestamp (so the hub's merged deadline
    wheel fires deadline-only violations exactly as in a simulation), a
    {!Loseq_verif.Tap} with recording off, and a {!Loseq_verif.Hub}
    hosting one checker per suite entry — all stream mechanics live
    here, none in the monitors (the Backes et al. observer-hosting
    discipline).

    Between the caller and the hub sits a {!Reorder} buffer: events up
    to [lateness] ticks out of order are re-sorted; later ones are
    counted as {!stats}[.dropped_late] and discarded.  The buffer is
    bounded by [window]: when it fills, {!offer} reports [`Blocked]
    without consuming the event, and the caller chooses — wait for the
    watermark to advance (it cannot, without new events), or trade
    reorder margin for progress with {!force_drain}.  {!offer_force}
    packages the usual policy. *)

open Loseq_core
open Loseq_verif

type t

val create :
  ?metrics:Loseq_obs.Metrics.t ->
  ?trace:Loseq_obs.Trace.t ->
  ?backend:Backend.factory ->
  ?suite_backend:Backend.suite_factory ->
  ?latency_sample_rate:int ->
  ?lateness:int ->
  ?window:int ->
  Suite.t ->
  t
(** [backend] defaults to {!Backend.compiled}; [suite_backend]
    (e.g. {!Backend.flat_views}) overrides it with a suite-level
    compilation whose checkers share one engine — both support
    checkpointing; [lateness] defaults to [0] (strictly chronological
    input expected); [window] to [1024].  A live [metrics] sink (default
    noop) is threaded to the {!Loseq_verif.Hub} and the {!Reorder}
    buffer, so one session exports the full hub + reorder instrument
    set; a live [trace] flight recorder (default noop) likewise — hub
    dispatch spans and deadline instants, reorder admission instants,
    plus a [stall] span on the ["ingest"] track around every
    backpressure force-drain.  [latency_sample_rate] tunes the hub's
    dispatch-latency sampling (default 64).  Raises
    {!Loseq_core.Wellformed.Ill_formed} and whatever the factory
    raises. *)

val offer : t -> Trace.event -> [ `Accepted | `Blocked ]
(** Feed one event.  [`Accepted]: consumed — delivered now, buffered,
    or counted dropped-late.  [`Blocked]: {e not} consumed, the pending
    window is full. *)

val force_drain : t -> bool
(** Deliver the oldest pending event even though its watermark has not
    passed (counted in {!stats}[.forced]); [false] if nothing was
    pending. *)

val offer_force : t -> Trace.event -> unit
(** [offer], force-draining until accepted — the standard server
    policy under backpressure. *)

val flush : t -> unit
(** Deliver everything pending, in timestamp order. *)

val finalize : ?final_time:int -> t -> Report.t
(** {!flush}, advance time to [final_time] (default: the last
    timestamp seen — firing any deadline that elapses on the way), and
    finalize every checker.  The session can keep receiving events
    afterwards, but verdicts are already decided. *)

(** {1 Observation} *)

type stats = {
  accepted : int;  (** events consumed by {!offer} *)
  delivered : int;  (** events released into the hub, in order *)
  reordered : int;  (** out-of-order arrivals absorbed *)
  dropped_late : int;  (** arrivals beyond the lateness bound *)
  forced : int;  (** backpressure force-drains *)
}

val stats : t -> stats
val position : t -> int
(** [= (stats t).accepted] — the stream position a checkpoint records
    and a resumed producer skips to. *)

val on_violation : t -> (name:string -> Diag.violation -> unit) -> unit
(** Incremental reporting: called the moment any hosted checker first
    violates, with the suite entry name. *)

val report : t -> Report.t
(** The current verdicts without finalizing. *)

val all_passed : t -> bool

val reorder_certificate :
  ?budget:int -> t -> Loseq_analysis.Robust.certificate
(** The hosted suite's lateness-robustness certificate
    ({!Loseq_analysis.Robust}): the maximal reorder window that
    provably cannot flip any verdict.  [budget] bounds the per-pattern
    state exploration (default [20000] — deliberately below the
    analyzer's default so that consulting the certificate at session
    startup stays cheap; an undecided entry certifies [Finite 0]
    conservatively). *)

val reorder_robust : ?budget:int -> t -> bool
(** The session's configured [lateness] is within the certified bound:
    every reordering the {!Reorder} stage can silently absorb is
    verdict-invariant. *)

(** {1 Checkpoint plumbing} (used by {!Checkpoint}) *)

val suite : t -> Suite.t
val hub : t -> Hub.t
val kernel : t -> Loseq_sim.Kernel.t
val reorder : t -> Reorder.t
val lateness : t -> int
val window : t -> int
val now : t -> int

val restore_counters :
  t -> accepted:int -> delivered:int -> forced:int -> unit
