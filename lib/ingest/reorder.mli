(** Bounded out-of-order absorption, watermark-based.

    Real event sources deliver slightly out-of-order streams (merged
    per-component logs, network transport, racing tracepoints); a
    runtime checker must absorb that at the boundary, because the
    monitors themselves require chronological input.  This buffer
    implements the classic watermark contract: an event whose timestamp
    is at most [lateness] ticks behind the furthest timestamp seen so
    far is held and re-sorted; anything later than that is counted in
    {!dropped_late} and discarded.  The {e watermark} — the instant the
    stream can no longer contradict — is [max_seen - lateness]; events
    at or below it are safe to release in timestamp order.

    Releases are stable: events with equal timestamps come out in
    arrival order.  Released times never decrease, even across
    {!pop_oldest} force-drains (the release floor rises with every
    release, and admission re-checks against it), so downstream
    consumers always see a chronological stream. *)

open Loseq_core

type t

val create :
  ?metrics:Loseq_obs.Metrics.t ->
  ?trace:Loseq_obs.Trace.t ->
  ?capacity:int ->
  lateness:int ->
  unit ->
  t
(** [capacity] bounds the number of buffered events (the backpressure
    window; default [1024]); [lateness] is the absorption bound K in
    ticks.  Raises [Invalid_argument] if either is negative or
    [capacity] is zero.  A live [metrics] sink (default noop) maintains
    [loseq_reorder_occupancy], [loseq_reorder_watermark_lag],
    [loseq_reorder_dropped_late_total] and [loseq_reorder_full_total];
    a live [trace] ring records [dropped_late] / [window_full] instants
    on the ["ingest"] track (argument: the event's timestamp). *)

val lateness : t -> int
val capacity : t -> int

type push_result = [ `Queued | `Dropped_late | `Full ]

val push : t -> Trace.event -> push_result
(** [`Queued]: buffered (and the watermark advanced — call {!drain}).
    [`Dropped_late]: consumed but discarded, counted in
    {!dropped_late}.  [`Full]: {e not} consumed; the buffer is at
    capacity — release something first. *)

val drain : t -> emit:(Trace.event -> unit) -> int
(** Release every ripe event (timestamp ≤ watermark) in order; returns
    how many were released. *)

val pop_oldest : t -> Trace.event option
(** Force-release the earliest buffered event even if it is not ripe —
    the backpressure relief valve.  Raises the release floor, so a
    later event below it will be dropped instead of regressing time. *)

val flush : t -> emit:(Trace.event -> unit) -> int
(** Release everything (end of stream). *)

val length : t -> int
val is_empty : t -> bool

val max_seen : t -> int
(** Furthest timestamp observed, [-1] before the first event. *)

val released : t -> int
(** Last released timestamp, [-1] before the first release. *)

val floor : t -> int
(** Smallest admissible timestamp: [max (max_seen - lateness)
    (last released time)].  Events strictly below it are dropped. *)

val dropped_late : t -> int
val reordered : t -> int
(** Events that arrived with a timestamp below [max_seen] but were
    absorbed — how disordered the stream actually was. *)

type snapshot = {
  occupancy : int;  (** events buffered awaiting their watermark *)
  dropped_late : int;  (** = {!dropped_late} *)
  watermark : int;
      (** [max_seen - lateness] — the instant the stream can no longer
          contradict; [-1] before the first event *)
  max_seen : int;  (** = {!max_seen} *)
}

val stats : t -> snapshot
(** One consistent snapshot of the buffer's observable state — what the
    metrics layer exports continuously and [serve]'s shutdown summary
    reports once. *)

val note_delivered : t -> int -> unit
(** Record that an event at [time] bypassed the buffer and was
    delivered directly (a host's in-order fast path): advances
    [max_seen] and the release floor exactly as a push-then-release
    would have.  Only meaningful when the buffer is empty and [time]
    is at or above {!floor}. *)

val pending : t -> Trace.event list
(** Buffered events in release order (for checkpointing). *)

val restore :
  t ->
  max_seen:int ->
  released:int ->
  dropped_late:int ->
  reordered:int ->
  Trace.event list ->
  (unit, string) result
(** Overwrite a fresh buffer's state from a checkpoint.  Fails if the
    buffer is not empty/unused or the pending list exceeds capacity. *)
