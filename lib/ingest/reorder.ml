open Loseq_core

(* Binary min-heap on (time, arrival sequence): the sequence number
   makes releases stable among equal timestamps. *)

type item = { time : int; seq : int; event : Trace.event }

module Obs = Loseq_obs.Metrics
module Tr = Loseq_obs.Trace

(* Live-sink instruments; [None] on the default noop path, so an
   uninstrumented buffer pays one branch per mutation. *)
type obs = {
  occupancy : Obs.gauge;
  lag : Obs.gauge;
  dropped : Obs.counter;
  full : Obs.counter;
}

(* Flight-recorder categories on the ingest track: one instant per
   admission anomaly, stamped with the event's simulation time as the
   argument. *)
type trc = {
  tr : Tr.t;
  tr_dropped : Tr.cat;
  tr_full : Tr.cat;
}

type t = {
  lateness : int;
  cap : int;
  mutable heap : item array;
  mutable len : int;
  mutable seq : int;
  mutable max_seen : int;  (* -1 before the first event *)
  mutable released : int;  (* last released time, -1 before the first *)
  mutable dropped_late : int;
  mutable reordered : int;
  obs : obs option;
  trc : trc option;
}

let create ?(metrics = Obs.noop) ?(trace = Tr.noop) ?(capacity = 1024)
    ~lateness () =
  if lateness < 0 then invalid_arg "Reorder.create: negative lateness";
  if capacity <= 0 then invalid_arg "Reorder.create: capacity must be positive";
  let obs =
    if Obs.is_live metrics then
      Some
        {
          occupancy =
            Obs.gauge metrics ~name:"loseq_reorder_occupancy"
              ~help:"Events buffered awaiting their watermark" ();
          lag =
            Obs.gauge metrics ~name:"loseq_reorder_watermark_lag"
              ~help:"Ticks between the furthest seen and the last \
                     released timestamp" ();
          dropped =
            Obs.counter metrics ~name:"loseq_reorder_dropped_late_total"
              ~help:"Events beyond the lateness bound, discarded" ();
          full =
            Obs.counter metrics ~name:"loseq_reorder_full_total"
              ~help:"Pushes refused because the window was full \
                     (backpressure hits)" ();
        }
    else None
  in
  let trc =
    if Tr.is_live trace then
      Some
        {
          tr = trace;
          tr_dropped = Tr.intern trace ~track:"ingest" "dropped_late";
          tr_full = Tr.intern trace ~track:"ingest" "window_full";
        }
    else None
  in
  {
    lateness;
    cap = capacity;
    heap = [||];
    len = 0;
    seq = 0;
    max_seen = -1;
    released = -1;
    dropped_late = 0;
    reordered = 0;
    obs;
    trc;
  }

(* Refresh the gauges after any mutation of len/max_seen/released. *)
let sync_obs t =
  match t.obs with
  | None -> ()
  | Some o ->
      Obs.set o.occupancy t.len;
      Obs.set o.lag
        (if t.max_seen < 0 then 0 else max 0 (t.max_seen - max t.released 0))

let lateness t = t.lateness
let capacity t = t.cap
let length t = t.len
let is_empty t = t.len = 0
let max_seen t = t.max_seen
let dropped_late t = t.dropped_late
let reordered t = t.reordered

let released t = t.released
let floor t = max (t.max_seen - t.lateness) t.released

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && less t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let heap_push t item =
  if t.len = Array.length t.heap then begin
    let grown = Array.make (max 8 (2 * t.len)) item in
    Array.blit t.heap 0 grown 0 t.len;
    t.heap <- grown
  end;
  t.heap.(t.len) <- item;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let heap_pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    sift_down t 0;
    Some top
  end

type push_result = [ `Queued | `Dropped_late | `Full ]

let push t (e : Trace.event) : push_result =
  if e.time < floor t then begin
    t.dropped_late <- t.dropped_late + 1;
    (match t.obs with Some o -> Obs.incr o.dropped | None -> ());
    (match t.trc with
    | Some c -> Tr.emit c.tr c.tr_dropped Tr.Instant e.time
    | None -> ());
    `Dropped_late
  end
  else if t.len >= t.cap then begin
    (match t.obs with Some o -> Obs.incr o.full | None -> ());
    (match t.trc with
    | Some c -> Tr.emit c.tr c.tr_full Tr.Instant e.time
    | None -> ());
    `Full
  end
  else begin
    if t.max_seen >= 0 && e.time < t.max_seen then
      t.reordered <- t.reordered + 1;
    if e.time > t.max_seen then t.max_seen <- e.time;
    t.seq <- t.seq + 1;
    heap_push t { time = e.time; seq = t.seq; event = e };
    sync_obs t;
    `Queued
  end

let release t item =
  t.released <- max t.released item.time;
  sync_obs t;
  item.event

let drain t ~emit =
  let wm = t.max_seen - t.lateness in
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ && t.len > 0 do
    if t.heap.(0).time <= wm then begin
      match heap_pop t with
      | Some item ->
          emit (release t item);
          incr count
      | None -> ()
    end
    else continue_ := false
  done;
  !count

let pop_oldest t =
  match heap_pop t with
  | Some item -> Some (release t item)
  | None -> None

let flush t ~emit =
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match heap_pop t with
    | Some item ->
        emit (release t item);
        incr count
    | None -> continue_ := false
  done;
  !count

let note_delivered t time =
  if time > t.max_seen then t.max_seen <- time;
  t.released <- max t.released time;
  sync_obs t

type snapshot = {
  occupancy : int;
  dropped_late : int;
  watermark : int;
  max_seen : int;
}

let stats (t : t) : snapshot =
  {
    occupancy = t.len;
    dropped_late = t.dropped_late;
    watermark = (if t.max_seen < 0 then -1 else t.max_seen - t.lateness);
    max_seen = t.max_seen;
  }

let pending t =
  let items = Array.to_list (Array.sub t.heap 0 t.len) in
  List.map
    (fun i -> i.event)
    (List.sort
       (fun a b -> if less a b then -1 else if less b a then 1 else 0)
       items)

let restore t ~max_seen ~released ~dropped_late ~reordered events =
  if t.len > 0 || t.seq > 0 || t.max_seen >= 0 then
    Error "Reorder.restore: buffer already used"
  else if List.length events > t.cap then
    Error "Reorder.restore: pending events exceed capacity"
  else begin
    t.max_seen <- max_seen;
    t.released <- released;
    t.dropped_late <- dropped_late;
    t.reordered <- reordered;
    List.iter
      (fun (e : Trace.event) ->
        t.seq <- t.seq + 1;
        heap_push t { time = e.time; seq = t.seq; event = e })
      events;
    sync_obs t;
    Ok ()
  end
