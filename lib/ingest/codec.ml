open Loseq_core

let magic = "LSQB\x01"
let tag_define = 0x01
let tag_event = 0x02
let tag_end = 0x03

(* Fail fast on garbage rather than attempting a multi-megabyte
   "name". *)
let max_name_len = 4096

let looks_binary s =
  let n = min (String.length s) (String.length magic) in
  String.sub s 0 n = String.sub magic 0 n

let sniff s =
  if String.length s > 0 && looks_binary s then `Binary
  else
    let lines = String.split_on_char '\n' s in
    let rec first_payload = function
      | [] -> `Tokens
      | line :: rest ->
          let t = String.trim line in
          if t = "" || t.[0] = '#' then first_payload rest
          else if String.contains t ',' then `Csv
          else `Tokens
    in
    first_payload lines

(* ---- varints (LEB128, unsigned) --------------------------------------- *)

let add_varint buf n =
  let n = ref n in
  let continue_ = ref true in
  while !continue_ do
    let low = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue_ := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

(* ---- streaming encoder ------------------------------------------------- *)

module Encoder = struct
  type t = {
    write : string -> unit;
    ids : (Name.t, int) Hashtbl.t;
    validator : Trace_io.Validator.t;
    buf : Buffer.t;
    mutable prev_time : int;
    mutable events : int;
    mutable finished : bool;
  }

  let create write =
    write magic;
    {
      write;
      ids = Hashtbl.create 16;
      validator = Trace_io.Validator.create ();
      buf = Buffer.create 32;
      prev_time = 0;
      events = 0;
      finished = false;
    }

  let events t = t.events

  let flush_record t =
    t.write (Buffer.contents t.buf);
    Buffer.clear t.buf

  let intern t name =
    match Hashtbl.find_opt t.ids name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length t.ids in
        Hashtbl.replace t.ids name id;
        let s = Name.to_string name in
        Buffer.add_char t.buf (Char.chr tag_define);
        add_varint t.buf (String.length s);
        Buffer.add_string t.buf s;
        flush_record t;
        id

  let event t (e : Trace.event) =
    if t.finished then Error "Codec.Encoder: stream already finished"
    else if Trace_io.Validator.accept t.validator ~time:e.time then begin
      let id = intern t e.name in
      Buffer.add_char t.buf (Char.chr tag_event);
      add_varint t.buf id;
      add_varint t.buf (e.time - t.prev_time);
      flush_record t;
      t.prev_time <- e.time;
      t.events <- t.events + 1;
      Ok ()
    end
    else
      let pos = Printf.sprintf "event %d" (t.events + 1) in
      Trace_io.Validator.check t.validator ~pos ~time:e.time

  let finish t =
    if not t.finished then begin
      t.finished <- true;
      Buffer.add_char t.buf (Char.chr tag_end);
      add_varint t.buf t.events;
      flush_record t
    end
end

let encode trace =
  let buf = Buffer.create 1024 in
  let enc = Encoder.create (Buffer.add_string buf) in
  let rec feed = function
    | [] ->
        Encoder.finish enc;
        Ok (Buffer.contents buf)
    | e :: rest -> (
        match Encoder.event enc e with
        | Ok () -> feed rest
        | Error _ as err -> err)
  in
  feed trace

let encode_exn trace =
  match encode trace with Ok s -> s | Error msg -> invalid_arg msg

(* ---- streaming decoder ------------------------------------------------- *)

module Decoder = struct
  type state = Header | Records | Ended | Failed of string

  type t = {
    mutable state : state;
    mutable pending : string;  (* buffered partial record *)
    mutable names : Name.t array;
    mutable defined : int;
    validator : Trace_io.Validator.t;
    mutable prev_time : int;
    mutable events : int;
    mutable records : int;
    mutable consumed : int;  (* absolute offset of [pending]'s start *)
  }

  let create () =
    {
      state = Header;
      pending = "";
      names = [||];
      defined = 0;
      validator = Trace_io.Validator.create ();
      prev_time = 0;
      events = 0;
      records = 0;
      consumed = 0;
    }

  let events t = t.events
  let bytes_consumed t = t.consumed

  let fail t msg =
    t.state <- Failed msg;
    Error msg

  let fail_at t msg =
    fail t
      (Printf.sprintf "record %d (byte %d): %s" (t.records + 1) t.consumed msg)

  let define t name =
    if t.defined = Array.length t.names then begin
      let grown = Array.make (max 8 (2 * t.defined)) name in
      Array.blit t.names 0 grown 0 t.defined;
      t.names <- grown
    end;
    t.names.(t.defined) <- name;
    t.defined <- t.defined + 1

  exception Overlong

  (* Varint at [pos]; [None] when [s] ends mid-varint.  Raises
     {!Overlong} past 63 bits (a malformed stream must not spin the
     reader or wrap the accumulator). *)
  let read_varint s pos limit =
    let rec loop pos shift acc =
      if pos >= limit then None
      else if shift > 63 then raise Overlong
      else
        let b = Char.code s.[pos] in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then Some (acc, pos + 1)
        else loop (pos + 1) (shift + 7) acc
    in
    loop pos 0 0

  (* One record from [s] starting at [pos]; [`Incomplete] leaves the
     suffix buffered for the next feed. *)
  let rec parse_record t s pos limit emit =
    try parse_record_exn t s pos limit emit
    with Overlong -> `Error "overlong varint (more than 63 bits)"

  and parse_record_exn t s pos limit emit =
    let tag = Char.code s.[pos] in
    if tag = tag_define then
      match read_varint s (pos + 1) limit with
      | None -> `Incomplete
      | Some (len, p) ->
          if len > max_name_len then
            `Error (Printf.sprintf "name of %d bytes exceeds limit" len)
          else if p + len > limit then `Incomplete
          else (
            match Name.v (String.sub s p len) with
            | name ->
                define t name;
                `Record (p + len)
            | exception Invalid_argument msg -> `Error msg)
    else if tag = tag_event then
      match read_varint s (pos + 1) limit with
      | None -> `Incomplete
      | Some (id, p) -> (
          match read_varint s p limit with
          | None -> `Incomplete
          | Some (delta, p) ->
              if id >= t.defined then
                `Error
                  (Printf.sprintf "event references undefined name id %d" id)
              else
                let time = t.prev_time + delta in
                if Trace_io.Validator.accept t.validator ~time then begin
                  t.prev_time <- time;
                  t.events <- t.events + 1;
                  emit { Trace.name = t.names.(id); time };
                  `Record p
                end
                else
                  (* deltas are unsigned, so only a negative absolute
                     first timestamp can land here *)
                  let pos_label =
                    Printf.sprintf "record %d (byte %d)" (t.records + 1)
                      t.consumed
                  in
                  (match
                     Trace_io.Validator.check t.validator ~pos:pos_label ~time
                   with
                  | Error msg -> `Error_plain msg
                  | Ok () -> assert false (* accept and check agree *)))
    else if tag = tag_end then
      match read_varint s (pos + 1) limit with
      | None -> `Incomplete
      | Some (count, p) ->
          if count <> t.events then
            `Error
              (Printf.sprintf "end record claims %d events, decoded %d" count
                 t.events)
          else `End p
    else `Error (Printf.sprintf "unknown record tag 0x%02x" tag)

  let feed t ?(off = 0) ?len s ~emit =
    let len = match len with Some l -> l | None -> String.length s - off in
    match t.state with
    | Failed msg -> Error msg
    | _ when len = 0 -> Ok ()
    | Ended -> fail t "data after the end record"
    | Header | Records -> (
        let s =
          if t.pending = "" && off = 0 && len = String.length s then s
          else t.pending ^ String.sub s off len
        in
        t.pending <- "";
        let limit = String.length s in
        let pos = ref 0 in
        (* header *)
        let header_result =
          if t.state = Header then begin
            let m = String.length magic in
            if limit - !pos < m then
              if String.sub s !pos (limit - !pos)
                 = String.sub magic 0 (limit - !pos)
              then `Incomplete
              else `Bad
            else if String.sub s !pos m = magic then begin
              pos := !pos + m;
              t.consumed <- t.consumed + m;
              t.state <- Records;
              `Ok
            end
            else `Bad
          end
          else `Ok
        in
        match header_result with
        | `Bad -> fail t "bad magic: not a loseq binary trace"
        | `Incomplete ->
            t.pending <- String.sub s !pos (limit - !pos);
            Ok ()
        | `Ok ->
            let result = ref (Ok ()) in
            let continue_ = ref true in
            while !continue_ && !pos < limit do
              match parse_record t s !pos limit emit with
              | `Record p ->
                  t.records <- t.records + 1;
                  t.consumed <- t.consumed + (p - !pos);
                  pos := p
              | `End p ->
                  t.records <- t.records + 1;
                  t.consumed <- t.consumed + (p - !pos);
                  pos := p;
                  t.state <- Ended;
                  if !pos < limit then begin
                    result := fail t "data after the end record";
                    continue_ := false
                  end
              | `Incomplete ->
                  t.pending <- String.sub s !pos (limit - !pos);
                  continue_ := false
              | `Error msg ->
                  result := fail_at t msg;
                  continue_ := false
              | `Error_plain msg ->
                  result := fail t msg;
                  continue_ := false
            done;
            !result)

  let finish t =
    match t.state with
    | Failed msg -> Error msg
    | Header ->
        if t.pending = "" && t.consumed = 0 then
          fail t "empty input: not a loseq binary trace"
        else fail t "truncated stream: incomplete header"
    | Records when t.pending <> "" ->
        fail t
          (Printf.sprintf "truncated stream: %d byte(s) of an incomplete record"
             (String.length t.pending))
    | Records | Ended -> Ok ()
end

let decode s =
  let acc = ref [] in
  let dec = Decoder.create () in
  match Decoder.feed dec s ~emit:(fun e -> acc := e :: !acc) with
  | Error _ as err -> err
  | Ok () -> (
      match Decoder.finish dec with
      | Error _ as err -> err
      | Ok () -> Ok (List.rev !acc))

let save ~path trace =
  match encode trace with
  | Error _ as err -> err
  | Ok data -> (
      match open_out_bin path with
      | oc ->
          output_string oc data;
          close_out oc;
          Ok ()
      | exception Sys_error msg -> Error msg)

let load path =
  match open_in_bin path with
  | ic ->
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      close_in ic;
      decode data
  | exception Sys_error msg -> Error msg
