open Loseq_core
open Loseq_verif

let format_name = "loseq-checkpoint"

(* Version 1: per-checker JSON states (any persistable backend).
   Version 2: one base64 engine blob + interning table (flat suite
   engine) — resume cost no longer scales with checker count.  Both
   are written and read: the session's hosting decides which. *)
let format_version = 1
let blob_format_version = 2

(* ---- capture ----------------------------------------------------------- *)

let json_of_range (r : Pattern.range) =
  Json.Obj
    [
      ("name", Json.String (Name.to_string r.name));
      ("lo", Json.Int r.lo);
      ("hi", Json.Int r.hi);
    ]

let json_of_reason (r : Diag.reason) =
  let tag t = [ ("tag", Json.String t) ] in
  let with_range t range = Json.Obj (tag t @ [ ("range", json_of_range range) ]) in
  match r with
  | Diag.Before_name -> Json.Obj (tag "before_name")
  | After_name -> Json.Obj (tag "after_name")
  | Overflow range -> with_range "overflow" range
  | Underflow range -> with_range "underflow" range
  | Reentered range -> with_range "reentered" range
  | Missing range -> with_range "missing" range
  | Empty_fragment -> Json.Obj (tag "empty_fragment")
  | Trigger_early -> Json.Obj (tag "trigger_early")
  | Deadline_miss { started; deadline; now } ->
      Json.Obj
        (tag "deadline_miss"
        @ [
            ("started", Json.Int started);
            ("deadline", Json.Int deadline);
            ("now", Json.Int now);
          ])
  | Late_conclusion { deadline; at } ->
      Json.Obj
        (tag "late_conclusion"
        @ [ ("deadline", Json.Int deadline); ("at", Json.Int at) ])
  | Foreign name ->
      Json.Obj (tag "foreign" @ [ ("name", Json.String (Name.to_string name)) ])
  | Formula_falsified -> Json.Obj (tag "formula_falsified")

let json_of_verdict (v : Compiled.verdict) =
  match v with
  | Compiled.Running -> Json.Obj [ ("status", Json.String "running") ]
  | Satisfied -> Json.Obj [ ("status", Json.String "satisfied") ]
  | Violated { reason; time; index } ->
      Json.Obj
        [
          ("status", Json.String "violated");
          ("reason", json_of_reason reason);
          ("time", Json.Int time);
          ("index", Json.Int index);
        ]

let json_of_rec_state (s : Compiled.rec_state) =
  match s with
  | Compiled.Idle -> Json.String "idle"
  | Waiting -> Json.String "waiting"
  | Started -> Json.String "started"
  | Done -> Json.String "done"
  | Counting n -> Json.Obj [ ("counting", Json.Int n) ]

let json_of_persisted (p : Compiled.persisted) =
  Json.Obj
    [
      ( "recs",
        Json.List (Array.to_list (Array.map json_of_rec_state p.p_recs)) );
      ("active", Json.Int p.p_active);
      ("index", Json.Int p.p_index);
      ("started", Json.Int p.p_started);
      ("q_done", Json.Bool p.p_q_done);
      ("rounds", Json.Int p.p_rounds);
      ("verdict", json_of_verdict p.p_verdict);
    ]

let json_of_event (e : Trace.event) =
  Json.Obj
    [ ("name", Json.String (Name.to_string e.name)); ("time", Json.Int e.time) ]

(* All checkers hosted as views of one shared flat engine?  Then the
   whole suite's run state is one blob. *)
let shared_engine checkers =
  match checkers with
  | [] -> None
  | first :: rest -> (
      match (Checker.backend first).Backend.engine with
      | None -> None
      | Some eng ->
          if
            List.for_all
              (fun c ->
                match (Checker.backend c).Backend.engine with
                | Some e -> e == eng
                | None -> false)
              rest
          then Some eng
          else None)

let common_fields ~version session =
  let stats = Session.stats session in
  let reorder = Session.reorder session in
  [
    ("format", Json.String format_name);
    ("version", Json.Int version);
    ("suite", Json.String (Suite.to_string (Session.suite session)));
    ("lateness", Json.Int (Session.lateness session));
    ("window", Json.Int (Session.window session));
    ( "position",
      Json.Obj
        [
          ("accepted", Json.Int stats.accepted);
          ("delivered", Json.Int stats.delivered);
          ("forced", Json.Int stats.forced);
          ("now", Json.Int (Session.now session));
        ] );
    ( "reorder",
      Json.Obj
        [
          ("max_seen", Json.Int (Reorder.max_seen reorder));
          ("released", Json.Int (Reorder.released reorder));
          ("dropped_late", Json.Int (Reorder.dropped_late reorder));
          ("reordered", Json.Int (Reorder.reordered reorder));
          ( "pending",
            Json.List (List.map json_of_event (Reorder.pending reorder)) );
        ] );
  ]

let capture session =
  let checkers = Hub.checkers (Session.hub session) in
  match shared_engine checkers with
  | Some eng ->
      (* v2: the engine's packed state array, base64, plus the
         interning table that pins its layout.  [events_seen] is
         checker bookkeeping, not engine state, so it rides alongside. *)
      Json.Obj
        (common_fields ~version:blob_format_version session
        @ [
            ("engine", Json.String "flat");
            ("blob_version", Json.Int Flat.blob_version);
            ( "names",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun n -> Json.String (Name.to_string n))
                      (Flat.names eng))) );
            ("blob", Json.String (B64.encode (Flat.save_blob eng)));
            ( "checkers",
              Json.List
                (List.map
                   (fun c ->
                     Json.Obj
                       [
                         ("name", Json.String (Checker.name c));
                         ("events_seen", Json.Int (Checker.events_seen c));
                       ])
                   checkers) );
          ])
  | None ->
      let checker_states =
        List.map
          (fun c ->
            let backend = Checker.backend c in
            let persisted =
              match backend.Backend.persist with
              | Some persist -> persist ()
              | None ->
                  failwith
                    (Printf.sprintf
                       "checker %S: backend %S has no persistence capability \
                        (checkpointing requires the compiled or flat backend)"
                       (Checker.name c) backend.Backend.label)
            in
            Json.Obj
              [
                ("name", Json.String (Checker.name c));
                ("events_seen", Json.Int (Checker.events_seen c));
                ("state", json_of_persisted persisted);
              ])
          checkers
      in
      Json.Obj
        (common_fields ~version:format_version session
        @ [ ("checkers", Json.List checker_states) ])

(* ---- restore ----------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let member_exn key json =
  match Json.member key json with
  | Some v -> v
  | None -> bad "checkpoint: missing field %S" key

let int_exn key json =
  match member_exn key json with
  | Json.Int n -> n
  | _ -> bad "checkpoint: field %S is not an integer" key

let bool_exn key json =
  match member_exn key json with
  | Json.Bool b -> b
  | _ -> bad "checkpoint: field %S is not a boolean" key

let string_exn key json =
  match member_exn key json with
  | Json.String s -> s
  | _ -> bad "checkpoint: field %S is not a string" key

let list_exn key json =
  match member_exn key json with
  | Json.List l -> l
  | _ -> bad "checkpoint: field %S is not a list" key

let range_of_json json =
  let name = Name.v (string_exn "name" json) in
  let lo = int_exn "lo" json and hi = int_exn "hi" json in
  match Pattern.range ~lo ~hi name with
  | r -> r
  | exception Invalid_argument msg -> bad "checkpoint: bad range: %s" msg

let reason_of_json json : Diag.reason =
  match string_exn "tag" json with
  | "before_name" -> Diag.Before_name
  | "after_name" -> After_name
  | "overflow" -> Overflow (range_of_json (member_exn "range" json))
  | "underflow" -> Underflow (range_of_json (member_exn "range" json))
  | "reentered" -> Reentered (range_of_json (member_exn "range" json))
  | "missing" -> Missing (range_of_json (member_exn "range" json))
  | "empty_fragment" -> Empty_fragment
  | "trigger_early" -> Trigger_early
  | "deadline_miss" ->
      Deadline_miss
        {
          started = int_exn "started" json;
          deadline = int_exn "deadline" json;
          now = int_exn "now" json;
        }
  | "late_conclusion" ->
      Late_conclusion
        { deadline = int_exn "deadline" json; at = int_exn "at" json }
  | "foreign" -> Foreign (Name.v (string_exn "name" json))
  | "formula_falsified" -> Formula_falsified
  | tag -> bad "checkpoint: unknown violation reason tag %S" tag

let verdict_of_json json : Compiled.verdict =
  match string_exn "status" json with
  | "running" -> Compiled.Running
  | "satisfied" -> Satisfied
  | "violated" ->
      Violated
        {
          reason = reason_of_json (member_exn "reason" json);
          time = int_exn "time" json;
          index = int_exn "index" json;
        }
  | status -> bad "checkpoint: unknown verdict status %S" status

let rec_state_of_json json : Compiled.rec_state =
  match json with
  | Json.String "idle" -> Compiled.Idle
  | Json.String "waiting" -> Waiting
  | Json.String "started" -> Started
  | Json.String "done" -> Done
  | Json.Obj _ -> Counting (int_exn "counting" json)
  | _ -> bad "checkpoint: malformed recognizer state"

let persisted_of_json json : Compiled.persisted =
  {
    p_recs =
      Array.of_list (List.map rec_state_of_json (list_exn "recs" json));
    p_active = int_exn "active" json;
    p_index = int_exn "index" json;
    p_started = int_exn "started" json;
    p_q_done = bool_exn "q_done" json;
    p_rounds = int_exn "rounds" json;
    p_verdict = verdict_of_json (member_exn "verdict" json);
  }

let event_of_json json : Trace.event =
  { name = Name.v (string_exn "name" json); time = int_exn "time" json }

(* v1 body: one persisted JSON state per checker, restored through the
   backend's restore capability. *)
let restore_checkers_v1 session json =
  let checkers = Hub.checkers (Session.hub session) in
  List.iter
    (fun cj ->
      let name = string_exn "name" cj in
      let checker =
        match List.find_opt (fun c -> Checker.name c = name) checkers with
        | Some c -> c
        | None -> bad "checkpoint names checker %S, not in this suite" name
      in
      let backend = Checker.backend checker in
      let restore =
        match backend.Backend.restore with
        | Some f -> f
        | None ->
            bad "checker %S: backend %S has no restore capability" name
              backend.Backend.label
      in
      let persisted = persisted_of_json (member_exn "state" cj) in
      (match restore persisted with
      | () -> ()
      | exception Invalid_argument msg ->
          bad "checker %S: state does not fit its monitor: %s" name msg);
      Checker.restore_meta checker ~events_seen:(int_exn "events_seen" cj))
    (list_exn "checkers" json)

(* v2 body: one engine blob.  A flat-hosted session loads it straight
   into its shared engine; any other hosting decodes into a scratch
   engine compiled from the same suite and bridges each checker through
   the persisted form — so compiled-written checkpoints resume under
   flat and vice versa. *)
let restore_checkers_v2 session json =
  (match string_exn "engine" json with
  | "flat" -> ()
  | e -> bad "checkpoint engine %S is not supported (expected \"flat\")" e);
  (match int_exn "blob_version" json with
  | v when v = Flat.blob_version -> ()
  | v ->
      bad "unsupported flat blob version %d (expected %d)" v Flat.blob_version);
  let blob =
    match B64.decode (string_exn "blob" json) with
    | Ok b -> b
    | Error msg -> bad "checkpoint blob: %s" msg
  in
  let stored_names =
    List.map
      (function
        | Json.String s -> s
        | _ -> bad "checkpoint: field \"names\" must hold strings")
      (list_exn "names" json)
  in
  let events_seen_of =
    let table =
      List.map
        (fun cj -> (string_exn "name" cj, int_exn "events_seen" cj))
        (list_exn "checkers" json)
    in
    fun name ->
      match List.assoc_opt name table with
      | Some n -> n
      | None -> bad "checkpoint has no checker record for %S" name
  in
  let checkers = Hub.checkers (Session.hub session) in
  let shared = shared_engine checkers in
  let eng =
    match shared with
    | Some eng -> eng
    | None ->
        Flat.compile
          (List.map
             (fun (e : Suite.entry) -> (e.label, e.pattern))
             (Session.suite session))
  in
  let engine_names =
    Array.to_list (Array.map Name.to_string (Flat.names eng))
  in
  if stored_names <> engine_names then
    bad "checkpoint interning table does not match this suite's alphabet";
  (match Flat.load_blob eng blob with
  | Ok () -> ()
  | Error msg -> bad "%s" msg);
  let checker_named name =
    match List.find_opt (fun c -> Checker.name c = name) checkers with
    | Some c -> c
    | None -> bad "checkpoint names checker %S, not in this suite" name
  in
  for ck = 0 to Flat.size eng - 1 do
    let name = Flat.label eng ck in
    let checker = checker_named name in
    (match shared with
    | Some _ -> () (* the blob load above already is this checker's state *)
    | None -> (
        let backend = Checker.backend checker in
        let restore =
          match backend.Backend.restore with
          | Some f -> f
          | None ->
              bad "checker %S: backend %S has no restore capability" name
                backend.Backend.label
        in
        match restore (Flat.persist_checker eng ck) with
        | () -> ()
        | exception Invalid_argument msg ->
            bad "checker %S: state does not fit its monitor: %s" name msg));
    Checker.restore_meta checker ~events_seen:(events_seen_of name)
  done

let restore_exn session json =
  (match string_exn "format" json with
  | s when s = format_name -> ()
  | s -> bad "not a loseq checkpoint (format %S)" s);
  let version = int_exn "version" json in
  if version <> format_version && version <> blob_format_version then
    bad "unsupported checkpoint version %d (expected %d or %d)" version
      format_version blob_format_version;
  let stored_suite = string_exn "suite" json in
  let this_suite = Suite.to_string (Session.suite session) in
  if stored_suite <> this_suite then
    bad "checkpoint was taken against a different suite";
  let stats = Session.stats session in
  if stats.accepted <> 0 || stats.delivered <> 0 || Session.now session <> 0
  then bad "checkpoint restore requires a fresh session";
  let position = member_exn "position" json in
  let reorder_json = member_exn "reorder" json in
  (* Monitor states first, then time: the hub's wheel is re-armed from
     the restored states, and advancing a fresh session's kernel fires
     nothing (no deadline is armed in an initial state). *)
  if version = blob_format_version then restore_checkers_v2 session json
  else restore_checkers_v1 session json;
  (match
     Reorder.restore (Session.reorder session)
       ~max_seen:(int_exn "max_seen" reorder_json)
       ~released:(int_exn "released" reorder_json)
       ~dropped_late:(int_exn "dropped_late" reorder_json)
       ~reordered:(int_exn "reordered" reorder_json)
       (List.map event_of_json (list_exn "pending" reorder_json))
   with
  | Ok () -> ()
  | Error msg -> bad "%s" msg);
  Session.restore_counters session
    ~accepted:(int_exn "accepted" position)
    ~delivered:(int_exn "delivered" position)
    ~forced:(int_exn "forced" position);
  let now = int_exn "now" position in
  let kernel = Session.kernel session in
  let module Time = Loseq_sim.Time in
  let module Kernel = Loseq_sim.Kernel in
  if Time.( < ) (Kernel.now kernel) (Time.ps now) then
    Kernel.run ~until:(Time.ps now) kernel;
  Hub.resync (Session.hub session)

let restore session json =
  match restore_exn session json with
  | () -> Ok ()
  | exception Bad msg -> Error msg

(* ---- files ------------------------------------------------------------- *)

let save ~path session =
  match capture session with
  | exception Failure msg -> Error msg
  | json -> (
      let data = Json.to_string json in
      let tmp = path ^ ".tmp" in
      match open_out_bin tmp with
      | exception Sys_error msg -> Error msg
      | oc -> (
          output_string oc data;
          output_char oc '\n';
          close_out oc;
          match Sys.rename tmp path with
          | () -> Ok (String.length data + 1)
          | exception Sys_error msg -> Error msg))

let load ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic -> (
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      close_in ic;
      match Json.of_string data with
      | Ok _ as ok -> ok
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let position json =
  match int_exn "accepted" (member_exn "position" json) with
  | n -> Ok n
  | exception Bad msg -> Error msg

let resume ?metrics ?trace ?backend ?suite_backend ?latency_sample_rate ~path
    suite =
  match load ~path with
  | Error _ as err -> err
  | Ok json -> (
      match
        let lateness = int_exn "lateness" json
        and window = int_exn "window" json in
        Session.create ?metrics ?trace ?backend ?suite_backend
          ?latency_sample_rate ~lateness ~window suite
      with
      | exception Bad msg -> Error msg
      | session -> (
          match restore session json with
          | Ok () -> Ok session
          | Error _ as err -> err))
