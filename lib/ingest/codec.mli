(** The loseq binary trace wire format (LSQB).

    CSV is the exchange format; this is the {e wire} format: what a
    simulator streams into a live monitor session and what traces are
    archived as.  Design goals, in order: cheap to decode (the decoder
    is on the ingestion hot path), compact (varint-delta timestamps, an
    interned name table so each event is typically 2–4 bytes), and
    streamable (framed records, a decoder that accepts arbitrary chunk
    boundaries — a read(2) never aligns with records).

    {2 Layout}

    A stream is the 5-byte header {!magic} followed by framed records,
    each a 1-byte tag:

    - [0x01] {e define}: varint byte-length + bytes of a name.  Names
      are interned in order of first appearance; the n-th define record
      binds id [n-1].
    - [0x02] {e event}: varint name id + varint time delta (time minus
      the previous event's time; the first event's delta is absolute).
      Deltas are unsigned, so a decoded stream is chronological by
      construction — the encoder funnels input through the same
      {!Loseq_core.Trace_io.Validator} as the CSV reader and refuses
      non-chronological traces.
    - [0x03] {e end}: varint total event count, an integrity check.
      Optional (a live stream just ends), but {!encode} always writes
      it and the decoder verifies it when present.

    Round-trip with {!Loseq_core.Trace.t} (and hence CSV) is exact and
    property-tested: [decode (encode tr) = tr]. *)

open Loseq_core

val magic : string
(** ["LSQB\x01"] — 4 format bytes plus a version byte. *)

val looks_binary : string -> bool
(** Does [s] start with (a prefix of) {!magic}?  True on the empty
    string only when it could still become a binary stream. *)

val sniff : string -> [ `Binary | `Csv | `Tokens ]
(** Guess the format of a complete trace blob: {!magic} prefix ⇒
    [`Binary]; otherwise a comma in the first non-blank, non-comment
    line ⇒ [`Csv]; otherwise [`Tokens] (the whitespace
    [name@time] format of {!Loseq_core.Trace.parse}). *)

(** {1 Whole-trace conveniences} *)

val encode : Trace.t -> (string, string) result
(** Header, defines interleaved at first use, events, end record.
    Fails on a non-chronological trace (shared validator, positions as
    ["event N"]). *)

val encode_exn : Trace.t -> string
(** Raises [Invalid_argument]. *)

val decode : string -> (Trace.t, string) result
(** Errors carry the record ordinal and byte offset. *)

val save : path:string -> Trace.t -> (unit, string) result
val load : string -> (Trace.t, string) result

(** {1 Streaming} *)

module Encoder : sig
  type t

  val create : (string -> unit) -> t
  (** [create write] emits the header through [write] immediately;
      every record is written as one [write] call (so a socket sink
      frames naturally). *)

  val event : t -> Trace.event -> (unit, string) result
  (** Interning the name (emitting a define record if new) and framing
      the event.  Fails if [event] would break chronology. *)

  val finish : t -> unit
  (** Write the end record.  The encoder must not be used after. *)

  val events : t -> int
end

module Decoder : sig
  type t

  val create : unit -> t

  val feed :
    t -> ?off:int -> ?len:int -> string ->
    emit:(Trace.event -> unit) ->
    (unit, string) result
  (** Consume one chunk, invoking [emit] for every event completed by
      it.  Partial records are buffered across calls; chunk boundaries
      are arbitrary.  Errors (bad magic, unknown tag, invalid name, id
      out of range, count mismatch, data after the end record) are
      sticky: every later call fails with the same message. *)

  val finish : t -> (unit, string) result
  (** Signal end of input; fails if the stream stops mid-record. *)

  val events : t -> int
  (** Events emitted so far. *)

  val bytes_consumed : t -> int
  (** Whole-record bytes consumed so far (excludes the buffered partial
      record). *)
end
