open Loseq_core
open Loseq_verif
module Kernel = Loseq_sim.Kernel
module Time = Loseq_sim.Time
module Tr = Loseq_obs.Trace

(* Session-level flight-recorder category: the backpressure stall span
   around a forced drain (argument of the end record: events forced
   out to admit the blocked one). *)
type trc = { tr : Tr.t; tr_stall : Tr.cat }

type t = {
  suite : Suite.t;
  kernel : Kernel.t;
  tap : Tap.t;
  hub : Hub.t;
  reorder : Reorder.t;
  lateness : int;
  window : int;
  trc : trc option;
  mutable accepted : int;
  mutable delivered : int;
  mutable forced : int;
}

let create ?metrics ?(trace = Tr.noop) ?backend ?suite_backend
    ?latency_sample_rate ?(lateness = 0) ?(window = 1024) suite =
  let kernel = Kernel.create () in
  let tap = Tap.create ~record:false kernel in
  let hub =
    Suite.attach_hub ?metrics ~trace ?backend ?suite_backend
      ?latency_sample_rate tap suite
  in
  {
    suite;
    kernel;
    tap;
    hub;
    reorder = Reorder.create ?metrics ~trace ~capacity:window ~lateness ();
    lateness;
    window;
    trc =
      (if Tr.is_live trace then
         Some { tr = trace; tr_stall = Tr.intern trace ~track:"ingest" "stall" }
       else None);
    accepted = 0;
    delivered = 0;
    forced = 0;
  }

(* Advance the private kernel to the event's timestamp first: the hub's
   merged deadline wheel fires any deadline that elapses on the way, so
   a deadline-only violation is reported between stream events exactly
   as it would be mid-simulation. *)
let deliver t (e : Trace.event) =
  let until = Time.ps e.time in
  if Time.( < ) (Kernel.now t.kernel) until then Kernel.run ~until t.kernel;
  Tap.emit_name t.tap e.name;
  t.delivered <- t.delivered + 1

let offer t (e : Trace.event) =
  (* In-order fast path: with no reorder margin and nothing buffered an
     admissible event cannot be overtaken, so it skips the heap. *)
  if
    t.lateness = 0
    && Reorder.is_empty t.reorder
    && e.time >= Reorder.floor t.reorder
  then begin
    Reorder.note_delivered t.reorder e.time;
    deliver t e;
    t.accepted <- t.accepted + 1;
    `Accepted
  end
  else
    match Reorder.push t.reorder e with
    | `Queued ->
        t.accepted <- t.accepted + 1;
        ignore (Reorder.drain t.reorder ~emit:(deliver t));
        `Accepted
    | `Dropped_late ->
        t.accepted <- t.accepted + 1;
        `Accepted
    | `Full -> `Blocked

let force_drain t =
  match Reorder.pop_oldest t.reorder with
  | Some e ->
      deliver t e;
      t.forced <- t.forced + 1;
      true
  | None -> false

let offer_force t e =
  match offer t e with
  | `Accepted -> ()
  | `Blocked ->
      (* Backpressure stall: drain by force until the event fits.  The
         whole stall is one span — opened when the block was detected
         (so anything the drain emits nests inside it), closed when
         admission succeeded, argument the number of events forced
         out. *)
      (match t.trc with
      | Some c -> Tr.emit c.tr c.tr_stall Tr.Span_begin 0
      | None -> ());
      let drained = ref 0 in
      let rec force () =
        ignore (force_drain t);
        incr drained;
        match offer t e with `Accepted -> () | `Blocked -> force ()
      in
      force ();
      (match t.trc with
      | Some c -> Tr.emit c.tr c.tr_stall Tr.Span_end !drained
      | None -> ())

let flush t = ignore (Reorder.flush t.reorder ~emit:(deliver t))

let now t = Time.to_ps (Kernel.now t.kernel)

let finalize ?final_time t =
  flush t;
  let ft =
    match final_time with
    | Some f -> f
    | None -> max (Reorder.max_seen t.reorder) 0
  in
  let ft = max ft (now t) in
  if Time.( < ) (Kernel.now t.kernel) (Time.ps ft) then
    Kernel.run ~until:(Time.ps ft) t.kernel;
  Hub.finalize t.hub;
  Hub.report t.hub

type stats = {
  accepted : int;
  delivered : int;
  reordered : int;
  dropped_late : int;
  forced : int;
}

let stats (t : t) : stats =
  {
    accepted = t.accepted;
    delivered = t.delivered;
    reordered = Reorder.reordered t.reorder;
    dropped_late = Reorder.dropped_late t.reorder;
    forced = t.forced;
  }

let position (t : t) = t.accepted

let on_violation t hook =
  Hub.on_violation t.hub (fun c v -> hook ~name:(Checker.name c) v)

let report t = Hub.report t.hub
let all_passed t = Hub.all_passed t.hub
let suite t = t.suite
let hub t = t.hub
let kernel t = t.kernel
let reorder t = t.reorder
let lateness t = t.lateness
let window t = t.window

let restore_counters (t : t) ~accepted ~delivered ~forced =
  t.accepted <- accepted;
  t.delivered <- delivered;
  t.forced <- forced

let reorder_certificate ?(budget = 20_000) t =
  Loseq_analysis.Robust.certificate ~budget
    (List.map
       (fun (e : Suite.entry) -> (e.label, e.pattern))
       (suite t))

let reorder_robust ?budget t =
  let cert = reorder_certificate ?budget t in
  Loseq_analysis.Robust.(
    compare_bound cert.bound (Finite (lateness t)) >= 0)
