(** A TLM-2.0-style loosely-timed transport layer.

    Generic payloads carry a command, an address and a data buffer;
    initiator sockets are bound to targets implementing blocking
    transport ([b_transport]).  The annotated delay is threaded through
    the call, as in TLM's loosely-timed coding style. *)

type command = Read | Write

type response =
  | Ok_response
  | Address_error
  | Command_error

type payload = {
  command : command;
  address : int;
  data : bytes;  (** read: filled by the target; write: read by it *)
  mutable response : response;
}

val payload : command -> address:int -> length:int -> payload

type target = {
  target_name : string;
  b_transport : payload -> Time.t -> Time.t;
      (** [b_transport p delay] processes [p] and returns the
          accumulated delay *)
}

type initiator

val initiator : ?name:string -> unit -> initiator
val bind : initiator -> target -> unit
(** Raises [Invalid_argument] when already bound. *)

val transport : initiator -> payload -> Time.t -> Time.t
(** Raises [Invalid_argument] when unbound. *)

(** {1 Word helpers} (32-bit little-endian convenience layer) *)

val read_word : initiator -> int -> int * Time.t
(** [(value, delay)]; raises [Failure] on a non-[Ok_response]. *)

val write_word : initiator -> int -> int -> Time.t

val get_word : payload -> int
val set_word : payload -> int -> unit

val pp_response : Format.formatter -> response -> unit
val pp_command : Format.formatter -> command -> unit
