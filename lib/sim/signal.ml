type 'a t = {
  signal_name : string;
  mutable value : 'a;
  changed : Kernel.event;
  mutable observers : ('a -> unit) list;
}

let create ?(name = "signal") kernel value =
  {
    signal_name = name;
    value;
    changed = Kernel.event ~name:(name ^ ".changed") kernel;
    observers = [];
  }

let name s = s.signal_name
let read s = s.value

let write s v =
  if s.value <> v then begin
    s.value <- v;
    Kernel.notify s.changed;
    List.iter (fun f -> f v) (List.rev s.observers)
  end

let changed s = s.changed

let rec wait_until s predicate =
  if predicate s.value then s.value
  else begin
    Kernel.wait s.changed;
    wait_until s predicate
  end

let on_change s f = s.observers <- f :: s.observers
