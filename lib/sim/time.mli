(** Simulation time, in the style of [sc_core::sc_time].

    Internally a number of picoseconds (63-bit, enough for ~100 days of
    simulated time). *)

type t = private int

val zero : t
val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val to_ps : t -> int
val to_ns_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** Saturates at {!zero}. *)

val mul : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints with the most compact exact unit, e.g. [90 ns] or
    [1500 ps]. *)

val to_string : t -> string
