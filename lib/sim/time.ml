type t = int

let zero = 0

let scaled label n =
  if n < 0 then invalid_arg (Printf.sprintf "Time.%s: negative time" label)

let ps n =
  scaled "ps" n;
  n

let ns n =
  scaled "ns" n;
  n * 1_000

let us n =
  scaled "us" n;
  n * 1_000_000

let ms n =
  scaled "ms" n;
  n * 1_000_000_000

let sec n =
  scaled "sec" n;
  n * 1_000_000_000_000

let to_ps t = t
let to_ns_float t = float_of_int t /. 1_000.
let add = ( + )
let sub a b = Stdlib.max 0 (a - b)
let mul t k = t * k
let compare = Stdlib.compare
let equal = Int.equal
let ( <= ) = Stdlib.( <= )
let ( < ) = Stdlib.( < )
let min = Stdlib.min
let max = Stdlib.max

let pp ppf t =
  let units = [ (1_000_000_000_000, "s"); (1_000_000_000, "ms");
                (1_000_000, "us"); (1_000, "ns"); (1, "ps") ] in
  let rec pick = function
    | [ (_, u) ] -> (1, u)
    | (scale, u) :: rest -> if t mod scale = 0 then (scale, u) else pick rest
    | [] -> (1, "ps")
  in
  if t = 0 then Format.pp_print_string ppf "0 s"
  else
    let scale, unit_name = pick units in
    Format.fprintf ppf "%d %s" (t / scale) unit_name

let to_string t = Format.asprintf "%a" pp t
