(** Bounded blocking FIFO channels ([sc_fifo] analogue). *)

type 'a t

val create : ?name:string -> ?capacity:int -> Kernel.t -> unit -> 'a t
(** [capacity] defaults to 16 and must be positive. *)

val length : 'a t -> int
val capacity : 'a t -> int

val put : 'a t -> 'a -> unit
(** Process-context: blocks while full. *)

val get : 'a t -> 'a
(** Process-context: blocks while empty. *)

val try_put : 'a t -> 'a -> bool
val try_get : 'a t -> 'a option
