(* Binary min-heap of (time, sequence, thunk): sequence numbers make the
   pop order deterministic among equal timestamps. *)
module Heap = struct
  type entry = { time : Time.t; seq : int; thunk : unit -> unit }
  type t = { mutable data : entry array; mutable size : int }

  let dummy = { time = Time.zero; seq = 0; thunk = ignore }
  let create () = { data = Array.make 64 dummy; size = 0 }

  let less a b =
    let c = Time.compare a.time b.time in
    if c <> 0 then c < 0 else a.seq < b.seq

  let push h entry =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.data.(!i) <- entry;
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let peek h = if h.size = 0 then None else Some h.data.(0)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type t = {
  mutable now : Time.t;
  heap : Heap.t;
  runnable : (unit -> unit) Queue.t;
  delta : (unit -> unit) Queue.t;
  random : Random.State.t;
  mutable seq : int;
  mutable spawned : int;
  mutable delivered : int;
  mutable stop_requested : bool;
  mutable was_stopped : bool;
}

type event = {
  kernel : t;
  name : string;
  mutable waiters : (unit -> unit) list;
}

type handle = { mutable cancelled : bool }

let create ?(seed = 0x5eed) () =
  {
    now = Time.zero;
    heap = Heap.create ();
    runnable = Queue.create ();
    delta = Queue.create ();
    random = Random.State.make [| seed |];
    seq = 0;
    spawned = 0;
    delivered = 0;
    stop_requested = false;
    was_stopped = false;
  }

let now t = t.now
let rng t = t.random

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

(* Effect-based coroutines: a process suspends by handing its
   resumption thunk to a registration function. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let run_thread body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  register (fun () -> continue k ()))
          | _ -> None);
    }

let spawn ?name t body =
  ignore name;
  t.spawned <- t.spawned + 1;
  Queue.add (fun () -> run_thread body) t.runnable

let schedule_thunk t ~at thunk =
  let handle = { cancelled = false } in
  Heap.push t.heap
    {
      Heap.time = at;
      seq = next_seq t;
      thunk = (fun () -> if not handle.cancelled then thunk ());
    };
  handle

let schedule t ~after thunk = schedule_thunk t ~at:(Time.add t.now after) thunk

let schedule_at t ~at thunk =
  if Time.( < ) at t.now then
    invalid_arg "Kernel.schedule_at: time is in the past";
  schedule_thunk t ~at thunk

let cancel handle = handle.cancelled <- true

let event ?(name = "event") t = { kernel = t; name; waiters = [] }
let event_name ev = ev.name

let release_waiters ev ~into =
  let waiters = List.rev ev.waiters in
  ev.waiters <- [];
  List.iter
    (fun w ->
      ev.kernel.delivered <- ev.kernel.delivered + 1;
      Queue.add w into)
    waiters

let notify ev = release_waiters ev ~into:ev.kernel.delta
let notify_immediate ev = release_waiters ev ~into:ev.kernel.runnable

let notify_after ev delay =
  let t = ev.kernel in
  ignore (schedule t ~after:delay (fun () -> notify_immediate ev))

let wait ev = Effect.perform (Suspend (fun resume -> ev.waiters <- resume :: ev.waiters))

let wait_any events =
  let winner = ref None in
  Effect.perform
    (Suspend
       (fun resume ->
         let fired = ref false in
         List.iter
           (fun ev ->
             ev.waiters <-
               (fun () ->
                 if not !fired then begin
                   fired := true;
                   winner := Some ev;
                   resume ()
                 end)
               :: ev.waiters)
           events));
  match !winner with Some ev -> ev | None -> assert false

let wait_timeout ev duration =
  let outcome = ref `Timeout in
  let kernel = ev.kernel in
  Effect.perform
    (Suspend
       (fun resume ->
         let fired = ref false in
         let fire o () =
           if not !fired then begin
             fired := true;
             outcome := o;
             resume ()
           end
         in
         ev.waiters <- fire `Event :: ev.waiters;
         ignore (schedule kernel ~after:duration (fire `Timeout))));
  !outcome

let wait_for t duration =
  Effect.perform (Suspend (fun resume -> ignore (schedule t ~after:duration resume)))

let wait_loose t lo hi =
  if Time.( < ) hi lo then invalid_arg "Kernel.wait_loose: hi < lo";
  let span = Time.to_ps (Time.sub hi lo) in
  let extra = if span = 0 then 0 else Random.State.int t.random (span + 1) in
  wait_for t (Time.add lo (Time.ps extra))

let pending t =
  (not (Queue.is_empty t.runnable))
  || (not (Queue.is_empty t.delta))
  || Heap.peek t.heap <> None

let stop t = t.stop_requested <- true
let stopped t = t.was_stopped

let run ?until t =
  t.stop_requested <- false;
  t.was_stopped <- false;
  let within time =
    match until with None -> true | Some u -> Time.( <= ) time u
  in
  let rec eval () =
    if t.stop_requested then t.was_stopped <- true
    else
    match Queue.take_opt t.runnable with
    | Some thunk ->
        thunk ();
        eval ()
    | None ->
        if not (Queue.is_empty t.delta) then begin
          Queue.transfer t.delta t.runnable;
          eval ()
        end
        else begin
          match Heap.peek t.heap with
          | Some entry when within entry.Heap.time ->
              (match Heap.pop t.heap with
              | Some e ->
                  t.now <- Time.max t.now e.Heap.time;
                  Queue.add e.Heap.thunk t.runnable
              | None -> ());
              eval ()
          | Some _ | None -> (
              match until with
              | Some u when Time.( < ) t.now u -> t.now <- u
              | Some _ | None -> ())
        end
  in
  eval ()

let stats t = (t.spawned, t.delivered)
