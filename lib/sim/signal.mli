(** Typed signals with value-changed events ([sc_signal] analogue). *)

type 'a t

val create : ?name:string -> Kernel.t -> 'a -> 'a t
val name : 'a t -> string
val read : 'a t -> 'a

val write : 'a t -> 'a -> unit
(** Delta-notifies {!changed} when the new value differs (structural
    equality). *)

val changed : 'a t -> Kernel.event

val wait_until : 'a t -> ('a -> bool) -> 'a
(** Process-context: wait (over value changes) until the predicate
    holds; returns the satisfying value.  Returns immediately if it
    already holds. *)

val on_change : 'a t -> ('a -> unit) -> unit
(** Callback invoked after every effective write (observer hook for
    monitor taps). *)
