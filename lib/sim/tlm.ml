type command = Read | Write
type response = Ok_response | Address_error | Command_error

type payload = {
  command : command;
  address : int;
  data : bytes;
  mutable response : response;
}

let payload command ~address ~length =
  {
    command;
    address;
    data = Bytes.make length '\000';
    response = Ok_response;
  }

type target = {
  target_name : string;
  b_transport : payload -> Time.t -> Time.t;
}

type initiator = { initiator_name : string; mutable peer : target option }

let initiator ?(name = "initiator") () = { initiator_name = name; peer = None }

let bind ini target =
  match ini.peer with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Tlm.bind: initiator %s already bound"
           ini.initiator_name)
  | None -> ini.peer <- Some target

let transport ini p delay =
  match ini.peer with
  | None ->
      invalid_arg
        (Printf.sprintf "Tlm.transport: initiator %s is unbound"
           ini.initiator_name)
  | Some target -> target.b_transport p delay

let get_word p =
  let b i = Char.code (Bytes.get p.data i) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let set_word p v =
  Bytes.set p.data 0 (Char.chr (v land 0xff));
  Bytes.set p.data 1 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set p.data 2 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set p.data 3 (Char.chr ((v lsr 24) land 0xff))

let check p =
  match p.response with
  | Ok_response -> ()
  | Address_error ->
      failwith (Printf.sprintf "TLM address error at 0x%x" p.address)
  | Command_error ->
      failwith (Printf.sprintf "TLM command error at 0x%x" p.address)

let read_word ini address =
  let p = payload Read ~address ~length:4 in
  let delay = transport ini p Time.zero in
  check p;
  (get_word p, delay)

let write_word ini address value =
  let p = payload Write ~address ~length:4 in
  set_word p value;
  let delay = transport ini p Time.zero in
  check p;
  delay

let pp_response ppf r =
  Format.pp_print_string ppf
    (match r with
    | Ok_response -> "ok"
    | Address_error -> "address-error"
    | Command_error -> "command-error")

let pp_command ppf c =
  Format.pp_print_string ppf (match c with Read -> "read" | Write -> "write")
