type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  data_written : Kernel.event;
  data_read : Kernel.event;
}

let create ?(name = "fifo") ?(capacity = 16) kernel () =
  if capacity <= 0 then invalid_arg "Fifo.create: capacity must be positive";
  {
    items = Queue.create ();
    capacity;
    data_written = Kernel.event ~name:(name ^ ".written") kernel;
    data_read = Kernel.event ~name:(name ^ ".read") kernel;
  }

let length f = Queue.length f.items
let capacity f = f.capacity

let rec put f x =
  if Queue.length f.items >= f.capacity then begin
    Kernel.wait f.data_read;
    put f x
  end
  else begin
    Queue.add x f.items;
    Kernel.notify f.data_written
  end

let rec get f =
  match Queue.take_opt f.items with
  | Some x ->
      Kernel.notify f.data_read;
      x
  | None ->
      Kernel.wait f.data_written;
      get f

let try_put f x =
  if Queue.length f.items >= f.capacity then false
  else begin
    Queue.add x f.items;
    Kernel.notify f.data_written;
    true
  end

let try_get f =
  match Queue.take_opt f.items with
  | Some x ->
      Kernel.notify f.data_read;
      Some x
  | None -> None
