(** A SystemC-like discrete-event simulation kernel.

    The kernel provides the subset of the SystemC scheduler the paper's
    TL models rely on: simulation time, events with immediate / delta /
    timed notification, coroutine processes ([SC_THREAD] analogues,
    implemented with OCaml effect handlers), delta cycles and plain
    timed callbacks (for monitors' deadline timeouts).

    Determinism: all scheduling is FIFO within a time/delta step and the
    kernel owns a seeded random state used by {!wait_loose}, so a given
    seed reproduces a run exactly.  Loose timing — the paper's
    [wait (90, 110, SC_NS)] — is {!wait_loose}. *)

type t

val create : ?seed:int -> unit -> t
val now : t -> Time.t
val rng : t -> Random.State.t

(** {1 Processes} *)

val spawn : ?name:string -> t -> (unit -> unit) -> unit
(** Register a process; it starts when {!run} is called (or immediately
    if the simulation is already running).  A process may call the
    [wait_*] functions below; other code must not. *)

val wait_for : t -> Time.t -> unit
val wait_loose : t -> Time.t -> Time.t -> unit
(** [wait_loose t lo hi]: wait a uniformly drawn duration in
    [[lo, hi]] — the loose-timing principle. *)

(** {1 Events} *)

type event

val event : ?name:string -> t -> event
val event_name : event -> string

val notify : event -> unit
(** Delta notification: waiters resume in the next delta cycle at the
    current time (the common [e.notify(SC_ZERO_TIME)] idiom). *)

val notify_immediate : event -> unit
val notify_after : event -> Time.t -> unit

val wait : event -> unit
val wait_any : event list -> event
(** Returns the event that fired. *)

val wait_timeout : event -> Time.t -> [ `Event | `Timeout ]

(** {1 Timed callbacks} *)

type handle

val schedule : t -> after:Time.t -> (unit -> unit) -> handle
val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Raises [Invalid_argument] when [at] is in the past. *)

val cancel : handle -> unit

(** {1 Running} *)

val run : ?until:Time.t -> t -> unit
(** Execute until no activity remains, until simulation time would
    exceed [until] (in which case [now] is advanced to [until]), or
    until {!stop} is requested.  Exceptions raised by processes
    propagate. *)

val stop : t -> unit
(** Request termination ([sc_stop] analogue): {!run} returns once the
    currently running process suspends; pending activity is left in
    place ({!pending} still reports it).  A subsequent {!run} resumes. *)

val stopped : t -> bool
(** Was the last {!run} ended by {!stop}?  Cleared when {!run} is called
    again. *)

val pending : t -> bool
(** Is there any scheduled activity left? *)

val stats : t -> int * int
(** [(processes spawned, events delivered)] — for tests and reports. *)
