type range = { name : Name.t; lo : int; hi : int }
type connective = All | Any
type fragment = { ranges : range list; connective : connective }
type ordering = fragment list
type antecedent = { body : ordering; trigger : Name.t; repeated : bool }
type timed = { premise : ordering; conclusion : ordering; deadline : int }
type t = Antecedent of antecedent | Timed of timed

let range ?(lo = 1) ?(hi = 1) name =
  if lo < 1 then invalid_arg "Pattern.range: lower bound must be >= 1";
  if lo > hi then invalid_arg "Pattern.range: lower bound exceeds upper bound";
  { name; lo; hi }

let exactly k name = range ~lo:k ~hi:k name

let fragment ?(connective = All) ranges =
  if ranges = [] then invalid_arg "Pattern.fragment: empty fragment";
  { ranges; connective }

let single name = fragment [ range name ]

let antecedent ?(repeated = false) body ~trigger =
  if body = [] then invalid_arg "Pattern.antecedent: empty ordering";
  Antecedent { body; trigger; repeated }

let timed premise conclusion ~deadline =
  if premise = [] then invalid_arg "Pattern.timed: empty premise";
  if conclusion = [] then invalid_arg "Pattern.timed: empty conclusion";
  if deadline < 0 then invalid_arg "Pattern.timed: negative deadline";
  Timed { premise; conclusion; deadline }

let alpha_range r = Name.Set.singleton r.name

let alpha_fragment f =
  List.fold_left
    (fun acc r -> Name.Set.add r.name acc)
    Name.Set.empty f.ranges

let alpha_ordering frags =
  List.fold_left
    (fun acc f -> Name.Set.union acc (alpha_fragment f))
    Name.Set.empty frags

let alpha = function
  | Antecedent a -> Name.Set.add a.trigger (alpha_ordering a.body)
  | Timed g ->
      Name.Set.union (alpha_ordering g.premise) (alpha_ordering g.conclusion)

let body_ordering = function
  | Antecedent a -> a.body
  | Timed g -> g.premise @ g.conclusion

let premise_length = function
  | Antecedent a -> List.length a.body
  | Timed g -> List.length g.premise

let fragment_count p = List.length (body_ordering p)

let range_count p =
  List.fold_left (fun acc f -> acc + List.length f.ranges) 0 (body_ordering p)

let name_count p =
  List.fold_left
    (fun acc f -> acc + Name.Set.cardinal (alpha_fragment f))
    0 (body_ordering p)

let max_fragment_width p =
  List.fold_left
    (fun acc f -> max acc (Name.Set.cardinal (alpha_fragment f)))
    0 (body_ordering p)

let max_hi p =
  List.fold_left
    (fun acc f -> List.fold_left (fun acc r -> max acc r.hi) acc f.ranges)
    0 (body_ordering p)

let equal_range r1 r2 =
  Name.equal r1.name r2.name && r1.lo = r2.lo && r1.hi = r2.hi

let equal_fragment f1 f2 =
  f1.connective = f2.connective
  && List.length f1.ranges = List.length f2.ranges
  && List.for_all2 equal_range f1.ranges f2.ranges

let equal_ordering o1 o2 =
  List.length o1 = List.length o2 && List.for_all2 equal_fragment o1 o2

let equal p1 p2 =
  match p1, p2 with
  | Antecedent a1, Antecedent a2 ->
      equal_ordering a1.body a2.body
      && Name.equal a1.trigger a2.trigger
      && a1.repeated = a2.repeated
  | Timed g1, Timed g2 ->
      equal_ordering g1.premise g2.premise
      && equal_ordering g1.conclusion g2.conclusion
      && g1.deadline = g2.deadline
  | Antecedent _, Timed _ | Timed _, Antecedent _ -> false

let pp_range ppf r =
  if r.lo = 1 && r.hi = 1 then Name.pp ppf r.name
  else Format.fprintf ppf "%a[%d,%d]" Name.pp r.name r.lo r.hi

let pp_fragment ppf f =
  match f.ranges with
  | [ r ] when f.connective = All -> pp_range ppf r
  | _ ->
      let sep = match f.connective with All -> ", " | Any -> " | " in
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf sep)
           pp_range)
        f.ranges

let pp_ordering ppf frags =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " < ")
    pp_fragment ppf frags

let pp ppf = function
  | Antecedent a ->
      Format.fprintf ppf "%a %s %a" pp_ordering a.body
        (if a.repeated then "<<!" else "<<")
        Name.pp a.trigger
  | Timed g ->
      Format.fprintf ppf "%a => %a within %d" pp_ordering g.premise
        pp_ordering g.conclusion g.deadline

let to_string p = Format.asprintf "%a" pp p
