type verdict =
  | Running
  | Satisfied
  | Violated of { reason : Diag.reason; time : int; index : int }

(* Recognizer states, flattened. *)
let s_idle = 0
let s_waiting = 1
let s_started = 2
let s_counting = 3
let s_done = 4

(* Categories, flattened (cf. Context.category). *)
let c_self = 0
let c_current = 1
let c_before = 2
let c_accept = 3
let c_after = 4

type t = {
  pattern : Pattern.t;
  alpha : Name.Set.t;
  (* alphabet interning *)
  ids : (Name.t, int) Hashtbl.t;
  (* per name id *)
  owner : int array;  (* fragment index, -1 = terminator-only *)
  terminator : bool array;
  (* per recognizer *)
  category : int array array;  (* category.(r).(id) *)
  lo : int array;
  hi : int array;
  disjunctive : bool array;
  ranges : Pattern.range array;  (* for diagnostics *)
  state : int array;
  counter : int array;
  (* per fragment *)
  frag_first : int array;
  frag_count : int array;
  (* shape *)
  q : int;  (* fragment count *)
  repeated : bool;  (* true also for timed patterns *)
  timed : bool;
  premise_last : int;
  deadline : int;
  (* run state *)
  mutable active : int;
  mutable verdict : verdict;
  mutable index : int;
  mutable started : int;  (* -1 = unarmed *)
  mutable q_done : bool;
  mutable rounds : int;
}

let category_code = function
  | Context.Self -> c_self
  | Context.Current -> c_current
  | Context.Before -> c_before
  | Context.Accept -> c_accept
  | Context.After -> c_after
  | Context.Outside -> assert false

let compile pattern =
  Wellformed.check_exn pattern;
  let ordering = Pattern.body_ordering pattern in
  let contexts = List.concat (Context.of_pattern pattern) in
  let alphabet = Name.Set.elements (Pattern.alpha pattern) in
  let n_names = List.length alphabet in
  let ids = Hashtbl.create 16 in
  List.iteri (fun i nm -> Hashtbl.replace ids nm i) alphabet;
  let id nm = Hashtbl.find ids nm in
  let owner = Array.make n_names (-1) in
  List.iteri
    (fun f (frag : Pattern.fragment) ->
      List.iter (fun (r : Pattern.range) -> owner.(id r.name) <- f) frag.ranges)
    ordering;
  let terminator = Array.make n_names false in
  Name.Set.iter
    (fun nm -> terminator.(id nm) <- true)
    (Context.terminators pattern);
  let n_recs = List.length contexts in
  let category = Array.make n_recs [||] in
  let lo = Array.make n_recs 1 in
  let hi = Array.make n_recs 1 in
  let disjunctive = Array.make n_recs false in
  let ranges =
    Array.of_list (List.map (fun ctx -> ctx.Context.range) contexts)
  in
  List.iteri
    (fun r ctx ->
      lo.(r) <- ctx.Context.range.Pattern.lo;
      hi.(r) <- ctx.Context.range.Pattern.hi;
      disjunctive.(r) <- ctx.Context.connective = Pattern.Any;
      let row = Array.make n_names c_after in
      List.iter
        (fun nm -> row.(id nm) <- category_code (Context.classify ctx nm))
        alphabet;
      category.(r) <- row)
    contexts;
  let q = List.length ordering in
  let frag_first = Array.make q 0 in
  let frag_count = Array.make q 0 in
  let offset = ref 0 in
  List.iteri
    (fun f (frag : Pattern.fragment) ->
      frag_first.(f) <- !offset;
      frag_count.(f) <- List.length frag.ranges;
      offset := !offset + List.length frag.ranges)
    ordering;
  let repeated, timed, premise_last, deadline =
    match pattern with
    | Pattern.Antecedent a -> (a.repeated, false, -2, 0)
    | Pattern.Timed g -> (true, true, List.length g.premise - 1, g.deadline)
  in
  let t =
    {
      pattern;
      alpha = Pattern.alpha pattern;
      ids;
      owner;
      terminator;
      category;
      lo;
      hi;
      disjunctive;
      ranges;
      state = Array.make n_recs s_idle;
      counter = Array.make n_recs 0;
      frag_first;
      frag_count;
      q;
      repeated;
      timed;
      premise_last;
      deadline;
      active = 0;
      verdict = Running;
      index = 0;
      started = -1;
      q_done = false;
      rounds = 0;
    }
  in
  for r = frag_first.(0) to frag_first.(0) + frag_count.(0) - 1 do
    t.state.(r) <- s_waiting
  done;
  t

let pattern t = t.pattern
let alphabet t = t.alpha
let id_of_name t nm = Hashtbl.find_opt t.ids nm
let verdict t = t.verdict
let active_fragment t = t.active

let next_deadline t =
  match t.verdict with
  | Satisfied | Violated _ -> None
  | Running ->
      if t.timed && t.started >= 0 && not t.q_done then
        Some (t.started + t.deadline)
      else None

let reset t =
  Array.fill t.state 0 (Array.length t.state) s_idle;
  Array.fill t.counter 0 (Array.length t.counter) 0;
  for r = t.frag_first.(0) to t.frag_first.(0) + t.frag_count.(0) - 1 do
    t.state.(r) <- s_waiting
  done;
  t.active <- 0;
  t.verdict <- Running;
  t.index <- 0;
  t.started <- -1;
  t.q_done <- false;
  t.rounds <- 0

(* Recognizer outcomes. *)
let o_quiet = 0
let o_ok = 1
let o_nok = 2
let o_err = 3

(* One Fig. 5 step; on [o_err] the specific reason is in [!last_reason]
   (single-threaded monitors make this safe and keeps the hot path
   allocation-free). *)
let rec_step t r c last_reason =
  let fail reason =
    last_reason := reason;
    o_err
  in
  let s = t.state.(r) in
  if s = s_waiting || s = s_started then
    if c = c_self then begin
      t.state.(r) <- s_counting;
      t.counter.(r) <- 1;
      o_quiet
    end
    else if c = c_current then begin
      if s = s_waiting then t.state.(r) <- s_started;
      o_quiet
    end
    else if c = c_accept then
      if t.disjunctive.(r) then begin
        t.state.(r) <- s_idle;
        o_nok
      end
      else fail (Diag.Missing t.ranges.(r))
    else if c = c_before then fail Diag.Before_name
    else fail Diag.After_name
  else if s = s_counting then
    if c = c_self then
      if t.counter.(r) >= t.hi.(r) then fail (Diag.Overflow t.ranges.(r))
      else begin
        t.counter.(r) <- t.counter.(r) + 1;
        o_quiet
      end
    else if c = c_current then
      if t.counter.(r) >= t.lo.(r) then begin
        t.state.(r) <- s_done;
        o_quiet
      end
      else fail (Diag.Underflow t.ranges.(r))
    else if c = c_accept then
      if t.counter.(r) >= t.lo.(r) then begin
        t.state.(r) <- s_idle;
        o_ok
      end
      else fail (Diag.Underflow t.ranges.(r))
    else if c = c_before then fail Diag.Before_name
    else fail Diag.After_name
  else if s = s_done then
    if c = c_self then fail (Diag.Reentered t.ranges.(r))
    else if c = c_current then o_quiet
    else if c = c_accept then begin
      t.state.(r) <- s_idle;
      o_ok
    end
    else if c = c_before then fail Diag.Before_name
    else fail Diag.After_name
  else o_quiet (* idle: not stepped in practice *)

let violate t ~time reason =
  t.verdict <- Violated { reason; time; index = t.index - 1 };
  t.verdict

(* Would the active fragment complete on an Accept right now? *)
let min_complete t =
  let f = t.active in
  if f < 0 then false
  else begin
    let first = t.frag_first.(f) in
    let oks = ref 0 in
    let viable = ref true in
    for r = first to first + t.frag_count.(f) - 1 do
      let s = t.state.(r) in
      if s = s_counting then
        if t.counter.(r) >= t.lo.(r) then incr oks else viable := false
      else if s = s_done then incr oks
      else if not t.disjunctive.(r) then viable := false
    done;
    !viable && !oks > 0
  end

(* Deliver Accept to the active fragment; true on success. *)
let try_complete t ~time =
  let f = t.active in
  let first = t.frag_first.(f) in
  let oks = ref 0 in
  let failed = ref false in
  let last_reason = ref Diag.Empty_fragment in
  for r = first to first + t.frag_count.(f) - 1 do
    if not !failed then
      match rec_step t r c_accept last_reason with
      | o when o = o_ok -> incr oks
      | o when o = o_nok -> ()
      | o when o = o_err -> failed := true
      | _ -> ()
  done;
  if !failed then begin
    ignore (violate t ~time !last_reason);
    false
  end
  else if !oks = 0 then begin
    ignore (violate t ~time Diag.Empty_fragment);
    false
  end
  else true

let start_fragment_with t f id =
  t.active <- f;
  let first = t.frag_first.(f) in
  for r = first to first + t.frag_count.(f) - 1 do
    let c = t.category.(r).(id) in
    if c = c_self then begin
      t.state.(r) <- s_counting;
      t.counter.(r) <- 1
    end
    else t.state.(r) <- s_started
  done

let refresh_timed t ~time =
  if t.timed then
    if t.active = t.premise_last && min_complete t then t.started <- time
    else if t.active = t.q - 1 && (not t.q_done) && min_complete t then begin
      t.q_done <- true;
      t.rounds <- t.rounds + 1
    end

let step_id t ~id ~time =
  if id < 0 || id >= Array.length t.owner then
    invalid_arg "Compiled.step_id: id out of range";
  match t.verdict with
  | (Satisfied | Violated _) as v -> v
  | Running ->
      t.index <- t.index + 1;
      let armed = t.timed && t.started >= 0 in
      let dl = t.started + t.deadline in
      if armed && (not t.q_done) && time > dl then
        violate t ~time
          (Diag.Deadline_miss { started = t.started; deadline = dl; now = time })
      else if
        armed && t.q_done && time > dl && t.owner.(id) > t.premise_last
      then violate t ~time (Diag.Late_conclusion { deadline = dl; at = time })
      else begin
        let f = t.owner.(id) in
        let last = t.q - 1 in
        if f = t.active then begin
          (* Step every recognizer of the active fragment. *)
          let first = t.frag_first.(f) in
          let last_reason = ref Diag.Empty_fragment in
          let failed = ref false in
          for r = first to first + t.frag_count.(f) - 1 do
            if not !failed then
              if rec_step t r t.category.(r).(id) last_reason = o_err then
                failed := true
          done;
          if !failed then violate t ~time !last_reason
          else begin
            refresh_timed t ~time;
            t.verdict
          end
        end
        else if t.active = last && t.terminator.(id) then begin
          if try_complete t ~time then
            if not t.timed then begin
              t.rounds <- t.rounds + 1;
              if t.repeated then begin
                (* fresh round, bare start *)
                let first = t.frag_first.(0) in
                for r = first to first + t.frag_count.(0) - 1 do
                  t.state.(r) <- s_waiting
                done;
                t.active <- 0;
                t.verdict
              end
              else begin
                t.verdict <- Satisfied;
                t.verdict
              end
            end
            else begin
              (* timed: the terminator opens the next round *)
              start_fragment_with t 0 id;
              t.started <- -1;
              t.q_done <- false;
              refresh_timed t ~time;
              t.verdict
            end
          else t.verdict
        end
        else if f = t.active + 1 then begin
          if try_complete t ~time then begin
            start_fragment_with t f id;
            refresh_timed t ~time;
            t.verdict
          end
          else t.verdict
        end
        else if f >= 0 && f <= t.active then violate t ~time Diag.Before_name
        else if f >= 0 then violate t ~time Diag.After_name
        else violate t ~time Diag.Trigger_early
      end

let rounds_completed t = t.rounds

(* ---- reachability accessors ------------------------------------------- *)

type static = {
  names : Name.t array;
  owner : int array;
  terminator : bool array;
  category : Context.category array array;
  rec_range : Pattern.range array;
  rec_disjunctive : bool array;
  frag_first : int array;
  frag_count : int array;
  fragments : int;
  repeated : bool;
  timed : bool;
  premise_last : int;
  deadline : int;
}

let category_decode c =
  if c = c_self then Context.Self
  else if c = c_current then Context.Current
  else if c = c_before then Context.Before
  else if c = c_accept then Context.Accept
  else Context.After

let static (t : t) =
  let names = Array.make (Array.length t.owner) (Name.v "_") in
  Hashtbl.iter (fun nm id -> names.(id) <- nm) t.ids;
  {
    names;
    owner = Array.copy t.owner;
    terminator = Array.copy t.terminator;
    category = Array.map (Array.map category_decode) t.category;
    rec_range = Array.copy t.ranges;
    rec_disjunctive = Array.copy t.disjunctive;
    frag_first = Array.copy t.frag_first;
    frag_count = Array.copy t.frag_count;
    fragments = t.q;
    repeated = t.repeated;
    timed = t.timed;
    premise_last = t.premise_last;
    deadline = t.deadline;
  }

type rec_state = Idle | Waiting | Started | Counting of int | Done

type snapshot = {
  active : int;
  recs : rec_state array;
  armed : bool;
  q_done : bool;
  rounds : int;
}

let snapshot (t : t) =
  {
    active = t.active;
    recs =
      Array.init (Array.length t.state) (fun r ->
          let s = t.state.(r) in
          if s = s_idle then Idle
          else if s = s_waiting then Waiting
          else if s = s_started then Started
          else if s = s_counting then Counting t.counter.(r)
          else Done);
    armed = t.timed && t.started >= 0;
    q_done = t.q_done;
    rounds = t.rounds;
  }

type persisted = {
  p_recs : rec_state array;
  p_active : int;
  p_index : int;
  p_started : int;
  p_q_done : bool;
  p_rounds : int;
  p_verdict : verdict;
}

let persist (t : t) =
  {
    p_recs =
      Array.init (Array.length t.state) (fun r ->
          let s = t.state.(r) in
          if s = s_idle then Idle
          else if s = s_waiting then Waiting
          else if s = s_started then Started
          else if s = s_counting then Counting t.counter.(r)
          else Done);
    p_active = t.active;
    p_index = t.index;
    p_started = t.started;
    p_q_done = t.q_done;
    p_rounds = t.rounds;
    p_verdict = t.verdict;
  }

let restore (t : t) p =
  if Array.length p.p_recs <> Array.length t.state then
    invalid_arg "Compiled.restore: recognizer count mismatch";
  Array.iteri
    (fun r s ->
      match s with
      | Idle ->
          t.state.(r) <- s_idle;
          t.counter.(r) <- 0
      | Waiting ->
          t.state.(r) <- s_waiting;
          t.counter.(r) <- 0
      | Started ->
          t.state.(r) <- s_started;
          t.counter.(r) <- 0
      | Counting n ->
          t.state.(r) <- s_counting;
          t.counter.(r) <- n
      | Done ->
          t.state.(r) <- s_done;
          t.counter.(r) <- 0)
    p.p_recs;
  t.active <- p.p_active;
  t.index <- p.p_index;
  t.started <- p.p_started;
  t.q_done <- p.p_q_done;
  t.rounds <- p.p_rounds;
  t.verdict <- p.p_verdict

(* ---- table patches ----------------------------------------------------- *)

type patch = {
  set_category : (int * int * Context.category) list;
  set_owner : (int * int) list;
  set_terminator : (int * bool) list;
  set_lo : (int * int) list;
  set_hi : (int * int) list;
  set_deadline : int option;
}

let no_patch =
  {
    set_category = [];
    set_owner = [];
    set_terminator = [];
    set_lo = [];
    set_hi = [];
    set_deadline = None;
  }

let patched (t : t) (p : patch) =
  let n_names = Array.length t.owner in
  let n_recs = Array.length t.lo in
  let check_id id =
    if id < 0 || id >= n_names then
      invalid_arg "Compiled.patched: name id out of range"
  in
  let check_rec r =
    if r < 0 || r >= n_recs then
      invalid_arg "Compiled.patched: recognizer index out of range"
  in
  let owner = Array.copy t.owner in
  let terminator = Array.copy t.terminator in
  let category = Array.map Array.copy t.category in
  let lo = Array.copy t.lo in
  let hi = Array.copy t.hi in
  let ranges = Array.copy t.ranges in
  List.iter
    (fun (r, id, c) ->
      check_rec r;
      check_id id;
      category.(r).(id) <- category_code c)
    p.set_category;
  List.iter
    (fun (id, f) ->
      check_id id;
      if f < -1 || f >= t.q then
        invalid_arg "Compiled.patched: fragment index out of range";
      owner.(id) <- f)
    p.set_owner;
  List.iter
    (fun (id, b) ->
      check_id id;
      terminator.(id) <- b)
    p.set_terminator;
  List.iter
    (fun (r, v) ->
      check_rec r;
      lo.(r) <- v)
    p.set_lo;
  List.iter
    (fun (r, v) ->
      check_rec r;
      hi.(r) <- v)
    p.set_hi;
  (* Keep the diagnostic ranges (and hence [static]) consistent with the
     patched bounds; [Pattern.range] re-validates 1 <= lo <= hi. *)
  for r = 0 to n_recs - 1 do
    if lo.(r) <> t.lo.(r) || hi.(r) <> t.hi.(r) then
      ranges.(r) <-
        Pattern.range ~lo:lo.(r) ~hi:hi.(r) t.ranges.(r).Pattern.name
  done;
  let deadline =
    match p.set_deadline with
    | None -> t.deadline
    | Some d ->
        if d < 0 then invalid_arg "Compiled.patched: negative deadline" else d
  in
  let m =
    {
      t with
      ids = Hashtbl.copy t.ids;
      owner;
      terminator;
      category;
      lo;
      hi;
      disjunctive = Array.copy t.disjunctive;
      ranges;
      state = Array.make n_recs s_idle;
      counter = Array.make n_recs 0;
      frag_first = Array.copy t.frag_first;
      frag_count = Array.copy t.frag_count;
      deadline;
      active = 0;
      verdict = Running;
      index = 0;
      started = -1;
      q_done = false;
      rounds = 0;
    }
  in
  for r = m.frag_first.(0) to m.frag_first.(0) + m.frag_count.(0) - 1 do
    m.state.(r) <- s_waiting
  done;
  m

let step t (e : Trace.event) =
  match Hashtbl.find_opt t.ids e.name with
  | Some id -> step_id t ~id ~time:e.time
  | None -> t.verdict

let check_time t ~now =
  match t.verdict with
  | (Satisfied | Violated _) as v -> v
  | Running ->
      if t.timed && t.started >= 0 && not t.q_done then begin
        let dl = t.started + t.deadline in
        if now > dl then begin
          t.verdict <-
            Violated
              {
                reason =
                  Diag.Deadline_miss
                    { started = t.started; deadline = dl; now };
                time = dl;
                index = -1;
              };
          t.verdict
        end
        else t.verdict
      end
      else t.verdict

let finalize t ~now = check_time t ~now

let run pattern trace =
  let t = compile pattern in
  List.iter (fun e -> ignore (step t e)) trace;
  finalize t ~now:(Trace.end_time trace)

let accepts ?final_time pattern trace =
  let t = compile pattern in
  List.iter (fun e -> ignore (step t e)) trace;
  let now =
    match final_time with Some n -> n | None -> Trace.end_time trace
  in
  match finalize t ~now with
  | Running | Satisfied -> true
  | Violated _ -> false
