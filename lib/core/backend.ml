type verdict = Monitor.verdict =
  | Running
  | Satisfied
  | Violated of Diag.violation

type t = {
  label : string;
  pattern : Pattern.t;
  alphabet : Name.Set.t;
  step : Trace.event -> verdict;
  prepare : Name.t -> int -> verdict;
  check_time : now:int -> verdict;
  next_deadline : unit -> int option;
  finalize : now:int -> verdict;
  verdict : unit -> verdict;
  reset : unit -> unit;
  states : (unit -> Recognizer.state list list) option;
  acceptable : (unit -> Name.Set.t) option;
  ops : (unit -> int) option;
  persist : (unit -> Compiled.persisted) option;
  restore : (Compiled.persisted -> unit) option;
  engine : Flat.t option;
}

let make ~label ~pattern ?alphabet ~step ?prepare ?check_time ?next_deadline
    ?finalize ~verdict ~reset ?states ?acceptable ?ops ?persist ?restore
    ?engine () =
  let alphabet =
    match alphabet with Some a -> a | None -> Pattern.alpha pattern
  in
  let prepare =
    match prepare with
    | Some f -> f
    | None -> fun name time -> step { Trace.name; time }
  in
  let check_time =
    match check_time with Some f -> f | None -> fun ~now:_ -> verdict ()
  in
  let next_deadline =
    match next_deadline with Some f -> f | None -> fun () -> None
  in
  let finalize =
    match finalize with Some f -> f | None -> fun ~now -> check_time ~now
  in
  {
    label;
    pattern;
    alphabet;
    step;
    prepare;
    check_time;
    next_deadline;
    finalize;
    verdict;
    reset;
    states;
    acceptable;
    ops;
    persist;
    restore;
    engine;
  }

type factory = Pattern.t -> t
type suite_factory = (string * Pattern.t) list -> t array

(* ---- structural (Drct, the paper's construction) ---------------------- *)

let of_monitor_gen ~mode monitor0 =
  (* [reset] swaps in a fresh monitor; every closure reads the ref. *)
  let m = ref monitor0 in
  let pattern = Monitor.pattern monitor0 in
  make ~label:"direct" ~pattern
    ~alphabet:(Monitor.alphabet monitor0)
    ~step:(fun e -> Monitor.step !m e)
    ~check_time:(fun ~now -> Monitor.check_time !m ~now)
    ~next_deadline:(fun () -> Monitor.next_deadline !m)
    ~finalize:(fun ~now -> Monitor.finalize !m ~now)
    ~verdict:(fun () -> Monitor.verdict !m)
    ~reset:(fun () -> m := Monitor.create ?mode pattern)
    ~states:(fun () -> Monitor.fragment_states !m)
    ~acceptable:(fun () -> Monitor.acceptable !m)
    ~ops:(fun () -> Monitor.ops !m)
    ()

let of_monitor monitor = of_monitor_gen ~mode:None monitor
let direct ?mode pattern = of_monitor_gen ~mode (Monitor.create ?mode pattern)

(* ---- compiled (flat-table fast path) ---------------------------------- *)

let violation_of_compiled c ~(reason : Diag.reason) ~time ~index =
  {
    Diag.name = None;
    time;
    index;
    fragment = max (Compiled.active_fragment c) 0;
    reason;
  }

let lift_compiled c = function
  | Compiled.Running -> Running
  | Compiled.Satisfied -> Satisfied
  | Compiled.Violated { reason; time; index } ->
      Violated (violation_of_compiled c ~reason ~time ~index)

let of_compiled c =
  make ~label:"compiled"
    ~pattern:(Compiled.pattern c)
    ~alphabet:(Compiled.alphabet c)
    ~step:(fun e -> lift_compiled c (Compiled.step c e))
    ~prepare:(fun name ->
      match Compiled.id_of_name c name with
      | Some id -> fun time -> lift_compiled c (Compiled.step_id c ~id ~time)
      | None -> fun _time -> lift_compiled c (Compiled.verdict c))
    ~check_time:(fun ~now -> lift_compiled c (Compiled.check_time c ~now))
    ~next_deadline:(fun () -> Compiled.next_deadline c)
    ~finalize:(fun ~now -> lift_compiled c (Compiled.finalize c ~now))
    ~verdict:(fun () -> lift_compiled c (Compiled.verdict c))
    ~reset:(fun () -> Compiled.reset c)
    ~persist:(fun () -> Compiled.persist c)
    ~restore:(fun p -> Compiled.restore c p)
    ()

let compiled pattern = of_compiled (Compiled.compile pattern)

(* ---- flat (whole-suite table engine) ----------------------------------- *)

let violation_of_flat eng ck ~(reason : Diag.reason) ~time ~index =
  {
    Diag.name = None;
    time;
    index;
    fragment = max (Flat.active_fragment eng ck) 0;
    reason;
  }

let lift_flat eng ck = function
  | Compiled.Running -> Running
  | Compiled.Satisfied -> Satisfied
  | Compiled.Violated { reason; time; index } ->
      Violated (violation_of_flat eng ck ~reason ~time ~index)

(* One checker of a shared engine, behind the per-checker contract:
   every closure indexes the engine's packed table.  Hosts that know
   about engines ([Hub.host_flat], checkpoint blobs) recognize the
   sharing through the [engine] capability. *)
let flat_view eng ck =
  let verdict () = lift_flat eng ck (Flat.verdict eng ck) in
  make ~label:"flat"
    ~pattern:(Flat.pattern eng ck)
    ~alphabet:(Flat.alphabet eng ck)
    ~step:(fun e ->
      Flat.step_checker eng ck e;
      if Flat.verdict_code eng ck = 0 then Running else verdict ())
    ~prepare:(fun name ->
      let loc = Flat.local_of_name eng ck name in
      if loc < 0 then fun _time -> verdict ()
      else
        fun time ->
          Flat.step_local eng ck loc ~time;
          if Flat.verdict_code eng ck = 0 then Running else verdict ())
    ~check_time:(fun ~now ->
      Flat.check_time_checker eng ck ~now;
      verdict ())
    ~next_deadline:(fun () -> Flat.next_deadline_checker eng ck)
    ~finalize:(fun ~now ->
      Flat.check_time_checker eng ck ~now;
      verdict ())
    ~verdict
    ~reset:(fun () -> Flat.reset_checker eng ck)
    ~persist:(fun () -> Flat.persist_checker eng ck)
    ~restore:(fun p -> Flat.restore_checker eng ck p)
    ~engine:eng ()

let flat_suite entries =
  let eng = Flat.compile entries in
  (eng, Array.init (Flat.size eng) (flat_view eng))

let flat_views entries = snd (flat_suite entries)

let flat_engine_views eng = Array.init (Flat.size eng) (flat_view eng)

let flat pattern =
  let _, views = flat_suite [ ("pattern", pattern) ] in
  views.(0)

(* ---- signature-style extension ---------------------------------------- *)

module type MONITOR_BACKEND = sig
  type state

  val label : string
  val create : Pattern.t -> state
  val alphabet : state -> Name.Set.t
  val step : state -> Trace.event -> verdict
  val check_time : state -> now:int -> verdict
  val next_deadline : state -> int option
  val finalize : state -> now:int -> verdict
  val verdict : state -> verdict
  val reset : state -> unit
end

let pack (module B : MONITOR_BACKEND) pattern =
  let s = B.create pattern in
  make ~label:B.label ~pattern ~alphabet:(B.alphabet s)
    ~step:(fun e -> B.step s e)
    ~check_time:(fun ~now -> B.check_time s ~now)
    ~next_deadline:(fun () -> B.next_deadline s)
    ~finalize:(fun ~now -> B.finalize s ~now)
    ~verdict:(fun () -> B.verdict s)
    ~reset:(fun () -> B.reset s)
    ()

(* ---- telemetry --------------------------------------------------------- *)

(* One steps counter per backend flavor, shared across every instrumented
   backend with the same label on the same registry (Metrics deduplicates
   by (name, labels)).  The wrapped [step]/[prepare] keep the original
   closures — the bump is an int store in front of them. *)
let instrument metrics b =
  let steps =
    Loseq_obs.Metrics.counter metrics ~name:"loseq_backend_steps_total"
      ~help:"Monitor steps executed, by backend flavor"
      ~labels:[ ("backend", b.label) ]
      ()
  in
  let step e =
    Loseq_obs.Metrics.incr steps;
    b.step e
  in
  let prepare name =
    let f = b.prepare name in
    fun time ->
      Loseq_obs.Metrics.incr steps;
      f time
  in
  { b with step; prepare }

(* ---- helpers ----------------------------------------------------------- *)

let passed = function Running | Satisfied -> true | Violated _ -> false

(* ---- three-valued in-flight verdicts ----------------------------------- *)

type tri = Pass | Fail | Unsettled

let tri_of_verdict ~settled v =
  if not settled then Unsettled
  else match v with Running | Satisfied -> Pass | Violated _ -> Fail

let tri_to_string = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Unsettled -> "unsettled"

let pp_tri ppf t = Format.pp_print_string ppf (tri_to_string t)

let supports_rollback t = t.persist <> None && t.restore <> None

let pp_verdict ppf = function
  | Running -> Format.pp_print_string ppf "pass (running)"
  | Satisfied -> Format.pp_print_string ppf "pass (satisfied)"
  | Violated v -> Format.fprintf ppf "FAIL: %a" Diag.pp_violation v
