(** Declarative trace semantics of loose-ordering patterns.

    This module is the reference oracle: a direct, executable reading of
    the definitions of Section 4, written independently of the monitor
    automata so that the two can be cross-validated (as the paper
    validates its recognizers against a Lustre reference).

    Because alphabets of ranges and fragments are pairwise disjoint in a
    well-formed pattern, the decomposition of a word into range blocks
    and fragment segments is unique, which makes the semantics
    deterministic and cheap to decide.

    All functions assume (and {!holds} checks via {!Wellformed}) a
    well-formed pattern.  Traces are interpreted on the pattern alphabet:
    events outside [α] are discarded first. *)

type run = { name : Name.t; count : int }
(** A maximal run of equal consecutive names. *)

val runs : Name.t list -> run list
(** [runs w] is the unique decomposition of [w] into maximal runs. *)

val match_fragment : Pattern.fragment -> Name.t list -> bool
(** [match_fragment f w]: [w ∈ L(f)] (Definition 2). *)

val match_ordering : Pattern.ordering -> Name.t list -> bool
(** [match_ordering l w]: [w ∈ L(l)] (Definition 3). *)

val viable_prefix : Pattern.ordering -> Name.t list -> bool
(** [viable_prefix l w]: some extension of [w] is in [L(l)] — i.e. a
    monitor reading [w] has not yet failed nor finished. *)

val min_complete_prefix : Pattern.ordering -> Trace.event list -> int option
(** [min_complete_prefix l events] is the timestamp of the earliest event
    at which the prefix read so far is a complete match of [l] ("the
    recognition of [l] is finished"), if any. *)

val holds : ?final_time:int -> Pattern.t -> Trace.t -> bool
(** [holds p tr] is [true] iff the monitor for [p] reports no violation
    after consuming [tr] and then observing simulation time reach
    [final_time] (default: the trace's end time) without further events.
    Raises {!Wellformed.Ill_formed} on an ill-formed pattern. *)
