(** Parser for the concrete pattern syntax.

    Grammar (whitespace-insensitive):
    {v
    pattern   ::= ordering "<<" name            non-repeated antecedent
                | ordering "<<!" name           repeated antecedent
                | ordering "=>" ordering "within" int
    ordering  ::= fragment ("<" fragment)*
    fragment  ::= range
                | "{" range ("," range)* "}"    conjunctive (∧)
                | "{" range ("|" range)+ "}"    disjunctive (∨)
    range     ::= name ("[" int "," int "]")?   bounds default to [1,1]
    v}

    Examples:
    - [{set_imgAddr, set_glAddr, set_glSize} << start]
    - [start => read_img[100,60000] < set_irq within 60000]
    - [{n1, n2} < {n3[2,8] | n4} < n5 << i] (the Fig. 4 property)

    The printer {!Pattern.pp} emits this same syntax, and parsing is a
    left inverse of printing. *)

type error = { message : string; position : int }

val pp_error : Format.formatter -> error -> unit

val pattern : string -> (Pattern.t, error) result
(** Parse and well-formedness-check a pattern. *)

val ordering : string -> (Pattern.ordering, error) result

val pattern_exn : string -> Pattern.t
(** Raises [Invalid_argument] with the rendered error. *)
