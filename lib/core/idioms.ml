let names = List.map Name.v

let config_before_commit ?(repeated = false) ~registers ~commit () =
  Pattern.antecedent ~repeated
    [ Pattern.fragment (List.map Pattern.range (names registers)) ]
    ~trigger:(Name.v commit)

let handshake ~req ~ack ~within =
  Pattern.timed
    [ Pattern.single (Name.v req) ]
    [ Pattern.single (Name.v ack) ]
    ~deadline:within

let burst ~trigger ~beat ~lo ~hi ~done_ ~within =
  Pattern.timed
    [ Pattern.single (Name.v trigger) ]
    [
      Pattern.fragment [ Pattern.range ~lo ~hi (Name.v beat) ];
      Pattern.single (Name.v done_);
    ]
    ~deadline:within

let any_of_before ?(repeated = false) ~choices ~trigger () =
  Pattern.antecedent ~repeated
    [
      Pattern.fragment ~connective:Pattern.Any
        (List.map Pattern.range (names choices));
    ]
    ~trigger:(Name.v trigger)

let staged_startup ~stages ~go =
  Pattern.antecedent
    (List.map
       (fun stage -> Pattern.fragment (List.map Pattern.range (names stage)))
       stages)
    ~trigger:(Name.v go)

let axi_write ?(aw = "aw_valid") ?(w = "w_valid") ?(b = "b_valid") ~within ()
    =
  Pattern.timed
    [ Pattern.fragment (List.map Pattern.range (names [ aw; w ])) ]
    [ Pattern.single (Name.v b) ]
    ~deadline:within

let producer_consumer ~push ~pop ~depth =
  if depth < 1 then invalid_arg "Idioms.producer_consumer: depth must be >= 1";
  Pattern.antecedent ~repeated:true
    [ Pattern.fragment [ Pattern.range ~lo:1 ~hi:depth (Name.v push) ] ]
    ~trigger:(Name.v pop)
