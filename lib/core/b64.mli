(** Minimal RFC 4648 base64, for embedding binary engine blobs in JSON
    checkpoints.  The stdlib has no codec and the project deliberately
    takes no external dependency for one; this is the standard alphabet
    with [=] padding, strict decoding (no whitespace, no missing
    padding). *)

val encode : string -> string

val decode : string -> (string, string) result
(** [Error] describes the first offending position — decoding feeds
    checkpoint restore, which must reject corruption with a message,
    not an exception. *)
