type t = {
  range : Pattern.range;
  fragment_index : int;
  connective : Pattern.connective;
  before : Name.Set.t;
  current : Name.Set.t;
  accept : Name.Set.t;
  after : Name.Set.t;
}

type category = Self | Current | Before | Accept | After | Outside

let of_ordering ~terminators ordering =
  let alphas = Array.of_list (List.map Pattern.alpha_fragment ordering) in
  let q = Array.length alphas in
  let union_range lo hi =
    let acc = ref Name.Set.empty in
    for k = lo to hi do
      acc := Name.Set.union !acc alphas.(k)
    done;
    !acc
  in
  List.mapi
    (fun k (f : Pattern.fragment) ->
      let before = union_range 0 (k - 1) in
      let accept = if k = q - 1 then terminators else alphas.(k + 1) in
      let after_raw =
        let beyond = union_range (k + 2) (q - 1) in
        if k = q - 1 then beyond else Name.Set.union beyond terminators
      in
      (* Names already forbidden as [B], or owned by the fragment itself
         (a timed pattern's terminators are the first fragment's own
         alphabet), are not stored again in [Af]. *)
      let after =
        Name.Set.diff (Name.Set.diff after_raw before) alphas.(k)
      in
      List.map
        (fun (r : Pattern.range) ->
          {
            range = r;
            fragment_index = k;
            connective = f.connective;
            before;
            current = Name.Set.remove r.name alphas.(k);
            accept;
            after;
          })
        f.ranges)
    ordering

let terminators = function
  | Pattern.Antecedent a -> Name.Set.singleton a.trigger
  | Pattern.Timed g -> (
      match g.premise with
      | first :: _ -> Pattern.alpha_fragment first
      | [] -> Name.Set.empty)

let of_pattern p =
  of_ordering ~terminators:(terminators p) (Pattern.body_ordering p)

let classify ctx name =
  if Name.equal name ctx.range.name then Self
  else if Name.Set.mem name ctx.current then Current
  else if Name.Set.mem name ctx.accept then Accept
  else if Name.Set.mem name ctx.before then Before
  else if Name.Set.mem name ctx.after then After
  else Outside

let size ctx =
  Name.Set.cardinal ctx.before
  + Name.Set.cardinal ctx.current
  + Name.Set.cardinal ctx.accept
  + Name.Set.cardinal ctx.after

let pp_category ppf cat =
  Format.pp_print_string ppf
    (match cat with
    | Self -> "n"
    | Current -> "C"
    | Before -> "B"
    | Accept -> "Ac"
    | After -> "Af"
    | Outside -> "outside")

let equal_category (a : category) b = a = b

let pp ppf ctx =
  Format.fprintf ppf
    "@[<h>range %a: s=%s B=%a C=%a Ac=%a Af=%a@]" Pattern.pp_range ctx.range
    (match ctx.connective with Pattern.All -> "/\\" | Pattern.Any -> "\\/")
    Name.pp_set ctx.before Name.pp_set ctx.current Name.pp_set ctx.accept
    Name.pp_set ctx.after
