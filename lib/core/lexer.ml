type token =
  | NAME of string
  | INT of int
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | PIPE
  | LT
  | LTLT
  | LTLTBANG
  | IMPLIES
  | WITHIN
  | EOF

type located = { token : token; position : int }

exception Lex_error of { message : string; position : int }

let error position fmt =
  Format.kasprintf (fun message -> raise (Lex_error { message; position })) fmt

let is_name_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let tokenize src =
  let n = String.length src in
  let rec scan i acc =
    if i >= n then List.rev ({ token = EOF; position = n } :: acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1) acc
      | '{' -> scan (i + 1) ({ token = LBRACE; position = i } :: acc)
      | '}' -> scan (i + 1) ({ token = RBRACE; position = i } :: acc)
      | '[' -> scan (i + 1) ({ token = LBRACKET; position = i } :: acc)
      | ']' -> scan (i + 1) ({ token = RBRACKET; position = i } :: acc)
      | ',' -> scan (i + 1) ({ token = COMMA; position = i } :: acc)
      | '|' -> scan (i + 1) ({ token = PIPE; position = i } :: acc)
      | '=' ->
          if i + 1 < n && src.[i + 1] = '>' then
            scan (i + 2) ({ token = IMPLIES; position = i } :: acc)
          else error i "expected '=>'"
      | '<' ->
          if i + 2 < n && src.[i + 1] = '<' && src.[i + 2] = '!' then
            scan (i + 3) ({ token = LTLTBANG; position = i } :: acc)
          else if i + 1 < n && src.[i + 1] = '<' then
            scan (i + 2) ({ token = LTLT; position = i } :: acc)
          else scan (i + 1) ({ token = LT; position = i } :: acc)
      | c when is_digit c ->
          let j = ref i in
          while !j < n && is_digit src.[!j] do
            incr j
          done;
          let text = String.sub src i (!j - i) in
          (match int_of_string_opt text with
          | Some value -> scan !j ({ token = INT value; position = i } :: acc)
          | None -> error i "number %s out of range" text)
      | c when is_name_char c ->
          let j = ref i in
          while !j < n && is_name_char src.[!j] do
            incr j
          done;
          let text = String.sub src i (!j - i) in
          let token = if text = "within" then WITHIN else NAME text in
          scan !j ({ token; position = i } :: acc)
      | c -> error i "unexpected character %C" c
  in
  scan 0 []

let pp_token ppf = function
  | NAME s -> Format.fprintf ppf "name %s" s
  | INT n -> Format.fprintf ppf "integer %d" n
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | COMMA -> Format.pp_print_string ppf "','"
  | PIPE -> Format.pp_print_string ppf "'|'"
  | LT -> Format.pp_print_string ppf "'<'"
  | LTLT -> Format.pp_print_string ppf "'<<'"
  | LTLTBANG -> Format.pp_print_string ppf "'<<!'"
  | IMPLIES -> Format.pp_print_string ppf "'=>'"
  | WITHIN -> Format.pp_print_string ppf "keyword 'within'"
  | EOF -> Format.pp_print_string ppf "end of input"
