let finding severity code fmt = Finding.v severity code fmt

(* Lower bound on the number of events a full match of the ordering
   needs. *)
let min_events ordering =
  List.fold_left
    (fun acc (f : Pattern.fragment) ->
      acc
      +
      match f.connective with
      | Pattern.All ->
          List.fold_left (fun a (r : Pattern.range) -> a + r.lo) 0 f.ranges
      | Pattern.Any ->
          List.fold_left
            (fun a (r : Pattern.range) -> min a r.lo)
            max_int f.ranges)
    0 ordering

(* Estimated explicit product state count: each range contributes
   roughly its counter span plus its waiting states.  The estimate is
   capped to avoid overflow theatrics; the boolean records whether the
   cap was hit, so the caller can say "at least" instead of passing the
   cap off as an exact figure. *)
let state_cap = 1_000_000_000

let state_estimate p =
  List.fold_left
    (fun acc (f : Pattern.fragment) ->
      List.fold_left
        (fun (count, capped) (r : Pattern.range) ->
          let states = r.hi + 3 in
          if count > state_cap / states then (state_cap, true)
          else (count * states, capped))
        acc f.ranges)
    (1, false)
    (Pattern.body_ordering p)

let lint p =
  Wellformed.check_exn p;
  let ordering = Pattern.body_ordering p in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (f : Pattern.fragment) ->
      (match (f.connective, f.ranges) with
      | Pattern.Any, [ r ] ->
          add
            (finding Finding.Warning "singleton-disjunction"
               "fragment {%a | } has a single range; '|' and ',' are \
                equivalent here - was a larger choice intended?"
               Pattern.pp_range r)
      | (Pattern.Any | Pattern.All), _ -> ());
      List.iter
        (fun (r : Pattern.range) ->
          let width = r.hi - r.lo + 1 in
          if width > 1024 then
            add
              (finding Finding.Warning "wide-range"
                 "range %a expands to %d PSL names; any PSL-based flow \
                  will explode (the Drct monitor is unaffected)"
                 Pattern.pp_range r width);
          if r.hi > 100_000 then
            add
              (finding Finding.Info "huge-counter"
                 "range %a needs a %d-bit counter" Pattern.pp_range r
                 (let rec bits n acc =
                    if n = 0 then acc else bits (n lsr 1) (acc + 1)
                  in
                  bits r.hi 0)))
        f.ranges)
    ordering;
  (match p with
  | Pattern.Timed g ->
      let needed = min_events g.conclusion in
      if g.deadline = 0 then
        add
          (finding Finding.Warning "zero-deadline"
             "deadline 0 forces the whole conclusion to happen at the \
              premise's final timestamp")
      else if needed > 1 && g.deadline < needed - 1 then
        add
          (finding Finding.Warning "tight-deadline"
             "the conclusion needs at least %d events but the deadline \
              allows only %d time units - satisfiable only with \
              simultaneous events"
             needed g.deadline)
  | Pattern.Antecedent a ->
      if not a.repeated then
        add
          (finding Finding.Info "unbounded-trigger"
             "non-repeated antecedent: after the first '%a' the property \
              never fails again (use '<<!' to check every occurrence)"
             Name.pp a.trigger));
  let states, capped = state_estimate p in
  if states > 64 then
    add
      (finding Finding.Info "state-space"
         "an explicit product monitor would need %s%d states%s; the \
          modular monitors stay at %d stored bits"
         (if capped then ">= " else "~")
         states
         (if capped then " (estimate capped)" else "")
         (Cost.drct p).Cost.space_bits);
  Finding.order (List.rev !findings)

let pp_finding = Finding.pp
let pp = Finding.pp_list
