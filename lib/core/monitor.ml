type verdict = Running | Satisfied | Violated of Diag.violation
type mode = Lenient | Strict

type kind =
  | Antecedent_kind of { repeated : bool }
  | Timed_kind of { premise_last : int; last : int; deadline : int }

type t = {
  pattern : Pattern.t;
  alpha : Name.Set.t;
  engine : Engine.t;
  kind : kind;
  mode : mode;
  ops : int ref;
  mutable verdict : verdict;
  mutable index : int;  (* events consumed *)
  mutable last_time : int;
  mutable started : int option;  (* timed: latest end-of-premise stamp *)
  mutable q_done : bool;  (* timed: conclusion minimally recognized *)
}

let create ?(mode = Lenient) ?(ops = ref 0) pattern =
  Wellformed.check_exn pattern;
  let kind =
    match pattern with
    | Pattern.Antecedent a -> Antecedent_kind { repeated = a.repeated }
    | Pattern.Timed g ->
        Timed_kind
          {
            premise_last = List.length g.premise - 1;
            last = List.length g.premise + List.length g.conclusion - 1;
            deadline = g.deadline;
          }
  in
  let engine =
    Engine.create ~ops
      ~terminators:(Context.terminators pattern)
      (Pattern.body_ordering pattern)
  in
  Engine.reset engine;
  {
    pattern;
    alpha = Pattern.alpha pattern;
    engine;
    kind;
    mode;
    ops;
    verdict = Running;
    index = 0;
    last_time = 0;
    started = None;
    q_done = false;
  }

let pattern t = t.pattern
let alphabet t = t.alpha
let verdict t = t.verdict

let violate t ?name ~time ~index reason =
  let v =
    {
      Diag.name;
      time;
      index;
      fragment = max (Engine.active t.engine) 0;
      reason;
    }
  in
  t.verdict <- Violated v;
  t.verdict

let armed_deadline t =
  match (t.kind, t.started) with
  | Timed_kind { deadline; _ }, Some started when not t.q_done ->
      Some (started, started + deadline)
  | Timed_kind _, (Some _ | None) | Antecedent_kind _, _ -> None

let check_time t ~now =
  match t.verdict with
  | Satisfied | Violated _ -> t.verdict
  | Running -> (
      match armed_deadline t with
      | Some (started, deadline) when now > deadline ->
          violate t ~time:deadline ~index:(-1)
            (Diag.Deadline_miss { started; deadline; now })
      | Some _ | None -> t.verdict)

let next_deadline t =
  match t.verdict with
  | Satisfied | Violated _ -> None
  | Running -> Option.map snd (armed_deadline t)

(* After an event was consumed without fault, refresh the timed state:
   re-arm the deadline while the premise keeps min-completing, latch the
   conclusion's first min-completion. *)
let refresh_timed t ~premise_last ~last ~time =
  let active = Engine.active t.engine in
  if active = premise_last && Engine.active_min_complete t.engine then
    t.started <- Some time
  else if
    active = last && (not t.q_done) && Engine.active_min_complete t.engine
  then t.q_done <- true

let step t (e : Trace.event) =
  match t.verdict with
  | Satisfied | Violated _ -> t.verdict
  | Running -> (
      if not (Name.Set.mem e.name t.alpha) then
        match t.mode with
        | Lenient -> t.verdict
        | Strict ->
            violate t ~name:e.name ~time:e.time ~index:t.index
              (Diag.Foreign e.name)
      else begin
        let index = t.index in
        t.index <- t.index + 1;
        t.last_time <- e.time;
        (* Deadline checks come first: time reaching the deadline with an
           unfinished conclusion is a violation no matter what the event
           is, and conclusion events beyond the deadline arrive too
           late even if the conclusion already min-completed. *)
        let late =
          match (t.kind, armed_deadline t) with
          | _, Some (started, deadline) when e.time > deadline ->
              Some
                (violate t ~name:e.name ~time:e.time ~index
                   (Diag.Deadline_miss { started; deadline; now = e.time }))
          | Timed_kind { premise_last; deadline; _ }, None -> (
              match t.started with
              | Some started
                when t.q_done
                     && e.time > started + deadline
                     && (match Engine.owner t.engine e.name with
                        | Some f -> f > premise_last
                        | None -> false) ->
                  Some
                    (violate t ~name:e.name ~time:e.time ~index
                       (Diag.Late_conclusion
                          { deadline = started + deadline; at = e.time }))
              | Some _ | None -> None)
          | (Antecedent_kind _ | Timed_kind _), (Some _ | None) -> None
        in
        match late with
        | Some verdict -> verdict
        | None -> (
            match Engine.step t.engine e.name with
            | Engine.Fault { fragment; reason } ->
                let v =
                  { Diag.name = Some e.name; time = e.time; index; fragment;
                    reason }
                in
                t.verdict <- Violated v;
                t.verdict
            | Engine.Ignored ->
                (* Alphabet events always have an owner or are
                   terminators. *)
                assert false
            | Engine.Completed -> (
                match t.kind with
                | Antecedent_kind { repeated } ->
                    if repeated then (
                      Engine.reset t.engine;
                      t.verdict)
                    else (
                      t.verdict <- Satisfied;
                      t.verdict)
                | Timed_kind { premise_last; last; _ } ->
                    (* The terminator is also the first event of the next
                       round. *)
                    Engine.reset_with t.engine e.name;
                    t.started <- None;
                    t.q_done <- false;
                    refresh_timed t ~premise_last ~last ~time:e.time;
                    t.verdict)
            | Engine.Progress | Engine.Advanced _ -> (
                match t.kind with
                | Antecedent_kind _ -> t.verdict
                | Timed_kind { premise_last; last; _ } ->
                    refresh_timed t ~premise_last ~last ~time:e.time;
                    t.verdict))
      end)

let step_name ?time t name =
  let time = match time with Some time -> time | None -> t.last_time in
  step t { Trace.name; time }

let finalize t ~now = check_time t ~now

let run ?mode ?final_time pattern tr =
  let t = create ?mode pattern in
  let rec feed = function
    | [] -> ()
    | e :: rest -> (
        match step t e with
        | Running | Satisfied -> feed rest
        | Violated _ -> ())
    in
  feed tr;
  let final_time =
    match final_time with Some ft -> ft | None -> Trace.end_time tr
  in
  finalize t ~now:final_time

let accepts ?final_time pattern tr =
  match run ?final_time pattern tr with
  | Running | Satisfied -> true
  | Violated _ -> false

let ops t = !(t.ops)
let reset_ops t = t.ops := 0

let space_bits t =
  let timed_bits =
    match t.kind with
    | Timed_kind _ -> (2 * 64) + 2 (* start/stop stamps + 2 status flags *)
    | Antecedent_kind _ -> 2 (* satisfied + repeated flags *)
  in
  Engine.space_bits t.engine + timed_bits

let acceptable t =
  match t.verdict with
  | Satisfied -> t.alpha
  | Violated _ -> Name.Set.empty
  | Running -> Engine.acceptable t.engine

let active_fragment t = Engine.active t.engine

let fragment_states t =
  List.init (Pattern.fragment_count t.pattern) (Engine.fragment_states t.engine)

let pp ppf t =
  Format.fprintf ppf "@[<v>monitor for %a@,verdict: %s@,%a@]" Pattern.pp
    t.pattern
    (match t.verdict with
    | Running -> "running"
    | Satisfied -> "satisfied"
    | Violated v -> Diag.violation_to_string v)
    Engine.pp t.engine
