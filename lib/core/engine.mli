(** Recognizer for a loose-ordering: the synchronous product of the range
    recognizers of the active fragment, composed sequentially across
    fragments (paper, Section 6).

    Only the recognizers of the active fragment execute on each event —
    this is what gives the Drct monitors their
    [Θ(maxᵢ |α(Fᵢ)|)] per-event time. *)

type outcome =
  | Progress  (** event consumed within the active fragment *)
  | Advanced of int
      (** active fragment completed; the event started fragment [i] *)
  | Completed
      (** a terminator completed the whole ordering; all recognizers are
          idle — call {!reset} or {!reset_with} to start a new round *)
  | Ignored  (** event outside [α ∪ terminators] *)
  | Fault of { fragment : int; reason : Diag.reason }

type t

val create : ?ops:int ref -> terminators:Name.Set.t -> Pattern.ordering -> t
(** The engine is created idle; call {!reset} before stepping. *)

val reset : t -> unit
(** Start a round with no simultaneous event: the first fragment's
    recognizers enter [Waiting]. *)

val reset_with : t -> Name.t -> unit
(** Start a round on an event (the terminator that closed the previous
    round of a timed pattern, which is also the new round's first
    event).  Raises [Invalid_argument] if the name is not in the first
    fragment's alphabet. *)

val step : t -> Name.t -> outcome

val active : t -> int
(** 0-based index of the active fragment; [-1] when idle. *)

val fragment_states : t -> int -> Recognizer.state list
val owner : t -> Name.t -> int option
(** Index of the fragment whose alphabet contains the name. *)

val active_min_complete : t -> bool
(** The active fragment could complete right now (every recognizer would
    answer [ok]/[nok] to an [Accept], with at least one [ok]). *)

val acceptable : t -> Name.Set.t
(** The names whose {!step} would not fault in the current
    configuration: continuations of the active fragment's open block,
    first occurrences of its other ranges, and — when the fragment could
    complete — the next fragment's names (or the terminators).  Empty
    when the engine is idle. *)

val space_bits : ?name_bits:int -> t -> int
val pp : Format.formatter -> t -> unit
