(** Recognition contexts — the attribute grammar of Fig. 4.

    Each range of a pattern is attributed with the tuple
    [(B, C, Ac, Af, s)] that parameterizes its recognizer (Fig. 5):

    - [B] ("before"): names of earlier fragments, forbidden while this
      range is being recognized;
    - [C] ("current"): names of the other ranges of the same fragment,
      allowed at block boundaries;
    - [Ac] ("accept"): names that stop the recognition of this fragment
      and start the next one — the alphabet of the following fragment,
      or the terminators for the last fragment;
    - [Af] ("after"): names of fragments beyond the next one (plus the
      terminators when this is not the last fragment), always forbidden;
    - [s]: the connective of the parent fragment.

    Terminators close the whole ordering: the antecedent trigger [{i}],
    or — for the concatenated [P·Q] ordering of a timed implication —
    the alphabet of [P]'s first fragment (a new round's first event). *)

type t = {
  range : Pattern.range;
  fragment_index : int;  (** 0-based position of the parent fragment *)
  connective : Pattern.connective;  (** [s] *)
  before : Name.Set.t;  (** [B] *)
  current : Name.Set.t;  (** [C] *)
  accept : Name.Set.t;  (** [Ac] *)
  after : Name.Set.t;  (** [Af] *)
}

type category =
  | Self  (** the range's own name [n] *)
  | Current  (** in [C] *)
  | Before  (** in [B] *)
  | Accept  (** in [Ac] *)
  | After  (** in [Af] *)
  | Outside  (** not in [α] — ignored by default *)

val of_ordering : terminators:Name.Set.t -> Pattern.ordering -> t list list
(** [of_ordering ~terminators l] attributes every range of [l]; result
    is indexed by fragment then by range, in syntactic order. *)

val of_pattern : Pattern.t -> t list list
(** Contexts for {!Pattern.body_ordering}, with the terminators implied
    by the root pattern. *)

val terminators : Pattern.t -> Name.Set.t

val classify : t -> Name.t -> category

val size : t -> int
(** [|B| + |C| + |Ac| + |Af|] — the stored-context size used by the
    space cost model. *)

val pp : Format.formatter -> t -> unit
val pp_category : Format.formatter -> category -> unit
val equal_category : category -> category -> bool
