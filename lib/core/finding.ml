type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  message : string;
  subject : string option;
  file : string option;
  line : int option;
  witness : string option;
}

let v ?subject ?file ?line ?witness severity code fmt =
  Format.kasprintf
    (fun message -> { severity; code; message; subject; file; line; witness })
    fmt

let with_origin ?subject ?file ?line f =
  let keep old fresh = match old with Some _ -> old | None -> fresh in
  {
    f with
    subject = keep f.subject subject;
    file = keep f.file file;
    line = keep f.line line;
  }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)
let rank = function Error -> 0 | Warning -> 1 | Info -> 2
let order fs = List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) fs

let exit_code fs =
  if List.exists (fun f -> f.severity = Error) fs then 2
  else if List.exists (fun f -> f.severity = Warning) fs then 1
  else 0

let suppress codes fs =
  List.filter (fun f -> not (List.mem f.code codes)) fs

let load_suppress_file path =
  match open_in path with
  | exception Sys_error e -> Stdlib.Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let codes = ref [] in
          (try
             while true do
               let line = input_line ic in
               let line =
                 match String.index_opt line '#' with
                 | Some i -> String.sub line 0 i
                 | None -> line
               in
               match String.trim line with
               | "" -> ()
               | code -> codes := code :: !codes
             done
           with End_of_file -> ());
          Stdlib.Ok (List.rev !codes))

(* ---- text ------------------------------------------------------------- *)

let pp ppf f =
  (match (f.file, f.line) with
  | Some file, Some line -> Format.fprintf ppf "%s:%d: " file line
  | Some file, None -> Format.fprintf ppf "%s: " file
  | None, _ -> ());
  Format.fprintf ppf "%a[%s]: %s" pp_severity f.severity f.code f.message;
  (match f.subject with
  | Some s -> Format.fprintf ppf "@ (%s)" s
  | None -> ());
  match f.witness with
  | Some w -> Format.fprintf ppf "@   witness: %s" w
  | None -> ()

let pp_list ppf fs =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline
    (fun ppf f -> Format.fprintf ppf "@[<v>%a@]" pp f)
    ppf fs

(* ---- json ------------------------------------------------------------- *)

let opt_field name conv = function
  | Some v -> [ (name, conv v) ]
  | None -> []

let finding_to_json f =
  Json.Obj
    ([
       ("severity", Json.String (severity_to_string f.severity));
       ("code", Json.String f.code);
       ("message", Json.String f.message);
     ]
    @ opt_field "subject" (fun s -> Json.String s) f.subject
    @ opt_field "file" (fun s -> Json.String s) f.file
    @ opt_field "line" (fun l -> Json.Int l) f.line
    @ opt_field "witness" (fun s -> Json.String s) f.witness)

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)

let to_json fs =
  Json.Obj
    [
      ("findings", Json.List (List.map finding_to_json fs));
      ("errors", Json.Int (count Error fs));
      ("warnings", Json.Int (count Warning fs));
      ("infos", Json.Int (count Info fs));
    ]

(* ---- SARIF 2.1.0 ------------------------------------------------------ *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let to_sarif ?(tool_name = "loseq") ?(tool_version = "1.0.0") ?(rules = [])
    fs =
  (* Every code used by a result needs a rule entry; preserve the
     documented descriptions where we have them. *)
  let codes =
    List.fold_left
      (fun acc f -> if List.mem f.code acc then acc else acc @ [ f.code ])
      (List.map fst rules) fs
  in
  let rule_index code =
    let rec find i = function
      | [] -> -1
      | c :: _ when String.equal c code -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 codes
  in
  let rule_objs =
    List.map
      (fun code ->
        let description =
          match List.assoc_opt code rules with
          | Some d -> d
          | None -> code
        in
        let default_level =
          match
            List.find_opt (fun f -> String.equal f.code code) fs
          with
          | Some f -> sarif_level f.severity
          | None -> "warning"
        in
        Json.Obj
          [
            ("id", Json.String code);
            ("shortDescription", Json.Obj [ ("text", Json.String description) ]);
            ( "defaultConfiguration",
              Json.Obj [ ("level", Json.String default_level) ] );
          ])
      codes
  in
  let result f =
    let location =
      match f.file with
      | None -> []
      | Some file ->
          let region =
            match f.line with
            | Some line -> [ ("region", Json.Obj [ ("startLine", Json.Int line) ]) ]
            | None -> []
          in
          let logical =
            match f.subject with
            | Some s ->
                [
                  ( "logicalLocations",
                    Json.List [ Json.Obj [ ("name", Json.String s) ] ] );
                ]
            | None -> []
          in
          [
            ( "locations",
              Json.List
                [
                  Json.Obj
                    ([
                       ( "physicalLocation",
                         Json.Obj
                           ([
                              ( "artifactLocation",
                                Json.Obj [ ("uri", Json.String file) ] );
                            ]
                           @ region) );
                     ]
                    @ logical);
                ] );
          ]
    in
    let properties =
      let props =
        opt_field "subject" (fun s -> Json.String s) f.subject
        @ opt_field "witness" (fun s -> Json.String s) f.witness
      in
      match props with [] -> [] | _ -> [ ("properties", Json.Obj props) ]
    in
    Json.Obj
      ([
         ("ruleId", Json.String f.code);
         ("ruleIndex", Json.Int (rule_index f.code));
         ("level", Json.String (sarif_level f.severity));
         ("message", Json.Obj [ ("text", Json.String f.message) ]);
       ]
      @ location @ properties)
  in
  Json.Obj
    [
      ("$schema", Json.String "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String tool_name);
                            ("version", Json.String tool_version);
                            ( "informationUri",
                              Json.String
                                "https://example.org/loseq" );
                            ("rules", Json.List rule_objs);
                          ] );
                    ] );
                ("results", Json.List (List.map result fs));
              ];
          ] );
    ]

(* ---- dispatch --------------------------------------------------------- *)

type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Ok Text
  | "json" -> Ok Json
  | "sarif" -> Ok Sarif
  | other -> Error (Printf.sprintf "unknown format %S" other)

let render ?tool_name ?tool_version ?rules format ppf fs =
  match format with
  | Text -> Format.fprintf ppf "%a@." pp_list fs
  | Json -> Format.fprintf ppf "%a@." Json.pp (to_json fs)
  | Sarif ->
      Format.fprintf ppf "%a@." Json.pp
        (to_sarif ?tool_name ?tool_version ?rules fs)
