(** A linter for loose-ordering patterns.

    Well-formedness ({!Wellformed}) rejects meaningless patterns; the
    linter flags {e legal but suspicious} ones — specifications that are
    weaker, stricter or more expensive than their author probably
    intended.  Results are shared {!Finding.t} values (codes are stable
    strings suitable for suppression lists in build tooling), rendered
    by the same text/JSON/SARIF pipeline as the semantic analyzer.

    Lint checks are {e syntactic} heuristics: cheap pattern-shape
    inspections.  The semantic decision procedures over the compiled
    automaton (vacuity, deadline feasibility, suite subsumption and
    conflicts) live in [Loseq_analysis]. *)

val lint : Pattern.t -> Finding.t list
(** Findings in a stable order (warnings first; lint never emits
    errors).  Raises {!Wellformed.Ill_formed} on an ill-formed pattern.

    Current checks:
    - [singleton-disjunction] (warning): a [∨] fragment with one range
      is the same as [∧] — probably a typo for a larger choice;
    - [zero-deadline] (warning): a deadline of 0 forces the whole
      conclusion to share the premise's last timestamp;
    - [tight-deadline] (warning): the conclusion needs at least [k]
      events but the deadline allows fewer time units than [k-1] —
      satisfiable only with simultaneous events (the analyzer's
      [deadline-infeasible] is the exact, automaton-derived version);
    - [wide-range] (warning): a range wider than 1024 makes any
      PSL-based toolchain infeasible (the paper's point) — harmless for
      the Drct monitors but worth knowing;
    - [huge-counter] (info): a bound above 100000 costs extra counter
      bits;
    - [state-space] (info): estimated explicit product states, when the
      modular monitor is replaced by a materialized DFA; estimates
      beyond the internal cap are reported as ["≥ cap"], never as an
      exact-looking number;
    - [unbounded-trigger] (info): a non-repeated antecedent stops
      checking after the first trigger — often [<<!] was meant. *)

val min_events : Pattern.ordering -> int
(** Lower bound on the number of events a full match of the ordering
    needs ([∧]: sum of the lower bounds, [∨]: their minimum) — exposed
    as the syntactic oracle the analyzer's automaton-based deadline
    procedure is cross-validated against. *)

val pp_finding : Format.formatter -> Finding.t -> unit
val pp : Format.formatter -> Finding.t list -> unit
