(** A linter for loose-ordering patterns.

    Well-formedness ({!Wellformed}) rejects meaningless patterns; the
    linter flags {e legal but suspicious} ones — specifications that are
    weaker, stricter or more expensive than their author probably
    intended.  Codes are stable strings suitable for suppression lists
    in build tooling. *)

type severity = Info | Warning

type finding = {
  severity : severity;
  code : string;  (** e.g. ["wide-range"] *)
  message : string;
}

val lint : Pattern.t -> finding list
(** Findings in a stable order (warnings first).  Raises
    {!Wellformed.Ill_formed} on an ill-formed pattern.

    Current checks:
    - [singleton-disjunction] (warning): a [∨] fragment with one range
      is the same as [∧] — probably a typo for a larger choice;
    - [zero-deadline] (warning): a deadline of 0 forces the whole
      conclusion to share the premise's last timestamp;
    - [tight-deadline] (warning): the conclusion needs at least [k]
      events but the deadline allows fewer time units than [k-1] —
      satisfiable only with simultaneous events;
    - [wide-range] (warning): a range wider than 1024 makes any
      PSL-based toolchain infeasible (the paper's point) — harmless for
      the Drct monitors but worth knowing;
    - [huge-counter] (info): a bound above 100000 costs extra counter
      bits;
    - [state-space] (info): estimated explicit product states, when the
      modular monitor is replaced by a materialized DFA;
    - [unbounded-trigger] (info): a non-repeated antecedent stops
      checking after the first trigger — often [<<!] was meant. *)

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> finding list -> unit
