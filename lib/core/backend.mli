(** The unified monitor-backend interface.

    Three monitor strategies coexist in the code base: the structural
    {!Monitor} (the paper's Drct construction, literally — rich
    diagnostics, coverage-grade introspection), the flat-table
    {!Compiled} fast path (a step is a handful of array reads) and the
    formula-progression ViaPSL monitor of [Loseq_psl.Progress].  Before
    this module each hosting layer (checkers, suites, the CLI, the SoC
    case study) was hard-wired to one of them; now every host targets
    one value type, {!t}, and a backend is chosen per checker with a
    [Pattern.t -> t] factory.

    A backend is a record of closures over hidden monitor state — the
    OCaml idiom for a first-class object with capabilities.  The
    mandatory operations are the hosting contract
    ([step]/[check_time]/[next_deadline]/[finalize]/[verdict]/[reset]);
    optional capabilities ([states], [acceptable], [ops]) expose what
    only some strategies can provide, and hosts degrade gracefully when
    they are [None].

    Verdicts are {e shared} with {!Monitor} (the type equation below),
    so existing verdict-matching code hosts any backend unchanged.
    Backends whose native diagnostics are coarser (compiled, PSL)
    synthesize a {!Diag.violation} with what they know. *)

type verdict = Monitor.verdict =
  | Running
  | Satisfied
  | Violated of Diag.violation

type t = {
  label : string;  (** ["direct"], ["compiled"], ["psl"], ... *)
  pattern : Pattern.t;
  alphabet : Name.Set.t;
      (** [α(pattern)] — the routing key: a hosting layer must deliver
          every event whose name is in this set and may skip all
          others. *)
  step : Trace.event -> verdict;
      (** Consume one event.  Sticky after a decided verdict.  Events
          outside {!alphabet} are ignored (lenient). *)
  prepare : Name.t -> int -> verdict;
      (** [prepare name] resolves [name] once (interning, category-row
          lookup, ...) and returns a stepper [fun time -> ...]
          equivalent to [step { name; time }] — the fast path for a
          per-name-routed host that subscribes one closure per alphabet
          name. *)
  check_time : now:int -> verdict;
      (** Report a deadline miss if [now] exceeds an armed deadline. *)
  next_deadline : unit -> int option;
      (** Earliest time at which {!check_time} could report a violation
          — for scheduling a single timeout in a simulation host. *)
  finalize : now:int -> verdict;  (** End of observation at [now]. *)
  verdict : unit -> verdict;
  reset : unit -> unit;
      (** Back to the initial configuration; compiled tables are
          reused, structural monitors are rebuilt. *)
  states : (unit -> Recognizer.state list list) option;
      (** Recognizer states per fragment, for state coverage
          (structural backend only). *)
  acceptable : (unit -> Name.Set.t) option;
      (** Names tolerated as the next event (structural backend
          only). *)
  ops : (unit -> int) option;
      (** Elementary operations executed so far, when the strategy
          meters them. *)
  persist : (unit -> Compiled.persisted) option;
      (** Exact serializable run state, for checkpoint/resume of
          streaming monitors (compiled backend only). *)
  restore : (Compiled.persisted -> unit) option;
      (** Overwrite the run state with a {!t.persist}ed one (compiled
          and flat backends; same-pattern monitors). *)
  engine : Flat.t option;
      (** The shared suite engine this backend is a view of (flat
          backend only).  Hosts that can exploit suite-level sharing —
          engine-direct dispatch, one-blob checkpoints — discover it
          here; everyone else treats the view as an ordinary
          per-checker backend. *)
}

val make :
  label:string ->
  pattern:Pattern.t ->
  ?alphabet:Name.Set.t ->
  step:(Trace.event -> verdict) ->
  ?prepare:(Name.t -> int -> verdict) ->
  ?check_time:(now:int -> verdict) ->
  ?next_deadline:(unit -> int option) ->
  ?finalize:(now:int -> verdict) ->
  verdict:(unit -> verdict) ->
  reset:(unit -> unit) ->
  ?states:(unit -> Recognizer.state list list) ->
  ?acceptable:(unit -> Name.Set.t) ->
  ?ops:(unit -> int) ->
  ?persist:(unit -> Compiled.persisted) ->
  ?restore:(Compiled.persisted -> unit) ->
  ?engine:Flat.t ->
  unit ->
  t
(** Build a backend, defaulting the optional operations: [alphabet]
    defaults to [Pattern.alpha pattern]; [prepare] to a [step] wrapper;
    [check_time]/[finalize] to deadline-free no-ops returning the
    current verdict; [next_deadline] to [fun () -> None]. *)

(** {1 Factories} *)

type factory = Pattern.t -> t
(** What hosts take as a [?backend] argument.  Factories raise
    {!Wellformed.Ill_formed} on ill-formed patterns (and the ViaPSL
    factory additionally [Invalid_argument] on ranges too wide to
    materialize a formula). *)

val direct : ?mode:Monitor.mode -> factory
(** The structural {!Monitor}: rich diagnostics, state coverage,
    [acceptable], metered ops.  [mode] defaults to lenient; strict mode
    only makes sense for a host that delivers {e all} events, not just
    the alphabet-routed ones. *)

val compiled : factory
(** The {!Compiled} flat-table fast path — the production default. *)

type suite_factory = (string * Pattern.t) list -> t array
(** Suite-level compilation: hosts that monitor a whole labelled suite
    hand it over in one call so the factory can share state across
    checkers.  The returned array is in entry order. *)

val flat_suite : (string * Pattern.t) list -> Flat.t * t array
(** Compile the whole suite into one {!Flat} engine and return it with
    one backend view per entry (label ["flat"]).  The views share the
    engine's packed state array; each also carries it in {!t.engine}. *)

val flat_views : suite_factory
(** {!flat_suite} without the engine handle — what generic
    [?suite_backend] host parameters take. *)

val flat_engine_views : Flat.t -> t array
(** Backend views over an {e existing} engine — e.g. one produced by
    {!Flat.slice}, so a sharded host can lift each shard's sub-engine
    without recompiling the suite. *)

val flat : factory
(** A single-pattern flat engine (a one-entry suite) — [--backend flat]
    on per-pattern hosts.  The suite-level entry points above are where
    the flavor earns its keep. *)

val of_monitor : Monitor.t -> t
(** Wrap an existing structural monitor ([reset] rebuilds it in lenient
    mode). *)

val of_compiled : Compiled.t -> t
(** Wrap an existing compiled monitor ([reset] reuses its tables). *)

(** {1 Signature-style extension}

    Strategies implemented outside this library (the ViaPSL progression
    monitor, future remote/sharded monitors) implement
    {!MONITOR_BACKEND} and {!pack} it, or build a {!t} directly with
    {!make}. *)

module type MONITOR_BACKEND = sig
  type state

  val label : string
  val create : Pattern.t -> state
  val alphabet : state -> Name.Set.t
  val step : state -> Trace.event -> verdict
  val check_time : state -> now:int -> verdict
  val next_deadline : state -> int option
  val finalize : state -> now:int -> verdict
  val verdict : state -> verdict
  val reset : state -> unit
end

val pack : (module MONITOR_BACKEND) -> factory

(** {1 Telemetry} *)

val instrument : Loseq_obs.Metrics.t -> t -> t
(** The same backend with its [step]/[prepare] paths counting into
    [loseq_backend_steps_total{backend=label}] on the given registry.
    Hosts apply this only when handed a live sink — an uninstrumented
    backend stays closure-for-closure what the factory built. *)

(** {1 Helpers} *)

val passed : verdict -> bool
(** [true] unless [Violated]. *)

(** {1 Three-valued in-flight verdicts}

    A speculative host ({!Loseq_ooo.Engine}) evaluates events the
    moment they arrive, so its per-checker verdict carries an extra
    dimension: has the watermark passed the decision point, making it
    definitive?  [Pass]/[Fail] are {e settled} — no admissible late
    event can change them; [Unsettled] verdicts may still be rolled
    back and replayed. *)

type tri = Pass | Fail | Unsettled

val tri_of_verdict : settled:bool -> verdict -> tri
(** [Unsettled] unless [settled]; then [Fail] for [Violated],
    [Pass] otherwise. *)

val tri_to_string : tri -> string
(** ["pass"], ["fail"] or ["unsettled"]. *)

val pp_tri : Format.formatter -> tri -> unit

val supports_rollback : t -> bool
(** Both {!t.persist} and {!t.restore} present — the capability a
    snapshot/rollback host requires (compiled and flat backends). *)

val pp_verdict : Format.formatter -> verdict -> unit
(** ["pass (running)"], ["pass (satisfied)"] or ["FAIL: ..."] — the
    rendering hosts print in reports. *)
