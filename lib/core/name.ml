type t = string

let valid_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
  | _ -> false

let v s =
  if String.length s = 0 then invalid_arg "Name.v: empty name";
  String.iter
    (fun c ->
      if not (valid_char c) then
        invalid_arg (Printf.sprintf "Name.v: invalid character %C in %S" c s))
    s;
  s

let to_string s = s
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

module Set = Set.Make (String)
module Map = Map.Make (String)

let set_of_list names = Set.of_list names

let pp_set ppf set =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp)
    (Set.elements set)
