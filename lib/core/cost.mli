(** Cost model for the Drct monitors (paper, Section 7).

    Two kinds of numbers are produced:

    - {e analytic} costs, from a closed-form model calibrated on the six
      configurations of Fig. 6.  The model reproduces the paper's Drct
      column exactly:
      [ops = 30 + 50·S + 66·timed] and
      [bits = round((4 + 480·R + 92·X) / 3) + 11·timed], where [S] is
      the total number of names, [R] the number of ranges and [X] the
      total stored-context size [Σ (|B|+|C|+|Ac|+|Af|)];
    - {e asymptotic} parameters, the paper's Θ-expressions:
      time [Θ(maxᵢ |α(Fᵢ)|)] and space [Θ(Σᵢ |α(Fᵢ)|)], with counter
      values bounded by [max vᵢ].

    Measured values from the actual OCaml monitors are available through
    {!Monitor.ops} and {!Monitor.space_bits}. *)

type t = { ops_per_event : int; space_bits : int }

val drct : Pattern.t -> t
(** Analytic model (see above). *)

val time_theta : Pattern.t -> int
(** [maxᵢ |α(Fᵢ)|] — the Drct per-event time parameter. *)

val space_theta : Pattern.t -> int
(** [Σᵢ |α(Fᵢ)|] — the Drct space parameter. *)

val max_counter : Pattern.t -> int
(** [max vᵢ] — the largest value a recognizer counter can hold. *)

val measured : Pattern.t -> Trace.t -> t
(** Run the real monitor on [tr] and report the mean number of executed
    elementary operations per event, and the monitor's actual storage
    bits. *)

val pp : Format.formatter -> t -> unit
