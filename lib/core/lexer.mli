(** Tokenizer for the concrete pattern syntax (see {!Parser}). *)

type token =
  | NAME of string
  | INT of int
  | LBRACE  (** [{] *)
  | RBRACE  (** [}] *)
  | LBRACKET  (** [[] *)
  | RBRACKET  (** []] *)
  | COMMA  (** [,] *)
  | PIPE  (** [|] *)
  | LT  (** [<] *)
  | LTLT  (** [<<] *)
  | LTLTBANG  (** [<<!] *)
  | IMPLIES  (** [=>] *)
  | WITHIN  (** keyword [within] *)
  | EOF

type located = { token : token; position : int }
(** [position] is a 0-based byte offset into the source. *)

exception Lex_error of { message : string; position : int }

val tokenize : string -> located list
(** Raises {!Lex_error} on an unexpected character or malformed
    number. *)

val pp_token : Format.formatter -> token -> unit
