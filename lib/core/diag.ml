type reason =
  | Before_name
  | After_name
  | Overflow of Pattern.range
  | Underflow of Pattern.range
  | Reentered of Pattern.range
  | Missing of Pattern.range
  | Empty_fragment
  | Trigger_early
  | Deadline_miss of { started : int; deadline : int; now : int }
  | Late_conclusion of { deadline : int; at : int }
  | Foreign of Name.t
  | Formula_falsified

type violation = {
  name : Name.t option;
  time : int;
  index : int;
  fragment : int;
  reason : reason;
}

let pp_reason ppf = function
  | Before_name -> Format.pp_print_string ppf "name of an earlier fragment"
  | After_name -> Format.pp_print_string ppf "name of a later fragment"
  | Overflow r ->
      Format.fprintf ppf "more than %d occurrence(s) of %a" r.hi Name.pp
        r.name
  | Underflow r ->
      Format.fprintf ppf "block of %a ended before %d occurrence(s)" Name.pp
        r.name r.lo
  | Reentered r ->
      Format.fprintf ppf "second block for range %a" Pattern.pp_range r
  | Missing r ->
      Format.fprintf ppf "required range %a never occurred" Pattern.pp_range r
  | Empty_fragment ->
      Format.pp_print_string ppf "disjunctive fragment matched no range"
  | Trigger_early ->
      Format.pp_print_string ppf "trigger before its antecedent was observed"
  | Deadline_miss { started; deadline; now } ->
      Format.fprintf ppf
        "conclusion not finished by t=%d (premise ended at %d, checked at %d)"
        deadline started now
  | Late_conclusion { deadline; at } ->
      Format.fprintf ppf "conclusion event at t=%d after deadline t=%d" at
        deadline
  | Foreign n -> Format.fprintf ppf "foreign event %a" Name.pp n
  | Formula_falsified ->
      Format.pp_print_string ppf "PSL residual obligation falsified"

let pp_violation ppf v =
  Format.fprintf ppf "@[<h>violation at t=%d" v.time;
  (match v.name with
  | Some n -> Format.fprintf ppf " on %a (event #%d)" Name.pp n v.index
  | None -> ());
  Format.fprintf ppf ", fragment %d: %a@]" v.fragment pp_reason v.reason

let violation_to_string v = Format.asprintf "%a" pp_violation v

let equal_reason (a : reason) (b : reason) = a = b
