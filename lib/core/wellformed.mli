(** Well-formedness of loose-ordering patterns (paper, Fig. 3, right column).

    The structural constraints are:
    - ranges of a fragment use pairwise distinct names
      ([i ≠ j ⟹ α(Ri) ∩ α(Rj) = ∅]);
    - fragments of a loose-ordering use pairwise disjoint alphabets
      ([i ≠ j ⟹ α(Fi) ∩ α(Fj) = ∅]), including across the [P]/[Q] parts of
      a timed implication;
    - the trigger [i] of an antecedent does not appear in its body
      ([α(P) ∩ {i} = ∅]).

    Bound validity ([1 ≤ u ≤ v], non-negative deadline, non-empty
    fragments/orderings) is already enforced by the {!Pattern}
    constructors. *)

type error =
  | Shared_name of Name.t
      (** a name appears in two ranges or two fragments of the pattern *)
  | Trigger_in_body of Name.t
      (** the antecedent trigger also appears in [P] *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val check : Pattern.t -> (unit, error list) result
(** [check p] is [Ok ()] when [p] is a well-formed formula, and
    [Error errs] listing every violated constraint otherwise. *)

val is_well_formed : Pattern.t -> bool

exception Ill_formed of Pattern.t * error list

val check_exn : Pattern.t -> unit
(** [check_exn p] raises {!Ill_formed} when [check p] is an [Error]. *)
