type outcome =
  | Progress
  | Advanced of int
  | Completed
  | Ignored
  | Fault of { fragment : int; reason : Diag.reason }

type t = {
  fragments : Recognizer.t array array;
  owners : (Name.t, int) Hashtbl.t;
  terminators : Name.Set.t;
  ops : int ref;
  mutable active : int;
}

let create ?(ops = ref 0) ~terminators ordering =
  let contexts = Context.of_ordering ~terminators ordering in
  let fragments =
    Array.of_list
      (List.map
         (fun ctxs ->
           Array.of_list (List.map (fun ctx -> Recognizer.create ~ops ctx) ctxs))
         contexts)
  in
  let owners = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Pattern.fragment) ->
      List.iter
        (fun (r : Pattern.range) -> Hashtbl.replace owners r.name i)
        f.ranges)
    ordering;
  { fragments; owners; terminators; ops; active = -1 }

let tick t n = t.ops := !(t.ops) + n

let reset t =
  Array.iter (fun frag -> Array.iter Recognizer.reset frag) t.fragments;
  t.active <- 0;
  Array.iter Recognizer.start t.fragments.(0)

let reset_with t name =
  Array.iter (fun frag -> Array.iter Recognizer.reset frag) t.fragments;
  t.active <- 0;
  Array.iter
    (fun r ->
      let category = Context.classify (Recognizer.context r) name in
      Recognizer.start_with r category)
    t.fragments.(0)

let active t = t.active

let fragment_states t i =
  Array.to_list (Array.map Recognizer.state t.fragments.(i))

let owner t name = Hashtbl.find_opt t.owners name

let fragment_connective t i =
  (Recognizer.context t.fragments.(i).(0)).Context.connective

(* Step every recognizer of the active fragment on an event of its own
   alphabet; only [Quiet] or [Err] can come back. *)
let step_within t name =
  let frag = t.fragments.(t.active) in
  let fault = ref None in
  Array.iter
    (fun r ->
      tick t 1;
      let category = Context.classify (Recognizer.context r) name in
      match Recognizer.step r category with
      | Recognizer.Quiet -> ()
      | Recognizer.Err reason ->
          if !fault = None then
            fault := Some (Fault { fragment = t.active; reason })
      | Recognizer.Ok | Recognizer.Nok ->
          (* [Accept] is impossible: the event is in the fragment's own
             alphabet. *)
          assert false)
    frag;
  match !fault with Some f -> f | None -> Progress

(* Deliver [Accept] to every recognizer of the active fragment and
   combine the verdicts: any [err] fails; a disjunctive fragment further
   needs at least one [ok] (an all-[nok] fragment matched the empty
   word). *)
let complete_active t =
  let frag = t.fragments.(t.active) in
  let fault = ref None in
  let oks = ref 0 in
  Array.iter
    (fun r ->
      tick t 1;
      match Recognizer.step r Context.Accept with
      | Recognizer.Ok -> incr oks
      | Recognizer.Nok -> ()
      | Recognizer.Err reason ->
          if !fault = None then
            fault := Some (Fault { fragment = t.active; reason })
      | Recognizer.Quiet -> assert false)
    frag;
  match !fault with
  | Some f -> Error f
  | None ->
      if !oks = 0 && fragment_connective t t.active = Pattern.Any then
        Error (Fault { fragment = t.active; reason = Diag.Empty_fragment })
      else Ok ()

let start_fragment_with t i name =
  t.active <- i;
  Array.iter
    (fun r ->
      tick t 1;
      let category = Context.classify (Recognizer.context r) name in
      Recognizer.start_with r category)
    t.fragments.(i)

let step t name =
  if t.active < 0 then invalid_arg "Engine.step: engine is idle";
  tick t 2;
  let last = Array.length t.fragments - 1 in
  let owner = Hashtbl.find_opt t.owners name in
  match owner with
  | Some f when f = t.active -> step_within t name
  | _ -> (
      if t.active = last && Name.Set.mem name t.terminators then
        match complete_active t with
        | Ok () ->
            t.active <- -1;
            Completed
        | Error fault -> fault
      else
        match owner with
        | Some f when f = t.active + 1 -> (
            match complete_active t with
            | Ok () ->
                start_fragment_with t f name;
                Advanced f
            | Error fault -> fault)
        | Some f when f < t.active ->
            Fault { fragment = t.active; reason = Diag.Before_name }
        | Some _ -> Fault { fragment = t.active; reason = Diag.After_name }
        | None ->
            if Name.Set.mem name t.terminators then
              Fault { fragment = t.active; reason = Diag.Trigger_early }
            else Ignored)

let active_min_complete t =
  t.active >= 0
  &&
  let frag = t.fragments.(t.active) in
  let oks = ref 0 in
  let viable =
    Array.for_all
      (fun r ->
        match Recognizer.would_accept r with
        | Recognizer.Ok ->
            incr oks;
            true
        | Recognizer.Nok -> true
        | Recognizer.Err _ -> false
        | Recognizer.Quiet -> assert false)
      frag
  in
  viable && !oks > 0

(* Would stepping [name] avoid a fault right now?  Mirrors [step]
   without mutating. *)
let name_acceptable t last name =
  match Hashtbl.find_opt t.owners name with
  | Some f when f = t.active ->
      Array.for_all
        (fun r ->
          match
            (Context.classify (Recognizer.context r) name, Recognizer.state r)
          with
          | Context.Self, (Recognizer.Waiting | Recognizer.Waiting_started) ->
              true
          | Context.Self, Recognizer.Counting c ->
              c < (Recognizer.context r).Context.range.Pattern.hi
          | Context.Self, Recognizer.Done_counting _ -> false
          | Context.Current, Recognizer.Counting c ->
              c >= (Recognizer.context r).Context.range.Pattern.lo
          | Context.Current,
            ( Recognizer.Waiting | Recognizer.Waiting_started
            | Recognizer.Done_counting _ ) ->
              true
          | (Context.Self | Context.Current),
            (Recognizer.Idle | Recognizer.Failed) ->
              false
          | ( ( Context.Before | Context.Accept | Context.After
              | Context.Outside ),
              _ ) ->
              (* Impossible for a name of the active fragment. *)
              false)
        t.fragments.(t.active)
  | Some f when f = t.active + 1 -> active_min_complete t
  | Some _ -> false
  | None ->
      t.active = last
      && Name.Set.mem name t.terminators
      && active_min_complete t

let acceptable t =
  if t.active < 0 then Name.Set.empty
  else begin
    let last = Array.length t.fragments - 1 in
    let candidates =
      Hashtbl.fold (fun name _ acc -> Name.Set.add name acc) t.owners
        t.terminators
    in
    Name.Set.filter
      (fun name ->
        if
          t.active = last
          && Name.Set.mem name t.terminators
          && Hashtbl.mem t.owners name
        then active_min_complete t
        else name_acceptable t last name)
      candidates
  end

let space_bits ?name_bits t =
  let bits_for n =
    let rec loop n acc = if n = 0 then max acc 1 else loop (n lsr 1) (acc + 1) in
    loop n 0
  in
  Array.fold_left
    (fun acc frag ->
      Array.fold_left
        (fun acc r -> acc + Recognizer.space_bits ?name_bits r)
        acc frag)
    (bits_for (Array.length t.fragments + 1))
    t.fragments

let pp ppf t =
  Format.fprintf ppf "@[<v>active fragment: %d" t.active;
  Array.iteri
    (fun i frag ->
      Format.fprintf ppf "@,F%d:" i;
      Array.iter (fun r -> Format.fprintf ppf " %a" Recognizer.pp r) frag)
    t.fragments;
  Format.fprintf ppf "@]"
