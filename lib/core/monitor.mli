(** Direct SystemC-style monitors for loose-ordering patterns
    (the paper's Drct strategy, Section 6).

    A monitor consumes the timed event stream observed at a component's
    interface and reports a {!verdict}.  Violations are reported as soon
    as a prefix can no longer be extended into a correct behaviour
    (safety semantics); the timed-implication deadline additionally
    needs either timed events or {!check_time}/{!finalize} polls to be
    detected, exactly like the [sc_time]-based monitor of the paper.

    Timed-implication semantics (the paper leaves corner cases open; see
    DESIGN.md): the deadline clock starts — and re-arms — at every
    premise event after which the premise is minimally recognized ("the
    end of P"); the conclusion must reach its own minimal recognition
    within [t] time units of that point, and every event of the
    conclusion's occurrence must also happen within the deadline. *)

type verdict =
  | Running  (** no violation so far; obligations may be pending *)
  | Satisfied
      (** non-repeated antecedent discharged: no violation can ever occur *)
  | Violated of Diag.violation

type mode =
  | Lenient  (** events outside [α(pattern)] are ignored (default) *)
  | Strict  (** events outside [α(pattern)] are violations *)

type t

val create : ?mode:mode -> ?ops:int ref -> Pattern.t -> t
(** Raises {!Wellformed.Ill_formed} on an ill-formed pattern. *)

val pattern : t -> Pattern.t

val alphabet : t -> Name.Set.t
(** [α(pattern)], computed once at creation — the routing key a hosting
    layer uses to deliver only relevant events. *)

val verdict : t -> verdict

val step : t -> Trace.event -> verdict
(** Consume one event.  After a verdict other than {!Running}, further
    events are ignored and the verdict is sticky. *)

val step_name : ?time:int -> t -> Name.t -> verdict
(** [step_name m n] is [step m { name = n; time }]; [time] defaults to
    the time of the previous event (0 initially). *)

val check_time : t -> now:int -> verdict
(** Report a deadline miss if simulation time [now] exceeds an armed
    deadline with the conclusion unfinished.  No-op on antecedents. *)

val next_deadline : t -> int option
(** The earliest simulation time at which {!check_time} could report a
    violation — for scheduling a timeout in a simulation host. *)

val finalize : t -> now:int -> verdict
(** End of observation at time [now]: a final {!check_time}. *)

val run : ?mode:mode -> ?final_time:int -> Pattern.t -> Trace.t -> verdict
(** Feed a whole trace then {!finalize} (at the trace's end time by
    default). *)

val accepts : ?final_time:int -> Pattern.t -> Trace.t -> bool
(** [accepts p tr] is [true] iff {!run} does not report a violation. *)

val ops : t -> int
(** Elementary operations executed so far (the paper's time metric). *)

val reset_ops : t -> unit

val space_bits : t -> int
(** Bits of monitor storage (the paper's space metric): recognizer
    states, counters, stored contexts, the active-fragment index and —
    for timed patterns — the two time stamps. *)

val active_fragment : t -> int
(** 0-based index of the active fragment ([-1] once satisfied). *)

val fragment_states : t -> Recognizer.state list list
(** Current recognizer states, per fragment then per range — exposed
    for coverage collection. *)

val acceptable : t -> Name.Set.t
(** The alphabet names the monitor would tolerate as the next event: the
    whole alphabet once satisfied, nothing once violated, and otherwise
    the continuations the recognizers allow.  Time is not modelled: for
    a timed pattern an "acceptable" event can still miss the deadline if
    it arrives too late. *)

val pp : Format.formatter -> t -> unit
