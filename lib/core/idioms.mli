(** A library of recurring loose-ordering property shapes.

    Hardware interface contracts keep re-using the same few shapes: some
    configuration in any order before a commit point, a request followed
    by a bounded burst and a completion, independent channels that must
    all deliver before a response.  This module names those shapes once,
    so property suites read as intent rather than as raw patterns.

    All functions raise [Invalid_argument]/{!Wellformed.Ill_formed} like
    the underlying {!Pattern} constructors when given nonsense (empty
    register lists, duplicate names, negative deadlines...). *)

val config_before_commit :
  ?repeated:bool -> registers:string list -> commit:string -> unit -> Pattern.t
(** The case study's Example 2 shape: every [register] written at least
    once, any order, before [commit].  [repeated] (default false)
    demands a fresh configuration before every commit. *)

val handshake : req:string -> ack:string -> within:int -> Pattern.t
(** [(req ⇒ ack, within)] — every request acknowledged in time. *)

val burst :
  trigger:string ->
  beat:string ->
  lo:int ->
  hi:int ->
  done_:string ->
  within:int ->
  Pattern.t
(** The case study's Example 3 shape:
    [(trigger ⇒ beat[lo,hi] < done_, within)]. *)

val any_of_before :
  ?repeated:bool -> choices:string list -> trigger:string -> unit -> Pattern.t
(** At least one of [choices] (in any combination) must precede
    [trigger] — a disjunctive antecedent. *)

val staged_startup : stages:string list list -> go:string -> Pattern.t
(** Bring-up in phases: each stage is a set of actions in any order, the
    stages strictly ordered, all before [go].  E.g.
    [staged_startup ~stages:[["pll_en"]; ["clk_a"; "clk_b"]] ~go:"release_reset"]. *)

val axi_write :
  ?aw:string -> ?w:string -> ?b:string -> within:int -> unit -> Pattern.t
(** The AXI4-Lite write transaction as a loose-ordering: the address
    ([aw], default ["aw_valid"]) and data ([w], default ["w_valid"])
    handshakes happen in either order, then the response ([b], default
    ["b_valid"]) follows within the deadline:
    [({aw, w}, ∧) ⇒ b within t]. *)

val producer_consumer :
  push:string -> pop:string -> depth:int -> Pattern.t
(** A FIFO of capacity [depth] must be popped before it can have been
    pushed more than [depth] times in a row:
    [(push[1,depth] << pop, repeated)] — each pop requires between 1 and
    [depth] preceding pushes since the last pop. *)
