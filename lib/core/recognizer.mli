(** Elementary recognizer for a range with context — the Fig. 5 automaton.

    States (paper names in parentheses):
    - {!Idle} (s0): not started;
    - {!Waiting} (s1): started, no name of the parent fragment seen yet;
    - {!Waiting_started} (s2): started, another range of the fragment has
      begun, this one still waits for its first occurrence;
    - [Counting c] (s3): counting consecutive occurrences, [cpt = c];
    - [Done_counting c] (s4): the block ended with an admissible count,
      another range of the fragment is running;
    - {!Failed} (s5): error (absorbing).

    Inputs are pre-classified event {{!Context.category}categories};
    outputs mirror the automaton's [ok]/[nok]/[err] wires.  The [ops]
    counter passed at creation is incremented by every elementary
    operation the recognizer executes (the paper's time metric). *)

type state =
  | Idle
  | Waiting
  | Waiting_started
  | Counting of int
  | Done_counting of int
  | Failed

type output =
  | Quiet  (** still recognizing *)
  | Ok  (** block recognized; recognizer returned to {!Idle} *)
  | Nok  (** skipped (disjunctive fragment); returned to {!Idle} *)
  | Err of Diag.reason  (** violation; recognizer in {!Failed} *)

type t

val create : ?ops:int ref -> Context.t -> t
val context : t -> Context.t
val state : t -> state

val start : t -> unit
(** Bare [start] (s0 → s1): the fragment becomes active with no
    simultaneous event. *)

val start_with : t -> Context.category -> unit
(** [start ∧ event]: the fragment becomes active on the event that
    stopped the previous fragment.  [Self] enters [Counting 1],
    [Current] enters {!Waiting_started} (s0 → s3 / s0 → s2). *)

val step : t -> Context.category -> output
(** Consume one classified event.  Stepping an {!Idle} recognizer, or a
    {!Failed} one, is a programming error and raises
    [Invalid_argument]. *)

val would_accept : t -> output
(** The output {!step} would produce on an [Accept] event, without
    changing the state — used for min-completion tests. *)

val reset : t -> unit
(** Back to {!Idle}. *)

val space_bits : ?name_bits:int -> t -> int
(** Bits of storage: 3 (state tag) + counter width + stored context
    names at [name_bits] each (default 8). *)

val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
