type t = {
  alphabet : Name.t array;
  num_states : int;
  initial : int;
  transitions : int array array;
  accepting : bool array;
  sink : int option;
}

exception Too_many_states of int

(* A monitor configuration, as observable state.  Violated
   configurations all collapse onto one sink. *)
type descriptor =
  | Ok_config of int * Recognizer.state list list  (* active, states *)
  | Satisfied_config
  | Violated_config

let descriptor monitor =
  match Monitor.verdict monitor with
  | Monitor.Violated _ -> Violated_config
  | Monitor.Satisfied -> Satisfied_config
  | Monitor.Running ->
      Ok_config (Monitor.active_fragment monitor, Monitor.fragment_states monitor)

(* Exploration works by replay: monitors are imperative and cannot be
   cloned, so each state keeps a witness word that reaches it.  The
   quadratic replay cost is irrelevant at the pattern sizes for which
   materializing a product automaton makes sense at all. *)
let of_pattern ?(max_states = 4096) p =
  Wellformed.check_exn p;
  let alphabet = Array.of_list (Name.Set.elements (Pattern.alpha p)) in
  let replay word =
    let monitor = Monitor.create p in
    List.iter
      (fun name -> ignore (Monitor.step_name ~time:0 monitor name))
      (List.rev word);
    monitor
  in
  let index = Hashtbl.create 64 in
  let states = ref [] in
  let count = ref 0 in
  let intern descr witness_rev =
    match Hashtbl.find_opt index descr with
    | Some i -> (i, false)
    | None ->
        let i = !count in
        incr count;
        if i >= max_states then raise (Too_many_states i);
        Hashtbl.replace index descr i;
        states := (i, descr, witness_rev) :: !states;
        (i, true)
  in
  let initial_descr = descriptor (replay []) in
  let initial, _ = intern initial_descr [] in
  let transitions = ref [] in
  let rec explore frontier =
    match frontier with
    | [] -> ()
    | (i, witness_rev) :: rest ->
        let row =
          Array.map
            (fun letter ->
              let monitor = replay witness_rev in
              ignore (Monitor.step_name ~time:0 monitor letter);
              let target_descr = descriptor monitor in
              let j, fresh = intern target_descr (letter :: witness_rev) in
              if fresh then (j, Some (letter :: witness_rev)) else (j, None))
            alphabet
        in
        transitions := (i, Array.map fst row) :: !transitions;
        let discovered =
          Array.to_list row
          |> List.filter_map (fun (j, witness) ->
                 Option.map (fun w -> (j, w)) witness)
        in
        explore (discovered @ rest)
  in
  explore [ (initial, []) ];
  let n = !count in
  let table = Array.make n [||] in
  List.iter (fun (i, row) -> table.(i) <- row) !transitions;
  let accepting = Array.make n true in
  let sink = ref None in
  List.iter
    (fun (i, descr, _) ->
      match descr with
      | Violated_config ->
          accepting.(i) <- false;
          sink := Some i
      | Ok_config _ | Satisfied_config -> ())
    !states;
  { alphabet; num_states = n; initial; transitions = table; accepting;
    sink = !sink }

let letter_index t name =
  let rec loop i =
    if i >= Array.length t.alphabet then None
    else if Name.equal t.alphabet.(i) name then Some i
    else loop (i + 1)
  in
  loop 0

let accepts t word =
  let state = ref t.initial in
  List.iter
    (fun name ->
      match letter_index t name with
      | Some l -> state := t.transitions.(!state).(l)
      | None -> () (* foreign events are invisible, as in the monitor *))
    word;
  t.accepting.(!state)

(* Moore partition refinement. *)
let minimize t =
  let n = t.num_states in
  let k = Array.length t.alphabet in
  let block = Array.init n (fun i -> if t.accepting.(i) then 0 else 1) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Signature of a state: its block plus the blocks of its
       successors. *)
    let signatures =
      Array.init n (fun i ->
          (block.(i), Array.init k (fun l -> block.(t.transitions.(i).(l)))))
    in
    let table = Hashtbl.create n in
    let next = ref 0 in
    let new_block = Array.make n 0 in
    for i = 0 to n - 1 do
      match Hashtbl.find_opt table signatures.(i) with
      | Some b -> new_block.(i) <- b
      | None ->
          Hashtbl.replace table signatures.(i) !next;
          new_block.(i) <- !next;
          incr next
    done;
    if new_block <> block then changed := true;
    Array.blit new_block 0 block 0 n
  done;
  let num_blocks = 1 + Array.fold_left max 0 block in
  let transitions =
    Array.init num_blocks (fun _ -> Array.make k 0)
  in
  let accepting = Array.make num_blocks false in
  let sink = ref None in
  for i = 0 to n - 1 do
    let b = block.(i) in
    accepting.(b) <- t.accepting.(i);
    for l = 0 to k - 1 do
      transitions.(b).(l) <- block.(t.transitions.(i).(l))
    done
  done;
  (match t.sink with Some s -> sink := Some block.(s) | None -> ());
  {
    alphabet = t.alphabet;
    num_states = num_blocks;
    initial = block.(t.initial);
    transitions;
    accepting;
    sink = !sink;
  }

let equivalent a b =
  Array.length a.alphabet = Array.length b.alphabet
  && Array.for_all2 Name.equal a.alphabet b.alphabet
  &&
  let seen = Hashtbl.create 64 in
  let rec walk pairs =
    match pairs with
    | [] -> true
    | (i, j) :: rest ->
        if Hashtbl.mem seen (i, j) then walk rest
        else begin
          Hashtbl.replace seen (i, j) ();
          if a.accepting.(i) <> b.accepting.(j) then false
          else
            let successors =
              List.init (Array.length a.alphabet) (fun l ->
                  (a.transitions.(i).(l), b.transitions.(j).(l)))
            in
            walk (successors @ rest)
        end
  in
  walk [ (a.initial, b.initial) ]

let pp_stats ppf t =
  Format.fprintf ppf "%d states over %d letters (%d accepting%s)"
    t.num_states
    (Array.length t.alphabet)
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.accepting)
    (match t.sink with Some _ -> ", violation sink" | None -> "")

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph monitor {\n  rankdir=LR;\n";
  Buffer.add_string buf
    (Printf.sprintf "  init [shape=point]; init -> s%d;\n" t.initial);
  for i = 0 to t.num_states - 1 do
    if t.sink <> Some i then
      Buffer.add_string buf
        (Printf.sprintf "  s%d [shape=%s];\n" i
           (if t.accepting.(i) then "circle" else "doublecircle"))
  done;
  for i = 0 to t.num_states - 1 do
    if t.sink <> Some i then
      Array.iteri
        (fun l j ->
          if t.sink <> Some j then
            Buffer.add_string buf
              (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" i j
                 (Name.to_string t.alphabet.(l))))
        t.transitions.(i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
