(** Shared command-line documentation fragments.

    The [check]/[suite]/[serve] subcommands all take [--backend] and
    the serve command additionally documents its hosting modes; the
    strings live here — in one place the test suite can pin — so a new
    backend or serve mode cannot be documented on one command and
    silently missed on another. *)

val backend_names : string list
(** Every selectable backend, in the order the CLI lists them:
    [["direct"; "compiled"; "flat"; "psl"]]. *)

val backend_doc : string
(** The [--backend] option description shared by [check], [suite],
    [soc] and [serve].  Mentions each of {!backend_names}. *)

val serve_modes_doc : string
(** The serve man-page paragraph enumerating the hosting modes: the
    default buffered (watermark reorder) path and the [--ooo]
    speculative path.  Mentions [--ooo], [--lateness] and the
    [settled]/[speculative] NDJSON markers. *)

val ooo_doc : string
(** The [--ooo] flag description. *)
