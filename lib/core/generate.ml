let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let run_length ?(max_run = 8) rng (r : Pattern.range) =
  let hi = min r.hi (r.lo + max_run) in
  r.lo + Random.State.int rng (hi - r.lo + 1)

let fragment_word ?max_run rng (f : Pattern.fragment) =
  let chosen =
    match f.connective with
    | Pattern.All -> f.ranges
    | Pattern.Any ->
        let picked =
          List.filter (fun _ -> Random.State.bool rng) f.ranges
        in
        if picked = [] then [ List.nth f.ranges (Random.State.int rng (List.length f.ranges)) ]
        else picked
  in
  List.concat_map
    (fun (r : Pattern.range) ->
      List.init (run_length ?max_run rng r) (fun _ -> r.name))
    (shuffle rng chosen)

let ordering_word ?max_run rng ordering =
  List.concat_map (fragment_word ?max_run rng) ordering

(* Timestamp a name list starting just after [from], with random gaps. *)
let timestamp rng ~from names =
  let time = ref from in
  List.map
    (fun name ->
      time := !time + 1 + Random.State.int rng 4;
      { Trace.name; time = !time })
    names

(* Timestamp a timed round: premise events close enough together that
   re-arming the deadline never comes too late (the clock may already be
   running after an early minimal premise match), then conclusion events
   spread inside the deadline window that opens at the last premise
   event. *)
let timestamp_timed rng ~from (g : Pattern.timed) p_names q_names =
  (* All premise events of a round fit inside one deadline-sized window:
     the clock may already be armed by an early minimal match (e.g. one
     branch of a disjunctive fragment), and every later premise event
     must still beat that earliest possible deadline. *)
  let p_events =
    let t0 = from + 1 + Random.State.int rng 4 in
    let np = List.length p_names in
    List.mapi
      (fun k name ->
        let time = if k = 0 then t0 else t0 + (g.deadline * k / np) in
        { Trace.name; time })
      p_names
  in
  let start = match List.rev p_events with e :: _ -> e.Trace.time | [] -> from in
  let n = List.length q_names in
  let q_events =
    List.mapi
      (fun k name ->
        let time = start + (g.deadline * (k + 1) / (n + 1)) in
        { Trace.name; time })
      q_names
  in
  p_events @ q_events

let valid ?(rounds = 3) ?max_run rng p =
  match p with
  | Pattern.Antecedent a ->
      let rounds = if a.repeated then rounds else 1 in
      let rec loop from acc k =
        if k = 0 then List.concat (List.rev acc)
        else
          let word = ordering_word ?max_run rng a.body @ [ a.trigger ] in
          let events = timestamp rng ~from word in
          let from = Trace.end_time events in
          loop from (events :: acc) (k - 1)
      in
      loop 0 [] rounds
  | Pattern.Timed g ->
      let rec loop from acc k =
        if k = 0 then List.concat (List.rev acc)
        else
          let p_names = ordering_word ?max_run rng g.premise in
          let q_names = ordering_word ?max_run rng g.conclusion in
          let events = timestamp_timed rng ~from g p_names q_names in
          let from = Trace.end_time events in
          loop from (events :: acc) (k - 1)
      in
      loop 0 [] rounds

type mutation =
  | Swap_adjacent
  | Drop_event
  | Duplicate_event
  | Inject_trigger
  | Overflow_run
  | Delay_conclusion

let mutations = function
  | Pattern.Antecedent _ ->
      [ Swap_adjacent; Drop_event; Duplicate_event; Inject_trigger;
        Overflow_run ]
  | Pattern.Timed _ ->
      [ Swap_adjacent; Drop_event; Duplicate_event; Overflow_run;
        Delay_conclusion ]

(* Re-timestamp after a structural mutation so the trace stays
   chronological; antecedent semantics ignores time anyway. *)
let retime tr =
  List.mapi (fun i (e : Trace.event) -> { e with Trace.time = i + 1 }) tr

let split_at k l =
  let rec loop acc k = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> loop (x :: acc) (k - 1) rest
  in
  loop [] k l

let mutate rng mutation p tr =
  let len = List.length tr in
  if len = 0 then tr
  else
    match mutation with
    | Swap_adjacent when len >= 2 ->
        let k = Random.State.int rng (len - 1) in
        let before, rest = split_at k tr in
        (match rest with
        | a :: b :: after -> retime (before @ (b :: a :: after))
        | [ _ ] | [] -> tr)
    | Swap_adjacent -> tr
    | Drop_event ->
        let k = Random.State.int rng len in
        let before, rest = split_at k tr in
        (match rest with
        | _ :: after -> retime (before @ after)
        | [] -> tr)
    | Duplicate_event ->
        let k = Random.State.int rng len in
        let before, rest = split_at k tr in
        (match rest with
        | e :: after -> retime (before @ (e :: e :: after))
        | [] -> tr)
    | Inject_trigger -> (
        match p with
        | Pattern.Antecedent a ->
            let k = Random.State.int rng (len + 1) in
            let before, after = split_at k tr in
            retime (before @ (Trace.event a.trigger :: after))
        | Pattern.Timed _ -> tr)
    | Overflow_run -> (
        (* Repeat some event [hi] extra times: the run it belongs to
           overflows its range. *)
        let k = Random.State.int rng len in
        let before, rest = split_at k tr in
        match rest with
        | e :: after -> (
            let ranges =
              List.concat_map
                (fun (f : Pattern.fragment) -> f.ranges)
                (Pattern.body_ordering p)
            in
            match
              List.find_opt
                (fun (r : Pattern.range) -> Name.equal r.name e.Trace.name)
                ranges
            with
            | Some r ->
                let copies = List.init (r.hi + 1) (fun _ -> e) in
                retime (before @ (e :: copies) @ after)
            | None -> tr)
        | [] -> tr)
    | Delay_conclusion -> (
        match p with
        | Pattern.Timed g ->
            (* Push every conclusion event of the last round beyond the
               deadline window. *)
            let q_alpha = Pattern.alpha_ordering g.conclusion in
            let delay = g.deadline + 1 in
            List.map
              (fun (e : Trace.event) ->
                if Name.Set.mem e.name q_alpha then
                  { e with Trace.time = e.time + delay }
                else e)
              tr
        | Pattern.Antecedent _ -> tr)

let violating ?(attempts = 50) rng p =
  let candidates = mutations p in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let rec loop k =
    if k = 0 then None
    else
      let base = valid ~rounds:(1 + Random.State.int rng 3) rng p in
      let tr = mutate rng (pick candidates) p base in
      if Trace.is_chronological tr && not (Semantics.holds p tr) then Some tr
      else loop (k - 1)
  in
  loop attempts
