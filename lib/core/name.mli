(** Interface action names.

    A name designates one observable action on the input/output interface
    [(I, O)] of a TL component (e.g. [set_imgAddr], [start], [read_img]).
    Patterns, traces and monitors are all written over names. *)

type t = private string

val v : string -> t
(** [v s] is the name [s].  Raises [Invalid_argument] if [s] is empty or
    contains characters outside [A-Za-z0-9_.-] (names must be printable
    identifiers so that the concrete syntax round-trips). *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
