let current = "1.8.0"
