let current = "1.7.0"
