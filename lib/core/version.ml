let current = "1.9.0"
