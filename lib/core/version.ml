let current = "1.4.0"
