let current = "1.6.0"
