let current = "1.5.0"
