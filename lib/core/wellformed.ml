type error = Shared_name of Name.t | Trigger_in_body of Name.t

let pp_error ppf = function
  | Shared_name n ->
      Format.fprintf ppf "name %a is used by two ranges of the pattern"
        Name.pp n
  | Trigger_in_body n ->
      Format.fprintf ppf "trigger %a also appears in the antecedent body"
        Name.pp n

let error_to_string e = Format.asprintf "%a" pp_error e

(* Every range name must be globally unique within the pattern: uniqueness
   inside a fragment and disjointness between fragments are then both
   implied, so a single duplicate scan covers all Fig. 3 constraints. *)
let duplicates ordering =
  let seen = Hashtbl.create 16 in
  let dups = ref [] in
  List.iter
    (fun (f : Pattern.fragment) ->
      List.iter
        (fun (r : Pattern.range) ->
          if Hashtbl.mem seen r.name then (
            if not (List.exists (Name.equal r.name) !dups) then
              dups := r.name :: !dups)
          else Hashtbl.add seen r.name ())
        f.ranges)
    ordering;
  List.rev !dups

let check p =
  let ordering = Pattern.body_ordering p in
  let shared = List.map (fun n -> Shared_name n) (duplicates ordering) in
  let trigger_errors =
    match p with
    | Pattern.Antecedent a
      when Name.Set.mem a.trigger (Pattern.alpha_ordering a.body) ->
        [ Trigger_in_body a.trigger ]
    | Pattern.Antecedent _ | Pattern.Timed _ -> []
  in
  match shared @ trigger_errors with [] -> Ok () | errs -> Error errs

let is_well_formed p = Result.is_ok (check p)

exception Ill_formed of Pattern.t * error list

let check_exn p =
  match check p with Ok () -> () | Error errs -> raise (Ill_formed (p, errs))

let () =
  Printexc.register_printer (function
    | Ill_formed (p, errs) ->
        Some
          (Format.asprintf "@[<v>ill-formed pattern %a:@,%a@]" Pattern.pp p
             (Format.pp_print_list pp_error)
             errs)
    | _ -> None)
