type t = { ops_per_event : int; space_bits : int }

let is_timed = function Pattern.Timed _ -> true | Pattern.Antecedent _ -> false

let context_size p =
  List.fold_left
    (fun acc ctxs ->
      List.fold_left (fun acc ctx -> acc + Context.size ctx) acc ctxs)
    0 (Context.of_pattern p)

let drct p =
  let timed = if is_timed p then 1 else 0 in
  let names = Pattern.name_count p in
  let ranges = Pattern.range_count p in
  let stored = context_size p in
  let ops_per_event = 30 + (50 * names) + (66 * timed) in
  let numerator = 4 + (480 * ranges) + (92 * stored) in
  let space_bits = ((numerator + 1) / 3) + (11 * timed) in
  { ops_per_event; space_bits }

let time_theta = Pattern.max_fragment_width
let space_theta p = Pattern.name_count p
let max_counter = Pattern.max_hi

let measured p tr =
  let ops = ref 0 in
  let monitor = Monitor.create ~ops p in
  List.iter (fun e -> ignore (Monitor.step monitor e)) tr;
  let events = max 1 (Trace.length tr) in
  {
    ops_per_event = !ops / events;
    space_bits = Monitor.space_bits monitor;
  }

let pp ppf c =
  Format.fprintf ppf "%d ops/event, %d bits" c.ops_per_event c.space_bits
