(** Random sequence generation from loose-ordering patterns.

    This implements the paper's announced future work ("a translation of
    the patterns into some code for generating random sequences"),
    closing the ABV loop of Fig. 1: the same pattern drives both the
    stimuli generator and the assertion checker.

    All generators are deterministic functions of the supplied
    [Random.State.t]. *)

val fragment_word : ?max_run:int -> Random.State.t -> Pattern.fragment ->
  Name.t list
(** A word of [L(F)]: a random admissible subset of ranges ([∧]: all),
    shuffled, each with a random count in [[lo, min hi (lo+max_run)]]
    ([max_run] defaults to 8; it caps huge ranges like [n[100,60000]]
    while still exercising the bounds). *)

val ordering_word : ?max_run:int -> Random.State.t -> Pattern.ordering ->
  Name.t list
(** A word of [L(F1 < ... < Fq)]. *)

val valid : ?rounds:int -> ?max_run:int -> Random.State.t -> Pattern.t ->
  Trace.t
(** A trace satisfying the pattern: [rounds] (default 3) complete
    recognition rounds.  Timestamps increase randomly; for a timed
    pattern the conclusion of each round is scheduled within its
    deadline. *)

type mutation =
  | Swap_adjacent  (** exchange two adjacent events *)
  | Drop_event  (** remove one event *)
  | Duplicate_event  (** repeat one event in place *)
  | Inject_trigger  (** insert the antecedent trigger at a random spot *)
  | Overflow_run  (** extend a block beyond its upper bound *)
  | Delay_conclusion  (** push a round's conclusion past the deadline *)

val mutations : Pattern.t -> mutation list
(** The mutations applicable to this kind of pattern. *)

val mutate : Random.State.t -> mutation -> Pattern.t -> Trace.t -> Trace.t
(** Apply one mutation (the result is not guaranteed to violate the
    pattern — check with {!Semantics.holds}). *)

val violating : ?attempts:int -> Random.State.t -> Pattern.t -> Trace.t option
(** Generate a trace that violates the pattern, by mutating valid traces
    until {!Semantics.holds} rejects one (up to [attempts] tries,
    default 50). *)
