let to_csv trace =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "time,name\n";
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s\n" e.time (Name.to_string e.name)))
    trace;
  Buffer.contents buf

module Validator = struct
  type t = { mutable prev : int }

  let create () = { prev = -1 }
  let last t = t.prev

  let accept t ~time =
    if time >= 0 && time >= t.prev then begin
      t.prev <- time;
      true
    end
    else false

  let check t ~pos ~time =
    if time < 0 then
      Error (Printf.sprintf "%s: negative timestamp %d" pos time)
    else if time < t.prev then
      Error
        (Printf.sprintf
           "%s: trace is not chronological (time %d goes back before %d)" pos
           time t.prev)
    else begin
      t.prev <- time;
      Ok ()
    end
end

let parse_csv_line ~lineno ?validator line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' || trimmed = "time,name" then Ok None
  else
    let pos = Printf.sprintf "line %d" lineno in
    match String.index_opt trimmed ',' with
    | None -> Error (Printf.sprintf "%s: expected 'time,name'" pos)
    | Some comma -> (
        let time_str = String.trim (String.sub trimmed 0 comma) in
        let name_str =
          String.trim
            (String.sub trimmed (comma + 1)
               (String.length trimmed - comma - 1))
        in
        match (int_of_string_opt time_str, Name.v name_str) with
        | Some time, name -> (
            let checked =
              match validator with
              | Some v -> Validator.check v ~pos ~time
              | None ->
                  if time < 0 then
                    Error (Printf.sprintf "%s: negative timestamp %d" pos time)
                  else Ok ()
            in
            match checked with
            | Ok () -> Ok (Some { Trace.name; time })
            | Error _ as e -> e)
        | None, _ ->
            Error (Printf.sprintf "%s: bad timestamp %S" pos time_str)
        | exception Invalid_argument msg ->
            Error (Printf.sprintf "%s: %s" pos msg))

let of_csv source =
  let lines = String.split_on_char '\n' source in
  let validator = Validator.create () in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_csv_line ~lineno ~validator line with
        | Ok (Some e) -> loop (lineno + 1) (e :: acc) rest
        | Ok None -> loop (lineno + 1) acc rest
        | Error _ as e -> e)
  in
  loop 1 [] lines

let save_csv ~path trace =
  let oc = open_out path in
  output_string oc (to_csv trace);
  close_out oc

let load_csv path =
  match open_in path with
  | ic ->
      let n = in_channel_length ic in
      let source = really_input_string ic n in
      close_in ic;
      of_csv source
  | exception Sys_error msg -> Error msg

let merge traces =
  (* k-way stable merge: always take from the earliest-timestamped head,
     preferring the leftmost list on ties. *)
  let rec pick best_idx idx = function
    | [] -> best_idx
    | [] :: rest -> pick best_idx (idx + 1) rest
    | ((e : Trace.event) :: _) :: rest ->
        let better =
          match best_idx with
          | None -> true
          | Some (_, best_time) -> e.time < best_time
        in
        pick (if better then Some (idx, e.time) else best_idx) (idx + 1) rest
  in
  let rec loop acc lists =
    match pick None 0 lists with
    | None -> List.rev acc
    | Some (idx, _) ->
        let event = List.hd (List.nth lists idx) in
        let lists =
          List.mapi (fun i l -> if i = idx then List.tl l else l) lists
        in
        loop (event :: acc) lists
  in
  loop [] traces

let window ~from ~until trace =
  List.filter
    (fun (e : Trace.event) -> e.time >= from && e.time <= until)
    trace

let rename mapping trace =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (src, dst) -> Hashtbl.replace table src (Name.v dst))
    mapping;
  List.map
    (fun (e : Trace.event) ->
      match Hashtbl.find_opt table (Name.to_string e.name) with
      | Some name -> { e with Trace.name }
      | None -> e)
    trace

let counts trace =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      Hashtbl.replace table e.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt table e.name)))
    trace;
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Name.compare a b)

let duration trace =
  match trace with
  | [] | [ _ ] -> 0
  | (first : Trace.event) :: _ -> Trace.end_time trace - first.time
