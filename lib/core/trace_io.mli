(** Trace import/export and manipulation.

    Real verification flows pull event logs out of simulators, loggers
    or bus analyzers and massage them before checking: CSV is the
    exchange format, component traces get merged on the time axis, and
    recorder names get mapped onto a property's alphabet. *)

(** {1 Chronology validation}

    Every trace reader in the code base (CSV here, the binary codec in
    [Loseq_ingest.Codec], the streaming CSV mode of [loseq serve])
    funnels timestamps through this one validator, so "trace is not
    chronological" errors carry the same information everywhere: the
    position of the offending record and both timestamps involved. *)

module Validator : sig
  type t

  val create : unit -> t

  val check : t -> pos:string -> time:int -> (unit, string) result
  (** Feed the next timestamp.  [pos] names the record for error
      messages (["line 12"], ["record 3 (byte 47)"], ...).  Fails when
      [time] is negative or goes back before the previous timestamp;
      the message includes both times and the position. *)

  val accept : t -> time:int -> bool
  (** Allocation-free {!check} for ingestion hot paths: advances and
      returns [true] on an admissible timestamp, returns [false]
      without advancing otherwise — call {!check} afterwards when the
      rejection message (which needs a [pos]) is wanted. *)

  val last : t -> int
  (** The last accepted timestamp ([-1] before the first). *)
end

val to_csv : Trace.t -> string
(** ["time,name\n"] header plus one row per event. *)

val parse_csv_line :
  lineno:int ->
  ?validator:Validator.t ->
  string ->
  (Trace.event option, string) result
(** Parse one CSV line ([None] for blanks, [#] comments and the
    header).  Error messages carry ["line N"].  With [validator],
    chronology is enforced through it; without, only negative
    timestamps are rejected — the mode a bounded-reorder ingestion
    session uses, where out-of-order lines are the session's business,
    not a parse error.  This is the single code path behind {!of_csv}
    and the streaming CSV reader of [loseq serve]. *)

val of_csv : string -> (Trace.t, string) result
(** Accepts the {!to_csv} format (header optional, blank lines and [#]
    comments ignored).  Events must be chronological; errors report
    the offending line number. *)

val save_csv : path:string -> Trace.t -> unit
val load_csv : string -> (Trace.t, string) result

val merge : Trace.t list -> Trace.t
(** Stable merge on timestamps: ties keep the order of the input lists
    (earlier list first), matching how a tap would have interleaved
    simultaneous observations. *)

val window : from:int -> until:int -> Trace.t -> Trace.t
(** Events with [from <= time <= until]. *)

val rename : (string * string) list -> Trace.t -> Trace.t
(** Map recorder names onto a property alphabet; unmapped names pass
    through.  Raises [Invalid_argument] on an invalid target name. *)

val counts : Trace.t -> (Name.t * int) list
(** Occurrence counts, sorted by name. *)

val duration : Trace.t -> int
(** [last time - first time] ([0] for traces with fewer than 2
    events). *)
