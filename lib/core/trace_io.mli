(** Trace import/export and manipulation.

    Real verification flows pull event logs out of simulators, loggers
    or bus analyzers and massage them before checking: CSV is the
    exchange format, component traces get merged on the time axis, and
    recorder names get mapped onto a property's alphabet. *)

val to_csv : Trace.t -> string
(** ["time,name\n"] header plus one row per event. *)

val of_csv : string -> (Trace.t, string) result
(** Accepts the {!to_csv} format (header optional, blank lines and [#]
    comments ignored).  Events must be chronological. *)

val save_csv : path:string -> Trace.t -> unit
val load_csv : string -> (Trace.t, string) result

val merge : Trace.t list -> Trace.t
(** Stable merge on timestamps: ties keep the order of the input lists
    (earlier list first), matching how a tap would have interleaved
    simultaneous observations. *)

val window : from:int -> until:int -> Trace.t -> Trace.t
(** Events with [from <= time <= until]. *)

val rename : (string * string) list -> Trace.t -> Trace.t
(** Map recorder names onto a property alphabet; unmapped names pass
    through.  Raises [Invalid_argument] on an invalid target name. *)

val counts : Trace.t -> (Name.t * int) list
(** Occurrence counts, sorted by name. *)

val duration : Trace.t -> int
(** [last time - first time] ([0] for traces with fewer than 2
    events). *)
