type run = { name : Name.t; count : int }

let runs word =
  let rec loop acc current = function
    | [] -> List.rev (match current with None -> acc | Some r -> r :: acc)
    | n :: rest -> (
        match current with
        | Some r when Name.equal r.name n ->
            loop acc (Some { r with count = r.count + 1 }) rest
        | Some r -> loop (r :: acc) (Some { name = n; count = 1 }) rest
        | None -> loop acc (Some { name = n; count = 1 }) rest)
  in
  loop [] None word

let distinct_names rs =
  let rec loop seen = function
    | [] -> true
    | r :: rest ->
        (not (Name.Set.mem r.name seen)) && loop (Name.Set.add r.name seen) rest
  in
  loop Name.Set.empty rs

let range_of_fragment (f : Pattern.fragment) name =
  List.find_opt (fun (r : Pattern.range) -> Name.equal r.name name) f.ranges

(* [w ∈ L(f)]: one block per contributing range, blocks in any order. *)
let match_fragment (f : Pattern.fragment) word =
  let rs = runs word in
  rs <> []
  && distinct_names rs
  && List.for_all
       (fun run ->
         match range_of_fragment f run.name with
         | Some range -> run.count >= range.lo && run.count <= range.hi
         | None -> false)
       rs
  &&
  match f.connective with
  | Pattern.Any -> true
  | Pattern.All -> List.length rs = List.length f.ranges

(* Index of the fragment owning each name; names are globally unique in a
   well-formed ordering, so the map is a function. *)
let fragment_index_map ordering =
  let map = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Pattern.fragment) ->
      List.iter
        (fun (r : Pattern.range) -> Hashtbl.replace map r.name i)
        f.ranges)
    ordering;
  map

(* Group a run list into (fragment index, runs) segments; [None] when a
   name is foreign or the indices ever decrease. *)
let segments ordering rs =
  let index = fragment_index_map ordering in
  let rec loop acc current_idx current = function
    | [] ->
        let acc =
          if current = [] then acc else (current_idx, List.rev current) :: acc
        in
        Some (List.rev acc)
    | run :: rest -> (
        match Hashtbl.find_opt index run.name with
        | None -> None
        | Some i ->
            if i < current_idx then None
            else if i = current_idx then loop acc i (run :: current) rest
            else
              let acc =
                if current = [] then acc
                else (current_idx, List.rev current) :: acc
              in
              loop acc i [ run ] rest)
  in
  loop [] (-1) [] rs

let word_of_runs rs =
  List.concat_map (fun r -> List.init r.count (fun _ -> r.name)) rs

let match_ordering ordering word =
  match segments ordering (runs word) with
  | None -> false
  | Some segs ->
      List.length segs = List.length ordering
      && List.for_all2
           (fun (idx, rs) (i, f) -> idx = i && match_fragment f (word_of_runs rs))
           segs
           (List.mapi (fun i f -> (i, f)) ordering)

(* A partially-read fragment is viable when blocks are distinct, every
   closed block (all but the last) already reached its bounds, and the
   open block has not overflowed. *)
let viable_fragment_prefix (f : Pattern.fragment) rs =
  let rec loop = function
    | [] -> true
    | [ last ] -> (
        match range_of_fragment f last.name with
        | Some range -> last.count <= range.hi
        | None -> false)
    | closed :: rest -> (
        match range_of_fragment f closed.name with
        | Some range ->
            closed.count >= range.lo && closed.count <= range.hi && loop rest
        | None -> false)
  in
  distinct_names rs && loop rs

let viable_prefix ordering word =
  match segments ordering (runs word) with
  | None -> false
  | Some [] -> true
  | Some segs -> (
      (* Segment indices must be exactly 0..m with every fragment before
         the open one fully matched. *)
      let rec check expected = function
        | [] -> true
        | [ (idx, rs) ] ->
            idx = expected
            && viable_fragment_prefix (List.nth ordering idx) rs
        | (idx, rs) :: rest ->
            idx = expected
            && match_fragment (List.nth ordering idx) (word_of_runs rs)
            && check (expected + 1) rest
      in
      match List.length segs with
      | m when m > List.length ordering -> false
      | _ -> check 0 segs)

let min_complete_prefix ordering events =
  let rec loop consumed = function
    | [] -> None
    | (e : Trace.event) :: rest ->
        let consumed = e.name :: consumed in
        if match_ordering ordering (List.rev consumed) then Some e.time
        else loop consumed rest
  in
  loop [] events

(* Split a name list around each occurrence of [trigger]:
   [(complete segments, trailing segment)]. *)
let split_on_trigger trigger word =
  let rec loop segs current = function
    | [] -> (List.rev segs, List.rev current)
    | n :: rest ->
        if Name.equal n trigger then loop (List.rev current :: segs) [] rest
        else loop segs (n :: current) rest
  in
  loop [] [] word

let holds_antecedent (a : Pattern.antecedent) word =
  let complete, trailing = split_on_trigger a.trigger word in
  if a.repeated then
    List.for_all (match_ordering a.body) complete
    && viable_prefix a.body trailing
  else
    match complete with
    | [] -> viable_prefix a.body trailing
    | first :: _ -> match_ordering a.body first

(* Split the events of a timed pattern into recognition rounds: a new
   round begins whenever the fragment index decreases. *)
let rounds ordering events =
  let index = fragment_index_map ordering in
  let rec loop acc current prev_idx = function
    | [] -> List.rev (List.rev current :: acc)
    | (e : Trace.event) :: rest -> (
        match Hashtbl.find_opt index e.name with
        | None -> loop acc (e :: current) prev_idx rest
        | Some i ->
            if i < prev_idx then loop (List.rev current :: acc) [ e ] i rest
            else loop acc (e :: current) i rest)
  in
  match loop [] [] (-1) events with [ [] ] -> [] | rs -> rs

let holds_timed (g : Pattern.timed) events ~final_time =
  let pq = g.premise @ g.conclusion in
  let premise_alpha = Pattern.alpha_ordering g.premise in
  (* Timing discipline of a round (see DESIGN.md): the deadline clock is
     armed — and re-armed — by every premise event after which the
     premise is minimally recognized; once armed, any event arriving
     past the deadline with the conclusion unfinished is a violation
     (so a late premise extension cannot resurrect an expired clock),
     and so is a conclusion event arriving past the deadline. *)
  let round_timing_ok ~final round =
    let deadline = ref None in
    let q_complete = ref false in
    let p_rev = ref [] in
    let q_rev = ref [] in
    let violated = ref false in
    List.iter
      (fun (e : Trace.event) ->
        if not !violated then begin
          let is_premise = Name.Set.mem e.name premise_alpha in
          (match !deadline with
          | Some dl when e.time > dl ->
              if (not !q_complete) || not is_premise then violated := true
          | Some _ | None -> ());
          if not !violated then
            if is_premise then begin
              p_rev := e.name :: !p_rev;
              if match_ordering g.premise (List.rev !p_rev) then
                deadline := Some (e.time + g.deadline)
            end
            else begin
              q_rev := e.name :: !q_rev;
              if
                (not !q_complete)
                && match_ordering g.conclusion (List.rev !q_rev)
              then q_complete := true
            end
        end)
      round;
    (not !violated)
    &&
    match (!deadline, !q_complete) with
    | Some dl, false when final -> final_time <= dl
    | Some _, false -> false (* complete rounds always finish Q *)
    | (Some _ | None), _ -> true
  in
  let round_ok ~final round =
    let word = List.map (fun (e : Trace.event) -> e.Trace.name) round in
    let shape_ok =
      if final then viable_prefix pq word else match_ordering pq word
    in
    shape_ok && round_timing_ok ~final round
  in
  let rec check = function
    | [] -> true
    | [ last ] -> round_ok ~final:true last
    | round :: rest -> round_ok ~final:false round && check rest
  in
  check (rounds pq events)

let holds ?final_time p tr =
  Wellformed.check_exn p;
  let tr = Trace.restrict (Pattern.alpha p) tr in
  let final_time =
    match final_time with Some t -> t | None -> Trace.end_time tr
  in
  match p with
  | Pattern.Antecedent a -> holds_antecedent a (Trace.names tr)
  | Pattern.Timed g -> holds_timed g tr ~final_time
