type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission --------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
      Format.pp_print_string ppf (to_string v)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
      Format.fprintf ppf "[@;<0 2>@[<v>%a@]@,]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp)
        items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let field ppf (k, v) =
        Format.fprintf ppf "@[<hv 2>%s: %a@]"
          (let b = Buffer.create 16 in
           escape b k;
           Buffer.contents b)
          pp v
      in
      Format.fprintf ppf "{@;<0 2>@[<v>%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           field)
        fields

(* ---- parsing ---------------------------------------------------------- *)

exception Parse_error of int * string

let of_string source =
  let n = String.length source in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some source.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub source !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub source !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
              advance ();
              utf8 buf (hex4 ())
          | Some c ->
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | _ -> fail "bad escape");
              advance ()
          | None -> fail "bad escape");
          loop ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub source start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "at offset %d: %s" p msg)

(* ---- accessors -------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
