let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code (String.unsafe_get s i) in
  let put k = Buffer.add_char out alphabet.[k land 63] in
  let i = ref 0 in
  while !i + 3 <= n do
    let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) lor byte (!i + 2) in
    put (w lsr 18);
    put (w lsr 12);
    put (w lsr 6);
    put w;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let w = byte !i lsl 16 in
      put (w lsr 18);
      put (w lsr 12);
      Buffer.add_string out "=="
  | 2 ->
      let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) in
      put (w lsr 18);
      put (w lsr 12);
      put (w lsr 6);
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

(* Decoding table: -1 = invalid, -2 = padding. *)
let table =
  let t = Array.make 256 (-1) in
  String.iteri (fun i c -> t.(Char.code c) <- i) alphabet;
  t.(Char.code '=') <- -2;
  t

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then
    Error (Printf.sprintf "base64: length %d is not a multiple of 4" n)
  else begin
    let out = Buffer.create (n / 4 * 3) in
    let err = ref None in
    let i = ref 0 in
    while !err = None && !i < n do
      let q k = table.(Char.code s.[!i + k]) in
      let a = q 0 and b = q 1 and c = q 2 and d = q 3 in
      let last = !i + 4 = n in
      if a < 0 || b < 0 then
        err := Some (Printf.sprintf "base64: invalid character at %d" !i)
      else if c = -2 then
        if last && d = -2 then
          Buffer.add_char out (Char.chr ((a lsl 2) lor (b lsr 4) land 0xff))
        else err := Some (Printf.sprintf "base64: misplaced padding at %d" !i)
      else if c < 0 then
        err := Some (Printf.sprintf "base64: invalid character at %d" !i)
      else if d = -2 then
        if last then begin
          let w = (a lsl 12) lor (b lsl 6) lor c in
          Buffer.add_char out (Char.chr (w lsr 10 land 0xff));
          Buffer.add_char out (Char.chr (w lsr 2 land 0xff))
        end
        else err := Some (Printf.sprintf "base64: misplaced padding at %d" !i)
      else if d < 0 then
        err := Some (Printf.sprintf "base64: invalid character at %d" !i)
      else begin
        let w = (a lsl 18) lor (b lsl 12) lor (c lsl 6) lor d in
        Buffer.add_char out (Char.chr (w lsr 16 land 0xff));
        Buffer.add_char out (Char.chr (w lsr 8 land 0xff));
        Buffer.add_char out (Char.chr (w land 0xff))
      end;
      i := !i + 4
    done;
    match !err with Some m -> Error m | None -> Ok (Buffer.contents out)
  end
