(** The library version, in one place.

    Must match the top entry of [CHANGELOG.md] (a test pins this); the
    CLI's [--version] and the SARIF [tool.driver.version] both read
    it. *)

val current : string
