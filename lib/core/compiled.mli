(** Compiled monitors: the production fast path.

    {!Monitor} keeps the paper's structure literally — one recognizer
    object per range, name sets, classification by set membership.  This
    module compiles a pattern once into flat integer tables (interned
    names, per-name category rows, counter and state arrays) so that a
    step is a handful of array reads: the form a deployment inside a
    simulation kernel would actually use.

    Verdict-level behaviour is identical to {!Monitor} (property-tested
    by the suite); only diagnostics are coarser (reason and position,
    no per-range detail). *)

type verdict =
  | Running
  | Satisfied
  | Violated of { reason : Diag.reason; time : int; index : int }

type t

val compile : Pattern.t -> t
(** Raises {!Wellformed.Ill_formed}. *)

val pattern : t -> Pattern.t

val alphabet : t -> Name.Set.t
(** [α(pattern)], computed once at compile time — the routing key a
    hosting layer uses to deliver only relevant events. *)

val id_of_name : t -> Name.t -> int option
(** Interned id, [None] for names outside the alphabet. *)

val step_id : t -> id:int -> time:int -> verdict
(** Fastest path: pre-interned name.  Raises [Invalid_argument] on an
    id out of range. *)

val step : t -> Trace.event -> verdict
(** Interns and delegates to {!step_id}; foreign names are ignored. *)

val check_time : t -> now:int -> verdict

val next_deadline : t -> int option
(** The earliest simulation time at which {!check_time} could report a
    violation — for scheduling a timeout in a simulation host (same
    contract as {!Monitor.next_deadline}). *)

val active_fragment : t -> int
(** 0-based index of the active fragment. *)

val finalize : t -> now:int -> verdict
val verdict : t -> verdict
val reset : t -> unit
(** Back to the initial configuration (monitors are reusable across
    runs without re-compiling). *)

val rounds_completed : t -> int
(** Number of full recognition rounds completed so far: accepted
    body+trigger rounds for an antecedent, minimally recognized
    premise+conclusion rounds for a timed implication.  A property that
    never fails {e and} never completes a round was exercised
    vacuously — the distinction the analyzer's cross-validation tests
    need. *)

val run : Pattern.t -> Trace.t -> verdict
val accepts : ?final_time:int -> Pattern.t -> Trace.t -> bool

(** {1 Reachability accessors}

    Read-only views of the flat tables and of the current
    configuration, for decision procedures over the monitor automaton
    ([Loseq_analysis]): the analyzer re-executes the Fig. 5 step
    function on a counter-interval abstraction of exactly these
    tables, and cross-validates its witnesses by replaying them here. *)

type static = {
  names : Name.t array;  (** interned id → name *)
  owner : int array;  (** id → fragment index, [-1] = terminator-only *)
  terminator : bool array;  (** id → closes the whole ordering *)
  category : Context.category array array;  (** recognizer → id → class *)
  rec_range : Pattern.range array;  (** recognizer → its range *)
  rec_disjunctive : bool array;
  frag_first : int array;  (** fragment → first recognizer index *)
  frag_count : int array;
  fragments : int;  (** [q] *)
  repeated : bool;  (** true also for timed patterns *)
  timed : bool;
  premise_last : int;  (** last premise fragment; [-2] for antecedents *)
  deadline : int;
}

val static : t -> static
(** The compile-time tables (arrays are fresh copies: mutating them
    cannot corrupt the monitor). *)

type rec_state = Idle | Waiting | Started | Counting of int | Done

type snapshot = {
  active : int;
  recs : rec_state array;  (** per recognizer, in table order *)
  armed : bool;  (** timed: premise recognized, deadline running *)
  q_done : bool;  (** timed: conclusion minimally recognized *)
  rounds : int;  (** {!rounds_completed} *)
}

val snapshot : t -> snapshot
(** The current configuration ([Running] monitors only carry useful
    snapshots, but the call is always safe). *)

(** {1 Persistence}

    The complete mutable run state, for checkpoint/resume of streaming
    monitors ([Loseq_ingest.Checkpoint]).  Unlike {!snapshot} — an
    abstraction-friendly view for the analyzer — {!persisted} is exact:
    {!restore} followed by any event sequence behaves identically to
    the uninterrupted monitor (property-tested by the suite). *)

type persisted = {
  p_recs : rec_state array;  (** per recognizer, in table order *)
  p_active : int;
  p_index : int;  (** events consumed so far *)
  p_started : int;  (** timed: premise-recognition time, [-1] unarmed *)
  p_q_done : bool;
  p_rounds : int;
  p_verdict : verdict;
}

val persist : t -> persisted
(** A self-contained copy of the run state (mutating it cannot corrupt
    the monitor). *)

val restore : t -> persisted -> unit
(** Overwrite the run state with a previously {!persist}ed one.  The
    monitor must have been compiled from the same pattern; raises
    [Invalid_argument] on a recognizer-count mismatch. *)

(** {1 Table patches}

    Mutable views of the compiled tables, as fresh patched copies: the
    mutation engine ([Loseq_analysis.Mutate]) perturbs a monitor at the
    table level — retarget a name to another fragment, flip a
    terminator bit, swap a recognizer's category row entry, nudge a
    counter bound or the deadline — without needing a pattern that
    denotes the perturbed automaton.  The original is never modified. *)

type patch = {
  set_category : (int * int * Context.category) list;
      (** [(recognizer, id, category)] overrides *)
  set_owner : (int * int) list;
      (** [(id, fragment)]; [-1] = terminator-only *)
  set_terminator : (int * bool) list;
  set_lo : (int * int) list;  (** [(recognizer, lo)] *)
  set_hi : (int * int) list;  (** [(recognizer, hi)] *)
  set_deadline : int option;
}

val no_patch : patch
(** The identity patch: [patched t no_patch] is an independent clone of
    [t]'s tables in the initial run state. *)

val patched : t -> patch -> t
(** A fresh monitor whose tables are [t]'s with the patch applied and
    whose run state is initial.  The [pattern] accessor still returns
    the original pattern (a patched table need not be denotable).
    Raises [Invalid_argument] on out-of-range indices, [lo/hi] updates
    that break [1 <= lo <= hi], or a negative deadline. *)
