(** Compiled monitors: the production fast path.

    {!Monitor} keeps the paper's structure literally — one recognizer
    object per range, name sets, classification by set membership.  This
    module compiles a pattern once into flat integer tables (interned
    names, per-name category rows, counter and state arrays) so that a
    step is a handful of array reads: the form a deployment inside a
    simulation kernel would actually use.

    Verdict-level behaviour is identical to {!Monitor} (property-tested
    by the suite); only diagnostics are coarser (reason and position,
    no per-range detail). *)

type verdict =
  | Running
  | Satisfied
  | Violated of { reason : Diag.reason; time : int; index : int }

type t

val compile : Pattern.t -> t
(** Raises {!Wellformed.Ill_formed}. *)

val pattern : t -> Pattern.t

val alphabet : t -> Name.Set.t
(** [α(pattern)], computed once at compile time — the routing key a
    hosting layer uses to deliver only relevant events. *)

val id_of_name : t -> Name.t -> int option
(** Interned id, [None] for names outside the alphabet. *)

val step_id : t -> id:int -> time:int -> verdict
(** Fastest path: pre-interned name.  Raises [Invalid_argument] on an
    id out of range. *)

val step : t -> Trace.event -> verdict
(** Interns and delegates to {!step_id}; foreign names are ignored. *)

val check_time : t -> now:int -> verdict

val next_deadline : t -> int option
(** The earliest simulation time at which {!check_time} could report a
    violation — for scheduling a timeout in a simulation host (same
    contract as {!Monitor.next_deadline}). *)

val active_fragment : t -> int
(** 0-based index of the active fragment. *)

val finalize : t -> now:int -> verdict
val verdict : t -> verdict
val reset : t -> unit
(** Back to the initial configuration (monitors are reusable across
    runs without re-compiling). *)

val run : Pattern.t -> Trace.t -> verdict
val accepts : ?final_time:int -> Pattern.t -> Trace.t -> bool
