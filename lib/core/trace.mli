(** Observed event sequences.

    A trace is the sequence of interface events seen by a monitor.  Only
    one name occurs at a time (the models are asynchronous, paper
    Section 4); each event carries the simulation timestamp at which it
    was observed.  Times are non-negative integers in an arbitrary unit
    (the simulation kernel uses picoseconds) and must be non-decreasing
    along a trace. *)

type event = { name : Name.t; time : int }
type t = event list

val event : ?time:int -> Name.t -> event
(** [event n] is [n] at time [0]. *)

val of_names : Name.t list -> t
(** [of_names ns] timestamps the events [0, 1, 2, ...]. *)

val of_strings : string list -> t
(** [of_strings ss] is [of_names (List.map Name.v ss)]. *)

val names : t -> Name.t list
val length : t -> int
val end_time : t -> int
(** [end_time tr] is the time of the last event, or [0] on an empty
    trace. *)

val is_chronological : t -> bool
(** Times are non-decreasing. *)

val restrict : Name.Set.t -> t -> t
(** [restrict alpha tr] keeps only the events whose name is in [alpha]
    (monitors observe the projection of the system trace on their
    pattern's alphabet). *)

val append : t -> t -> t
(** [append a b] concatenates and shifts [b]'s timestamps so the result
    is chronological ([b]'s first event lands one unit after [a]'s
    last). *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** [parse s] reads a whitespace-separated list of events, each either a
    bare [name] or [name@time]; untimed events get the previous time + 1
    (starting at 0). *)
