(** Abstract syntax of loose-ordering patterns (paper, Fig. 3).

    The two root patterns are the {e antecedent requirement}
    [(P << i, b)] and the {e timed implication constraint} [(P => Q, t)].
    Both are built from {e loose-orderings} [F1 < ... < Fq], which are
    sequences of {e fragments}, which are unordered collections of
    {e ranges} [n[u,v]].

    Constructors in this module perform no global validation; use
    {!Wellformed.check} (or {!Monitor.create}, which checks) before
    interpreting a pattern.  Local impossibilities ([u < 1], [u > v],
    empty fragment, ...) are still rejected eagerly because no meaning
    exists for them at all. *)

type range = private { name : Name.t; lo : int; hi : int }
(** [n[u,v]]: between [lo] and [hi] consecutive occurrences of [name],
    with [1 <= lo <= hi]. *)

type connective =
  | All  (** [∧] — every range of the fragment must contribute a block *)
  | Any  (** [∨] — at least one range must contribute a block *)

type fragment = private { ranges : range list; connective : connective }
(** [({R1..Rn}, ⊕)]: one contiguous block per contributing range, blocks
    concatenated in any order. *)

type ordering = fragment list
(** [F1 < ... < Fq]: fragment blocks concatenated in this exact order. *)

type antecedent = private {
  body : ordering;  (** [P] *)
  trigger : Name.t;  (** [i] *)
  repeated : bool;  (** [b] — each [i] needs its own fresh [P] *)
}

type timed = private {
  premise : ordering;  (** [P] *)
  conclusion : ordering;  (** [Q] *)
  deadline : int;  (** [t], in simulation time units (>= 0) *)
}

type t = Antecedent of antecedent | Timed of timed

(** {1 Constructors} *)

val range : ?lo:int -> ?hi:int -> Name.t -> range
(** [range ~lo ~hi n] is [n[lo,hi]]; both bounds default to [1].
    Raises [Invalid_argument] unless [1 <= lo <= hi]. *)

val exactly : int -> Name.t -> range
(** [exactly k n] is [n[k,k]]. *)

val fragment : ?connective:connective -> range list -> fragment
(** [fragment ranges] is a fragment; [connective] defaults to [All].
    Raises [Invalid_argument] on an empty range list. *)

val single : Name.t -> fragment
(** [single n] is [({n[1,1]}, ∧)] — the common one-name fragment. *)

val antecedent : ?repeated:bool -> ordering -> trigger:Name.t -> t
(** [antecedent body ~trigger] is [(body << trigger, repeated)];
    [repeated] defaults to [false].
    Raises [Invalid_argument] on an empty ordering. *)

val timed : ordering -> ordering -> deadline:int -> t
(** [timed p q ~deadline] is [(p => q, deadline)].
    Raises [Invalid_argument] on an empty ordering or negative deadline. *)

(** {1 Alphabets}

    [alpha_*] is the set [α] of interface names appearing in a construct. *)

val alpha_range : range -> Name.Set.t
val alpha_fragment : fragment -> Name.Set.t
val alpha_ordering : ordering -> Name.Set.t
val alpha : t -> Name.Set.t
(** [alpha p] includes the trigger of an antecedent. *)

(** {1 Structure accessors} *)

val body_ordering : t -> ordering
(** The ordering a monitor recognizes round by round: [P] for an
    antecedent, [P] concatenated with [Q] for a timed implication
    (Section 5: "concatenate P and Q"). *)

val premise_length : t -> int
(** Number of fragments belonging to [P] inside {!body_ordering}
    (equals [List.length (body_ordering p)] for an antecedent). *)

val fragment_count : t -> int
val range_count : t -> int
val name_count : t -> int
(** [name_count p] is [Σ_F |α(F)|] over the fragments of
    {!body_ordering} (the trigger is not counted). *)

val max_fragment_width : t -> int
(** [maxᵢ |α(Fᵢ)|] — the paper's Drct time-complexity parameter. *)

val max_hi : t -> int
(** [max vᵢ] over all ranges — the paper's counter-width parameter. *)

(** {1 Pretty-printing, equality} *)

val equal_range : range -> range -> bool
val equal : t -> t -> bool
val pp_range : Format.formatter -> range -> unit
val pp_fragment : Format.formatter -> fragment -> unit
val pp_ordering : Format.formatter -> ordering -> unit
val pp : Format.formatter -> t -> unit
(** Prints the concrete syntax accepted by {!Parser}. *)

val to_string : t -> string
