(** Violation diagnostics reported by monitors. *)

type reason =
  | Before_name  (** a name of an earlier fragment re-occurred ([B]) *)
  | After_name  (** a name of a later fragment occurred too early ([Af]) *)
  | Overflow of Pattern.range  (** more than [hi] consecutive occurrences *)
  | Underflow of Pattern.range  (** block left before [lo] occurrences *)
  | Reentered of Pattern.range  (** a second block for the same range *)
  | Missing of Pattern.range  (** [∧]-range absent when the fragment stopped *)
  | Empty_fragment  (** [∨]-fragment contributed no block at all *)
  | Trigger_early  (** antecedent trigger with [P] not yet recognized *)
  | Deadline_miss of { started : int; deadline : int; now : int }
      (** [Q] not finished when the deadline elapsed *)
  | Late_conclusion of { deadline : int; at : int }
      (** an event of [Q]'s occurrence arrived after the deadline *)
  | Foreign of Name.t  (** non-alphabet event (strict mode only) *)
  | Formula_falsified
      (** the residual PSL obligation became [False] (ViaPSL backend;
          no finer structural diagnosis is available there) *)

type violation = {
  name : Name.t option;  (** offending event ([None] for timeouts) *)
  time : int;  (** simulation time of the violation *)
  index : int;  (** ordinal of the offending event, [-1] for timeouts *)
  fragment : int;  (** 0-based active fragment when the violation occurred *)
  reason : reason;
}

val pp_reason : Format.formatter -> reason -> unit
val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
val equal_reason : reason -> reason -> bool
