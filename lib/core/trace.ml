type event = { name : Name.t; time : int }
type t = event list

let event ?(time = 0) name = { name; time }
let of_names names = List.mapi (fun i name -> { name; time = i }) names
let of_strings ss = of_names (List.map Name.v ss)
let names tr = List.map (fun e -> e.name) tr
let length = List.length

let end_time tr =
  match List.rev tr with [] -> 0 | last :: _ -> last.time

let is_chronological tr =
  let rec loop prev = function
    | [] -> true
    | e :: rest -> e.time >= prev && e.time >= 0 && loop e.time rest
  in
  loop 0 tr

let restrict alpha tr = List.filter (fun e -> Name.Set.mem e.name alpha) tr

let append a b =
  let shift = end_time a + 1 in
  a @ List.map (fun e -> { e with time = e.time + shift }) b

let pp_event ppf e = Format.fprintf ppf "%a@@%d" Name.pp e.name e.time

let pp ppf tr =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_space ppf ())
    pp_event ppf tr

let to_string tr = Format.asprintf "@[<h>%a@]" pp tr

let parse s =
  let tokens =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\n')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun tok -> tok <> "")
  in
  let parse_token prev_time tok =
    match String.index_opt tok '@' with
    | None -> (
        match Name.v tok with
        | name -> Ok { name; time = prev_time + 1 }
        | exception Invalid_argument msg -> Error msg)
    | Some at -> (
        let name_str = String.sub tok 0 at in
        let time_str = String.sub tok (at + 1) (String.length tok - at - 1) in
        match (Name.v name_str, int_of_string_opt time_str) with
        | name, Some time when time >= 0 -> Ok { name; time }
        | _, (Some _ | None) ->
            Error (Printf.sprintf "invalid timestamp in %S" tok)
        | exception Invalid_argument msg -> Error msg)
  in
  let rec loop prev_time acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match parse_token prev_time tok with
        | Error _ as e -> e
        | Ok e ->
            if e.time < prev_time then
              Error
                (Printf.sprintf "trace is not chronological at %S" tok)
            else loop e.time (e :: acc) rest)
  in
  loop (-1) [] tokens
