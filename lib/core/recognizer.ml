type state =
  | Idle
  | Waiting
  | Waiting_started
  | Counting of int
  | Done_counting of int
  | Failed

type output = Quiet | Ok | Nok | Err of Diag.reason

type t = { ctx : Context.t; mutable state : state; ops : int ref }

let create ?(ops = ref 0) ctx = { ctx; state = Idle; ops }
let context t = t.ctx
let state t = t.state
let tick t n = t.ops := !(t.ops) + n

let start t =
  tick t 1;
  t.state <- Waiting

let start_with t category =
  tick t 2;
  match category with
  | Context.Self -> t.state <- Counting 1
  | Context.Current -> t.state <- Waiting_started
  | Context.Before | Context.Accept | Context.After | Context.Outside ->
      invalid_arg "Recognizer.start_with: starting event must be in α(F)"

let range t = t.ctx.Context.range

(* The automaton of Fig. 5.  [ok]/[nok] send the recognizer back to s0;
   [err] is absorbing until [reset]. *)
let step t category =
  tick t 3;
  let fail reason =
    t.state <- Failed;
    Err reason
  in
  let finish output =
    t.state <- Idle;
    output
  in
  let r = range t in
  let disjunctive = t.ctx.Context.connective = Pattern.Any in
  match (t.state, category) with
  | (Idle | Failed), _ ->
      invalid_arg "Recognizer.step: recognizer is not running"
  | _, Context.Outside -> Quiet
  | Waiting, Context.Self ->
      t.state <- Counting 1;
      Quiet
  | Waiting, Context.Current ->
      t.state <- Waiting_started;
      Quiet
  | Waiting, Context.Accept ->
      if disjunctive then finish Nok else fail (Diag.Missing r)
  | Waiting, Context.Before -> fail Diag.Before_name
  | Waiting, Context.After -> fail Diag.After_name
  | Waiting_started, Context.Self ->
      t.state <- Counting 1;
      Quiet
  | Waiting_started, Context.Current -> Quiet
  | Waiting_started, Context.Accept ->
      if disjunctive then finish Nok else fail (Diag.Missing r)
  | Waiting_started, Context.Before -> fail Diag.Before_name
  | Waiting_started, Context.After -> fail Diag.After_name
  | Counting c, Context.Self ->
      tick t 1;
      if c >= r.hi then fail (Diag.Overflow r)
      else (
        t.state <- Counting (c + 1);
        Quiet)
  | Counting c, Context.Current ->
      tick t 1;
      if c >= r.lo then (
        t.state <- Done_counting c;
        Quiet)
      else fail (Diag.Underflow r)
  | Counting c, Context.Accept ->
      tick t 1;
      if c >= r.lo then finish Ok else fail (Diag.Underflow r)
  | Counting _, Context.Before -> fail Diag.Before_name
  | Counting _, Context.After -> fail Diag.After_name
  | Done_counting _, Context.Self -> fail (Diag.Reentered r)
  | Done_counting _, Context.Current -> Quiet
  | Done_counting _, Context.Accept -> finish Ok
  | Done_counting _, Context.Before -> fail Diag.Before_name
  | Done_counting _, Context.After -> fail Diag.After_name

let would_accept t =
  let r = range t in
  let disjunctive = t.ctx.Context.connective = Pattern.Any in
  match t.state with
  | Idle | Failed -> invalid_arg "Recognizer.would_accept: not running"
  | Waiting | Waiting_started ->
      if disjunctive then Nok else Err (Diag.Missing r)
  | Counting c -> if c >= r.lo then Ok else Err (Diag.Underflow r)
  | Done_counting _ -> Ok

let reset t = t.state <- Idle

let counter_bits t =
  let rec bits n acc = if n = 0 then max acc 1 else bits (n lsr 1) (acc + 1) in
  bits (range t).hi 0

let space_bits ?(name_bits = 8) t =
  3 + counter_bits t + (Context.size t.ctx * name_bits)

let pp_state ppf = function
  | Idle -> Format.pp_print_string ppf "s0/idle"
  | Waiting -> Format.pp_print_string ppf "s1/waiting"
  | Waiting_started -> Format.pp_print_string ppf "s2/waiting-started"
  | Counting c -> Format.fprintf ppf "s3/counting(%d)" c
  | Done_counting c -> Format.fprintf ppf "s4/done(%d)" c
  | Failed -> Format.pp_print_string ppf "s5/error"

let pp ppf t =
  Format.fprintf ppf "@[<h>%a in %a@]" Pattern.pp_range (range t) pp_state
    t.state
