(* The whole-suite flat-table engine.  One Bigarray int slab per
   checker carries every mutable word; all static tables are plain
   read-only int arrays built at compile time.  The step function is a
   literal mirror of [Compiled.step_id] (same recognizer codes, same
   branch structure) over slab slots instead of record fields — the
   agreement is property-tested in test_backend. *)

module Ba = Bigarray.Array1

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Ba.t

(* Control words per checker slab, at [checker_base + offset]. *)
let ctrl_slots = 13
let o_active = 0
let o_verdict = 1 (* 0 running / 1 satisfied / 2 violated *)
let o_index = 2
let o_started = 3 (* -1 = unarmed *)
let o_qdone = 4
let o_rounds = 5

(* Violation descriptor (meaningful when verdict = 2). *)
let o_vreason = 6
let o_vrec = 7 (* global recognizer of a range diagnostic, -1 = none *)
let o_vtime = 8
let o_vindex = 9
let o_va = 10 (* started / deadline *)
let o_vb = 11 (* deadline / at *)
let o_vc = 12 (* now *)

let v_running = 0
let v_satisfied = 1
let v_violated = 2

(* Recognizer states and categories: the [Compiled] codes. *)
let s_idle = 0
let s_waiting = 1
let s_started = 2
let s_counting = 3
let s_done = 4
let c_self = 0
let c_current = 1
let c_before = 2
let c_accept = 3

(* c_after = 4 is the fall-through branch *)

(* Recognizer outcomes. *)
let o_quiet = 0
let o_ok = 1
let o_nok = 2
let o_err = 3

(* Violation reason codes (o_vreason). *)
let r_before = 0
let r_after = 1
let r_overflow = 2
let r_underflow = 3
let r_reentered = 4
let r_missing = 5
let r_empty = 6
let r_trigger_early = 7
let r_deadline = 8
let r_late = 9

type t = {
  (* identity *)
  labels : string array;
  patterns : Pattern.t array;
  alphas : Name.Set.t array;
  (* interning *)
  names : Name.t array; (* gid -> name *)
  gids : (Name.t, int) Hashtbl.t;
  (* per checker *)
  ck_base : int array;
  ck_rec0 : int array; (* first global recognizer *)
  ck_nrecs : int array;
  ck_frag0 : int array; (* first global fragment *)
  ck_loc0 : int array; (* base into the local-name tables *)
  ck_nloc : int array;
  ck_q : int array; (* fragment count *)
  ck_repeated : bool array;
  ck_timed : bool array;
  ck_premise_last : int array;
  ck_deadline : int array;
  timed_cks : int array;
  (* per (checker, local name), flattened at ck_loc0 *)
  loc_owner : int array; (* fragment (checker-local), -1 = terminator-only *)
  loc_term : bool array;
  loc_gid : int array;
  loc_of_gid : int array; (* ck * n_names + gid -> local id, -1 = absent *)
  (* per fragment (global ids) *)
  frag_first : int array; (* global recognizer index *)
  frag_count : int array;
  (* per recognizer (global ids) *)
  rec_lo : int array;
  rec_hi : int array;
  rec_disj : bool array;
  rec_range : Pattern.range array; (* diagnostics *)
  rec_cat0 : int array; (* base into [cat]; row indexed by local id *)
  rec_sslot : int array; (* state slot *)
  rec_cslot : int array; (* counter slot *)
  cat : Bytes.t; (* category codes, one byte per (recognizer, local) *)
  (* name dispatch: CSR rows over gids *)
  sub_off : int array; (* n_names + 1 *)
  sub_ck : int array;
  sub_loc : int array;
  (* run state *)
  st : ba;
  mutable fr : int; (* scratch: failing reason code *)
  mutable fr_rec : int; (* scratch: failing recognizer, -1 = none *)
  mutable dl_gen : int;
  mutable notify : (int -> unit) option;
}

let category_code = function
  | Context.Self -> c_self
  | Context.Current -> c_current
  | Context.Before -> c_before
  | Context.Accept -> c_accept
  | Context.After -> 4
  | Context.Outside -> assert false

(* ---- compilation ------------------------------------------------------- *)

type pre = {
  p_label : string;
  p_pattern : Pattern.t;
  p_alpha : Name.Set.t;
  p_locals : Name.t array;
  p_owner : int array;
  p_term : bool array;
  p_contexts : Context.t list;
  p_frag_first : int array; (* checker-local recognizer index *)
  p_frag_count : int array;
  p_repeated : bool;
  p_timed : bool;
  p_premise_last : int;
  p_deadline : int;
}

let precompile (label, pattern) =
  Wellformed.check_exn pattern;
  let ordering = Pattern.body_ordering pattern in
  let contexts = List.concat (Context.of_pattern pattern) in
  let alpha = Pattern.alpha pattern in
  let locals = Array.of_list (Name.Set.elements alpha) in
  let n_loc = Array.length locals in
  let ids = Hashtbl.create 16 in
  Array.iteri (fun i nm -> Hashtbl.replace ids nm i) locals;
  let id nm = Hashtbl.find ids nm in
  let owner = Array.make n_loc (-1) in
  List.iteri
    (fun f (frag : Pattern.fragment) ->
      List.iter (fun (r : Pattern.range) -> owner.(id r.name) <- f) frag.ranges)
    ordering;
  let term = Array.make n_loc false in
  Name.Set.iter (fun nm -> term.(id nm) <- true) (Context.terminators pattern);
  let q = List.length ordering in
  let frag_first = Array.make q 0 in
  let frag_count = Array.make q 0 in
  let offset = ref 0 in
  List.iteri
    (fun f (frag : Pattern.fragment) ->
      frag_first.(f) <- !offset;
      frag_count.(f) <- List.length frag.ranges;
      offset := !offset + List.length frag.ranges)
    ordering;
  let repeated, timed, premise_last, deadline =
    match pattern with
    | Pattern.Antecedent a -> (a.repeated, false, -2, 0)
    | Pattern.Timed g -> (true, true, List.length g.premise - 1, g.deadline)
  in
  {
    p_label = label;
    p_pattern = pattern;
    p_alpha = alpha;
    p_locals = locals;
    p_owner = owner;
    p_term = term;
    p_contexts = contexts;
    p_frag_first = frag_first;
    p_frag_count = frag_count;
    p_repeated = repeated;
    p_timed = timed;
    p_premise_last = premise_last;
    p_deadline = deadline;
  }

let compile entries =
  let pres = Array.of_list (List.map precompile entries) in
  let n_ck = Array.length pres in
  (* Intern every name across the suite, first-appearance order. *)
  let gids = Hashtbl.create 64 in
  let names_rev = ref [] in
  let n_names = ref 0 in
  Array.iter
    (fun p ->
      Array.iter
        (fun nm ->
          if not (Hashtbl.mem gids nm) then begin
            Hashtbl.replace gids nm !n_names;
            names_rev := nm :: !names_rev;
            incr n_names
          end)
        p.p_locals)
    pres;
  let n_names = !n_names in
  let names = Array.of_list (List.rev !names_rev) in
  (* Global extents. *)
  let total_recs =
    Array.fold_left (fun a p -> a + List.length p.p_contexts) 0 pres
  in
  let total_frags = Array.fold_left (fun a p -> a + Array.length p.p_frag_first) 0 pres in
  let total_locs = Array.fold_left (fun a p -> a + Array.length p.p_locals) 0 pres in
  let cat_bytes =
    Array.fold_left
      (fun a p -> a + (List.length p.p_contexts * Array.length p.p_locals))
      0 pres
  in
  let ck_base = Array.make n_ck 0 in
  let ck_rec0 = Array.make n_ck 0 in
  let ck_nrecs = Array.make n_ck 0 in
  let ck_frag0 = Array.make n_ck 0 in
  let ck_loc0 = Array.make n_ck 0 in
  let ck_nloc = Array.make n_ck 0 in
  let ck_q = Array.make n_ck 0 in
  let ck_repeated = Array.make n_ck false in
  let ck_timed = Array.make n_ck false in
  let ck_premise_last = Array.make n_ck (-2) in
  let ck_deadline = Array.make n_ck 0 in
  let loc_owner = Array.make total_locs (-1) in
  let loc_term = Array.make total_locs false in
  let loc_gid = Array.make total_locs 0 in
  let loc_of_gid = Array.make (max 1 (n_ck * n_names)) (-1) in
  let frag_first = Array.make total_frags 0 in
  let frag_count = Array.make total_frags 0 in
  let rec_lo = Array.make total_recs 1 in
  let rec_hi = Array.make total_recs 1 in
  let rec_disj = Array.make total_recs false in
  let rec_range =
    Array.make total_recs (Pattern.range ~lo:1 ~hi:1 (Name.v "_"))
  in
  let rec_cat0 = Array.make total_recs 0 in
  let rec_sslot = Array.make total_recs 0 in
  let rec_cslot = Array.make total_recs 0 in
  let cat = Bytes.create (max 1 cat_bytes) in
  let slot = ref 0 in
  let next_rec = ref 0 in
  let next_frag = ref 0 in
  let next_loc = ref 0 in
  let next_cat = ref 0 in
  Array.iteri
    (fun ck p ->
      let n_loc = Array.length p.p_locals in
      let n_recs = List.length p.p_contexts in
      ck_base.(ck) <- !slot;
      ck_rec0.(ck) <- !next_rec;
      ck_nrecs.(ck) <- n_recs;
      ck_frag0.(ck) <- !next_frag;
      ck_loc0.(ck) <- !next_loc;
      ck_nloc.(ck) <- n_loc;
      ck_q.(ck) <- Array.length p.p_frag_first;
      ck_repeated.(ck) <- p.p_repeated;
      ck_timed.(ck) <- p.p_timed;
      ck_premise_last.(ck) <- p.p_premise_last;
      ck_deadline.(ck) <- p.p_deadline;
      Array.iteri
        (fun l nm ->
          let gid = Hashtbl.find gids nm in
          loc_owner.(!next_loc + l) <- p.p_owner.(l);
          loc_term.(!next_loc + l) <- p.p_term.(l);
          loc_gid.(!next_loc + l) <- gid;
          loc_of_gid.((ck * n_names) + gid) <- l)
        p.p_locals;
      Array.iteri
        (fun f first ->
          frag_first.(!next_frag + f) <- ck_rec0.(ck) + first;
          frag_count.(!next_frag + f) <- p.p_frag_count.(f))
        p.p_frag_first;
      List.iteri
        (fun j ctx ->
          let r = !next_rec + j in
          rec_lo.(r) <- ctx.Context.range.Pattern.lo;
          rec_hi.(r) <- ctx.Context.range.Pattern.hi;
          rec_disj.(r) <- ctx.Context.connective = Pattern.Any;
          rec_range.(r) <- ctx.Context.range;
          rec_cat0.(r) <- !next_cat + (j * n_loc);
          rec_sslot.(r) <- !slot + ctrl_slots + j;
          rec_cslot.(r) <- !slot + ctrl_slots + n_recs + j;
          Array.iteri
            (fun l nm ->
              Bytes.set cat
                (rec_cat0.(r) + l)
                (Char.chr (category_code (Context.classify ctx nm))))
            p.p_locals)
        p.p_contexts;
      slot := !slot + ctrl_slots + (2 * n_recs);
      next_rec := !next_rec + n_recs;
      next_frag := !next_frag + Array.length p.p_frag_first;
      next_loc := !next_loc + n_loc;
      next_cat := !next_cat + (n_recs * n_loc))
    pres;
  (* Dispatch CSR: one row per gid, (checker, local) pairs in suite
     order. *)
  let counts = Array.make (n_names + 1) 0 in
  Array.iter (fun gid -> counts.(gid + 1) <- counts.(gid + 1) + 1) loc_gid;
  let sub_off = Array.make (n_names + 1) 0 in
  for g = 1 to n_names do
    sub_off.(g) <- sub_off.(g - 1) + counts.(g)
  done;
  let sub_ck = Array.make (max 1 total_locs) 0 in
  let sub_loc = Array.make (max 1 total_locs) 0 in
  let cursor = Array.copy sub_off in
  Array.iteri
    (fun ck _ ->
      for l = 0 to ck_nloc.(ck) - 1 do
        let gid = loc_gid.(ck_loc0.(ck) + l) in
        let k = cursor.(gid) in
        sub_ck.(k) <- ck;
        sub_loc.(k) <- l;
        cursor.(gid) <- k + 1
      done)
    pres;
  let st = Ba.create Bigarray.int Bigarray.c_layout (max 1 !slot) in
  Ba.fill st 0;
  let t =
    {
      labels = Array.map (fun p -> p.p_label) pres;
      patterns = Array.map (fun p -> p.p_pattern) pres;
      alphas = Array.map (fun p -> p.p_alpha) pres;
      names;
      gids;
      ck_base;
      ck_rec0;
      ck_nrecs;
      ck_frag0;
      ck_loc0;
      ck_nloc;
      ck_q;
      ck_repeated;
      ck_timed;
      ck_premise_last;
      ck_deadline;
      timed_cks =
        Array.of_list
          (List.filter
             (fun ck -> ck_timed.(ck))
             (List.init n_ck (fun i -> i)));
      loc_owner;
      loc_term;
      loc_gid;
      loc_of_gid;
      frag_first;
      frag_count;
      rec_lo;
      rec_hi;
      rec_disj;
      rec_range;
      rec_cat0;
      rec_sslot;
      rec_cslot;
      cat;
      sub_off;
      sub_ck;
      sub_loc;
      st;
      fr = r_empty;
      fr_rec = -1;
      dl_gen = 0;
      notify = None;
    }
  in
  t

(* ---- initial configuration -------------------------------------------- *)

let init_checker t ck =
  let base = t.ck_base.(ck) in
  let n = t.ck_nrecs.(ck) in
  for i = 0 to ctrl_slots + (2 * n) - 1 do
    Ba.set t.st (base + i) 0
  done;
  Ba.set t.st (base + o_started) (-1);
  Ba.set t.st (base + o_vrec) (-1);
  let g0 = t.ck_frag0.(ck) in
  for r = t.frag_first.(g0) to t.frag_first.(g0) + t.frag_count.(g0) - 1 do
    Ba.set t.st t.rec_sslot.(r) s_waiting
  done

let reset_checker t ck =
  init_checker t ck;
  t.dl_gen <- t.dl_gen + 1

let reset t =
  for ck = 0 to Array.length t.labels - 1 do
    init_checker t ck
  done;
  t.dl_gen <- t.dl_gen + 1

let compile entries =
  let t = compile entries in
  for ck = 0 to Array.length t.labels - 1 do
    init_checker t ck
  done;
  t

(* ---- identity ---------------------------------------------------------- *)

let size t = Array.length t.labels
let label t ck = t.labels.(ck)
let pattern t ck = t.patterns.(ck)
let alphabet t ck = t.alphas.(ck)
let names t = t.names
let gid_of_name t nm = Hashtbl.find_opt t.gids nm

let local_of_name t ck nm =
  match Hashtbl.find_opt t.gids nm with
  | None -> -1
  | Some gid ->
      let l = t.loc_of_gid.((ck * Array.length t.names) + gid) in
      l

let timed_checkers t = t.timed_cks
let deadline_generation t = t.dl_gen
let set_notify t f = t.notify <- f

(* ---- verdict accessors ------------------------------------------------- *)

let verdict_code t ck = Ba.get t.st (t.ck_base.(ck) + o_verdict)
let active_fragment t ck = Ba.get t.st (t.ck_base.(ck) + o_active)
let index t ck = Ba.get t.st (t.ck_base.(ck) + o_index)
let rounds_completed t ck = Ba.get t.st (t.ck_base.(ck) + o_rounds)

let steps_total t =
  let sum = ref 0 in
  Array.iter (fun base -> sum := !sum + Ba.get t.st (base + o_index)) t.ck_base;
  !sum

let reason_of t ck : Diag.reason =
  let base = t.ck_base.(ck) in
  let range () = t.rec_range.(Ba.get t.st (base + o_vrec)) in
  let code = Ba.get t.st (base + o_vreason) in
  if code = r_before then Diag.Before_name
  else if code = r_after then Diag.After_name
  else if code = r_overflow then Diag.Overflow (range ())
  else if code = r_underflow then Diag.Underflow (range ())
  else if code = r_reentered then Diag.Reentered (range ())
  else if code = r_missing then Diag.Missing (range ())
  else if code = r_empty then Diag.Empty_fragment
  else if code = r_trigger_early then Diag.Trigger_early
  else if code = r_deadline then
    Diag.Deadline_miss
      {
        started = Ba.get t.st (base + o_va);
        deadline = Ba.get t.st (base + o_vb);
        now = Ba.get t.st (base + o_vc);
      }
  else
    Diag.Late_conclusion
      { deadline = Ba.get t.st (base + o_va); at = Ba.get t.st (base + o_vb) }

let verdict t ck : Compiled.verdict =
  let base = t.ck_base.(ck) in
  let v = Ba.get t.st (base + o_verdict) in
  if v = v_running then Compiled.Running
  else if v = v_satisfied then Compiled.Satisfied
  else
    Compiled.Violated
      {
        reason = reason_of t ck;
        time = Ba.get t.st (base + o_vtime);
        index = Ba.get t.st (base + o_vindex);
      }

(* ---- the step machine -------------------------------------------------- *)

let violate t ck ~reason ~vrec ~time ~idx ~a ~b ~c =
  let st = t.st in
  let base = Array.unsafe_get t.ck_base ck in
  Ba.unsafe_set st (base + o_verdict) v_violated;
  Ba.unsafe_set st (base + o_vreason) reason;
  Ba.unsafe_set st (base + o_vrec) vrec;
  Ba.unsafe_set st (base + o_vtime) time;
  Ba.unsafe_set st (base + o_vindex) idx;
  Ba.unsafe_set st (base + o_va) a;
  Ba.unsafe_set st (base + o_vb) b;
  Ba.unsafe_set st (base + o_vc) c;
  if Array.unsafe_get t.ck_timed ck then t.dl_gen <- t.dl_gen + 1;
  match t.notify with Some f -> f ck | None -> ()

(* One Fig. 5 recognizer step; on [o_err] the reason is in
   [t.fr]/[t.fr_rec] (single-threaded monitors, allocation-free). *)
let rec_step t r c =
  let st = t.st in
  let ss = Array.unsafe_get t.rec_sslot r in
  let s = Ba.unsafe_get st ss in
  let fail code =
    t.fr <- code;
    t.fr_rec <- r;
    o_err
  in
  if s = s_waiting || s = s_started then
    if c = c_self then begin
      Ba.unsafe_set st ss s_counting;
      Ba.unsafe_set st (Array.unsafe_get t.rec_cslot r) 1;
      o_quiet
    end
    else if c = c_current then begin
      if s = s_waiting then Ba.unsafe_set st ss s_started;
      o_quiet
    end
    else if c = c_accept then
      if Array.unsafe_get t.rec_disj r then begin
        Ba.unsafe_set st ss s_idle;
        o_nok
      end
      else fail r_missing
    else if c = c_before then fail r_before
    else fail r_after
  else if s = s_counting then begin
    let cs = Array.unsafe_get t.rec_cslot r in
    let n = Ba.unsafe_get st cs in
    if c = c_self then
      if n >= Array.unsafe_get t.rec_hi r then fail r_overflow
      else begin
        Ba.unsafe_set st cs (n + 1);
        o_quiet
      end
    else if c = c_current then
      if n >= Array.unsafe_get t.rec_lo r then begin
        Ba.unsafe_set st ss s_done;
        o_quiet
      end
      else fail r_underflow
    else if c = c_accept then
      if n >= Array.unsafe_get t.rec_lo r then begin
        Ba.unsafe_set st ss s_idle;
        o_ok
      end
      else fail r_underflow
    else if c = c_before then fail r_before
    else fail r_after
  end
  else if s = s_done then
    if c = c_self then fail r_reentered
    else if c = c_current then o_quiet
    else if c = c_accept then begin
      Ba.unsafe_set st ss s_idle;
      o_ok
    end
    else if c = c_before then fail r_before
    else fail r_after
  else o_quiet (* idle: not stepped in practice *)

(* Would the active fragment complete on an Accept right now? *)
let min_complete t ck =
  let st = t.st in
  let f = Ba.unsafe_get st (Array.unsafe_get t.ck_base ck + o_active) in
  if f < 0 then false
  else begin
    let gf = Array.unsafe_get t.ck_frag0 ck + f in
    let first = Array.unsafe_get t.frag_first gf in
    let oks = ref 0 in
    let viable = ref true in
    for r = first to first + Array.unsafe_get t.frag_count gf - 1 do
      let s = Ba.unsafe_get st (Array.unsafe_get t.rec_sslot r) in
      if s = s_counting then
        if
          Ba.unsafe_get st (Array.unsafe_get t.rec_cslot r)
          >= Array.unsafe_get t.rec_lo r
        then incr oks
        else viable := false
      else if s = s_done then incr oks
      else if not (Array.unsafe_get t.rec_disj r) then viable := false
    done;
    !viable && !oks > 0
  end

(* Deliver Accept to the active fragment; true on success. *)
let try_complete t ck ~time =
  let st = t.st in
  let base = Array.unsafe_get t.ck_base ck in
  let f = Ba.unsafe_get st (base + o_active) in
  let gf = Array.unsafe_get t.ck_frag0 ck + f in
  let first = Array.unsafe_get t.frag_first gf in
  let oks = ref 0 in
  let failed = ref false in
  t.fr <- r_empty;
  t.fr_rec <- -1;
  for r = first to first + Array.unsafe_get t.frag_count gf - 1 do
    if not !failed then begin
      let o = rec_step t r c_accept in
      if o = o_ok then incr oks else if o = o_err then failed := true
    end
  done;
  let idx = Ba.unsafe_get st (base + o_index) - 1 in
  if !failed then begin
    violate t ck ~reason:t.fr ~vrec:t.fr_rec ~time ~idx ~a:0 ~b:0 ~c:0;
    false
  end
  else if !oks = 0 then begin
    violate t ck ~reason:r_empty ~vrec:(-1) ~time ~idx ~a:0 ~b:0 ~c:0;
    false
  end
  else true

let start_fragment_with t ck f loc =
  let st = t.st in
  let base = Array.unsafe_get t.ck_base ck in
  Ba.unsafe_set st (base + o_active) f;
  let gf = Array.unsafe_get t.ck_frag0 ck + f in
  let first = Array.unsafe_get t.frag_first gf in
  for r = first to first + Array.unsafe_get t.frag_count gf - 1 do
    let c =
      Char.code (Bytes.unsafe_get t.cat (Array.unsafe_get t.rec_cat0 r + loc))
    in
    if c = c_self then begin
      Ba.unsafe_set st (Array.unsafe_get t.rec_sslot r) s_counting;
      Ba.unsafe_set st (Array.unsafe_get t.rec_cslot r) 1
    end
    else Ba.unsafe_set st (Array.unsafe_get t.rec_sslot r) s_started
  done

let refresh_timed t ck ~time =
  if Array.unsafe_get t.ck_timed ck then begin
    let st = t.st in
    let base = Array.unsafe_get t.ck_base ck in
    let active = Ba.unsafe_get st (base + o_active) in
    if active = Array.unsafe_get t.ck_premise_last ck && min_complete t ck
    then begin
      Ba.unsafe_set st (base + o_started) time;
      t.dl_gen <- t.dl_gen + 1
    end
    else if
      active = Array.unsafe_get t.ck_q ck - 1
      && Ba.unsafe_get st (base + o_qdone) = 0
      && min_complete t ck
    then begin
      Ba.unsafe_set st (base + o_qdone) 1;
      Ba.unsafe_set st (base + o_rounds) (Ba.unsafe_get st (base + o_rounds) + 1);
      t.dl_gen <- t.dl_gen + 1
    end
  end

(* The internal dispatch path: [ck]/[loc] are trusted (they come from
   the engine's own tables).  The deadline slots are only read once the
   checker is known to be timed and armed, so untimed checkers pay
   nothing for them on the hot path. *)
let step_trusted t ck loc ~time =
  let st = t.st in
  let base = Array.unsafe_get t.ck_base ck in
  if Ba.unsafe_get st (base + o_verdict) = v_running then begin
    let idx = Ba.unsafe_get st (base + o_index) + 1 in
    Ba.unsafe_set st (base + o_index) idx;
    let timed = Array.unsafe_get t.ck_timed ck in
    let started = if timed then Ba.unsafe_get st (base + o_started) else -1 in
    let armed = timed && started >= 0 in
    let dl =
      if armed then started + Array.unsafe_get t.ck_deadline ck else max_int
    in
    let qdone = armed && Ba.unsafe_get st (base + o_qdone) = 1 in
    let f = Array.unsafe_get t.loc_owner (Array.unsafe_get t.ck_loc0 ck + loc) in
    if armed && (not qdone) && time > dl then
      violate t ck ~reason:r_deadline ~vrec:(-1) ~time ~idx:(idx - 1)
        ~a:started ~b:dl ~c:time
    else if
      armed && qdone && time > dl && f > Array.unsafe_get t.ck_premise_last ck
    then
      violate t ck ~reason:r_late ~vrec:(-1) ~time ~idx:(idx - 1) ~a:dl ~b:time
        ~c:0
    else begin
      let active = Ba.unsafe_get st (base + o_active) in
      let last = Array.unsafe_get t.ck_q ck - 1 in
      if f = active then begin
        (* Step every recognizer of the active fragment. *)
        let gf = Array.unsafe_get t.ck_frag0 ck + f in
        let first = Array.unsafe_get t.frag_first gf in
        t.fr <- r_empty;
        t.fr_rec <- -1;
        let failed = ref false in
        for r = first to first + Array.unsafe_get t.frag_count gf - 1 do
          if not !failed then begin
            let c =
              Char.code
                (Bytes.unsafe_get t.cat (Array.unsafe_get t.rec_cat0 r + loc))
            in
            if rec_step t r c = o_err then failed := true
          end
        done;
        if !failed then
          violate t ck ~reason:t.fr ~vrec:t.fr_rec ~time ~idx:(idx - 1) ~a:0
            ~b:0 ~c:0
        else refresh_timed t ck ~time
      end
      else if
        active = last && Array.unsafe_get t.loc_term (t.ck_loc0.(ck) + loc)
      then begin
        if try_complete t ck ~time then
          if not timed then begin
            Ba.unsafe_set st (base + o_rounds)
              (Ba.unsafe_get st (base + o_rounds) + 1);
            if Array.unsafe_get t.ck_repeated ck then begin
              (* fresh round, bare start *)
              let g0 = Array.unsafe_get t.ck_frag0 ck in
              let first = Array.unsafe_get t.frag_first g0 in
              for r = first to first + Array.unsafe_get t.frag_count g0 - 1 do
                Ba.unsafe_set st (Array.unsafe_get t.rec_sslot r) s_waiting
              done;
              Ba.unsafe_set st (base + o_active) 0
            end
            else begin
              Ba.unsafe_set st (base + o_verdict) v_satisfied;
              match t.notify with Some g -> g ck | None -> ()
            end
          end
          else begin
            (* timed: the terminator opens the next round *)
            start_fragment_with t ck 0 loc;
            Ba.unsafe_set st (base + o_started) (-1);
            Ba.unsafe_set st (base + o_qdone) 0;
            t.dl_gen <- t.dl_gen + 1;
            refresh_timed t ck ~time
          end
      end
      else if f = active + 1 then begin
        if try_complete t ck ~time then begin
          start_fragment_with t ck f loc;
          refresh_timed t ck ~time
        end
      end
      else if f >= 0 && f <= active then
        violate t ck ~reason:r_before ~vrec:(-1) ~time ~idx:(idx - 1) ~a:0 ~b:0
          ~c:0
      else if f >= 0 then
        violate t ck ~reason:r_after ~vrec:(-1) ~time ~idx:(idx - 1) ~a:0 ~b:0
          ~c:0
      else
        violate t ck ~reason:r_trigger_early ~vrec:(-1) ~time ~idx:(idx - 1)
          ~a:0 ~b:0 ~c:0
    end
  end

let step_local t ck loc ~time =
  if ck < 0 || ck >= Array.length t.labels then
    invalid_arg "Flat.step_local: checker out of range";
  if loc < 0 || loc >= t.ck_nloc.(ck) then
    invalid_arg "Flat.step_local: local name out of range";
  step_trusted t ck loc ~time

let step_name t ~gid ~time =
  let lo = Array.unsafe_get t.sub_off gid in
  let hi = Array.unsafe_get t.sub_off (gid + 1) in
  for k = lo to hi - 1 do
    step_trusted t (Array.unsafe_get t.sub_ck k) (Array.unsafe_get t.sub_loc k)
      ~time
  done

let step_event t (e : Trace.event) =
  match Hashtbl.find_opt t.gids e.name with
  | Some gid -> step_name t ~gid ~time:e.time
  | None -> ()

let step_checker t ck (e : Trace.event) =
  let loc = local_of_name t ck e.name in
  if loc >= 0 then step_trusted t ck loc ~time:e.time

(* ---- time -------------------------------------------------------------- *)

let check_time_checker t ck ~now =
  let st = t.st in
  let base = t.ck_base.(ck) in
  if
    Ba.get st (base + o_verdict) = v_running
    && t.ck_timed.(ck)
    && Ba.get st (base + o_started) >= 0
    && Ba.get st (base + o_qdone) = 0
  then begin
    let started = Ba.get st (base + o_started) in
    let dl = started + t.ck_deadline.(ck) in
    if now > dl then begin
      Ba.set st (base + o_verdict) v_violated;
      Ba.set st (base + o_vreason) r_deadline;
      Ba.set st (base + o_vrec) (-1);
      Ba.set st (base + o_vtime) dl;
      Ba.set st (base + o_vindex) (-1);
      Ba.set st (base + o_va) started;
      Ba.set st (base + o_vb) dl;
      Ba.set st (base + o_vc) now;
      t.dl_gen <- t.dl_gen + 1;
      match t.notify with Some f -> f ck | None -> ()
    end
  end

let check_time t ~now =
  Array.iter (fun ck -> check_time_checker t ck ~now) t.timed_cks

let finalize t ~now = check_time t ~now

let next_deadline_checker t ck =
  let st = t.st in
  let base = t.ck_base.(ck) in
  if
    Ba.get st (base + o_verdict) = v_running
    && t.ck_timed.(ck)
    && Ba.get st (base + o_started) >= 0
    && Ba.get st (base + o_qdone) = 0
  then Some (Ba.get st (base + o_started) + t.ck_deadline.(ck))
  else None

let next_deadline t =
  Array.fold_left
    (fun acc ck ->
      match next_deadline_checker t ck with
      | None -> acc
      | Some d -> (
          match acc with Some m when m <= d -> acc | _ -> Some d))
    None t.timed_cks

(* ---- persistence ------------------------------------------------------- *)

let persist_checker t ck : Compiled.persisted =
  let base = t.ck_base.(ck) in
  let n = t.ck_nrecs.(ck) in
  {
    p_recs =
      Array.init n (fun j ->
          let s = Ba.get t.st (base + ctrl_slots + j) in
          if s = s_idle then Compiled.Idle
          else if s = s_waiting then Compiled.Waiting
          else if s = s_started then Compiled.Started
          else if s = s_counting then
            Compiled.Counting (Ba.get t.st (base + ctrl_slots + n + j))
          else Compiled.Done);
    p_active = Ba.get t.st (base + o_active);
    p_index = Ba.get t.st (base + o_index);
    p_started = Ba.get t.st (base + o_started);
    p_q_done = Ba.get t.st (base + o_qdone) = 1;
    p_rounds = Ba.get t.st (base + o_rounds);
    p_verdict = verdict t ck;
  }

let rec_of_range t ck (range : Pattern.range) =
  let r0 = t.ck_rec0.(ck) in
  let rec find j =
    if j >= t.ck_nrecs.(ck) then
      invalid_arg
        "Flat.restore_checker: diagnostic range is not in the pattern"
    else if t.rec_range.(r0 + j) = range then r0 + j
    else find (j + 1)
  in
  find 0

let restore_checker t ck (p : Compiled.persisted) =
  let base = t.ck_base.(ck) in
  let n = t.ck_nrecs.(ck) in
  if Array.length p.p_recs <> n then
    invalid_arg "Flat.restore_checker: recognizer count mismatch";
  Array.iteri
    (fun j s ->
      let code, counter =
        match s with
        | Compiled.Idle -> (s_idle, 0)
        | Compiled.Waiting -> (s_waiting, 0)
        | Compiled.Started -> (s_started, 0)
        | Compiled.Counting c -> (s_counting, c)
        | Compiled.Done -> (s_done, 0)
      in
      Ba.set t.st (base + ctrl_slots + j) code;
      Ba.set t.st (base + ctrl_slots + n + j) counter)
    p.p_recs;
  Ba.set t.st (base + o_active) p.p_active;
  Ba.set t.st (base + o_index) p.p_index;
  Ba.set t.st (base + o_started) p.p_started;
  Ba.set t.st (base + o_qdone) (if p.p_q_done then 1 else 0);
  Ba.set t.st (base + o_rounds) p.p_rounds;
  (match p.p_verdict with
  | Compiled.Running ->
      Ba.set t.st (base + o_verdict) v_running;
      Ba.set t.st (base + o_vrec) (-1)
  | Compiled.Satisfied ->
      Ba.set t.st (base + o_verdict) v_satisfied;
      Ba.set t.st (base + o_vrec) (-1)
  | Compiled.Violated { reason; time; index } ->
      let code, vrec, a, b, c =
        match reason with
        | Diag.Before_name -> (r_before, -1, 0, 0, 0)
        | Diag.After_name -> (r_after, -1, 0, 0, 0)
        | Diag.Overflow range -> (r_overflow, rec_of_range t ck range, 0, 0, 0)
        | Diag.Underflow range ->
            (r_underflow, rec_of_range t ck range, 0, 0, 0)
        | Diag.Reentered range ->
            (r_reentered, rec_of_range t ck range, 0, 0, 0)
        | Diag.Missing range -> (r_missing, rec_of_range t ck range, 0, 0, 0)
        | Diag.Empty_fragment -> (r_empty, -1, 0, 0, 0)
        | Diag.Trigger_early -> (r_trigger_early, -1, 0, 0, 0)
        | Diag.Deadline_miss { started; deadline; now } ->
            (r_deadline, -1, started, deadline, now)
        | Diag.Late_conclusion { deadline; at } -> (r_late, -1, deadline, at, 0)
        | Diag.Foreign _ | Diag.Formula_falsified ->
            invalid_arg
              "Flat.restore_checker: reason is not a flat-engine diagnostic"
      in
      Ba.set t.st (base + o_verdict) v_violated;
      Ba.set t.st (base + o_vreason) code;
      Ba.set t.st (base + o_vrec) vrec;
      Ba.set t.st (base + o_vtime) time;
      Ba.set t.st (base + o_vindex) index;
      Ba.set t.st (base + o_va) a;
      Ba.set t.st (base + o_vb) b;
      Ba.set t.st (base + o_vc) c);
  t.dl_gen <- t.dl_gen + 1

(* ---- blob -------------------------------------------------------------- *)

let blob_version = 1
let magic = "LSQF"

let used_slots t =
  match Array.length t.ck_base with
  | 0 -> 0
  | n -> t.ck_base.(n - 1) + ctrl_slots + (2 * t.ck_nrecs.(n - 1))

(* Slots are zigzag varints (LEB128): a fresh 64-checker suite is
   mostly zeros and small codes, so almost every slot is one byte —
   the whole-suite blob stays an order of magnitude below 64
   per-checker JSON states. *)
let put_varint buf v =
  let u = (v lsl 1) lxor (v asr 62) in
  let rec go u =
    if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr u)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x7f)));
      go (u lsr 7)
    end
  in
  go u

(* [Ok (value, next offset)] or [Error ()] on truncation/overlength. *)
let get_varint s off =
  let len = String.length s in
  let rec go u shift off =
    if off >= len || shift > 63 then Error ()
    else
      let b = Char.code s.[off] in
      let u = u lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok ((u lsr 1) lxor (-(u land 1)), off + 1)
      else go u (shift + 7) (off + 1)
  in
  go 0 0 off

let save_blob t =
  let n = used_slots t in
  let buf = Buffer.create (16 + (2 * n)) in
  Buffer.add_string buf magic;
  let b4 = Bytes.create 4 in
  Bytes.set_int32_le b4 0 (Int32.of_int blob_version);
  Buffer.add_bytes buf b4;
  put_varint buf n;
  for i = 0 to n - 1 do
    put_varint buf (Ba.get t.st i)
  done;
  Buffer.contents buf

let load_blob t blob =
  let len = String.length blob in
  if len < 8 || String.sub blob 0 4 <> magic then
    Error "not a flat-engine state blob (bad magic)"
  else
    let version = Int32.to_int (String.get_int32_le blob 4) in
    if version <> blob_version then
      Error
        (Printf.sprintf "unsupported flat blob version %d (expected %d)"
           version blob_version)
    else
      let truncated =
        Error (Printf.sprintf "flat blob is truncated (%d bytes)" len)
      in
      match get_varint blob 8 with
      | Error () -> truncated
      | Ok (n, off0) ->
          let expected = used_slots t in
          if n <> expected then
            Error
              (Printf.sprintf
                 "flat blob carries %d state slots, this engine has %d \
                  (different suite?)"
                 n expected)
          else begin
            (* Decode into a scratch first: a truncated blob must not
               leave the engine half-overwritten. *)
            let slots = Array.make n 0 in
            let rec fill i off =
              if i = n then if off = len then Ok () else truncated
              else
                match get_varint blob off with
                | Error () -> truncated
                | Ok (v, off) ->
                    slots.(i) <- v;
                    fill (i + 1) off
            in
            match fill 0 off0 with
            | Error _ as e -> e
            | Ok () ->
                for i = 0 to n - 1 do
                  Ba.set t.st i slots.(i)
                done;
                t.dl_gen <- t.dl_gen + 1;
                Ok ()
          end

(* ---- layout ------------------------------------------------------------ *)

type layout = {
  total_slots : int;
  checker_base : int array;
  state_slot : int array;
  counter_slot : int array;
}

let layout t =
  {
    total_slots = used_slots t;
    checker_base = Array.copy t.ck_base;
    state_slot = Array.copy t.rec_sslot;
    counter_slot = Array.copy t.rec_cslot;
  }

let checker_slots t ck =
  if ck < 0 || ck >= Array.length t.labels then
    invalid_arg "Flat.checker_slots: checker out of range";
  ctrl_slots + (2 * t.ck_nrecs.(ck))

let slice t cks =
  let n = size t in
  let seen = Array.make n false in
  List.iter
    (fun ck ->
      if ck < 0 || ck >= n then invalid_arg "Flat.slice: checker out of range";
      if seen.(ck) then invalid_arg "Flat.slice: duplicate checker";
      seen.(ck) <- true)
    cks;
  let sliced = compile (List.map (fun ck -> (label t ck, pattern t ck)) cks) in
  List.iteri (fun i ck -> restore_checker sliced i (persist_checker t ck)) cks;
  sliced
