(** Findings: the shared currency of every static checker in the code
    base.

    The linter ({!Lint}) and the semantic analyzer ([Loseq_analysis])
    both report their results as values of this type, so a build
    pipeline sees one format whatever produced the diagnostic.  Codes
    are stable kebab-case strings suitable for suppression lists
    ([--suppress CODE]) and for SARIF [ruleId]s.

    Renderers: human text, machine JSON, and SARIF 2.1.0 (the static
    analysis interchange format GitHub code scanning and most CI
    dashboards ingest). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable, kebab-case, e.g. ["deadline-infeasible"] *)
  message : string;
  subject : string option;
      (** what the finding is about: a suite entry name or a pattern *)
  file : string option;  (** suite file, when the pattern came from one *)
  line : int option;  (** 1-based line in [file] *)
  witness : string option;
      (** machine-replayable evidence, e.g. a witness trace *)
}

val v :
  ?subject:string ->
  ?file:string ->
  ?line:int ->
  ?witness:string ->
  severity ->
  string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [v severity code fmt ...] builds a finding with a formatted
    message. *)

val with_origin : ?subject:string -> ?file:string -> ?line:int -> t -> t
(** Fill origin fields that are still [None] — hosts attach the suite
    entry a producer did not know about. *)

val severity_to_string : severity -> string
val pp_severity : Format.formatter -> severity -> unit

val order : t list -> t list
(** Stable sort: errors first, then warnings, then infos. *)

val exit_code : t list -> int
(** The CI gate policy: [2] if any error, [1] if any warning (but no
    error), [0] otherwise. *)

val suppress : string list -> t list -> t list
(** Drop findings whose code is listed (they affect neither output nor
    {!exit_code}). *)

val load_suppress_file : string -> (string list, string) result
(** Read a suppression list from a file: one code per line, [#] starts
    a comment, blank lines are ignored.  The error is the I/O message. *)

(** {1 Renderers} *)

type format = Text | Json | Sarif

val format_of_string : string -> (format, string) result

val pp : Format.formatter -> t -> unit
(** One line: ["file:line: severity[code]: message (subject)"], omitting
    the parts that are absent. *)

val pp_list : Format.formatter -> t list -> unit

val to_json : t list -> Json.t
(** [{ "findings": [...], "errors": n, "warnings": n }]. *)

val to_sarif :
  ?tool_name:string ->
  ?tool_version:string ->
  ?rules:(string * string) list ->
  t list ->
  Json.t
(** A complete SARIF 2.1.0 log with one run.  [rules] maps codes to
    short descriptions; codes appearing in the findings but not in
    [rules] still get a rule entry (SARIF requires [ruleIndex] to
    resolve).  Defaults: tool ["loseq"], version ["1.0.0"]. *)

val render :
  ?tool_name:string ->
  ?tool_version:string ->
  ?rules:(string * string) list ->
  format ->
  Format.formatter ->
  t list ->
  unit
