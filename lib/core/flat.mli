(** The flat-table {e suite} engine: a whole pattern suite compiled
    ahead of time into one table-driven step machine.

    {!Compiled} already turns a single pattern into flat arrays, but a
    hosted suite still steps one OCaml-heap monitor object per event
    through a chain of per-checker closures.  This module compiles all
    checkers of a suite together:

    - every event name across the suite is interned into one dense
      [gid] space, with a CSR (offsets + parallel arrays) dispatch
      table mapping each [gid] to the [(checker, local-id)] pairs that
      must step — per-name dispatch is an array slice walk, no
      closures, no hash on the hot path;
    - all automaton states, range counters, deadline slots and verdict
      descriptors of every checker live in a single [Bigarray] int
      array ({!layout}): one contiguous slab per checker, control
      words first, then recognizer states, then counters.  The engine
      owns no other mutable state, so a checkpoint of the whole suite
      is one [memcpy]-shaped blob ({!save_blob}) and a future
      multicore shard is a slice of the array;
    - {!step_local} is a branch-minimized mirror of
      [Compiled.step_id] (same Fig. 5 recognizer semantics, verified
      against it property-by-property in [test_backend]).

    Verdicts and persisted states are {e shared} with {!Compiled}
    (same types), so backend lifting and the JSON checkpoint codec
    host both engines unchanged. *)

type t

val compile : (string * Pattern.t) list -> t
(** Compile a labelled suite.  Raises {!Wellformed.Ill_formed} on any
    ill-formed pattern.  Checker indices are list order. *)

(** {1 Identity} *)

val size : t -> int
(** Number of checkers. *)

val label : t -> int -> string
val pattern : t -> int -> Pattern.t
val alphabet : t -> int -> Name.Set.t

val names : t -> Name.t array
(** The interning table: [gid -> name], in first-appearance order
    across the suite — part of the checkpoint identity. *)

val gid_of_name : t -> Name.t -> int option

val local_of_name : t -> int -> Name.t -> int
(** [local_of_name t ck nm] is the checker-local id of [nm] for [ck],
    or [-1] when [nm] is not in that checker's alphabet — resolved
    once by per-name-routed hosts ({!Backend.t.prepare}). *)

(** {1 Stepping} *)

val step_local : t -> int -> int -> time:int -> unit
(** [step_local t ck loc ~time]: one monitor step of checker [ck] on
    its local name [loc].  Sticky after a decided verdict.  The hot
    path: a handful of reads in [ck]'s slab, no allocation. *)

val step_name : t -> gid:int -> time:int -> unit
(** Step every checker subscribed to [gid] (the CSR row), in suite
    order. *)

val step_event : t -> Trace.event -> unit
(** {!step_name} after interning; foreign names are ignored. *)

val step_checker : t -> int -> Trace.event -> unit
(** Step one checker only (the per-checker backend view's [step]);
    names outside its alphabet are ignored. *)

(** {1 Verdicts and time} *)

val verdict_code : t -> int -> int
(** [0] running, [1] satisfied, [2] violated — the raw control word,
    for allocation-free polling. *)

val verdict : t -> int -> Compiled.verdict
(** The full verdict, diagnostics reconstructed from the tables. *)

val active_fragment : t -> int -> int
val index : t -> int -> int
val rounds_completed : t -> int -> int

val steps_total : t -> int
(** Sum of all checkers' step indices — what an observability layer
    mirrors into [loseq_backend_steps_total{backend=flat}]. *)

val check_time_checker : t -> int -> now:int -> unit
val check_time : t -> now:int -> unit
(** Report deadline misses at [now] (one checker / every timed
    checker). *)

val finalize : t -> now:int -> unit

val next_deadline_checker : t -> int -> int option

val next_deadline : t -> int option
(** Earliest armed deadline across the suite — what a hub parks its
    single kernel timeout at. *)

val timed_checkers : t -> int array

val deadline_generation : t -> int
(** Bumped whenever any checker's armed-deadline state may have
    changed (arming, completion, round reset, verdict, restore).  A
    host re-settles its wheel only when this moves — the steady-state
    step path leaves it untouched. *)

val set_notify : t -> (int -> unit) option -> unit
(** [notify ck] fires on every verdict decision (satisfied or
    violated, including deadline checks) — how engine-level dispatch
    still feeds checker hooks and [Obs] transition counters. *)

(** {1 Reset and persistence} *)

val reset_checker : t -> int -> unit
val reset : t -> unit

val persist_checker : t -> int -> Compiled.persisted
(** Per-checker state in the {!Compiled} persisted format — the JSON
    checkpoint fallback, and the bridge when a flat blob is restored
    into compiled-backend checkers. *)

val restore_checker : t -> int -> Compiled.persisted -> unit
(** Raises [Invalid_argument] when the state does not fit (wrong
    recognizer count, a diagnostic range not in the pattern). *)

val blob_version : int

val save_blob : t -> string
(** The whole suite's run state as one versioned binary blob:
    ["LSQF"], format version, slot count, then the raw slots —
    resume cost is one array copy, independent of checker count. *)

val load_blob : t -> string -> (unit, string) result
(** Overwrite the run state from a blob.  Rejects (with a message,
    never an exception) foreign data, an unsupported blob version, or
    a slot count that does not match this engine's layout. *)

(** {1 Introspection} *)

val ctrl_slots : int
(** Control words per checker slab (see DESIGN §3e). *)

type layout = {
  total_slots : int;  (** length of the state array *)
  checker_base : int array;  (** slab start per checker *)
  state_slot : int array;  (** global recognizer -> state slot *)
  counter_slot : int array;  (** global recognizer -> counter slot *)
}

val layout : t -> layout
(** The packing, for tests that pin it and shards that slice it. *)

val checker_slots : t -> int -> int
(** Slab width of one checker: {!ctrl_slots} control words plus a
    state and a counter slot per recognizer — the static footprint a
    shard planner's cost model charges per checker.  Raises
    [Invalid_argument] on an out-of-range checker. *)

val slice : t -> int list -> t
(** [slice t cks] is a fresh engine hosting exactly the checkers
    [cks] (new indices are list order; labels, patterns and run state
    carry over via {!persist_checker}/{!restore_checker}).  The slice
    re-interns its own gid space over the sub-suite's names — the
    flat-slab shape a single shard of a partitioned suite runs with.
    Raises [Invalid_argument] on an out-of-range or duplicate
    checker. *)
