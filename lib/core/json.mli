(** Minimal JSON values: emission for the machine-readable finding
    renderers ({!Finding}) and a strict parser used by the test suite to
    check that what we emit is well-formed.

    This is deliberately tiny — no external dependency, no streaming, no
    attempt at full RFC 8259 number fidelity (integers cover every value
    the renderers produce).  Strings are escaped on output (quotes,
    backslashes, control characters) and unescaped on input (including
    [\u] escapes, decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering (two-space indent), for human-facing [--format
    json] output. *)

val of_string : string -> (t, string) result
(** Strict parser; the error string names the offending position. *)

(** {1 Accessors (for tests)} *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
