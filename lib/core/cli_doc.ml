let backend_names = [ "direct"; "compiled"; "flat"; "psl" ]

let backend_doc =
  "Monitor backend: $(b,direct) (the paper's structural Drct \
   construction, richest diagnostics), $(b,compiled) (flat-table \
   fast path, the default), $(b,flat) (whole-suite table engine: \
   every checker's state packed into one array, one shared \
   dispatch — the fastest hosted path), or $(b,psl) (formula \
   progression over the Section-5 PSL translation; rejects wide \
   ranges and checks timed patterns without their quantitative \
   deadline)."

let serve_modes_doc =
  "Two hosting modes. The default buffered mode parks events in a \
   watermark reorder buffer for up to $(b,--lateness) ticks and \
   delivers them in timestamp order — verdicts are exact but lag the \
   stream by K. With $(b,--ooo) the speculative engine applies every \
   event the moment it arrives, reports three-valued in-flight \
   verdicts, and repairs by rollback-and-replay when a late event \
   lands; violation records carry $(b,speculative) markers, \
   $(b,retracted) records withdraw disproved ones, and $(b,settled) \
   records mark verdicts the watermark has made definitive."

let ooo_doc =
  "Speculative out-of-order mode: evaluate events immediately on \
   arrival instead of buffering, roll back and replay when a late \
   event (within $(b,--lateness) ticks) lands, and settle verdicts as \
   the watermark passes them. Commute/lateness certificates from the \
   analysis layer let provably harmless late events commit in place \
   with no rollback. Incompatible with --checkpoint/--resume."
