(** Explicit monitor automata.

    The modular Drct monitors never materialize their product state
    space — that is the point of the paper's construction.  This module
    {e does} materialize it (for small patterns): the reachable
    configurations of a {!Monitor} form a DFA over the pattern alphabet,
    with a single absorbing rejecting sink for violations.

    Uses: counting states (quantifying the explosion the modular
    encoding avoids), language-level equivalence checks between
    patterns, minimization, and Graphviz export for documentation and
    debugging.

    The deadline of a timed pattern is a quantitative constraint outside
    DFA-land; the extracted automaton is the {e untimed shape} of the
    concatenated ordering (every event at time 0). *)

type t = {
  alphabet : Name.t array;
  num_states : int;
  initial : int;
  transitions : int array array;  (** [transitions.(state).(letter)] *)
  accepting : bool array;  (** no violation in this configuration *)
  sink : int option;  (** the absorbing violation state, if reachable *)
}

exception Too_many_states of int

val of_pattern : ?max_states:int -> Pattern.t -> t
(** Explore the monitor's reachable configurations ([max_states]
    defaults to 4096; {!Too_many_states} beyond — e.g. wide ranges whose
    counters are part of the state).  Raises {!Wellformed.Ill_formed} on
    ill-formed patterns. *)

val accepts : t -> Name.t list -> bool
(** Run the word; accepted iff the final state is accepting (i.e. the
    monitor would not have reported a violation). *)

val minimize : t -> t
(** Moore partition refinement; the result is reachable-minimal. *)

val equivalent : t -> t -> bool
(** Language equivalence (requires equal alphabets; product walk). *)

val pp_stats : Format.formatter -> t -> unit
val to_dot : t -> string
(** Graphviz source; violation sink omitted for readability. *)
