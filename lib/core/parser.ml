type error = { message : string; position : int }

let pp_error ppf e =
  Format.fprintf ppf "parse error at offset %d: %s" e.position e.message

exception Fail of error

let token_string token = Format.asprintf "%a" Lexer.pp_token token

let fail position fmt =
  Format.kasprintf (fun message -> raise (Fail { message; position })) fmt

(* A mutable cursor over the token list keeps the recursive-descent
   rules short. *)
type cursor = { mutable tokens : Lexer.located list }

let peek cur =
  match cur.tokens with
  | t :: _ -> t
  | [] -> { Lexer.token = Lexer.EOF; position = 0 }

let advance cur =
  match cur.tokens with _ :: rest -> cur.tokens <- rest | [] -> ()

let expect cur token describe =
  let t = peek cur in
  if t.Lexer.token = token then advance cur
  else
    fail t.Lexer.position "expected %s, found %s" describe
      (token_string t.Lexer.token)

let parse_name cur =
  let t = peek cur in
  match t.Lexer.token with
  | Lexer.NAME s -> (
      advance cur;
      match Name.v s with
      | name -> name
      | exception Invalid_argument msg -> fail t.Lexer.position "%s" msg)
  | other ->
      fail t.Lexer.position "expected a name, found %s" (token_string other)

let parse_int cur =
  let t = peek cur in
  match t.Lexer.token with
  | Lexer.INT n ->
      advance cur;
      n
  | other ->
      fail t.Lexer.position "expected an integer, found %s"
        (token_string other)

let parse_range cur =
  let t = peek cur in
  let name = parse_name cur in
  match (peek cur).Lexer.token with
  | Lexer.LBRACKET -> (
      advance cur;
      let lo = parse_int cur in
      expect cur Lexer.COMMA "','";
      let hi = parse_int cur in
      expect cur Lexer.RBRACKET "']'";
      match Pattern.range ~lo ~hi name with
      | r -> r
      | exception Invalid_argument msg -> fail t.Lexer.position "%s" msg)
  | _ -> Pattern.range name

let parse_fragment cur =
  match (peek cur).Lexer.token with
  | Lexer.LBRACE -> (
      let open_pos = (peek cur).Lexer.position in
      advance cur;
      let first = parse_range cur in
      let rec more connective acc =
        match (peek cur).Lexer.token with
        | Lexer.COMMA when connective <> Some Pattern.Any ->
            advance cur;
            more (Some Pattern.All) (parse_range cur :: acc)
        | Lexer.PIPE when connective <> Some Pattern.All ->
            advance cur;
            more (Some Pattern.Any) (parse_range cur :: acc)
        | Lexer.COMMA | Lexer.PIPE ->
            fail (peek cur).Lexer.position
              "cannot mix ',' and '|' in one fragment"
        | Lexer.RBRACE ->
            advance cur;
            (connective, List.rev acc)
        | _ ->
            fail (peek cur).Lexer.position
              "expected ',', '|' or '}' in fragment"
      in
      let connective, ranges = more None [ first ] in
      let connective = Option.value connective ~default:Pattern.All in
      match Pattern.fragment ~connective ranges with
      | f -> f
      | exception Invalid_argument msg -> fail open_pos "%s" msg)
  | _ -> Pattern.fragment [ parse_range cur ]

let parse_ordering cur =
  let rec loop acc =
    match (peek cur).Lexer.token with
    | Lexer.LT ->
        advance cur;
        loop (parse_fragment cur :: acc)
    | _ -> List.rev acc
  in
  loop [ parse_fragment cur ]

let check_wellformed position p =
  match Wellformed.check p with
  | Ok () -> p
  | Error errs ->
      fail position "%s"
        (String.concat "; " (List.map Wellformed.error_to_string errs))

let parse_pattern cur =
  let start_pos = (peek cur).Lexer.position in
  let first = parse_ordering cur in
  let t = peek cur in
  match t.Lexer.token with
  | Lexer.LTLT | Lexer.LTLTBANG ->
      let repeated = t.Lexer.token = Lexer.LTLTBANG in
      advance cur;
      let trigger = parse_name cur in
      expect cur Lexer.EOF "end of input";
      check_wellformed start_pos
        (Pattern.antecedent ~repeated first ~trigger)
  | Lexer.IMPLIES -> (
      advance cur;
      let conclusion = parse_ordering cur in
      expect cur Lexer.WITHIN "keyword 'within'";
      let deadline = parse_int cur in
      expect cur Lexer.EOF "end of input";
      match Pattern.timed first conclusion ~deadline with
      | p -> check_wellformed start_pos p
      | exception Invalid_argument msg -> fail t.Lexer.position "%s" msg)
  | other ->
      fail t.Lexer.position "expected '<<', '<<!' or '=>', found %s"
        (token_string other)

let with_cursor f src =
  match Lexer.tokenize src with
  | tokens -> (
      let cur = { tokens } in
      match f cur with v -> Ok v | exception Fail e -> Error e)
  | exception Lexer.Lex_error { message; position } ->
      Error { message; position }

let pattern src = with_cursor parse_pattern src

let ordering src =
  with_cursor
    (fun cur ->
      let o = parse_ordering cur in
      expect cur Lexer.EOF "end of input";
      o)
    src

let pattern_exn src =
  match pattern src with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)
