(** Speculative out-of-order monitoring.

    The buffered ingestion path ({!Loseq_ingest.Session}) parks every
    event in a watermark reorder buffer for up to [lateness] ticks and
    delivers in timestamp order: verdicts are exact but lag the stream.
    This engine is the POLIMON-style alternative: it applies each event
    to the compiled suite {e the moment it arrives}, reports
    three-valued in-flight verdicts ({!Loseq_core.Backend.tri}), and
    repairs by rollback-and-replay when a late event lands inside the
    lateness bound — a bounded {!Journal} of suite-alphabet events and
    delta-encoded checker-state snapshots makes the repair local.  A
    verdict {e settles} (becomes definitive) once the watermark
    [max_seen - lateness] passes its decision point: no admissible late
    arrival can change it, and settled verdicts are bit-for-bit those
    of the buffered path.

    The headline optimization is certificate-guided: at session start
    the engine runs the {!Loseq_analysis.Robust} lateness analysis and
    keeps each entry's certified bound and commuting pairs.  A late
    event whose name provably commutes with every name in its replay
    window — or that lands on a checker certified robust at this
    lateness, or that is foreign to the suite alphabet — commits {e in
    place}: no snapshot restore, no rollback, no replay.  On fully
    certified suites the engine never rolls back at all; static
    analysis becomes a runtime fast path.

    Soundness of the in-place commit, per checker [c] for a late event
    [n] at time [t] with replay-window names [M]:
    - [n ∉ α(c)]: the checker never sees [n];
    - [c] already settled: its verdict is decided with the deciding
      prefix strictly below every admissible insertion point, and
      decided monitors are sticky;
    - certified bound [>= lateness] and the analysis decided: the
      certificate quantifies over exactly the arrival orders the engine
      produces, so the final verdict is order-invariant;
    - untimed [c], analysis decided, and every [m ∈ M ∩ α(c)], [m ≠ n],
      is a certified commuting pair with [n]: the in-place name
      sequence rewrites to the inserted one by swaps that are no-ops
      ([m = n]) or certified verdict-preserving.  Timed checkers are
      excluded from this branch — stepping at an earlier timestamp
      after deadlines were already fired eagerly is not a pure name
      swap.

    Deadline discipline mirrors the buffered kernel exactly: before a
    checker steps an event at time [e], every armed deadline [dl] with
    [dl + 1 <= e] fires via [check_time ~now:(dl + 1)]; replay repeats
    the same schedule, which is why settled verdicts (and their
    renderings) match {!Loseq_verif.Report.summary_strings} byte for
    byte. *)

open Loseq_core

type t

(** {1 Notices} *)

(** In-flight verdict traffic, pushed to the [notice] callback as
    offers are processed.  Speculative violations may later be
    retracted; settlements are final. *)
type notice =
  | Violation of {
      index : int;
      label : string;
      violation : Diag.violation;
      settled : bool;  (** [false] while the verdict could still roll
                           back. *)
    }
  | Retracted of { index : int; label : string }
      (** A previously reported violation no longer holds after a
          rollback (or was superseded by a different violation, in
          which case a fresh [Violation] follows). *)
  | Settled of { index : int; label : string; verdict : Backend.verdict }
      (** The watermark passed the decision point: the verdict is
          definitive. *)

(** {1 Lifecycle} *)

val create :
  ?metrics:Loseq_obs.Metrics.t ->
  ?trace:Loseq_obs.Trace.t ->
  ?backend:Backend.factory ->
  ?suite_backend:Backend.suite_factory ->
  ?cert_budget:int ->
  ?snapshot_every:int ->
  ?notice:(notice -> unit) ->
  lateness:int ->
  (string * Pattern.t) list ->
  t
(** Compile the suite (default backend {!Backend.compiled}, or the
    suite-level [?suite_backend] — e.g. {!Backend.flat_views}), run the
    lateness-robustness analysis ([cert_budget] defaults to [20_000]
    elementary operations) and take the base snapshot.  A snapshot is
    recorded every [snapshot_every] (default [32]) journalled events.
    With [?metrics], backends are instrumented and the engine registers
    [loseq_ooo_*] counters and gauges on the registry.  A live [trace]
    flight recorder (default noop) records the engine's speculation
    traffic on the ["ooo"] track: a [rollback_replay] span per repair
    (begin argument: checkers restored; end argument: journalled events
    re-stepped), plus [commute_hit], [retraction] and [snapshot]
    instants.

    Raises [Invalid_argument] if [lateness < 0] or a chosen backend
    does not {!Backend.supports_rollback} (the [direct] and [psl]
    strategies cannot host speculation);
    {!Loseq_core.Wellformed.Ill_formed} on an ill-formed pattern. *)

val offer : t -> Trace.event -> [ `Applied | `Commuted | `Replayed of int | `Dropped_late ]
(** Feed one event in arrival order.  [`Applied]: in-order (or foreign
    to every checker) and stepped immediately.  [`Commuted]: late but
    committed in place by the certificate fast path.  [`Replayed n]:
    late; the engine rolled affected checkers back to a snapshot and
    replayed [n] journalled events.  [`Dropped_late]: beyond the
    lateness bound — same admissibility rule as
    {!Loseq_ingest.Reorder} (an event exactly at the watermark is
    admitted).  Raises [Invalid_argument] after {!finalize}. *)

val finalize : ?final_time:int -> t -> unit
(** End of observation at [max (max_seen, final_time, 0)]: fire
    remaining deadlines, run every backend's [finalize], and settle all
    verdicts.  Idempotent. *)

(** {1 Verdicts} *)

val report : t -> (string * Backend.verdict) list
(** Labelled verdicts in suite order — after {!finalize}, equal to the
    buffered session's {!Loseq_verif.Report.summary}. *)

val report_strings : t -> string list
(** Rendered via {!Backend.pp_verdict} — byte-compatible with
    {!Loseq_verif.Report.summary_strings}. *)

val tri : t -> Backend.tri array
(** The three-valued in-flight view: [Unsettled] until the watermark
    passes a checker's decision point (or {!finalize} runs). *)

val settled : t -> bool array

(** {1 Introspection} *)

type stats = {
  applied : int;  (** In-order (or foreign) events stepped directly. *)
  late : int;  (** Admissible out-of-order arrivals. *)
  commute_hits : int;
      (** Late arrivals committed in place by the certificate fast path
          (including suite-foreign ones) — no rollback, no replay. *)
  rollbacks : int;
  replayed : int;  (** Journalled events re-stepped across all rollbacks. *)
  snapshots : int;  (** Snapshots recorded (lifetime, not live). *)
  settled_events : int;  (** Settlement notices emitted. *)
  dropped_late : int;
  max_journal : int;  (** High-water journal depth. *)
}

val stats : t -> stats

val watermark : t -> int
(** [max_seen - lateness]. *)

val max_seen : t -> int
(** Latest timestamp seen; [-1] initially. *)

val journal_depth : t -> int
val certificate : t -> Loseq_analysis.Robust.certificate
(** The certificate consulted by the fast path — what `serve --ooo`
    reports in its reorder-certificate record. *)
