open Loseq_core

type 'snap entry = {
  mutable pos : int;
  epoch : int;
  fired_upto : int;
  snap : 'snap;
}

(* The window lives in [buf.(off) .. buf.(off + len - 1)]; [trim]
   advances [off] instead of shifting, and the grow path compacts.
   Snapshots are a newest-first list; anchors only ever decrease along
   it, so the first entry passing a filter is the highest-anchored. *)
type 'snap t = {
  mutable buf : Trace.event array;
  mutable off : int;
  mutable len : int;
  mutable snaps : 'snap entry list;
}

let create () = { buf = [||]; off = 0; len = 0; snaps = [] }
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Journal.get: out of window";
  t.buf.(t.off + i)

(* Make room for one more event at the physical end, compacting the
   dead prefix and doubling as needed.  [fill] seeds fresh cells. *)
let grow t (fill : Trace.event) =
  if t.off + t.len >= Array.length t.buf then begin
    let cap = max 16 (max (2 * Array.length t.buf) (t.len + 1)) in
    let buf = Array.make cap fill in
    Array.blit t.buf t.off buf 0 t.len;
    t.buf <- buf;
    t.off <- 0
  end

let append t e =
  grow t e;
  t.buf.(t.off + t.len) <- e;
  t.len <- t.len + 1

let insertion_point t ~time =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if (get t mid).Trace.time > time then hi := mid else lo := mid + 1
  done;
  !lo

let insert t ~at e =
  if at < 0 || at > t.len then invalid_arg "Journal.insert: out of window";
  grow t e;
  Array.blit t.buf (t.off + at) t.buf (t.off + at + 1) (t.len - at);
  t.buf.(t.off + at) <- e;
  t.len <- t.len + 1;
  t.snaps <- List.filter (fun s -> s.pos <= at) t.snaps

let events t = List.init t.len (get t)
let record t ~epoch ~fired_upto snap =
  t.snaps <- { pos = t.len; epoch; fired_upto; snap } :: t.snaps

let snapshots t = List.length t.snaps

let since_snapshot t =
  match t.snaps with [] -> max_int | s :: _ -> t.len - s.pos

let restore_point t ~at ~time =
  List.find_opt (fun s -> s.pos <= at && s.fired_upto <= time) t.snaps

let drop_after t ~pos = t.snaps <- List.filter (fun s -> s.pos <= pos) t.snaps

let trim t ~watermark =
  let keep_from = insertion_point t ~time:watermark in
  match
    List.find_opt
      (fun s -> s.pos <= keep_from && s.fired_upto <= watermark)
      t.snaps
  with
  | None -> ()
  | Some frontier ->
      let p = frontier.pos in
      if p > 0 then begin
        t.off <- t.off + p;
        t.len <- t.len - p;
        t.snaps <-
          List.filter
            (fun s ->
              if s.pos < p then false
              else begin
                s.pos <- s.pos - p;
                true
              end)
            t.snaps
      end
