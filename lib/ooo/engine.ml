open Loseq_core
module Obs = Loseq_obs.Metrics
module Tr = Loseq_obs.Trace
module Robust = Loseq_analysis.Robust

type notice =
  | Violation of {
      index : int;
      label : string;
      violation : Diag.violation;
      settled : bool;
    }
  | Retracted of { index : int; label : string }
  | Settled of { index : int; label : string; verdict : Backend.verdict }

type stats = {
  applied : int;
  late : int;
  commute_hits : int;
  rollbacks : int;
  replayed : int;
  snapshots : int;
  settled_events : int;
  dropped_late : int;
  max_journal : int;
}

(* Per-checker speculation state around a rollback-capable backend.
   [decided_at] is meaningful only while the verdict is decided: the
   timestamp of the deciding step (or the missed deadline), i.e. the
   point the watermark must pass for the verdict to settle.  [dirty]
   tracks divergence from [cache] (below), not from the last recorded
   snapshot — snapshots can be dropped, the cache cannot. *)
type chk = {
  label : string;
  b : Backend.t;
  persist : unit -> Compiled.persisted;
  restore_st : Compiled.persisted -> unit;
  alpha : Name.Set.t;
  timed : bool;
  cert_bound : Robust.bound;
  cert_decided : bool;
  commuting : (Name.t * Name.t, unit) Hashtbl.t;
  mutable decided_at : int;
  mutable dirty : bool;
  mutable notified : Backend.verdict;
  mutable settled : bool;
}

(* Snapshot payload: one persisted blob and one decision point per
   checker.  Blobs are immutable once produced, so clean checkers share
   them across snapshots (the delta encoding). *)
type snap = { states : Compiled.persisted array; decided : int array }

(* Flight-recorder categories on the ooo track: the rollback-and-replay
   span (end argument: journalled events re-stepped), plus instants for
   certificate commute hits (arg: event time), speculative-violation
   retractions (arg: checker index) and snapshots (arg: journal
   depth). *)
type trc = {
  tr : Tr.t;
  tr_replay : Tr.cat;
  tr_commute : Tr.cat;
  tr_retract : Tr.cat;
  tr_snapshot : Tr.cat;
}

type t = {
  k : int;
  chks : chk array;
  suite_alpha : Name.Set.t;
  route : (Name.t, int list) Hashtbl.t;
  journal : snap Journal.t;
  snapshot_every : int;
  cert : Robust.certificate;
  trc : trc option;
  notice : notice -> unit;
  cache : Compiled.persisted array;
      (* freshest persisted blob per checker; [chk.dirty] says the live
         state has moved past it *)
  mutable max_seen : int;
  mutable epoch : int;
  mutable finalized : bool;
  mutable applied : int;
  mutable late : int;
  mutable commute_hits : int;
  mutable rollbacks : int;
  mutable replayed : int;
  mutable snapshots : int;
  mutable settled_events : int;
  mutable dropped_late : int;
  mutable max_journal : int;
}

let watermark t = t.max_seen - t.k
let max_seen t = t.max_seen
let journal_depth t = Journal.length t.journal
let certificate t = t.cert

let is_decided c =
  match c.b.Backend.verdict () with Backend.Running -> false | _ -> true

(* Step [e] into [c], tracking the decision point.  Decided monitors
   are sticky; skipping them keeps [dirty] honest. *)
let step_chk c (e : Trace.event) =
  if not (is_decided c) then begin
    c.dirty <- true;
    match c.b.Backend.step e with
    | Backend.Running -> ()
    | Backend.Satisfied -> c.decided_at <- e.Trace.time
    | Backend.Violated d -> c.decided_at <- d.Diag.time
  end

(* Fire every armed deadline [dl] with [dl + 1 <= upto], each at its
   exact expiry instant — the same schedule the buffered kernel's
   timeout wheel produces, which is what makes replayed diagnostics
   identical to the in-order ones. *)
let rec fire_chk c ~upto =
  match c.b.Backend.next_deadline () with
  | Some dl when dl + 1 <= upto ->
      c.dirty <- true;
      (match c.b.Backend.check_time ~now:(dl + 1) with
      | Backend.Violated d -> c.decided_at <- d.Diag.time
      | Backend.Running | Backend.Satisfied -> ());
      fire_chk c ~upto
  | _ -> ()

let take_snapshot t =
  Array.iteri
    (fun i c ->
      if c.dirty then begin
        t.cache.(i) <- c.persist ();
        c.dirty <- false
      end)
    t.chks;
  Journal.record t.journal ~epoch:t.epoch ~fired_upto:t.max_seen
    {
      states = Array.copy t.cache;
      decided = Array.map (fun c -> c.decided_at) t.chks;
    };
  t.snapshots <- t.snapshots + 1;
  match t.trc with
  | Some c -> Tr.emit c.tr c.tr_snapshot Tr.Instant (Journal.length t.journal)
  | None -> ()

let maybe_snapshot t =
  if Journal.since_snapshot t.journal >= t.snapshot_every then take_snapshot t

let note_journal_depth t =
  t.max_journal <- max t.max_journal (Journal.length t.journal)

(* Diff each checker's live verdict against the last one pushed to the
   notice callback.  Rollbacks surface here as retractions. *)
let notify_scan t =
  let wm = watermark t in
  Array.iteri
    (fun i c ->
      let v = c.b.Backend.verdict () in
      if v <> c.notified then begin
        (match c.notified with
        | Backend.Violated _ ->
            (match t.trc with
            | Some tc -> Tr.emit tc.tr tc.tr_retract Tr.Instant i
            | None -> ());
            t.notice (Retracted { index = i; label = c.label })
        | Backend.Running | Backend.Satisfied -> ());
        (match v with
        | Backend.Violated d ->
            t.notice
              (Violation
                 {
                   index = i;
                   label = c.label;
                   violation = d;
                   settled = t.finalized || c.decided_at < wm;
                 })
        | Backend.Running | Backend.Satisfied -> ());
        c.notified <- v
      end)
    t.chks

(* A decided verdict settles once the watermark strictly passes its
   decision point: every event that could still arrive is stamped at or
   after the watermark, hence after the decision. *)
let settle_scan t =
  let wm = watermark t in
  Array.iteri
    (fun i c ->
      if (not c.settled) && is_decided c && c.decided_at < wm then begin
        c.settled <- true;
        t.settled_events <- t.settled_events + 1;
        t.notice
          (Settled { index = i; label = c.label; verdict = c.b.Backend.verdict () })
      end)
    t.chks

let pair a b = if Name.compare a b <= 0 then (a, b) else (b, a)

let create ?metrics ?(trace = Tr.noop) ?backend ?suite_backend
    ?(cert_budget = 20_000) ?(snapshot_every = 32) ?notice ~lateness entries =
  if lateness < 0 then invalid_arg "Loseq_ooo.Engine.create: negative lateness";
  if snapshot_every < 1 then
    invalid_arg "Loseq_ooo.Engine.create: snapshot_every < 1";
  let backends =
    match suite_backend with
    | Some f -> f entries
    | None ->
        let f = Option.value backend ~default:Backend.compiled in
        Array.of_list (List.map (fun (_, p) -> f p) entries)
  in
  let backends =
    match metrics with
    | Some m -> Array.map (Backend.instrument m) backends
    | None -> backends
  in
  Array.iter
    (fun b ->
      if not (Backend.supports_rollback b) then
        invalid_arg
          (Printf.sprintf
             "Loseq_ooo.Engine.create: backend %S cannot snapshot/rollback"
             b.Backend.label))
    backends;
  let cert = Robust.certificate ~budget:cert_budget entries in
  let cert_entries = Array.of_list cert.Robust.entries in
  let chks =
    Array.mapi
      (fun i b ->
        let label, p = List.nth entries i in
        let ce = cert_entries.(i) in
        let commuting = Hashtbl.create 16 in
        List.iter
          (fun (a, b') -> Hashtbl.replace commuting (pair a b') ())
          ce.Robust.commuting;
        {
          label;
          b;
          persist = Option.get b.Backend.persist;
          restore_st = Option.get b.Backend.restore;
          alpha = b.Backend.alphabet;
          timed = (match p with Pattern.Timed _ -> true | Pattern.Antecedent _ -> false);
          cert_bound = ce.Robust.bound;
          cert_decided = ce.Robust.decided;
          commuting;
          decided_at = -1;
          dirty = false;
          notified = Backend.Running;
          settled = false;
        })
      backends
  in
  let route = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      Name.Set.iter
        (fun n ->
          let prev = Option.value (Hashtbl.find_opt route n) ~default:[] in
          Hashtbl.replace route n (prev @ [ i ]))
        c.alpha)
    chks;
  let suite_alpha =
    Array.fold_left (fun acc c -> Name.Set.union acc c.alpha) Name.Set.empty chks
  in
  let t =
    {
      k = lateness;
      chks;
      suite_alpha;
      route;
      journal = Journal.create ();
      snapshot_every;
      cert;
      trc =
        (if Tr.is_live trace then
           Some
             {
               tr = trace;
               tr_replay = Tr.intern trace ~track:"ooo" "rollback_replay";
               tr_commute = Tr.intern trace ~track:"ooo" "commute_hit";
               tr_retract = Tr.intern trace ~track:"ooo" "retraction";
               tr_snapshot = Tr.intern trace ~track:"ooo" "snapshot";
             }
         else None);
      notice = Option.value notice ~default:(fun _ -> ());
      cache = Array.map (fun c -> c.persist ()) chks;
      max_seen = -1;
      epoch = 0;
      finalized = false;
      applied = 0;
      late = 0;
      commute_hits = 0;
      rollbacks = 0;
      replayed = 0;
      snapshots = 0;
      settled_events = 0;
      dropped_late = 0;
      max_journal = 0;
    }
  in
  (* Base snapshot: position 0, nothing fired — qualifies as a restore
     point for any admissible insertion, so rollback never falls off
     the bottom of the snapshot stack. *)
  Journal.record t.journal ~epoch:0 ~fired_upto:(-1)
    {
      states = Array.copy t.cache;
      decided = Array.map (fun c -> c.decided_at) t.chks;
    };
  t.snapshots <- 1;
  (match metrics with
  | None -> ()
  | Some m ->
      let counter name help = Obs.counter m ~name ~help () in
      let gauge name help = Obs.gauge m ~name ~help () in
      let c_roll = counter "loseq_ooo_rollbacks_total" "Speculation rollbacks" in
      let c_repl =
        counter "loseq_ooo_replayed_events_total"
          "Journalled events re-stepped during rollbacks"
      in
      let c_hits =
        counter "loseq_ooo_commute_hits_total"
          "Late events committed in place by the certificate fast path"
      in
      let c_late = counter "loseq_ooo_late_events_total" "Admissible late events" in
      let c_settled = counter "loseq_ooo_settled_total" "Verdict settlements" in
      let c_dropped =
        counter "loseq_ooo_dropped_late_total"
          "Events beyond the lateness bound, dropped"
      in
      let c_snaps = counter "loseq_ooo_snapshots_total" "Snapshots recorded" in
      let g_depth = gauge "loseq_ooo_journal_depth" "Live rollback-journal events" in
      let g_wm = gauge "loseq_ooo_watermark" "Settlement watermark (max_seen - K)" in
      Obs.on_collect m (fun () ->
          Obs.set_counter c_roll t.rollbacks;
          Obs.set_counter c_repl t.replayed;
          Obs.set_counter c_hits t.commute_hits;
          Obs.set_counter c_late t.late;
          Obs.set_counter c_settled t.settled_events;
          Obs.set_counter c_dropped t.dropped_late;
          Obs.set_counter c_snaps t.snapshots;
          Obs.set g_depth (Journal.length t.journal);
          Obs.set g_wm (watermark t)));
  t

let route_step t e =
  match Hashtbl.find_opt t.route e.Trace.name with
  | Some idxs -> List.iter (fun i -> step_chk t.chks.(i) e) idxs
  | None -> ()

(* The certificate fast path: may late event [e] commit in place for
   checker [c], given the distinct names [suffix] of the journal events
   it would jump over?  See the soundness notes in the interface. *)
let commits_in_place t c (e : Trace.event) suffix =
  let n = e.Trace.name in
  c.settled
  || (not (Name.Set.mem n c.alpha))
  || (c.cert_decided
     && Robust.compare_bound c.cert_bound (Robust.Finite t.k) >= 0)
  || (not c.timed) && c.cert_decided
     && Name.Set.for_all
          (fun m ->
            (not (Name.Set.mem m c.alpha))
            || Name.equal m n
            || Hashtbl.mem c.commuting (pair n m))
          suffix

let offer_in_order t (e : Trace.event) =
  let journalled = Name.Set.mem e.Trace.name t.suite_alpha in
  if journalled then maybe_snapshot t;
  Array.iter (fun c -> fire_chk c ~upto:e.Trace.time) t.chks;
  route_step t e;
  if journalled then begin
    Journal.append t.journal e;
    note_journal_depth t
  end;
  if e.Trace.time > t.max_seen then begin
    t.max_seen <- e.Trace.time;
    t.epoch <- t.epoch + 1;
    Journal.trim t.journal ~watermark:(watermark t)
  end;
  t.applied <- t.applied + 1;
  `Applied

let offer_late t (e : Trace.event) =
  t.late <- t.late + 1;
  if not (Name.Set.mem e.Trace.name t.suite_alpha) then begin
    (* Foreign to every checker: nothing to step, nothing to replay
       (deadline firing is driven by timestamps already covered by
       max_seen, not by the event itself). *)
    t.commute_hits <- t.commute_hits + 1;
    (match t.trc with
    | Some c -> Tr.emit c.tr c.tr_commute Tr.Instant e.Trace.time
    | None -> ());
    `Applied
  end
  else begin
    let q = Journal.insertion_point t.journal ~time:e.Trace.time in
    let suffix = ref Name.Set.empty in
    for i = q to Journal.length t.journal - 1 do
      suffix := Name.Set.add (Journal.get t.journal i).Trace.name !suffix
    done;
    let affected = ref [] in
    Array.iteri
      (fun i c -> if not (commits_in_place t c e !suffix) then affected := i :: !affected)
      t.chks;
    match !affected with
    | [] ->
        route_step t e;
        Journal.insert t.journal ~at:q e;
        note_journal_depth t;
        t.commute_hits <- t.commute_hits + 1;
        (match t.trc with
        | Some c -> Tr.emit c.tr c.tr_commute Tr.Instant e.Trace.time
        | None -> ());
        `Commuted
    | affected -> (
        match Journal.restore_point t.journal ~at:q ~time:e.Trace.time with
        | None ->
            (* The base snapshot always qualifies — see [create]. *)
            assert false
        | Some r ->
            (* The whole repair is one span on the ooo track: restore,
               re-step, catch-up.  Opened before the restore so the
               nested snapshot instants stay time-ordered. *)
            (match t.trc with
            | Some c -> Tr.emit c.tr c.tr_replay Tr.Span_begin (List.length affected)
            | None -> ());
            let rpos = r.Journal.pos in
            List.iter
              (fun i ->
                let c = t.chks.(i) in
                c.restore_st r.Journal.snap.states.(i);
                c.decided_at <- r.Journal.snap.decided.(i);
                t.cache.(i) <- r.Journal.snap.states.(i);
                c.dirty <- false)
              affected;
            Journal.drop_after t.journal ~pos:rpos;
            (match Hashtbl.find_opt t.route e.Trace.name with
            | Some idxs ->
                List.iter
                  (fun i ->
                    if not (List.mem i affected) then step_chk t.chks.(i) e)
                  idxs
            | None -> ());
            Journal.insert t.journal ~at:q e;
            note_journal_depth t;
            let len = Journal.length t.journal in
            let count = len - rpos in
            for i = rpos to len - 1 do
              let ev = Journal.get t.journal i in
              List.iter
                (fun ci ->
                  let c = t.chks.(ci) in
                  fire_chk c ~upto:ev.Trace.time;
                  if Name.Set.mem ev.Trace.name c.alpha then step_chk c ev)
                affected
            done;
            (* Catch the replayed checkers back up to the present: the
               in-order path had fired their deadlines up to max_seen. *)
            List.iter (fun ci -> fire_chk t.chks.(ci) ~upto:t.max_seen) affected;
            t.rollbacks <- t.rollbacks + 1;
            t.replayed <- t.replayed + count;
            (match t.trc with
            | Some c -> Tr.emit c.tr c.tr_replay Tr.Span_end count
            | None -> ());
            `Replayed count)
  end

let offer t (e : Trace.event) =
  if t.finalized then invalid_arg "Loseq_ooo.Engine.offer: already finalized";
  let res =
    if e.Trace.time >= t.max_seen then offer_in_order t e
    else if e.Trace.time < t.max_seen - t.k then begin
      t.dropped_late <- t.dropped_late + 1;
      `Dropped_late
    end
    else offer_late t e
  in
  (match res with
  | `Dropped_late -> ()
  | `Applied | `Commuted | `Replayed _ ->
      notify_scan t;
      settle_scan t);
  res

let finalize ?final_time t =
  if not t.finalized then begin
    let ft = max 0 (max t.max_seen (Option.value final_time ~default:0)) in
    Array.iter (fun c -> fire_chk c ~upto:ft) t.chks;
    Array.iter
      (fun c ->
        if not (is_decided c) then begin
          c.dirty <- true;
          match c.b.Backend.finalize ~now:ft with
          | Backend.Running -> ()
          | Backend.Satisfied -> c.decided_at <- ft
          | Backend.Violated d -> c.decided_at <- d.Diag.time
        end
        else ignore (c.b.Backend.finalize ~now:ft))
      t.chks;
    t.finalized <- true;
    notify_scan t;
    Array.iteri
      (fun i c ->
        if not c.settled then begin
          c.settled <- true;
          t.settled_events <- t.settled_events + 1;
          t.notice
            (Settled
               { index = i; label = c.label; verdict = c.b.Backend.verdict () })
        end)
      t.chks
  end

let report t =
  Array.to_list (Array.map (fun c -> (c.label, c.b.Backend.verdict ())) t.chks)

let report_strings t =
  List.map
    (fun (_, v) -> Format.asprintf "%a" Backend.pp_verdict v)
    (report t)

let tri t =
  Array.map
    (fun c -> Backend.tri_of_verdict ~settled:c.settled (c.b.Backend.verdict ()))
    t.chks

let settled t = Array.map (fun c -> c.settled) t.chks

let stats t =
  {
    applied = t.applied;
    late = t.late;
    commute_hits = t.commute_hits;
    rollbacks = t.rollbacks;
    replayed = t.replayed;
    snapshots = t.snapshots;
    settled_events = t.settled_events;
    dropped_late = t.dropped_late;
    max_journal = t.max_journal;
  }
