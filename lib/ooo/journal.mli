(** Bounded rollback journal for the speculative engine.

    The journal is the engine's event memory: the sliding window of
    suite-alphabet events that a late arrival could still be inserted
    among, plus a stack of checker-state snapshots anchored at journal
    positions.  A snapshot at position [p] captures the suite state
    after the first [p] journalled events were applied and every
    deadline up to [fired_upto] was fired; restoring it and replaying
    positions [p..] reproduces the live state.

    The journal is polymorphic in the snapshot payload ['snap] — the
    engine stores its own per-checker persisted-state arrays; the
    journal only manages positions, admissibility ([fired_upto]) and
    trimming.  Events before the watermark frontier are dropped by
    {!trim} once a qualifying snapshot covers them, which is what keeps
    the window bounded. *)

open Loseq_core

type 'snap entry = {
  mutable pos : int;
      (** Journal position the snapshot is anchored at (state after the
          first [pos] events).  Mutable because {!trim} rebases it when
          the window frontier advances. *)
  epoch : int;  (** Watermark epoch at record time (introspection). *)
  fired_upto : int;
      (** Deadlines with [deadline + 1 <= fired_upto] had already fired
          when the snapshot was taken.  A restore for an insertion at
          time [t] must pick a snapshot with [fired_upto <= t], or it
          would bake in deadline misses the late event may refute. *)
  snap : 'snap;
}

type 'snap t

val create : unit -> 'snap t

(** {1 Event window} *)

val length : 'snap t -> int
(** Number of live (not yet trimmed) events. *)

val get : 'snap t -> int -> Trace.event
(** [get t i] is the [i]-th live event, [0 <= i < length t]. *)

val append : 'snap t -> Trace.event -> unit
(** Add an in-order event at the head. *)

val insertion_point : 'snap t -> time:int -> int
(** First position whose event is stamped strictly later than [time] —
    where a late event at [time] lands, keeping ties stable (the late
    arrival goes after existing equal-time events). *)

val insert : 'snap t -> at:int -> Trace.event -> unit
(** Splice a late event in at position [at].  Snapshots anchored
    strictly above [at] are invalidated (their prefix changed) and
    dropped; snapshots at or below [at] survive. *)

val events : 'snap t -> Trace.event list
(** The live window, oldest first (tests and debugging). *)

(** {1 Snapshots} *)

val record : 'snap t -> epoch:int -> fired_upto:int -> 'snap -> unit
(** Push a snapshot anchored at the current head ([length t]). *)

val snapshots : 'snap t -> int
(** Live snapshot count. *)

val since_snapshot : 'snap t -> int
(** Events appended past the newest snapshot's anchor — the engine's
    snapshot cadence trigger.  [max_int] when no snapshot is live. *)

val restore_point : 'snap t -> at:int -> time:int -> 'snap entry option
(** Latest snapshot usable to replay an insertion at position [at],
    time [time]: the highest-anchored entry with [pos <= at] and
    [fired_upto <= time].  [None] only if the engine broke the
    invariant that a base snapshot always survives. *)

val drop_after : 'snap t -> pos:int -> unit
(** Drop snapshots anchored strictly above [pos] (rollback discards
    everything newer than its restore point). *)

val trim : 'snap t -> watermark:int -> unit
(** Advance the window frontier: find the highest snapshot anchored at
    or below the first position stamped after [watermark] whose
    [fired_upto <= watermark], make it the new base, and drop the
    events and snapshots before it.  No admissible late event (time [>=
    watermark]) can need anything older.  A no-op when no snapshot
    qualifies. *)
