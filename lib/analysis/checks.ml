open Loseq_core

type report = {
  pattern : Pattern.t;
  complete : bool;
  violation_witness : Trace.t option;
  time_violation : bool;
  match_witness : Trace.t option;
  safe_witness : Trace.t option;
  dead_names : Name.t list;
  min_conclusion_events : int option;
}

let witness_of m ex i = fst (Witness.concretize m (Reach.path ex i))

(* A name the conclusion's alphabet does not contain, to close the
   pseudo-antecedent below. *)
let fresh_trigger alpha =
  let rec go s = if Name.Set.mem (Name.v s) alpha then go (s ^ "_") else s in
  Name.v (go "__deadline")

(* Minimal number of events to recognize an ordering, measured as a
   BFS shortest path on the automaton of [ordering << fresh]. *)
let min_events_of_ordering ordering =
  let trigger = fresh_trigger (Pattern.alpha_ordering ordering) in
  let m, ex = Memo.explore ~exact:false (Pattern.antecedent ordering ~trigger) in
  match Reach.find ex (Machine.completable m) with
  | Some i -> Some (List.length (Reach.path ex i))
  | None -> None (* unreachable with a sufficient budget *)

let report ?budget pattern =
  let m, ex = Memo.explore ?budget ~exact:false pattern in
  let violating st = Machine.is_violated st || Machine.can_time_violate m st in
  let violation_witness, time_violation =
    match Reach.find ex Machine.is_violated with
    | Some i -> (Some (witness_of m ex i), false)
    | None -> (
        match Reach.find ex (Machine.can_time_violate m) with
        | Some i -> (Some (witness_of m ex i), true)
        | None -> (None, false))
  in
  let match_witness =
    match Reach.find ex (fun (st : Machine.state) -> st.matched) with
    | Some i -> Some (witness_of m ex i)
    | None -> None
  in
  let safe_witness =
    if not ex.Reach.complete then None
    else begin
      let doomed = Reach.co_reachable ex violating in
      let safe = ref None in
      Array.iteri
        (fun i st ->
          if
            !safe = None
            && (not doomed.(i))
            && not (Machine.is_violated st)
          then safe := Some i)
        ex.Reach.states;
      Option.map (fun i -> witness_of m ex i) !safe
    end
  in
  let dead_names =
    if not ex.Reach.complete then []
    else begin
      let live = Array.make (Machine.n_ids m) false in
      Array.iter
        (List.iter (fun (id, j) ->
             if not (Machine.is_violated ex.Reach.states.(j)) then
               live.(id) <- true))
        ex.Reach.succ;
      let dead = ref [] in
      for id = Machine.n_ids m - 1 downto 0 do
        if not live.(id) then dead := Machine.name m id :: !dead
      done;
      !dead
    end
  in
  let min_conclusion_events =
    match pattern with
    | Pattern.Antecedent _ -> None
    | Pattern.Timed g -> min_events_of_ordering g.conclusion
  in
  {
    pattern;
    complete = ex.Reach.complete;
    violation_witness;
    time_violation;
    match_witness;
    safe_witness;
    dead_names;
    min_conclusion_events;
  }

let findings ?budget pattern =
  let r = report ?budget pattern in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  (match r.violation_witness with
  | None when r.complete ->
      add
        (Finding.v Finding.Error "violation-unsat"
           "no trace can violate this property: the checker can never \
            fail and monitors nothing")
  | _ -> ());
  (match (r.violation_witness, r.safe_witness) with
  | Some _, Some w when r.complete ->
      add
        (Finding.v
           ~witness:(Witness.to_string w)
           Finding.Warning "vacuous-unviolatable"
           "after the witness trace no continuation can ever violate \
            this property: the checker goes vacuous (for a non-repeated \
            antecedent, '<<!' keeps it armed)")
  | _ -> ());
  (match r.match_witness with
  | None when r.complete ->
      add
        (Finding.v Finding.Error "match-unsat"
           "no trace can complete a recognition round: the property is \
            never exercised positively")
  | _ -> ());
  List.iter
    (fun nm ->
      add
        (Finding.v Finding.Warning "dead-name"
           "name '%a' can never be consumed without violating - it is \
            unreachable in every legal run"
           Name.pp nm))
    r.dead_names;
  (match (r.pattern, r.min_conclusion_events) with
  | Pattern.Timed g, Some needed ->
      if g.deadline < needed then
        add
          (Finding.v Finding.Error "deadline-infeasible"
             "the conclusion needs at least %d events (automaton \
              shortest path) but the deadline allows only %d time \
              units: with strictly increasing timestamps every premise \
              match is doomed"
             needed g.deadline)
      else if g.deadline = needed then
        add
          (Finding.v Finding.Warning "deadline-tight"
             "the conclusion needs at least %d events and the deadline \
              allows exactly %d time units: any scheduling delay \
              violates"
             needed g.deadline)
  | Pattern.Timed _, None ->
      if r.complete then
        add
          (Finding.v Finding.Info "analysis-budget"
             "state budget exhausted while measuring the conclusion's \
              minimal event count: deadline feasibility was skipped")
  | Pattern.Antecedent _, _ -> ());
  if not r.complete then
    add
      (Finding.v Finding.Info "analysis-budget"
         "state budget exhausted: unreachability-based checks were \
          skipped for this pattern");
  Finding.order (List.rev !fs)
