(** The finding-code registry: one entry per stable code emitted by the
    linter or the analyzer, with a rationale and a minimal reproducing
    example.

    [loseq analyze --explain CODE] prints the entry; when the entry
    carries an example, the analyses are run on it live so the printed
    witness is always the tool's current behaviour, not stale prose. *)

open Loseq_core

type entry = {
  code : string;
  severity : Finding.severity;
  title : string;  (** one line — also the SARIF rule description *)
  rationale : string;  (** why the finding matters, what to do *)
  example : string option;  (** a pattern in concrete syntax *)
}

val find : string -> entry option
val all : entry list
(** Every registered code, analyzer codes first, then lint codes. *)

val rules : (string * string) list
(** [(code, title)] for SARIF rule tables. *)

val pp : Format.formatter -> entry -> unit
(** Rationale plus, for entries with an example, the example's live
    findings and witness traces. *)
