(** Reachable-state coverage of a trace set, scored against the
    analyzer's own reachable set.

    {!Loseq_verif.Coverage} estimates stimulus coverage per fragment
    kind with a closed-form state count; this module replaces the
    estimate with ground truth: the abstract machine's reachable states
    and transitions ({!Reach} over {!Machine}) are the denominator, and
    every trace is replayed on a concrete monitor and projected
    ({!Machine.project}) after each event to mark the states and
    transitions it actually exercised.  An uncovered reachable state is
    a monitor behaviour no trace in the set ever drives — exactly the
    blind spot mutation analysis ({!Mutate}) exploits, which is why the
    two reports ship together as one quality gate.

    Time-level violations ([Deadline_miss] by {!Loseq_core.Compiled.check_time})
    have no event-level edge in the abstract graph and are excluded on
    both sides of the score. *)

open Loseq_core

type report = {
  label : string;
  pattern : Pattern.t;
  complete : bool;  (** reachable set fully explored within budget *)
  reachable_states : int;
  visited_states : int;
  reachable_edges : int;
  visited_edges : int;
  traces : int;  (** traces replayed *)
  uncovered_witness : Trace.t option;
      (** a shortest trace reaching the first uncovered state
          (BFS-minimal), [None] at full state coverage *)
}

val report : ?budget:int -> label:string -> Pattern.t -> Trace.t list -> report
(** Raises {!Wellformed.Ill_formed}. *)

val suite_report :
  ?budget:int -> (string * Pattern.t) list -> Trace.t list -> report list
(** One report per entry; each monitor sees only the events in its own
    alphabet (hub routing semantics). *)

val findings : report list -> Finding.t list
(** [coverage-gap] (warning) per entry whose trace set misses reachable
    states, with the uncovered-state witness attached;
    [analysis-budget] (info) when exploration was truncated. *)

val pct : int -> int -> float

val pp : Format.formatter -> report -> unit
(** One aligned row per entry for the CLI table. *)
