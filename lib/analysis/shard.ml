open Loseq_core

(* ---- cost model -------------------------------------------------------- *)

type cost = {
  slab_slots : int;
  reach_states : int;
  profile_steps : int;
  total : int;
}

(* Bit-width of [n]: how the abstract state count enters the scalar.
   A monitor's per-event cost is its fragment width (the slab slots),
   not a state-space walk — the reachable count only measures how much
   run information the checker tracks, so it contributes its
   information content, not its magnitude. *)
let bits n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let cost_of ?budget ~eng ~profile ~measured ck (label, p) =
  let slab_slots = Flat.checker_slots eng ck in
  let _, ex = Memo.explore ?budget ~exact:false p in
  let reach_states = Array.length ex.Reach.states in
  let profile_steps =
    (* Measured per-checker step counts (a [loseq-profile/1] artifact
       produced by a live run) take precedence over re-deriving the
       load from a raw profile trace. *)
    match List.assoc_opt label measured with
    | Some steps -> max 0 steps
    | None -> (
        match profile with
        | None -> 0
        | Some tr ->
            let alpha = Pattern.alpha p in
            List.fold_left
              (fun n (e : Trace.event) ->
                if Name.Set.mem e.name alpha then n + 1 else n)
              0 tr)
  in
  let total = slab_slots + bits reach_states + profile_steps in
  { slab_slots; reach_states; profile_steps; total }

(* ---- measured profiles ------------------------------------------------- *)

(* Parse a [loseq-profile/1] artifact (what a live run's [--profile-out]
   or [loseq trace] emits) into the [measured] association list
   [analyze] consumes.  Strict on the schema tag so a shard plan never
   silently ingests the wrong artifact family. *)
let profile_of_json json =
  match Json.member "schema" json with
  | Some (Json.String "loseq-profile/1") -> (
      match Option.bind (Json.member "checkers" json) Json.to_list_opt with
      | None -> Error "loseq-profile/1: missing \"checkers\" array"
      | Some entries ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest -> (
                match
                  ( Option.bind (Json.member "label" e) Json.to_string_opt,
                    Json.member "steps" e )
                with
                | Some label, Some (Json.Int steps) ->
                    go ((label, steps) :: acc) rest
                | _ ->
                    Error
                      "loseq-profile/1: checker entry needs \"label\" \
                       (string) and \"steps\" (int)")
          in
          go [] entries)
  | Some (Json.String other) ->
      Error (Printf.sprintf "unsupported profile schema %S" other)
  | Some _ | None -> Error "not a loseq-profile/1 artifact (no schema tag)"

(* ---- interference graph ------------------------------------------------ *)

type edge = {
  i : int;
  j : int;
  shared : Name.t list;
  cross_races : Commute.product_race list;
  product_complete : bool;
  deadline_coupled : bool;
}

(* A race on a pair BOTH checkers observe: the duplicated pair would
   be delivered to two shards, and independent per-shard reordering
   could consume it in different orders — the one hazard in-order
   slice delivery cannot absorb.  A race on a mixed pair (one name
   private to its owner) is the owner's internal business: its shard
   sees both names, in trace order. *)
let hard_races e =
  List.filter
    (fun (r : Commute.product_race) ->
      List.mem r.Commute.a e.shared && List.mem r.Commute.b e.shared)
    e.cross_races

let hard e =
  hard_races e <> [] || ((not e.product_complete) && e.shared <> [])

let is_timed = function Pattern.Timed _ -> true | Pattern.Antecedent _ -> false

let edges_of ?budget entries =
  let n = Array.length entries in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let _, pi = entries.(i) and _, pj = entries.(j) in
      let shared =
        Name.Set.elements (Name.Set.inter (Pattern.alpha pi) (Pattern.alpha pj))
      in
      let deadline_coupled = is_timed pi && is_timed pj in
      if shared <> [] then begin
        let r = Commute.analyze_product ?budget entries.(i) entries.(j) in
        acc :=
          {
            i;
            j;
            shared;
            cross_races = r.Commute.cross_races;
            product_complete = r.Commute.complete;
            deadline_coupled;
          }
          :: !acc
      end
      else if deadline_coupled then
        acc :=
          { i; j; shared = []; cross_races = []; product_complete = true;
            deadline_coupled }
          :: !acc
    done
  done;
  List.rev !acc

(* ---- the plan ---------------------------------------------------------- *)

type plan = {
  entries : (string * Pattern.t) array;
  costs : cost array;
  edges : edge list;
  internal_races : (int * Commute.race) list;
  assignment : int array;
  shards : int list array;
  shard_costs : int array;
  balance : float;
  certified : bool;
}

(* Union-find with path compression, for contracting hard edges. *)
let find uf i =
  let rec go i = if uf.(i) = i then i else go uf.(i) in
  let root = go i in
  let rec compress i =
    if uf.(i) <> root then begin
      let next = uf.(i) in
      uf.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union uf i j =
  let ri = find uf i and rj = find uf j in
  if ri <> rj then uf.(max ri rj) <- min ri rj

let analyze ?budget ?profile ?(measured = []) ~shards:n_shards entries =
  if n_shards < 1 then invalid_arg "Shard.analyze: shards must be >= 1";
  let entries = Array.of_list entries in
  let n = Array.length entries in
  let eng = Flat.compile (Array.to_list entries) in
  let costs = Array.mapi (cost_of ?budget ~eng ~profile ~measured) entries in
  let edges = edges_of ?budget entries in
  let internal_races =
    List.concat
      (List.init n (fun i ->
           let _, p = entries.(i) in
           let c = Commute.analyze ?budget p in
           List.map (fun r -> (i, r)) c.Commute.races))
  in
  (* Contract hard edges: racy (or undecided) pairs must share a
     shard, whatever it costs the balance. *)
  let uf = Array.init n (fun i -> i) in
  List.iter (fun e -> if hard e then union uf e.i e.j) edges;
  let cluster_members = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    let r = find uf i in
    Hashtbl.replace cluster_members r
      (i :: Option.value (Hashtbl.find_opt cluster_members r) ~default:[])
  done;
  let clusters =
    Hashtbl.fold
      (fun _ members acc ->
        let cost =
          List.fold_left (fun a i -> a + costs.(i).total) 0 members
        in
        (members, cost) :: acc)
      cluster_members []
    (* heaviest first (LPT); ties broken by lowest member index so the
       plan is deterministic whatever the hash order *)
    |> List.sort (fun (ma, ca) (mb, cb) ->
           if ca <> cb then compare cb ca else compare ma mb)
  in
  let assignment = Array.make n 0 in
  let shard_costs = Array.make n_shards 0 in
  let shard_members = Array.make n_shards [] in
  (* Affinity: shared names (cheaper event fan-out when co-located)
     plus deadline coupling (one wheel instead of two) between the
     cluster and a shard's current members — the tie-break among
     equally loaded shards. *)
  let affinity members shard =
    List.fold_left
      (fun a e ->
        let touches l r = List.mem l members && List.mem r shard_members.(shard)
        in
        if touches e.i e.j || touches e.j e.i then
          a + List.length e.shared + if e.deadline_coupled then 1 else 0
        else a)
      0 edges
  in
  List.iter
    (fun (members, cost) ->
      let best = ref 0 in
      for s = 1 to n_shards - 1 do
        if
          shard_costs.(s) < shard_costs.(!best)
          || shard_costs.(s) = shard_costs.(!best)
             && affinity members s > affinity members !best
        then best := s
      done;
      let s = !best in
      List.iter (fun i -> assignment.(i) <- s) members;
      shard_members.(s) <- shard_members.(s) @ members;
      shard_costs.(s) <- shard_costs.(s) + cost)
    clusters;
  let shards =
    Array.init n_shards (fun s ->
        List.filter (fun i -> assignment.(i) = s) (List.init n (fun i -> i)))
  in
  let balance =
    let nonempty = List.filter (fun c -> c <> []) (Array.to_list shards) in
    match nonempty with
    | [] -> 1.0
    | _ ->
        let cs =
          List.map
            (fun members ->
              List.fold_left (fun a i -> a + costs.(i).total) 0 members)
            nonempty
        in
        let mx = List.fold_left max 0 cs in
        let mean =
          float_of_int (List.fold_left ( + ) 0 cs)
          /. float_of_int (List.length cs)
        in
        if mean = 0.0 then 1.0 else float_of_int mx /. mean
  in
  let certified =
    List.for_all
      (fun e ->
        assignment.(e.i) = assignment.(e.j)
        || e.shared = []
        || (e.product_complete && hard_races e = []))
      edges
  in
  {
    entries;
    costs;
    edges;
    internal_races;
    assignment;
    shards;
    shard_costs;
    balance;
    certified;
  }

let shard_alphabet plan s =
  List.fold_left
    (fun acc i -> Name.Set.union acc (Pattern.alpha (snd plan.entries.(i))))
    Name.Set.empty plan.shards.(s)

(* ---- reporting --------------------------------------------------------- *)

let twin_witness trace_ab ab trace_ba ba =
  Format.asprintf "%s: %s  /  %s: %s" ab
    (Witness.to_string trace_ab)
    ba
    (Witness.to_string trace_ba)

let pair_verdicts (a, b) =
  Printf.sprintf "%s/%s"
    (if a then "PASS" else "FAIL")
    (if b then "PASS" else "FAIL")

let findings ?(balance_threshold = 1.5) plan =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  List.iter
    (fun e ->
      let la = fst plan.entries.(e.i) and lb = fst plan.entries.(e.j) in
      List.iter
        (fun (r : Commute.product_race) ->
          add
            (Finding.v ~subject:la
               ~witness:
                 (twin_witness r.Commute.trace_ab
                    (pair_verdicts r.Commute.ab_verdicts)
                    r.Commute.trace_ba
                    (pair_verdicts r.Commute.ba_verdicts))
               Finding.Warning "shard-coupled"
               "checkers '%s' and '%s' race on the shared pair '%a'/'%a': \
                the checkers are co-located in shard %d, which must \
                consume both names in trace order"
               la lb Name.pp r.Commute.a Name.pp r.Commute.b
               plan.assignment.(e.i)))
        (hard_races e);
      if (not e.product_complete) && hard_races e = [] then
        add
          (Finding.v ~subject:la Finding.Warning "shard-coupled"
             "interference between '%s' and '%s' is undecided within the \
              state budget: the pair is co-located in shard %d \
              conservatively"
             la lb
             plan.assignment.(e.i)))
    plan.edges;
  List.iter
    (fun (i, (r : Commute.race)) ->
      let label = fst plan.entries.(i) in
      add
        (Finding.v ~subject:label
           ~witness:
             (twin_witness r.Commute.trace_ab
                (if r.Commute.ab_passes then "PASS" else "FAIL")
                r.Commute.trace_ba
                (if r.Commute.ab_passes then "FAIL" else "PASS"))
           Finding.Warning "shard-coupled"
           "checker '%s' races on '%a'/'%a': its alphabet slice is pinned \
            to shard %d, which must preserve their delivery order"
           label Name.pp r.Commute.a Name.pp r.Commute.b plan.assignment.(i)))
    plan.internal_races;
  if plan.balance > balance_threshold then
    add
      (Finding.v Finding.Warning "shard-imbalance"
         "static cost balance %.2f exceeds %.2f (max/mean over non-empty \
          shards): the heaviest shard dominates the plan"
         plan.balance balance_threshold);
  Finding.order (List.rev !fs)

(* ---- artifact ---------------------------------------------------------- *)

let cost_json c =
  Json.Obj
    [
      ("slab_slots", Json.Int c.slab_slots);
      ("reach_states", Json.Int c.reach_states);
      ("profile_steps", Json.Int c.profile_steps);
      ("total", Json.Int c.total);
    ]

let names_json names =
  Json.List (List.map (fun nm -> Json.String (Name.to_string nm)) names)

let to_json plan =
  let shard_json s members =
    Json.Obj
      [
        ("shard", Json.Int s);
        ( "checkers",
          Json.List
            (List.map
               (fun i ->
                 Json.Obj
                   [
                     ("index", Json.Int i);
                     ("label", Json.String (fst plan.entries.(i)));
                     ("cost", cost_json plan.costs.(i));
                   ])
               members) );
        ("alphabet", names_json (Name.Set.elements (shard_alphabet plan s)));
        ("cost", Json.Int plan.shard_costs.(s));
      ]
  in
  let edge_json e =
    Json.Obj
      [
        ("a", Json.String (fst plan.entries.(e.i)));
        ("b", Json.String (fst plan.entries.(e.j)));
        ("shared", names_json e.shared);
        ("races", Json.Int (List.length e.cross_races));
        ("hard_races", Json.Int (List.length (hard_races e)));
        ("complete", Json.Bool e.product_complete);
        ("deadline_coupled", Json.Bool e.deadline_coupled);
        ("hard", Json.Bool (hard e));
        ("co_located", Json.Bool (plan.assignment.(e.i) = plan.assignment.(e.j)));
      ]
  in
  let coupling_json (i, (r : Commute.race)) =
    Json.Obj
      [
        ("entry", Json.String (fst plan.entries.(i)));
        ("a", Json.String (Name.to_string r.Commute.a));
        ("b", Json.String (Name.to_string r.Commute.b));
        ("shard", Json.Int plan.assignment.(i));
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "loseq-shard-plan/1");
      ("checkers", Json.Int (Array.length plan.entries));
      ("shards", Json.List (Array.to_list (Array.mapi shard_json plan.shards)));
      ("edges", Json.List (List.map edge_json plan.edges));
      ("internal_races", Json.List (List.map coupling_json plan.internal_races));
      ("balance", Json.Float plan.balance);
      ("certified", Json.Bool plan.certified);
    ]

let pp ppf plan =
  let n_used =
    Array.fold_left (fun a s -> if s = [] then a else a + 1) 0 plan.shards
  in
  Format.fprintf ppf "shard plan: %d checkers over %d/%d shards — %s, \
                      balance %.2f@,"
    (Array.length plan.entries)
    n_used
    (Array.length plan.shards)
    (if plan.certified then "CERTIFIED independent" else "NOT certified")
    plan.balance;
  Array.iteri
    (fun s members ->
      if members <> [] then begin
        Format.fprintf ppf "  shard %d (cost %d):" s plan.shard_costs.(s);
        List.iter
          (fun i -> Format.fprintf ppf " %s" (fst plan.entries.(i)))
          members;
        Format.fprintf ppf "  {%s}@,"
          (String.concat " "
             (List.map Name.to_string
                (Name.Set.elements (shard_alphabet plan s))))
      end)
    plan.shards;
  let hard_edges = List.filter hard plan.edges in
  if hard_edges <> [] || plan.internal_races <> [] then begin
    Format.fprintf ppf "  coupling:@,";
    List.iter
      (fun e ->
        Format.fprintf ppf "    %s + %s co-located in shard %d (%s)@,"
          (fst plan.entries.(e.i))
          (fst plan.entries.(e.j))
          plan.assignment.(e.i)
          (if e.cross_races <> [] then "cross-checker race"
           else "undecided within budget"))
      hard_edges;
    List.iter
      (fun (i, (r : Commute.race)) ->
        Format.fprintf ppf "    %s: %a/%a order pinned to shard %d@,"
          (fst plan.entries.(i))
          Name.pp r.Commute.a Name.pp r.Commute.b plan.assignment.(i))
      plan.internal_races
  end
