open Loseq_core

type rclass =
  | Idle
  | Waiting
  | Started
  | Below of int
  | Ready
  | Full
  | Counting of int
  | Done

type config = {
  active : int;
  recs : rclass array;
  armed : bool;
  q_done : bool;
}

type status = Running of config | Satisfied | Violated of Diag.reason
type state = { status : status; matched : bool }

type t = {
  pattern : Pattern.t;
  s : Compiled.static;
  lo : int array;
  hi : int array;
  exact : bool;
}

let make ?(exact = false) pattern =
  let c = Compiled.compile pattern in
  let s = Compiled.static c in
  {
    pattern;
    s;
    lo = Array.map (fun (r : Pattern.range) -> r.lo) s.rec_range;
    hi = Array.map (fun (r : Pattern.range) -> r.hi) s.rec_range;
    exact;
  }

let of_compiled ?(exact = false) c =
  let s = Compiled.static c in
  {
    pattern = Compiled.pattern c;
    s;
    lo = Array.map (fun (r : Pattern.range) -> r.lo) s.rec_range;
    hi = Array.map (fun (r : Pattern.range) -> r.hi) s.rec_range;
    exact;
  }

let pattern t = t.pattern
let timed t = t.s.timed
let deadline t = t.s.deadline
let n_ids t = Array.length t.s.names
let name t i = t.s.names.(i)

let init t =
  let recs = Array.make (Array.length t.s.rec_range) Idle in
  for r = t.s.frag_first.(0) to t.s.frag_first.(0) + t.s.frag_count.(0) - 1 do
    recs.(r) <- Waiting
  done;
  {
    status = Running { active = 0; recs; armed = false; q_done = false };
    matched = false;
  }

(* Class of a concrete counter value.  In exact mode the value is kept
   as is (products need the correlation between both machines'
   counters).  Abstracting, values below [lo] stay exact so abstract
   path lengths equal concrete event counts on the way to a minimal
   completion; values in [[lo, hi-1]] collapse to [Ready] (only the
   predicates [>= lo] and [>= hi] matter there). *)
let class_of_count t r c =
  if t.exact then Counting c
  else if c < t.lo.(r) then Below c
  else if c < t.hi.(r) then Ready
  else Full

(* First own event: counter = 1. *)
let start_class t r = class_of_count t r 1

type outcome = Quiet | Ok_acc | Nok | Err of Diag.reason

(* Abstract mirror of [Compiled.rec_step]: successors of one recognizer
   on one category.  Deterministic except [Self] from a counting
   interval wide enough to both stay and cross. *)
let rec_succ t r cls (cat : Context.category) =
  let range = t.s.rec_range.(r) in
  let disj = t.s.rec_disjunctive.(r) in
  match (cls, cat) with
  | Idle, _ -> [ (Idle, Quiet) ] (* dropped out: every event is ignored *)
  | (Waiting | Started), Context.Self -> [ (start_class t r, Quiet) ]
  | (Waiting | Started), Context.Current -> [ (Started, Quiet) ]
  | (Waiting | Started), Context.Accept ->
      if disj then [ (Idle, Nok) ] else [ (cls, Err (Diag.Missing range)) ]
  | Below c, Context.Self -> [ (class_of_count t r (c + 1), Quiet) ]
  | Below _, (Context.Current | Context.Accept) ->
      [ (cls, Err (Diag.Underflow range)) ]
  | Counting c, Context.Self ->
      if c >= t.hi.(r) then [ (cls, Err (Diag.Overflow range)) ]
      else [ (Counting (c + 1), Quiet) ]
  | Counting c, Context.Current ->
      if c >= t.lo.(r) then [ (Done, Quiet) ]
      else [ (cls, Err (Diag.Underflow range)) ]
  | Counting c, Context.Accept ->
      if c >= t.lo.(r) then [ (Idle, Ok_acc) ]
      else [ (cls, Err (Diag.Underflow range)) ]
  | Ready, Context.Self ->
      if t.hi.(r) >= t.lo.(r) + 2 then [ (Ready, Quiet); (Full, Quiet) ]
      else [ (Full, Quiet) ]
  | Full, Context.Self -> [ (cls, Err (Diag.Overflow range)) ]
  | (Ready | Full), Context.Current -> [ (Done, Quiet) ]
  | (Ready | Full), Context.Accept -> [ (Idle, Ok_acc) ]
  | Done, Context.Self -> [ (cls, Err (Diag.Reentered range)) ]
  | Done, Context.Current -> [ (Done, Quiet) ]
  | Done, Context.Accept -> [ (Idle, Ok_acc) ]
  | _, Context.Before -> [ (cls, Err Diag.Before_name) ]
  | _, Context.After -> [ (cls, Err Diag.After_name) ]
  | _, Context.Outside -> [ (cls, Quiet) ]

(* Abstract mirror of [Compiled.min_complete]. *)
let frag_min_complete t recs f =
  let first = t.s.frag_first.(f) in
  let oks = ref 0 in
  let viable = ref true in
  for r = first to first + t.s.frag_count.(f) - 1 do
    match recs.(r) with
    | Below _ -> viable := false
    | Counting c -> if c >= t.lo.(r) then incr oks else viable := false
    | Ready | Full | Done -> incr oks
    | Idle | Waiting | Started ->
        if not t.s.rec_disjunctive.(r) then viable := false
  done;
  !viable && !oks > 0

(* Abstract mirror of [Compiled.try_complete]: deliver Accept to the
   active fragment.  Fully deterministic. *)
exception Failed of Diag.reason

let try_complete t cfg =
  let first = t.s.frag_first.(cfg.active) in
  let recs = Array.copy cfg.recs in
  let oks = ref 0 in
  try
    for r = first to first + t.s.frag_count.(cfg.active) - 1 do
      match rec_succ t r recs.(r) Context.Accept with
      | [ (c', o) ] -> (
          recs.(r) <- c';
          match o with
          | Ok_acc -> incr oks
          | Nok | Quiet -> ()
          | Err reason -> raise (Failed reason))
      | _ -> assert false (* Accept never branches *)
    done;
    if !oks = 0 then Error Diag.Empty_fragment else Ok recs
  with Failed reason -> Error reason

(* Abstract mirror of [Compiled.start_fragment_with] (in place). *)
let start_fragment t recs f id =
  for r = t.s.frag_first.(f) to t.s.frag_first.(f) + t.s.frag_count.(f) - 1 do
    recs.(r) <-
      (if t.s.category.(r).(id) = Context.Self then start_class t r else Started)
  done

(* Abstract mirror of [Compiled.refresh_timed]; also reports whether a
   timed round just completed (q_done flipping). *)
let refresh t cfg =
  if not t.s.timed then (cfg, false)
  else if cfg.active = t.s.premise_last && frag_min_complete t cfg.recs cfg.active
  then ({ cfg with armed = true }, false)
  else if
    cfg.active = t.s.fragments - 1
    && (not cfg.q_done)
    && frag_min_complete t cfg.recs cfg.active
  then ({ cfg with q_done = true }, true)
  else (cfg, false)

(* Step the active fragment: every recognizer sees the event; the one
   whose own name it is may branch (at most one per fragment, names
   being globally unique). *)
let step_active t state cfg id =
  let first = t.s.frag_first.(cfg.active) in
  let count = t.s.frag_count.(cfg.active) in
  let alts = ref [ Array.copy cfg.recs ] in
  try
    for k = 0 to count - 1 do
      let r = first + k in
      let cat = t.s.category.(r).(id) in
      (* every alternative agrees on recognizers not yet processed *)
      let cls = (List.hd !alts).(r) in
      match rec_succ t r cls cat with
      | [ (c', o) ] -> (
          match o with
          | Err reason -> raise (Failed reason)
          | Quiet | Ok_acc | Nok -> List.iter (fun a -> a.(r) <- c') !alts)
      | succs ->
          alts :=
            List.concat_map
              (fun a ->
                List.map
                  (fun (c', _) ->
                    let a' = Array.copy a in
                    a'.(r) <- c';
                    a')
                  succs)
              !alts
    done;
    List.map
      (fun recs ->
        let cfg', m = refresh t { cfg with recs } in
        { status = Running cfg'; matched = state.matched || m })
      !alts
  with Failed reason -> [ { state with status = Violated reason } ]

(* Abstract mirror of [Compiled.step_id] — same branch order. *)
let step t state id =
  match state.status with
  | Satisfied | Violated _ -> [ state ]
  | Running cfg ->
      let viol reason = [ { state with status = Violated reason } ] in
      let f = t.s.owner.(id) in
      let last = t.s.fragments - 1 in
      if f = cfg.active then step_active t state cfg id
      else if cfg.active = last && t.s.terminator.(id) then (
        match try_complete t cfg with
        | Error reason -> viol reason
        | Ok recs ->
            if not t.s.timed then
              if t.s.repeated then begin
                for
                  r = t.s.frag_first.(0)
                  to t.s.frag_first.(0) + t.s.frag_count.(0) - 1
                do
                  recs.(r) <- Waiting
                done;
                [
                  {
                    status = Running { cfg with active = 0; recs };
                    matched = true;
                  };
                ]
              end
              else [ { status = Satisfied; matched = true } ]
            else begin
              (* timed: the terminator opens the next round *)
              start_fragment t recs 0 id;
              let cfg' = { active = 0; recs; armed = false; q_done = false } in
              let cfg', m = refresh t cfg' in
              [ { status = Running cfg'; matched = state.matched || m } ]
            end)
      else if f = cfg.active + 1 then (
        match try_complete t cfg with
        | Error reason -> viol reason
        | Ok recs ->
            start_fragment t recs f id;
            let cfg', m = refresh t { cfg with active = f; recs } in
            [ { status = Running cfg'; matched = state.matched || m } ])
      else if f >= 0 && f <= cfg.active then viol Diag.Before_name
      else if f >= 0 then viol Diag.After_name
      else viol Diag.Trigger_early

let is_violated state =
  match state.status with Violated _ -> true | _ -> false

let is_final state =
  match state.status with Violated _ | Satisfied -> true | Running _ -> false

let can_time_violate t state =
  t.s.timed
  &&
  match state.status with
  | Running cfg -> cfg.armed && not cfg.q_done
  | _ -> false

let completable t state =
  match state.status with
  | Running cfg ->
      cfg.active = t.s.fragments - 1 && frag_min_complete t cfg.recs cfg.active
  | _ -> false

let project t c =
  let snap = Compiled.snapshot c in
  let status =
    match Compiled.verdict c with
    | Compiled.Satisfied -> Satisfied
    | Compiled.Violated v -> Violated v.reason
    | Compiled.Running ->
        Running
          {
            active = snap.active;
            recs =
              Array.mapi
                (fun r (s : Compiled.rec_state) ->
                  match s with
                  | Compiled.Idle -> Idle
                  | Compiled.Waiting -> Waiting
                  | Compiled.Started -> Started
                  | Compiled.Counting n -> class_of_count t r n
                  | Compiled.Done -> Done)
                snap.recs;
            armed = snap.armed;
            q_done = snap.q_done;
          }
  in
  { status; matched = snap.rounds > 0 }
