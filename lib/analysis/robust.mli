(** Lateness-robustness certificates for checker suites.

    A [K]-bounded reorder of a trace is any permutation that preserves
    the relative order of events whose timestamps are more than [K]
    apart — equivalently, any composition of adjacent swaps of events
    with timestamp gap [<= K].  This is exactly the perturbation
    envelope a {!Loseq_ingest.Reorder} stage with lateness [K] absorbs
    silently: arrival jitter within the window is re-sorted by
    timestamp, and the true order of events stamped within the window
    of each other is not recoverable from the stamps.

    The certificate of a suite is the maximal [K] (possibly [0] or
    [infinity]) such that every [K]-bounded reorder of every trace is
    verdict-invariant for every entry:

    - a pattern with a racy pair ({!Commute}) certifies [Finite 0] —
      even timestamp ties can flip its verdict, so only strictly
      in-order hosting preserves its meaning (the race is reported
      separately as a [race-pair] finding);
    - a fully commuting untimed pattern certifies [Infinite] — its
      verdict depends on the multiset of name orders only through
      pairwise orders that never matter;
    - a fully commuting timed pattern grades by deadline slack: swaps
      within gap [K] displace each timestamp by at most [K], so the
      measured premise-to-conclusion span drifts by at most [2K].  With
      the automaton-exact minimum conclusion length [m]
      ({!Checks.report}) and deadline [d], a doomed deadline ([d < m]
      under strictly increasing stamps) stays doomed while
      [d + 2K < m], certifying [K = (m - d - 1) / 2]; a live deadline
      certifies [Finite 0] ([jitter-fragile]: the verdict is a
      timestamp race);
    - anything undecided within the analysis budget certifies
      [Finite 0] conservatively.

    The suite bound is the minimum over its entries; {!Loseq_ingest}
    consults it at startup so that hosting behind a larger reorder
    window at least warns ([reorder-unsafe] is an error under
    [--strict-reorder]). *)

open Loseq_core

type bound = Finite of int | Infinite

val compare_bound : bound -> bound -> int
val min_bound : bound -> bound -> bound

val bound_to_string : bound -> string
(** ["inf"] for {!Infinite}, the decimal otherwise. *)

val pp_bound : Format.formatter -> bound -> unit

type entry = {
  label : string;
  pattern : Pattern.t;
  bound : bound;  (** [min] of [order_bound] and [time_bound] *)
  order_bound : bound;  (** from pairwise commutation: [0] or [Infinite] *)
  time_bound : bound;  (** from deadline slack; [Infinite] when no armed
                           configuration is reachable or the pattern is
                           untimed *)
  decided : bool;
      (** both analyses ran to completion; an undecided entry is
          conservatively bounded by [Finite 0] *)
  races : Commute.race list;
  commuting : (Name.t * Name.t) list;
  time_fragile : bool;
      (** timed, order-commuting, but the deadline verdict is live:
          [time_bound] is what caps the entry *)
}

type certificate = {
  entries : entry list;
  bound : bound;  (** minimum over entries; [Infinite] for an empty
                      suite *)
  decided : bool;  (** every entry decided *)
}

val entry : ?budget:int -> string * Pattern.t -> entry
val certificate : ?budget:int -> (string * Pattern.t) list -> certificate
(** Raises {!Wellformed.Ill_formed} on an ill-formed pattern. *)

val findings : ?lateness:int -> certificate -> Finding.t list
(** [race-pair] (warning, twin-trace witness) per racy pair,
    [jitter-fragile] (warning) per time-fragile entry,
    [analysis-budget] (info) per undecided entry, and — when
    [lateness] exceeds an entry's certified bound — [reorder-unsafe]
    (error) for that entry. *)

val race_findings : ?budget:int -> (string * Pattern.t) list -> Finding.t list
(** Convenience: [findings (certificate items)] without a lateness
    constraint — the [analyze --races] surface. *)
