open Loseq_core

type entry = {
  code : string;
  severity : Finding.severity;
  title : string;
  rationale : string;
  example : string option;
}

let e code severity title rationale example =
  { code; severity; title; rationale; example }

let all =
  [
    (* ---- semantic analyzer ------------------------------------------- *)
    e "violation-unsat" Finding.Error "the property can never be violated"
      "Exhaustive exploration of the monitor automaton found no \
       reachable violation (and, for timed patterns, no reachable armed \
       configuration).  Such a checker can never fail, so it monitors \
       nothing; every well-formed loose-ordering pattern is violable, \
       so this finding normally indicates a bug in the specification \
       tooling rather than a plausible hand-written pattern."
      None;
    e "vacuous-unviolatable" Finding.Warning
      "the checker can reach a state where it is vacuous"
      "Some reachable configuration has no violation reachable from it: \
       once the run passes that point the checker is dead weight and \
       silently stops constraining the design.  The classic case is a \
       non-repeated antecedent (P << i): after the first accepted \
       trigger it is satisfied forever.  Use '<<!' if every trigger \
       occurrence must be checked.  The witness trace leads to the \
       first such state."
      (Some "{set_imgAddr, set_glAddr, set_glSize} << start");
    e "match-unsat" Finding.Error "no trace completes a recognition round"
      "No reachable configuration completes a full recognition round, \
       so the property can never be exercised positively.  Like \
       violation-unsat this cannot happen for a well-formed pattern and \
       points at tooling or generation bugs."
      None;
    e "dead-name" Finding.Warning "a name can never be legally consumed"
      "The name appears in the pattern's alphabet, but no reachable \
       configuration can consume it without violating.  The range it \
       belongs to never contributes to a match: either the pattern \
       over-specifies the protocol or the name is a typo."
      None;
    e "deadline-infeasible" Finding.Error
      "the deadline is below the conclusion's minimal event count"
      "The minimal number of events needed to recognize the conclusion \
       — measured as a shortest path on the monitor automaton — exceeds \
       the deadline.  With strictly increasing timestamps every premise \
       match is doomed: the property reduces to 'the premise never \
       completes'.  Only simultaneous events (several events in one \
       time unit) could ever satisfy it; if that is intended, say so in \
       a comment, otherwise raise the deadline."
      (Some "start => ack[3,8] < done within 2");
    e "deadline-tight" Finding.Warning
      "the deadline equals the conclusion's minimal event count"
      "The conclusion is only satisfiable when every one of its events \
       lands on consecutive time units after the premise: any \
       scheduling delay at all violates.  Usually the deadline was \
       meant to include slack."
      (Some "start => ack[3,8] < done within 4");
    e "subsumed-checker" Finding.Warning "a checker is redundant"
      "Every trace this entry rejects is already rejected by another \
       entry of the suite (product reachability over both monitor \
       automata found no state where this one is violated and the other \
       is not).  Dropping the subsumed entry loses no checking power \
       and saves monitoring cost."
      None;
    e "equivalent-checkers" Finding.Warning
      "two checkers reject exactly the same traces"
      "Subsumption holds in both directions: the two entries are \
       interchangeable.  Keep one."
      None;
    e "conflicting-pair" Finding.Error "two checkers can never both match"
      "Each property is matchable on its own, but no trace completes a \
       recognition round of both without violating one of them.  A \
       suite containing such a pair rejects every run that fully \
       exercises it — almost always one of the two orderings is written \
       backwards."
      None;
    (* ---- commutation / reorder robustness ---------------------------- *)
    e "race-pair" Finding.Warning
      "two names race: their relative order decides the verdict"
      "Some reachable configuration of the monitor automaton reaches \
       verdict-distinguishable states depending on which of the two \
       names arrives first; the twin-trace witness is one adjacent \
       swap apart and flips the verdict on replay.  Hosting such a \
       checker behind any out-of-order ingress (even one that only \
       reorders timestamp ties) can silently change its verdict, so \
       its lateness-robustness bound is 0."
      (Some "req < ack <<! done");
    e "jitter-fragile" Finding.Warning
      "the deadline verdict is a timestamp race"
      "Every name pair of the pattern commutes, but a reachable armed \
       configuration exists and the deadline is satisfiable, so \
       displacing timestamps within a reorder window can move the \
       measured premise-to-conclusion span across the deadline.  The \
       certified lateness bound is the largest window that provably \
       cannot (0 when the deadline is live; (m - d - 1) / 2 when the \
       deadline d is below the conclusion's minimal event count m, \
       because the verdict is then pinned to FAIL until the drift 2K \
       bridges the gap)."
      None;
    e "reorder-unsafe" Finding.Error
      "hosted reorder window exceeds the certified lateness bound"
      "The serving configuration admits K-bounded arrival jitter, but \
       the suite's verdicts are only certified invariant up to a \
       smaller bound: some reordering the ingress absorbs silently \
       could flip a verdict, so the streamed verdicts cannot be \
       trusted at this window size.  Lower --lateness, fix the racy \
       entries, or accept the risk by dropping --strict-reorder."
      None;
    (* ---- shard-plan analysis ------------------------------------------ *)
    e "shard-coupled" Finding.Warning
      "two checkers (or two names of one checker) must share a shard"
      "The shard planner found an order-coupling it had to honor: \
       either a cross-checker pair of names fails to commute on the \
       synchronous product of the two exact monitor automata (the \
       twin-trace witness flips one of the two verdicts under one \
       adjacent swap), or a single checker's own racy pair pins its \
       whole alphabet slice to in-order delivery.  The named entries \
       are co-located in one shard; splitting them across domains \
       would require a synchronized event order between the shards."
      None;
    e "shard-imbalance" Finding.Warning
      "the shard plan's static cost balance exceeds the threshold"
      "After contracting every coupled pair, the heaviest shard's \
       static cost (flat-slab slots + abstract reachable states + \
       optional profile-weighted event counts) exceeds the mean over \
       non-empty shards by more than the threshold (default 1.5x): \
       the partition would not speed anything up, because the \
       heaviest shard dominates wall-clock.  Usually one cluster of \
       coupled checkers is simply too big — fix the races that glue \
       it together, or accept fewer shards."
      None;
    e "shard-divergence" Finding.Error
      "sharded execution disagrees with the unsharded suite"
      "Replaying a trace through the sharded harness (one hub per \
       shard over the name-filtered trace, verdicts merged at the \
       sequencer) produced a verdict different from the unsharded \
       suite on the same trace.  On a certified plan this is a \
       soundness bug in the planner or the harness, never a property \
       of the trace — report it."
      None;
    e "analysis-budget" Finding.Info "state budget exhausted"
      "The abstract state space exceeded the exploration budget; \
       existential results (witnesses found before the cut-off) are \
       still valid, but unreachability-based checks were skipped for \
       the pattern or pair."
      None;
    (* ---- mutation / coverage quality gate ----------------------------- *)
    e "mutant-survived" Finding.Warning
      "a first-order mutant of a monitor went undetected"
      "A single seeded fault (a retargeted or deleted transition, an \
       off-by-one or saturated counter bound, a shifted deadline, a \
       swapped recognizer category, an inverted verdict) produced a \
       monitor that no tier distinguished from the original: the static \
       findings agree, every differential trace replays to the same \
       verdict, and the exact-counter product either exhausted its \
       budget or found no distinguishing state.  The checker's quality \
       gate has a blind spot exactly this wide — add a trace that \
       exercises the mutated behaviour (the finding's witness command \
       replays the survivor) or raise the product budget.  Mutants \
       provably equivalent on the complete product are pruned as \
       stillborn instead and never reported."
      None;
    e "mutation-kill-floor" Finding.Error "mutation kill rate below the gate"
      "The fraction of non-stillborn mutants killed fell below the \
       configured floor.  Each survivor is reported separately; this \
       finding is the aggregate gate CI fails on."
      None;
    e "coverage-gap" Finding.Warning
      "the trace set misses reachable monitor states"
      "Reachable abstract states (the analyzer's own reachable set, not \
       an estimate) exist that no trace in the set ever drives the \
       monitor through.  Any fault whose observable behaviour lives \
       only in the unvisited region — exactly what mutation analysis \
       seeds — is invisible to this trace set.  The witness is a \
       BFS-minimal trace reaching the first uncovered state; extending \
       the suite with it (and its neighbourhood) closes the gap."
      None;
    e "backend-divergence" Finding.Error
      "flat and per-monitor engines disagree on a replay"
      "Replaying the same trace through the compiled per-monitor \
       engine and the flat suite engine produced different verdicts.  \
       The two engines implement one semantics; a divergence is an \
       engine bug (or memory corruption), never a property of the \
       trace.  Mutation runs double as this cross-validation: every \
       pattern-level mutant is replayed on both engines in lockstep."
      None;
    (* ---- syntactic linter -------------------------------------------- *)
    e "singleton-disjunction" Finding.Warning
      "a one-range fragment marked disjunctive"
      "With a single range, 'or' and 'and' coincide; the disjunction \
       suggests a larger choice was intended."
      None;
    e "zero-deadline" Finding.Warning "deadline 0"
      "The whole conclusion must happen at the premise's final \
       timestamp."
      None;
    e "tight-deadline" Finding.Warning
      "syntactic lower bound close to the deadline"
      "The linter's cheap syntactic version of deadline-infeasible; \
       when the analyzer runs, its automaton-exact verdict replaces \
       this heuristic."
      None;
    e "wide-range" Finding.Warning "a range expands to many PSL names"
      "Any PSL-based flow materializes one name per repetition; the \
       direct monitors are unaffected (the paper's point)."
      None;
    e "huge-counter" Finding.Info "a counter needs many bits" "" None;
    e "state-space" Finding.Info "explicit product state estimate"
      "What a materialized DFA would cost compared to the modular \
       monitors; estimates beyond the internal cap are reported as a \
       lower bound."
      None;
    e "unbounded-trigger" Finding.Info "non-repeated antecedent"
      "After the first trigger the property never fails again; often \
       '<<!' was meant.  The analyzer's vacuous-unviolatable is the \
       semantic confirmation."
      None;
  ]

let find code = List.find_opt (fun x -> String.equal x.code code) all
let rules = List.map (fun x -> (x.code, x.title)) all

let pp ppf x =
  Format.fprintf ppf "@[<v>%s (%a)@,  %s@,@,@[<hov>%a@]@]" x.code
    Finding.pp_severity x.severity x.title Format.pp_print_text x.rationale;
  match x.example with
  | None -> ()
  | Some src -> (
      match Parser.pattern src with
      | Error _ -> ()
      | Ok p ->
          Format.fprintf ppf "@\n@\nexample: %s" src;
          let fs =
            List.filter
              (fun (f : Finding.t) -> String.equal f.code x.code)
              (Checks.findings p @ Robust.race_findings [ ("example", p) ])
          in
          List.iter (fun f -> Format.fprintf ppf "@\n  %a" Finding.pp f) fs)
