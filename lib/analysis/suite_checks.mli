(** Cross-pattern decision procedures: subsumption, conflict and
    equivalence over a suite, by reachability in the synchronous
    product of two abstract machines.

    The product steps both machines on every name of the union
    alphabet (a machine ignores names outside its own alphabet, like
    the event hub does), so product states are exactly the pairs of
    configurations some shared trace can produce.

    - {e subsumption}: checker [B] is redundant beside [A] when every
      trace that violates [B] also violates [A] — decided as "no
      reachable product state has [B] violated and [A] not violated"
      ([subsumed-checker]).
    - {e equivalence}: subsumption in both directions
      ([equivalent-checkers]).
    - {e conflict}: both properties are individually matchable, but no
      trace can complete a round of each without violating one of them
      ([conflicting-pair]) — the suite as a whole can never be
      exercised positively.

    Scope: pairs where both patterns are untimed.  Timed violations
    depend on deadlines, which the event-level product does not model;
    rather than report unsound claims, timed pairs are skipped
    (documented in DESIGN.md). *)

open Loseq_core

val subsumes : ?budget:int -> Pattern.t -> Pattern.t -> bool option
(** [subsumes a b]: do [b]'s violations imply [a]'s (making [b]
    redundant beside [a])?  [None] when undecided — a timed pattern is
    involved or the budget ran out. *)

val compatible_witness :
  ?budget:int -> Pattern.t -> Pattern.t -> (Trace.t option * bool) option
(** [compatible_witness a b] = [Some (w, both_matchable)]:
    [w] is a shortest trace completing a round of both patterns with
    neither violated, or [None] if no such trace exists;
    [both_matchable] tells whether each pattern is matchable on its own
    in the product (when true and [w = None], the pair conflicts).
    Top-level [None]: undecided, as in {!subsumes}. *)

val findings : ?budget:int -> (string * Pattern.t) list -> Finding.t list
(** All cross-pattern findings for a labelled suite; subjects name the
    entries involved. *)
