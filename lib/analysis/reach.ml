type 'a system = {
  init : 'a;
  n_ids : int;
  step : 'a -> int -> 'a list;
  final : 'a -> bool;
}

type 'a exploration = {
  system : 'a system;
  states : 'a array;
  pred : (int * int) array;
  succ : (int * int) list array;
  complete : bool;
}

let explore ?(budget = 200_000) sys =
  let index = Hashtbl.create 1024 in
  (* The default polymorphic hash samples only ~10 meaningful nodes, so
     exact-counter states differing deep inside a [recs] array collide
     en masse and lookups degenerate to bucket scans.  Keying by a
     deep hash (paired with the state, so equality stays structural)
     keeps the table O(1) on counter-heavy products. *)
  let key st = (Hashtbl.hash_param 256 256 st, st) in
  let states = ref (Array.make 1024 sys.init) in
  let pred = ref (Array.make 1024 (-1, -1)) in
  let succ = ref (Array.make 1024 []) in
  let n = ref 0 in
  let complete = ref true in
  let ensure i =
    if i >= Array.length !states then begin
      let grow a fill =
        let b = Array.make (2 * Array.length a) fill in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      states := grow !states sys.init;
      pred := grow !pred (-1, -1);
      succ := grow !succ []
    end
  in
  let add st pr =
    match Hashtbl.find_opt index (key st) with
    | Some i -> Some i
    | None ->
        if !n >= budget then begin
          complete := false;
          None
        end
        else begin
          let i = !n in
          ensure i;
          incr n;
          Hashtbl.replace index (key st) i;
          !states.(i) <- st;
          !pred.(i) <- pr;
          Some i
        end
  in
  ignore (add sys.init (-1, -1));
  let q = Queue.create () in
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    let st = !states.(i) in
    if not (sys.final st) then
      for id = 0 to sys.n_ids - 1 do
        List.iter
          (fun st' ->
            let existed = Hashtbl.mem index (key st') in
            match add st' (i, id) with
            | None -> ()
            | Some j ->
                !succ.(i) <- (id, j) :: !succ.(i);
                if not existed then Queue.add j q)
          (sys.step st id)
      done
  done;
  {
    system = sys;
    states = Array.sub !states 0 !n;
    pred = Array.sub !pred 0 !n;
    succ = Array.sub !succ 0 !n;
    complete = !complete;
  }

let find ex p =
  let n = Array.length ex.states in
  let rec loop i =
    if i >= n then None else if p ex.states.(i) then Some i else loop (i + 1)
  in
  loop 0

let path ex target =
  let rec up i acc =
    match ex.pred.(i) with
    | -1, _ -> acc
    | parent, id -> up parent ((id, ex.states.(i)) :: acc)
  in
  up target []

let co_reachable ex p =
  let n = Array.length ex.states in
  let mark = Array.make n false in
  let rev = Array.make n [] in
  Array.iteri
    (fun i edges ->
      List.iter (fun (_, j) -> if j <> i then rev.(j) <- i :: rev.(j)) edges)
    ex.succ;
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if p ex.states.(i) then begin
      mark.(i) <- true;
      Queue.add i q
    end
  done;
  while not (Queue.is_empty q) do
    let j = Queue.pop q in
    List.iter
      (fun i ->
        if not mark.(i) then begin
          mark.(i) <- true;
          Queue.add i q
        end)
      rev.(j)
  done;
  mark
