open Loseq_core

let default_budget = 200_000

(* Patterns are pure data (names, ints, lists), so the polymorphic
   hash/equality of Hashtbl are sound on them; a structural miss on
   two different builds of an equal pattern only costs a duplicate
   exploration, never a wrong answer. *)
type key = { pattern : Pattern.t; exact : bool; budget : int }

let table : (key, Machine.t * Machine.state Reach.exploration) Hashtbl.t =
  Hashtbl.create 64

let misses = ref 0

let system m =
  {
    Reach.init = Machine.init m;
    n_ids = Machine.n_ids m;
    step = Machine.step m;
    final = Machine.is_final;
  }

let explore ?budget ~exact pattern =
  let budget = Option.value budget ~default:default_budget in
  let key = { pattern; exact; budget } in
  match Hashtbl.find_opt table key with
  | Some hit -> hit
  | None ->
      let m = Machine.make ~exact pattern in
      let ex = Reach.explore ~budget (system m) in
      incr misses;
      Hashtbl.replace table key (m, ex);
      (m, ex)

let explorations_performed () = !misses

let reset () =
  Hashtbl.reset table;
  misses := 0
