open Loseq_core

type bound = Finite of int | Infinite

let compare_bound a b =
  match (a, b) with
  | Infinite, Infinite -> 0
  | Infinite, Finite _ -> 1
  | Finite _, Infinite -> -1
  | Finite x, Finite y -> compare x y

let min_bound a b = if compare_bound a b <= 0 then a else b
let bound_to_string = function Infinite -> "inf" | Finite k -> string_of_int k
let pp_bound ppf b = Format.pp_print_string ppf (bound_to_string b)

type entry = {
  label : string;
  pattern : Pattern.t;
  bound : bound;
  order_bound : bound;
  time_bound : bound;
  decided : bool;
  races : Commute.race list;
  commuting : (Name.t * Name.t) list;
  time_fragile : bool;
}

type certificate = { entries : entry list; bound : bound; decided : bool }

let entry ?budget (label, p) =
  let c = Commute.analyze ?budget p in
  let order_bound =
    if c.Commute.races <> [] then Finite 0
    else if c.Commute.complete then Infinite
    else Finite 0
  in
  let order_decided = c.Commute.complete || c.Commute.races <> [] in
  let time_bound, time_fragile, time_decided =
    match p with
    | Pattern.Antecedent _ -> (Infinite, false, true)
    | Pattern.Timed g ->
        if not c.Commute.time_sensitive then
          (* no reachable armed configuration: the deadline can never
             decide a verdict, so timestamps are irrelevant.  Only
             claimable when the exploration that failed to find one was
             complete. *)
          (Infinite, false, c.Commute.complete)
        else
          let r = Checks.report ?budget p in
          let deadline = g.Pattern.deadline in
          (match r.Checks.min_conclusion_events with
          | Some m when deadline < m ->
              (* doomed under strictly increasing stamps; a K-bounded
                 reorder drifts the measured span by at most 2K, so it
                 stays doomed while deadline + 2K < m *)
              (Finite ((m - deadline - 1) / 2), true, r.Checks.complete)
          | Some _ -> (Finite 0, true, r.Checks.complete)
          | None -> (Finite 0, true, false))
  in
  let decided = order_decided && time_decided in
  let bound =
    if decided then min_bound order_bound time_bound
    else min_bound (Finite 0) (min_bound order_bound time_bound)
  in
  {
    label;
    pattern = p;
    bound;
    order_bound;
    time_bound;
    decided;
    races = c.Commute.races;
    commuting = c.Commute.commuting;
    time_fragile;
  }

let certificate ?budget items =
  let entries = List.map (entry ?budget) items in
  let bound =
    List.fold_left (fun acc (e : entry) -> min_bound acc e.bound) Infinite
      entries
  in
  let decided = List.for_all (fun (e : entry) -> e.decided) entries in
  { entries; bound; decided }

let race_witness (r : Commute.race) =
  let verdict passes = if passes then "PASS" else "FAIL" in
  Format.asprintf "%s: %s  /  %s: %s"
    (verdict r.Commute.ab_passes)
    (Witness.to_string r.Commute.trace_ab)
    (verdict (not r.Commute.ab_passes))
    (Witness.to_string r.Commute.trace_ba)

let findings ?lateness cert =
  let of_entry (e : entry) =
    let subject = e.label in
    let races =
      List.map
        (fun (r : Commute.race) ->
          Finding.v ~subject ~witness:(race_witness r) Finding.Warning
            "race-pair"
            "names '%a' and '%a' race: one adjacent swap flips the verdict%s"
            Name.pp r.Commute.a Name.pp r.Commute.b
            (if r.Commute.time_divergence then " at the deadline" else ""))
        e.races
    in
    let fragile =
      if e.time_fragile then
        [
          Finding.v ~subject Finding.Warning "jitter-fragile"
            "the deadline verdict depends on timestamps: certified \
             lateness bound %a"
            pp_bound e.time_bound;
        ]
      else []
    in
    let undecided =
      if e.decided then []
      else
        [
          Finding.v ~subject Finding.Info "analysis-budget"
            "commutation analysis incomplete within the state budget; \
             lateness bound conservatively certified as %a"
            pp_bound e.bound;
        ]
    in
    let unsafe =
      match lateness with
      | Some k when compare_bound (Finite k) e.bound > 0 ->
          [
            Finding.v ~subject Finding.Error "reorder-unsafe"
              "hosted behind a reorder window of %d but certified only \
               for lateness <= %a: verdict flips can pass unnoticed"
              k pp_bound e.bound;
          ]
      | _ -> []
    in
    races @ fragile @ undecided @ unsafe
  in
  Finding.order (List.concat_map of_entry cert.entries)

let race_findings ?budget items = findings (certificate ?budget items)
