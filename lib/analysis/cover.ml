open Loseq_core

type report = {
  label : string;
  pattern : Pattern.t;
  complete : bool;
  reachable_states : int;
  visited_states : int;
  reachable_edges : int;
  visited_edges : int;
  traces : int;
  uncovered_witness : Trace.t option;
}

let system m =
  {
    Reach.init = Machine.init m;
    n_ids = Machine.n_ids m;
    step = Machine.step m;
    final = Machine.is_final;
  }

let report ?budget ~label pattern traces =
  let m = Machine.make pattern in
  let ex = Reach.explore ?budget (system m) in
  let n = Array.length ex.Reach.states in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i st -> Hashtbl.replace index st i) ex.Reach.states;
  let edges = Hashtbl.create (4 * n) in
  Array.iteri
    (fun i succs ->
      List.iter (fun (id, j) -> Hashtbl.replace edges (i, id, j) ()) succs)
    ex.Reach.succ;
  let visited = Array.make (max 1 n) false in
  visited.(0) <- true;
  let visited_edges = Hashtbl.create 64 in
  let alpha = Pattern.alpha pattern in
  let replay trace =
    let c = Compiled.compile pattern in
    let cur = ref 0 in
    List.iter
      (fun (e : Trace.event) ->
        if Name.Set.mem e.name alpha then begin
          let id =
            match Compiled.id_of_name c e.name with
            | Some i -> i
            | None -> -1
          in
          ignore (Compiled.step c e);
          match Hashtbl.find_opt index (Machine.project m c) with
          | Some j ->
              visited.(j) <- true;
              if !cur >= 0 && Hashtbl.mem edges (!cur, id, j) then
                Hashtbl.replace visited_edges (!cur, id, j) ();
              cur := j
          | None ->
              (* outside the explored prefix (budget) or a time-level
                 violation the event-level graph has no edge for *)
              cur := -1
        end)
      trace
  in
  List.iter replay traces;
  let visited_states = Array.fold_left (fun a v -> if v then a + 1 else a) 0 visited in
  let uncovered = ref None in
  (try
     for i = 0 to n - 1 do
       if not visited.(i) then begin
         uncovered := Some i;
         raise Exit
       end
     done
   with Exit -> ());
  let uncovered_witness =
    Option.map (fun i -> fst (Witness.concretize m (Reach.path ex i))) !uncovered
  in
  {
    label;
    pattern;
    complete = ex.Reach.complete;
    reachable_states = n;
    visited_states = min visited_states n;
    reachable_edges = Hashtbl.length edges;
    visited_edges = Hashtbl.length visited_edges;
    traces = List.length traces;
    uncovered_witness;
  }

let suite_report ?budget entries traces =
  List.map (fun (label, p) -> report ?budget ~label p traces) entries

let pct part whole = if whole = 0 then 100. else 100. *. float part /. float whole

let findings reports =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  List.iter
    (fun r ->
      if not r.complete then
        add
          (Finding.v ~subject:r.label Finding.Info "analysis-budget"
             "state budget exhausted while exploring the reachable set: \
              coverage for '%s' is scored against the explored prefix only"
             r.label);
      if r.visited_states < r.reachable_states then
        let witness = Option.map Witness.to_string r.uncovered_witness in
        add
          (Finding.v ~subject:r.label ?witness Finding.Warning "coverage-gap"
             "the trace set visits %d of %d reachable abstract states \
              (%.0f%%) and %d of %d transitions (%.0f%%) of '%s'; the \
              witness reaches the first uncovered state"
             r.visited_states r.reachable_states
             (pct r.visited_states r.reachable_states)
             r.visited_edges r.reachable_edges
             (pct r.visited_edges r.reachable_edges)
             r.label))
    reports;
  Finding.order (List.rev !fs)

let pp ppf r =
  Format.fprintf ppf
    "%-24s states %4d/%-4d (%3.0f%%)  transitions %4d/%-4d (%3.0f%%)%s"
    r.label r.visited_states r.reachable_states
    (pct r.visited_states r.reachable_states)
    r.visited_edges r.reachable_edges
    (pct r.visited_edges r.reachable_edges)
    (if r.complete then "" else "  [truncated]")
