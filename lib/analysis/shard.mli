(** Certified shard-plan analysis: who may run where, and why.

    The multicore ambition — hosting one suite across several domains
    — is safe exactly when the checkers of different shards cannot
    observe each other's scheduling.  That is a static property of the
    suite: two checkers interfere when their alphabets intersect and
    some cross-checker name pair fails to commute on the synchronous
    product ({!Commute.analyze_product}), and a single checker's own
    racy pairs ({!Commute.analyze}) pin its whole alphabet slice to
    in-order delivery inside one shard.

    This pass builds the {e checker-interference graph} — edges from
    shared alphabet names, from non-commuting cross-checker pairs, and
    from deadline-wheel coupling between timed checkers — contracts
    every hard (racy or undecided) edge, and partitions the resulting
    clusters into [N] shards by a greedy balanced assignment over a
    static cost model: the checker's flat-slab footprint
    ({!Loseq_core.Flat.checker_slots}), its abstract reachable-state
    count ({!Reach}, through the shared {!Memo} table) and, when a
    profile trace is supplied, the number of events that trace would
    actually deliver to the checker.

    The result is a {e certified plan}: a machine-readable artifact
    stating for each shard its checkers, alphabet slice and static
    cost, plus an independence certificate — every cross-shard checker
    pair either shares no name or had {e all} its cross-relevant pairs
    proven commuting.  [Verif.Sharded] replays a trace under the plan
    and must agree with the unsharded suite verdicts; the qcheck gate
    in [test_shard] holds the two together. *)

open Loseq_core

(** {1 Cost model} *)

type cost = {
  slab_slots : int;  (** flat-slab footprint, {!Flat.checker_slots} *)
  reach_states : int;
      (** abstract (interval) reachable states, budget-capped *)
  profile_steps : int;
      (** measured steps from a [loseq-profile/1] artifact when one was
          supplied, else events of the profile trace in this checker's
          alphabet; [0] without either *)
  total : int;
      (** the scalar the partitioner balances:
          [slab_slots + bits reach_states + profile_steps].  A
          monitor's per-event cost is its fragment width (the slab),
          never a state-space walk, so the reachable count enters as
          its bit-width — how much run information the checker tracks
          — while the profile term, when present, carries the actual
          dynamic load. *)
}

(** {1 Interference graph} *)

type edge = {
  i : int;
  j : int;  (** entry indices, [i < j] *)
  shared : Name.t list;  (** alphabet intersection, sorted *)
  cross_races : Commute.product_race list;
      (** non-commuting cross-relevant pairs (empty when the product
          commutes or [shared] is empty) *)
  product_complete : bool;
      (** the product analysis decided every cross-relevant pair;
          vacuously [true] when [shared] is empty *)
  deadline_coupled : bool;
      (** both checkers are timed: they would share a hub's deadline
          wheel *)
}

val hard_races : edge -> Commute.product_race list
(** The races on pairs {e both} checkers observe (both names in
    [shared]).  Only these force co-location: a duplicated racy pair
    delivered to two shards could be consumed in different orders
    under independent per-shard reordering.  A race on a mixed pair
    (one name private to its owner) is intra-checker — the owner's
    shard sees both names in trace order, whatever the placement. *)

val hard : edge -> bool
(** A hard edge forces co-location: a shared-pair cross race was
    found ({!hard_races}), or the product analysis ran out of budget
    (undecided is treated as coupled — conservative). *)

(** {1 The plan} *)

type plan = {
  entries : (string * Pattern.t) array;
  costs : cost array;  (** per entry *)
  edges : edge list;  (** interfering pairs only *)
  internal_races : (int * Commute.race) list;
      (** per-entry racy pairs: order-coupling the shard's event
          delivery must preserve *)
  assignment : int array;  (** entry -> shard *)
  shards : int list array;  (** shard -> entry indices, ascending; the
                                array has exactly [N] rows, possibly
                                empty *)
  shard_costs : int array;
  balance : float;
      (** max/mean of {!shard_costs} over {e non-empty} shards;
          [1.0] is perfect *)
  certified : bool;
      (** every cross-shard pair with a shared name has
          [product_complete] and no {!hard_races} — independence under
          in-order slice delivery, and under bounded per-shard
          reordering of non-shared pairs *)
}

val analyze :
  ?budget:int ->
  ?profile:Trace.t ->
  ?measured:(string * int) list ->
  shards:int ->
  (string * Pattern.t) list ->
  plan
(** Build the interference graph and partition the suite into
    [shards >= 1] shards ([Invalid_argument] otherwise).  [budget]
    bounds every exploration (default 200000 states), [profile] adds
    alphabet-frequency weights to the cost model, and [measured] —
    per-label step counts from a live [loseq-profile/1] artifact (see
    {!profile_of_json}) — overrides the profile term for the labels it
    names.  Raises {!Loseq_core.Wellformed.Ill_formed} on an ill-formed
    pattern. *)

val profile_of_json : Json.t -> ((string * int) list, string) result
(** Parse a [loseq-profile/1] artifact (emitted by [loseq serve
    --profile-out] or [loseq trace]) into the [measured] list
    {!analyze} consumes: each checker's label and its measured
    alphabet-event count.  Rejects other schema tags. *)

val shard_alphabet : plan -> int -> Name.Set.t
(** The alphabet slice of one shard — the names its event filter
    subscribes to. *)

(** {1 Reporting} *)

val findings : ?balance_threshold:float -> plan -> Finding.t list
(** [shard-coupled] (warning) per coupling constraint the partitioner
    honored — a cross-checker race (with twin-trace witness), an
    undecided product, or an internal racy pair pinned to its shard —
    and [shard-imbalance] (warning) when [balance] exceeds
    [balance_threshold] (default [1.5]). *)

val to_json : plan -> Json.t
(** The plan artifact: shards (checkers, alphabet slice, cost),
    per-entry costs, interference edges, coupling constraints, balance
    and the independence certificate. *)

val pp : Format.formatter -> plan -> unit
(** Human rendering of {!to_json}'s content. *)
