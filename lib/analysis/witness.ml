open Loseq_core

let concretize m steps =
  let pattern = Machine.pattern m in
  let c = Compiled.compile pattern in
  let timed = Machine.timed m in
  let bound = 2 + Pattern.max_hi pattern in
  let time = ref (-1) in
  let events = ref [] in
  List.iter
    (fun (id, target) ->
      let nm = Machine.name m id in
      let cid =
        match Compiled.id_of_name c nm with
        | Some i -> i
        | None -> assert false (* same pattern, same alphabet *)
      in
      let rec pump k =
        if k > bound then
          failwith
            (Format.asprintf
               "Witness.concretize: replay desynchronized on %a" Name.pp nm);
        let tm = if timed then 0 else (incr time; !time) in
        events := { Trace.name = nm; time = tm } :: !events;
        ignore (Compiled.step_id c ~id:cid ~time:tm);
        if Machine.project m c <> target then pump (k + 1)
      in
      pump 0)
    steps;
  (List.rev !events, c)

let to_string tr =
  (* [Trace.parse] defaults bare names to times 0, 1, 2, ... — print
     names only exactly when that convention reconstructs the trace. *)
  let default_times =
    List.for_all2
      (fun (e : Trace.event) i -> e.time = i)
      tr
      (List.mapi (fun i _ -> i) tr)
  in
  if default_times then
    String.concat " "
      (List.map (fun (e : Trace.event) -> Name.to_string e.name) tr)
  else
    String.concat " "
      (List.map
         (fun (e : Trace.event) ->
           Printf.sprintf "%s@%d" (Name.to_string e.name) e.time)
         tr)
