(** Per-entry memoization of abstract-machine explorations.

    Every analysis pass re-derives the same object: the reachable
    state space of one pattern's abstract machine ({!Machine.make},
    exact or interval, explored by {!Reach.explore}).  A combined run
    such as [analyze --races --certify-lateness --shard-plan] used to
    explore the same entry once per pass; this table makes the
    exploration a per-(pattern, exactness, budget) singleton shared by
    {!Checks}, {!Commute}, {!Robust} (through the former two) and
    {!Shard}.

    The cache key includes the effective budget, so a pass asking for
    a larger budget never receives a truncated exploration computed
    under a smaller one.  Product explorations (pairs of machines) are
    keyed by state tuples of {e this} process's machines and are not
    cached here.

    The table is process-global and unbounded — the analyzer is a
    batch tool whose working set is the suites named on one command
    line. *)

open Loseq_core

val explore :
  ?budget:int ->
  exact:bool ->
  Pattern.t ->
  Machine.t * Machine.state Reach.exploration
(** The machine and its (possibly budget-truncated) exploration for
    this pattern, computed at most once per (pattern, exact, budget).
    Raises {!Loseq_core.Wellformed.Ill_formed} like {!Machine.make}. *)

val explorations_performed : unit -> int
(** Number of actual {!Reach.explore} runs this table has paid for —
    cache misses since start-up (or the last {!reset}).  Tests assert
    that repeated passes stop moving this counter. *)

val reset : unit -> unit
(** Drop every cached exploration and zero the miss counter. *)
