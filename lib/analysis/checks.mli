(** Per-pattern decision procedures over the abstract monitor automaton.

    Everything here is decided by exhaustive exploration of the
    counter-interval abstraction ({!Machine}, exact for reachability),
    so — within the state budget — the answers are definitive, not
    heuristic:

    - {e violation satisfiability}: can any trace violate the property?
      A property that cannot fail monitors nothing ([violation-unsat]).
    - {e match satisfiability}: can any trace complete a full
      recognition round?  ([match-unsat])
    - {e vacuity}: is some configuration reachable from which no
      violation is reachable anymore?  From that point on the checker
      is dead weight ([vacuous-unviolatable] — the classic case is a
      non-repeated antecedent after its first trigger).
    - {e dead names}: an alphabet name that no reachable configuration
      can consume without violating ([dead-name]).
    - {e deadline feasibility}: the minimal number of events a timed
      conclusion needs, measured on the automaton as a shortest path;
      under strictly increasing timestamps a deadline below that bound
      is unsatisfiable ([deadline-infeasible]) and a deadline exactly at
      it leaves no slack ([deadline-tight]) — the exact version of the
      syntactic [tight-deadline] lint, cross-validated against
      {!Loseq_core.Lint.min_events}. *)

open Loseq_core

type report = {
  pattern : Pattern.t;
  complete : bool;  (** state budget not exhausted *)
  violation_witness : Trace.t option;
      (** shortest violating trace ([None] + [complete] means the
          property is unviolatable); for a timed pattern whose only
          violations are deadline misses, the events reaching an armed
          configuration — see [time_violation] *)
  time_violation : bool;
      (** the witness violates by letting time pass the deadline, not
          by an event *)
  match_witness : Trace.t option;
      (** shortest trace completing a recognition round *)
  safe_witness : Trace.t option;
      (** shortest trace to a configuration from which no violation is
          reachable ([None] + [complete] means none exists) *)
  dead_names : Name.t list;
  min_conclusion_events : int option;
      (** timed only: automaton-measured minimum events to recognize the
          conclusion *)
}

val report : ?budget:int -> Pattern.t -> report
(** Raises {!Wellformed.Ill_formed}. *)

val findings : ?budget:int -> Pattern.t -> Finding.t list
(** The report as findings (codes above, plus [analysis-budget] when
    exploration was truncated). *)
