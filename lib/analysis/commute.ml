open Loseq_core

type race = {
  a : Name.t;
  b : Name.t;
  trace_ab : Trace.t;
  trace_ba : Trace.t;
  ab_passes : bool;
  time_divergence : bool;
}

type result = {
  pattern : Pattern.t;
  complete : bool;
  races : race list;
  commuting : (Name.t * Name.t) list;
  time_sensitive : bool;
}

let final_time_for = function
  | Pattern.Timed t -> Some (t.Pattern.deadline + 1)
  | Pattern.Antecedent _ -> None

(* The only observable a hosting layer acts on once the trace ends:
   does this configuration decide FAIL under the adversarial
   finalization of [final_time_for]?  Violated states fail outright;
   armed-not-yet-recognized timed configurations fail because the
   witness timestamps are all zero and the finalization instant is past
   the deadline.  Everything else passes. *)
let obs m s = Machine.is_violated s || Machine.can_time_violate m s

(* Moore partition refinement over the (complete) explored state set:
   start from the two-valued observable, split classes whose successor
   class rows differ, stop at a fixpoint or after [rounds] splits.
   Splits are always sound (states in different classes really are
   distinguishable by some suffix of length <= rounds performed);
   equality of classes certifies indistinguishability only when the
   fixpoint was reached. *)
let refine ~rounds ~n_ids ~succ cls0 =
  let n = Array.length cls0 in
  let cls = Array.copy cls0 in
  let count p =
    let t = Hashtbl.create 16 in
    Array.iter (fun c -> if not (Hashtbl.mem t c) then Hashtbl.add t c ()) p;
    Hashtbl.length t
  in
  let prev = ref (count cls) in
  let stable = ref false in
  let round = ref 0 in
  while (not !stable) && !round < rounds do
    incr round;
    let signature = Hashtbl.create (2 * n) in
    let next = Array.make n 0 in
    let classes = ref 0 in
    for i = 0 to n - 1 do
      let key = cls.(i) :: List.init n_ids (fun id -> cls.(succ.(i).(id))) in
      (match Hashtbl.find_opt signature key with
      | Some c -> next.(i) <- c
      | None ->
          let c = !classes in
          incr classes;
          Hashtbl.add signature key c;
          next.(i) <- c)
    done;
    if !classes = !prev then stable := true
    else begin
      Array.blit next 0 cls 0 n;
      prev := !classes
    end
  done;
  (cls, !stable)

let analyze ?(budget = 200_000) ?(refine_rounds = 64) p =
  let m, ex = Memo.explore ~budget ~exact:true p in
  let n = Machine.n_ids m in
  let states = ex.Reach.states in
  let nstates = Array.length states in
  let time_sensitive = Reach.find ex (Machine.can_time_violate m) <> None in
  let step1 s id =
    match Machine.step m s id with
    | [ s' ] -> s'
    | _ -> invalid_arg "Commute.analyze: exact machine must be deterministic"
  in
  (* Successor index table and verdict-equivalence classes; only
     meaningful when exploration covered the whole space. *)
  let tables =
    if not ex.Reach.complete then None
    else begin
      let idx = Hashtbl.create (2 * nstates) in
      Array.iteri (fun i s -> Hashtbl.replace idx s i) states;
      let succ = Array.make_matrix nstates n 0 in
      for i = 0 to nstates - 1 do
        let s = states.(i) in
        for id = 0 to n - 1 do
          succ.(i).(id) <- Hashtbl.find idx (step1 s id)
        done
      done;
      let cls0 = Array.map (fun s -> if obs m s then 1 else 0) states in
      let cls, stable = refine ~rounds:refine_rounds ~n_ids:n ~succ cls0 in
      Some (succ, cls, stable)
    end
  in
  let stable = match tables with Some (_, _, s) -> s | None -> false in
  let timed = Machine.timed m in
  let ft = final_time_for p in
  (* Distinguishing suffix (event ids) for a pair of states known or
     suspected to differ: lock-step BFS until the observable splits. *)
  let suffix_between u v =
    if obs m u <> obs m v then Some []
    else
      let psys =
        {
          Reach.init = (u, v);
          n_ids = n;
          step = (fun (x, y) id -> [ (step1 x id, step1 y id) ]);
          final = (fun (x, y) -> obs m x <> obs m y);
        }
      in
      let pex = Reach.explore ~budget psys in
      match Reach.find pex (fun (x, y) -> obs m x <> obs m y) with
      | Some j -> Some (List.map fst (Reach.path pex j))
      | None -> None
  in
  let witness i ida idb suffix_ids =
    let prefix, _ = Witness.concretize m (Reach.path ex i) in
    let na = Machine.name m ida and nb = Machine.name m idb in
    let mk order =
      let names =
        Trace.names prefix @ order @ List.map (Machine.name m) suffix_ids
      in
      if timed then List.map (fun nm -> Trace.event ~time:0 nm) names
      else List.mapi (fun t nm -> Trace.event ~time:t nm) names
    in
    let trace_ab = mk [ na; nb ] and trace_ba = mk [ nb; na ] in
    let pass tr = Compiled.accepts ?final_time:ft p tr in
    let ab_passes = pass trace_ab and ba_passes = pass trace_ba in
    if ab_passes = ba_passes then
      failwith
        (Format.asprintf
           "Commute.analyze: twin traces agree on %a (abstraction bug)"
           Pattern.pp p);
    let time_divergence =
      match ft with
      | None -> false
      | Some _ -> Compiled.accepts p trace_ab = Compiled.accepts p trace_ba
    in
    { a = na; b = nb; trace_ab; trace_ba; ab_passes; time_divergence }
  in
  let races = ref [] and commuting = ref [] and all_decided = ref true in
  for ida = 0 to n - 1 do
    for idb = ida + 1 to n - 1 do
      let race = ref None and decided = ref true in
      let i = ref 0 in
      while !race = None && !i < nstates do
        let s = states.(!i) in
        let sab = step1 (step1 s ida) idb and sba = step1 (step1 s idb) ida in
        if sab <> sba then begin
          let differs =
            if obs m sab <> obs m sba then Some (Some [])
            else
              match tables with
              | Some (succ, cls, stable) ->
                  let jab = succ.(succ.(!i).(ida)).(idb)
                  and jba = succ.(succ.(!i).(idb)).(ida) in
                  if cls.(jab) <> cls.(jba) then Some (suffix_between sab sba)
                  else if stable then None (* certified equivalent here *)
                  else begin
                    decided := false;
                    None
                  end
              | None ->
                  (* truncated exploration: only immediate observable
                     divergence is checked; anything subtler stays
                     undecided *)
                  decided := false;
                  None
          in
          match differs with
          | Some (Some suffix) -> race := Some (witness !i ida idb suffix)
          | Some None -> decided := false (* suffix search hit the budget *)
          | None -> ()
        end;
        incr i
      done;
      (match !race with
      | Some r -> races := r :: !races
      | None ->
          if !decided && ex.Reach.complete && stable then
            commuting := (Machine.name m ida, Machine.name m idb) :: !commuting
          else all_decided := false)
    done
  done;
  {
    pattern = p;
    complete = ex.Reach.complete && stable && !all_decided;
    races = List.rev !races;
    commuting = List.rev !commuting;
    time_sensitive;
  }

(* ---- cross-checker commutation on the synchronous product ------------- *)

type product_race = {
  label_a : string;
  label_b : string;
  a : Name.t;
  b : Name.t;
  trace_ab : Trace.t;
  trace_ba : Trace.t;
  ab_verdicts : bool * bool;
  ba_verdicts : bool * bool;
}

type product_result = {
  labels : string * string;
  complete : bool;
  cross_races : product_race list;
  cross_commuting : (Name.t * Name.t) list;
  shared : Name.t list;
}

let analyze_product ?(budget = 200_000) ?(refine_rounds = 64) (la, pa) (lb, pb)
    =
  let ma, _ = Memo.explore ~budget ~exact:true pa in
  let mb, _ = Memo.explore ~budget ~exact:true pb in
  let alpha_a = Pattern.alpha pa and alpha_b = Pattern.alpha pb in
  let union =
    Array.of_list (Name.Set.elements (Name.Set.union alpha_a alpha_b))
  in
  let n = Array.length union in
  let id_in m =
    let tbl = Hashtbl.create 16 in
    for i = 0 to Machine.n_ids m - 1 do
      Hashtbl.replace tbl (Machine.name m i) i
    done;
    Array.map
      (fun nm -> match Hashtbl.find_opt tbl nm with Some i -> i | None -> -1)
      union
  in
  let ida = id_in ma and idb = id_in mb in
  let step1 m s id =
    match Machine.step m s id with
    | [ s' ] -> s'
    | _ ->
        invalid_arg "Commute.analyze_product: exact machine must be \
                     deterministic"
  in
  let pstep (sa, sb) uid =
    ( (if ida.(uid) >= 0 then step1 ma sa ida.(uid) else sa),
      if idb.(uid) >= 0 then step1 mb sb idb.(uid) else sb )
  in
  (* The joint observable a sequencer acts on: which of the two
     checkers decides FAIL under its own adversarial finalization. *)
  let pobs (sa, sb) =
    (if obs ma sa then 1 else 0) lor if obs mb sb then 2 else 0
  in
  let sys =
    {
      Reach.init = (Machine.init ma, Machine.init mb);
      n_ids = n;
      step = (fun s uid -> [ pstep s uid ]);
      final = (fun (sa, sb) -> Machine.is_final sa && Machine.is_final sb);
    }
  in
  let ex = Reach.explore ~budget sys in
  let states = ex.Reach.states in
  let nstates = Array.length states in
  let tables =
    if not ex.Reach.complete then None
    else begin
      let idx = Hashtbl.create (2 * nstates) in
      Array.iteri (fun i s -> Hashtbl.replace idx s i) states;
      let succ = Array.make_matrix nstates n 0 in
      for i = 0 to nstates - 1 do
        for uid = 0 to n - 1 do
          succ.(i).(uid) <- Hashtbl.find idx (pstep states.(i) uid)
        done
      done;
      let cls, stable =
        refine ~rounds:refine_rounds ~n_ids:n ~succ (Array.map pobs states)
      in
      Some (succ, cls, stable)
    end
  in
  let stable = match tables with Some (_, _, s) -> s | None -> false in
  (* A pair is cross-checker relevant unless it is wholly private to
     one checker (those races belong to that checker's own [analyze]). *)
  let private_to mine other u v =
    let in_m id = id >= 0 in
    in_m mine.(u) && in_m mine.(v) && (not (in_m other.(u)))
    && not (in_m other.(v))
  in
  let relevant u v =
    (not (private_to ida idb u v)) && not (private_to idb ida u v)
  in
  let suffix_between u v =
    if pobs u <> pobs v then Some []
    else
      let psys =
        {
          Reach.init = (u, v);
          n_ids = n;
          step = (fun (x, y) uid -> [ (pstep x uid, pstep y uid) ]);
          final = (fun (x, y) -> pobs x <> pobs y);
        }
      in
      let pex = Reach.explore ~budget psys in
      match Reach.find pex (fun (x, y) -> pobs x <> pobs y) with
      | Some j -> Some (List.map fst (Reach.path pex j))
      | None -> None
  in
  let timed_any = Machine.timed ma || Machine.timed mb in
  let fta = final_time_for pa and ftb = final_time_for pb in
  let witness i ua ub suffix_ids =
    (* Exact product machines are deterministic and counter-exact, so
       the BFS path concretizes 1:1 — no pumping (cf.
       [Suite_checks.product_witness]). *)
    let prefix = List.map (fun (uid, _) -> union.(uid)) (Reach.path ex i) in
    let mk order =
      let names = prefix @ order @ List.map (fun uid -> union.(uid)) suffix_ids in
      if timed_any then List.map (fun nm -> Trace.event ~time:0 nm) names
      else List.mapi (fun t nm -> Trace.event ~time:t nm) names
    in
    let na = union.(ua) and nb = union.(ub) in
    let trace_ab = mk [ na; nb ] and trace_ba = mk [ nb; na ] in
    let verdicts tr =
      ( Compiled.accepts ?final_time:fta pa tr,
        Compiled.accepts ?final_time:ftb pb tr )
    in
    let ab_verdicts = verdicts trace_ab and ba_verdicts = verdicts trace_ba in
    if ab_verdicts = ba_verdicts then
      failwith
        (Format.asprintf
           "Commute.analyze_product: twin traces agree on %s x %s \
            (abstraction bug)"
           la lb);
    { label_a = la; label_b = lb; a = na; b = nb; trace_ab; trace_ba;
      ab_verdicts; ba_verdicts }
  in
  let races = ref [] and commuting = ref [] and all_decided = ref true in
  for ua = 0 to n - 1 do
    for ub = ua + 1 to n - 1 do
      if relevant ua ub then begin
        let race = ref None and decided = ref true in
        let i = ref 0 in
        while !race = None && !i < nstates do
          let s = states.(!i) in
          let sab = pstep (pstep s ua) ub and sba = pstep (pstep s ub) ua in
          if sab <> sba then begin
            let differs =
              if pobs sab <> pobs sba then Some (Some [])
              else
                match tables with
                | Some (succ, cls, stable) ->
                    let jab = succ.(succ.(!i).(ua)).(ub)
                    and jba = succ.(succ.(!i).(ub)).(ua) in
                    if cls.(jab) <> cls.(jba) then Some (suffix_between sab sba)
                    else if stable then None
                    else begin
                      decided := false;
                      None
                    end
                | None ->
                    decided := false;
                    None
            in
            match differs with
            | Some (Some suffix) -> race := Some (witness !i ua ub suffix)
            | Some None -> decided := false
            | None -> ()
          end;
          incr i
        done;
        match !race with
        | Some r -> races := r :: !races
        | None ->
            if !decided && ex.Reach.complete && stable then
              commuting := (union.(ua), union.(ub)) :: !commuting
            else all_decided := false
      end
    done
  done;
  {
    labels = (la, lb);
    complete = ex.Reach.complete && stable && !all_decided;
    cross_races = List.rev !races;
    cross_commuting = List.rev !commuting;
    shared = Name.Set.elements (Name.Set.inter alpha_a alpha_b);
  }
