open Loseq_core

type tier = Static | Equivalence | Differential

let tier_name = function
  | Static -> "static"
  | Equivalence -> "equivalence"
  | Differential -> "differential"

type mutant = {
  id : string;
  entry : string;
  op : string;
  description : string;
  pattern : Pattern.t option;
  make : unit -> Compiled.t;
  inverted : bool;
}

type outcome =
  | Stillborn
  | Killed of { tier : tier; witness : string }
  | Survived of { undecided : bool }

type result = { mutant : mutant; outcome : outcome }

type summary = {
  results : result list;
  generated : int;
  stillborn : int;
  killed_static : int;
  killed_equivalence : int;
  killed_differential : int;
  survivors : result list;
  kill_rate : float;
  cross_checked : int;
  divergences : (string * string) list;
}

(* ---- pattern-level mutants --------------------------------------------- *)

let set_nth l i x = List.mapi (fun j y -> if j = i then x else y) l
let del_nth l i = List.filteri (fun j _ -> j <> i) l

let rebuild ?premise_len p body =
  try
    match p with
    | Pattern.Antecedent a ->
        Some (Pattern.antecedent ~repeated:a.repeated body ~trigger:a.trigger)
    | Pattern.Timed g -> (
        let k =
          match premise_len with
          | Some k -> k
          | None -> List.length g.premise
        in
        let rec split i acc rest =
          if i = 0 then Some (List.rev acc, rest)
          else
            match rest with [] -> None | x :: tl -> split (i - 1) (x :: acc) tl
        in
        match split k [] body with
        | Some ((_ :: _ as pre), (_ :: _ as concl)) ->
            Some (Pattern.timed pre concl ~deadline:g.deadline)
        | _ -> None)
  with Invalid_argument _ -> None

(* A candidate survives only if well-formed and actually different. *)
let guard p = function
  | Some p' when Wellformed.is_well_formed p' && not (Pattern.equal p p') ->
      Some p'
  | _ -> None

let pattern_mutants p =
  let body = Pattern.body_ordering p in
  let q = List.length body in
  let cands = ref [] in
  let add op desc cand =
    match guard p cand with
    | Some p' -> cands := (op, desc, p') :: !cands
    | None -> ()
  in
  let with_body ?premise_len op desc body' =
    add op desc (rebuild ?premise_len p body')
  in
  (* transition retargets: adjacent fragment swaps *)
  for k = 0 to q - 2 do
    let body' =
      List.mapi
        (fun i f ->
          if i = k then List.nth body (k + 1)
          else if i = k + 1 then List.nth body k
          else f)
        body
    in
    with_body
      (Printf.sprintf "frag-swap@%d" k)
      (Printf.sprintf "fragments %d and %d exchanged" k (k + 1))
      body'
  done;
  (* transition deletes: drop a whole fragment *)
  if q >= 2 then
    List.iteri
      (fun k _ ->
        let premise_len =
          match p with
          | Pattern.Timed g ->
              let pl = List.length g.premise in
              Some (if k < pl then pl - 1 else pl)
          | Pattern.Antecedent _ -> None
        in
        with_body ?premise_len
          (Printf.sprintf "frag-del@%d" k)
          (Printf.sprintf "fragment %d deleted" k)
          (del_nth body k))
      body;
  List.iteri
    (fun k (f : Pattern.fragment) ->
      (* connective flip *)
      (try
         let conn =
           match f.connective with
           | Pattern.All -> Pattern.Any
           | Pattern.Any -> Pattern.All
         in
         with_body
           (Printf.sprintf "conn-flip@%d" k)
           (Printf.sprintf "fragment %d connective flipped" k)
           (set_nth body k (Pattern.fragment ~connective:conn f.ranges))
       with Invalid_argument _ -> ());
      List.iteri
        (fun j (r : Pattern.range) ->
          let nm = Name.to_string r.name in
          (* counter off-by-one and saturation flips *)
          let with_range tag desc lo hi =
            match
              try Some (Pattern.range ~lo ~hi r.name)
              with Invalid_argument _ -> None
            with
            | None -> ()
            | Some r' -> (
                try
                  with_body
                    (Printf.sprintf "%s@%s" tag nm)
                    desc
                    (set_nth body k
                       (Pattern.fragment ~connective:f.connective
                          (set_nth f.ranges j r')))
                with Invalid_argument _ -> ())
          in
          with_range "lo-1"
            (Printf.sprintf "%s lower bound off by one (-1)" nm)
            (r.lo - 1) r.hi;
          with_range "lo+1"
            (Printf.sprintf "%s lower bound off by one (+1)" nm)
            (r.lo + 1) r.hi;
          with_range "hi-1"
            (Printf.sprintf "%s upper bound off by one (-1)" nm)
            r.lo (r.hi - 1);
          with_range "hi+1"
            (Printf.sprintf "%s upper bound off by one (+1)" nm)
            r.lo (r.hi + 1);
          if r.hi > r.lo then
            with_range "sat-hi"
              (Printf.sprintf "%s saturated to [%d,%d]" nm r.lo r.lo)
              r.lo r.lo;
          if r.lo > 1 then
            with_range "sat-lo"
              (Printf.sprintf "%s lower bound released to 1" nm)
              1 r.hi;
          (* range delete *)
          if List.length f.ranges >= 2 then
            (try
               with_body
                 (Printf.sprintf "range-del@%s" nm)
                 (Printf.sprintf "range %s deleted" nm)
                 (set_nth body k
                    (Pattern.fragment ~connective:f.connective
                       (del_nth f.ranges j)))
             with Invalid_argument _ -> ());
          (* range retarget into the next fragment *)
          if List.length f.ranges >= 2 && k + 1 < q then
            try
              let tgt = List.nth body (k + 1) in
              let body' =
                set_nth body k
                  (Pattern.fragment ~connective:f.connective
                     (del_nth f.ranges j))
              in
              let body' =
                set_nth body' (k + 1)
                  (Pattern.fragment ~connective:tgt.Pattern.connective
                     (tgt.Pattern.ranges @ [ r ]))
              in
              with_body
                (Printf.sprintf "range-move@%s" nm)
                (Printf.sprintf "range %s moved into fragment %d" nm (k + 1))
                body'
            with Invalid_argument _ -> ())
        f.ranges)
    body;
  (* deadline +/-1, timed/untimed flip, repetition flip *)
  (match p with
  | Pattern.Timed g ->
      let retime op desc d =
        add op desc
          (try Some (Pattern.timed g.premise g.conclusion ~deadline:d)
           with Invalid_argument _ -> None)
      in
      retime "deadline+1" "deadline off by one (+1)" (g.deadline + 1);
      if g.deadline >= 1 then
        retime "deadline-1" "deadline off by one (-1)" (g.deadline - 1);
      retime "untimed" "deadline effectively removed (10^9)" 1_000_000_000
  | Pattern.Antecedent a ->
      add "repeat-flip"
        (if a.repeated then "repetition dropped (<<! became <<)"
         else "repetition added (<< became <<!)")
        (try
           Some (Pattern.antecedent ~repeated:(not a.repeated) a.body
                   ~trigger:a.trigger)
         with Invalid_argument _ -> None));
  List.rev !cands

(* ---- table-level mutants ----------------------------------------------- *)

(* Deterministic sample without replacement. *)
let sample rng n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  for i = len - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list (Array.sub arr 0 (min n len))

let table_mutants ~seed label p =
  let st = Compiled.static (Compiled.compile p) in
  let n_names = Array.length st.names in
  let n_recs = Array.length st.rec_range in
  let q = st.fragments in
  let rng = Random.State.make [| seed; Hashtbl.hash label; 7 |] in
  let cands = ref [] in
  let add op desc patch = cands := (op, desc, patch) :: !cands in
  (* recognizer-category swaps (Self <-> Current: the recognizer
     miscounts its own events as a sibling's, or vice versa) *)
  let cat_cands = ref [] in
  for r = 0 to n_recs - 1 do
    for id = 0 to n_names - 1 do
      match st.category.(r).(id) with
      | Context.Self -> cat_cands := (r, id, Context.Current) :: !cat_cands
      | Context.Current -> cat_cands := (r, id, Context.Self) :: !cat_cands
      | _ -> ()
    done
  done;
  List.iter
    (fun (r, id, c) ->
      let nm = Name.to_string st.names.(id) in
      add
        (Printf.sprintf "cat-swap@%d.%s" r nm)
        (Printf.sprintf "recognizer %d reclassifies %s as %s" r nm
           (match c with
           | Context.Self -> "its own name"
           | _ -> "a sibling's name"))
        { Compiled.no_patch with set_category = [ (r, id, c) ] })
    (sample rng 4 (List.rev !cat_cands));
  (* terminator flips *)
  for id = 0 to n_names - 1 do
    add
      (Printf.sprintf "term-flip@%s" (Name.to_string st.names.(id)))
      (Printf.sprintf "terminator bit of %s flipped to %b"
         (Name.to_string st.names.(id))
         (not st.terminator.(id)))
      { Compiled.no_patch with set_terminator = [ (id, not st.terminator.(id)) ] }
  done;
  (* owner retargets (owner -1 deletes the name's transitions) *)
  let owned = List.filter (fun id -> st.owner.(id) >= 0) (List.init n_names Fun.id) in
  List.iter
    (fun id ->
      let f = st.owner.(id) in
      let f' = if q >= 2 then (f + 1) mod q else -1 in
      add
        (Printf.sprintf "owner-move@%s" (Name.to_string st.names.(id)))
        (Printf.sprintf "%s retargeted from fragment %d to %s"
           (Name.to_string st.names.(id))
           f
           (if f' < 0 then "terminator-only" else string_of_int f'))
        { Compiled.no_patch with set_owner = [ (id, f') ] })
    (sample rng 3 owned);
  List.rev !cands

let mutants_of ?(seed = 0x5eed) (label, p) =
  let pm =
    List.map
      (fun (op, desc, p') ->
        {
          id = label ^ "/" ^ op;
          entry = label;
          op;
          description = desc;
          pattern = Some p';
          make = (fun () -> Compiled.compile p');
          inverted = false;
        })
      (pattern_mutants p)
  in
  let tm =
    List.map
      (fun (op, desc, patch) ->
        {
          id = label ^ "/" ^ op;
          entry = label;
          op;
          description = desc;
          pattern = None;
          make = (fun () -> Compiled.patched (Compiled.compile p) patch);
          inverted = false;
        })
      (table_mutants ~seed label p)
  in
  let inv =
    {
      id = label ^ "/verdict-invert";
      entry = label;
      op = "verdict-invert";
      description = "verdict inverted: the mutant passes iff the original fails";
      pattern = None;
      make = (fun () -> Compiled.compile p);
      inverted = true;
    }
  in
  pm @ tm @ [ inv ]

(* ---- differential workload --------------------------------------------- *)

type item = { trace : Trace.t; final_time : int option; tag : string }

(* One recognition round of the body as a word: every contributing
   range emits one block ([Any]: only the first range contributes).
   [skip_frag] / [skip_name] drop a fragment or one range's block;
   [count_override] sets one range's block length (default [lo]). *)
let round_word ?(skip_frag = -1) ?skip_name ?count_override body =
  List.concat
    (List.mapi
       (fun k (f : Pattern.fragment) ->
         if k = skip_frag then []
         else
           let contributing =
             match f.connective with
             | Pattern.All -> f.ranges
             | Pattern.Any -> [ List.hd f.ranges ]
           in
           List.concat_map
             (fun (r : Pattern.range) ->
               if skip_name = Some r.name then []
               else
                 let c =
                   match count_override with
                   | Some (nm, c) when Name.equal nm r.name -> c
                   | _ -> r.lo
                 in
                 List.init c (fun _ -> r.name))
             contributing)
       body)

(* Untimed traces get increasing timestamps; timed traces all-zero
   stamps (the Witness convention: a deadline can never interfere with
   an event-level distinction; deadlines are probed with explicit
   [final_time]s instead). *)
let stamp ~timed rounds =
  if timed then
    List.concat_map
      (List.map (fun n -> { Trace.name = n; time = 0 }))
      rounds
  else List.mapi (fun i n -> { Trace.name = n; time = i }) (List.concat rounds)

let workload ?(traces = []) ~seed ~weak (label, p) =
  let body = Pattern.body_ordering p in
  let timed = match p with Pattern.Timed _ -> true | _ -> false in
  let deadline = match p with Pattern.Timed g -> g.deadline | _ -> 0 in
  let trigger =
    match p with Pattern.Antecedent a -> Some a.trigger | _ -> None
  in
  let repeated =
    match p with Pattern.Antecedent a -> a.repeated | Pattern.Timed _ -> true
  in
  let close w = match trigger with Some t -> w @ [ t ] | None -> w in
  let item ?final tag rounds =
    { trace = stamp ~timed rounds; final_time = final; tag }
  in
  let canon = close (round_word body) in
  let rng k = Random.State.make [| seed; Hashtbl.hash label; k |] in
  if weak then
    (* the deliberately weakened set: one generated valid trace, no
       boundary probes, no violating traces, no catalog traces *)
    [ { trace = Generate.valid (rng 0) p; final_time = None; tag = "gen-valid" } ]
  else begin
    let items = ref [] in
    let add it = items := it :: !items in
    let two_rounds w = if repeated then [ canon; w ] else [ w ] in
    add (item "canonical" (two_rounds canon));
    List.iteri
      (fun k (f : Pattern.fragment) ->
        let contributing =
          match f.connective with
          | Pattern.All -> f.ranges
          | Pattern.Any -> [ List.hd f.ranges ]
        in
        List.iter
          (fun (r : Pattern.range) ->
            let nm = Name.to_string r.name in
            let with_count c tag =
              let w = close (round_word ~count_override:(r.name, c) body) in
              add (item (tag ^ ":" ^ nm) (two_rounds w))
            in
            (* drive every counter to its boundaries *)
            if r.hi > r.lo then with_count r.hi "max-run";
            with_count (r.hi + 1) "overflow";
            if r.lo > 1 then with_count (r.lo - 1) "underflow";
            if List.length contributing >= 2 then begin
              let w = close (round_word ~skip_name:r.name body) in
              add (item ("missing:" ^ nm) (two_rounds w))
            end)
          contributing;
        (* omit the whole fragment *)
        add
          (item (Printf.sprintf "skip-frag:%d" k)
             [ close (round_word ~skip_frag:k body) ]);
        (* a stray re-entry of a later fragment after a complete round *)
        if k >= 1 then
          match f.ranges with
          | r :: _ -> add (item (Printf.sprintf "stray:%d" k) [ canon; [ r.Pattern.name ] ])
          | [] -> ())
      body;
    if timed then begin
      let prem_len = Pattern.premise_length p in
      let premise = List.filteri (fun k _ -> k < prem_len) body in
      let pw = round_word premise in
      (* straddle the deadline from both sides *)
      add (item ~final:deadline "deadline-ok" [ pw ]);
      add (item ~final:(deadline + 1) "deadline-miss" [ pw ]);
      (match List.filteri (fun k _ -> k >= prem_len) body with
      | (f : Pattern.fragment) :: _ -> (
          match f.ranges with
          | r :: _ ->
              let tr =
                List.map (fun n -> { Trace.name = n; time = 0 }) canon
                @ [ { Trace.name = r.Pattern.name; time = deadline + 1 } ]
              in
              add
                {
                  trace = tr;
                  final_time = Some (deadline + 1);
                  tag = "late-conclusion";
                }
          | [] -> ())
      | [] -> ())
    end;
    add { trace = Generate.valid (rng 1) p; final_time = None; tag = "gen-valid-1" };
    add { trace = Generate.valid (rng 2) p; final_time = None; tag = "gen-valid-2" };
    (match Generate.violating (rng 3) p with
    | Some t -> add { trace = t; final_time = None; tag = "gen-violating-1" }
    | None -> ());
    (match Generate.violating (rng 4) p with
    | Some t -> add { trace = t; final_time = None; tag = "gen-violating-2" }
    | None -> ());
    List.iteri
      (fun i t ->
        add { trace = t; final_time = None; tag = Printf.sprintf "user-%d" i })
      traces;
    List.rev !items
  end

(* ---- replay ------------------------------------------------------------- *)

let passed_item c inverted it =
  List.iter (fun e -> ignore (Compiled.step c e)) it.trace;
  let now =
    match it.final_time with Some n -> n | None -> Trace.end_time it.trace
  in
  let ok =
    match Compiled.finalize c ~now with
    | Compiled.Violated _ -> false
    | Compiled.Running | Compiled.Satisfied -> true
  in
  if inverted then not ok else ok

let preview it =
  let n = List.length it.trace in
  if n <= 40 then Witness.to_string it.trace
  else
    Printf.sprintf "%d events: %s ..." n
      (Witness.to_string (List.filteri (fun i _ -> i < 12) it.trace))

(* ---- tier (c): differential -------------------------------------------- *)

let differential ~items ~orig_make mutant ~divergences ~cross_checked =
  let flat =
    match mutant.pattern with Some p' -> Some (Backend.flat p') | None -> None
  in
  let rec go = function
    | [] -> None
    | it :: rest ->
        let po = passed_item (orig_make ()) false it in
        let pm = passed_item (mutant.make ()) mutant.inverted it in
        (match flat with
        | Some b ->
            b.Backend.reset ();
            List.iter (fun e -> ignore (b.Backend.step e)) it.trace;
            let now =
              match it.final_time with
              | Some n -> n
              | None -> Trace.end_time it.trace
            in
            let pf = Backend.passed (b.Backend.finalize ~now) in
            incr cross_checked;
            if pf <> pm then
              divergences :=
                ( mutant.id,
                  Printf.sprintf "flat=%b compiled=%b on trace '%s'" pf pm
                    it.tag )
                :: !divergences
        | None -> ());
        if po <> pm then
          Some
            (Printf.sprintf "trace '%s' (%s): original %s, mutant %s" it.tag
               (preview it)
               (if po then "passes" else "fails")
               (if pm then "passes" else "fails"))
        else go rest
  in
  go items

(* ---- tier (b): exact product equivalence ------------------------------- *)

let machine_product ?budget ma mb =
  let names_of m =
    let s = ref Name.Set.empty in
    for i = 0 to Machine.n_ids m - 1 do
      s := Name.Set.add (Machine.name m i) !s
    done;
    !s
  in
  let union =
    Array.of_list (Name.Set.elements (Name.Set.union (names_of ma) (names_of mb)))
  in
  let id_in m =
    let tbl = Hashtbl.create 16 in
    for i = 0 to Machine.n_ids m - 1 do
      Hashtbl.replace tbl (Machine.name m i) i
    done;
    Array.map
      (fun nm -> match Hashtbl.find_opt tbl nm with Some i -> i | None -> -1)
      union
  in
  let ida = id_in ma and idb = id_in mb in
  let step (sa, sb) uid =
    let sas = if ida.(uid) >= 0 then Machine.step ma sa ida.(uid) else [ sa ] in
    let sbs = if idb.(uid) >= 0 then Machine.step mb sb idb.(uid) else [ sb ] in
    List.concat_map (fun a -> List.map (fun b -> (a, b)) sbs) sas
  in
  let sys =
    {
      Reach.init = (Machine.init ma, Machine.init mb);
      n_ids = Array.length union;
      step;
      final = (fun (a, b) -> Machine.is_final a && Machine.is_final b);
    }
  in
  (Reach.explore ?budget sys, union)

let aq_of (st : Machine.state) =
  match st.status with
  | Machine.Running cfg -> cfg.armed && cfg.q_done
  | _ -> false

let equivalence ~budget ~orig_make ~ma mutant =
  let mb = Machine.of_compiled ~exact:true (mutant.make ()) in
  let ex, union = machine_product ~budget ma mb in
  let da = Machine.deadline ma and db = Machine.deadline mb in
  let inv = mutant.inverted in
  let pass_a sa = not (Machine.is_violated sa) in
  let pass_b sb =
    let pb = not (Machine.is_violated sb) in
    if inv then not pb else pb
  in
  let d_viol (sa, sb) = pass_a sa <> pass_b sb in
  let d_time (sa, sb) =
    (not inv)
    &&
    let a = Machine.can_time_violate ma sa
    and b = Machine.can_time_violate mb sb in
    a <> b || (a && b && da <> db)
  in
  (* Late-conclusion guard: an (armed, q_done) configuration can still
     violate on a late conclusion event, which the event-level product
     does not model.  A difference here blocks the equivalence proof
     (the mutant falls through as a survivor candidate) but is not by
     itself a verified kill. *)
  let d_aq (sa, sb) =
    (not inv)
    &&
    let a = aq_of sa and b = aq_of sb in
    a <> b || (a && b && da <> db)
  in
  match Reach.find ex (fun s -> d_viol s || d_time s) with
  | Some node ->
      let steps = Reach.path ex node in
      let timed_any = Machine.timed ma || Machine.timed mb in
      let trace =
        if timed_any then
          List.map (fun (uid, _) -> { Trace.name = union.(uid); time = 0 }) steps
        else
          List.mapi
            (fun i (uid, _) -> { Trace.name = union.(uid); time = i })
            steps
      in
      let sa, sb = ex.Reach.states.(node) in
      let final =
        if d_viol (sa, sb) then Trace.end_time trace
        else
          let a = Machine.can_time_violate ma sa
          and b = Machine.can_time_violate mb sb in
          if a && b then min da db + 1 else if a then da + 1 else db + 1
      in
      let it = { trace; final_time = Some final; tag = "product" } in
      let po = passed_item (orig_make ()) false it in
      let pm = passed_item (mutant.make ()) mutant.inverted it in
      if po = pm then
        failwith
          (Printf.sprintf
             "Mutate: product witness for %s failed to replay (abstraction \
              soundness bug)"
             mutant.id);
      `Killed
        (Printf.sprintf "product state %d (%s, finalize@%d): original %s, \
                         mutant %s"
           node (preview it) final
           (if po then "passes" else "fails")
           (if pm then "passes" else "fails"))
  | None ->
      if ex.Reach.complete && Reach.find ex d_aq = None then `Stillborn
      else `Undecided

(* ---- tier (a): static findings ----------------------------------------- *)

let code_sig ?budget p =
  Checks.findings ?budget p
  |> List.filter_map (fun (f : Finding.t) ->
         if String.equal f.code "analysis-budget" then None else Some f.code)
  |> List.sort String.compare

let cross_sig ?budget label p others =
  Suite_checks.findings ?budget ((label, p) :: others)
  |> List.map (fun (f : Finding.t) ->
         (f.code, Option.value ~default:"" f.subject))
  |> List.sort compare

let static_kill ?budget ~orig_sig ~orig_cross label others mutant =
  match mutant.pattern with
  | None -> None (* table patches are not denotable; tiers (b)/(c) apply *)
  | Some p' ->
      let s = code_sig ?budget p' in
      if s <> orig_sig then
        Some
          (Printf.sprintf "per-pattern findings differ: {%s} vs {%s}"
             (String.concat ", " orig_sig)
             (String.concat ", " s))
      else if others <> [] && cross_sig ?budget label p' others <> orig_cross
      then Some "cross-pattern suite findings differ"
      else None

(* ---- the engine --------------------------------------------------------- *)

let run ?(budget = 200_000) ?(seed = 0x5eed)
    ?(tiers = [ Static; Equivalence; Differential ]) ?(traces = [])
    ?(weak = false) ?only entries =
  let has t = List.mem t tiers in
  let divergences = ref [] in
  let cross_checked = ref 0 in
  let results = ref [] in
  List.iter
    (fun (label, p) ->
      let muts =
        let all = mutants_of ~seed (label, p) in
        match only with
        | None -> all
        | Some id -> List.filter (fun m -> String.equal m.id id) all
      in
      if muts <> [] then begin
        let orig_make () = Compiled.compile p in
        let others =
          List.filter (fun (l, _) -> not (String.equal l label)) entries
        in
        let orig_sig = if has Static then code_sig ~budget p else [] in
        let orig_cross =
          if has Static && others <> [] then cross_sig ~budget label p others
          else []
        in
        let items =
          if has Differential then workload ~traces ~seed ~weak (label, p)
          else []
        in
        let ma = lazy (Machine.make ~exact:true p) in
        List.iter
          (fun mutant ->
            (* cheapest tier first; attribution stays per-tier exact *)
            let outcome =
              match
                if has Static then
                  static_kill ~budget ~orig_sig ~orig_cross label others mutant
                else None
              with
              | Some w -> Killed { tier = Static; witness = w }
              | None -> (
                  match
                    if has Differential then
                      differential ~items ~orig_make mutant ~divergences
                        ~cross_checked
                    else None
                  with
                  | Some w -> Killed { tier = Differential; witness = w }
                  | None ->
                      if has Equivalence then
                        match
                          equivalence ~budget ~orig_make ~ma:(Lazy.force ma)
                            mutant
                        with
                        | `Killed w -> Killed { tier = Equivalence; witness = w }
                        | `Stillborn -> Stillborn
                        | `Undecided -> Survived { undecided = true }
                      else Survived { undecided = false })
            in
            results := { mutant; outcome } :: !results)
          muts
      end)
    entries;
  let results = List.rev !results in
  let count f = List.length (List.filter f results) in
  let generated = List.length results in
  let stillborn = count (fun r -> r.outcome = Stillborn) in
  let killed t =
    count (fun r ->
        match r.outcome with Killed k -> k.tier = t | _ -> false)
  in
  let killed_static = killed Static in
  let killed_equivalence = killed Equivalence in
  let killed_differential = killed Differential in
  let survivors =
    List.filter
      (fun r -> match r.outcome with Survived _ -> true | _ -> false)
      results
  in
  let denom = generated - stillborn in
  let kill_rate =
    if denom <= 0 then 1.0
    else
      float (killed_static + killed_equivalence + killed_differential)
      /. float denom
  in
  {
    results;
    generated;
    stillborn;
    killed_static;
    killed_equivalence;
    killed_differential;
    survivors;
    kill_rate;
    cross_checked = !cross_checked;
    divergences = List.rev !divergences;
  }

(* ---- findings ----------------------------------------------------------- *)

let findings ?floor ?(suite = "SUITE") s =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  List.iter
    (fun r ->
      add
        (Finding.v ~subject:r.mutant.entry
           ~witness:
             (Printf.sprintf "loseq mutate %s --mutant %s" suite r.mutant.id)
           Finding.Warning "mutant-survived"
           "mutant '%s' (%s) survived: no static finding, no generated or \
            catalog trace and no reachable product state distinguishes it \
            from the original monitor"
           r.mutant.id r.mutant.description))
    s.survivors;
  List.iter
    (fun (id, detail) ->
      add
        (Finding.v ~subject:id Finding.Error "backend-divergence"
           "flat and compiled engines disagree while replaying mutant '%s' \
            (%s): the two backends implement different automata"
           id detail))
    s.divergences;
  (match floor with
  | Some pct when s.kill_rate *. 100. < pct ->
      add
        (Finding.v Finding.Error "mutation-kill-floor"
           "kill rate %.1f%% is below the configured floor of %.0f%%: the \
            trace set and analyzer would miss too many broken monitors"
           (s.kill_rate *. 100.) pct)
  | _ -> ());
  Finding.order (List.rev !fs)
