(** Concretizing abstract witness paths into replayable traces.

    A BFS path through the abstract machine ({!Machine}) chooses, at
    each nondeterministic counting step, which interval the counter
    lands in — but a concrete counter only moves one unit per event.
    [concretize] replays the path against a real
    {!Loseq_core.Compiled} monitor and {e pumps}: it repeats the
    event until the concrete configuration projects onto the path's
    target state.  Pumping terminates because the counter climbs
    monotonically through the intervals and BFS-tree paths never take
    interval-stay self-loops (they do not change the abstract state).

    Every returned trace is verified by construction: the caller gets
    back the concrete monitor it was replayed on, in its final state.

    Timestamps: untimed patterns get [0, 1, 2, ...]; timed patterns get
    all-zero timestamps so that a deadline can never interfere with an
    event-level witness (deadline violations are then exhibited
    separately, by letting time pass). *)

open Loseq_core

val concretize : Machine.t -> (int * Machine.state) list -> Trace.t * Compiled.t
(** [concretize m steps] with [steps = [(id, target); ...]] as returned
    by {!Reach.path}.  Raises [Failure] if the replay desynchronizes
    from the abstract path (which the test suite treats as an
    abstraction soundness bug). *)

val to_string : Trace.t -> string
(** Compact event list for finding witnesses (names only for untimed
    traces, [name\@time] as needed otherwise). *)
